# Development targets. `make ci` is the gate: formatting, vet, build,
# race-enabled tests, a one-iteration benchmark smoke so the Figure 5/6
# harness cannot rot silently, and a trace smoke that validates the
# observability pipeline end to end.

GO ?= go

.PHONY: all build fmt vet vettool test race benchsmoke tracesmoke profsmoke vetsmoke inlinesmoke irsmoke persistsmoke telemetrysmoke analyzesmoke vmsmoke bench ci

all: build

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt: needs formatting: $$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Every benchmark once, no measurement: proves the harness still runs.
benchsmoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Instrument a program with tracing on and validate the emitted trace.
tracesmoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	printf '#include <stdio.h>\nint main() { printf("ok\\n"); return 0; }\n' > $$tmp/smoke.c; \
	$(GO) run ./cmd/minicc -o $$tmp/smoke.o $$tmp/smoke.c; \
	$(GO) run ./cmd/alink -o $$tmp/smoke.x $$tmp/smoke.o; \
	$(GO) run ./cmd/atom -t branch -trace $$tmp/smoke.trace.json -o $$tmp/smoke.atom $$tmp/smoke.x; \
	$(GO) run ./cmd/atom -verify-trace $$tmp/smoke.trace.json

# Instrument and run a program with the sampling profiler, twice;
# folded output must validate and be byte-identical across runs.
profsmoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	printf '#include <stdio.h>\nint main() { printf("ok\\n"); return 0; }\n' > $$tmp/smoke.c; \
	$(GO) run ./cmd/minicc -o $$tmp/smoke.o $$tmp/smoke.c; \
	$(GO) run ./cmd/alink -o $$tmp/smoke.x $$tmp/smoke.o; \
	$(GO) run ./cmd/atom -t branch -run -profile $$tmp/p1.folded -profile-format=folded -profile-period 500 $$tmp/smoke.x > /dev/null; \
	$(GO) run ./cmd/atom -t branch -run -profile $$tmp/p2.folded -profile-format=folded -profile-period 500 $$tmp/smoke.x > /dev/null; \
	$(GO) run ./cmd/atom -verify-folded $$tmp/p1.folded; \
	cmp $$tmp/p1.folded $$tmp/p2.folded

# Instrument a program with every built-in tool under -vet: the IR
# verifier checks the input, the PC maps, and each rewritten output.
vetsmoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	printf '#include <stdio.h>\nint main() { printf("ok\\n"); return 0; }\n' > $$tmp/smoke.c; \
	$(GO) run ./cmd/minicc -o $$tmp/smoke.o $$tmp/smoke.c; \
	$(GO) run ./cmd/alink -o $$tmp/smoke.x $$tmp/smoke.o; \
	$(GO) build -o $$tmp/atom ./cmd/atom; \
	for t in $$($$tmp/atom -list | awk '{print $$1}'); do \
		$$tmp/atom -vet -t $$t -o $$tmp/smoke.$$t.atom $$tmp/smoke.x || exit 1; \
	done

# Inliner gate: every tool verifies under -vet with the inliner both on
# (the default) and off, and the examples produce identical program and
# analysis output with and without -noinline (the "instrumented:" size
# line legitimately differs, so it is filtered).
inlinesmoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	printf '#include <stdio.h>\nint main() { printf("ok\\n"); return 0; }\n' > $$tmp/smoke.c; \
	$(GO) run ./cmd/minicc -o $$tmp/smoke.o $$tmp/smoke.c; \
	$(GO) run ./cmd/alink -o $$tmp/smoke.x $$tmp/smoke.o; \
	$(GO) build -o $$tmp/atom ./cmd/atom; \
	for t in $$($$tmp/atom -list | awk '{print $$1}'); do \
		$$tmp/atom -vet -t $$t -o $$tmp/smoke.$$t.on.atom $$tmp/smoke.x || exit 1; \
		$$tmp/atom -vet -noinline -t $$t -o $$tmp/smoke.$$t.off.atom $$tmp/smoke.x || exit 1; \
	done; \
	$(GO) run ./examples/quickstart | grep -v '^instrumented:' > $$tmp/q.on; \
	$(GO) run ./examples/quickstart -noinline | grep -v '^instrumented:' > $$tmp/q.off; \
	cmp $$tmp/q.on $$tmp/q.off; \
	$(GO) run ./examples/cachesim > $$tmp/c.on; \
	$(GO) run ./examples/cachesim -noinline > $$tmp/c.off; \
	cmp $$tmp/c.on $$tmp/c.off

# IR gate: serialize the smoke program's lifted IR (-emit-ir), then
# instrument from the blob (-ir-in) with every tool in a separate
# process; each output must be byte-identical to the in-memory path.
irsmoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	printf '#include <stdio.h>\nint main() { printf("ok\\n"); return 0; }\n' > $$tmp/smoke.c; \
	$(GO) run ./cmd/minicc -o $$tmp/smoke.o $$tmp/smoke.c; \
	$(GO) run ./cmd/alink -o $$tmp/smoke.x $$tmp/smoke.o; \
	$(GO) build -o $$tmp/atom ./cmd/atom; \
	$$tmp/atom -emit-ir $$tmp/ir $$tmp/smoke.x; \
	for t in $$($$tmp/atom -list | awk '{print $$1}'); do \
		$$tmp/atom -vet -t $$t -o $$tmp/smoke.$$t.atom $$tmp/smoke.x || exit 1; \
		$$tmp/atom -vet -t $$t -ir-in $$tmp/ir/smoke.ir -o $$tmp/smoke.$$t.ir.atom || exit 1; \
		cmp $$tmp/smoke.$$t.atom $$tmp/smoke.$$t.ir.atom || exit 1; \
	done

# Persistence gate: two fresh processes share one -cache-dir; the second
# must instrument with zero builds (artifacts decoded from disk) and
# byte-identical output, and corrupted blobs must be quarantined and
# silently rebuilt.
persistsmoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	printf '#include <stdio.h>\nint main() { printf("ok\\n"); return 0; }\n' > $$tmp/smoke.c; \
	$(GO) run ./cmd/minicc -o $$tmp/smoke.o $$tmp/smoke.c; \
	$(GO) run ./cmd/alink -o $$tmp/smoke.x $$tmp/smoke.o; \
	$(GO) build -o $$tmp/atom ./cmd/atom; \
	$$tmp/atom -t branch -cache-dir $$tmp/cache -o $$tmp/smoke.cold.atom $$tmp/smoke.x; \
	$$tmp/atom -t branch -cache-dir $$tmp/cache -stats -o $$tmp/smoke.warm.atom $$tmp/smoke.x > $$tmp/warm.stats; \
	cmp $$tmp/smoke.cold.atom $$tmp/smoke.warm.atom; \
	grep -q 'image cache:.*, 0 builds' $$tmp/warm.stats; \
	grep -q 'object cache:.*, 0 builds' $$tmp/warm.stats; \
	grep -q 'ir cache:.*, 0 builds' $$tmp/warm.stats; \
	grep -Eq 'image cache:.* [1-9][0-9]* disk hits' $$tmp/warm.stats; \
	grep -Eq 'ir cache:.* [1-9][0-9]* disk hits' $$tmp/warm.stats; \
	for f in $$(find $$tmp/cache/objects -type f); do \
		head -c 20 $$f > $$f.trunc && mv $$f.trunc $$f; \
	done; \
	$$tmp/atom -t branch -cache-dir $$tmp/cache -stats -o $$tmp/smoke.rebuilt.atom $$tmp/smoke.x > $$tmp/rebuild.stats; \
	cmp $$tmp/smoke.cold.atom $$tmp/smoke.rebuilt.atom; \
	grep -Eq 'disk store:.* [1-9][0-9]* corrupt' $$tmp/rebuild.stats

# Telemetry gate: a batch brings the debug server up and down cleanly
# (batch counters land in the metrics snapshot), then a long VM run with
# -debug-addr is scraped mid-flight: /healthz, /metrics twice (second
# monotonically >= first on every _total, series ordering identical),
# and 100 NDJSON events — via atom's own -scrape, so no curl needed.
telemetrysmoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	printf '#include <stdio.h>\nint main() { printf("ok\\n"); return 0; }\n' > $$tmp/smoke.c; \
	$(GO) run ./cmd/minicc -o $$tmp/smoke.o $$tmp/smoke.c; \
	$(GO) run ./cmd/alink -o $$tmp/smoke.x $$tmp/smoke.o; \
	$(GO) build -o $$tmp/atom ./cmd/atom; \
	cp $$tmp/smoke.x $$tmp/smoke2.x; cp $$tmp/smoke.x $$tmp/smoke3.x; \
	$$tmp/atom -t branch -j 2 -debug-addr 127.0.0.1:0 -metrics $$tmp/batch.metrics \
		$$tmp/smoke.x $$tmp/smoke2.x $$tmp/smoke3.x 2> $$tmp/batch.err; \
	grep -q 'telemetry listening on http://' $$tmp/batch.err; \
	grep -Eq 'atom\.batch\.done +3' $$tmp/batch.metrics; \
	printf '#include <stdio.h>\nint main() { long i, s = 0; for (i = 0; i < 5000000; i++) s += i; printf("%%ld\\n", s); return 0; }\n' > $$tmp/long.c; \
	$(GO) run ./cmd/minicc -o $$tmp/long.o $$tmp/long.c; \
	$(GO) run ./cmd/alink -o $$tmp/long.x $$tmp/long.o; \
	$$tmp/atom -t branch -run -debug-addr 127.0.0.1:0 $$tmp/long.x > /dev/null 2> $$tmp/tel.err & telpid=$$!; \
	addr=""; i=0; \
	while [ $$i -lt 200 ]; do \
		addr=$$(sed -n 's|.*telemetry listening on http://||p' $$tmp/tel.err); \
		[ -n "$$addr" ] && break; i=$$((i + 1)); sleep 0.1; \
	done; \
	test -n "$$addr"; \
	$$tmp/atom -scrape http://$$addr/healthz | grep -qx ok; \
	$$tmp/atom -scrape http://$$addr/metrics > $$tmp/m1.txt; \
	$$tmp/atom -scrape "http://$$addr/debug/events?n=100" > $$tmp/ev.txt; \
	$$tmp/atom -scrape http://$$addr/metrics > $$tmp/m2.txt; \
	test "$$(wc -l < $$tmp/ev.txt)" -eq 100; \
	test "$$(grep -c '"seq"' $$tmp/ev.txt)" -eq 100; \
	grep -q '^atom_store_image_miss_total' $$tmp/m1.txt; \
	awk '!/^\#/{print $$1}' $$tmp/m1.txt > $$tmp/names1; \
	awk '!/^\#/{print $$1}' $$tmp/m2.txt > $$tmp/names2; \
	grep -Fxf $$tmp/names1 $$tmp/names2 > $$tmp/names2.common; \
	cmp $$tmp/names1 $$tmp/names2.common; \
	awk 'NR==FNR { if ($$1 ~ /_total/) v[$$1]=$$2; next } ($$1 in v) && ($$2+0 < v[$$1]+0) { print "regressed:", $$1, v[$$1], "->", $$2; bad=1 } END { exit bad }' $$tmp/m1.txt $$tmp/m2.txt; \
	wait $$telpid

# Project-convention lint: the custom vettool (cmd/atomvet) through the
# cmd/go vettool protocol — no ATOM_CACHE_DIR reads outside cmd/atom,
# *obs.Ctx leads every exported signature.
vettool:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/atomvet ./cmd/atomvet; \
	$(GO) vet -vettool=$$tmp/atomvet ./...

# Analyze gate: every built-in tool image reports clean under -analyze,
# byte-identically across two runs, and a seeded save-discipline defect
# is caught with a non-zero exit.
analyzesmoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	printf '#include <stdio.h>\nint main() { printf("ok\\n"); return 0; }\n' > $$tmp/smoke.c; \
	$(GO) run ./cmd/minicc -o $$tmp/smoke.o $$tmp/smoke.c; \
	$(GO) run ./cmd/alink -o $$tmp/smoke.x $$tmp/smoke.o; \
	$(GO) build -o $$tmp/atom ./cmd/atom; \
	for t in $$($$tmp/atom -list | awk '{print $$1}'); do \
		$$tmp/atom -analyze -t $$t > $$tmp/an1.$$t.txt || exit 1; \
		$$tmp/atom -analyze -t $$t > $$tmp/an2.$$t.txt || exit 1; \
		cmp $$tmp/an1.$$t.txt $$tmp/an2.$$t.txt || exit 1; \
		grep -q "tool:$$t: clean" $$tmp/an1.$$t.txt || exit 1; \
	done; \
	$$tmp/atom -analyze $$tmp/smoke.x > $$tmp/an.app.txt; \
	grep -q 'smoke.x: clean' $$tmp/an.app.txt; \
	printf '\t.text\n\t.globl main\n\t.ent main\nmain:\n\tclr v0\n\tret (ra)\n\t.end main\n\n\t.globl Clobber\n\t.ent Clobber\nClobber:\n\taddq s0, 1, s0\n\tret (ra)\n\t.end Clobber\n' > $$tmp/defect.s; \
	$(GO) run ./cmd/aasm -o $$tmp/defect.o $$tmp/defect.s; \
	$(GO) run ./cmd/alink -o $$tmp/defect.x $$tmp/defect.o; \
	if $$tmp/atom -analyze -analyze-as tool $$tmp/defect.x > $$tmp/an.defect.txt; then \
		echo "analyze: seeded save-discipline defect not caught" >&2; exit 1; \
	fi; \
	grep -q 'clobbers callee-save register s0' $$tmp/an.defect.txt

# VM-mode gate: queens (deep recursion, dense conditional branches)
# uninstrumented and under two tools, executed with every -vm-mode.
# Stdout, tool reports, the -stats counter line (icount included), and
# the folded profile must be byte-identical across the dispatch ladder,
# and the -run bench JSON must carry the v7 vm_minst_s rate.
vmsmoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	printf '%s\n' \
		'#include <stdio.h>' \
		'long colUsed[16];' \
		'long diag1[32];' \
		'long diag2[32];' \
		'long solutions;' \
		'long N;' \
		'void place(long row) {' \
		'	if (row == N) { solutions++; return; }' \
		'	long c;' \
		'	for (c = 0; c < N; c++) {' \
		'		if (colUsed[c] || diag1[row + c] || diag2[row - c + N]) continue;' \
		'		colUsed[c] = 1; diag1[row + c] = 1; diag2[row - c + N] = 1;' \
		'		place(row + 1);' \
		'		colUsed[c] = 0; diag1[row + c] = 0; diag2[row - c + N] = 0;' \
		'	}' \
		'}' \
		'int main() {' \
		'	N = 8;' \
		'	place(0);' \
		'	printf("queens: n=%d solutions=%d\n", N, solutions);' \
		'	return 0;' \
		'}' > $$tmp/queens.c; \
	$(GO) run ./cmd/minicc -o $$tmp/queens.o $$tmp/queens.c; \
	$(GO) run ./cmd/alink -o $$tmp/queens.x $$tmp/queens.o; \
	$(GO) build -o $$tmp/atom ./cmd/atom; \
	for cfg in none branch cache; do \
		tflag=""; if [ "$$cfg" != none ]; then tflag="-t $$cfg"; fi; \
		for mode in plain predecode superblock; do \
			d="$$tmp/vm/$$cfg.$$mode"; mkdir -p "$$d"; \
			(cd "$$d" && "$$tmp/atom" $$tflag -run -vm-mode="$$mode" -stats "$$tmp/queens.x" > out.txt 2> stats.txt) || exit 1; \
			(cd "$$d" && "$$tmp/atom" $$tflag -run -vm-mode="$$mode" -profile p.folded -profile-format=folded -profile-period 997 "$$tmp/queens.x" > /dev/null) || exit 1; \
		done; \
		grep -q '^icount=' $$tmp/vm/$$cfg.plain/stats.txt || exit 1; \
		diff -r $$tmp/vm/$$cfg.plain $$tmp/vm/$$cfg.predecode || exit 1; \
		diff -r $$tmp/vm/$$cfg.plain $$tmp/vm/$$cfg.superblock || exit 1; \
	done; \
	grep -q 'queens: n=8 solutions=92' $$tmp/vm/none.superblock/out.txt; \
	"$$tmp/atom" -run -bench-json $$tmp/vm/run.json $$tmp/queens.x > /dev/null; \
	grep -q '"schema": "atom-run/v7"' $$tmp/vm/run.json; \
	grep -q '"vm_minst_s"' $$tmp/vm/run.json

# Real measurements (slow); see EXPERIMENTS.md for recorded numbers.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

ci: fmt vet vettool build race benchsmoke tracesmoke profsmoke vetsmoke inlinesmoke irsmoke persistsmoke telemetrysmoke analyzesmoke vmsmoke
