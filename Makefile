# Development targets. `make ci` is the gate: vet, build, race-enabled
# tests, and a one-iteration benchmark smoke so the Figure 5/6 harness
# cannot rot silently.

GO ?= go

.PHONY: all build vet test race benchsmoke bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Every benchmark once, no measurement: proves the harness still runs.
benchsmoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Real measurements (slow); see EXPERIMENTS.md for recorded numbers.
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

ci: vet build race benchsmoke
