// Package atom is the public face of this reproduction of "ATOM: A
// System for Building Customized Program Analysis Tools" (Srivastava &
// Eustace, PLDI 1994): a framework for building program-analysis tools
// by link-time binary instrumentation.
//
// The package bundles the full toolchain the paper's environment assumed
// — a MiniC compiler, assembler, and linker targeting an Alpha-subset
// ISA, plus a VM standing in for the Alpha AXP/OSF-1 machine — and the
// ATOM system itself: OM-based binary rewriting, the instrumentation
// API (AddCallProto/AddCallProgram/AddCallProc/AddCallBlock/AddCallInst
// with REGV/EffAddrValue/BrCondValue arguments), wrapper or in-analysis
// register-save strategies driven by interprocedural data-flow
// summaries, and the pristine-address memory layout of Figure 4.
//
// The typical pipeline mirrors the paper's `atom prog inst.c anal.c -o
// prog.atom`:
//
//	app, _ := atom.BuildProgram(map[string]string{"app.c": src})
//	tool, _ := atom.ToolByName("cache")
//	res, _ := atom.Instrument(app, tool, atom.Options{})
//	out, _ := atom.RunProgram(res.Exe, atom.RunConfig{
//	        AnalysisHeapOffset: res.HeapOffset,
//	})
//	fmt.Print(string(out.Files["cache.out"]))
//
// Custom tools supply a Go instrumentation routine and MiniC analysis
// routines; see internal/tools for the paper's eleven tools written
// against the same API.
package atom

import (
	"fmt"

	"atom/internal/aout"
	"atom/internal/build"
	"atom/internal/core"
	"atom/internal/om"
	"atom/internal/om/analysis"
	"atom/internal/rtl"
	"atom/internal/telemetry"
	"atom/internal/tools"
	"atom/internal/vm"
)

// Tool is a complete ATOM tool: a Go instrumentation routine plus MiniC
// (and optionally assembly) analysis routines.
type Tool = core.Tool

// Options control instrumentation; see core.Options.
type Options = core.Options

// Option is a functional tweak applied on top of an Options value; pass
// any number to Instrument, BuildToolImage, or Apply.
type Option = core.Option

// WithLiveness enables (the default) or disables the global
// register-liveness analysis that shrinks per-site save sets to
// live ∩ modified. WithLiveness(false) restores the purely conservative
// caller-save ∩ modified behavior, for ablation.
func WithLiveness(on bool) Option { return core.WithLiveness(on) }

// WithVerify enables the OM IR verifier: the program is checked before
// instrumentation, the PC maps after layout, and the rewritten text
// after emission; any diagnostic aborts with original-PC locations.
func WithVerify(on bool) Option { return core.WithVerify(on) }

// WithInlining enables (the default) or disables the analysis-routine
// inliner, which splices short leaf analysis routines directly into
// their call sites — no call, no wrapper, save set reduced to
// live ∩ clobbered-by-body. WithInlining(false) restores the paper's
// always-call behavior, for ablation.
func WithInlining(on bool) Option { return core.WithInlining(on) }

// Result is the outcome of Instrument; see core.Result.
type Result = core.Result

// Instrumentation is the traversal/insertion API handed to a tool's
// instrumentation routine.
type Instrumentation = core.Instrumentation

// Executable is a linked program image.
type Executable = aout.File

// Re-exported instrumentation constants.
const (
	ProgramBefore = core.ProgramBefore
	ProgramAfter  = core.ProgramAfter
	ProcBefore    = core.ProcBefore
	ProcAfter     = core.ProcAfter
	BlockBefore   = core.BlockBefore
	BlockAfter    = core.BlockAfter
	InstBefore    = core.InstBefore
	InstAfter     = core.InstAfter

	EffAddrValue = core.EffAddrValue
	BrCondValue  = core.BrCondValue

	SaveWrapper    = core.SaveWrapper
	SaveInAnalysis = core.SaveInAnalysis
)

// BuildProgram compiles MiniC sources (file name -> source text) and
// links them with the runtime library into an application executable
// suitable for instrumentation (symbols and relocations retained).
func BuildProgram(sources map[string]string) (*Executable, error) {
	return rtl.BuildProgramMulti(sources)
}

// Instrument applies a tool to an application. The tool's analysis image
// is built once per (tool, options) and cached; instrumenting further
// programs with the same tool pays only the per-program rewrite (the
// paper's two-step cost model). See also BuildToolImage/Apply for the
// explicit form and InstrumentSuite for parallel fan-out.
func Instrument(app *Executable, tool Tool, opts Options, extra ...Option) (*Result, error) {
	for _, o := range extra {
		o(&opts)
	}
	return core.Instrument(app, tool, opts)
}

// ToolImage is a tool's compiled and linked analysis image, independent
// of any application; see core.ToolImage.
type ToolImage = core.ToolImage

// CacheStats is a snapshot of artifact-cache counters.
type CacheStats = build.Stats

// BuildToolImage performs the paper's first step — build the custom tool
// — without an application in hand. The image is cached; subsequent
// Instrument or Apply calls with the same tool and options reuse it.
func BuildToolImage(tool Tool, opts Options, extra ...Option) (*ToolImage, error) {
	for _, o := range extra {
		o(&opts)
	}
	return core.BuildToolImage(tool, opts)
}

// Apply stamps a prebuilt tool image into an application (the second
// step of the two-step model).
func Apply(app *Executable, ti *ToolImage, opts Options, extra ...Option) (*Result, error) {
	for _, o := range extra {
		o(&opts)
	}
	return core.Apply(app, ti, opts)
}

// ImageCacheStats reports tool-image cache activity: hits, disk hits,
// misses, completed builds, and build errors.
func ImageCacheStats() CacheStats { return core.ImageCacheStats() }

// StoreStats is a snapshot of persistent-store counters.
type StoreStats = build.StoreStats

// WithCacheDir installs a persistent on-disk artifact store rooted at
// dir, shared by every cache kind (tool images, compiled objects, the
// runtime library, IR blobs): artifacts built by any process pointed at
// the same directory are decoded from disk instead of rebuilt, so a warm
// second process instruments with zero compiles, links, or lifts. The
// store is content-addressed and crash-safe (write-to-temp + atomic
// rename; blobs are SHA-256-verified on read, and corrupt ones are
// quarantined and silently rebuilt). maxBytes > 0 bounds the store via
// least-recently-used eviction; <= 0 means unbounded. Call CloseCacheDir
// when done. The library never reads ATOM_CACHE_DIR itself — only the
// atom CLI does — so programmatic users opt in explicitly here.
func WithCacheDir(dir string, maxBytes int64) error {
	return build.SetCacheDir(nil, dir, maxBytes)
}

// CloseCacheDir retires the persistent store installed by WithCacheDir;
// subsequent cache traffic is memory-only.
func CloseCacheDir() error { return build.CloseStore() }

// WithDebugAddr starts the embedded telemetry debug server on addr
// (host:port; port 0 picks a free one) and returns the resolved listen
// address. The server exposes the process-wide registry — Prometheus
// text on /metrics (cache/store/VM/profiler activity, including the
// lazily-polled store residency and VM total gauges), a streaming
// NDJSON event feed on /debug/events, net/http/pprof under
// /debug/pprof/, and a /healthz liveness probe. It is the same server
// `atom -debug-addr` runs, so the curl recipes in the README apply
// unchanged. Errors if a debug server is already running. Call
// CloseDebugServer when done.
func WithDebugAddr(addr string) (string, error) {
	srv, err := telemetry.StartDefaultServer(addr)
	if err != nil {
		return "", err
	}
	return srv.Addr(), nil
}

// CloseDebugServer shuts down the debug server started by WithDebugAddr
// (or `atom -debug-addr`). A no-op when none is running.
func CloseDebugServer() error { return telemetry.StopDefaultServer() }

// CacheSnapshot unifies the counters of all three artifact caches, plus
// the persistent store's own counters when one is configured.
type CacheSnapshot struct {
	Image   CacheStats
	Objects CacheStats
	IR      CacheStats
	// Disk is nil when no persistent store is configured.
	Disk *StoreStats
}

// Caches returns a unified snapshot of cache and store activity.
func Caches() CacheSnapshot {
	snap := CacheSnapshot{
		Image:   core.ImageCacheStats(),
		Objects: rtl.ObjectCacheStats(),
		IR:      build.IRCacheStats(),
	}
	if s := build.ActiveStore(); s != nil {
		st := s.Stats()
		snap.Disk = &st
	}
	return snap
}

// Program is an application lifted to OM IR: the symbolic
// program/procedure/block/instruction view instrumentation routines
// traverse. A Program is a single-use handle — instrumentation attaches
// call sites to it — so obtain a fresh one (Lift or DecodeIR) per
// Instrument/Apply call.
type Program = om.Program

// Lift raises an executable to OM IR through the content-addressed lift
// cache: each distinct executable is analyzed and encoded once per
// process; every Lift then decodes a fresh Program from the cached
// atom-ir/v1 blob.
func Lift(app *Executable) (*Program, error) { return core.Lift(app) }

// EncodeIR serializes a pristine (not yet instrumented) Program to the
// stable atom-ir/v1 wire format. The encoding is deterministic: equal
// programs produce byte-identical blobs, so blobs can be content-
// addressed, diffed, and cached across processes (`atom -emit-ir`).
func EncodeIR(p *Program) ([]byte, error) { return om.Encode(p) }

// DecodeIR reconstructs a Program from an atom-ir/v1 blob. The decoded
// Program is a drop-in substitute for a fresh Lift of the same
// executable: instrumenting it produces bit-identical output
// (`atom -ir-in`).
func DecodeIR(blob []byte) (*Program, error) { return om.Decode(blob) }

// InstrumentProgram is Instrument starting from an already-lifted (or
// decoded) Program instead of an executable. The Program is consumed.
func InstrumentProgram(prog *Program, tool Tool, opts Options, extra ...Option) (*Result, error) {
	for _, o := range extra {
		o(&opts)
	}
	return core.InstrumentProgram(prog, tool, opts)
}

// IRCacheStats reports lift-cache activity: how many Instrument/Apply
// calls decoded a cached IR blob instead of re-lifting the executable.
func IRCacheStats() CacheStats { return build.IRCacheStats() }

// AnalysisPass is one registered static-analysis pass over the OM IR
// (uninit, stackheight, callgraph, toollint).
type AnalysisPass = analysis.Pass

// AnalysisReport is the outcome of running passes over one unit:
// sorted, deterministic findings plus unit metadata. Render it with
// WriteText or MarshalAnalysisReports.
type AnalysisReport = analysis.Report

// AnalysisFinding is a single diagnostic keyed by original PC and
// procedure name.
type AnalysisFinding = analysis.Finding

// AnalysisPasses resolves a comma-separated pass selection ("" = every
// registered pass) to the passes themselves, rejecting unknown names.
func AnalysisPasses(spec string) ([]AnalysisPass, error) { return analysis.Select(spec) }

// Analyze lifts an application and runs the selected passes over it
// (the `atom -analyze prog.x` entry point as a library call). A tool
// image is audited with ToolImage.Analyze instead, which runs the
// image-only passes such as toollint.
func Analyze(name string, app *Executable, passSpec string) (*AnalysisReport, error) {
	ps, err := analysis.Select(passSpec)
	if err != nil {
		return nil, err
	}
	prog, err := core.Lift(app)
	if err != nil {
		return nil, err
	}
	return core.AnalyzeProgram(nil, name, prog, analysis.Application, ps), nil
}

// MarshalAnalysisReports renders reports as the stable atom-analyze/v1
// JSON document.
func MarshalAnalysisReports(reports []*AnalysisReport) ([]byte, error) {
	return analysis.MarshalReports(reports)
}

// Tools returns the paper's eleven analysis tools.
func Tools() []Tool { return tools.All() }

// ToolNames returns the registered tool names.
func ToolNames() []string { return tools.Names() }

// ToolByName returns one of the built-in tools.
func ToolByName(name string) (Tool, error) {
	t, ok := tools.ByName(name)
	if !ok {
		return Tool{}, fmt.Errorf("atom: unknown tool %q (have %v)", name, tools.Names())
	}
	return t, nil
}

// VMMode selects the VM's dispatch strategy; see the constants below.
// Every mode retires bit-identical architectural state — the ladder is
// an ablation/benchmarking knob, not a semantic one.
type VMMode = vm.Mode

const (
	// VMPlain decodes every retired instruction (the slow baseline).
	VMPlain = vm.ModePlain
	// VMPredecode fetches from the decoded-text cache.
	VMPredecode = vm.ModePredecode
	// VMSuperblock (the default) additionally executes trace-linked
	// superblocks, retiring whole straight-line runs per dispatch.
	VMSuperblock = vm.ModeSuperblock
)

// ParseVMMode resolves "plain", "predecode", or "superblock" (the
// `atom -vm-mode` values).
func ParseVMMode(s string) (VMMode, error) { return vm.ParseMode(s) }

// RunConfig parameterizes program execution.
type RunConfig struct {
	Args  []string
	Stdin []byte
	// FS maps path -> contents for files the program may open.
	FS map[string][]byte
	// AnalysisHeapOffset partitions the heap for instrumented programs;
	// pass Result.HeapOffset.
	AnalysisHeapOffset uint64
	// MaxInstr bounds execution (0 = default 2e9).
	MaxInstr uint64
	// VMMode selects the dispatch strategy (zero value = superblock).
	VMMode VMMode
}

// RunOption is a functional tweak applied on top of a RunConfig value;
// pass any number to RunProgram.
type RunOption func(*RunConfig)

// WithVMMode selects the VM dispatch strategy for a run — VMPlain,
// VMPredecode, or VMSuperblock — without touching the rest of the
// config. Ablation runs use it to hold everything else fixed.
func WithVMMode(m VMMode) RunOption { return func(rc *RunConfig) { rc.VMMode = m } }

// RunResult is the observable outcome of a program run.
type RunResult struct {
	ExitCode int
	Stdout   []byte
	Stderr   []byte
	// Files holds every file the program wrote, keyed by path — tool
	// reports land here.
	Files map[string][]byte
	// Statistics from the machine.
	Icount    uint64
	Loads     uint64
	Stores    uint64
	Unaligned uint64
	Syscalls  uint64
}

// RunProgram executes an executable on the VM to completion.
func RunProgram(exe *Executable, cfg RunConfig, extra ...RunOption) (*RunResult, error) {
	for _, o := range extra {
		o(&cfg)
	}
	m, err := vm.New(exe, vm.Config{
		Args:               cfg.Args,
		Stdin:              cfg.Stdin,
		FS:                 cfg.FS,
		AnalysisHeapOffset: cfg.AnalysisHeapOffset,
		MaxInstr:           cfg.MaxInstr,
		Mode:               cfg.VMMode,
	})
	if err != nil {
		return nil, err
	}
	code, err := m.Run()
	if err != nil {
		return nil, err
	}
	return &RunResult{
		ExitCode:  code,
		Stdout:    m.Stdout,
		Stderr:    m.Stderr,
		Files:     m.FSOut,
		Icount:    m.Icount,
		Loads:     m.Loads,
		Stores:    m.Stores,
		Unaligned: m.Unaligned,
		Syscalls:  m.Syscalls,
	}, nil
}
