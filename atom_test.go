package atom_test

// Integration tests through the public facade: the full pipeline a
// downstream user runs, plus cross-tool consistency checks over the
// workload suite.

import (
	"strings"
	"testing"

	"atom"
	"atom/internal/alpha"
	"atom/internal/core"
	"atom/internal/spec"
)

func TestFacadePipeline(t *testing.T) {
	app, err := atom.BuildProgram(map[string]string{"app.c": `
#include <stdio.h>
int main() {
	long i;
	long s = 0;
	for (i = 0; i < 200; i++) s += i & 7;
	printf("s=%d\n", s);
	return 0;
}
`})
	if err != nil {
		t.Fatal(err)
	}
	base, err := atom.RunProgram(app, atom.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if string(base.Stdout) != "s=700\n" || base.ExitCode != 0 {
		t.Fatalf("baseline: %q exit %d", base.Stdout, base.ExitCode)
	}

	for _, name := range atom.ToolNames() {
		tool, err := atom.ToolByName(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := atom.Instrument(app, tool, atom.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out, err := atom.RunProgram(res.Exe, atom.RunConfig{AnalysisHeapOffset: res.HeapOffset})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if string(out.Stdout) != string(base.Stdout) {
			t.Errorf("%s perturbed stdout: %q", name, out.Stdout)
		}
		if _, ok := out.Files[name+".out"]; !ok {
			t.Errorf("%s: report missing", name)
		}
	}
}

func TestToolByNameUnknown(t *testing.T) {
	if _, err := atom.ToolByName("nonesuch"); err == nil {
		t.Error("ToolByName(nonesuch) succeeded")
	}
	if got := len(atom.Tools()); got != 11 {
		t.Errorf("Tools() = %d, want 11", got)
	}
}

// TestMultiFileApplication links a program from several MiniC sources.
func TestMultiFileApplication(t *testing.T) {
	app, err := atom.BuildProgram(map[string]string{
		"main.c": `
#include <stdio.h>
extern long triple(long v);
extern long offset;
int main() { printf("%d\n", triple(7) + offset); return 0; }
`,
		"lib.c": `
long offset = 4;
long triple(long v) { return 3 * v; }
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := atom.RunProgram(app, atom.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if string(out.Stdout) != "25\n" {
		t.Errorf("stdout = %q", out.Stdout)
	}
}

// TestCrossToolConsistency instruments one suite program with dyninst,
// prof and pipe and cross-checks their instruction accounting.
func TestCrossToolConsistency(t *testing.T) {
	exe, err := spec.Build("queens")
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]string{}
	for _, name := range []string{"dyninst", "pipe"} {
		tool, _ := atom.ToolByName(name)
		res, err := atom.Instrument(exe, tool, atom.Options{})
		if err != nil {
			t.Fatal(err)
		}
		out, err := atom.RunProgram(res.Exe, atom.RunConfig{AnalysisHeapOffset: res.HeapOffset})
		if err != nil {
			t.Fatal(err)
		}
		report := string(out.Files[name+".out"])
		for _, ln := range strings.Split(report, "\n") {
			if strings.HasPrefix(ln, "dynamic instructions:") {
				counts[name] = strings.TrimSpace(strings.TrimPrefix(ln, "dynamic instructions:"))
			}
		}
	}
	if counts["dyninst"] == "" || counts["dyninst"] != counts["pipe"] {
		t.Errorf("tools disagree on dynamic instructions: %v", counts)
	}
}

// TestCustomToolWithRegV exercises the facade path for a user-authored
// tool using register values and both save modes.
func TestCustomToolWithRegV(t *testing.T) {
	app, err := atom.BuildProgram(map[string]string{"app.c": `
long work(long a, long b) { return a * b + 1; }
int main() {
	long i;
	long s = 0;
	for (i = 0; i < 20; i++) s += work(i, i + 1);
	return s & 0x7f;
}
`})
	if err != nil {
		t.Fatal(err)
	}
	tool := atom.Tool{
		Name: "argsum",
		Analysis: map[string]string{"a.c": `
#include <stdio.h>
long sum;
void SeeCall(long a, long b) { sum += a + b; }
void Done(void) { printf("argsum=%d\n", sum); }
`},
		Instrument: func(q *atom.Instrumentation) error {
			if err := q.AddCallProto("SeeCall(REGV, REGV)"); err != nil {
				return err
			}
			if err := q.AddCallProto("Done()"); err != nil {
				return err
			}
			for p := q.GetFirstProc(); p != nil; p = q.GetNextProc(p) {
				if q.ProcName(p) == "work" {
					if err := q.AddCallProc(p, atom.ProcBefore, "SeeCall",
						core.RegV(alpha.A0), core.RegV(alpha.A1)); err != nil {
						return err
					}
				}
			}
			return q.AddCallProgram(atom.ProgramAfter, "Done")
		},
	}
	// sum over i=0..19 of (i + i+1) = 2*(190) + 20 = 400.
	for _, mode := range []core.SaveMode{atom.SaveWrapper, atom.SaveInAnalysis} {
		res, err := atom.Instrument(app, tool, atom.Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		out, err := atom.RunProgram(res.Exe, atom.RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(out.Stdout), "argsum=400\n") {
			t.Errorf("mode %v: stdout = %q, want argsum=400", mode, out.Stdout)
		}
	}
}
