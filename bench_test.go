package atom_test

// The benchmark harness regenerating the paper's evaluation:
//
//   - BenchmarkInstrument/<tool> — Figure 5: time for ATOM to instrument
//     the 20-program suite with each tool. Reported per-program
//     (ms/program metric) for comparison with the paper's "Average Time"
//     column.
//
//   - BenchmarkOverhead/<tool> — Figure 6: execution of the instrumented
//     programs relative to uninstrumented, as the deterministic
//     instruction ratio (ratio metric) plus wall time.
//
//   - BenchmarkSaveMode, BenchmarkRegSummary — ablations of the design
//     choices Section 4 discusses: wrapper vs in-analysis saves, and the
//     data-flow register summary vs saving all caller-save registers.
//
//   - BenchmarkScheduler, BenchmarkVM, BenchmarkCompile — substrate
//     costs: pipe's static dual-issue scheduling, raw interpreter speed,
//     and MiniC compilation.
//
// Run everything:  go test -bench=. -benchmem
// One figure:      go test -bench=BenchmarkOverhead -benchtime=1x

import (
	"math"
	"testing"

	"atom"
	"atom/internal/build"
	"atom/internal/core"
	"atom/internal/figures"
	"atom/internal/om"
	"atom/internal/rtl"
	"atom/internal/spec"
	"atom/internal/tools"
	"atom/internal/vm"
)

// fig6Programs is the subset used per benchmark iteration; pass
// -bench=BenchmarkOverhead -benchtime=1x and see EXPERIMENTS.md for the
// full-suite table (cmd/atom -table fig6).
var fig6Programs = []string{"eqntott", "queens", "spice", "fpppp", "tomcatv", "gcc"}

// BenchmarkInstrument regenerates Figure 5: instrumentation time per tool
// across the whole suite.
func BenchmarkInstrument(b *testing.B) {
	// Applications are built outside every timer (the paper measures
	// ATOM's processing, not the compiler's).
	var apps []string
	for _, p := range spec.Suite() {
		if _, err := spec.Build(p.Name); err != nil {
			b.Fatal(err)
		}
		apps = append(apps, p.Name)
	}
	for _, name := range tools.Names() {
		name := name
		tool, _ := tools.ByName(name)
		// cold: the full two-step cost for a single program — compile and
		// link the tool's analysis image, then rewrite. This is what the
		// first program of a suite (or a one-off run) pays.
		b.Run(name+"/cold", func(b *testing.B) {
			exe, _ := spec.Build(apps[0])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				core.ResetImageCache(build.ScopeMemory)
				rtl.ResetObjectCache(build.ScopeMemory)
				b.StartTimer()
				if _, err := core.Instrument(exe, tool, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		// warm: per-program rewrite cost with the tool image already
		// built — the paper's Figure 5 "Average Time" regime, where one
		// tool is applied across the whole suite.
		b.Run(name+"/warm", func(b *testing.B) {
			if _, err := core.BuildToolImage(tool, core.Options{}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, pn := range apps {
					exe, _ := spec.Build(pn)
					if _, err := core.Instrument(exe, tool, core.Options{}); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			perProg := float64(b.Elapsed().Milliseconds()) / float64(b.N) / float64(len(apps))
			b.ReportMetric(perProg, "ms/program")
		})
	}
}

// BenchmarkInstrumentSuite measures the parallel fan-out driver: the
// whole 20-program suite instrumented with one tool at GOMAXPROCS
// workers, sharing a single cached analysis image.
func BenchmarkInstrumentSuite(b *testing.B) {
	var apps []*atom.Executable
	for _, p := range spec.Suite() {
		exe, err := spec.Build(p.Name)
		if err != nil {
			b.Fatal(err)
		}
		apps = append(apps, exe)
	}
	tool, _ := tools.ByName("cache")
	if _, err := core.BuildToolImage(tool, core.Options{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := atom.InstrumentSuite(apps, tool, core.Options{}, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perProg := float64(b.Elapsed().Milliseconds()) / float64(b.N) / float64(len(apps))
	b.ReportMetric(perProg, "ms/program")
}

// BenchmarkInstrumentDiskWarm measures the third cost regime the
// persistent store adds beside cold and memory-warm: a fresh process
// against a warm cache directory. Every iteration drops the in-memory
// caches (what a new process sees) and instruments with every artifact —
// tool image, compiled objects, IR blob — decoded from a DiskStore
// instead of rebuilt. Compare with BenchmarkInstrument/<tool>/cold
// (everything rebuilt) and /warm (everything in memory).
func BenchmarkInstrumentDiskWarm(b *testing.B) {
	ds, err := build.OpenDiskStore(nil, b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	prev := build.SwapStore(ds)
	defer func() {
		build.SwapStore(prev)
		ds.Close()
	}()

	exe, err := spec.Build("eqntott")
	if err != nil {
		b.Fatal(err)
	}
	tool, _ := tools.ByName("cache")
	// Seed the store: one cold pass from empty memory persists every
	// artifact.
	core.ResetImageCache(build.ScopeMemory)
	rtl.ResetObjectCache(build.ScopeMemory)
	build.ResetIRCache(build.ScopeMemory)
	if _, err := core.Instrument(exe, tool, core.Options{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		core.ResetImageCache(build.ScopeMemory)
		rtl.ResetObjectCache(build.ScopeMemory)
		build.ResetIRCache(build.ScopeMemory)
		b.StartTimer()
		if _, err := core.Instrument(exe, tool, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if s := core.ImageCacheStats(); s.Builds != 0 {
		b.Fatalf("disk-warm iterations rebuilt the image %d times", s.Builds)
	}
}

// BenchmarkOverhead regenerates Figure 6: the instrumented/uninstrumented
// instruction ratio per tool (geometric mean over fig6Programs).
func BenchmarkOverhead(b *testing.B) {
	for _, name := range tools.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				logSum := 0.0
				for _, pn := range fig6Programs {
					r, err := figures.RatioFor(name, pn, core.Options{})
					if err != nil {
						b.Fatal(err)
					}
					logSum += math.Log(r)
				}
				b.ReportMetric(math.Exp(logSum/float64(len(fig6Programs))), "ratio")
			}
		})
	}
}

// BenchmarkSaveMode ablates the register-save strategy on the branch tool
// (per-event instrumentation, so the save cost dominates): wrapper
// routines (default), saves spliced into the analysis routines (the
// paper's higher optimization option), and both with/without wrappers is
// visible in the ratio metric.
func BenchmarkSaveMode(b *testing.B) {
	cases := []struct {
		name string
		opts core.Options
	}{
		{"wrapper", core.Options{Mode: core.SaveWrapper}},
		{"inanalysis", core.Options{Mode: core.SaveInAnalysis}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := figures.RatioFor("branch", "eqntott", c.opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r, "ratio")
			}
		})
	}
}

// BenchmarkRegSummary ablates the interprocedural data-flow summary: with
// it, only the registers an analysis routine can clobber are saved;
// without it, every caller-save register is.
func BenchmarkRegSummary(b *testing.B) {
	cases := []struct {
		name string
		opts core.Options
	}{
		{"summary", core.Options{}},
		{"save-all", core.Options{NoRegSummary: true}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := figures.RatioFor("cache", "eqntott", c.opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r, "ratio")
			}
		})
	}
}

// BenchmarkLiveReg ablates the LOCAL live-register refinement (one-block
// lookahead), the first rung of the liveness ladder; both sides disable
// the global analysis so its effect is isolated. The win is modest —
// most sites save only ra plus argument registers, and within one block
// little is provably dead.
func BenchmarkLiveReg(b *testing.B) {
	for _, c := range []struct {
		name string
		opts core.Options
	}{
		{"baseline", core.Options{NoLiveness: true}},
		{"livereg", core.Options{NoLiveness: true, LiveRegOpt: true}},
	} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := figures.RatioFor("gprof", "spice", c.opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r, "ratio")
			}
		})
	}
}

// BenchmarkLiveness ablates the global register-liveness analysis
// (the paper's "Only the live registers need to be saved and restored"
// refinement, the top rung of the ladder): per-tool, the instrumented/
// uninstrumented instruction ratio and the average registers saved per
// site with the analysis on (default) and off. The per-event tools show
// the effect most clearly — every site that saves fewer registers
// executes fewer loads and stores per event.
func BenchmarkLiveness(b *testing.B) {
	for _, tname := range []string{"branch", "cache", "prof"} {
		tname := tname
		tool, _ := tools.ByName(tname)
		for _, c := range []struct {
			name string
			opts core.Options
		}{
			{"on", core.Options{}},
			{"off", core.Options{NoLiveness: true}},
		} {
			c := c
			b.Run(tname+"/"+c.name, func(b *testing.B) {
				exe, err := spec.Build("eqntott")
				if err != nil {
					b.Fatal(err)
				}
				var ratio float64
				var saved, sites int
				for i := 0; i < b.N; i++ {
					res, err := core.Instrument(exe, tool, c.opts)
					if err != nil {
						b.Fatal(err)
					}
					saved, sites = res.Stats.SavedRegs, res.Stats.Calls
					r, err := figures.RatioFor(tname, "eqntott", c.opts)
					if err != nil {
						b.Fatal(err)
					}
					ratio = r
				}
				b.ReportMetric(ratio, "ratio")
				if sites > 0 {
					b.ReportMetric(float64(saved)/float64(sites), "regs/site")
				}
			})
		}
	}
}

// BenchmarkInline ablates the analysis-routine inliner: per-tool, the
// instrumented/uninstrumented instruction ratio, registers saved per
// site, and call sites inlined with splicing on (default) and off. The
// tools whose per-event routines classify as inlinable leaves — gprof,
// prof, pipe — drop the bsr/ret pair, the wrapper transit, and the ra
// save at every spliced site, so their dynamic instruction counts fall
// well past the 10% acceptance bar; tools whose routines are too large
// (cache, branch) are unchanged by construction.
func BenchmarkInline(b *testing.B) {
	for _, tname := range []string{"gprof", "prof", "pipe", "inline"} {
		tname := tname
		tool, _ := tools.ByName(tname)
		for _, c := range []struct {
			name string
			opts core.Options
		}{
			{"on", core.Options{}},
			{"off", core.Options{NoInline: true}},
		} {
			c := c
			b.Run(tname+"/"+c.name, func(b *testing.B) {
				exe, err := spec.Build("queens")
				if err != nil {
					b.Fatal(err)
				}
				var ratio float64
				var saved, sites, inlined int
				for i := 0; i < b.N; i++ {
					res, err := core.Instrument(exe, tool, c.opts)
					if err != nil {
						b.Fatal(err)
					}
					saved, sites, inlined = res.Stats.SavedRegs, res.Stats.Calls, res.Stats.InlinedSites
					r, err := figures.RatioFor(tname, "queens", c.opts)
					if err != nil {
						b.Fatal(err)
					}
					ratio = r
				}
				b.ReportMetric(ratio, "ratio")
				if sites > 0 {
					b.ReportMetric(float64(saved)/float64(sites), "regs/site")
				}
				b.ReportMetric(float64(inlined), "inlined")
			})
		}
	}
}

// BenchmarkScheduler measures pipe's static dual-issue scheduling (the
// work that makes pipe the slowest tool to instrument with in Figure 5).
func BenchmarkScheduler(b *testing.B) {
	exe, err := spec.Build("su2cor")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := om.Build(exe)
	if err != nil {
		b.Fatal(err)
	}
	q := core.NewInstrumentation(prog)
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		for _, p := range prog.Procs {
			for _, blk := range p.Blocks {
				c, _ := tools.ScheduleBlock(q, blk)
				cycles += c
			}
		}
	}
	_ = cycles
}

// BenchmarkVM measures raw interpreter speed in instructions per second.
func BenchmarkVM(b *testing.B) {
	exe, err := spec.Build("eqntott")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var insts uint64
	for i := 0; i < b.N; i++ {
		m, err := vm.New(exe, vm.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
		insts += m.Icount
	}
	b.StopTimer()
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds()/1e6, "Minst/s")
}

// BenchmarkCompile measures MiniC compilation of the whole suite.
func BenchmarkCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range spec.Suite() {
			if _, err := rtl.BuildProgram(p.Name+".c", p.Src); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkLift measures the lift stage through the content-addressed
// IR cache: cold is a full build + encode + decode per call, warm is a
// cached-blob decode — the cost every Instrument/Apply after the first
// pays for the same executable.
func BenchmarkLift(b *testing.B) {
	exe, err := spec.Build("gcc") // the largest suite program
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			build.ResetIRCache(build.ScopeMemory)
			b.StartTimer()
			if _, err := core.Lift(exe); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		build.ResetIRCache(build.ScopeMemory)
		if _, err := core.Lift(exe); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.Lift(exe); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkIRRoundTrip isolates the atom-ir/v1 serialization costs from
// the lift itself: encode, decode, and (for scale) the om.Build they
// substitute for.
func BenchmarkIRRoundTrip(b *testing.B) {
	exe, err := spec.Build("gcc")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := om.Build(exe)
	if err != nil {
		b.Fatal(err)
	}
	blob, err := om.Encode(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		b.SetBytes(int64(len(blob)))
		for i := 0; i < b.N; i++ {
			if _, err := om.Encode(prog); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(int64(len(blob)))
		for i := 0; i < b.N; i++ {
			if _, err := om.Decode(blob); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := om.Build(exe); err != nil {
				b.Fatal(err)
			}
		}
	})
}
