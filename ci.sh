#!/bin/sh
# CI gate: formatting, vet, build, race-enabled tests, benchmark smoke,
# and a trace smoke that drives the full pipeline and validates the
# emitted Chrome trace. Equivalent to `make ci`, for environments
# without make.
set -eux

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt: needs formatting: $fmt" >&2
    exit 1
fi

go vet ./...
go build ./...

# Repo lint gate: the custom vettool enforces project conventions the
# stock vet cannot — no ATOM_CACHE_DIR reads outside cmd/atom, and the
# *obs.Ctx stage context leading every exported signature — through the
# cmd/go vettool protocol.
vettmp=$(mktemp -d)
go build -o "$vettmp/atomvet" ./cmd/atomvet
go vet -vettool="$vettmp/atomvet" ./...
rm -rf "$vettmp"

go test -race ./...
go test -bench=. -benchtime=1x -run='^$' ./...

# Trace smoke: compile and link a program, instrument it with tracing
# on, and validate the trace file (non-empty, well-formed, covering
# compile/link/plan/image-build/apply with cache attribution).
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
cat > "$tmp/smoke.c" <<'EOF'
#include <stdio.h>
int main() { printf("ok\n"); return 0; }
EOF
go run ./cmd/minicc -o "$tmp/smoke.o" "$tmp/smoke.c"
go run ./cmd/alink -o "$tmp/smoke.x" "$tmp/smoke.o"
go run ./cmd/atom -t branch -trace "$tmp/smoke.trace.json" -o "$tmp/smoke.atom" "$tmp/smoke.x"
go run ./cmd/atom -verify-trace "$tmp/smoke.trace.json"

# Profile smoke: instrument and run the program with the sampling
# profiler attached, twice; the folded-stack profiles must be
# syntactically valid and byte-identical (deterministic sampling).
go run ./cmd/atom -t branch -run -profile "$tmp/p1.folded" -profile-format=folded -profile-period 500 "$tmp/smoke.x" > /dev/null
go run ./cmd/atom -t branch -run -profile "$tmp/p2.folded" -profile-format=folded -profile-period 500 "$tmp/smoke.x" > /dev/null
go run ./cmd/atom -verify-folded "$tmp/p1.folded"
cmp "$tmp/p1.folded" "$tmp/p2.folded"
go run ./cmd/atom -t branch -run -profile "$tmp/p.flat" -profile-period 500 "$tmp/smoke.x" > /dev/null
grep -q '# atom prof: period=500' "$tmp/p.flat"

# Vet gate: instrument the smoke program with EVERY built-in tool under
# -vet, so the IR verifier checks the input program, the layout PC maps,
# and the rewritten text of each tool's output.
go build -o "$tmp/atom" ./cmd/atom
for t in $("$tmp/atom" -list | awk '{print $1}'); do
    "$tmp/atom" -vet -t "$t" -o "$tmp/smoke.$t.atom" "$tmp/smoke.x"
done

# Inline gate: every tool verifies under -vet with the inliner both on
# (the default, checked just above) and off, and the examples must
# produce identical program and analysis output with and without
# -noinline (the "instrumented:" size line legitimately differs between
# modes, so it is filtered before comparing).
for t in $("$tmp/atom" -list | awk '{print $1}'); do
    "$tmp/atom" -vet -noinline -t "$t" -o "$tmp/smoke.$t.noinline.atom" "$tmp/smoke.x"
done
go run ./examples/quickstart | grep -v '^instrumented:' > "$tmp/q.on"
go run ./examples/quickstart -noinline | grep -v '^instrumented:' > "$tmp/q.off"
cmp "$tmp/q.on" "$tmp/q.off"
go run ./examples/cachesim > "$tmp/c.on"
go run ./examples/cachesim -noinline > "$tmp/c.off"
cmp "$tmp/c.on" "$tmp/c.off"

# IR gate: serialize the smoke program's lifted IR, then instrument from
# the blob with EVERY tool (in a separate process from the emit); each
# output must be byte-identical to the vet gate's in-memory result.
"$tmp/atom" -emit-ir "$tmp/ir" "$tmp/smoke.x"
for t in $("$tmp/atom" -list | awk '{print $1}'); do
    "$tmp/atom" -vet -t "$t" -ir-in "$tmp/ir/smoke.ir" -o "$tmp/smoke.$t.ir.atom"
    cmp "$tmp/smoke.$t.atom" "$tmp/smoke.$t.ir.atom"
done

# Persistence gate: two fresh processes sharing one -cache-dir. The first
# (cold) builds and persists every artifact; the second must instrument
# with ZERO builds in every cache — the tool image and the IR blob served
# from disk — and byte-identical output. Then every blob is corrupted in
# place: the third run must quarantine what it reads, rebuild silently
# (exit 0), and still produce identical output.
"$tmp/atom" -t branch -cache-dir "$tmp/cache" -o "$tmp/smoke.cold.atom" "$tmp/smoke.x"
"$tmp/atom" -t branch -cache-dir "$tmp/cache" -stats -o "$tmp/smoke.warm.atom" "$tmp/smoke.x" > "$tmp/warm.stats"
cmp "$tmp/smoke.cold.atom" "$tmp/smoke.warm.atom"
grep -q 'image cache:.*, 0 builds' "$tmp/warm.stats"
grep -q 'object cache:.*, 0 builds' "$tmp/warm.stats"
grep -q 'ir cache:.*, 0 builds' "$tmp/warm.stats"
grep -Eq 'image cache:.* [1-9][0-9]* disk hits' "$tmp/warm.stats"
grep -Eq 'ir cache:.* [1-9][0-9]* disk hits' "$tmp/warm.stats"
for f in $(find "$tmp/cache/objects" -type f); do
    head -c 20 "$f" > "$f.trunc" && mv "$f.trunc" "$f"
done
"$tmp/atom" -t branch -cache-dir "$tmp/cache" -stats -o "$tmp/smoke.rebuilt.atom" "$tmp/smoke.x" > "$tmp/rebuild.stats"
cmp "$tmp/smoke.cold.atom" "$tmp/smoke.rebuilt.atom"
grep -Eq 'disk store:.* [1-9][0-9]* corrupt' "$tmp/rebuild.stats"

# Telemetry gate: the embedded debug server, live. First a multi-program
# instrument batch brings the server up and down cleanly and counts its
# programs (atom.batch.done) in the metrics snapshot. Then a long VM run
# with -debug-addr is scraped mid-flight — /healthz, /metrics twice (the
# second monotonically >= the first on every _total, and the series
# ordering byte-identical), and 100 NDJSON events — using atom's own
# -scrape so the gate needs no curl; the run must still exit 0.
cp "$tmp/smoke.x" "$tmp/smoke2.x"
cp "$tmp/smoke.x" "$tmp/smoke3.x"
"$tmp/atom" -t branch -j 2 -debug-addr 127.0.0.1:0 -metrics "$tmp/batch.metrics" \
    "$tmp/smoke.x" "$tmp/smoke2.x" "$tmp/smoke3.x" 2> "$tmp/batch.err"
grep -q 'telemetry listening on http://' "$tmp/batch.err"
grep -Eq 'atom\.batch\.done +3' "$tmp/batch.metrics"
cat > "$tmp/long.c" <<'EOF'
#include <stdio.h>
int main() { long i, s = 0; for (i = 0; i < 5000000; i++) s += i; printf("%ld\n", s); return 0; }
EOF
go run ./cmd/minicc -o "$tmp/long.o" "$tmp/long.c"
go run ./cmd/alink -o "$tmp/long.x" "$tmp/long.o"
"$tmp/atom" -t branch -run -debug-addr 127.0.0.1:0 "$tmp/long.x" > /dev/null 2> "$tmp/tel.err" &
telpid=$!
addr=""
i=0
while [ $i -lt 200 ]; do
    addr=$(sed -n 's|.*telemetry listening on http://||p' "$tmp/tel.err")
    [ -n "$addr" ] && break
    i=$((i + 1))
    sleep 0.1
done
test -n "$addr"
"$tmp/atom" -scrape "http://$addr/healthz" | grep -qx ok
"$tmp/atom" -scrape "http://$addr/metrics" > "$tmp/m1.txt"
"$tmp/atom" -scrape "http://$addr/debug/events?n=100" > "$tmp/ev.txt"
"$tmp/atom" -scrape "http://$addr/metrics" > "$tmp/m2.txt"
test "$(wc -l < "$tmp/ev.txt")" -eq 100
test "$(grep -c '"seq"' "$tmp/ev.txt")" -eq 100
grep -q '^atom_store_image_miss_total' "$tmp/m1.txt"
awk '!/^#/{print $1}' "$tmp/m1.txt" > "$tmp/names1"
awk '!/^#/{print $1}' "$tmp/m2.txt" > "$tmp/names2"
grep -Fxf "$tmp/names1" "$tmp/names2" > "$tmp/names2.common"
cmp "$tmp/names1" "$tmp/names2.common"
awk 'NR==FNR { if ($1 ~ /_total/) v[$1]=$2; next }
     ($1 in v) && ($2+0 < v[$1]+0) { print "regressed:", $1, v[$1], "->", $2; bad=1 }
     END { exit bad }' "$tmp/m1.txt" "$tmp/m2.txt"
wait "$telpid"

# Analyze gate: the static-analysis pass manager reports every built-in
# tool image clean, byte-identically (text and JSON) across two runs,
# and the smoke programs analyze clean as applications; then a seeded
# save-discipline defect must be caught — an image that clobbers a
# callee-save register fails -analyze with the toollint diagnostic.
for t in $("$tmp/atom" -list | awk '{print $1}'); do
    "$tmp/atom" -analyze -t "$t" -analyze-json "$tmp/an1.$t.json" > "$tmp/an1.$t.txt"
    "$tmp/atom" -analyze -t "$t" -analyze-json "$tmp/an2.$t.json" > "$tmp/an2.$t.txt"
    cmp "$tmp/an1.$t.txt" "$tmp/an2.$t.txt"
    cmp "$tmp/an1.$t.json" "$tmp/an2.$t.json"
    grep -q "tool:$t: clean" "$tmp/an1.$t.txt"
done
"$tmp/atom" -analyze "$tmp/smoke.x" "$tmp/long.x" > "$tmp/an.apps.txt"
grep -q 'smoke.x: clean' "$tmp/an.apps.txt"
grep -q 'long.x: clean' "$tmp/an.apps.txt"
cat > "$tmp/defect.s" <<'EOS'
	.text
	.globl main
	.ent main
main:
	clr v0
	ret (ra)
	.end main

	.globl Clobber
	.ent Clobber
Clobber:
	addq s0, 1, s0
	ret (ra)
	.end Clobber
EOS
go run ./cmd/aasm -o "$tmp/defect.o" "$tmp/defect.s"
go run ./cmd/alink -o "$tmp/defect.x" "$tmp/defect.o"
if "$tmp/atom" -analyze -analyze-as tool "$tmp/defect.x" > "$tmp/an.defect.txt"; then
    echo "analyze: seeded save-discipline defect not caught" >&2
    exit 1
fi
grep -q 'clobbers callee-save register s0' "$tmp/an.defect.txt"

# VM-mode gate: queens (deep recursion, dense conditional branches)
# uninstrumented and under two tools, executed with every -vm-mode —
# plain decode-each, predecode, and the trace-linked superblock cache.
# Stdout, the tool report files, the -stats counter line (so icount,
# loads, stores match exactly), and the deterministic folded profile
# must be byte-identical across the dispatch ladder, and the -run bench
# JSON must carry the schema-v7 vm_minst_s retirement rate.
cat > "$tmp/queens.c" <<'EOF'
#include <stdio.h>
long colUsed[16];
long diag1[32];
long diag2[32];
long solutions;
long N;
void place(long row) {
	if (row == N) { solutions++; return; }
	long c;
	for (c = 0; c < N; c++) {
		if (colUsed[c] || diag1[row + c] || diag2[row - c + N]) continue;
		colUsed[c] = 1; diag1[row + c] = 1; diag2[row - c + N] = 1;
		place(row + 1);
		colUsed[c] = 0; diag1[row + c] = 0; diag2[row - c + N] = 0;
	}
}
int main() {
	N = 8;
	place(0);
	printf("queens: n=%d solutions=%d\n", N, solutions);
	return 0;
}
EOF
go run ./cmd/minicc -o "$tmp/queens.o" "$tmp/queens.c"
go run ./cmd/alink -o "$tmp/queens.x" "$tmp/queens.o"
for cfg in none branch cache; do
    tflag=""
    if [ "$cfg" != none ]; then tflag="-t $cfg"; fi
    for mode in plain predecode superblock; do
        d="$tmp/vm/$cfg.$mode"
        mkdir -p "$d"
        (cd "$d" && "$tmp/atom" $tflag -run -vm-mode="$mode" -stats "$tmp/queens.x" > out.txt 2> stats.txt)
        (cd "$d" && "$tmp/atom" $tflag -run -vm-mode="$mode" -profile p.folded -profile-format=folded -profile-period 997 "$tmp/queens.x" > /dev/null)
    done
    grep -q '^icount=' "$tmp/vm/$cfg.plain/stats.txt"
    diff -r "$tmp/vm/$cfg.plain" "$tmp/vm/$cfg.predecode"
    diff -r "$tmp/vm/$cfg.plain" "$tmp/vm/$cfg.superblock"
done
grep -q 'queens: n=8 solutions=92' "$tmp/vm/none.superblock/out.txt"
"$tmp/atom" -run -bench-json "$tmp/vm/run.json" "$tmp/queens.x" > /dev/null
grep -q '"schema": "atom-run/v7"' "$tmp/vm/run.json"
grep -q '"vm_minst_s"' "$tmp/vm/run.json"
