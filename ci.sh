#!/bin/sh
# CI gate: formatting, vet, build, race-enabled tests, benchmark smoke,
# and a trace smoke that drives the full pipeline and validates the
# emitted Chrome trace. Equivalent to `make ci`, for environments
# without make.
set -eux

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt: needs formatting: $fmt" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...
go test -bench=. -benchtime=1x -run='^$' ./...

# Trace smoke: compile and link a program, instrument it with tracing
# on, and validate the trace file (non-empty, well-formed, covering
# compile/link/plan/image-build/apply with cache attribution).
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
cat > "$tmp/smoke.c" <<'EOF'
#include <stdio.h>
int main() { printf("ok\n"); return 0; }
EOF
go run ./cmd/minicc -o "$tmp/smoke.o" "$tmp/smoke.c"
go run ./cmd/alink -o "$tmp/smoke.x" "$tmp/smoke.o"
go run ./cmd/atom -t branch -trace "$tmp/smoke.trace.json" -o "$tmp/smoke.atom" "$tmp/smoke.x"
go run ./cmd/atom -verify-trace "$tmp/smoke.trace.json"

# Profile smoke: instrument and run the program with the sampling
# profiler attached, twice; the folded-stack profiles must be
# syntactically valid and byte-identical (deterministic sampling).
go run ./cmd/atom -t branch -run -profile "$tmp/p1.folded" -profile-format=folded -profile-period 500 "$tmp/smoke.x" > /dev/null
go run ./cmd/atom -t branch -run -profile "$tmp/p2.folded" -profile-format=folded -profile-period 500 "$tmp/smoke.x" > /dev/null
go run ./cmd/atom -verify-folded "$tmp/p1.folded"
cmp "$tmp/p1.folded" "$tmp/p2.folded"
go run ./cmd/atom -t branch -run -profile "$tmp/p.flat" -profile-period 500 "$tmp/smoke.x" > /dev/null
grep -q '# atom prof: period=500' "$tmp/p.flat"

# Vet gate: instrument the smoke program with EVERY built-in tool under
# -vet, so the IR verifier checks the input program, the layout PC maps,
# and the rewritten text of each tool's output.
go build -o "$tmp/atom" ./cmd/atom
for t in $("$tmp/atom" -list | awk '{print $1}'); do
    "$tmp/atom" -vet -t "$t" -o "$tmp/smoke.$t.atom" "$tmp/smoke.x"
done

# Inline gate: every tool verifies under -vet with the inliner both on
# (the default, checked just above) and off, and the examples must
# produce identical program and analysis output with and without
# -noinline (the "instrumented:" size line legitimately differs between
# modes, so it is filtered before comparing).
for t in $("$tmp/atom" -list | awk '{print $1}'); do
    "$tmp/atom" -vet -noinline -t "$t" -o "$tmp/smoke.$t.noinline.atom" "$tmp/smoke.x"
done
go run ./examples/quickstart | grep -v '^instrumented:' > "$tmp/q.on"
go run ./examples/quickstart -noinline | grep -v '^instrumented:' > "$tmp/q.off"
cmp "$tmp/q.on" "$tmp/q.off"
go run ./examples/cachesim > "$tmp/c.on"
go run ./examples/cachesim -noinline > "$tmp/c.off"
cmp "$tmp/c.on" "$tmp/c.off"

# IR gate: serialize the smoke program's lifted IR, then instrument from
# the blob with EVERY tool (in a separate process from the emit); each
# output must be byte-identical to the vet gate's in-memory result.
"$tmp/atom" -emit-ir "$tmp/ir" "$tmp/smoke.x"
for t in $("$tmp/atom" -list | awk '{print $1}'); do
    "$tmp/atom" -vet -t "$t" -ir-in "$tmp/ir/smoke.ir" -o "$tmp/smoke.$t.ir.atom"
    cmp "$tmp/smoke.$t.atom" "$tmp/smoke.$t.ir.atom"
done

# Persistence gate: two fresh processes sharing one -cache-dir. The first
# (cold) builds and persists every artifact; the second must instrument
# with ZERO builds in every cache — the tool image and the IR blob served
# from disk — and byte-identical output. Then every blob is corrupted in
# place: the third run must quarantine what it reads, rebuild silently
# (exit 0), and still produce identical output.
"$tmp/atom" -t branch -cache-dir "$tmp/cache" -o "$tmp/smoke.cold.atom" "$tmp/smoke.x"
"$tmp/atom" -t branch -cache-dir "$tmp/cache" -stats -o "$tmp/smoke.warm.atom" "$tmp/smoke.x" > "$tmp/warm.stats"
cmp "$tmp/smoke.cold.atom" "$tmp/smoke.warm.atom"
grep -q 'image cache:.*, 0 builds' "$tmp/warm.stats"
grep -q 'object cache:.*, 0 builds' "$tmp/warm.stats"
grep -q 'ir cache:.*, 0 builds' "$tmp/warm.stats"
grep -Eq 'image cache:.* [1-9][0-9]* disk hits' "$tmp/warm.stats"
grep -Eq 'ir cache:.* [1-9][0-9]* disk hits' "$tmp/warm.stats"
for f in $(find "$tmp/cache/objects" -type f); do
    head -c 20 "$f" > "$f.trunc" && mv "$f.trunc" "$f"
done
"$tmp/atom" -t branch -cache-dir "$tmp/cache" -stats -o "$tmp/smoke.rebuilt.atom" "$tmp/smoke.x" > "$tmp/rebuild.stats"
cmp "$tmp/smoke.cold.atom" "$tmp/smoke.rebuilt.atom"
grep -Eq 'disk store:.* [1-9][0-9]* corrupt' "$tmp/rebuild.stats"
