// Command aasm assembles Alpha-subset assembly into relocatable object
// modules.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"atom/internal/asm"
)

func main() {
	out := flag.String("o", "", "output path (default: input with .o)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: aasm [-o out.o] file.s")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	obj, err := asm.Assemble(path, string(src))
	if err != nil {
		fatal(err)
	}
	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(filepath.Base(path), ".s") + ".o"
	}
	if err := obj.WriteFile(dst); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aasm:", err)
	os.Exit(1)
}
