// Command adis disassembles the text section of an object module or
// executable, one procedure per section.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"atom/internal/alpha"
	"atom/internal/aout"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: adis file")
		os.Exit(2)
	}
	f, err := aout.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "adis:", err)
		os.Exit(1)
	}
	fns := f.Funcs()
	nameAt := map[uint64]string{}
	for _, fn := range fns {
		nameAt[fn.Value] = fn.Name
	}
	base := f.TextAddr
	for off := 0; off+4 <= len(f.Text); off += 4 {
		addr := base + uint64(off)
		if n, ok := nameAt[addr]; ok {
			fmt.Printf("\n%s:\n", n)
		}
		w := binary.LittleEndian.Uint32(f.Text[off:])
		in, err := alpha.Decode(w)
		if err != nil {
			fmt.Printf("%#10x:  .word %#08x\n", addr, w)
			continue
		}
		s := in.String()
		if in.Op.Format() == alpha.FormatBranch {
			target := addr + 4 + uint64(int64(in.Disp)*4)
			s = fmt.Sprintf("%s %s, %#x", in.Op, in.Ra, target)
			if tn, ok := nameAt[target]; ok {
				s += " <" + tn + ">"
			}
		}
		fmt.Printf("%#10x:  %s\n", addr, s)
	}
}
