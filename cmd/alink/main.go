// Command alink links object modules into an executable. By default it
// adds crt0 and resolves against the runtime library, like cc's driver
// handing objects to ld.
package main

import (
	"flag"
	"fmt"
	"os"

	"atom/internal/aout"
	"atom/internal/link"
	"atom/internal/rtl"
)

func main() {
	var (
		out      = flag.String("o", "a.x", "output executable")
		noStdlib = flag.Bool("nostdlib", false, "do not link crt0 and the runtime library")
		entry    = flag.String("entry", "", `entry symbol (default __start; "-" for none)`)
		textAddr = flag.Uint64("text", 0, "text load address (default 0x100000)")
		dataAddr = flag.Uint64("data", 0, "data load address (default 0x400000)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: alink [-o a.x] file.o...")
		os.Exit(2)
	}
	var objs []*aout.File
	if !*noStdlib {
		c0, err := rtl.Crt0()
		if err != nil {
			fatal(err)
		}
		objs = append(objs, c0)
	}
	for _, p := range flag.Args() {
		obj, err := aout.ReadFile(p)
		if err != nil {
			fatal(err)
		}
		objs = append(objs, obj)
	}
	cfg := link.Config{Entry: *entry, TextAddr: *textAddr, DataAddr: *dataAddr}
	var libs []*link.Library
	if !*noStdlib {
		lib, err := rtl.Lib()
		if err != nil {
			fatal(err)
		}
		libs = append(libs, lib)
	}
	exe, err := link.Link(cfg, objs, libs...)
	if err != nil {
		fatal(err)
	}
	if err := exe.WriteFile(*out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alink:", err)
	os.Exit(1)
}
