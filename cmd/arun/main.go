// Command arun executes a linked program on the Alpha-subset VM. Files in
// -fs are visible to the program; files it writes are copied back there.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"atom/internal/aout"
	"atom/internal/vm"
)

func main() {
	var (
		fsDir    = flag.String("fs", "", "directory served as the program's filesystem (outputs written back)")
		maxInstr = flag.Uint64("max", 0, "instruction budget (0 = default)")
		heapOff  = flag.Uint64("heap", 0, "analysis heap zone offset (for partitioned-heap instrumented programs)")
		stats    = flag.Bool("stats", false, "print execution statistics to stderr")
		trace    = flag.Bool("trace", false, "print every retired instruction to stderr (very slow)")
	)
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: arun [-fs dir] prog.x [args...]")
		os.Exit(2)
	}
	exe, err := aout.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cfg := vm.Config{
		Arg0:               flag.Arg(0),
		Args:               flag.Args()[1:],
		MaxInstr:           *maxInstr,
		AnalysisHeapOffset: *heapOff,
		FS:                 map[string][]byte{},
	}
	if *trace {
		cfg.Trace = os.Stderr
	}
	if *fsDir != "" {
		entries, err := os.ReadDir(*fsDir)
		if err != nil {
			fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			data, err := os.ReadFile(filepath.Join(*fsDir, e.Name()))
			if err != nil {
				fatal(err)
			}
			cfg.FS[e.Name()] = data
		}
	}
	stdin, _ := os.ReadFile("/dev/stdin")
	cfg.Stdin = stdin

	m, err := vm.New(exe, cfg)
	if err != nil {
		fatal(err)
	}
	code, err := m.Run()
	os.Stdout.Write(m.Stdout)
	os.Stderr.Write(m.Stderr)
	if err != nil {
		fatal(err)
	}
	for _, path := range m.Paths() {
		dst := path
		if *fsDir != "" {
			dst = filepath.Join(*fsDir, filepath.Base(path))
		}
		if werr := os.WriteFile(dst, m.FSOut[path], 0o644); werr != nil {
			fatal(werr)
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "icount=%d loads=%d stores=%d unaligned=%d\n",
			m.Icount, m.Loads, m.Stores, m.Unaligned)
	}
	os.Exit(code)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "arun:", err)
	os.Exit(1)
}
