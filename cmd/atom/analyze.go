package main

// -analyze mode: run the static-analysis pass manager over lifted
// programs and report findings without instrumenting anything. Units
// come from three places, composable in one invocation: positional .x
// executables, a serialized IR blob (-ir-in), and a tool's freshly
// built analysis image (-t). Reports are deterministic — findings are
// keyed by original PC and procedure name and sorted — so two runs over
// the same inputs render byte-identical text and JSON.

import (
	"fmt"
	"os"
	"path/filepath"

	"atom/internal/aout"
	"atom/internal/core"
	"atom/internal/figures"
	"atom/internal/obs"
	"atom/internal/om"
	"atom/internal/om/analysis"
)

type analyzeConfig struct {
	inputs    []string // positional .x executables
	irIn      string   // serialized IR blob (-ir-in)
	tool      core.Tool
	haveTool  bool
	opts      core.Options
	passSpec  string // -passes: comma-separated names, "" = all
	asKind    string // -analyze-as: "app" | "tool" for inputs and -ir-in
	jsonPath  string // -analyze-json: write the machine report here
	benchJSON string
}

// runAnalyze returns 0 when every report is clean (no warnings or
// errors), 1 when any unit has findings above Info or any input fails
// to load.
func runAnalyze(ctx *obs.Ctx, metricsSink *obs.MetricsSink, cfg analyzeConfig) int {
	passes, err := analysis.Select(cfg.passSpec)
	if err != nil {
		return fail(err)
	}
	kind := analysis.Application
	if cfg.asKind == "tool" {
		kind = analysis.ToolImage
	}

	var reports []*analysis.Report
	if cfg.irIn != "" {
		blob, err := os.ReadFile(cfg.irIn)
		if err != nil {
			return fail(err)
		}
		prog, err := om.DecodeCtx(ctx, blob)
		if err != nil {
			return fail(fmt.Errorf("%s: %w", cfg.irIn, err))
		}
		reports = append(reports, core.AnalyzeProgram(ctx, filepath.Base(cfg.irIn), prog, kind, passes))
	}
	for _, path := range cfg.inputs {
		app, err := aout.ReadFile(path)
		if err != nil {
			return fail(err)
		}
		prog, err := core.LiftCtx(ctx, app)
		if err != nil {
			return fail(fmt.Errorf("%s: %w", path, err))
		}
		reports = append(reports, core.AnalyzeProgram(ctx, filepath.Base(path), prog, kind, passes))
	}
	if cfg.haveTool {
		ti, err := core.BuildToolImageCtx(ctx, cfg.tool, cfg.opts)
		if err != nil {
			return fail(err)
		}
		r, err := ti.Analyze(ctx, passes)
		if err != nil {
			return fail(err)
		}
		reports = append(reports, r)
	}

	clean := true
	for i, r := range reports {
		if i > 0 {
			fmt.Println()
		}
		r.WriteText(os.Stdout)
		if !r.Clean() {
			clean = false
		}
	}
	if cfg.jsonPath != "" {
		data, err := analysis.MarshalReports(reports)
		if err != nil {
			return fail(err)
		}
		if err := os.WriteFile(cfg.jsonPath, data, 0o644); err != nil {
			return fail(err)
		}
	}
	if cfg.benchJSON != "" {
		toolName := ""
		if cfg.haveTool {
			toolName = cfg.tool.Name
		}
		progs := cfg.inputs
		if cfg.irIn != "" {
			progs = append([]string{cfg.irIn}, progs...)
		}
		doc := newRunDoc(ctx, metricsSink, toolName, progs)
		if err := figures.WriteRunJSON(cfg.benchJSON, doc); err != nil {
			return fail(err)
		}
	}
	if !clean {
		return 1
	}
	return 0
}
