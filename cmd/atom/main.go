// Command atom mirrors the paper's command line: it instruments fully
// linked applications with one of the built-in analysis tools,
//
//	atom prog.x -t branch -o prog.atom
//	atom -t cache -j 4 prog1.x prog2.x prog3.x
//
// standing in for `atom prog inst.c anal.c -o prog.atom` (instrumentation
// routines are Go code, so the built-in tools are selected by name; use
// the library API to write new ones). With several input programs the
// tool's analysis image is built once and applied to each program, in
// parallel when -j is given; each output is written next to its input
// with the extension replaced by ".atom". A failing program does not
// abort the batch: the rest are still instrumented, each failure is
// reported, and the exit status is non-zero iff any program failed.
//
// The pipeline is observable end to end:
//
//	atom -t cache -trace t.json prog.x   # Chrome trace (chrome://tracing)
//	atom -t cache -metrics prog.x        # span/counter snapshot on stderr
//	atom -t cache -cpuprofile cpu.pprof prog.x
//	atom -t cache -bench-json run.json prog.x  # per-phase JSON breakdown
//	atom -verify-trace t.json            # validate a trace file (CI smoke)
//
// It also regenerates the paper's evaluation artifacts:
//
//	atom -list                      # the 11 tools
//	atom -table fig5                # Figure 5 (instrumentation time)
//	atom -table fig6                # Figure 6 (execution-time ratios)
//	atom -table fig5 -bench-json f  # same, plus machine-readable JSON
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"atom/internal/aout"
	"atom/internal/core"
	"atom/internal/figures"
	"atom/internal/obs"
	"atom/internal/rtl"
	"atom/internal/tools"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		toolName    = flag.String("t", "", "analysis tool to apply (see -list)")
		outPath     = flag.String("o", "", "output executable (single input only; default: input with .atom extension, or a.atom)")
		toolArgs    = flag.String("args", "", "comma-separated tool arguments (iargv)")
		mode        = flag.String("mode", "wrapper", "register-save mode: wrapper | inanalysis")
		heapOff     = flag.Uint64("heap", 0, "partition the heap: analysis zone offset in bytes (0 = linked sbrks)")
		noSummary   = flag.Bool("nosummary", false, "disable the data-flow register summary (save all caller-save registers)")
		jobs        = flag.Int("j", 1, "instrument up to N input programs in parallel (0 = GOMAXPROCS)")
		list        = flag.Bool("list", false, "list the built-in tools")
		table       = flag.String("table", "", "regenerate a paper table: fig5 | fig6")
		progs       = flag.String("progs", "", "comma-separated suite subset for -table (default: all 20)")
		benchJSON   = flag.String("bench-json", "", "write measurements as JSON: -table rows, or an instrument-mode per-phase breakdown")
		stats       = flag.Bool("stats", false, "print instrumentation and cache statistics")
		layout      = flag.Bool("layout", false, "print the instrumented executable's memory layout (Figure 4)")
		verbose     = flag.Bool("v", false, "progress output for -table")
		tracePath   = flag.String("trace", "", "write a Chrome trace_event JSON of the pipeline to this file")
		metrics     = flag.Bool("metrics", false, "print a span/counter metrics snapshot to stderr")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		verifyTrace = flag.String("verify-trace", "", "validate a trace file written by -trace and exit (CI smoke)")
	)
	flag.Parse()

	switch {
	case *list:
		for _, t := range tools.All() {
			fmt.Printf("%-8s  %s\n", t.Name, t.Description)
		}
		return 0
	case *verifyTrace != "":
		if err := checkTrace(*verifyTrace); err != nil {
			fmt.Fprintln(os.Stderr, "atom:", err)
			return 1
		}
		fmt.Printf("%s: ok\n", *verifyTrace)
		return 0
	case *table != "" || (*benchJSON != "" && *toolName == ""):
		which := *table
		if which == "" {
			which = "fig5"
		}
		return runTable(which, *progs, *benchJSON, *verbose)
	}

	if flag.NArg() < 1 || *toolName == "" {
		fmt.Fprintln(os.Stderr, "usage: atom prog.x [prog2.x ...] -t tool [-o prog.atom] [-j N] [-mode wrapper|inanalysis] [-heap N]")
		fmt.Fprintln(os.Stderr, "       atom -list | -table fig5|fig6 [-bench-json file] | -verify-trace file")
		return 2
	}
	if flag.NArg() > 1 && *outPath != "" {
		return fail(fmt.Errorf("-o is only valid with a single input program (outputs are named <input>.atom)"))
	}
	tool, ok := tools.ByName(*toolName)
	if !ok {
		return fail(fmt.Errorf("unknown tool %q; try -list", *toolName))
	}
	opts := core.Options{HeapOffset: *heapOff, NoRegSummary: *noSummary}
	switch *mode {
	case "wrapper":
		opts.Mode = core.SaveWrapper
	case "inanalysis":
		opts.Mode = core.SaveInAnalysis
	default:
		return fail(fmt.Errorf("bad -mode %q", *mode))
	}
	if *toolArgs != "" {
		opts.ToolArgs = strings.Split(*toolArgs, ",")
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	// The stage context is nil (near-zero overhead) unless some consumer
	// of spans or counters is active.
	var (
		traceSink   *obs.TraceSink
		metricsSink *obs.MetricsSink
		sinks       []obs.Sink
	)
	if *tracePath != "" {
		traceSink = &obs.TraceSink{}
		sinks = append(sinks, traceSink)
	}
	if *metrics || *benchJSON != "" {
		metricsSink = &obs.MetricsSink{}
		sinks = append(sinks, metricsSink)
	}
	var ctx *obs.Ctx
	if len(sinks) > 0 {
		ctx = obs.New(sinks...)
	}

	// Read every input before instrumenting any; per-program read errors
	// fail soft like instrumentation errors do.
	inputs := flag.Args()
	apps := make([]*aout.File, len(inputs))
	errs := make([]error, len(inputs))
	for i, path := range inputs {
		app, err := aout.ReadFile(path)
		if err != nil {
			errs[i] = err
			continue
		}
		apps[i] = app
	}

	// Instrument the readable subset, then fold results and errors back
	// into input order.
	var good []*aout.File
	var goodIdx []int
	for i, app := range apps {
		if app != nil {
			good = append(good, app)
			goodIdx = append(goodIdx, i)
		}
	}
	results := make([]*core.Result, len(inputs))
	if len(good) > 0 {
		res, rerrs := core.InstrumentMany(ctx, good, tool, opts, *jobs)
		for k, i := range goodIdx {
			results[i] = res[k]
			if rerrs[k] != nil {
				errs[i] = fmt.Errorf("%s: %w", tool.Name, rerrs[k])
			}
		}
	}

	failed := 0
	for i, res := range results {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "atom: %s: %v\n", inputs[i], errs[i])
			failed++
			continue
		}
		out := outputName(inputs[i], *outPath)
		_, sp := ctx.Start("atom.write", obs.String("file", out))
		err := res.Exe.WriteFile(out)
		sp.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "atom: %s: %v\n", inputs[i], err)
			errs[i] = err
			failed++
			continue
		}
		if len(inputs) > 1 && *verbose {
			fmt.Fprintf(os.Stderr, "atom: %s -> %s\n", inputs[i], out)
		}
		if *layout {
			printLayout(apps[i], res)
		}
		if *stats {
			if len(inputs) > 1 {
				fmt.Printf("%s:\n", inputs[i])
			}
			s := res.Stats
			fmt.Printf("call sites instrumented: %d\n", s.Calls)
			fmt.Printf("instructions inserted:   %d\n", s.InsertedInsts)
			fmt.Printf("application text:        %d -> %d bytes\n", s.OrigText, s.InstrText)
			fmt.Printf("analysis image:          %d text + %d data bytes\n", s.AnalysisText, s.AnalysisData)
			if res.HeapOffset != 0 {
				fmt.Printf("analysis heap offset:    %#x (run with the same offset)\n", res.HeapOffset)
			}
		}
	}
	if *stats {
		ic, oc := core.ImageCacheStats(), rtl.ObjectCacheStats()
		fmt.Printf("image cache:             %d hits, %d misses, %d builds\n", ic.Hits, ic.Misses, ic.Builds)
		fmt.Printf("object cache:            %d hits, %d misses, %d builds\n", oc.Hits, oc.Misses, oc.Builds)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "atom: %d of %d programs failed\n", failed, len(inputs))
	}

	if *tracePath != "" {
		if err := traceSink.WriteFile(*tracePath); err != nil {
			return fail(err)
		}
	}
	if *metrics {
		obs.WriteMetrics(os.Stderr, metricsSink, ctx.Counters())
	}
	if *benchJSON != "" {
		doc := figures.RunDoc{
			Tool:     tool.Name,
			Programs: inputs,
			Phases: figures.BenchPhases{
				BuildMS: msOf(metricsSink.Total("atom.image.build")),
				PlanMS:  msOf(metricsSink.Total("atom.plan")),
				ApplyMS: msOf(metricsSink.Total("atom.apply")),
				WriteMS: msOf(metricsSink.Total("atom.write")),
			},
			Image:   figures.CacheStats(core.ImageCacheStats()),
			Objects: figures.CacheStats(rtl.ObjectCacheStats()),
		}
		for i := range inputs {
			if errs[i] != nil {
				doc.Failed = append(doc.Failed, inputs[i])
			}
		}
		for _, c := range ctx.Counters() {
			doc.Counters = append(doc.Counters, figures.BenchCounter{Name: c.Name, Value: c.Value})
		}
		if err := figures.WriteRunJSON(*benchJSON, doc); err != nil {
			return fail(err)
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}

func msOf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// checkTrace validates a -trace output file: well-formed Chrome
// trace_event JSON, non-empty, and covering the pipeline stages a cold
// instrumentation run always exercises.
func checkTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	events, err := obs.ParseTrace(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(events) == 0 {
		return fmt.Errorf("%s: trace has no events", path)
	}
	seen := map[string]bool{}
	attributed := false
	for _, e := range events {
		seen[e.Name] = true
		if e.Args["outcome"] != "" {
			attributed = true
		}
	}
	for _, want := range []string{"cc.compile", "link.link", "atom.plan", "atom.image.build", "atom.apply"} {
		if !seen[want] {
			return fmt.Errorf("%s: no %q span in trace", path, want)
		}
	}
	if !attributed {
		return fmt.Errorf("%s: no cache lookup with an outcome attribute in trace", path)
	}
	return nil
}

// outputName derives an output path: an explicit -o wins (single input),
// otherwise the input's extension is replaced by ".atom" ("a.atom" for
// an extensionless bare name like "a").
func outputName(input, explicit string) string {
	if explicit != "" {
		return explicit
	}
	if dot := strings.LastIndexByte(input, '.'); dot > strings.LastIndexByte(input, '/') {
		return input[:dot] + ".atom"
	}
	return input + ".atom"
}

// printLayout renders the paper's Figure 4: the memory organization of
// the instrumented executable against the uninstrumented one.
func printLayout(app *aout.File, res *core.Result) {
	s := res.Stats
	heap := res.Exe.BssAddr + res.Exe.Bss
	fmt.Printf("memory layout (Figure 4):\n")
	fmt.Printf("  %#10x  stack base (grows down)            [unchanged]\n", app.TextAddr)
	fmt.Printf("  %#10x  instrumented program text  %7d B  [was %d B]\n", app.TextAddr, s.InstrText, s.OrigText)
	fmt.Printf("  %#10x  analysis text              %7d B\n", s.AnalysisTextAddr, s.AnalysisText)
	fmt.Printf("  %#10x  analysis data (bss zeroed) %7d B\n", s.AnalysisDataAddr, s.AnalysisData)
	fmt.Printf("  %#10x  program data               %7d B  [address unchanged]\n", res.Exe.DataAddr, len(res.Exe.Data))
	fmt.Printf("  %#10x  program bss                %7d B  [address unchanged]\n", res.Exe.BssAddr, res.Exe.Bss)
	fmt.Printf("  %#10x  heap base (grows up)                [unchanged]\n", heap)
	if res.HeapOffset != 0 {
		fmt.Printf("  %#10x  analysis heap zone (+%#x)\n", heap+res.HeapOffset, res.HeapOffset)
	}
}

func runTable(which, progList, benchJSON string, verbose bool) int {
	var progress *os.File
	if verbose {
		progress = os.Stderr
	}
	var names []string
	if progList != "" {
		names = strings.Split(progList, ",")
	}
	switch which {
	case "fig5":
		rows, err := figures.Fig5(names, progress)
		if err != nil {
			return fail(err)
		}
		figures.PrintFig5(os.Stdout, rows)
		if benchJSON != "" {
			if err := figures.WriteBenchJSON(benchJSON, rows, nil); err != nil {
				return fail(err)
			}
		}
	case "fig6":
		rows, err := figures.Fig6(names, progress)
		if err != nil {
			return fail(err)
		}
		figures.PrintFig6(os.Stdout, rows)
		if benchJSON != "" {
			if err := figures.WriteBenchJSON(benchJSON, nil, rows); err != nil {
				return fail(err)
			}
		}
	default:
		return fail(fmt.Errorf("unknown table %q (fig5 or fig6)", which))
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "atom:", err)
	return 1
}
