// Command atom mirrors the paper's command line: it instruments fully
// linked applications with one of the built-in analysis tools,
//
//	atom prog.x -t branch -o prog.atom
//	atom -t cache -j 4 prog1.x prog2.x prog3.x
//
// standing in for `atom prog inst.c anal.c -o prog.atom` (instrumentation
// routines are Go code, so the built-in tools are selected by name; use
// the library API to write new ones). With several input programs the
// tool's analysis image is built once and applied to each program, in
// parallel when -j is given; each output is written next to its input
// with the extension replaced by ".atom".
//
// It also regenerates the paper's evaluation artifacts:
//
//	atom -list                      # the 11 tools
//	atom -table fig5                # Figure 5 (instrumentation time)
//	atom -table fig6                # Figure 6 (execution-time ratios)
//	atom -table fig5 -bench-json f  # same, plus machine-readable JSON
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"atom"
	"atom/internal/aout"
	"atom/internal/core"
	"atom/internal/figures"
	"atom/internal/tools"
)

func main() {
	var (
		toolName  = flag.String("t", "", "analysis tool to apply (see -list)")
		outPath   = flag.String("o", "", "output executable (single input only; default: input with .atom extension, or a.atom)")
		toolArgs  = flag.String("args", "", "comma-separated tool arguments (iargv)")
		mode      = flag.String("mode", "wrapper", "register-save mode: wrapper | inanalysis")
		heapOff   = flag.Uint64("heap", 0, "partition the heap: analysis zone offset in bytes (0 = linked sbrks)")
		noSummary = flag.Bool("nosummary", false, "disable the data-flow register summary (save all caller-save registers)")
		jobs      = flag.Int("j", 1, "instrument up to N input programs in parallel (0 = GOMAXPROCS)")
		list      = flag.Bool("list", false, "list the built-in tools")
		table     = flag.String("table", "", "regenerate a paper table: fig5 | fig6")
		progs     = flag.String("progs", "", "comma-separated suite subset for -table (default: all 20)")
		benchJSON = flag.String("bench-json", "", "also write -table measurements as JSON to this file")
		stats     = flag.Bool("stats", false, "print instrumentation statistics")
		layout    = flag.Bool("layout", false, "print the instrumented executable's memory layout (Figure 4)")
		verbose   = flag.Bool("v", false, "progress output for -table")
	)
	flag.Parse()

	switch {
	case *list:
		for _, t := range tools.All() {
			fmt.Printf("%-8s  %s\n", t.Name, t.Description)
		}
		return
	case *table != "" || *benchJSON != "":
		which := *table
		if which == "" {
			which = "fig5"
		}
		runTable(which, *progs, *benchJSON, *verbose)
		return
	}

	if flag.NArg() < 1 || *toolName == "" {
		fmt.Fprintln(os.Stderr, "usage: atom prog.x [prog2.x ...] -t tool [-o prog.atom] [-j N] [-mode wrapper|inanalysis] [-heap N]")
		fmt.Fprintln(os.Stderr, "       atom -list | -table fig5|fig6 [-bench-json file]")
		os.Exit(2)
	}
	if flag.NArg() > 1 && *outPath != "" {
		fatal(fmt.Errorf("-o is only valid with a single input program (outputs are named <input>.atom)"))
	}
	tool, ok := tools.ByName(*toolName)
	if !ok {
		fatal(fmt.Errorf("unknown tool %q; try -list", *toolName))
	}
	opts := core.Options{HeapOffset: *heapOff, NoRegSummary: *noSummary}
	switch *mode {
	case "wrapper":
		opts.Mode = core.SaveWrapper
	case "inanalysis":
		opts.Mode = core.SaveInAnalysis
	default:
		fatal(fmt.Errorf("bad -mode %q", *mode))
	}
	if *toolArgs != "" {
		opts.ToolArgs = strings.Split(*toolArgs, ",")
	}

	inputs := flag.Args()
	apps := make([]*aout.File, len(inputs))
	for i, path := range inputs {
		app, err := aout.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		apps[i] = app
	}

	results, err := atom.InstrumentSuite(apps, tool, opts, *jobs)
	if err != nil {
		fatal(err)
	}
	for i, res := range results {
		out := outputName(inputs[i], *outPath)
		if err := res.Exe.WriteFile(out); err != nil {
			fatal(err)
		}
		if len(inputs) > 1 && *verbose {
			fmt.Fprintf(os.Stderr, "atom: %s -> %s\n", inputs[i], out)
		}
		if *layout {
			printLayout(apps[i], res)
		}
		if *stats {
			if len(inputs) > 1 {
				fmt.Printf("%s:\n", inputs[i])
			}
			s := res.Stats
			fmt.Printf("call sites instrumented: %d\n", s.Calls)
			fmt.Printf("instructions inserted:   %d\n", s.InsertedInsts)
			fmt.Printf("application text:        %d -> %d bytes\n", s.OrigText, s.InstrText)
			fmt.Printf("analysis image:          %d text + %d data bytes\n", s.AnalysisText, s.AnalysisData)
			if res.HeapOffset != 0 {
				fmt.Printf("analysis heap offset:    %#x (run with the same offset)\n", res.HeapOffset)
			}
		}
	}
}

// outputName derives an output path: an explicit -o wins (single input),
// otherwise the input's extension is replaced by ".atom" ("a.atom" for
// an extensionless bare name like "a").
func outputName(input, explicit string) string {
	if explicit != "" {
		return explicit
	}
	if dot := strings.LastIndexByte(input, '.'); dot > strings.LastIndexByte(input, '/') {
		return input[:dot] + ".atom"
	}
	return input + ".atom"
}

// printLayout renders the paper's Figure 4: the memory organization of
// the instrumented executable against the uninstrumented one.
func printLayout(app *aout.File, res *core.Result) {
	s := res.Stats
	heap := res.Exe.BssAddr + res.Exe.Bss
	fmt.Printf("memory layout (Figure 4):\n")
	fmt.Printf("  %#10x  stack base (grows down)            [unchanged]\n", app.TextAddr)
	fmt.Printf("  %#10x  instrumented program text  %7d B  [was %d B]\n", app.TextAddr, s.InstrText, s.OrigText)
	fmt.Printf("  %#10x  analysis text              %7d B\n", s.AnalysisTextAddr, s.AnalysisText)
	fmt.Printf("  %#10x  analysis data (bss zeroed) %7d B\n", s.AnalysisDataAddr, s.AnalysisData)
	fmt.Printf("  %#10x  program data               %7d B  [address unchanged]\n", res.Exe.DataAddr, len(res.Exe.Data))
	fmt.Printf("  %#10x  program bss                %7d B  [address unchanged]\n", res.Exe.BssAddr, res.Exe.Bss)
	fmt.Printf("  %#10x  heap base (grows up)                [unchanged]\n", heap)
	if res.HeapOffset != 0 {
		fmt.Printf("  %#10x  analysis heap zone (+%#x)\n", heap+res.HeapOffset, res.HeapOffset)
	}
}

func runTable(which, progList, benchJSON string, verbose bool) {
	var progress *os.File
	if verbose {
		progress = os.Stderr
	}
	var names []string
	if progList != "" {
		names = strings.Split(progList, ",")
	}
	switch which {
	case "fig5":
		rows, err := figures.Fig5(names, progress)
		if err != nil {
			fatal(err)
		}
		figures.PrintFig5(os.Stdout, rows)
		if benchJSON != "" {
			if err := figures.WriteBenchJSON(benchJSON, rows, nil); err != nil {
				fatal(err)
			}
		}
	case "fig6":
		rows, err := figures.Fig6(names, progress)
		if err != nil {
			fatal(err)
		}
		figures.PrintFig6(os.Stdout, rows)
		if benchJSON != "" {
			if err := figures.WriteBenchJSON(benchJSON, nil, rows); err != nil {
				fatal(err)
			}
		}
	default:
		fatal(fmt.Errorf("unknown table %q (fig5 or fig6)", which))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atom:", err)
	os.Exit(1)
}
