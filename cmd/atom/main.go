// Command atom mirrors the paper's command line: it instruments fully
// linked applications with one of the built-in analysis tools,
//
//	atom prog.x -t branch -o prog.atom
//	atom -t cache -j 4 -progress prog1.x prog2.x prog3.x
//
// standing in for `atom prog inst.c anal.c -o prog.atom` (instrumentation
// routines are Go code, so the built-in tools are selected by name; use
// the library API to write new ones). With several input programs the
// tool's analysis image is built once and applied to each program, in
// parallel when -j is given; each output is written next to its input
// with the extension replaced by ".atom". A failing program does not
// abort the batch: the rest are still instrumented, each failure is
// reported, and the exit status is non-zero iff any program failed.
//
// Run mode executes a program on the Alpha-subset VM, with an optional
// deterministic sampling profiler whose reports are in the application's
// ORIGINAL terms (PCs translated back through the static new->original
// map; samples in injected analysis code attributed to "[analysis]"):
//
//	atom -run prog.x arg1 arg2              # plain execution
//	atom -t prof -run -profile p.txt prog.x # instrument, run, profile
//	atom -run -profile p.folded -profile-format=folded prog.x
//
// -vm-mode selects the dispatch strategy — plain (decode every
// instruction), predecode (decoded-text cache), or superblock (the
// default: trace-linked superblock cache, roughly 2.5x predecode). All
// three retire bit-identical architectural state, so the slower modes
// exist for ablation and differential testing:
//
//	atom -run -vm-mode=plain prog.x         # decode-each baseline
//	atom -run -vm-mode=superblock prog.x    # default dispatch
//
// The pipeline is observable end to end:
//
//	atom -t cache -trace t.json prog.x   # Chrome trace (chrome://tracing)
//	atom -t cache -metrics - prog.x      # span/counter/histogram snapshot
//	atom -t cache -cpuprofile cpu.pprof prog.x
//	atom -t cache -bench-json run.json prog.x  # per-phase JSON breakdown
//	atom -t cache -vet prog.x            # verify IR, PC maps, rewritten text
//	atom -verify-trace t.json            # validate a trace file (CI smoke)
//
// and observable live: -debug-addr starts an embedded debug server with
// Prometheus /metrics, a streaming NDJSON event feed, /healthz, and
// net/http/pprof, while -log emits structured logs as the pipeline runs:
//
//	atom -t cache -j 4 -debug-addr 127.0.0.1:6060 prog1.x prog2.x ...
//	atom -scrape http://127.0.0.1:6060/metrics   # built-in curl (CI smoke)
//	atom -t cache -log json -log-level info prog.x
//
// -trace - streams the trace JSON to stdout and -metrics - prints the
// snapshot to stderr; both also accept ordinary file paths.
//
// The lift stage is serializable: -emit-ir writes each input's OM IR as
// a stable atom-ir/v1 blob, and -ir-in instruments from such a blob in
// place of an executable — decode substitutes for the lift, and the
// output is bit-identical to the in-memory path:
//
//	atom -emit-ir ir prog.x              # write ir/prog.ir
//	atom -t cache -ir-in ir/prog.ir      # instrument from the blob
//
// It also regenerates the paper's evaluation artifacts:
//
//	atom -list                      # the 11 tools
//	atom -table fig5                # Figure 5 (instrumentation time)
//	atom -table fig6                # Figure 6 (execution-time ratios)
//	atom -table fig5 -bench-json f  # same, plus machine-readable JSON
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"atom/internal/aout"
	"atom/internal/build"
	"atom/internal/core"
	"atom/internal/figures"
	"atom/internal/obs"
	"atom/internal/om"
	"atom/internal/prof"
	"atom/internal/rtl"
	"atom/internal/telemetry"
	"atom/internal/tools"
	"atom/internal/vm"
)

func main() { os.Exit(run()) }

func run() (code int) {
	var (
		toolName      = flag.String("t", "", "analysis tool to apply (see -list)")
		outPath       = flag.String("o", "", "output executable (single input only; default: input with .atom extension, or a.atom)")
		toolArgs      = flag.String("args", "", "comma-separated tool arguments (iargv)")
		mode          = flag.String("mode", "wrapper", "register-save mode: wrapper | inanalysis")
		heapOff       = flag.Uint64("heap", 0, "partition the heap: analysis zone offset in bytes (0 = linked sbrks)")
		noSummary     = flag.Bool("nosummary", false, "disable the data-flow register summary (save all caller-save registers)")
		noLiveness    = flag.Bool("noliveness", false, "disable the register-liveness analysis (save registers without regard to liveness)")
		noInline      = flag.Bool("noinline", false, "disable analysis-routine inlining (always call through the register-save wrapper)")
		inlineLimit   = flag.Int("inline-limit", 0, "largest analysis-routine body to inline, in instructions (0 = default)")
		vet           = flag.Bool("vet", false, "verify the OM IR before instrumentation and the PC maps and rewritten text after")
		analyze       = flag.Bool("analyze", false, "run the static-analysis passes over the inputs (and the -t tool's image) and report findings instead of instrumenting")
		analyzeJSON   = flag.String("analyze-json", "", "with -analyze: also write the reports as JSON (atom-analyze/v1) to this file")
		passSpec      = flag.String("passes", "", "with -analyze: comma-separated pass subset (default: all; names: uninit, stackheight, callgraph, toollint)")
		analyzeAs     = flag.String("analyze-as", "app", "with -analyze: treat inputs as an application or a tool image: app | tool")
		emitIR        = flag.String("emit-ir", "", "lift each input and write its serialized IR (atom-ir/v1) to <dir>/<input>.ir instead of instrumenting")
		irIn          = flag.String("ir-in", "", "instrument from a serialized IR blob (-emit-ir output) instead of an input executable")
		jobs          = flag.Int("j", 1, "instrument up to N input programs in parallel (0 = GOMAXPROCS)")
		list          = flag.Bool("list", false, "list the built-in tools")
		table         = flag.String("table", "", "regenerate a paper table: fig5 | fig6")
		progs         = flag.String("progs", "", "comma-separated suite subset for -table (default: all 20)")
		benchJSON     = flag.String("bench-json", "", "write measurements as JSON: -table rows, or a per-phase run breakdown")
		stats         = flag.Bool("stats", false, "print instrumentation and cache statistics")
		layout        = flag.Bool("layout", false, "print the instrumented executable's memory layout (Figure 4)")
		verbose       = flag.Bool("v", false, "progress output for -table")
		progress      = flag.Bool("progress", false, "live status line on stderr for multi-program instrument batches")
		tracePath     = flag.String("trace", "", `write a Chrome trace_event JSON of the pipeline to this file ("-" = stdout)`)
		metrics       = flag.String("metrics", "", `write a span/counter/histogram metrics snapshot to this file ("-" = stderr)`)
		debugAddr     = flag.String("debug-addr", "", "serve live telemetry on this address (host:port; port 0 picks one): Prometheus /metrics, /debug/events NDJSON stream, /debug/pprof/, /healthz")
		logFormat     = flag.String("log", "", "emit structured logs to stderr in this format: text | json (default: off)")
		logLevel      = flag.String("log-level", "info", "minimum structured-log level: debug | info | warn | error")
		scrapeURL     = flag.String("scrape", "", "fetch a URL and copy the body to stdout, then exit (CI smoke; no curl needed)")
		cpuProfile    = flag.String("cpuprofile", "", "write a CPU profile of atom itself to this file")
		verifyTrace   = flag.String("verify-trace", "", "validate a trace file written by -trace and exit (CI smoke)")
		verifyFolded  = flag.String("verify-folded", "", "validate a folded-stack profile written by -profile-format=folded and exit (CI smoke)")
		runMode       = flag.Bool("run", false, "execute the (instrumented) program on the VM; extra arguments become its argv")
		vmMode        = flag.String("vm-mode", "superblock", "VM dispatch strategy for -run, slowest to fastest: plain (decode every instruction) | predecode (decoded-text cache) | superblock (trace-linked superblock cache); all three retire bit-identical state")
		profilePath   = flag.String("profile", "", "sample the VM run and write the profile to this file (implies -run)")
		profilePeriod = flag.Uint64("profile-period", 10000, "sampling period in retired instructions")
		profileFormat = flag.String("profile-format", "flat", "profile report format: flat | folded")
		cacheDir      = flag.String("cache-dir", os.Getenv("ATOM_CACHE_DIR"), "persistent artifact cache directory shared across processes (default $ATOM_CACHE_DIR; empty = in-memory only)")
		cacheMaxMB    = flag.Int64("cache-max-mb", 0, "evict least-recently-used blobs when the persistent cache exceeds this many MiB (0 = unbounded)")
	)
	flag.Parse()

	switch {
	case *list:
		for _, t := range tools.All() {
			fmt.Printf("%-8s  %s\n", t.Name, t.Description)
		}
		return 0
	case *scrapeURL != "":
		return scrape(*scrapeURL)
	case *verifyTrace != "":
		if err := checkTrace(*verifyTrace); err != nil {
			fmt.Fprintln(os.Stderr, "atom:", err)
			return 1
		}
		fmt.Printf("%s: ok\n", *verifyTrace)
		return 0
	case *verifyFolded != "":
		data, err := os.ReadFile(*verifyFolded)
		if err != nil {
			return fail(err)
		}
		n, err := prof.ValidateFolded(data)
		if err != nil {
			return fail(err)
		}
		fmt.Printf("%s: ok (%d stacks)\n", *verifyFolded, n)
		return 0
	case *table != "" || (*benchJSON != "" && *toolName == "" && !*runMode && !*analyze && *profilePath == ""):
		which := *table
		if which == "" {
			which = "fig5"
		}
		return runTable(which, *progs, *benchJSON, *verbose)
	}
	doRun := *runMode || *profilePath != ""

	switch {
	case *emitIR != "" && (*irIn != "" || doRun || *toolName != ""):
		return fail(fmt.Errorf("-emit-ir only lifts; it cannot be combined with -t, -ir-in or -run"))
	case *irIn != "" && doRun:
		return fail(fmt.Errorf("-ir-in cannot be combined with -run"))
	case *irIn != "" && flag.NArg() > 0:
		return fail(fmt.Errorf("-ir-in replaces the input executable; positional inputs are not allowed"))
	case *analyze && (doRun || *emitIR != ""):
		return fail(fmt.Errorf("-analyze reports findings; it cannot be combined with -run or -emit-ir"))
	case *analyze && *analyzeAs != "app" && *analyzeAs != "tool":
		return fail(fmt.Errorf("bad -analyze-as %q (app or tool)", *analyzeAs))
	}
	// -analyze with only a tool lints the built image; no input needed.
	needInput := *irIn == "" && !(*analyze && *toolName != "")
	needTool := *toolName == "" && !doRun && *emitIR == "" && !*analyze
	if (needInput && flag.NArg() < 1) || needTool {
		fmt.Fprintln(os.Stderr, "usage: atom prog.x [prog2.x ...] -t tool [-o prog.atom] [-j N] [-mode wrapper|inanalysis] [-heap N] [-vet]")
		fmt.Fprintln(os.Stderr, "       atom [-t tool] -run [-profile file [-profile-period N] [-profile-format flat|folded]] prog.x [args...]")
		fmt.Fprintln(os.Stderr, "       atom -emit-ir dir prog.x [prog2.x ...] | atom -t tool -ir-in prog.ir [-o prog.atom]")
		fmt.Fprintln(os.Stderr, "       atom -analyze [-passes p1,p2] [-analyze-json file] [-t tool] [prog.x ...]")
		fmt.Fprintln(os.Stderr, "       atom -list | -table fig5|fig6 [-bench-json file] | -verify-trace file")
		return 2
	}
	if flag.NArg() > 1 && *outPath != "" && !doRun {
		return fail(fmt.Errorf("-o is only valid with a single input program (outputs are named <input>.atom)"))
	}
	var tool core.Tool
	if *toolName != "" {
		var ok bool
		tool, ok = tools.ByName(*toolName)
		if !ok {
			return fail(fmt.Errorf("unknown tool %q; try -list", *toolName))
		}
	}
	opts := core.Options{
		HeapOffset:   *heapOff,
		NoRegSummary: *noSummary,
		NoLiveness:   *noLiveness,
		NoInline:     *noInline,
		InlineLimit:  *inlineLimit,
		Verify:       *vet,
	}
	switch *mode {
	case "wrapper":
		opts.Mode = core.SaveWrapper
	case "inanalysis":
		opts.Mode = core.SaveInAnalysis
	default:
		return fail(fmt.Errorf("bad -mode %q", *mode))
	}
	if *toolArgs != "" {
		opts.ToolArgs = strings.Split(*toolArgs, ",")
	}
	switch *profileFormat {
	case "flat", "folded":
	default:
		return fail(fmt.Errorf("bad -profile-format %q (flat or folded)", *profileFormat))
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	// The stage context is nil (near-zero overhead) unless some consumer
	// of spans or counters is active.
	var (
		traceSink   *obs.TraceSink
		metricsSink *obs.MetricsSink
		logger      *slog.Logger
		sinks       []obs.Sink
	)
	if *tracePath != "" {
		traceSink = &obs.TraceSink{}
		sinks = append(sinks, traceSink)
	}
	if *metrics != "" || *benchJSON != "" {
		metricsSink = &obs.MetricsSink{}
		sinks = append(sinks, metricsSink)
	}
	if *logFormat != "" {
		level, err := telemetry.ParseLevel(*logLevel)
		if err != nil {
			return fail(err)
		}
		logger, err = telemetry.NewLogger(os.Stderr, *logFormat, level)
		if err != nil {
			return fail(err)
		}
		sinks = append(sinks, &telemetry.LogSink{L: logger})
	}
	if *debugAddr != "" {
		// The debug server exposes the process-wide registry and event
		// stream; attaching them here makes the CLI's pipeline activity
		// visible on the same endpoints the library API serves.
		sinks = append(sinks, telemetry.Default().Sink(), telemetry.DefaultStream())
	}
	var ctx *obs.Ctx
	if len(sinks) > 0 {
		ctx = obs.New(sinks...)
	}

	// The persistent store opens after the stage context exists, so its
	// store.open span (and any store.get/store.put under the lookups)
	// lands in -trace and -metrics output.
	if *cacheDir != "" {
		if err := build.SetCacheDir(ctx, *cacheDir, *cacheMaxMB<<20); err != nil {
			return fail(err)
		}
	}
	if *debugAddr != "" {
		srv, err := telemetry.StartDefaultServer(*debugAddr)
		if err != nil {
			return fail(err)
		}
		// The resolved address matters with port 0; scripts poll stderr
		// for this line to find the endpoints.
		fmt.Fprintf(os.Stderr, "atom: telemetry listening on http://%s\n", srv.Addr())
	}

	// Fail-soft flush: no matter how the batch or the run ends — a
	// program erroring mid-run, or a SIGINT/SIGTERM, included — the trace
	// file is written, the metrics snapshot printed, the persistent store
	// closed (journal flushed), and the debug server shut down. The
	// sync.Once makes the flush safe to reach from both the normal defer
	// and the signal handler; a flush failure makes the exit status
	// non-zero without masking the primary outcome.
	var flushOnce sync.Once
	flush := func() {
		flushOnce.Do(func() {
			if *tracePath != "" {
				if err := writeTrace(traceSink, *tracePath); err != nil {
					fmt.Fprintln(os.Stderr, "atom:", err)
					if code == 0 {
						code = 1
					}
				}
			}
			if *metrics != "" {
				if err := writeMetricsSnapshot(ctx, metricsSink, *metrics); err != nil {
					fmt.Fprintln(os.Stderr, "atom:", err)
					if code == 0 {
						code = 1
					}
				}
			}
			if *cacheDir != "" {
				if err := build.CloseStore(); err != nil {
					fmt.Fprintln(os.Stderr, "atom:", err)
					if code == 0 {
						code = 1
					}
				}
			}
			if *debugAddr != "" {
				telemetry.StopDefaultServer()
			}
		})
	}
	defer flush()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		s, ok := <-sigc
		if !ok {
			return
		}
		flush()
		status := 1
		if sig, isSig := s.(syscall.Signal); isSig {
			status = 128 + int(sig)
		}
		os.Exit(status)
	}()

	if *analyze {
		return runAnalyze(ctx, metricsSink, analyzeConfig{
			inputs:    flag.Args(),
			irIn:      *irIn,
			tool:      tool,
			haveTool:  *toolName != "",
			opts:      opts,
			passSpec:  *passSpec,
			asKind:    *analyzeAs,
			jsonPath:  *analyzeJSON,
			benchJSON: *benchJSON,
		})
	}

	if *emitIR != "" {
		return emitIRBlobs(ctx, *emitIR, flag.Args())
	}
	if *irIn != "" {
		return instrumentFromIR(ctx, metricsSink, *irIn, tool, opts,
			*outPath, *stats, *layout, *benchJSON)
	}

	if doRun {
		vmm, err := vm.ParseMode(*vmMode)
		if err != nil {
			return fail(err)
		}
		return runUnderVM(ctx, metricsSink, runConfig{
			input:         flag.Arg(0),
			progArgs:      flag.Args()[1:],
			tool:          tool,
			haveTool:      *toolName != "",
			opts:          opts,
			outPath:       *outPath,
			benchJSON:     *benchJSON,
			profilePath:   *profilePath,
			profilePeriod: *profilePeriod,
			profileFormat: *profileFormat,
			stats:         *stats,
			vmMode:        vmm,
		})
	}

	// Read every input before instrumenting any; per-program read errors
	// fail soft like instrumentation errors do.
	inputs := flag.Args()
	apps := make([]*aout.File, len(inputs))
	errs := make([]error, len(inputs))
	for i, path := range inputs {
		app, err := aout.ReadFile(path)
		if err != nil {
			errs[i] = err
			continue
		}
		apps[i] = app
	}

	// Instrument the readable subset, then fold results and errors back
	// into input order.
	var good []*aout.File
	var goodIdx []int
	for i, app := range apps {
		if app != nil {
			good = append(good, app)
			goodIdx = append(goodIdx, i)
		}
	}
	results := make([]*core.Result, len(inputs))
	if len(good) > 0 {
		goodNames := make([]string, len(good))
		for k, i := range goodIdx {
			goodNames[k] = inputs[i]
		}
		// Per-program completion counters stream over /debug/events as
		// the batch runs, so a live reader watches progress without the
		// -progress status line.
		var done atomic.Int64
		total := len(good)
		progressLine := *progress && len(inputs) > 1
		onDone := func(k int, err error) {
			n := done.Add(1)
			if err != nil {
				ctx.Count("atom.batch.failed", 1)
			} else {
				ctx.Count("atom.batch.done", 1)
			}
			if progressLine {
				fmt.Fprintf(os.Stderr, "\ratom: instrumented %d/%d", n, total)
			}
		}
		if progressLine {
			defer fmt.Fprintln(os.Stderr)
		}
		res, rerrs := core.InstrumentManyNamed(ctx, good, goodNames, tool, opts, *jobs, onDone)
		for k, i := range goodIdx {
			results[i] = res[k]
			if rerrs[k] != nil {
				errs[i] = fmt.Errorf("%s: %w", tool.Name, rerrs[k])
			}
		}
	}

	failed := 0
	for i, res := range results {
		if errs[i] != nil {
			fmt.Fprintf(os.Stderr, "atom: %s: %v\n", inputs[i], errs[i])
			if logger != nil {
				logger.Error("program failed", slog.String("program", inputs[i]), slog.String("err", errs[i].Error()))
			}
			failed++
			continue
		}
		out := outputName(inputs[i], *outPath)
		_, sp := ctx.Start("atom.write", obs.String("file", out))
		err := res.Exe.WriteFile(out)
		sp.End()
		if err != nil {
			fmt.Fprintf(os.Stderr, "atom: %s: %v\n", inputs[i], err)
			errs[i] = err
			failed++
			continue
		}
		if len(inputs) > 1 && *verbose {
			fmt.Fprintf(os.Stderr, "atom: %s -> %s\n", inputs[i], out)
		}
		if *layout {
			printLayout(apps[i], res)
		}
		if *stats {
			if len(inputs) > 1 {
				fmt.Printf("%s:\n", inputs[i])
			}
			s := res.Stats
			fmt.Printf("call sites instrumented: %d\n", s.Calls)
			fmt.Printf("call sites inlined:      %d\n", s.InlinedSites)
			fmt.Printf("instructions inserted:   %d\n", s.InsertedInsts)
			fmt.Printf("application text:        %d -> %d bytes\n", s.OrigText, s.InstrText)
			fmt.Printf("analysis image:          %d text + %d data bytes\n", s.AnalysisText, s.AnalysisData)
			if res.HeapOffset != 0 {
				fmt.Printf("analysis heap offset:    %#x (run with the same offset)\n", res.HeapOffset)
			}
		}
	}
	if *stats {
		printCacheStats()
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "atom: %d of %d programs failed\n", failed, len(inputs))
	}

	if *benchJSON != "" {
		doc := newRunDoc(ctx, metricsSink, tool.Name, inputs)
		for i := range inputs {
			if errs[i] != nil {
				doc.Failed = append(doc.Failed, inputs[i])
			}
		}
		if err := figures.WriteRunJSON(*benchJSON, doc); err != nil {
			return fail(err)
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// runConfig carries the run-mode parameters.
type runConfig struct {
	input         string
	progArgs      []string
	tool          core.Tool
	haveTool      bool
	opts          core.Options
	outPath       string
	benchJSON     string
	profilePath   string
	profilePeriod uint64
	profileFormat string
	stats         bool
	vmMode        vm.Mode
}

// runUnderVM executes one program on the VM — instrumenting it first
// when a tool was selected — with the sampling profiler attached when
// requested. The profile (and the bench JSON document) is written even
// when the program faults mid-run, so a crashing workload still yields
// its observability artifacts.
func runUnderVM(ctx *obs.Ctx, metricsSink *obs.MetricsSink, rc runConfig) int {
	app, err := aout.ReadFile(rc.input)
	if err != nil {
		return fail(err)
	}

	exe := app
	cfg := vm.Config{
		Arg0: rc.input,
		Args: rc.progArgs,
		FS:   map[string][]byte{},
		Obs:  ctx,
		Mode: rc.vmMode,
	}
	var pcMap func(uint64) (uint64, bool)
	procs := prof.ProcsFromSymbols(app.Symbols)
	if rc.haveTool {
		res, err := core.InstrumentCtx(ctx, app, rc.tool, rc.opts)
		if err != nil {
			return fail(fmt.Errorf("%s: %s: %w", rc.input, rc.tool.Name, err))
		}
		exe = res.Exe
		cfg.AnalysisHeapOffset = res.HeapOffset
		pcMap = res.PCMap.OldAddr
		procs = res.PCMap.OrigProcs()
		if rc.outPath != "" {
			if err := res.Exe.WriteFile(rc.outPath); err != nil {
				return fail(err)
			}
		}
	}

	var profiler *prof.Profiler
	if rc.profilePath != "" {
		profiler = prof.New(prof.Options{
			Period: rc.profilePeriod,
			Procs:  procs,
			MapPC:  pcMap,
			Obs:    ctx,
		})
		profiler.Attach(&cfg)
	}

	m, err := vm.New(exe, cfg)
	if err != nil {
		return fail(fmt.Errorf("%s: %w", rc.input, err))
	}
	runStart := time.Now()
	exitCode, runErr := m.Run()
	runWall := time.Since(runStart)
	os.Stdout.Write(m.Stdout)
	os.Stderr.Write(m.Stderr)
	for _, path := range m.Paths() {
		if werr := os.WriteFile(path, m.FSOut[path], 0o644); werr != nil {
			fmt.Fprintln(os.Stderr, "atom:", werr)
			if runErr == nil {
				runErr = werr
			}
		}
	}

	status := exitCode
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "atom: %s: %v\n", rc.input, runErr)
		status = 1
	}
	if rc.stats {
		fmt.Fprintf(os.Stderr, "icount=%d loads=%d stores=%d unaligned=%d syscalls=%d\n",
			m.Icount, m.Loads, m.Stores, m.Unaligned, m.Syscalls)
	}

	// Observability artifacts are flushed regardless of how the run went.
	if profiler != nil {
		profiler.Flush()
		if err := writeProfile(profiler, rc.profilePath, rc.profileFormat); err != nil {
			fmt.Fprintln(os.Stderr, "atom:", err)
			if status == 0 {
				status = 1
			}
		}
	}
	if rc.benchJSON != "" {
		doc := newRunDoc(ctx, metricsSink, rc.tool.Name, []string{rc.input})
		if runErr != nil {
			doc.Failed = []string{rc.input}
		}
		if secs := runWall.Seconds(); secs > 0 {
			doc.VMMinstS = float64(m.Icount) / 1e6 / secs
		}
		if err := figures.WriteRunJSON(rc.benchJSON, doc); err != nil {
			fmt.Fprintln(os.Stderr, "atom:", err)
			if status == 0 {
				status = 1
			}
		}
	}
	return status
}

// writeProfile renders the profiler's report in the selected format.
func writeProfile(p *prof.Profiler, path, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if format == "folded" {
		err = p.WriteFolded(f)
	} else {
		err = p.WriteFlat(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func msOf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// emitIRBlobs lifts each input executable (through the IR cache) and
// writes its serialized atom-ir/v1 blob to <dir>/<input>.ir. Per-input
// failures fail soft, like instrument batches do.
func emitIRBlobs(ctx *obs.Ctx, dir string, inputs []string) int {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fail(err)
	}
	failed := 0
	for _, path := range inputs {
		app, err := aout.ReadFile(path)
		var blob []byte
		if err == nil {
			blob, err = core.LiftBlobCtx(ctx, app)
		}
		out := filepath.Join(dir, irName(path))
		if err == nil {
			err = os.WriteFile(out, blob, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "atom: %s: %v\n", path, err)
			failed++
			continue
		}
		fmt.Printf("%s -> %s (%d bytes, %s)\n", path, out, len(blob), om.BlobDigest(blob)[:12])
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// irName maps an input path to its blob file name: the base name with
// the extension replaced by ".ir".
func irName(input string) string {
	base := filepath.Base(input)
	if dot := strings.LastIndexByte(base, '.'); dot > 0 {
		base = base[:dot]
	}
	return base + ".ir"
}

// instrumentFromIR instruments from a serialized IR blob: decode
// substitutes for the lift, and the rest of the pipeline — plan, tool
// image, apply — is exactly the in-memory one, so the output executable
// is bit-identical to instrumenting the original input. The output name
// derives from the blob (prog.ir -> prog.atom) unless -o is given.
func instrumentFromIR(ctx *obs.Ctx, metricsSink *obs.MetricsSink, irPath string, tool core.Tool, opts core.Options, outPath string, stats, layout bool, benchJSON string) int {
	blob, err := os.ReadFile(irPath)
	if err != nil {
		return fail(err)
	}
	prog, err := om.DecodeCtx(ctx, blob)
	if err != nil {
		return fail(fmt.Errorf("%s: %w", irPath, err))
	}
	res, err := core.InstrumentProgramCtx(ctx, prog, tool, opts)
	if err != nil {
		return fail(fmt.Errorf("%s: %s: %w", irPath, tool.Name, err))
	}
	out := outputName(irPath, outPath)
	_, sp := ctx.Start("atom.write", obs.String("file", out))
	err = res.Exe.WriteFile(out)
	sp.End()
	if err != nil {
		return fail(err)
	}
	if layout {
		printLayout(prog.Exe, res)
	}
	if stats {
		s := res.Stats
		fmt.Printf("call sites instrumented: %d\n", s.Calls)
		fmt.Printf("call sites inlined:      %d\n", s.InlinedSites)
		fmt.Printf("instructions inserted:   %d\n", s.InsertedInsts)
		fmt.Printf("application text:        %d -> %d bytes\n", s.OrigText, s.InstrText)
		fmt.Printf("analysis image:          %d text + %d data bytes\n", s.AnalysisText, s.AnalysisData)
		printCacheStats()
	}
	if benchJSON != "" {
		doc := newRunDoc(ctx, metricsSink, tool.Name, []string{irPath})
		if err := figures.WriteRunJSON(benchJSON, doc); err != nil {
			return fail(err)
		}
	}
	return 0
}

// printCacheStats renders the three artifact caches (and, when a
// -cache-dir store is configured, the store itself) for -stats.
func printCacheStats() {
	ic, oc, rc := core.ImageCacheStats(), rtl.ObjectCacheStats(), build.IRCacheStats()
	fmt.Printf("image cache:             %d hits, %d disk hits, %d misses, %d builds\n", ic.Hits, ic.DiskHits, ic.Misses, ic.Builds)
	fmt.Printf("object cache:            %d hits, %d disk hits, %d misses, %d builds\n", oc.Hits, oc.DiskHits, oc.Misses, oc.Builds)
	fmt.Printf("ir cache:                %d hits, %d disk hits, %d misses, %d builds\n", rc.Hits, rc.DiskHits, rc.Misses, rc.Builds)
	if s := build.ActiveStore(); s != nil {
		st := s.Stats()
		fmt.Printf("disk store:              %d blobs, %d bytes, %d hits, %d misses, %d puts, %d corrupt, %d adopted, %d evicted\n",
			st.Blobs, st.Bytes, st.Hits, st.Misses, st.Puts, st.Corrupt, st.Adopted, st.Evicted)
	}
}

// writeTrace writes the Chrome trace document, honoring the "-" path as
// stdout so a run's trace can pipe straight into another tool.
func writeTrace(t *obs.TraceSink, path string) error {
	if path == "-" {
		data, err := t.MarshalTrace()
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err
	}
	return t.WriteFile(path)
}

// writeMetricsSnapshot writes the end-of-run metrics snapshot, honoring
// the "-" path as stderr (keeping the snapshot out of the program's
// stdout, which run mode owns).
func writeMetricsSnapshot(ctx *obs.Ctx, m *obs.MetricsSink, path string) error {
	if path == "-" {
		return obs.WriteMetrics(os.Stderr, m, ctx.Counters(), ctx.Histograms())
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = obs.WriteMetrics(f, m, ctx.Counters(), ctx.Histograms())
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// scrape fetches a URL and copies the body to stdout: the CI smoke's
// curl substitute, so the telemetry gate needs no tools beyond atom
// itself. Exit status is non-zero for transport errors and non-200s.
func scrape(url string) int {
	resp, err := http.Get(url)
	if err != nil {
		return fail(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		return fail(err)
	}
	if resp.StatusCode != http.StatusOK {
		return fail(fmt.Errorf("%s: %s", url, resp.Status))
	}
	return 0
}

// newRunDoc assembles the common part of a bench JSON run document
// (schema atom-run/v7): per-phase totals including the lift, the three
// cache stat blocks, the disk-store block when a persistent store is
// configured, counters, the inline block, and histograms.
func newRunDoc(ctx *obs.Ctx, metricsSink *obs.MetricsSink, toolName string, programs []string) figures.RunDoc {
	doc := figures.RunDoc{
		Tool:     toolName,
		Programs: programs,
		Phases: figures.BenchPhases{
			LiftMS:    msOf(metricsSink.Total("om.lift")),
			BuildMS:   msOf(metricsSink.Total("atom.image.build")),
			PlanMS:    msOf(metricsSink.Total("atom.plan")),
			ApplyMS:   msOf(metricsSink.Total("atom.apply")),
			WriteMS:   msOf(metricsSink.Total("atom.write")),
			AnalyzeMS: msOf(metricsSink.Total("om.analyze")),
		},
		Image:   figures.CacheStats(core.ImageCacheStats()),
		Objects: figures.CacheStats(rtl.ObjectCacheStats()),
		IR:      figures.CacheStats(build.IRCacheStats()),
	}
	if s := build.ActiveStore(); s != nil {
		blk := figures.StoreStats(s.Stats())
		doc.Disk = &blk
	}
	for _, c := range ctx.Counters() {
		doc.Counters = append(doc.Counters, figures.BenchCounter{Name: c.Name, Value: c.Value})
	}
	doc.Inline = inlineBlock(ctx)
	doc.Hists = figures.Histograms(ctx.Histograms())
	return doc
}

// inlineBlock extracts the inliner's site counters for the bench JSON
// document (schema atom-run/v3). Nil when no instrumentation ran, so
// plain -run documents stay free of a meaningless zero block.
func inlineBlock(ctx *obs.Ctx) *figures.BenchInline {
	var blk figures.BenchInline
	found := false
	for _, c := range ctx.Counters() {
		switch c.Name {
		case "atom.sites_inlined":
			blk.SitesInlined, found = c.Value, true
		case "atom.sites_called":
			blk.SitesCalled, found = c.Value, true
		}
	}
	if !found {
		return nil
	}
	return &blk
}

// checkTrace validates a -trace output file: well-formed Chrome
// trace_event JSON, non-empty, and covering the pipeline stages a cold
// instrumentation run always exercises.
func checkTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	events, err := obs.ParseTrace(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(events) == 0 {
		return fmt.Errorf("%s: trace has no events", path)
	}
	seen := map[string]bool{}
	attributed := false
	for _, e := range events {
		seen[e.Name] = true
		if e.Args["outcome"] != "" {
			attributed = true
		}
	}
	for _, want := range []string{"cc.compile", "link.link", "om.lift", "atom.plan", "atom.image.build", "atom.apply"} {
		if !seen[want] {
			return fmt.Errorf("%s: no %q span in trace", path, want)
		}
	}
	if !attributed {
		return fmt.Errorf("%s: no cache lookup with an outcome attribute in trace", path)
	}
	return nil
}

// outputName derives an output path: an explicit -o wins (single input),
// otherwise the input's extension is replaced by ".atom" ("a.atom" for
// an extensionless bare name like "a").
func outputName(input, explicit string) string {
	if explicit != "" {
		return explicit
	}
	if dot := strings.LastIndexByte(input, '.'); dot > strings.LastIndexByte(input, '/') {
		return input[:dot] + ".atom"
	}
	return input + ".atom"
}

// printLayout renders the paper's Figure 4: the memory organization of
// the instrumented executable against the uninstrumented one.
func printLayout(app *aout.File, res *core.Result) {
	s := res.Stats
	heap := res.Exe.BssAddr + res.Exe.Bss
	fmt.Printf("memory layout (Figure 4):\n")
	fmt.Printf("  %#10x  stack base (grows down)            [unchanged]\n", app.TextAddr)
	fmt.Printf("  %#10x  instrumented program text  %7d B  [was %d B]\n", app.TextAddr, s.InstrText, s.OrigText)
	fmt.Printf("  %#10x  analysis text              %7d B\n", s.AnalysisTextAddr, s.AnalysisText)
	fmt.Printf("  %#10x  analysis data (bss zeroed) %7d B\n", s.AnalysisDataAddr, s.AnalysisData)
	fmt.Printf("  %#10x  program data               %7d B  [address unchanged]\n", res.Exe.DataAddr, len(res.Exe.Data))
	fmt.Printf("  %#10x  program bss                %7d B  [address unchanged]\n", res.Exe.BssAddr, res.Exe.Bss)
	fmt.Printf("  %#10x  heap base (grows up)                [unchanged]\n", heap)
	if res.HeapOffset != 0 {
		fmt.Printf("  %#10x  analysis heap zone (+%#x)\n", heap+res.HeapOffset, res.HeapOffset)
	}
}

func runTable(which, progList, benchJSON string, verbose bool) int {
	var progress *os.File
	if verbose {
		progress = os.Stderr
	}
	var names []string
	if progList != "" {
		names = strings.Split(progList, ",")
	}
	switch which {
	case "fig5":
		rows, hists, err := figures.Fig5(names, progress)
		if err != nil {
			return fail(err)
		}
		figures.PrintFig5(os.Stdout, rows)
		if benchJSON != "" {
			if err := figures.WriteBenchJSON(benchJSON, rows, nil, 0, hists); err != nil {
				return fail(err)
			}
		}
	case "fig6":
		// The fig6 measurement executes every suite program on the VM, so
		// the process-wide retired-instruction delta over its wall time is
		// the interpreter's aggregate retirement rate (vm_minst_s).
		icount0 := vm.Totals().Icount
		start := time.Now()
		rows, hists, err := figures.Fig6(names, progress)
		wall := time.Since(start)
		if err != nil {
			return fail(err)
		}
		figures.PrintFig6(os.Stdout, rows)
		if benchJSON != "" {
			var minstS float64
			if secs := wall.Seconds(); secs > 0 {
				minstS = float64(vm.Totals().Icount-icount0) / 1e6 / secs
			}
			if err := figures.WriteBenchJSON(benchJSON, nil, rows, minstS, hists); err != nil {
				return fail(err)
			}
		}
	default:
		return fail(fmt.Errorf("unknown table %q (fig5 or fig6)", which))
	}
	return 0
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "atom:", err)
	return 1
}
