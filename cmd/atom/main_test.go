package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atom/internal/obs"
)

// captureFD swaps one of the process's standard streams for a pipe
// around fn and returns what fn wrote to it.
func captureFD(t *testing.T, std **os.File, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := *std
	*std = w
	defer func() { *std = orig }()
	fn()
	w.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestWriteTraceDash: -trace - streams the trace JSON to stdout instead
// of creating a file literally named "-" (the pre-v5 behavior).
func TestWriteTraceDash(t *testing.T) {
	sink := &obs.TraceSink{}
	ctx := obs.New(sink)
	_, sp := ctx.Start("atom.apply")
	sp.End()

	dir := t.TempDir()
	cwd, _ := os.Getwd()
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)

	out := captureFD(t, &os.Stdout, func() {
		if err := writeTrace(sink, "-"); err != nil {
			t.Errorf("writeTrace(-): %v", err)
		}
	})
	if !strings.Contains(out, "traceEvents") || !strings.Contains(out, "atom.apply") {
		t.Fatalf("stdout trace = %q, want trace JSON", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "-")); !os.IsNotExist(err) {
		t.Fatal("a literal file named \"-\" was created")
	}

	// A real path still writes a file.
	path := filepath.Join(dir, "t.json")
	if err := writeTrace(sink, path); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(path); err != nil || !strings.Contains(string(data), "traceEvents") {
		t.Fatalf("file trace = %q, %v", data, err)
	}
}

// TestWriteMetricsDash: -metrics - prints the snapshot to stderr and
// creates no "-" file; a real path writes a file.
func TestWriteMetricsDash(t *testing.T) {
	sink := &obs.MetricsSink{}
	ctx := obs.New(sink)
	ctx.Count("store.image.hit", 4)

	dir := t.TempDir()
	cwd, _ := os.Getwd()
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)

	out := captureFD(t, &os.Stderr, func() {
		if err := writeMetricsSnapshot(ctx, sink, "-"); err != nil {
			t.Errorf("writeMetricsSnapshot(-): %v", err)
		}
	})
	if !strings.Contains(out, "store.image.hit") {
		t.Fatalf("stderr metrics = %q, want counter snapshot", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "-")); !os.IsNotExist(err) {
		t.Fatal("a literal file named \"-\" was created")
	}

	path := filepath.Join(dir, "m.txt")
	if err := writeMetricsSnapshot(ctx, sink, path); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(path); err != nil || !strings.Contains(string(data), "store.image.hit") {
		t.Fatalf("file metrics = %q, %v", data, err)
	}
}

// TestOutputName pins the output-naming rule the batch loop relies on.
func TestOutputName(t *testing.T) {
	for _, tc := range []struct{ in, explicit, want string }{
		{"prog.x", "", "prog.atom"},
		{"dir.v2/prog.x", "", "dir.v2/prog.atom"},
		{"prog", "", "prog.atom"},
		{"prog.x", "out.bin", "out.bin"},
	} {
		if got := outputName(tc.in, tc.explicit); got != tc.want {
			t.Errorf("outputName(%q, %q) = %q, want %q", tc.in, tc.explicit, got, tc.want)
		}
	}
}
