package main

// The checks. Both are syntactic — go/ast over single files, no type
// information — which keeps the tool dependency-free and fast enough to
// run on every package in CI. The cost is that a shadowed `os` or an
// aliased import evades them; neither occurs in this repo, and the
// point is to stop honest regressions, not adversaries.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"strings"
)

// cacheEnvOwner is the one import path allowed to read ATOM_CACHE_DIR:
// the CLI, which turns it into an explicit -cache-dir default. The
// library must stay inert unless a caller opts in (see
// internal/build/store.go), so any other read is a layering bug.
const cacheEnvOwner = "atom/cmd/atom"

// diag is one finding, already positioned.
type diag struct {
	pos token.Position
	msg string
}

func (d diag) String() string { return fmt.Sprintf("%s: %s", d.pos, d.msg) }

// checkFile runs every check over one parsed file. importPath is the
// package's import path ("atom/internal/build"); pkgName is the
// package's declared name, used to recognize *Ctx inside package obs
// itself.
func checkFile(fset *token.FileSet, f *ast.File, importPath string) []diag {
	var out []diag
	out = append(out, checkCacheEnv(fset, f, importPath)...)
	out = append(out, checkCtxPosition(fset, f)...)
	return out
}

// checkCacheEnv flags os.Getenv("ATOM_CACHE_DIR") and
// os.LookupEnv("ATOM_CACHE_DIR") outside cmd/atom.
func checkCacheEnv(fset *token.FileSet, f *ast.File, importPath string) []diag {
	if importPath == cacheEnvOwner {
		return nil
	}
	var out []diag
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != "os" {
			return true
		}
		if sel.Sel.Name != "Getenv" && sel.Sel.Name != "LookupEnv" {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		if v, err := strconv.Unquote(lit.Value); err == nil && v == "ATOM_CACHE_DIR" {
			out = append(out, diag{
				pos: fset.Position(call.Pos()),
				msg: fmt.Sprintf("os.%s(\"ATOM_CACHE_DIR\") outside %s: the library must not read the cache directory from the environment (plumb it through the caller)", sel.Sel.Name, cacheEnvOwner),
			})
		}
		return true
	})
	return out
}

// checkCtxPosition flags exported functions whose *obs.Ctx parameter is
// not the first parameter. The stage context threads through the whole
// pipeline as the leading argument (BuildCtx(ctx, exe), LiftCtx(ctx,
// app), ...); an exported signature that buries it breaks the
// convention every caller pattern-matches on.
func checkCtxPosition(fset *token.FileSet, f *ast.File) []diag {
	inObs := f.Name.Name == "obs"
	var out []diag
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || !fn.Name.IsExported() || fn.Type.Params == nil {
			continue
		}
		pos := 0
		for _, field := range fn.Type.Params.List {
			n := len(field.Names)
			if n == 0 {
				n = 1 // unnamed parameter occupies one position
			}
			if isObsCtxPtr(field.Type, inObs) && pos > 0 {
				out = append(out, diag{
					pos: fset.Position(field.Pos()),
					msg: fmt.Sprintf("exported function %s takes *obs.Ctx at parameter position %d: the stage context must be the first parameter", fn.Name.Name, pos),
				})
			}
			pos += n
		}
	}
	return out
}

// isObsCtxPtr recognizes *obs.Ctx — and plain *Ctx when the file is in
// package obs.
func isObsCtxPtr(t ast.Expr, inObs bool) bool {
	star, ok := t.(*ast.StarExpr)
	if !ok {
		return false
	}
	switch x := star.X.(type) {
	case *ast.SelectorExpr:
		pkg, ok := x.X.(*ast.Ident)
		return ok && pkg.Name == "obs" && x.Sel.Name == "Ctx"
	case *ast.Ident:
		return inObs && x.Name == "Ctx"
	}
	return false
}

// checkSource parses and checks one file's source text; the entry point
// both drivers and the tests share.
func checkSource(fset *token.FileSet, filename, importPath string, src any) ([]diag, error) {
	f, err := parser.ParseFile(fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	return checkFile(fset, f, importPath), nil
}

// importPathForDir maps a repo-relative directory to its import path
// under the atom module ("." -> "atom", "cmd/atom" -> "atom/cmd/atom").
func importPathForDir(rel string) string {
	rel = strings.TrimPrefix(rel, "./")
	if rel == "." || rel == "" {
		return "atom"
	}
	return "atom/" + rel
}
