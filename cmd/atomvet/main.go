// Command atomvet is the repo's custom vet tool: project-specific
// checks no general-purpose linter knows about.
//
//	os.Getenv("ATOM_CACHE_DIR") outside cmd/atom   — the library must not
//	    read the cache directory from the environment; the CLI turns the
//	    variable into an explicit -cache-dir and everything below takes a
//	    parameter.
//	*obs.Ctx anywhere but parameter position 0     — the stage context
//	    always leads an exported signature (BuildCtx(ctx, exe), ...).
//
// It speaks the cmd/go vettool protocol, so CI runs it as
//
//	go build -o atomvet ./cmd/atomvet
//	go vet -vettool=$(pwd)/atomvet ./...
//
// and it also runs standalone over directories for quick local use:
//
//	go run ./cmd/atomvet .
//
// The protocol (mirroring golang.org/x/tools' unitchecker, which this
// repo deliberately does not depend on): cmd/go first invokes the tool
// with -V=full to fingerprint it and -flags to learn its flags, then
// once per package with the path to a JSON config file as the sole
// argument. The tool analyzes the listed Go files, writes the (empty —
// these checks export no facts) .vetx fact file the config names, and
// reports findings on stderr with a non-zero exit.
package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	// Protocol handshakes come first and exit immediately.
	if len(args) == 1 {
		switch {
		case args[0] == "-flags":
			// No tool-specific flags: an empty JSON flag list.
			fmt.Println("[]")
			return 0
		case strings.HasPrefix(args[0], "-V"):
			// The output is cmd/go's cache fingerprint for the tool;
			// any stable line naming the binary works.
			fmt.Printf("%s version atomvet-1 sum none\n", os.Args[0])
			return 0
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runUnit(args[0])
	}
	return runDirs(args)
}

// vetConfig is the subset of cmd/go's vet.cfg JSON the tool needs.
type vetConfig struct {
	ImportPath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
}

// runUnit handles one `go vet` package unit.
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atomvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "atomvet: %s: %v\n", cfgPath, err)
		return 1
	}
	// The fact file must exist for cmd/go to cache the result, even
	// though these checks produce no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "atomvet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependency pass: facts only, no diagnostics wanted.
		return 0
	}
	found := 0
	fset := token.NewFileSet()
	for _, file := range cfg.GoFiles {
		diags, err := checkSource(fset, file, cfg.ImportPath, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atomvet:", err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
			found++
		}
	}
	if found > 0 {
		return 2
	}
	return 0
}

// runDirs is the standalone mode: recursively check every .go file
// under each directory (default "."), deriving import paths from the
// position relative to the module root.
func runDirs(dirs []string) int {
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	found := 0
	fset := token.NewFileSet()
	for _, root := range dirs {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			rel := filepath.ToSlash(filepath.Dir(path))
			diags, err := checkSource(fset, path, importPathForDir(rel), nil)
			if err != nil {
				return err
			}
			for _, dg := range diags {
				fmt.Println(dg)
				found++
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "atomvet:", err)
			return 1
		}
	}
	if found > 0 {
		return 1
	}
	return 0
}
