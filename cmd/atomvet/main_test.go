package main

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func check(t *testing.T, importPath, src string) []diag {
	t.Helper()
	diags, err := checkSource(token.NewFileSet(), "x.go", importPath, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return diags
}

func wantDiag(t *testing.T, diags []diag, substr string) {
	t.Helper()
	for _, d := range diags {
		if strings.Contains(d.String(), substr) {
			return
		}
	}
	t.Errorf("no diagnostic containing %q; have %v", substr, diags)
}

func TestCacheEnvOutsideCmdAtom(t *testing.T) {
	src := `package build
import "os"
func dir() string { return os.Getenv("ATOM_CACHE_DIR") }
func dir2() (string, bool) { return os.LookupEnv("ATOM_CACHE_DIR") }
`
	diags := check(t, "atom/internal/build", src)
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics, got %v", diags)
	}
	wantDiag(t, diags, `os.Getenv("ATOM_CACHE_DIR") outside atom/cmd/atom`)
	wantDiag(t, diags, `os.LookupEnv("ATOM_CACHE_DIR") outside atom/cmd/atom`)

	// The CLI itself is the sanctioned reader.
	if diags := check(t, "atom/cmd/atom", src); len(diags) != 0 {
		t.Errorf("cmd/atom flagged for its own env read: %v", diags)
	}
	// Other variables are not this check's business.
	other := `package build
import "os"
func home() string { return os.Getenv("HOME") }
`
	if diags := check(t, "atom/internal/build", other); len(diags) != 0 {
		t.Errorf("unrelated env read flagged: %v", diags)
	}
}

func TestCtxParameterPosition(t *testing.T) {
	src := `package core
import "atom/internal/obs"
func LiftCtx(ctx *obs.Ctx, n int) {}          // good: position 0
func Bad(n int, ctx *obs.Ctx) {}              // bad: position 1
func BadShared(a, b int, ctx *obs.Ctx) {}     // bad: position 2
func unexported(n int, ctx *obs.Ctx) {}       // unexported: not checked
func NoCtx(a, b string) {}
`
	diags := check(t, "atom/internal/core", src)
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics, got %v", diags)
	}
	wantDiag(t, diags, "exported function Bad takes *obs.Ctx at parameter position 1")
	wantDiag(t, diags, "exported function BadShared takes *obs.Ctx at parameter position 2")

	// Inside package obs the type is spelled *Ctx.
	obsSrc := `package obs
func Good(c *Ctx, n int) {}
func Bad(n int, c *Ctx) {}
`
	diags = check(t, "atom/internal/obs", obsSrc)
	if len(diags) != 1 {
		t.Fatalf("obs package: want 1 diagnostic, got %v", diags)
	}
	wantDiag(t, diags, "exported function Bad takes *obs.Ctx at parameter position 1")
}

// TestStandaloneDriver seeds a violating file in a temp tree and runs
// the directory walker over it.
func TestStandaloneDriver(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "internal", "build")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	src := `package build
import "os"
func dir() string { return os.Getenv("ATOM_CACHE_DIR") }
`
	if err := os.WriteFile(filepath.Join(sub, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runDirs([]string{dir}); code != 1 {
		t.Errorf("runDirs over a violating tree: exit %d, want 1", code)
	}
	if err := os.WriteFile(filepath.Join(sub, "bad.go"), []byte("package build\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runDirs([]string{dir}); code != 0 {
		t.Errorf("runDirs over a clean tree: exit %d, want 0", code)
	}
}

// TestUnitProtocol exercises the vet.cfg path: the fact file is
// written even when the unit is clean, and a violating unit exits 2.
func TestUnitProtocol(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.go")
	if err := os.WriteFile(good, []byte("package build\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.go")
	src := `package build
import "os"
func dir() string { return os.Getenv("ATOM_CACHE_DIR") }
`
	if err := os.WriteFile(bad, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	writeCfg := func(name string, files []string, vetxOnly bool) (cfgPath, vetx string) {
		t.Helper()
		vetx = filepath.Join(dir, name+".vetx")
		cfg, err := json.Marshal(vetConfig{
			ImportPath: "atom/internal/build",
			GoFiles:    files,
			VetxOnly:   vetxOnly,
			VetxOutput: vetx,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfgPath = filepath.Join(dir, name+".cfg")
		if err := os.WriteFile(cfgPath, cfg, 0o644); err != nil {
			t.Fatal(err)
		}
		return cfgPath, vetx
	}

	cfg, vetx := writeCfg("good", []string{good}, false)
	if code := run([]string{cfg}); code != 0 {
		t.Errorf("clean unit: exit %d, want 0", code)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("fact file not written for clean unit: %v", err)
	}

	cfg, _ = writeCfg("bad", []string{bad}, false)
	if code := run([]string{cfg}); code != 2 {
		t.Errorf("violating unit: exit %d, want 2", code)
	}

	// VetxOnly units produce facts, never diagnostics.
	cfg, vetx = writeCfg("dep", []string{bad}, true)
	if code := run([]string{cfg}); code != 0 {
		t.Errorf("vetx-only unit: exit %d, want 0", code)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("fact file not written for vetx-only unit: %v", err)
	}
}
