// Command minicc compiles MiniC source files to relocatable object
// modules (or assembly text with -S).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"atom/internal/cc"
	"atom/internal/rtl"
)

func main() {
	var (
		out     = flag.String("o", "", "output path (default: input with .o)")
		asmOnly = flag.Bool("S", false, "emit assembly text instead of an object")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minicc [-S] [-o out.o] file.c")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	hdrs, err := rtl.Headers()
	if err != nil {
		fatal(err)
	}
	if *asmOnly {
		text, err := cc.Compile(path, string(src), hdrs)
		if err != nil {
			fatal(err)
		}
		if *out == "" || *out == "-" {
			fmt.Print(text)
			return
		}
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			fatal(err)
		}
		return
	}
	obj, err := cc.Build(path, string(src), hdrs)
	if err != nil {
		fatal(err)
	}
	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(filepath.Base(path), ".c") + ".o"
	}
	if err := obj.WriteFile(dst); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minicc:", err)
	os.Exit(1)
}
