package atom_test

import (
	"fmt"
	"log"

	"atom"
)

// Example builds a tiny application, instruments it with a one-procedure
// counting tool, and reads the analysis result — the complete ATOM
// pipeline in a dozen lines.
func Example() {
	app, err := atom.BuildProgram(map[string]string{"app.c": `
int work(int n) { return n * 2; }
int main() {
	long i;
	long s = 0;
	for (i = 0; i < 5; i++) s += work(i);
	return s;
}
`})
	if err != nil {
		log.Fatal(err)
	}
	tool := atom.Tool{
		Name: "count",
		Analysis: map[string]string{"count.c": `
#include <stdio.h>
long calls;
void Count(void) { calls++; }
void Done(void) { printf("work called %d times\n", calls); }
`},
		Instrument: func(q *atom.Instrumentation) error {
			if err := q.AddCallProto("Count()"); err != nil {
				return err
			}
			if err := q.AddCallProto("Done()"); err != nil {
				return err
			}
			for p := q.GetFirstProc(); p != nil; p = q.GetNextProc(p) {
				if q.ProcName(p) == "work" {
					if err := q.AddCallProc(p, atom.ProcBefore, "Count"); err != nil {
						return err
					}
				}
			}
			return q.AddCallProgram(atom.ProgramAfter, "Done")
		},
	}
	res, err := atom.Instrument(app, tool, atom.Options{})
	if err != nil {
		log.Fatal(err)
	}
	out, err := atom.RunProgram(res.Exe, atom.RunConfig{AnalysisHeapOffset: res.HeapOffset})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s", out.Stdout)
	fmt.Printf("exit %d\n", out.ExitCode)
	// Output:
	// work called 5 times
	// exit 20
}
