// Cachesim: the paper's cache tool driven across a geometry sweep.
//
// The motivating use case from the paper's introduction — "computer
// architects need such tools to evaluate how well programs will perform
// on new architectures" — is answered by instrumenting once per
// configuration and reading the miss rate out of the analysis report.
// The workload walks a matrix both row-major and column-major, so the
// crossover between the two access patterns appears as the cache grows.
//
//	go run ./examples/cachesim
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"atom"
)

const workload = `
#include <stdio.h>
#define R 64
#define C 96
long m[R][C];
int main() {
	long r, c, pass;
	long sum = 0;
	for (pass = 0; pass < 4; pass++) {
		for (r = 0; r < R; r++)        /* row-major: friendly */
			for (c = 0; c < C; c++)
				sum += m[r][c]++;
		for (c = 0; c < C; c++)        /* column-major: hostile */
			for (r = 0; r < R; r++)
				sum += m[r][c] * 3;
	}
	printf("sum=%d\n", sum & 0xffffff);
	return 0;
}
`

func main() {
	noInline := flag.Bool("noinline", false, "disable the analysis-routine inliner")
	flag.Parse()

	app, err := atom.BuildProgram(map[string]string{"matrix.c": workload})
	check(err)
	tool, err := atom.ToolByName("cache")
	check(err)

	fmt.Println("direct-mapped cache, 32-byte lines; workload: row+column matrix sweeps")
	fmt.Printf("%10s %12s %10s %10s\n", "cache", "references", "misses", "missrate")
	for _, size := range []int{1 << 10, 4 << 10, 8 << 10, 16 << 10, 64 << 10, 256 << 10} {
		res, err := atom.Instrument(app, tool, atom.Options{
			ToolArgs: []string{strconv.Itoa(size), "32"},
		}, atom.WithInlining(!*noInline))
		check(err)
		out, err := atom.RunProgram(res.Exe, atom.RunConfig{AnalysisHeapOffset: res.HeapOffset})
		check(err)
		report := string(out.Files["cache.out"])
		fmt.Printf("%9dK %12s %10s %9s%%\n", size/1024,
			field(report, "references"), field(report, "misses"), missPct(report))
	}
}

// field pulls "<label>: value" out of the tool report.
func field(report, label string) string {
	for _, ln := range strings.Split(report, "\n") {
		if strings.HasPrefix(ln, label+":") {
			return strings.TrimSpace(strings.TrimPrefix(ln, label+":"))
		}
	}
	return "?"
}

func missPct(report string) string {
	v := field(report, "miss rate") // "N/10000"
	n := strings.Split(v, "/")[0]
	i, err := strconv.Atoi(n)
	if err != nil {
		return "?"
	}
	return fmt.Sprintf("%d.%02d", i/100, i%100)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(1)
	}
}
