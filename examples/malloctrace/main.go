// Malloctrace: a custom allocation-tracing tool demonstrating the two
// dynamic-memory schemes of Section 4.
//
// The tool records every application malloc in a linked list — so the
// *analysis itself* allocates memory on every event. With the default
// linked-sbrk scheme those allocations interleave with the application's
// and shift its heap addresses; with the partitioned scheme
// (Options.HeapOffset) the application's heap addresses are identical to
// the uninstrumented run. This is exactly the case the paper's second
// scheme exists for: "tools that allocate dynamic memory and also
// require heap addresses to be same as in the uninstrumented version".
//
//	go run ./examples/malloctrace
package main

import (
	"fmt"
	"os"

	"atom"
	"atom/internal/alpha"
	"atom/internal/core"
)

const workload = `
#include <stdio.h>
#include <stdlib.h>
int main() {
	long i;
	char *first = malloc(24);
	char *p = first;
	for (i = 1; i <= 300; i++) {
		p = malloc((i * 37) % 4000 + 1);
		if ((i % 3) == 0) free(p);
	}
	printf("first=%p last=%p\n", first, p);
	return 0;
}
`

// The analysis allocates a record per event (the interesting part) and
// prints a histogram at exit.
const analysis = `
#include <stdio.h>
#include <stdlib.h>

struct rec {
	long size;
	struct rec *next;
};
struct rec *head;
long events;

void TraceMalloc(long size) {
	struct rec *r = (struct rec *) malloc(sizeof(struct rec));
	r->size = size;
	r->next = head;
	head = r;
	events++;
}

void TraceDone(void) {
	FILE *f = fopen("mtrace.out", "w");
	long buckets[16];
	long i;
	for (i = 0; i < 16; i++) buckets[i] = 0;
	struct rec *r = head;
	long total = 0;
	while (r) {
		long b = 0;
		long cap = 16;
		while (r->size > cap && b < 15) { cap = cap * 2; b++; }
		buckets[b]++;
		total += r->size;
		r = r->next;
	}
	fprintf(f, "events: %d\n", events);
	fprintf(f, "bytes: %d\n", total);
	long cap = 16;
	for (i = 0; i < 16; i++) {
		if (buckets[i]) fprintf(f, "<=%d\t%d\n", cap, buckets[i]);
		cap = cap * 2;
	}
	fclose(f);
}
`

func tracingTool() atom.Tool {
	return atom.Tool{
		Name:     "mtrace",
		Analysis: map[string]string{"mtrace.c": analysis},
		Instrument: func(q *atom.Instrumentation) error {
			if err := q.AddCallProto("TraceMalloc(REGV)"); err != nil {
				return err
			}
			if err := q.AddCallProto("TraceDone()"); err != nil {
				return err
			}
			for p := q.GetFirstProc(); p != nil; p = q.GetNextProc(p) {
				if q.ProcName(p) == "malloc" {
					if err := q.AddCallProc(p, atom.ProcBefore, "TraceMalloc",
						core.RegV(alpha.A0)); err != nil {
						return err
					}
				}
			}
			return q.AddCallProgram(atom.ProgramAfter, "TraceDone")
		},
	}
}

func main() {
	app, err := atom.BuildProgram(map[string]string{"churn.c": workload})
	check(err)
	ref, err := atom.RunProgram(app, atom.RunConfig{})
	check(err)
	fmt.Printf("uninstrumented:             %s", ref.Stdout)

	tool := tracingTool()

	// Scheme 1 (default): linked sbrks — analysis records interleave with
	// application allocations, shifting its addresses.
	res, err := atom.Instrument(app, tool, atom.Options{})
	check(err)
	linked, err := atom.RunProgram(res.Exe, atom.RunConfig{AnalysisHeapOffset: res.HeapOffset})
	check(err)
	fmt.Printf("instrumented (linked):      %s", linked.Stdout)

	// Scheme 2: partitioned heap — application addresses pristine.
	res2, err := atom.Instrument(app, tool, atom.Options{HeapOffset: 8 << 20})
	check(err)
	part, err := atom.RunProgram(res2.Exe, atom.RunConfig{AnalysisHeapOffset: res2.HeapOffset})
	check(err)
	fmt.Printf("instrumented (partitioned): %s", part.Stdout)

	switch {
	case string(part.Stdout) != string(ref.Stdout):
		fmt.Println("!! partitioned heap failed to preserve addresses")
		os.Exit(1)
	case string(linked.Stdout) == string(ref.Stdout):
		fmt.Println("(note: linked scheme happened not to perturb this run)")
	default:
		fmt.Println("-> linked sbrks shifted the application heap; the partitioned scheme preserved it")
	}
	fmt.Printf("\nallocation trace summary (mtrace.out):\n%s", part.Files["mtrace.out"])
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "malloctrace:", err)
		os.Exit(1)
	}
}
