// Pipestall: the paper's pipe tool over several suite programs.
//
// The tool performs static dual-issue pipeline scheduling of every basic
// block at instrumentation time (which is why Figure 5 shows pipe as the
// slowest tool to *instrument* with) and accumulates modeled cycles at
// run time, yielding a CPI estimate per workload.
//
//	go run ./examples/pipestall
package main

import (
	"fmt"
	"os"
	"strings"

	"atom"
	"atom/internal/spec"
)

func main() {
	tool, err := atom.ToolByName("pipe")
	check(err)

	fmt.Printf("%-10s %14s %14s %12s %8s\n", "program", "instructions", "cycles", "stalls", "cpi")
	for _, name := range []string{"eqntott", "fpppp", "su2cor", "queens", "spice", "doduc"} {
		exe, err := spec.Build(name)
		check(err)
		res, err := atom.Instrument(exe, tool, atom.Options{})
		check(err)
		p, _ := spec.ByName(name)
		out, err := atom.RunProgram(res.Exe, atom.RunConfig{
			Stdin: p.Stdin, FS: p.FS,
			AnalysisHeapOffset: res.HeapOffset,
			MaxInstr:           2_000_000_000,
		})
		check(err)
		rep := string(out.Files["pipe.out"])
		fmt.Printf("%-10s %14s %14s %12s %8s\n", name,
			field(rep, "dynamic instructions"), field(rep, "modeled cycles"),
			field(rep, "stall cycles"), cpi(field(rep, "cpi")))
	}
	fmt.Println("\n(fpppp's long straight-line blocks schedule densely; divide-heavy")
	fmt.Println("doduc stalls on the multiplier/latency chain, as its profile intends)")
}

func field(report, label string) string {
	for _, ln := range strings.Split(report, "\n") {
		if strings.HasPrefix(ln, label+":") {
			return strings.TrimSpace(strings.TrimPrefix(ln, label+":"))
		}
	}
	return "?"
}

func cpi(v string) string {
	// "1234/1000" -> "1.234"
	parts := strings.Split(v, "/")
	if len(parts) != 2 || len(parts[0]) < 1 {
		return v
	}
	n := parts[0]
	for len(n) < 4 {
		n = "0" + n
	}
	return n[:len(n)-3] + "." + n[len(n)-3:]
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipestall:", err)
		os.Exit(1)
	}
}
