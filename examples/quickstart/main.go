// Quickstart: the paper's Section 3 example, end to end.
//
// It builds a small application, defines the branch-counting tool of
// Figures 2 and 3 — instrumentation routine in Go against the ATOM API,
// analysis routines in MiniC, ported nearly verbatim from the paper —
// instruments the application, runs it, and prints btaken.out.
//
//	go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"os"

	"atom"
	"atom/internal/core"
)

const application = `
#include <stdio.h>

long collatz(long n) {
	long steps = 0;
	while (n != 1) {
		if (n & 1) n = 3 * n + 1;
		else n = n / 2;
		steps++;
	}
	return steps;
}

int main() {
	long longest = 0;
	long which = 0;
	long n;
	for (n = 1; n <= 60; n++) {
		long s = collatz(n);
		if (s > longest) { longest = s; which = n; }
	}
	printf("longest collatz chain under 60: n=%d steps=%d\n", which, longest);
	return 0;
}
`

// analysisRoutines is Figure 3 of the paper, in MiniC.
const analysisRoutines = `
#include <stdio.h>
#include <stdlib.h>

FILE *file;

struct BranchInfo {
	long taken;
	long notTaken;
};
struct BranchInfo *bstats;

void OpenFile(long n) {
	bstats = (struct BranchInfo *) malloc(n * sizeof(struct BranchInfo));
	file = fopen("btaken.out", "w");
	fprintf(file, "PC\tTaken\tNot Taken\n");
}

void CondBranch(long n, long taken) {
	if (taken) bstats[n].taken++;
	else bstats[n].notTaken++;
}

void PrintBranch(long n, long pc) {
	fprintf(file, "0x%x\t%d\t%d\n", pc, bstats[n].taken, bstats[n].notTaken);
}

void CloseFile(void) {
	fclose(file);
}
`

func main() {
	noInline := flag.Bool("noinline", false, "disable the analysis-routine inliner")
	flag.Parse()

	// Step 0: build the application ("user application" + "standard
	// linker" boxes of Figure 1).
	app, err := atom.BuildProgram(map[string]string{"app.c": application})
	check(err)

	// The tool: Figure 2's instrumentation routine plus Figure 3's
	// analysis routines.
	tool := atom.Tool{
		Name:     "btaken",
		Analysis: map[string]string{"anal.c": analysisRoutines},
		Instrument: func(q *atom.Instrumentation) error {
			for _, proto := range []string{
				"OpenFile(int)", "CondBranch(int, VALUE)",
				"PrintBranch(int, long)", "CloseFile()",
			} {
				if err := q.AddCallProto(proto); err != nil {
					return err
				}
			}
			nbranch := 0
			for p := q.GetFirstProc(); p != nil; p = q.GetNextProc(p) {
				for b := q.GetFirstBlock(p); b != nil; b = q.GetNextBlock(b) {
					inst := q.GetLastInst(b)
					if q.IsInstType(inst, core.InstTypeCondBr) {
						if err := q.AddCallInst(inst, atom.InstBefore, "CondBranch",
							nbranch, atom.BrCondValue); err != nil {
							return err
						}
						if err := q.AddCallProgram(atom.ProgramAfter, "PrintBranch",
							nbranch, int64(q.InstPC(inst))); err != nil {
							return err
						}
						nbranch++
					}
				}
			}
			if err := q.AddCallProgram(atom.ProgramBefore, "OpenFile", nbranch); err != nil {
				return err
			}
			return q.AddCallProgram(atom.ProgramAfter, "CloseFile")
		},
	}

	// Step 1+2 of Figure 1: build the custom tool and apply it.
	res, err := atom.Instrument(app, tool, atom.Options{}, atom.WithInlining(!*noInline))
	check(err)
	fmt.Printf("instrumented: %d call sites, text %d -> %d bytes\n\n",
		res.Stats.Calls, res.Stats.OrigText, res.Stats.InstrText)

	// Run the instrumented program: branch statistics fall out as a side
	// effect of normal execution — no traces, no postprocessing.
	out, err := atom.RunProgram(res.Exe, atom.RunConfig{})
	check(err)
	fmt.Printf("application output (unperturbed):\n%s\n", out.Stdout)
	fmt.Printf("analysis output (btaken.out):\n%s", out.Files["btaken.out"])
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}
