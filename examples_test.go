package atom

// End-to-end smoke tests for the example programs: each builds, runs,
// and produces its documented output. They exec `go run`, so they are
// skipped under -short and when no go binary is on PATH.

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

func runExample(t *testing.T, dir string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("examples smoke skipped in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("no go binary on PATH")
	}
	cmd := exec.Command(goBin, "run", "./"+dir)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./%s: %v\n%s", dir, err, out)
	}
	return string(out)
}

func TestExampleQuickstart(t *testing.T) {
	start := time.Now()
	out := runExample(t, "examples/quickstart")
	if !strings.Contains(out, "longest collatz chain under 60:") {
		t.Errorf("quickstart output missing collatz result:\n%s", out)
	}
	if !strings.Contains(out, "call sites") {
		t.Errorf("quickstart output missing instrumentation summary:\n%s", out)
	}
	if !strings.Contains(out, "Taken\tNot Taken") {
		t.Errorf("quickstart output missing branch-count table:\n%s", out)
	}
	t.Logf("quickstart ran in %v", time.Since(start))
}

func TestExampleCachesim(t *testing.T) {
	out := runExample(t, "examples/cachesim")
	if !strings.Contains(out, "missrate") {
		t.Errorf("cachesim output missing miss-rate table:\n%s", out)
	}
	// The direct-mapped cache must report a sane miss rate: some misses
	// (cold start), not all misses.
	if !strings.Contains(out, "%") {
		t.Errorf("cachesim output has no percentage column:\n%s", out)
	}
}
