module atom

go 1.22
