// Package alpha defines the Alpha AXP instruction-set subset used by the
// ATOM reproduction: instruction formats and encodings, the integer
// register file, and the OSF/1 calling convention.
//
// The subset is faithful to the Alpha Architecture Reference Manual where
// it matters for link-time instrumentation: real major opcodes and
// function codes, 32-bit little-endian instruction words, the memory /
// branch / operate / jump / CALL_PAL formats, and the standard register
// roles (v0, t0-t11, s0-s6, a0-a5, ra, pv, at, gp, sp, zero). Floating
// point and a handful of exotic integer operations are omitted; byte and
// word memory operations follow the BWX extension.
package alpha

import "fmt"

// Reg is an integer register number, 0 through 31.
type Reg uint8

// Register numbers with their OSF/1 software names.
const (
	V0   Reg = 0 // function result
	T0   Reg = 1 // caller-save temporaries
	T1   Reg = 2
	T2   Reg = 3
	T3   Reg = 4
	T4   Reg = 5
	T5   Reg = 6
	T6   Reg = 7
	T7   Reg = 8
	S0   Reg = 9 // callee-save
	S1   Reg = 10
	S2   Reg = 11
	S3   Reg = 12
	S4   Reg = 13
	S5   Reg = 14
	FP   Reg = 15 // frame pointer (callee-save, a.k.a. s6)
	A0   Reg = 16 // argument registers
	A1   Reg = 17
	A2   Reg = 18
	A3   Reg = 19
	A4   Reg = 20
	A5   Reg = 21
	T8   Reg = 22 // more caller-save temporaries
	T9   Reg = 23
	T10  Reg = 24
	T11  Reg = 25
	RA   Reg = 26 // return address
	PV   Reg = 27 // procedure value (t12)
	AT   Reg = 28 // assembler temporary
	GP   Reg = 29 // global pointer
	SP   Reg = 30 // stack pointer
	Zero Reg = 31 // wired zero
)

// NumRegs is the size of the integer register file.
const NumRegs = 32

var regNames = [NumRegs]string{
	"v0", "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "fp",
	"a0", "a1", "a2", "a3", "a4", "a5",
	"t8", "t9", "t10", "t11",
	"ra", "pv", "at", "gp", "sp", "zero",
}

// String returns the OSF/1 software name of the register.
func (r Reg) String() string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("r%d?", uint8(r))
}

// RegByName maps both software names ("a0", "ra", "zero") and raw names
// ("$16", "r16") to register numbers.
func RegByName(name string) (Reg, bool) {
	for i, n := range regNames {
		if n == name {
			return Reg(i), true
		}
	}
	var n int
	if _, err := fmt.Sscanf(name, "$%d", &n); err == nil && n >= 0 && n < NumRegs {
		return Reg(n), true
	}
	if _, err := fmt.Sscanf(name, "r%d", &n); err == nil && n >= 0 && n < NumRegs {
		return Reg(n), true
	}
	return 0, false
}

// IsCallerSave reports whether the register is caller-save (not preserved
// across calls) under the OSF/1 calling convention. The at register is
// included: inserted instrumentation may use it freely only after saving.
func (r Reg) IsCallerSave() bool {
	switch {
	case r == V0:
		return true
	case r >= T0 && r <= T7:
		return true
	case r >= A0 && r <= A5:
		return true
	case r >= T8 && r <= T11:
		return true
	case r == RA || r == PV || r == AT:
		return true
	}
	return false
}

// IsCalleeSave reports whether the register must be preserved by a callee.
func (r Reg) IsCalleeSave() bool {
	return (r >= S0 && r <= S5) || r == FP || r == GP || r == SP
}

// CallerSaveRegs lists every caller-save register in ascending order.
func CallerSaveRegs() []Reg {
	var out []Reg
	for r := Reg(0); r < NumRegs; r++ {
		if r.IsCallerSave() {
			out = append(out, r)
		}
	}
	return out
}

// ArgRegs returns the six argument registers a0-a5 in order.
func ArgRegs() [6]Reg { return [6]Reg{A0, A1, A2, A3, A4, A5} }

// MaxRegArgs is the number of procedure arguments passed in registers;
// further arguments go on the stack.
const MaxRegArgs = 6

// PAL function codes for the OSF/1-like services provided by the VM.
// These stand in for the OSF/1 PALcode + kernel syscall layer.
const (
	PalHalt   = 0x00 // terminate; a0 = exit status
	PalWrite  = 0x01 // a0 fd, a1 buf, a2 len -> v0 written or -errno
	PalRead   = 0x02 // a0 fd, a1 buf, a2 len -> v0 read or -errno
	PalOpen   = 0x03 // a0 path cstring, a1 flags -> v0 fd or -errno
	PalClose  = 0x04 // a0 fd -> v0 0 or -errno
	PalSbrk   = 0x05 // a0 increment -> v0 previous break (application zone)
	PalCycles = 0x06 // -> v0 instructions retired so far
	PalSbrk2  = 0x07 // a0 increment -> v0 previous break (analysis zone)
)

// Word is the size in bytes of one instruction.
const Word = 4
