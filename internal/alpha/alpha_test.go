package alpha

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	cases := []struct {
		r    Reg
		name string
	}{
		{V0, "v0"}, {T0, "t0"}, {S0, "s0"}, {FP, "fp"},
		{A0, "a0"}, {A5, "a5"}, {RA, "ra"}, {PV, "pv"},
		{AT, "at"}, {GP, "gp"}, {SP, "sp"}, {Zero, "zero"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.name {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.name)
		}
		r, ok := RegByName(c.name)
		if !ok || r != c.r {
			t.Errorf("RegByName(%q) = %v, %v; want %v, true", c.name, r, ok, c.r)
		}
	}
}

func TestRegByNameNumeric(t *testing.T) {
	for _, name := range []string{"$16", "r16"} {
		r, ok := RegByName(name)
		if !ok || r != A0 {
			t.Errorf("RegByName(%q) = %v, %v; want a0, true", name, r, ok)
		}
	}
	if _, ok := RegByName("r32"); ok {
		t.Error("RegByName(r32) succeeded; want failure")
	}
	if _, ok := RegByName("bogus"); ok {
		t.Error("RegByName(bogus) succeeded; want failure")
	}
}

func TestCallerCalleePartition(t *testing.T) {
	for r := Reg(0); r < NumRegs; r++ {
		caller, callee := r.IsCallerSave(), r.IsCalleeSave()
		if r == Zero {
			if caller || callee {
				t.Errorf("zero register classified caller=%v callee=%v", caller, callee)
			}
			continue
		}
		if caller == callee {
			t.Errorf("%s: caller=%v callee=%v; want exactly one", r, caller, callee)
		}
	}
	if n := len(CallerSaveRegs()); n != 22 {
		t.Errorf("len(CallerSaveRegs()) = %d, want 22", n)
	}
}

func TestEncodeDecodeGolden(t *testing.T) {
	// Encodings checked against the Alpha Architecture Reference Manual
	// formats: opcode<<26 | ra<<21 | rb<<16 | disp16 for memory format, etc.
	cases := []struct {
		in   Inst
		want uint32
	}{
		{Inst{Op: OpLda, Ra: SP, Rb: SP, Disp: -32}, 0x08<<26 | 30<<21 | 30<<16 | 0xFFE0},
		{Inst{Op: OpLdq, Ra: RA, Rb: SP, Disp: 8}, 0x29<<26 | 26<<21 | 30<<16 | 8},
		{Inst{Op: OpStq, Ra: A0, Rb: SP, Disp: 0}, 0x2D<<26 | 16<<21 | 30<<16},
		{Inst{Op: OpBeq, Ra: T0, Disp: 3}, 0x39<<26 | 1<<21 | 3},
		{Inst{Op: OpBr, Ra: Zero, Disp: -1}, 0x30<<26 | 31<<21 | 0x1FFFFF},
		{Inst{Op: OpAddq, Ra: T0, Rb: T1, Rc: T2}, 0x10<<26 | 1<<21 | 2<<16 | 0x20<<5 | 3},
		{Inst{Op: OpAddq, Ra: T0, Lit: 8, HasLit: true, Rc: T0}, 0x10<<26 | 1<<21 | 8<<13 | 1<<12 | 0x20<<5 | 1},
		{Inst{Op: OpJsr, Ra: RA, Rb: PV}, 0x1A<<26 | 26<<21 | 27<<16 | 1<<14},
		{Inst{Op: OpRet, Ra: Zero, Rb: RA}, 0x1A<<26 | 31<<21 | 26<<16 | 2<<14},
		{Inst{Op: OpCallPal, PalFn: PalWrite}, 0x01},
	}
	for _, c := range cases {
		got, err := c.in.Encode()
		if err != nil {
			t.Errorf("Encode(%v): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Encode(%v) = %#08x, want %#08x", c.in, got, c.want)
		}
		back, err := Decode(got)
		if err != nil {
			t.Errorf("Decode(%#08x): %v", got, err)
			continue
		}
		if back != c.in {
			t.Errorf("Decode(Encode(%v)) = %v", c.in, back)
		}
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	bad := []Inst{
		{Op: OpLda, Ra: T0, Rb: T1, Disp: 0x8000},
		{Op: OpLda, Ra: T0, Rb: T1, Disp: -0x8001},
		{Op: OpBr, Ra: Zero, Disp: 1 << 20},
		{Op: OpBr, Ra: Zero, Disp: -(1<<20 + 1)},
		{Op: OpCallPal, PalFn: 1 << 26},
		{Op: OpInvalid},
		{Op: opCount},
	}
	for _, in := range bad {
		if _, err := in.Encode(); err == nil {
			t.Errorf("Encode(%+v) succeeded; want error", in)
		}
	}
}

func TestDecodeUnsupported(t *testing.T) {
	bad := []uint32{
		0x20 << 26,         // LDF (floating) unsupported
		0x10<<26 | 0x7F<<5, // unknown arith function
		0x1A<<26 | 3<<14,   // jsr_coroutine unsupported
		0x17 << 26,         // FLTL unsupported
	}
	for _, w := range bad {
		if _, err := Decode(w); err == nil {
			t.Errorf("Decode(%#08x) succeeded; want error", w)
		}
	}
}

// randInst generates a random valid instruction for roundtrip testing.
func randInst(r *rand.Rand) Inst {
	for {
		op := Op(1 + r.Intn(int(opCount)-1))
		i := Inst{Op: op}
		switch op.Format() {
		case FormatPal:
			i.PalFn = uint32(r.Intn(8))
		case FormatMem:
			i.Ra = Reg(r.Intn(32))
			i.Rb = Reg(r.Intn(32))
			i.Disp = int32(int16(r.Uint32()))
		case FormatBranch:
			i.Ra = Reg(r.Intn(32))
			i.Disp = r.Int31n(1<<21) - 1<<20
		case FormatOperate:
			i.Ra = Reg(r.Intn(32))
			i.Rc = Reg(r.Intn(32))
			if r.Intn(2) == 0 {
				i.HasLit = true
				i.Lit = uint8(r.Uint32())
			} else {
				i.Rb = Reg(r.Intn(32))
			}
		case FormatJump:
			i.Ra = Reg(r.Intn(32))
			i.Rb = Reg(r.Intn(32))
		}
		return i
	}
}

func TestEncodeDecodeRoundtripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randInst(r)
		w, err := in.Encode()
		if err != nil {
			t.Logf("Encode(%+v): %v", in, err)
			return false
		}
		out, err := Decode(w)
		if err != nil {
			t.Logf("Decode(%#08x): %v", w, err)
			return false
		}
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestClassifiers(t *testing.T) {
	if !OpBeq.IsCondBranch() || OpBr.IsCondBranch() || OpBsr.IsCondBranch() {
		t.Error("IsCondBranch misclassifies")
	}
	if !OpBr.IsUncondBranch() || !OpBsr.IsUncondBranch() || OpBeq.IsUncondBranch() {
		t.Error("IsUncondBranch misclassifies")
	}
	if !OpBsr.IsCall() || !OpJsr.IsCall() || OpBr.IsCall() || OpRet.IsCall() {
		t.Error("IsCall misclassifies")
	}
	if !OpLdq.IsLoad() || OpStq.IsLoad() || OpLda.IsLoad() {
		t.Error("IsLoad misclassifies")
	}
	if !OpStb.IsStore() || OpLdbu.IsStore() {
		t.Error("IsStore misclassifies")
	}
	widths := map[Op]int{OpLdbu: 1, OpStb: 1, OpLdwu: 2, OpStw: 2, OpLdl: 4, OpStl: 4, OpLdq: 8, OpStq: 8, OpAddq: 0, OpLda: 0}
	for op, want := range widths {
		if got := op.MemBytes(); got != want {
			t.Errorf("%s.MemBytes() = %d, want %d", op, got, want)
		}
	}
}

func TestWritesReadsRegs(t *testing.T) {
	cases := []struct {
		in     Inst
		writes Reg
		hasW   bool
		reads  []Reg
	}{
		{Inst{Op: OpAddq, Ra: T0, Rb: T1, Rc: T2}, T2, true, []Reg{T0, T1}},
		{Inst{Op: OpAddq, Ra: T0, Lit: 1, HasLit: true, Rc: Zero}, 0, false, []Reg{T0}},
		{Inst{Op: OpLdq, Ra: V0, Rb: SP, Disp: 8}, V0, true, []Reg{SP}},
		{Inst{Op: OpStq, Ra: A0, Rb: SP}, 0, false, []Reg{SP, A0}},
		{Inst{Op: OpLda, Ra: SP, Rb: SP, Disp: -16}, SP, true, []Reg{SP}},
		{Inst{Op: OpBsr, Ra: RA, Disp: 4}, RA, true, nil},
		{Inst{Op: OpBeq, Ra: T0, Disp: 2}, 0, false, []Reg{T0}},
		{Inst{Op: OpBr, Ra: Zero, Disp: 2}, 0, false, nil},
		{Inst{Op: OpJsr, Ra: RA, Rb: PV}, RA, true, []Reg{PV}},
		{Inst{Op: OpRet, Ra: Zero, Rb: RA}, 0, false, []Reg{RA}},
	}
	for _, c := range cases {
		w, ok := c.in.WritesReg()
		if ok != c.hasW || (ok && w != c.writes) {
			t.Errorf("%v WritesReg() = %v, %v; want %v, %v", c.in, w, ok, c.writes, c.hasW)
		}
		got := c.in.ReadsRegs(nil)
		if len(got) != len(c.reads) {
			t.Errorf("%v ReadsRegs() = %v, want %v", c.in, got, c.reads)
			continue
		}
		for i := range got {
			if got[i] != c.reads[i] {
				t.Errorf("%v ReadsRegs() = %v, want %v", c.in, got, c.reads)
				break
			}
		}
	}
}

func TestCondHolds(t *testing.T) {
	cases := []struct {
		op   Op
		val  int64
		want bool
	}{
		{OpBeq, 0, true}, {OpBeq, 1, false},
		{OpBne, 0, false}, {OpBne, -5, true},
		{OpBlt, -1, true}, {OpBlt, 0, false},
		{OpBle, 0, true}, {OpBle, 1, false},
		{OpBge, 0, true}, {OpBge, -1, false},
		{OpBgt, 1, true}, {OpBgt, 0, false},
		{OpBlbs, 3, true}, {OpBlbs, 2, false},
		{OpBlbc, 2, true}, {OpBlbc, 3, false},
	}
	for _, c := range cases {
		i := Inst{Op: c.op, Ra: T0}
		if got := i.CondHolds(c.val); got != c.want {
			t.Errorf("%s.CondHolds(%d) = %v, want %v", c.op, c.val, got, c.want)
		}
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpLda, Ra: SP, Rb: SP, Disp: -32}, "lda sp, -32(sp)"},
		{Inst{Op: OpAddq, Ra: T0, Rb: T1, Rc: T2}, "addq t0, t1, t2"},
		{Inst{Op: OpAddq, Ra: T0, Lit: 8, HasLit: true, Rc: T0}, "addq t0, 8, t0"},
		{Inst{Op: OpRet, Rb: RA}, "ret (ra)"},
		{Inst{Op: OpJsr, Ra: RA, Rb: PV}, "jsr ra, (pv)"},
		{Inst{Op: OpCallPal, PalFn: 1}, "call_pal 0x1"},
		{Inst{Op: OpBeq, Ra: T0, Disp: 3}, "beq t0, .+16"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}
