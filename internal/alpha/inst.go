package alpha

import "fmt"

// Inst is a decoded instruction. Fields are interpreted per the
// operation's format:
//
//   - FormatPal: PalFn.
//   - FormatMem: Ra, Rb, Disp (signed 16-bit byte displacement).
//   - FormatBranch: Ra, Disp (signed 21-bit displacement in words,
//     relative to the updated PC, i.e. the instruction address + 4).
//   - FormatOperate: Ra, Rc, and either Rb (HasLit false) or Lit
//     (HasLit true, 8-bit zero-extended literal).
//   - FormatJump: Ra (link register), Rb (target register).
type Inst struct {
	Op     Op
	Ra     Reg
	Rb     Reg
	Rc     Reg
	Disp   int32
	Lit    uint8
	HasLit bool
	PalFn  uint32
}

// Encode packs the instruction into a 32-bit word. It validates field
// ranges and returns an error for out-of-range displacements or function
// codes.
func (i Inst) Encode() (uint32, error) {
	if i.Op == OpInvalid || i.Op >= opCount {
		return 0, fmt.Errorf("alpha: encode: invalid op %d", i.Op)
	}
	info := opTable[i.Op]
	w := info.opcode << 26
	switch info.format {
	case FormatPal:
		if i.PalFn >= 1<<26 {
			return 0, fmt.Errorf("alpha: encode %s: PAL function %#x out of range", i.Op, i.PalFn)
		}
		return w | i.PalFn, nil
	case FormatMem:
		if i.Disp < -0x8000 || i.Disp > 0x7FFF {
			return 0, fmt.Errorf("alpha: encode %s: displacement %d exceeds 16 bits", i.Op, i.Disp)
		}
		return w | uint32(i.Ra)<<21 | uint32(i.Rb)<<16 | uint32(uint16(i.Disp)), nil
	case FormatBranch:
		if i.Disp < -(1<<20) || i.Disp >= 1<<20 {
			return 0, fmt.Errorf("alpha: encode %s: branch displacement %d exceeds 21 bits", i.Op, i.Disp)
		}
		return w | uint32(i.Ra)<<21 | (uint32(i.Disp) & 0x1FFFFF), nil
	case FormatOperate:
		w |= uint32(i.Ra)<<21 | info.fn<<5 | uint32(i.Rc)
		if i.HasLit {
			w |= uint32(i.Lit)<<13 | 1<<12
		} else {
			w |= uint32(i.Rb) << 16
		}
		return w, nil
	case FormatJump:
		return w | uint32(i.Ra)<<21 | uint32(i.Rb)<<16 | info.fn<<14, nil
	}
	return 0, fmt.Errorf("alpha: encode %s: unknown format", i.Op)
}

// MustEncode is Encode for instructions known to be valid; it panics on
// error and is intended for compile-time-constant instruction templates.
func (i Inst) MustEncode() uint32 {
	w, err := i.Encode()
	if err != nil {
		panic(err)
	}
	return w
}

// Decode unpacks a 32-bit instruction word. It returns an error for major
// opcodes or function codes outside the supported subset.
func Decode(w uint32) (Inst, error) {
	opcode := w >> 26
	switch opcode {
	case 0x00:
		return Inst{Op: OpCallPal, PalFn: w & 0x03FFFFFF}, nil
	case 0x08, 0x09, 0x0A, 0x0C, 0x0D, 0x0E, 0x28, 0x29, 0x2C, 0x2D:
		op := memOps[opcode]
		return Inst{
			Op:   op,
			Ra:   Reg(w >> 21 & 31),
			Rb:   Reg(w >> 16 & 31),
			Disp: int32(int16(w)),
		}, nil
	case 0x1A:
		fn := w >> 14 & 3
		var op Op
		switch fn {
		case 0:
			op = OpJmp
		case 1:
			op = OpJsr
		case 2:
			op = OpRet
		default:
			return Inst{}, fmt.Errorf("alpha: decode %#08x: jump function %d unsupported", w, fn)
		}
		return Inst{Op: op, Ra: Reg(w >> 21 & 31), Rb: Reg(w >> 16 & 31)}, nil
	case 0x30, 0x34, 0x38, 0x39, 0x3A, 0x3B, 0x3C, 0x3D, 0x3E, 0x3F:
		op := branchOps[opcode]
		disp := int32(w<<11) >> 11 // sign-extend 21 bits
		return Inst{Op: op, Ra: Reg(w >> 21 & 31), Disp: disp}, nil
	case 0x10, 0x11, 0x12, 0x13:
		fn := w >> 5 & 0x7F
		op, ok := operateOps[opcode<<8|fn]
		if !ok {
			return Inst{}, fmt.Errorf("alpha: decode %#08x: operate %#02x.%#02x unsupported", w, opcode, fn)
		}
		i := Inst{Op: op, Ra: Reg(w >> 21 & 31), Rc: Reg(w & 31)}
		if w>>12&1 == 1 {
			i.HasLit = true
			i.Lit = uint8(w >> 13)
		} else {
			i.Rb = Reg(w >> 16 & 31)
		}
		return i, nil
	}
	return Inst{}, fmt.Errorf("alpha: decode %#08x: major opcode %#02x unsupported", w, opcode)
}

var (
	memOps     = map[uint32]Op{}
	branchOps  = map[uint32]Op{}
	operateOps = map[uint32]Op{}
)

func init() {
	for op := Op(1); op < opCount; op++ {
		info := opTable[op]
		switch info.format {
		case FormatMem:
			memOps[info.opcode] = op
		case FormatBranch:
			branchOps[info.opcode] = op
		case FormatOperate:
			operateOps[info.opcode<<8|info.fn] = op
		}
	}
}

// String renders the instruction in assembler syntax with numeric
// displacements (no symbol resolution).
func (i Inst) String() string {
	switch i.Op.Format() {
	case FormatPal:
		return fmt.Sprintf("call_pal %#x", i.PalFn)
	case FormatMem:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Ra, i.Disp, i.Rb)
	case FormatBranch:
		return fmt.Sprintf("%s %s, .%+d", i.Op, i.Ra, (i.Disp+1)*Word)
	case FormatOperate:
		if i.HasLit {
			return fmt.Sprintf("%s %s, %d, %s", i.Op, i.Ra, i.Lit, i.Rc)
		}
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Ra, i.Rb, i.Rc)
	case FormatJump:
		if i.Op == OpRet {
			return fmt.Sprintf("ret (%s)", i.Rb)
		}
		return fmt.Sprintf("%s %s, (%s)", i.Op, i.Ra, i.Rb)
	}
	return "<invalid>"
}

// WritesReg returns the register written by the instruction, if any.
// Writes to the zero register are reported as no write.
func (i Inst) WritesReg() (Reg, bool) {
	var r Reg
	switch i.Op.Format() {
	case FormatMem:
		if i.Op.IsStore() {
			return 0, false
		}
		r = i.Ra // loads and lda/ldah write ra
	case FormatBranch:
		if i.Op != OpBsr {
			return 0, false
		}
		r = i.Ra
	case FormatOperate:
		r = i.Rc
	case FormatJump:
		r = i.Ra
	default:
		return 0, false
	}
	if r == Zero {
		return 0, false
	}
	return r, true
}

// ReadsRegs appends the registers read by the instruction to dst and
// returns the extended slice. The zero register is omitted.
func (i Inst) ReadsRegs(dst []Reg) []Reg {
	add := func(r Reg) {
		if r != Zero {
			dst = append(dst, r)
		}
	}
	switch i.Op.Format() {
	case FormatMem:
		add(i.Rb)
		if i.Op.IsStore() {
			add(i.Ra)
		}
	case FormatBranch:
		if i.Op.IsCondBranch() {
			add(i.Ra)
		}
	case FormatOperate:
		add(i.Ra)
		if !i.HasLit {
			add(i.Rb)
		}
	case FormatJump:
		add(i.Rb)
	}
	return dst
}

// CondHolds evaluates a conditional branch's condition against the value
// of its tested register. It panics if the operation is not a conditional
// branch.
func (i Inst) CondHolds(ra int64) bool {
	switch i.Op {
	case OpBlbc:
		return ra&1 == 0
	case OpBeq:
		return ra == 0
	case OpBlt:
		return ra < 0
	case OpBle:
		return ra <= 0
	case OpBlbs:
		return ra&1 == 1
	case OpBne:
		return ra != 0
	case OpBge:
		return ra >= 0
	case OpBgt:
		return ra > 0
	}
	panic(fmt.Sprintf("alpha: CondHolds on %s", i.Op))
}
