package alpha

import "fmt"

// Format identifies one of the Alpha instruction encodings.
type Format uint8

const (
	FormatPal     Format = iota // CALL_PAL: opcode + 26-bit function
	FormatMem                   // memory: ra, disp16(rb)
	FormatBranch                // branch: ra, disp21 (signed, in words)
	FormatOperate               // operate: ra, rb|#lit, rc
	FormatJump                  // jump: ra, (rb), 2-bit function + hint
)

// Op identifies an instruction mnemonic in the supported subset.
type Op uint8

// Supported operations.
const (
	OpInvalid Op = iota

	// PAL
	OpCallPal

	// Memory format.
	OpLda  // ra = rb + sext(disp)
	OpLdah // ra = rb + sext(disp)<<16
	OpLdbu // byte load, zero-extend
	OpLdwu // word (16-bit) load, zero-extend
	OpStb
	OpStw
	OpLdl // longword (32-bit) load, sign-extend
	OpLdq // quadword (64-bit) load
	OpStl
	OpStq

	// Jump format.
	OpJmp
	OpJsr
	OpRet

	// Branch format.
	OpBr
	OpBsr
	OpBlbc // branch if low bit clear
	OpBeq
	OpBlt
	OpBle
	OpBlbs // branch if low bit set
	OpBne
	OpBge
	OpBgt

	// Operate format: arithmetic (major opcode 0x10).
	OpAddl
	OpSubl
	OpAddq
	OpSubq
	OpS4addq
	OpS8addq
	OpCmpeq
	OpCmplt
	OpCmple
	OpCmpult
	OpCmpule

	// Operate format: logical (major opcode 0x11).
	OpAnd
	OpBic
	OpBis
	OpOrnot
	OpXor
	OpEqv
	OpCmoveq
	OpCmovne

	// Operate format: shift (major opcode 0x12).
	OpSll
	OpSrl
	OpSra

	// Operate format: multiply (major opcode 0x13).
	OpMull
	OpMulq
	OpUmulh

	opCount
)

type opInfo struct {
	name   string
	format Format
	opcode uint32 // major opcode, bits 31..26
	fn     uint32 // function code (operate: bits 11..5; jump: bits 15..14)
}

var opTable = [opCount]opInfo{
	OpCallPal: {"call_pal", FormatPal, 0x00, 0},

	OpLda:  {"lda", FormatMem, 0x08, 0},
	OpLdah: {"ldah", FormatMem, 0x09, 0},
	OpLdbu: {"ldbu", FormatMem, 0x0A, 0},
	OpLdwu: {"ldwu", FormatMem, 0x0C, 0},
	OpStw:  {"stw", FormatMem, 0x0D, 0},
	OpStb:  {"stb", FormatMem, 0x0E, 0},
	OpLdl:  {"ldl", FormatMem, 0x28, 0},
	OpLdq:  {"ldq", FormatMem, 0x29, 0},
	OpStl:  {"stl", FormatMem, 0x2C, 0},
	OpStq:  {"stq", FormatMem, 0x2D, 0},

	OpJmp: {"jmp", FormatJump, 0x1A, 0},
	OpJsr: {"jsr", FormatJump, 0x1A, 1},
	OpRet: {"ret", FormatJump, 0x1A, 2},

	OpBr:   {"br", FormatBranch, 0x30, 0},
	OpBsr:  {"bsr", FormatBranch, 0x34, 0},
	OpBlbc: {"blbc", FormatBranch, 0x38, 0},
	OpBeq:  {"beq", FormatBranch, 0x39, 0},
	OpBlt:  {"blt", FormatBranch, 0x3A, 0},
	OpBle:  {"ble", FormatBranch, 0x3B, 0},
	OpBlbs: {"blbs", FormatBranch, 0x3C, 0},
	OpBne:  {"bne", FormatBranch, 0x3D, 0},
	OpBge:  {"bge", FormatBranch, 0x3E, 0},
	OpBgt:  {"bgt", FormatBranch, 0x3F, 0},

	OpAddl:   {"addl", FormatOperate, 0x10, 0x00},
	OpSubl:   {"subl", FormatOperate, 0x10, 0x09},
	OpAddq:   {"addq", FormatOperate, 0x10, 0x20},
	OpS4addq: {"s4addq", FormatOperate, 0x10, 0x22},
	OpSubq:   {"subq", FormatOperate, 0x10, 0x29},
	OpS8addq: {"s8addq", FormatOperate, 0x10, 0x32},
	OpCmpult: {"cmpult", FormatOperate, 0x10, 0x1D},
	OpCmpeq:  {"cmpeq", FormatOperate, 0x10, 0x2D},
	OpCmpule: {"cmpule", FormatOperate, 0x10, 0x3D},
	OpCmplt:  {"cmplt", FormatOperate, 0x10, 0x4D},
	OpCmple:  {"cmple", FormatOperate, 0x10, 0x6D},

	OpAnd:    {"and", FormatOperate, 0x11, 0x00},
	OpBic:    {"bic", FormatOperate, 0x11, 0x08},
	OpBis:    {"bis", FormatOperate, 0x11, 0x20},
	OpCmoveq: {"cmoveq", FormatOperate, 0x11, 0x24},
	OpCmovne: {"cmovne", FormatOperate, 0x11, 0x26},
	OpOrnot:  {"ornot", FormatOperate, 0x11, 0x28},
	OpXor:    {"xor", FormatOperate, 0x11, 0x40},
	OpEqv:    {"eqv", FormatOperate, 0x11, 0x48},

	OpSrl: {"srl", FormatOperate, 0x12, 0x34},
	OpSll: {"sll", FormatOperate, 0x12, 0x39},
	OpSra: {"sra", FormatOperate, 0x12, 0x3C},

	OpMull:  {"mull", FormatOperate, 0x13, 0x00},
	OpMulq:  {"mulq", FormatOperate, 0x13, 0x20},
	OpUmulh: {"umulh", FormatOperate, 0x13, 0x30},
}

// String returns the mnemonic.
func (op Op) String() string {
	if op < opCount && opTable[op].name != "" {
		return opTable[op].name
	}
	return fmt.Sprintf("op%d?", uint8(op))
}

// Format returns the encoding format of the operation.
func (op Op) Format() Format {
	if op < opCount {
		return opTable[op].format
	}
	return FormatPal
}

// OpByName maps a mnemonic to its Op. It returns false for unknown
// mnemonics (including pseudo-instructions, which the assembler expands).
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Op {
	m := make(map[string]Op, opCount)
	for op := Op(1); op < opCount; op++ {
		if n := opTable[op].name; n != "" {
			m[n] = op
		}
	}
	return m
}()

// IsCondBranch reports whether op is a conditional branch.
func (op Op) IsCondBranch() bool {
	switch op {
	case OpBlbc, OpBeq, OpBlt, OpBle, OpBlbs, OpBne, OpBge, OpBgt:
		return true
	}
	return false
}

// IsUncondBranch reports whether op is an unconditional PC-relative branch
// (br or bsr).
func (op Op) IsUncondBranch() bool { return op == OpBr || op == OpBsr }

// IsCall reports whether op transfers control to a procedure and writes a
// return address (bsr or jsr).
func (op Op) IsCall() bool { return op == OpBsr || op == OpJsr }

// IsLoad reports whether op reads memory into a register.
func (op Op) IsLoad() bool {
	switch op {
	case OpLdbu, OpLdwu, OpLdl, OpLdq:
		return true
	}
	return false
}

// IsStore reports whether op writes a register to memory.
func (op Op) IsStore() bool {
	switch op {
	case OpStb, OpStw, OpStl, OpStq:
		return true
	}
	return false
}

// MemBytes returns the access width in bytes for load/store operations and
// zero for everything else.
func (op Op) MemBytes() int {
	switch op {
	case OpLdbu, OpStb:
		return 1
	case OpLdwu, OpStw:
		return 2
	case OpLdl, OpStl:
		return 4
	case OpLdq, OpStq:
		return 8
	}
	return 0
}
