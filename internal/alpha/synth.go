package alpha

// Constructors for the instruction shapes emitted by the assembler and by
// ATOM's call-insertion machinery.

// Mem builds a memory-format instruction: op ra, disp(rb).
func Mem(op Op, ra, rb Reg, disp int32) Inst {
	return Inst{Op: op, Ra: ra, Rb: rb, Disp: disp}
}

// RR builds a register-register operate instruction: op ra, rb, rc.
func RR(op Op, ra, rb, rc Reg) Inst {
	return Inst{Op: op, Ra: ra, Rb: rb, Rc: rc}
}

// RI builds a register-literal operate instruction: op ra, #lit, rc.
func RI(op Op, ra Reg, lit uint8, rc Reg) Inst {
	return Inst{Op: op, Ra: ra, Lit: lit, HasLit: true, Rc: rc}
}

// Br builds a branch-format instruction with a word displacement.
func Br(op Op, ra Reg, disp int32) Inst {
	return Inst{Op: op, Ra: ra, Disp: disp}
}

// Mov builds a register move (bis zero, rb, rc).
func Mov(src, dst Reg) Inst {
	return Inst{Op: OpBis, Ra: Zero, Rb: src, Rc: dst}
}

// HiLo splits a 32-bit-representable value into the (ldah, lda)
// displacement pair such that hi<<16 + sext16(lo) == v.
func HiLo(v int64) (hi, lo int16) {
	lo = int16(v)
	hi = int16((v - int64(lo)) >> 16)
	return hi, lo
}

// FitsHiLo reports whether v can be materialized by a single ldah/lda
// pair, i.e. hi<<16 + sext16(lo) reconstructs v exactly.
func FitsHiLo(v int64) bool {
	hi, lo := HiLo(v)
	return int64(hi)<<16+int64(lo) == v
}

// MaterializeImm returns the shortest supported instruction sequence that
// loads the 64-bit constant v into register r:
//
//	1 instruction for values fitting a signed 16-bit immediate,
//	2 for values fitting the ldah/lda pair (roughly signed 32-bit),
//	up to 5 for arbitrary 64-bit values (build high half, shift, add low).
//
// This mirrors the cost model in the paper (Section 4: "a 16-bit integer
// constant can be built in 1 instruction, a 32-bit constant in two
// instructions, a 64-bit program counter in 3 instructions and so on").
func MaterializeImm(r Reg, v int64) []Inst {
	if v >= -0x8000 && v <= 0x7FFF {
		return []Inst{Mem(OpLda, r, Zero, int32(v))}
	}
	if FitsHiLo(v) {
		hi, lo := HiLo(v)
		seq := []Inst{Mem(OpLdah, r, Zero, int32(hi))}
		if lo != 0 {
			seq = append(seq, Mem(OpLda, r, r, int32(lo)))
		}
		return seq
	}
	// General 64-bit: pick the ldah/lda pair congruent to v modulo 2^32,
	// materialize the remaining base (which the pair's sign carries make
	// an exact multiple of 2^32), shift it up, and add the pair. All
	// arithmetic relies on Go's (and the machine's) wrapping int64
	// semantics, so this is exact across the full 64-bit range.
	lo := int16(v)
	hi := int16((v - int64(lo)) >> 16)
	covered := int64(hi)<<16 + int64(lo)
	base := (v - covered) >> 32
	seq := MaterializeImm(r, base)
	seq = append(seq, RI(OpSll, r, 32, r))
	if hi != 0 {
		seq = append(seq, Mem(OpLdah, r, r, int32(hi)))
	}
	if lo != 0 {
		seq = append(seq, Mem(OpLda, r, r, int32(lo)))
	}
	return seq
}
