package alpha

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// evalImmSeq interprets a MaterializeImm sequence and returns the final
// value of register r, mirroring the VM's semantics for the instructions
// the synthesizer may emit.
func evalImmSeq(t *testing.T, seq []Inst, r Reg) int64 {
	t.Helper()
	var regs [NumRegs]int64
	for _, i := range seq {
		var v int64
		switch i.Op {
		case OpLda:
			v = regs[i.Rb] + int64(i.Disp)
		case OpLdah:
			v = regs[i.Rb] + int64(i.Disp)<<16
		case OpSll:
			v = regs[i.Ra] << (uint64(i.Lit) & 63)
		default:
			t.Fatalf("unexpected op %s in immediate sequence", i.Op)
		}
		if i.Op.Format() == FormatMem {
			if i.Rb == r && regs[i.Rb] == 0 && i.Rb != Zero {
				// base is the destination register mid-sequence; fine
			}
			regs[i.Ra] = v
		} else {
			regs[i.Rc] = v
		}
	}
	return regs[r]
}

func TestMaterializeImmExact(t *testing.T) {
	cases := []struct {
		v    int64
		lens int
	}{
		{0, 1}, {1, 1}, {-1, 1}, {0x7FFF, 1}, {-0x8000, 1},
		{0x8000, 2}, {0x12345678, 2}, {-0x12345678, 2},
		{0x7FFFFFFF, 0}, {int64(-0x80000000), 1},
		{0x123456789A, 0}, {-0x123456789A, 0},
		{0x7FFFFFFFFFFFFFFF, 0}, {-0x8000000000000000, 0},
		{0x100000000, 0},
	}
	for _, c := range cases {
		seq := MaterializeImm(T0, c.v)
		if c.lens > 0 && len(seq) != c.lens {
			t.Errorf("MaterializeImm(%#x): %d instructions, want %d", c.v, len(seq), c.lens)
		}
		if got := evalImmSeq(t, seq, T0); got != c.v {
			t.Errorf("MaterializeImm(%#x) evaluates to %#x", c.v, got)
		}
		for _, i := range seq {
			if _, err := i.Encode(); err != nil {
				t.Errorf("MaterializeImm(%#x) emitted unencodable %v: %v", c.v, i, err)
			}
		}
	}
}

func TestMaterializeImmQuick(t *testing.T) {
	f := func(v int64) bool {
		return evalImmSeq(t, MaterializeImm(T1, v), T1) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
	// Bias toward small and 32-bit-ish values too.
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		v := r.Int63n(1<<33) - 1<<32
		if evalImmSeq(t, MaterializeImm(T1, v), T1) != v {
			t.Fatalf("MaterializeImm(%#x) wrong", v)
		}
	}
}

func TestHiLo(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 0x8000, 0xFFFF, 0x10000, -0x8000, 0x7FFF7FFF, -0x80000000} {
		hi, lo := HiLo(v)
		if got := int64(hi)<<16 + int64(lo); got != v {
			t.Errorf("HiLo(%#x): hi=%d lo=%d reconstructs %#x", v, hi, lo, got)
		}
		if !FitsHiLo(v) {
			t.Errorf("FitsHiLo(%#x) = false", v)
		}
	}
	if FitsHiLo(0x100000000) {
		t.Error("FitsHiLo(2^32) = true")
	}
}

func TestMov(t *testing.T) {
	m := Mov(A0, T3)
	if m.Op != OpBis || m.Ra != Zero || m.Rb != A0 || m.Rc != T3 {
		t.Errorf("Mov = %+v", m)
	}
}
