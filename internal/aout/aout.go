// Package aout defines the object-module and executable file format used
// throughout the ATOM reproduction.
//
// A single File type represents both relocatable object modules (produced
// by the assembler) and fully linked executables (produced by the linker).
// Crucially — and this is what makes OM-style link-time instrumentation
// possible — executables retain their symbol table and relocation records.
// OM re-derives procedure boundaries from function symbols and re-fixes
// address constants from the retained relocations after it moves code.
//
// A File has exactly three sections: text, data, and bss, mirroring the
// layout conventions of the OSF/1 executables that ATOM manipulates
// (Figure 4 of the paper).
package aout

import (
	"fmt"
	"sort"
)

// Section identifies one of the three sections, or the pseudo-sections
// used by symbols.
type Section uint8

const (
	SecUndef Section = iota // undefined (external) symbol
	SecText
	SecData
	SecBss
	SecAbs // absolute value, not section-relative
)

// String returns the conventional section name.
func (s Section) String() string {
	switch s {
	case SecUndef:
		return "*UND*"
	case SecText:
		return ".text"
	case SecData:
		return ".data"
	case SecBss:
		return ".bss"
	case SecAbs:
		return "*ABS*"
	}
	return fmt.Sprintf("sec%d?", uint8(s))
}

// SymKind classifies a symbol.
type SymKind uint8

const (
	SymNone SymKind = iota // data label or untyped symbol
	SymFunc                // procedure entry point (from .ent)
)

// Symbol is one symbol-table entry. In a relocatable module Value is an
// offset within Section; in a linked executable it is an absolute address.
type Symbol struct {
	Name    string
	Kind    SymKind
	Section Section
	Value   uint64
	Size    uint64 // procedure or object size in bytes; 0 if unknown
	Global  bool   // visible to other modules when linking
}

// RelocType identifies how a relocation patches the instruction or datum
// at its offset.
type RelocType uint8

const (
	// RelBr21 patches the 21-bit word displacement of a br/bsr/conditional
	// branch so it reaches symbol+addend.
	RelBr21 RelocType = iota
	// RelHi16 patches the 16-bit displacement of an ldah with the high
	// half of symbol+addend, adjusted for the sign of the paired low half
	// ((S+A+0x8000)>>16).
	RelHi16
	// RelLo16 patches the 16-bit displacement of an lda/load/store with
	// the low 16 bits of symbol+addend (sign-extended by the hardware).
	RelLo16
	// RelQuad patches a 64-bit datum with symbol+addend.
	RelQuad
	// RelLong patches a 32-bit datum with symbol+addend (range-checked).
	RelLong
)

// String returns the relocation-type name.
func (t RelocType) String() string {
	switch t {
	case RelBr21:
		return "BR21"
	case RelHi16:
		return "HI16"
	case RelLo16:
		return "LO16"
	case RelQuad:
		return "QUAD"
	case RelLong:
		return "LONG"
	}
	return fmt.Sprintf("rel%d?", uint8(t))
}

// Reloc is one relocation record. Section must be SecText or SecData;
// Offset is the byte offset of the patched word within that section.
// Sym indexes the File's symbol table.
type Reloc struct {
	Section Section
	Offset  uint64
	Type    RelocType
	Sym     int
	Addend  int64
}

// File is an object module or executable.
type File struct {
	// Linked is true for executables: symbol values are absolute,
	// section addresses are set, and Entry is meaningful.
	Linked bool
	Entry  uint64

	Text []byte
	Data []byte
	Bss  uint64 // size in bytes; bss has no file contents

	TextAddr uint64 // absolute addresses; meaningful when Linked
	DataAddr uint64
	BssAddr  uint64

	Symbols []Symbol
	Relocs  []Reloc
}

// SymIndex returns the index of the named symbol, or -1.
// Global symbols take precedence over locals of the same name.
func (f *File) SymIndex(name string) int {
	best := -1
	for i, s := range f.Symbols {
		if s.Name != name {
			continue
		}
		if s.Global {
			return i
		}
		if best < 0 {
			best = i
		}
	}
	return best
}

// Lookup returns the named symbol. It reports false if absent.
func (f *File) Lookup(name string) (Symbol, bool) {
	i := f.SymIndex(name)
	if i < 0 {
		return Symbol{}, false
	}
	return f.Symbols[i], true
}

// SectionAddr returns the load address of a section in a linked file.
func (f *File) SectionAddr(s Section) uint64 {
	switch s {
	case SecText:
		return f.TextAddr
	case SecData:
		return f.DataAddr
	case SecBss:
		return f.BssAddr
	}
	return 0
}

// SymAddr returns the absolute address of symbol i in a linked file.
// For relocatable files it returns the section-relative value.
func (f *File) SymAddr(i int) uint64 {
	s := f.Symbols[i]
	if !f.Linked || s.Section == SecAbs || s.Section == SecUndef {
		return s.Value
	}
	return s.Value
}

// Funcs returns the function symbols sorted by address. Sizes are filled
// in from the gap to the next function (or the end of text) when a symbol
// has no recorded size.
func (f *File) Funcs() []Symbol {
	var fns []Symbol
	for _, s := range f.Symbols {
		if s.Kind == SymFunc && s.Section == SecText {
			fns = append(fns, s)
		}
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Value < fns[j].Value })
	end := f.TextAddr + uint64(len(f.Text))
	if !f.Linked {
		end = uint64(len(f.Text))
	}
	for i := range fns {
		if fns[i].Size != 0 {
			continue
		}
		if i+1 < len(fns) {
			fns[i].Size = fns[i+1].Value - fns[i].Value
		} else {
			fns[i].Size = end - fns[i].Value
		}
	}
	return fns
}

// Validate checks internal consistency: relocation targets in range,
// symbol references valid, section values sane. It is used by tests and
// by the linker before consuming a module.
func (f *File) Validate() error {
	if len(f.Text)%4 != 0 {
		return fmt.Errorf("aout: text size %d not a multiple of 4", len(f.Text))
	}
	for i, s := range f.Symbols {
		switch s.Section {
		case SecText:
			if !f.Linked && s.Value > uint64(len(f.Text)) {
				return fmt.Errorf("aout: symbol %q value %#x beyond text", s.Name, s.Value)
			}
		case SecData:
			if !f.Linked && s.Value > uint64(len(f.Data)) {
				return fmt.Errorf("aout: symbol %q value %#x beyond data", s.Name, s.Value)
			}
		case SecBss:
			if !f.Linked && s.Value > f.Bss {
				return fmt.Errorf("aout: symbol %q value %#x beyond bss", s.Name, s.Value)
			}
		case SecUndef, SecAbs:
		default:
			return fmt.Errorf("aout: symbol %d (%q) has bad section %d", i, s.Name, s.Section)
		}
	}
	for i, r := range f.Relocs {
		if r.Sym < 0 || r.Sym >= len(f.Symbols) {
			return fmt.Errorf("aout: reloc %d references symbol %d of %d", i, r.Sym, len(f.Symbols))
		}
		var max uint64
		switch r.Section {
		case SecText:
			max = uint64(len(f.Text))
		case SecData:
			max = uint64(len(f.Data))
		default:
			return fmt.Errorf("aout: reloc %d in non-loaded section %v", i, r.Section)
		}
		var width uint64 = 4
		if r.Type == RelQuad {
			width = 8
		}
		if r.Offset+width > max {
			return fmt.Errorf("aout: reloc %d at %#x+%d beyond section %v (%d bytes)", i, r.Offset, width, r.Section, max)
		}
	}
	return nil
}
