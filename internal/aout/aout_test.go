package aout

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sampleFile() *File {
	return &File{
		Text: make([]byte, 16),
		Data: []byte{1, 2, 3, 4, 5, 6, 7, 8},
		Bss:  32,
		Symbols: []Symbol{
			{Name: "main", Kind: SymFunc, Section: SecText, Value: 0, Size: 8, Global: true},
			{Name: "helper", Kind: SymFunc, Section: SecText, Value: 8, Global: false},
			{Name: "counter", Section: SecData, Value: 0, Size: 8, Global: true},
			{Name: "buf", Section: SecBss, Value: 0, Size: 32},
			{Name: "printf", Section: SecUndef, Global: true},
		},
		Relocs: []Reloc{
			{Section: SecText, Offset: 0, Type: RelBr21, Sym: 4},
			{Section: SecText, Offset: 4, Type: RelHi16, Sym: 2},
			{Section: SecText, Offset: 8, Type: RelLo16, Sym: 2},
			{Section: SecData, Offset: 0, Type: RelQuad, Sym: 0, Addend: 4},
		},
	}
}

func filesEqual(a, b *File) bool {
	if a.Linked != b.Linked || a.Entry != b.Entry || a.Bss != b.Bss ||
		a.TextAddr != b.TextAddr || a.DataAddr != b.DataAddr || a.BssAddr != b.BssAddr ||
		string(a.Text) != string(b.Text) || string(a.Data) != string(b.Data) ||
		len(a.Symbols) != len(b.Symbols) || len(a.Relocs) != len(b.Relocs) {
		return false
	}
	for i := range a.Symbols {
		if a.Symbols[i] != b.Symbols[i] {
			return false
		}
	}
	for i := range a.Relocs {
		if a.Relocs[i] != b.Relocs[i] {
			return false
		}
	}
	return true
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	f := sampleFile()
	got, err := Decode(f.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !filesEqual(f, got) {
		t.Errorf("roundtrip mismatch:\n got %+v\nwant %+v", got, f)
	}
}

func TestEncodeDecodeLinked(t *testing.T) {
	f := sampleFile()
	f.Linked = true
	f.Entry = 0x100000
	f.TextAddr = 0x100000
	f.DataAddr = 0x400000
	f.BssAddr = 0x400008
	got, err := Decode(f.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !filesEqual(f, got) {
		t.Error("linked roundtrip mismatch")
	}
}

func TestDecodeTruncated(t *testing.T) {
	enc := sampleFile().Encode()
	for _, n := range []int{0, 4, 8, 9, 20, len(enc) / 2, len(enc) - 1} {
		if _, err := Decode(enc[:n]); err == nil {
			t.Errorf("Decode of %d-byte prefix succeeded; want error", n)
		}
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	enc := append(sampleFile().Encode(), 0xFF)
	if _, err := Decode(enc); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("Decode with trailing byte: err=%v, want trailing-bytes error", err)
	}
}

func TestDecodeBadMagic(t *testing.T) {
	enc := sampleFile().Encode()
	enc[0] = 'X'
	if _, err := Decode(enc); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("Decode with bad magic: err=%v", err)
	}
}

func TestValidateCatchesBadRelocs(t *testing.T) {
	f := sampleFile()
	f.Relocs[0].Sym = 99
	if err := f.Validate(); err == nil {
		t.Error("Validate accepted out-of-range symbol index")
	}
	f = sampleFile()
	f.Relocs[0].Offset = uint64(len(f.Text))
	if err := f.Validate(); err == nil {
		t.Error("Validate accepted reloc beyond section end")
	}
	f = sampleFile()
	f.Relocs[0].Section = SecBss
	if err := f.Validate(); err == nil {
		t.Error("Validate accepted reloc in bss")
	}
	f = sampleFile()
	f.Text = append(f.Text, 0)
	if err := f.Validate(); err == nil {
		t.Error("Validate accepted misaligned text size")
	}
}

func TestSymbolLookup(t *testing.T) {
	f := sampleFile()
	s, ok := f.Lookup("counter")
	if !ok || s.Section != SecData {
		t.Errorf("Lookup(counter) = %+v, %v", s, ok)
	}
	if _, ok := f.Lookup("absent"); ok {
		t.Error("Lookup(absent) succeeded")
	}
	// Global beats local on name collision.
	f.Symbols = append(f.Symbols, Symbol{Name: "dup", Section: SecText, Value: 4})
	f.Symbols = append(f.Symbols, Symbol{Name: "dup", Section: SecData, Value: 0, Global: true})
	s, _ = f.Lookup("dup")
	if !s.Global {
		t.Error("Lookup preferred local symbol over global")
	}
}

func TestFuncsSizesAndOrder(t *testing.T) {
	f := sampleFile()
	fns := f.Funcs()
	if len(fns) != 2 {
		t.Fatalf("Funcs() returned %d, want 2", len(fns))
	}
	if fns[0].Name != "main" || fns[1].Name != "helper" {
		t.Errorf("Funcs order = %s, %s", fns[0].Name, fns[1].Name)
	}
	if fns[1].Size != 8 { // inferred: text end (16) - start (8)
		t.Errorf("helper inferred size = %d, want 8", fns[1].Size)
	}
}

func TestReadWriteFile(t *testing.T) {
	path := t.TempDir() + "/x.o"
	f := sampleFile()
	if err := f.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !filesEqual(f, got) {
		t.Error("file roundtrip mismatch")
	}
	if _, err := ReadFile(path + ".missing"); err == nil {
		t.Error("ReadFile of missing path succeeded")
	}
}

// TestRoundtripQuick fuzzes structurally valid files through the codec.
func TestRoundtripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		file := &File{
			Text: make([]byte, 4*r.Intn(16)),
			Data: make([]byte, r.Intn(64)),
			Bss:  uint64(r.Intn(128)),
		}
		r.Read(file.Text)
		r.Read(file.Data)
		nsym := r.Intn(8)
		for i := 0; i < nsym; i++ {
			file.Symbols = append(file.Symbols, Symbol{
				Name:    string(rune('a' + i)),
				Kind:    SymKind(r.Intn(2)),
				Section: SecAbs,
				Value:   r.Uint64(),
				Size:    r.Uint64(),
				Global:  r.Intn(2) == 0,
			})
		}
		got, err := Decode(file.Encode())
		if err != nil {
			t.Logf("Decode: %v", err)
			return false
		}
		return filesEqual(file, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDecodeRandomGarbage ensures the decoder never panics on noise.
func TestDecodeRandomGarbage(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	enc := sampleFile().Encode()
	for i := 0; i < 500; i++ {
		b := make([]byte, len(enc))
		copy(b, enc)
		for j := 0; j < 4; j++ {
			b[r.Intn(len(b))] ^= byte(1 << r.Intn(8))
		}
		Decode(b) // must not panic; error or success both fine
	}
	for i := 0; i < 200; i++ {
		b := make([]byte, r.Intn(64))
		r.Read(b)
		Decode(b)
	}
}
