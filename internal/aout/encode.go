package aout

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// magic identifies the file format and version.
var magic = [8]byte{'A', 'O', 'U', 'T', '0', '0', '1', '\n'}

// Encode serializes the file to its on-disk representation.
func (f *File) Encode() []byte {
	var buf bytes.Buffer
	buf.Write(magic[:])
	w := func(v any) { binary.Write(&buf, binary.LittleEndian, v) } //nolint:errcheck
	ws := func(s string) {
		w(uint32(len(s)))
		buf.WriteString(s)
	}
	var flags uint8
	if f.Linked {
		flags = 1
	}
	w(flags)
	w(f.Entry)
	w(f.TextAddr)
	w(f.DataAddr)
	w(f.BssAddr)
	w(f.Bss)
	w(uint64(len(f.Text)))
	buf.Write(f.Text)
	w(uint64(len(f.Data)))
	buf.Write(f.Data)
	w(uint32(len(f.Symbols)))
	for _, s := range f.Symbols {
		ws(s.Name)
		w(uint8(s.Kind))
		w(uint8(s.Section))
		w(s.Value)
		w(s.Size)
		var g uint8
		if s.Global {
			g = 1
		}
		w(g)
	}
	w(uint32(len(f.Relocs)))
	for _, r := range f.Relocs {
		w(uint8(r.Section))
		w(r.Offset)
		w(uint8(r.Type))
		w(uint32(r.Sym))
		w(r.Addend)
	}
	return buf.Bytes()
}

// Decode parses an encoded file. It validates structural invariants and
// returns a descriptive error for truncated or corrupt input.
func Decode(data []byte) (*File, error) {
	r := &reader{data: data}
	var m [8]byte
	r.bytes(m[:])
	if m != magic {
		return nil, fmt.Errorf("aout: bad magic %q", m[:])
	}
	f := &File{}
	f.Linked = r.u8() != 0
	f.Entry = r.u64()
	f.TextAddr = r.u64()
	f.DataAddr = r.u64()
	f.BssAddr = r.u64()
	f.Bss = r.u64()
	f.Text = r.blob()
	f.Data = r.blob()
	nsym := r.u32()
	if r.err == nil && uint64(nsym)*8 > uint64(len(data)) {
		return nil, fmt.Errorf("aout: implausible symbol count %d", nsym)
	}
	f.Symbols = make([]Symbol, 0, nsym)
	for i := uint32(0); i < nsym && r.err == nil; i++ {
		var s Symbol
		s.Name = r.str()
		s.Kind = SymKind(r.u8())
		s.Section = Section(r.u8())
		s.Value = r.u64()
		s.Size = r.u64()
		s.Global = r.u8() != 0
		f.Symbols = append(f.Symbols, s)
	}
	nrel := r.u32()
	if r.err == nil && uint64(nrel)*8 > uint64(len(data)) {
		return nil, fmt.Errorf("aout: implausible reloc count %d", nrel)
	}
	f.Relocs = make([]Reloc, 0, nrel)
	for i := uint32(0); i < nrel && r.err == nil; i++ {
		var rel Reloc
		rel.Section = Section(r.u8())
		rel.Offset = r.u64()
		rel.Type = RelocType(r.u8())
		rel.Sym = int(r.u32())
		rel.Addend = r.i64()
		f.Relocs = append(f.Relocs, rel)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(data) {
		return nil, fmt.Errorf("aout: %d trailing bytes", len(data)-r.pos)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// WriteFile encodes f and writes it to path.
func (f *File) WriteFile(path string) error {
	if err := os.WriteFile(path, f.Encode(), 0o644); err != nil {
		return fmt.Errorf("aout: %w", err)
	}
	return nil
}

// ReadFile reads and decodes the file at path.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("aout: %w", err)
	}
	f, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("aout: %s: %w", path, err)
	}
	return f, nil
}

// reader is a cursor over the encoded bytes that records the first error.
type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) need(n int) bool {
	if r.err != nil {
		return false
	}
	if r.pos+n > len(r.data) {
		r.err = fmt.Errorf("aout: truncated at offset %d (need %d bytes): %w", r.pos, n, io.ErrUnexpectedEOF)
		return false
	}
	return true
}

func (r *reader) bytes(dst []byte) {
	if r.need(len(dst)) {
		copy(dst, r.data[r.pos:])
		r.pos += len(dst)
	}
}

func (r *reader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.data[r.pos]
	r.pos++
	return v
}

func (r *reader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v
}

func (r *reader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return v
}

func (r *reader) i64() int64 { return int64(r.u64()) }

func (r *reader) str() string {
	n := int(r.u32())
	if !r.need(n) {
		return ""
	}
	s := string(r.data[r.pos : r.pos+n])
	r.pos += n
	return s
}

func (r *reader) blob() []byte {
	n := int(r.u64())
	if r.err == nil && (n < 0 || n > len(r.data)) {
		r.err = fmt.Errorf("aout: implausible section size %d", n)
		return nil
	}
	if !r.need(n) {
		return nil
	}
	b := make([]byte, n)
	copy(b, r.data[r.pos:])
	r.pos += n
	return b
}
