// Package asm implements a two-pass assembler from textual Alpha-subset
// assembly to aout relocatable object modules.
//
// The accepted dialect follows OSF/1 `as` conventions closely enough that
// the paper's code fragments translate directly:
//
//	        .text
//	        .globl  main
//	        .ent    main
//	main:   lda     sp, -16(sp)
//	        stq     ra, 0(sp)
//	        la      a0, msg         # pseudo: ldah/lda pair + relocs
//	        bsr     ra, puts        # cross-module branches get BR21 relocs
//	        li      t0, 0x12345678  # pseudo: shortest immediate sequence
//	        ldq     ra, 0(sp)
//	        lda     sp, 16(sp)
//	        ret     (ra)
//	        .end    main
//	        .data
//	msg:    .asciiz "hello\n"
//
// Sections: .text (instructions only), .data (.byte/.word/.long/.quad/
// .ascii/.asciiz/.space/.align), .bss (.space/.align only). Procedures
// are bracketed with .ent/.end, which produces SymFunc symbols — the
// handles OM uses to rebuild the program's procedure structure.
package asm

import (
	"fmt"
	"strings"

	"atom/internal/aout"
	"atom/internal/obs"
)

// Assemble translates one assembly source file into an object module.
// name is used in error messages only.
func Assemble(name, src string) (*aout.File, error) {
	return AssembleCtx(nil, name, src)
}

// AssembleCtx is Assemble with a stage context: the two-pass assembly of
// one module runs under an "asm.assemble" span annotated with the module
// name and the text bytes it produced.
func AssembleCtx(ctx *obs.Ctx, name, src string) (*aout.File, error) {
	_, sp := ctx.Start("asm.assemble", obs.String("file", name))
	defer sp.End()
	a := &assembler{
		name:    name,
		symbols: map[string]*symbol{},
		file:    &aout.File{},
	}
	if err := a.run(src); err != nil {
		return nil, err
	}
	sp.SetAttr(obs.Int("text_bytes", int64(len(a.file.Text))))
	return a.file, nil
}

type symbol struct {
	name    string
	section aout.Section
	offset  uint64
	size    uint64
	global  bool
	isFunc  bool
	defined bool
	index   int // position in file symbol table; -1 until emitted
}

type assembler struct {
	name    string
	line    int
	section aout.Section
	symbols map[string]*symbol
	order   []*symbol // definition/reference order for stable output
	file    *aout.File

	// Pass state.
	pass    int // 1 = sizing, 2 = encoding
	text    []byte
	data    []byte
	bss     uint64
	pendEnt string
	emitErr error // first instruction-encoding error, if any

	relocSyms []*symbol // parallel to file.Relocs; resolved to indices at the end
}

func (a *assembler) errf(format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", a.name, a.line, fmt.Sprintf(format, args...))
}

func (a *assembler) run(src string) error {
	lines := strings.Split(src, "\n")
	for a.pass = 1; a.pass <= 2; a.pass++ {
		a.section = aout.SecText
		a.text = a.text[:0]
		a.data = a.data[:0]
		a.bss = 0
		a.pendEnt = ""
		for i, line := range lines {
			a.line = i + 1
			if err := a.doLine(line); err != nil {
				return err
			}
		}
		if a.pendEnt != "" {
			return fmt.Errorf("%s: .ent %s without matching .end", a.name, a.pendEnt)
		}
		if a.emitErr != nil {
			return a.emitErr
		}
	}
	a.file.Text = append([]byte(nil), a.text...)
	a.file.Data = append([]byte(nil), a.data...)
	a.file.Bss = a.bss
	// Emit the symbol table: every defined symbol plus referenced
	// undefined ones.
	for _, s := range a.order {
		sym := aout.Symbol{Name: s.name, Value: s.offset, Size: s.size, Global: s.global}
		if s.isFunc {
			sym.Kind = aout.SymFunc
		}
		if s.defined {
			sym.Section = s.section
		} else {
			sym.Section = aout.SecUndef
			sym.Global = true
			sym.Value = 0
		}
		s.index = len(a.file.Symbols)
		a.file.Symbols = append(a.file.Symbols, sym)
	}
	// Relocation symbol references were recorded as *symbol in pass 2;
	// patch in final indices.
	for i := range a.file.Relocs {
		a.file.Relocs[i].Sym = a.relocSyms[i].index
	}
	if err := a.file.Validate(); err != nil {
		return fmt.Errorf("%s: internal error: %w", a.name, err)
	}
	return nil
}

// loc returns the current offset in the active section.
func (a *assembler) loc() uint64 {
	switch a.section {
	case aout.SecText:
		return uint64(len(a.text))
	case aout.SecData:
		return uint64(len(a.data))
	default:
		return a.bss
	}
}

func (a *assembler) doLine(line string) error {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	line = strings.TrimSpace(line)
	// Labels (possibly several) at line start.
	for {
		i := strings.IndexByte(line, ':')
		if i < 0 {
			break
		}
		head := strings.TrimSpace(line[:i])
		if !isIdent(head) {
			break
		}
		if err := a.defineLabel(head); err != nil {
			return err
		}
		line = strings.TrimSpace(line[i+1:])
	}
	if line == "" {
		return nil
	}
	op := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		op, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	if strings.HasPrefix(op, ".") {
		return a.directive(op, rest)
	}
	return a.instruction(op, rest)
}

func (a *assembler) defineLabel(name string) error {
	s := a.sym(name)
	if a.pass == 1 {
		if s.defined {
			return a.errf("symbol %q redefined", name)
		}
		s.defined = true
		s.section = a.section
		s.offset = a.loc()
		return nil
	}
	// Pass 2: offsets must agree (they will unless sizing is buggy).
	if s.offset != a.loc() || s.section != a.section {
		return a.errf("internal: label %q moved between passes (%#x -> %#x)", name, s.offset, a.loc())
	}
	return nil
}

func (a *assembler) sym(name string) *symbol {
	if s, ok := a.symbols[name]; ok {
		return s
	}
	s := &symbol{name: name, index: -1}
	a.symbols[name] = s
	a.order = append(a.order, s)
	return s
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.', c == '$':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitOperands splits on top-level commas (parentheses protect commas,
// and string literals are respected).
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}
