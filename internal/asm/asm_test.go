package asm

import (
	"encoding/binary"
	"strings"
	"testing"

	"atom/internal/alpha"
	"atom/internal/aout"
)

func mustAssemble(t *testing.T, src string) *aout.File {
	t.Helper()
	f, err := Assemble("test.s", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return f
}

func word(t *testing.T, f *aout.File, i int) alpha.Inst {
	t.Helper()
	w := binary.LittleEndian.Uint32(f.Text[i*4:])
	inst, err := alpha.Decode(w)
	if err != nil {
		t.Fatalf("decode word %d (%#08x): %v", i, w, err)
	}
	return inst
}

func TestBasicProgram(t *testing.T) {
	f := mustAssemble(t, `
	.text
	.globl main
	.ent main
main:
	lda sp, -16(sp)
	stq ra, 0(sp)
	addq a0, a1, v0
	subq v0, 1, v0
	ldq ra, 0(sp)
	lda sp, 16(sp)
	ret (ra)
	.end main
`)
	if len(f.Text) != 7*4 {
		t.Fatalf("text = %d bytes, want 28", len(f.Text))
	}
	main, ok := f.Lookup("main")
	if !ok || main.Kind != aout.SymFunc || !main.Global || main.Size != 28 {
		t.Errorf("main symbol = %+v", main)
	}
	if i := word(t, f, 0); i.Op != alpha.OpLda || i.Ra != alpha.SP || i.Disp != -16 {
		t.Errorf("word 0 = %v", i)
	}
	if i := word(t, f, 3); i.Op != alpha.OpSubq || !i.HasLit || i.Lit != 1 {
		t.Errorf("word 3 = %v", i)
	}
	if i := word(t, f, 6); i.Op != alpha.OpRet || i.Rb != alpha.RA {
		t.Errorf("word 6 = %v", i)
	}
}

func TestBranchResolution(t *testing.T) {
	f := mustAssemble(t, `
	.text
	.ent f
f:
	beq t0, done
	addq t1, 1, t1
	br f
done:
	ret (ra)
	.end f
`)
	// beq at word 0 targets word 3: disp = 3 - 1 = 2.
	if i := word(t, f, 0); i.Op != alpha.OpBeq || i.Disp != 2 {
		t.Errorf("forward branch = %v, want disp 2", i)
	}
	// br at word 2 targets word 0: disp = 0 - 3 = -3.
	if i := word(t, f, 2); i.Op != alpha.OpBr || i.Disp != -3 {
		t.Errorf("backward branch = %v, want disp -3", i)
	}
	if len(f.Relocs) != 0 {
		t.Errorf("local branches produced %d relocs", len(f.Relocs))
	}
}

func TestExternalBranchReloc(t *testing.T) {
	f := mustAssemble(t, `
	.text
	.ent f
f:
	bsr ra, printf
	ret (ra)
	.end f
`)
	if len(f.Relocs) != 1 {
		t.Fatalf("relocs = %d, want 1", len(f.Relocs))
	}
	r := f.Relocs[0]
	if r.Type != aout.RelBr21 || r.Offset != 0 || r.Section != aout.SecText {
		t.Errorf("reloc = %+v", r)
	}
	s := f.Symbols[r.Sym]
	if s.Name != "printf" || s.Section != aout.SecUndef || !s.Global {
		t.Errorf("reloc symbol = %+v", s)
	}
}

func TestLaPseudo(t *testing.T) {
	f := mustAssemble(t, `
	.text
	.ent f
f:
	la a0, msg+4
	ret (ra)
	.end f
	.data
msg:
	.asciiz "hello"
`)
	if len(f.Text) != 3*4 {
		t.Fatalf("la should expand to 2 instructions; text = %d bytes", len(f.Text))
	}
	if i := word(t, f, 0); i.Op != alpha.OpLdah || i.Ra != alpha.A0 || i.Rb != alpha.Zero {
		t.Errorf("word 0 = %v", i)
	}
	if i := word(t, f, 1); i.Op != alpha.OpLda || i.Ra != alpha.A0 || i.Rb != alpha.A0 {
		t.Errorf("word 1 = %v", i)
	}
	if len(f.Relocs) != 2 || f.Relocs[0].Type != aout.RelHi16 || f.Relocs[1].Type != aout.RelLo16 {
		t.Fatalf("relocs = %+v", f.Relocs)
	}
	for _, r := range f.Relocs {
		if r.Addend != 4 {
			t.Errorf("reloc addend = %d, want 4", r.Addend)
		}
		if f.Symbols[r.Sym].Name != "msg" {
			t.Errorf("reloc symbol = %q", f.Symbols[r.Sym].Name)
		}
	}
	if string(f.Data) != "hello\x00" {
		t.Errorf("data = %q", f.Data)
	}
}

func TestJsrSymbolPseudo(t *testing.T) {
	f := mustAssemble(t, `
	.text
	.ent f
f:
	jsr qsort
	ret (ra)
	.end f
`)
	if len(f.Text) != 4*4 { // 3 for the jsr pseudo + 1 for ret
		t.Fatalf("jsr sym should expand to 3 instructions; got %d bytes total", len(f.Text))
	}
	if i := word(t, f, 0); i.Op != alpha.OpLdah || i.Ra != alpha.PV {
		t.Errorf("word 0 = %v", i)
	}
	if i := word(t, f, 2); i.Op != alpha.OpJsr || i.Ra != alpha.RA || i.Rb != alpha.PV {
		t.Errorf("word 2 = %v", i)
	}
}

func TestLiPseudoSizes(t *testing.T) {
	cases := []struct {
		imm   string
		words int
	}{
		{"7", 1}, {"-1", 1}, {"0x7fff", 1},
		{"0x8000", 2}, {"0x12345678", 2},
		{"0x123456789abcdef0", 5},
	}
	for _, c := range cases {
		f := mustAssemble(t, "\t.text\n\tli t0, "+c.imm+"\n")
		if len(f.Text) != c.words*4 {
			t.Errorf("li %s: %d words, want %d", c.imm, len(f.Text)/4, c.words)
		}
	}
}

func TestDataDirectives(t *testing.T) {
	f := mustAssemble(t, `
	.data
a:	.byte 1, 2, 0xFF
	.word 0x1234
	.align 3
b:	.quad 0x1122334455667788
	.long 7
	.space 3, 0xAA
	.ascii "hi"
`)
	sym, _ := f.Lookup("b")
	if sym.Value != 8 {
		t.Errorf("b at %d, want 8 (aligned)", sym.Value)
	}
	if f.Data[0] != 1 || f.Data[2] != 0xFF {
		t.Errorf(".byte data = %v", f.Data[:3])
	}
	if binary.LittleEndian.Uint64(f.Data[8:]) != 0x1122334455667788 {
		t.Error(".quad value wrong")
	}
	if binary.LittleEndian.Uint32(f.Data[16:]) != 7 {
		t.Error(".long value wrong")
	}
	if f.Data[20] != 0xAA || f.Data[22] != 0xAA {
		t.Error(".space fill wrong")
	}
	if string(f.Data[23:25]) != "hi" {
		t.Error(".ascii wrong")
	}
}

func TestQuadSymbolReloc(t *testing.T) {
	f := mustAssemble(t, `
	.text
	.ent f
f:	ret (ra)
	.end f
	.data
tbl:	.quad f, f+8
`)
	if len(f.Relocs) != 2 {
		t.Fatalf("relocs = %+v", f.Relocs)
	}
	if f.Relocs[0].Type != aout.RelQuad || f.Relocs[0].Section != aout.SecData {
		t.Errorf("reloc 0 = %+v", f.Relocs[0])
	}
	if f.Relocs[1].Addend != 8 || f.Relocs[1].Offset != 8 {
		t.Errorf("reloc 1 = %+v", f.Relocs[1])
	}
}

func TestBssAndComm(t *testing.T) {
	f := mustAssemble(t, `
	.bss
buf:	.space 100
	.align 3
buf2:	.space 4
	.comm shared, 64
	.lcomm private, 16
`)
	if f.Bss < 100+4+64+16 {
		t.Errorf("bss = %d", f.Bss)
	}
	b, _ := f.Lookup("buf")
	if b.Section != aout.SecBss || b.Value != 0 {
		t.Errorf("buf = %+v", b)
	}
	b2, _ := f.Lookup("buf2")
	if b2.Value != 104 {
		t.Errorf("buf2 at %d, want 104", b2.Value)
	}
	sh, _ := f.Lookup("shared")
	if !sh.Global || sh.Section != aout.SecBss || sh.Size != 64 {
		t.Errorf("shared = %+v", sh)
	}
	pr, _ := f.Lookup("private")
	if pr.Global {
		t.Error("lcomm symbol is global")
	}
}

func TestCharLiterals(t *testing.T) {
	f := mustAssemble(t, `
	.text
	li t0, 'A'
	subq t0, 'a', t1
`)
	if i := word(t, f, 0); i.Disp != 65 {
		t.Errorf("li 'A' disp = %d", i.Disp)
	}
	if i := word(t, f, 1); i.Lit != 'a' {
		t.Errorf("subq lit = %d", i.Lit)
	}
}

func TestMovClrNopPseudos(t *testing.T) {
	f := mustAssemble(t, `
	.text
	mov a0, t0
	clr t1
	nop
	negq t0, t2
	not t0, t3
`)
	if i := word(t, f, 0); i.Op != alpha.OpBis || i.Ra != alpha.Zero || i.Rb != alpha.A0 || i.Rc != alpha.T0 {
		t.Errorf("mov = %v", i)
	}
	if i := word(t, f, 1); i.Rc != alpha.T1 || i.Rb != alpha.Zero {
		t.Errorf("clr = %v", i)
	}
	if i := word(t, f, 3); i.Op != alpha.OpSubq || i.Ra != alpha.Zero || i.Rb != alpha.T0 {
		t.Errorf("negq = %v", i)
	}
	if i := word(t, f, 4); i.Op != alpha.OpOrnot {
		t.Errorf("not = %v", i)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"\t.text\n\tbogus t0\n", "unknown instruction"},
		{"\t.text\n\t.bogus\n", "unknown directive"},
		{"x:\nx:\n", "redefined"},
		{"\t.data\n\taddq t0, t1, t2\n", "outside .text"},
		{"\t.text\n\t.quad 1\n", "outside .data"},
		{"\t.text\n\tlda t0, 40000(t1)\n", "range"},
		{"\t.text\n\taddq t0, 300, t1\n", "literal"},
		{"\t.text\n\t.ent f\n", "without matching .end"},
		{"\t.text\n\t.ent f\nf:\t.end g\n", "does not match"},
		{"\t.text\n\tbeq t0, x\n\t.data\nx: .byte 1\n", "not in .text"},
		{"\t.data\n\t.asciiz \"bad\\q\"\n", "unknown escape"},
		{"\t.text\n\tjmp t0\n", "bad operand"},
		{"\t.text\n\tli t0, zzz\n", "bad immediate"},
	}
	for _, c := range cases {
		_, err := Assemble("t.s", c.src)
		if err == nil {
			t.Errorf("Assemble(%q) succeeded, want error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Assemble(%q) error = %q, want substring %q", c.src, err, c.want)
		}
	}
}

func TestCommentsAndMultipleLabels(t *testing.T) {
	f := mustAssemble(t, `
# full-line comment
	.text
a: b:	nop		# trailing comment
c:
	ret (ra)
`)
	for _, n := range []string{"a", "b", "c"} {
		s, ok := f.Lookup(n)
		if !ok {
			t.Fatalf("label %s missing", n)
		}
		want := uint64(0)
		if n == "c" {
			want = 4
		}
		if s.Value != want {
			t.Errorf("label %s at %d, want %d", n, s.Value, want)
		}
	}
}

func TestValidateOutput(t *testing.T) {
	f := mustAssemble(t, `
	.text
	.globl main
	.ent main
main:
	la a0, data
	bsr ra, ext
	ret (ra)
	.end main
	.data
data:	.quad main
`)
	if err := f.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Roundtrip through the codec.
	got, err := aout.Decode(f.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got.Symbols) != len(f.Symbols) || len(got.Relocs) != len(f.Relocs) {
		t.Error("roundtrip lost symbols or relocs")
	}
}
