package asm

import (
	"fmt"
	"strconv"
	"strings"

	"atom/internal/aout"
)

func (a *assembler) directive(op, rest string) error {
	args := splitOperands(rest)
	switch op {
	case ".text":
		a.section = aout.SecText
	case ".data":
		a.section = aout.SecData
	case ".bss":
		a.section = aout.SecBss
	case ".globl", ".global":
		if len(args) == 0 {
			return a.errf("%s needs a symbol", op)
		}
		for _, n := range args {
			if !isIdent(n) {
				return a.errf("%s: bad symbol %q", op, n)
			}
			a.sym(n).global = true
		}
	case ".ent":
		if len(args) != 1 || !isIdent(args[0]) {
			return a.errf(".ent needs one symbol")
		}
		if a.pendEnt != "" {
			return a.errf(".ent %s while %s is open", args[0], a.pendEnt)
		}
		a.pendEnt = args[0]
		a.sym(args[0]).isFunc = true
	case ".end":
		if len(args) != 1 || args[0] != a.pendEnt {
			return a.errf(".end %s does not match .ent %s", strings.Join(args, ","), a.pendEnt)
		}
		s := a.sym(a.pendEnt)
		if a.pass == 1 {
			if !s.defined || s.section != aout.SecText {
				return a.errf(".end %s: procedure label not defined in .text", a.pendEnt)
			}
			s.size = a.loc() - s.offset
		}
		a.pendEnt = ""
	case ".byte":
		return a.emitInts(args, 1)
	case ".word":
		return a.emitInts(args, 2)
	case ".long":
		return a.emitInts(args, 4)
	case ".quad":
		return a.emitInts(args, 8)
	case ".ascii", ".asciiz":
		if a.section != aout.SecData {
			return a.errf("%s outside .data", op)
		}
		for _, arg := range args {
			b, err := parseString(arg)
			if err != nil {
				return a.errf("%s: %v", op, err)
			}
			if op == ".asciiz" {
				b = append(b, 0)
			}
			a.emitBytes(b)
		}
	case ".space":
		if len(args) < 1 || len(args) > 2 {
			return a.errf(".space needs size [, fill]")
		}
		n, err := parseInt(args[0])
		if err != nil || n < 0 {
			return a.errf(".space: bad size %q", args[0])
		}
		fill := int64(0)
		if len(args) == 2 {
			if fill, err = parseInt(args[1]); err != nil {
				return a.errf(".space: bad fill %q", args[1])
			}
		}
		if a.section == aout.SecBss {
			if fill != 0 {
				return a.errf(".space with fill in .bss")
			}
			a.bss += uint64(n)
		} else if a.section == aout.SecData {
			b := make([]byte, n)
			for i := range b {
				b[i] = byte(fill)
			}
			a.emitBytes(b)
		} else {
			return a.errf(".space in .text")
		}
	case ".align":
		if len(args) != 1 {
			return a.errf(".align needs a power-of-two exponent")
		}
		p, err := parseInt(args[0])
		if err != nil || p < 0 || p > 16 {
			return a.errf(".align: bad exponent %q", args[0])
		}
		size := uint64(1) << uint(p)
		for a.loc()%size != 0 {
			if a.section == aout.SecBss {
				a.bss++
			} else if a.section == aout.SecData {
				a.emitBytes([]byte{0})
			} else {
				return a.errf(".align in .text unsupported")
			}
		}
	case ".comm", ".lcomm":
		if len(args) != 2 || !isIdent(args[0]) {
			return a.errf("%s needs symbol, size", op)
		}
		n, err := parseInt(args[1])
		if err != nil || n < 0 {
			return a.errf("%s: bad size %q", op, args[1])
		}
		s := a.sym(args[0])
		if op == ".comm" {
			s.global = true
		}
		if a.pass == 1 {
			if s.defined {
				return a.errf("symbol %q redefined", args[0])
			}
			a.bss = (a.bss + 7) &^ 7
			s.defined = true
			s.section = aout.SecBss
			s.offset = a.bss
			s.size = uint64(n)
			a.bss += uint64(n)
		} else {
			a.bss = (a.bss + 7) &^ 7
			a.bss += uint64(n)
		}
	default:
		return a.errf("unknown directive %s", op)
	}
	return nil
}

// emitInts emits integer data of the given width; .quad and .long values
// may be symbol references (emitting RelQuad/RelLong relocations).
func (a *assembler) emitInts(args []string, width int) error {
	if a.section != aout.SecData {
		return a.errf("data directive outside .data")
	}
	if len(args) == 0 {
		return a.errf("data directive needs at least one value")
	}
	for _, arg := range args {
		if v, err := parseInt(arg); err == nil {
			if width < 8 {
				limit := int64(1) << uint(width*8)
				if v >= limit || v < -limit/2 {
					return a.errf("value %s does not fit %d bytes", arg, width)
				}
			}
			var b [8]byte
			for i := 0; i < width; i++ {
				b[i] = byte(v >> (8 * i))
			}
			a.emitBytes(b[:width])
			continue
		}
		// Symbolic reference.
		name, addend, err := parseSymRef(arg)
		if err != nil {
			return a.errf("bad value %q: %v", arg, err)
		}
		if width != 8 && width != 4 {
			return a.errf("symbol reference %q needs .quad or .long", arg)
		}
		rt := aout.RelQuad
		if width == 4 {
			rt = aout.RelLong
		}
		a.addReloc(aout.SecData, a.loc(), rt, name, addend)
		a.emitBytes(make([]byte, width))
	}
	return nil
}

func (a *assembler) emitBytes(b []byte) {
	if a.section == aout.SecData {
		a.data = append(a.data, b...)
	} else {
		a.text = append(a.text, b...)
	}
}

// addReloc records a relocation in pass 2; pass 1 only needs sizes.
func (a *assembler) addReloc(sec aout.Section, off uint64, t aout.RelocType, sym string, addend int64) {
	if a.pass != 2 {
		return
	}
	a.file.Relocs = append(a.file.Relocs, aout.Reloc{Section: sec, Offset: off, Type: t, Addend: addend})
	a.relocSyms = append(a.relocSyms, a.sym(sym))
}

// parseInt parses a numeric literal: decimal, 0x hex, 0o octal, 0b binary,
// optionally negated, or a character literal.
func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 2 && s[0] == '\'' {
		b, err := parseString("\"" + strings.Trim(s, "'") + "\"")
		if err != nil || len(b) != 1 {
			return 0, fmt.Errorf("bad char literal %q", s)
		}
		return int64(b[0]), nil
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	} else {
		s = strings.TrimPrefix(s, "+")
	}
	v, err := strconv.ParseUint(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

// parseSymRef parses "sym", "sym+imm" or "sym-imm".
func parseSymRef(s string) (name string, addend int64, err error) {
	s = strings.TrimSpace(s)
	i := strings.IndexAny(s, "+-")
	if i <= 0 {
		if !isIdent(s) {
			return "", 0, fmt.Errorf("not a symbol: %q", s)
		}
		return s, 0, nil
	}
	name = strings.TrimSpace(s[:i])
	if !isIdent(name) {
		return "", 0, fmt.Errorf("not a symbol: %q", name)
	}
	addend, err = parseInt(s[i:])
	return name, addend, err
}

// parseString parses a double-quoted string with C escapes.
func parseString(s string) ([]byte, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return nil, fmt.Errorf("not a string literal: %q", s)
	}
	body := s[1 : len(s)-1]
	var out []byte
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			out = append(out, c)
			continue
		}
		i++
		if i >= len(body) {
			return nil, fmt.Errorf("trailing backslash in %q", s)
		}
		switch body[i] {
		case 'n':
			out = append(out, '\n')
		case 't':
			out = append(out, '\t')
		case 'r':
			out = append(out, '\r')
		case '0':
			out = append(out, 0)
		case '\\':
			out = append(out, '\\')
		case '"':
			out = append(out, '"')
		case '\'':
			out = append(out, '\'')
		case 'x':
			if i+2 >= len(body) {
				return nil, fmt.Errorf("bad \\x escape in %q", s)
			}
			v, err := strconv.ParseUint(body[i+1:i+3], 16, 8)
			if err != nil {
				return nil, fmt.Errorf("bad \\x escape in %q", s)
			}
			out = append(out, byte(v))
			i += 2
		default:
			return nil, fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return out, nil
}
