package asm

import (
	"fmt"
	"strings"

	"atom/internal/alpha"
	"atom/internal/aout"
)

func (a *assembler) instruction(op, rest string) error {
	if a.section != aout.SecText {
		return a.errf("instruction %s outside .text", op)
	}
	ops := splitOperands(rest)

	// Pseudo-instructions.
	switch op {
	case "la": // la r, sym[+off] — materialize an address, 2 instructions
		if len(ops) != 2 {
			return a.errf("la needs register, symbol")
		}
		r, ok := alpha.RegByName(ops[0])
		if !ok {
			return a.errf("la: bad register %q", ops[0])
		}
		name, addend, err := parseSymRef(ops[1])
		if err != nil {
			return a.errf("la: %v", err)
		}
		a.addReloc(aout.SecText, a.loc(), aout.RelHi16, name, addend)
		a.emit(alpha.Mem(alpha.OpLdah, r, alpha.Zero, 0))
		a.addReloc(aout.SecText, a.loc(), aout.RelLo16, name, addend)
		a.emit(alpha.Mem(alpha.OpLda, r, r, 0))
		return nil
	case "li": // li r, imm — shortest immediate sequence
		if len(ops) != 2 {
			return a.errf("li needs register, immediate")
		}
		r, ok := alpha.RegByName(ops[0])
		if !ok {
			return a.errf("li: bad register %q", ops[0])
		}
		v, err := parseInt(ops[1])
		if err != nil {
			return a.errf("li: bad immediate %q", ops[1])
		}
		for _, i := range alpha.MaterializeImm(r, v) {
			a.emit(i)
		}
		return nil
	case "mov": // mov rs, rd
		if len(ops) != 2 {
			return a.errf("mov needs two registers")
		}
		rs, ok1 := alpha.RegByName(ops[0])
		rd, ok2 := alpha.RegByName(ops[1])
		if !ok1 || !ok2 {
			return a.errf("mov: bad registers %q", rest)
		}
		a.emit(alpha.Mov(rs, rd))
		return nil
	case "clr":
		if len(ops) != 1 {
			return a.errf("clr needs one register")
		}
		rd, ok := alpha.RegByName(ops[0])
		if !ok {
			return a.errf("clr: bad register %q", ops[0])
		}
		a.emit(alpha.Mov(alpha.Zero, rd))
		return nil
	case "nop":
		a.emit(alpha.Mov(alpha.Zero, alpha.Zero))
		return nil
	case "negq":
		if len(ops) != 2 {
			return a.errf("negq needs two registers")
		}
		rs, ok1 := alpha.RegByName(ops[0])
		rd, ok2 := alpha.RegByName(ops[1])
		if !ok1 || !ok2 {
			return a.errf("negq: bad registers %q", rest)
		}
		a.emit(alpha.RR(alpha.OpSubq, alpha.Zero, rs, rd))
		return nil
	case "not":
		if len(ops) != 2 {
			return a.errf("not needs two registers")
		}
		rs, ok1 := alpha.RegByName(ops[0])
		rd, ok2 := alpha.RegByName(ops[1])
		if !ok1 || !ok2 {
			return a.errf("not: bad registers %q", rest)
		}
		a.emit(alpha.RR(alpha.OpOrnot, alpha.Zero, rs, rd))
		return nil
	}

	aop, known := alpha.OpByName(op)
	if !known {
		return a.errf("unknown instruction %q", op)
	}

	switch aop.Format() {
	case alpha.FormatPal:
		if len(ops) != 1 {
			return a.errf("call_pal needs a function code")
		}
		fn, err := parseInt(ops[0])
		if err != nil || fn < 0 {
			return a.errf("call_pal: bad function %q", ops[0])
		}
		a.emit(alpha.Inst{Op: alpha.OpCallPal, PalFn: uint32(fn)})
		return nil

	case alpha.FormatMem:
		if len(ops) != 2 {
			return a.errf("%s needs register, address", op)
		}
		r, ok := alpha.RegByName(ops[0])
		if !ok {
			return a.errf("%s: bad register %q", op, ops[0])
		}
		disp, base, err := parseAddr(ops[1])
		if err != nil {
			return a.errf("%s: %v", op, err)
		}
		a.emit(alpha.Mem(aop, r, base, disp))
		return nil

	case alpha.FormatBranch:
		// br/bsr allow an implicit link register.
		var raName, target string
		switch {
		case len(ops) == 2:
			raName, target = ops[0], ops[1]
		case len(ops) == 1 && aop == alpha.OpBr:
			raName, target = "zero", ops[0]
		case len(ops) == 1 && aop == alpha.OpBsr:
			raName, target = "ra", ops[0]
		default:
			return a.errf("%s needs [register,] target", op)
		}
		ra, ok := alpha.RegByName(raName)
		if !ok {
			return a.errf("%s: bad register %q", op, raName)
		}
		return a.emitBranch(aop, ra, target)

	case alpha.FormatOperate:
		if len(ops) != 3 {
			return a.errf("%s needs three operands", op)
		}
		ra, ok := alpha.RegByName(ops[0])
		if !ok {
			return a.errf("%s: bad register %q", op, ops[0])
		}
		rc, ok := alpha.RegByName(ops[2])
		if !ok {
			return a.errf("%s: bad register %q", op, ops[2])
		}
		if rb, ok := alpha.RegByName(ops[1]); ok {
			a.emit(alpha.RR(aop, ra, rb, rc))
			return nil
		}
		lit, err := parseInt(ops[1])
		if err != nil || lit < 0 || lit > 255 {
			return a.errf("%s: operand %q is neither register nor 8-bit literal", op, ops[1])
		}
		a.emit(alpha.RI(aop, ra, uint8(lit), rc))
		return nil

	case alpha.FormatJump:
		return a.emitJump(aop, ops)
	}
	return a.errf("unhandled instruction %q", op)
}

func (a *assembler) emitJump(aop alpha.Op, ops []string) error {
	parseInd := func(s string) (alpha.Reg, bool) {
		s = strings.TrimSpace(s)
		if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
			return 0, false
		}
		return alpha.RegByName(strings.TrimSpace(s[1 : len(s)-1]))
	}
	switch aop {
	case alpha.OpRet:
		switch len(ops) {
		case 0:
			a.emit(alpha.Inst{Op: alpha.OpRet, Ra: alpha.Zero, Rb: alpha.RA})
			return nil
		case 1:
			rb, ok := parseInd(ops[0])
			if !ok {
				return a.errf("ret: bad operand %q", ops[0])
			}
			a.emit(alpha.Inst{Op: alpha.OpRet, Ra: alpha.Zero, Rb: rb})
			return nil
		}
		return a.errf("ret takes at most one operand")
	case alpha.OpJmp:
		if len(ops) != 1 {
			return a.errf("jmp needs (register)")
		}
		rb, ok := parseInd(ops[0])
		if !ok {
			return a.errf("jmp: bad operand %q", ops[0])
		}
		a.emit(alpha.Inst{Op: alpha.OpJmp, Ra: alpha.Zero, Rb: rb})
		return nil
	case alpha.OpJsr:
		switch len(ops) {
		case 1:
			if rb, ok := parseInd(ops[0]); ok {
				a.emit(alpha.Inst{Op: alpha.OpJsr, Ra: alpha.RA, Rb: rb})
				return nil
			}
			// jsr sym — pseudo: load the procedure value, jump through it.
			name, addend, err := parseSymRef(ops[0])
			if err != nil {
				return a.errf("jsr: %v", err)
			}
			a.addReloc(aout.SecText, a.loc(), aout.RelHi16, name, addend)
			a.emit(alpha.Mem(alpha.OpLdah, alpha.PV, alpha.Zero, 0))
			a.addReloc(aout.SecText, a.loc(), aout.RelLo16, name, addend)
			a.emit(alpha.Mem(alpha.OpLda, alpha.PV, alpha.PV, 0))
			a.emit(alpha.Inst{Op: alpha.OpJsr, Ra: alpha.RA, Rb: alpha.PV})
			return nil
		case 2:
			ra, ok1 := alpha.RegByName(ops[0])
			rb, ok2 := parseInd(ops[1])
			if !ok1 || !ok2 {
				return a.errf("jsr: bad operands")
			}
			a.emit(alpha.Inst{Op: alpha.OpJsr, Ra: ra, Rb: rb})
			return nil
		}
		return a.errf("jsr needs a target")
	}
	return a.errf("unhandled jump %v", aop)
}

// parseAddr parses a memory operand: "disp(rb)", "(rb)", or "disp"
// (base defaults to the zero register).
func parseAddr(s string) (disp int32, base alpha.Reg, err error) {
	s = strings.TrimSpace(s)
	base = alpha.Zero
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return 0, 0, fmt.Errorf("bad address %q", s)
		}
		r, ok := alpha.RegByName(strings.TrimSpace(s[i+1 : len(s)-1]))
		if !ok {
			return 0, 0, fmt.Errorf("bad base register in %q", s)
		}
		base = r
		s = strings.TrimSpace(s[:i])
		if s == "" {
			return 0, base, nil
		}
	}
	v, err := parseInt(s)
	if err != nil {
		return 0, 0, fmt.Errorf("bad displacement %q", s)
	}
	if v < -0x8000 || v > 0x7FFF {
		return 0, 0, fmt.Errorf("displacement %d out of 16-bit range", v)
	}
	return int32(v), base, nil
}

// emitBranch resolves a branch to a local text label directly; anything
// else becomes a BR21 relocation for the linker.
func (a *assembler) emitBranch(aop alpha.Op, ra alpha.Reg, target string) error {
	name, addend, err := parseSymRef(target)
	if err != nil {
		return a.errf("%s: %v", aop, err)
	}
	if a.pass == 1 {
		a.sym(name) // record the reference
		a.emit(alpha.Br(aop, ra, 0))
		return nil
	}
	s := a.sym(name)
	if s.defined && s.section == aout.SecText {
		delta := int64(s.offset) + addend - int64(a.loc()+4)
		if delta%4 != 0 {
			return a.errf("%s: target %q misaligned", aop, target)
		}
		disp := delta / 4
		if disp < -(1<<20) || disp >= 1<<20 {
			return a.errf("%s: target %q out of branch range (%d words)", aop, target, disp)
		}
		a.emit(alpha.Br(aop, ra, int32(disp)))
		return nil
	}
	if s.defined {
		return a.errf("%s: target %q is not in .text", aop, target)
	}
	a.addReloc(aout.SecText, a.loc(), aout.RelBr21, name, addend)
	a.emit(alpha.Br(aop, ra, 0))
	return nil
}

// emit appends one instruction to the text section. Pass 1 only reserves
// space; pass 2 encodes.
func (a *assembler) emit(i alpha.Inst) {
	if a.pass == 1 {
		a.text = append(a.text, 0, 0, 0, 0)
		return
	}
	w, err := i.Encode()
	if err != nil {
		if a.emitErr == nil {
			a.emitErr = a.errf("%v", err)
		}
		w = 0
	}
	a.text = append(a.text, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
}
