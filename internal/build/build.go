// Package build provides the content-addressed artifact cache behind the
// staged instrumentation pipeline. The paper's two-step model builds a
// custom tool once and applies it to any number of programs; this cache
// is what makes "once" true in-process: compiled objects, linked analysis
// images, and runtime-library builds are keyed by the SHA-256 of their
// inputs (sources, options, toolchain version) and rebuilt only when any
// input changes.
//
// The cache is safe for concurrent use and deduplicates in-flight builds
// (singleflight): when several workers ask for the same artifact at the
// same time, exactly one runs the build function and the others wait for
// its result. Build errors are returned to every waiter but are NOT
// cached — a later Get with the same key retries the build, so a
// transient failure is never latched.
package build

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"io"
	"sync"
	"sync/atomic"

	"atom/internal/obs"
)

// ToolchainVersion is mixed into every key. Bump it when the code
// generators (cc, asm, link) change in ways that invalidate previously
// built artifacts; within one process it only matters for clarity, but it
// keeps keys honest if the cache is ever persisted.
const ToolchainVersion = "atom-toolchain-1"

// Key is a content address: the SHA-256 of an artifact's inputs.
type Key [sha256.Size]byte

// String renders the key as hex, for diagnostics.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Short renders the first 12 hex digits of the key, for span attributes.
func (k Key) Short() string { return hex.EncodeToString(k[:6]) }

// KeyBuilder accumulates inputs into a Key. Every field is written
// length-prefixed, so concatenation ambiguities ("ab"+"c" vs "a"+"bc")
// cannot collide.
type KeyBuilder struct {
	h hash.Hash
}

// NewKey starts a key of the given kind. The kind and the toolchain
// version are part of the hash, so artifacts of different kinds (or
// toolchains) can never alias.
func NewKey(kind string) *KeyBuilder {
	b := &KeyBuilder{h: sha256.New()}
	return b.String(ToolchainVersion).String(kind)
}

func (b *KeyBuilder) writeLen(n int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	b.h.Write(buf[:])
}

// String mixes a length-prefixed string into the key.
func (b *KeyBuilder) String(s string) *KeyBuilder {
	b.writeLen(len(s))
	io.WriteString(b.h, s)
	return b
}

// Bytes mixes a length-prefixed byte slice into the key.
func (b *KeyBuilder) Bytes(p []byte) *KeyBuilder {
	b.writeLen(len(p))
	b.h.Write(p)
	return b
}

// Int mixes an integer into the key.
func (b *KeyBuilder) Int(v int64) *KeyBuilder {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	b.h.Write(buf[:])
	return b
}

// Bool mixes a boolean into the key.
func (b *KeyBuilder) Bool(v bool) *KeyBuilder {
	if v {
		return b.Int(1)
	}
	return b.Int(0)
}

// Sum finalizes the key.
func (b *KeyBuilder) Sum() Key {
	var k Key
	b.h.Sum(k[:0])
	return k
}

// Stats is a snapshot of cache activity.
type Stats struct {
	Hits   uint64 // Gets served from a completed artifact
	Misses uint64 // Gets that started a build
	Builds uint64 // builds that completed successfully
	Errors uint64 // builds that failed (and were not cached)
}

// Cache is a concurrent, singleflight, content-addressed artifact store.
// The zero value is ready to use.
type Cache struct {
	name string // counter prefix; "" means the default "cache"

	mu      sync.Mutex
	entries map[Key]*entry

	hits   atomic.Uint64
	misses atomic.Uint64
	builds atomic.Uint64
	errs   atomic.Uint64
}

type entry struct {
	done chan struct{}
	val  any
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{} }

// NewNamed returns an empty cache whose lookup-outcome counters are
// prefixed by name ("ircache.hit", "ircache.miss", ...) instead of the
// default "cache", so different artifact stores stay distinguishable in
// one metrics snapshot.
func NewNamed(name string) *Cache { return &Cache{name: name} }

// counterPrefix returns the prefix for this cache's outcome counters.
func (c *Cache) counterPrefix() string {
	if c.name == "" {
		return "cache"
	}
	return c.name
}

// Get returns the artifact for key, running build at most once per key at
// a time. Concurrent Gets for the same key share one build. A failed
// build's error is returned to every caller that observed it, then the
// key is cleared so the next Get retries.
func (c *Cache) Get(key Key, build func() (any, error)) (any, error) {
	return c.GetCtx(nil, "", key, func(*obs.Ctx) (any, error) { return build() })
}

// GetCtx is Get with observability: each lookup opens a span named
// "cache.get" (labelled with what artifact is being fetched and the short
// key) whose outcome attribute records how it was served — "hit" for a
// completed artifact, "wait" for joining an in-flight build (the
// singleflight path), "miss" for running the build, "error" for a failed
// build. The same outcomes feed
// the cache.<outcome> counters. The build function receives the child
// context, so everything it compiles or links nests under the lookup.
func (c *Cache) GetCtx(ctx *obs.Ctx, what string, key Key, build func(*obs.Ctx) (any, error)) (any, error) {
	var sp *obs.Span
	bctx := ctx
	if ctx.Enabled() {
		bctx, sp = ctx.Start("cache.get",
			obs.String("artifact", what), obs.String("key", key.Short()))
	}
	outcome := func(o string) {
		sp.SetAttr(obs.String("outcome", o))
		sp.End()
		ctx.Count(c.counterPrefix()+"."+o, 1)
	}

	c.mu.Lock()
	if c.entries == nil {
		c.entries = map[Key]*entry{}
	}
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		served := "hit"
		select {
		case <-e.done:
		default:
			served = "wait" // joined a build another caller is running
		}
		<-e.done
		if e.err == nil {
			c.hits.Add(1)
			outcome(served)
		} else {
			outcome("error")
		}
		return e.val, e.err
	}
	e := &entry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)

	e.val, e.err = build(bctx)
	if e.err != nil {
		// Unlatch before waking waiters: any Get arriving after close
		// must find the key absent and retry the build.
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
		c.errs.Add(1)
		outcome("error")
	} else {
		c.builds.Add(1)
		outcome("miss")
	}
	close(e.done)
	return e.val, e.err
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Builds: c.builds.Load(),
		Errors: c.errs.Load(),
	}
}

// Len reports the number of completed or in-flight artifacts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Reset drops every artifact and zeroes the counters. Intended for tests
// and cold-start benchmarks; in-flight builds complete but are not
// re-registered.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.entries = nil
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
	c.builds.Store(0)
	c.errs.Store(0)
}

// Memo is the typed convenience wrapper over Get.
func Memo[T any](c *Cache, key Key, build func() (T, error)) (T, error) {
	return MemoCtx(nil, c, "", key, func(*obs.Ctx) (T, error) { return build() })
}

// MemoCtx is the typed convenience wrapper over GetCtx.
func MemoCtx[T any](ctx *obs.Ctx, c *Cache, what string, key Key, build func(*obs.Ctx) (T, error)) (T, error) {
	v, err := c.GetCtx(ctx, what, key, func(bctx *obs.Ctx) (any, error) { return build(bctx) })
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}
