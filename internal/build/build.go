// Package build provides the content-addressed artifact cache behind the
// staged instrumentation pipeline. The paper's two-step model builds a
// custom tool once and applies it to any number of programs; this cache
// is what makes "once" true: compiled objects, linked analysis images,
// and runtime-library builds are keyed by the SHA-256 of their inputs
// (sources, options, toolchain version) and rebuilt only when any input
// changes.
//
// Each Cache layers decoded in-memory values over the process-wide Store
// (see store.go): a lookup tries memory, then — for kinds with a Codec —
// the store, and only then runs the build, populating both on the way
// out. With a persistent DiskStore configured, a second process against
// the same cache directory serves every artifact from disk and builds
// nothing.
//
// The cache is safe for concurrent use and deduplicates in-flight builds
// (singleflight) across ALL Cache instances: keys are full content
// addresses, so when several workers — even holding independent Cache
// handles — ask for the same artifact at the same time, exactly one runs
// the build function and the others wait for its result. Build errors
// are returned to every waiter but are NOT cached — a later Get with the
// same key retries the build, so a transient failure is never latched.
package build

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"io"
	"sync"
	"sync/atomic"

	"atom/internal/obs"
)

// ToolchainVersion is mixed into every key. Bump it when the code
// generators (cc, asm, link) change in ways that invalidate previously
// built artifacts; with a persistent store configured this is what keeps
// old processes' blobs from being served to a new toolchain.
const ToolchainVersion = "atom-toolchain-1"

// Key is a content address: the SHA-256 of an artifact's inputs.
type Key [sha256.Size]byte

// String renders the key as hex, for diagnostics.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Short renders the first 12 hex digits of the key, for span attributes.
func (k Key) Short() string { return hex.EncodeToString(k[:6]) }

// KeyBuilder accumulates inputs into a Key. Every field is written
// length-prefixed, so concatenation ambiguities ("ab"+"c" vs "a"+"bc")
// cannot collide.
type KeyBuilder struct {
	h hash.Hash
}

// NewKey starts a key of the given kind. The kind and the toolchain
// version are part of the hash, so artifacts of different kinds (or
// toolchains) can never alias.
func NewKey(kind string) *KeyBuilder {
	b := &KeyBuilder{h: sha256.New()}
	return b.String(ToolchainVersion).String(kind)
}

func (b *KeyBuilder) writeLen(n int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	b.h.Write(buf[:])
}

// String mixes a length-prefixed string into the key.
func (b *KeyBuilder) String(s string) *KeyBuilder {
	b.writeLen(len(s))
	io.WriteString(b.h, s)
	return b
}

// Bytes mixes a length-prefixed byte slice into the key.
func (b *KeyBuilder) Bytes(p []byte) *KeyBuilder {
	b.writeLen(len(p))
	b.h.Write(p)
	return b
}

// Int mixes an integer into the key.
func (b *KeyBuilder) Int(v int64) *KeyBuilder {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	b.h.Write(buf[:])
	return b
}

// Bool mixes a boolean into the key.
func (b *KeyBuilder) Bool(v bool) *KeyBuilder {
	if v {
		return b.Int(1)
	}
	return b.Int(0)
}

// Sum finalizes the key.
func (b *KeyBuilder) Sum() Key {
	var k Key
	b.h.Sum(k[:0])
	return k
}

// Stats is a snapshot of cache activity.
type Stats struct {
	Hits     uint64 // Gets served from a decoded in-memory artifact
	DiskHits uint64 // Gets served by decoding a blob from the store
	Misses   uint64 // Gets that started a build
	Builds   uint64 // builds that completed successfully
	Errors   uint64 // builds that failed (and were not cached)
}

// Cache is a concurrent, singleflight, content-addressed artifact cache:
// decoded values in memory, layered over the process-wide Store for
// kinds that have a Codec.
type Cache struct {
	kind  string // names the store.<kind>.* counters
	codec Codec  // nil: memory-only — the artifact has no wire form

	mu    sync.Mutex
	front map[Key]any // decoded values; pointer identity for hits

	hits     atomic.Uint64
	diskHits atomic.Uint64
	misses   atomic.Uint64
	builds   atomic.Uint64
	errs     atomic.Uint64
}

// The cross-instance singleflight table: one in-flight build per key,
// process-wide. Keys embed their kind, so flights of different caches
// can never alias; flights of twin caches over one store dedup exactly
// as the store semantics require.
var (
	flightMu sync.Mutex
	flights  = map[Key]*flight{}
)

type flight struct {
	done chan struct{}
	val  any
	err  error
}

// NewCache returns an empty cache for one artifact kind. The kind names
// the cache's store.<kind>.* counters; codec, if non-nil, gives the
// artifact a wire form so it persists through the configured Store.
func NewCache(kind string, codec Codec) *Cache {
	return &Cache{kind: kind, codec: codec}
}

// Get returns the artifact for key, running build at most once per key at
// a time. Concurrent Gets for the same key share one build. A failed
// build's error is returned to every caller that observed it, then the
// key is cleared so the next Get retries.
func (c *Cache) Get(key Key, build func() (any, error)) (any, error) {
	return c.GetCtx(nil, "", key, func(*obs.Ctx) (any, error) { return build() })
}

// GetCtx is Get with observability: each lookup opens a span named
// "cache.get" (labelled with what artifact is being fetched and the short
// key) whose outcome attribute records how it was served — "hit" for a
// decoded in-memory artifact, "disk" for a blob decoded from the store,
// "wait" for joining an in-flight build (the singleflight path), "miss"
// for running the build, "error" for a failed build. The same outcomes
// feed the store.<kind>.<outcome> counters — since bench-JSON schema v5
// those are the ONLY counter names; the pre-unification
// cache.*/ircache.* aliases are gone. The build function receives the
// child context, so everything it compiles or links nests under the
// lookup.
func (c *Cache) GetCtx(ctx *obs.Ctx, what string, key Key, build func(*obs.Ctx) (any, error)) (any, error) {
	var sp *obs.Span
	bctx := ctx
	if ctx.Enabled() {
		bctx, sp = ctx.Start("cache.get",
			obs.String("artifact", what), obs.String("key", key.Short()))
	}
	outcome := func(o string) {
		sp.SetAttr(obs.String("outcome", o))
		sp.End()
		ctx.Count("store."+c.kind+"."+o, 1)
	}

	if v, ok := c.frontGet(key); ok {
		c.hits.Add(1)
		outcome("hit")
		return v, nil
	}

	// No decoded value: join the in-flight build for this key if one
	// exists, else register ours.
	flightMu.Lock()
	if f, ok := flights[key]; ok {
		flightMu.Unlock()
		<-f.done
		if f.err != nil {
			outcome("error")
			return f.val, f.err
		}
		c.frontPut(key, f.val)
		c.hits.Add(1)
		outcome("wait")
		return f.val, nil
	}
	f := &flight{done: make(chan struct{})}
	flights[key] = f
	flightMu.Unlock()

	// Double-check the front: a build may have completed between the
	// front miss and the flight registration.
	if v, ok := c.frontGet(key); ok {
		f.val = v
		unregisterFlight(key, f)
		close(f.done)
		c.hits.Add(1)
		outcome("hit")
		return v, nil
	}

	// Layer two: a codec-equipped kind checks the process-wide store
	// and decodes the blob instead of building.
	if c.codec != nil {
		if s := ActiveStore(); s != nil {
			if blob, ok, _ := s.Get(bctx, key); ok {
				if v, err := c.codec.Unmarshal(blob); err == nil {
					c.frontPut(key, v)
					f.val = v
					unregisterFlight(key, f)
					close(f.done)
					c.diskHits.Add(1)
					outcome("disk")
					return v, nil
				}
				// Undecodable blob (a codec from another era): fall
				// through to a rebuild; the Put below replaces it.
			}
		}
	}

	c.misses.Add(1)
	f.val, f.err = build(bctx)
	if f.err != nil {
		// Unlatch before waking waiters: any Get arriving after close
		// must find the key absent and retry the build.
		unregisterFlight(key, f)
		close(f.done)
		c.errs.Add(1)
		outcome("error")
		return f.val, f.err
	}
	c.frontPut(key, f.val)
	if c.codec != nil {
		if s := ActiveStore(); s != nil {
			// Persistence is best-effort: a full disk must not fail the
			// build that just succeeded.
			if blob, err := c.codec.Marshal(f.val); err == nil {
				s.Put(bctx, key, blob)
			}
		}
	}
	c.builds.Add(1)
	unregisterFlight(key, f)
	close(f.done)
	outcome("miss")
	return f.val, nil
}

func (c *Cache) frontGet(key Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.front[key]
	return v, ok
}

func (c *Cache) frontPut(key Key, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.front == nil {
		c.front = map[Key]any{}
	}
	c.front[key] = v
}

func unregisterFlight(key Key, f *flight) {
	flightMu.Lock()
	if flights[key] == f {
		delete(flights, key)
	}
	flightMu.Unlock()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:     c.hits.Load(),
		DiskHits: c.diskHits.Load(),
		Misses:   c.misses.Load(),
		Builds:   c.builds.Load(),
		Errors:   c.errs.Load(),
	}
}

// Len reports the number of decoded in-memory artifacts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.front)
}

// Reset drops cached state and zeroes the counters. ScopeMemory clears
// the decoded values only — what a fresh process sees against a warm
// cache directory; ScopeAll also clears the process-wide store (all
// kinds: the store is shared). Intended for tests and cold-start
// benchmarks; in-flight builds complete but are not re-registered.
func (c *Cache) Reset(scope Scope) {
	c.mu.Lock()
	c.front = nil
	c.mu.Unlock()
	c.hits.Store(0)
	c.diskHits.Store(0)
	c.misses.Store(0)
	c.builds.Store(0)
	c.errs.Store(0)
	if scope == ScopeAll {
		if s := ActiveStore(); s != nil {
			s.Clear()
		}
	}
}

// Memo is the typed convenience wrapper over Get.
func Memo[T any](c *Cache, key Key, build func() (T, error)) (T, error) {
	return MemoCtx(nil, c, "", key, func(*obs.Ctx) (T, error) { return build() })
}

// MemoCtx is the typed convenience wrapper over GetCtx.
func MemoCtx[T any](ctx *obs.Ctx, c *Cache, what string, key Key, build func(*obs.Ctx) (T, error)) (T, error) {
	v, err := c.GetCtx(ctx, what, key, func(bctx *obs.Ctx) (any, error) { return build(bctx) })
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}
