// Package build provides the content-addressed artifact cache behind the
// staged instrumentation pipeline. The paper's two-step model builds a
// custom tool once and applies it to any number of programs; this cache
// is what makes "once" true in-process: compiled objects, linked analysis
// images, and runtime-library builds are keyed by the SHA-256 of their
// inputs (sources, options, toolchain version) and rebuilt only when any
// input changes.
//
// The cache is safe for concurrent use and deduplicates in-flight builds
// (singleflight): when several workers ask for the same artifact at the
// same time, exactly one runs the build function and the others wait for
// its result. Build errors are returned to every waiter but are NOT
// cached — a later Get with the same key retries the build, so a
// transient failure is never latched.
package build

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"io"
	"sync"
	"sync/atomic"
)

// ToolchainVersion is mixed into every key. Bump it when the code
// generators (cc, asm, link) change in ways that invalidate previously
// built artifacts; within one process it only matters for clarity, but it
// keeps keys honest if the cache is ever persisted.
const ToolchainVersion = "atom-toolchain-1"

// Key is a content address: the SHA-256 of an artifact's inputs.
type Key [sha256.Size]byte

// String renders the key as hex, for diagnostics.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// KeyBuilder accumulates inputs into a Key. Every field is written
// length-prefixed, so concatenation ambiguities ("ab"+"c" vs "a"+"bc")
// cannot collide.
type KeyBuilder struct {
	h hash.Hash
}

// NewKey starts a key of the given kind. The kind and the toolchain
// version are part of the hash, so artifacts of different kinds (or
// toolchains) can never alias.
func NewKey(kind string) *KeyBuilder {
	b := &KeyBuilder{h: sha256.New()}
	return b.String(ToolchainVersion).String(kind)
}

func (b *KeyBuilder) writeLen(n int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	b.h.Write(buf[:])
}

// String mixes a length-prefixed string into the key.
func (b *KeyBuilder) String(s string) *KeyBuilder {
	b.writeLen(len(s))
	io.WriteString(b.h, s)
	return b
}

// Bytes mixes a length-prefixed byte slice into the key.
func (b *KeyBuilder) Bytes(p []byte) *KeyBuilder {
	b.writeLen(len(p))
	b.h.Write(p)
	return b
}

// Int mixes an integer into the key.
func (b *KeyBuilder) Int(v int64) *KeyBuilder {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	b.h.Write(buf[:])
	return b
}

// Bool mixes a boolean into the key.
func (b *KeyBuilder) Bool(v bool) *KeyBuilder {
	if v {
		return b.Int(1)
	}
	return b.Int(0)
}

// Sum finalizes the key.
func (b *KeyBuilder) Sum() Key {
	var k Key
	b.h.Sum(k[:0])
	return k
}

// Stats is a snapshot of cache activity.
type Stats struct {
	Hits   uint64 // Gets served from a completed artifact
	Misses uint64 // Gets that started a build
	Builds uint64 // builds that completed successfully
	Errors uint64 // builds that failed (and were not cached)
}

// Cache is a concurrent, singleflight, content-addressed artifact store.
// The zero value is ready to use.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*entry

	hits   atomic.Uint64
	misses atomic.Uint64
	builds atomic.Uint64
	errs   atomic.Uint64
}

type entry struct {
	done chan struct{}
	val  any
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{} }

// Get returns the artifact for key, running build at most once per key at
// a time. Concurrent Gets for the same key share one build. A failed
// build's error is returned to every caller that observed it, then the
// key is cleared so the next Get retries.
func (c *Cache) Get(key Key, build func() (any, error)) (any, error) {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = map[Key]*entry{}
	}
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.done
		if e.err == nil {
			c.hits.Add(1)
		}
		return e.val, e.err
	}
	e := &entry{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)

	e.val, e.err = build()
	if e.err != nil {
		// Unlatch before waking waiters: any Get arriving after close
		// must find the key absent and retry the build.
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
		c.errs.Add(1)
	} else {
		c.builds.Add(1)
	}
	close(e.done)
	return e.val, e.err
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Builds: c.builds.Load(),
		Errors: c.errs.Load(),
	}
}

// Len reports the number of completed or in-flight artifacts.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Reset drops every artifact and zeroes the counters. Intended for tests
// and cold-start benchmarks; in-flight builds complete but are not
// re-registered.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.entries = nil
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
	c.builds.Store(0)
	c.errs.Store(0)
}

// Memo is the typed convenience wrapper over Get.
func Memo[T any](c *Cache, key Key, build func() (T, error)) (T, error) {
	v, err := c.Get(key, func() (any, error) { return build() })
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}
