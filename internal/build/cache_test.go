package build

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestKeyFieldBoundaries(t *testing.T) {
	a := NewKey("k").String("ab").String("c").Sum()
	b := NewKey("k").String("a").String("bc").Sum()
	if a == b {
		t.Fatal("length prefixing failed: ab|c collides with a|bc")
	}
	if NewKey("k").String("x").Sum() == NewKey("j").String("x").Sum() {
		t.Fatal("kind not mixed into key")
	}
	if NewKey("k").Int(1).Sum() == NewKey("k").Int(2).Sum() {
		t.Fatal("ints not mixed into key")
	}
	if NewKey("k").Sum() != NewKey("k").Sum() {
		t.Fatal("key not deterministic")
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache("test", nil)
	calls := 0
	k1 := NewKey("t").String("one").Sum()
	k2 := NewKey("t").String("two").Sum()
	get := func(k Key) int {
		v, err := Memo(c, k, func() (int, error) { calls++; return calls, nil })
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if get(k1) != 1 || get(k1) != 1 {
		t.Fatal("same key did not return the cached artifact")
	}
	if get(k2) != 2 {
		t.Fatal("distinct key did not build")
	}
	s := c.Stats()
	if s.Misses != 2 || s.Builds != 2 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 2 misses, 2 builds, 1 hit", s)
	}
}

func TestCacheErrorNotLatched(t *testing.T) {
	c := NewCache("test", nil)
	k := NewKey("t").String("flaky").Sum()
	boom := errors.New("transient")
	fail := true
	build := func() (string, error) {
		if fail {
			return "", boom
		}
		return "ok", nil
	}
	if _, err := Memo(c, k, build); !errors.Is(err, boom) {
		t.Fatalf("first build err = %v, want %v", err, boom)
	}
	if _, err := Memo(c, k, build); !errors.Is(err, boom) {
		t.Fatalf("second build err = %v, want %v (retried, still failing)", err, boom)
	}
	fail = false
	v, err := Memo(c, k, build)
	if err != nil || v != "ok" {
		t.Fatalf("after failure cleared: v=%q err=%v, want ok", v, err)
	}
	s := c.Stats()
	if s.Errors != 2 || s.Builds != 1 {
		t.Fatalf("stats = %+v, want 2 errors then 1 build", s)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache("test", nil)
	k := NewKey("t").String("shared").Sum()
	var builds atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	vals := make([]int64, 16)
	for i := range vals {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := Memo(c, k, func() (int64, error) {
				<-release
				return builds.Add(1), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			vals[i] = v
		}(i)
	}
	close(release)
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("build ran %d times, want 1", builds.Load())
	}
	for i, v := range vals {
		if v != 1 {
			t.Fatalf("goroutine %d saw %d, want 1", i, v)
		}
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache("test", nil)
	k := NewKey("t").String("x").Sum()
	n := 0
	build := func() (int, error) { n++; return n, nil }
	Memo(c, k, build)
	c.Reset(ScopeMemory)
	v, _ := Memo(c, k, build)
	if v != 2 {
		t.Fatalf("after Reset got %d, want rebuild (2)", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}
