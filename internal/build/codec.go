package build

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Codec converts a cache's decoded artifact to and from a byte-stable
// blob, the precondition for persisting it through a Store. A Cache with
// a nil codec is memory-only: its artifacts (closures, handles to live
// state) have no wire form, and they transparently skip the disk layer.
//
// Unmarshal must produce a value the cache's consumers can use as a
// drop-in for a freshly built one; version the format inside the blob
// (or mix a version string into the key) so a codec change never decodes
// stale bytes.
type Codec interface {
	Marshal(v any) ([]byte, error)
	Unmarshal(blob []byte) (any, error)
}

// BlobCodec is the identity codec for artifacts that already are
// wire-stable byte slices — the encoded atom-ir/v1 IR blobs.
type BlobCodec struct{}

// Marshal returns the blob itself.
func (BlobCodec) Marshal(v any) ([]byte, error) {
	b, ok := v.([]byte)
	if !ok {
		return nil, fmt.Errorf("build: BlobCodec: %T is not []byte", v)
	}
	return b, nil
}

// Unmarshal returns the blob itself. Consumers must treat it as
// read-only, which IR blobs already are (every lift decodes a private
// Program from the shared blob).
func (BlobCodec) Unmarshal(blob []byte) (any, error) { return blob, nil }

// Enc builds a length-prefixed binary blob for a codec. All integers are
// little-endian fixed width; strings and byte slices carry a u32 length.
// The magic written first is the format version: a Dec over a different
// magic fails immediately, so stale blobs are rebuilt, never misdecoded.
type Enc struct {
	buf bytes.Buffer
}

// NewEnc starts a blob with the given format magic.
func NewEnc(magic string) *Enc {
	e := &Enc{}
	e.buf.WriteString(magic)
	return e
}

// U8 appends a byte.
func (e *Enc) U8(v uint8) { e.buf.WriteByte(v) }

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.buf.Write(b[:])
}

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.buf.Write(b[:])
}

// I64 appends a little-endian int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Str appends a u32 length and the string bytes.
func (e *Enc) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf.WriteString(s)
}

// Blob appends a u32 length and the slice bytes.
func (e *Enc) Blob(p []byte) {
	e.U32(uint32(len(p)))
	e.buf.Write(p)
}

// Bytes returns the finished blob.
func (e *Enc) Bytes() []byte { return e.buf.Bytes() }

// Dec reads a blob written by Enc. It latches the first error: after a
// failure every read returns zero values, and Err reports what went
// wrong, so decode paths read fields straight through and check once.
type Dec struct {
	data []byte
	off  int
	err  error
}

// NewDec opens a blob, checking its format magic.
func NewDec(blob []byte, magic string) *Dec {
	d := &Dec{data: blob}
	if len(blob) < len(magic) || string(blob[:len(magic)]) != magic {
		d.err = fmt.Errorf("build: blob format is not %q", magic)
		return d
	}
	d.off = len(magic)
	return d
}

func (d *Dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("build: truncated blob reading %s at offset %d", what, d.off)
	}
}

// U8 reads a byte.
func (d *Dec) U8() uint8 {
	if d.err != nil || d.off+1 > len(d.data) {
		d.fail("u8")
		return 0
	}
	v := d.data[d.off]
	d.off++
	return v
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	if d.err != nil || d.off+4 > len(d.data) {
		d.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.data[d.off:])
	d.off += 4
	return v
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	if d.err != nil || d.off+8 > len(d.data) {
		d.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.data[d.off:])
	d.off += 8
	return v
}

// I64 reads a little-endian int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Str reads a length-prefixed string.
func (d *Dec) Str() string { return string(d.Blob()) }

// Blob reads a length-prefixed byte slice (aliasing the input).
func (d *Dec) Blob() []byte {
	n := int(d.U32())
	if d.err != nil || n < 0 || d.off+n > len(d.data) {
		d.fail("blob")
		return nil
	}
	p := d.data[d.off : d.off+n]
	d.off += n
	return p
}

// Len reads a u32 element count, bounded by the bytes remaining so a
// corrupt count cannot drive a huge allocation.
func (d *Dec) Len() int {
	n := int(d.U32())
	if d.err == nil && n > len(d.data)-d.off {
		d.fail("count")
		return 0
	}
	return n
}

// Err returns the first decode error, if any.
func (d *Dec) Err() error { return d.err }

// Finish returns the first decode error, also failing if trailing bytes
// remain — a well-formed blob is consumed exactly.
func (d *Dec) Finish() error {
	if d.err == nil && d.off != len(d.data) {
		return fmt.Errorf("build: %d trailing bytes after blob", len(d.data)-d.off)
	}
	return d.err
}
