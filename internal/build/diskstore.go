package build

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"atom/internal/obs"
)

// DiskStore is the persistent Store: content-addressed blobs under a
// cache directory, shared by every process pointed at the same dir.
//
// On-disk layout:
//
//	<dir>/objects/ab/cdef…   blob files, sharded by the first key byte
//	<dir>/journal            append-only index: "put <key> <size>" / "del <key>"
//	<dir>/tmp/               in-flight writes (cleaned at open)
//	<dir>/quarantine/        blobs that failed verification on read
//
// Each blob file is an 8-byte magic, the SHA-256 of the payload, then the
// payload. Writers create the file in tmp/, fsync, and atomically rename
// it into objects/, so a crash at any point leaves either the old state
// or the new state — never a visible partial blob. Readers re-verify the
// payload digest; a mismatch (bit flip, truncation after rename) moves
// the file to quarantine/ and reports a miss, so the caller silently
// rebuilds and re-puts.
//
// The journal exists to make open fast (no directory walk) and to carry
// the LRU clock across processes approximately: entries later in the
// journal are considered more recent. A missing or torn journal is not
// fatal — the index is rebuilt by scanning objects/ — and a Get for a key
// the journal doesn't know still checks the disk, so blobs written by a
// concurrent process are picked up.
type DiskStore struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	index   map[Key]*blobInfo
	seq     uint64 // LRU clock; larger = more recently used
	total   int64  // sum of indexed blob file sizes
	journal *os.File

	hits, misses, puts, corrupt, adopted, evicted atomic.Uint64
}

type blobInfo struct {
	size int64
	seq  uint64
}

// blobMagic begins every blob file; it versions the header layout.
const blobMagic = "atomblb1"

// blobHeaderSize is the magic plus the payload SHA-256.
const blobHeaderSize = len(blobMagic) + sha256.Size

// OpenDiskStore opens (creating if needed) a DiskStore rooted at dir.
// Leftover temp files from crashed writers are removed, and the index is
// loaded from the journal — or rebuilt by scanning objects/ when the
// journal is missing. maxBytes > 0 bounds the resident size via LRU
// eviction on Put; <= 0 means unbounded.
func OpenDiskStore(ctx *obs.Ctx, dir string, maxBytes int64) (*DiskStore, error) {
	_, sp := ctx.Start("store.open", obs.String("dir", dir))
	defer sp.End()

	s := &DiskStore{dir: dir, maxBytes: maxBytes, index: map[Key]*blobInfo{}}
	for _, sub := range []string{"objects", "tmp", "quarantine"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o777); err != nil {
			return nil, fmt.Errorf("diskstore: %w", err)
		}
	}
	// A temp file is an in-flight write that never reached its atomic
	// rename: invisible to readers, safe to discard.
	if ents, err := os.ReadDir(filepath.Join(dir, "tmp")); err == nil {
		for _, e := range ents {
			os.Remove(filepath.Join(dir, "tmp", e.Name()))
		}
	}

	journalPath := filepath.Join(dir, "journal")
	stale, err := s.loadJournal(journalPath)
	if err != nil {
		return nil, err
	}
	if stale < 0 {
		// No journal: rebuild the index by scanning objects/.
		s.scanObjects()
		if err := s.rewriteJournal(journalPath); err != nil {
			return nil, err
		}
	} else if stale > len(s.index)+64 {
		// Mostly-dead journal (long put/del churn): compact it so the
		// next open replays only live entries.
		if err := s.rewriteJournal(journalPath); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(journalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	s.journal = f
	sp.SetAttr(obs.Int("blobs", int64(len(s.index))), obs.Int("bytes", s.total))
	return s, nil
}

// loadJournal replays the journal into the index. It returns the number
// of stale (superseded or deleted) lines, or -1 when no journal exists.
// Malformed lines — a torn tail from a crash mid-append — are skipped.
func (s *DiskStore) loadJournal(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return -1, nil
		}
		return 0, fmt.Errorf("diskstore: %w", err)
	}
	defer f.Close()
	stale := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 4096), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 {
			continue
		}
		key, ok := parseHexKey(fields[1])
		if !ok {
			continue
		}
		switch fields[0] {
		case "put":
			if len(fields) != 3 {
				continue
			}
			size, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil || size < 0 {
				continue
			}
			if old, ok := s.index[key]; ok {
				s.total -= old.size
				stale++
			}
			s.seq++
			s.index[key] = &blobInfo{size: size, seq: s.seq}
			s.total += size
		case "del":
			if old, ok := s.index[key]; ok {
				s.total -= old.size
				delete(s.index, key)
				stale += 2 // the put and the del are both dead
			}
		}
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("diskstore: journal: %w", err)
	}
	return stale, nil
}

// scanObjects rebuilds the index from the objects/ tree.
func (s *DiskStore) scanObjects() {
	root := filepath.Join(s.dir, "objects")
	shards, err := os.ReadDir(root)
	if err != nil {
		return
	}
	for _, shard := range shards {
		if !shard.IsDir() || len(shard.Name()) != 2 {
			continue
		}
		ents, err := os.ReadDir(filepath.Join(root, shard.Name()))
		if err != nil {
			continue
		}
		for _, e := range ents {
			key, ok := parseHexKey(shard.Name() + e.Name())
			if !ok {
				continue
			}
			info, err := e.Info()
			if err != nil {
				continue
			}
			s.seq++
			s.index[key] = &blobInfo{size: info.Size(), seq: s.seq}
			s.total += info.Size()
		}
	}
}

// rewriteJournal replaces the journal with one live "put" line per
// indexed blob, in LRU order so replay reconstructs the clock.
func (s *DiskStore) rewriteJournal(path string) error {
	keys := make([]Key, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return s.index[keys[i]].seq < s.index[keys[j]].seq })
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "put %s %d\n", k.String(), s.index[k].size)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(b.String()), 0o666); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	return nil
}

func parseHexKey(h string) (Key, bool) {
	var k Key
	if len(h) != 2*len(k) {
		return k, false
	}
	raw, err := hex.DecodeString(h)
	if err != nil {
		return k, false
	}
	copy(k[:], raw)
	return k, true
}

// blobPath returns the sharded object path for key.
func (s *DiskStore) blobPath(key Key) string {
	h := key.String()
	return filepath.Join(s.dir, "objects", h[:2], h[2:])
}

// journalLine appends a line and syncs. The caller holds s.mu.
func (s *DiskStore) journalLine(line string) {
	if s.journal == nil {
		return
	}
	// Journal failures are deliberately non-fatal: the journal is an
	// index accelerator, and open rebuilds it from objects/ if needed.
	if _, err := s.journal.WriteString(line); err == nil {
		s.journal.Sync()
	}
}

// Get returns the blob for key, verifying its payload digest. Corrupt
// blobs are quarantined and reported as misses, so the caller rebuilds.
// Keys absent from the index still check the disk: another process
// sharing the directory may have written the blob after we opened.
func (s *DiskStore) Get(ctx *obs.Ctx, key Key) ([]byte, bool, error) {
	_, sp := ctx.Start("store.get", obs.String("key", key.Short()))
	defer sp.End()

	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.blobPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		if info, ok := s.index[key]; ok {
			// Journal said present but the file is gone (external
			// cleanup): drop the entry.
			s.total -= info.size
			delete(s.index, key)
			s.journalLine("del " + key.String() + "\n")
		}
		s.misses.Add(1)
		ctx.Count("store.disk.miss", 1)
		sp.SetAttr(obs.String("outcome", "miss"))
		return nil, false, nil
	}
	payload, verr := verifyBlobFile(data)
	if verr != nil {
		s.quarantineLocked(ctx, key, path)
		s.misses.Add(1)
		ctx.Count("store.disk.miss", 1)
		sp.SetAttr(obs.String("outcome", "corrupt"))
		return nil, false, nil
	}
	s.seq++
	if info, ok := s.index[key]; ok {
		info.seq = s.seq
	} else {
		// Cross-process pickup: adopt the blob into our index. The
		// adoption is reported as an event of its own — it is the
		// observable signature of another process sharing the store.
		s.index[key] = &blobInfo{size: int64(len(data)), seq: s.seq}
		s.total += int64(len(data))
		s.journalLine(fmt.Sprintf("put %s %d\n", key.String(), len(data)))
		s.adopted.Add(1)
		ctx.Count("store.disk.adopt", 1)
		sp.SetAttr(obs.Bool("adopted", true))
	}
	s.hits.Add(1)
	ctx.Count("store.disk.hit", 1)
	sp.SetAttr(obs.String("outcome", "hit"), obs.Int("bytes", int64(len(payload))))
	return payload, true, nil
}

// verifyBlobFile checks the magic and payload digest of a raw blob file
// and returns the payload.
func verifyBlobFile(data []byte) ([]byte, error) {
	if len(data) < blobHeaderSize || string(data[:len(blobMagic)]) != blobMagic {
		return nil, fmt.Errorf("diskstore: bad blob header")
	}
	payload := data[blobHeaderSize:]
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(data[len(blobMagic):blobHeaderSize]) {
		return nil, fmt.Errorf("diskstore: blob digest mismatch")
	}
	return payload, nil
}

// quarantineLocked moves a corrupt blob file aside and drops it from the
// index. The caller holds s.mu.
func (s *DiskStore) quarantineLocked(ctx *obs.Ctx, key Key, path string) {
	dst := filepath.Join(s.dir, "quarantine", key.String())
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path) // can't move it aside; at least unlatch the key
	}
	if info, ok := s.index[key]; ok {
		s.total -= info.size
		delete(s.index, key)
	}
	s.journalLine("del " + key.String() + "\n")
	s.corrupt.Add(1)
	ctx.Count("store.disk.corrupt", 1)
}

// Put writes blob under key via write-to-temp, fsync, atomic rename. An
// already-present key is a no-op (content addressing: the bytes are
// identical by construction). When the store is size-bounded, Put evicts
// least-recently-used blobs until back under the bound.
func (s *DiskStore) Put(ctx *obs.Ctx, key Key, blob []byte) error {
	_, sp := ctx.Start("store.put",
		obs.String("key", key.Short()), obs.Int("bytes", int64(len(blob))))
	defer sp.End()

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; ok {
		sp.SetAttr(obs.String("outcome", "present"))
		return nil
	}

	sum := sha256.Sum256(blob)
	data := make([]byte, 0, blobHeaderSize+len(blob))
	data = append(data, blobMagic...)
	data = append(data, sum[:]...)
	data = append(data, blob...)

	tmp, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), "blob-*")
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("diskstore: %w", err)
	}
	path := s.blobPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("diskstore: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("diskstore: %w", err)
	}

	s.seq++
	s.index[key] = &blobInfo{size: int64(len(data)), seq: s.seq}
	s.total += int64(len(data))
	s.journalLine(fmt.Sprintf("put %s %d\n", key.String(), len(data)))
	s.puts.Add(1)
	ctx.Count("store.disk.put", 1)
	sp.SetAttr(obs.String("outcome", "stored"))
	s.pruneLocked(ctx)
	return nil
}

// pruneLocked evicts least-recently-used blobs until the resident size is
// under maxBytes. The most recent blob is never evicted, so a Put always
// sticks. The caller holds s.mu.
func (s *DiskStore) pruneLocked(ctx *obs.Ctx) {
	if s.maxBytes <= 0 {
		return
	}
	for s.total > s.maxBytes && len(s.index) > 1 {
		var victim Key
		var vinfo *blobInfo
		for k, info := range s.index {
			if vinfo == nil || info.seq < vinfo.seq {
				victim, vinfo = k, info
			}
		}
		os.Remove(s.blobPath(victim))
		s.total -= vinfo.size
		delete(s.index, victim)
		s.journalLine("del " + victim.String() + "\n")
		s.evicted.Add(1)
		ctx.Count("store.disk.evict", 1)
	}
}

// Has reports whether key is indexed. (A blob written by a concurrent
// process after open may exist on disk without being indexed yet; Get
// still finds it.)
func (s *DiskStore) Has(key Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Clear removes every blob and truncates the journal.
func (s *DiskStore) Clear() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for k := range s.index {
		if err := os.Remove(s.blobPath(k)); err != nil && first == nil && !os.IsNotExist(err) {
			first = err
		}
	}
	s.index = map[Key]*blobInfo{}
	s.total = 0
	if s.journal != nil {
		if err := s.journal.Truncate(0); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats returns a snapshot of the counters.
func (s *DiskStore) Stats() StoreStats {
	s.mu.Lock()
	blobs, bytes := len(s.index), s.total
	s.mu.Unlock()
	return StoreStats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Puts:    s.puts.Load(),
		Corrupt: s.corrupt.Load(),
		Adopted: s.adopted.Load(),
		Evicted: s.evicted.Load(),
		Blobs:   blobs,
		Bytes:   bytes,
	}
}

// Close syncs and closes the journal. The store must not be used after.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	err := s.journal.Sync()
	if cerr := s.journal.Close(); err == nil {
		err = cerr
	}
	s.journal = nil
	return err
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }
