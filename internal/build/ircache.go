package build

import "atom/internal/obs"

// The IR-blob cache: encoded OM IR (atom-ir/v1 blobs), content-addressed
// by (executable digest, format version, lifter version). It sits beside
// the tool-image cache and serves the same cost model from the other
// side: the image cache makes "build the tool once" true, this cache
// makes "lift the application once" true — a suite run, or repeated
// Instrument/Apply calls against the same executable, pay for exactly
// one lift and decode cheap blobs thereafter. The cache stores BLOBS,
// not Programs: instrumentation mutates a Program (actions are attached
// to its instructions), so every consumer decodes a fresh, private copy.
//
// Because the blobs are already wire-stable, the identity BlobCodec
// persists them through the configured Store unchanged: with a cache
// directory set, a second process skips the lift entirely.
//
// This package stays IR-agnostic — keys and blobs are opaque here; the
// digesting and the encode/decode live with their types (internal/core,
// internal/om). Lookups run under the usual "cache.get" span but count
// through the "store.ir.*" counters, so -metrics and bench JSON report
// IR-cache traffic separately from tool-image traffic.
var irCache = NewCache("ir", BlobCodec{})

// IRKey derives the content address of an encoded IR blob from the
// executable's digest and the format/lifter versions. Any of the three
// changing yields a different key, so stale blobs are never served.
func IRKey(exeDigest Key, format, lifter string) Key {
	return NewKey("ir").Bytes(exeDigest[:]).String(format).String(lifter).Sum()
}

// IRBlob returns the cached encoded IR blob for key, running lift at
// most once per key (singleflight: concurrent callers share one lift).
func IRBlob(key Key, lift func() ([]byte, error)) ([]byte, error) {
	return IRBlobCtx(nil, key, func(*obs.Ctx) ([]byte, error) { return lift() })
}

// IRBlobCtx is IRBlob with a stage context; the lift function receives
// the lookup's child context, so the om.build/om.encode spans of a cold
// lift nest under its cache.get span.
func IRBlobCtx(ctx *obs.Ctx, key Key, lift func(*obs.Ctx) ([]byte, error)) ([]byte, error) {
	return MemoCtx(ctx, irCache, "ir", key, lift)
}

// IRCacheStats reports IR-blob cache activity (hits, disk hits, misses,
// builds, errors) since the last reset.
func IRCacheStats() Stats { return irCache.Stats() }

// ResetIRCache drops cached blobs per scope and zeroes the counters.
// Tests and cold-start benchmarks use it.
func ResetIRCache(scope Scope) { irCache.Reset(scope) }
