package build

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"atom/internal/obs"
)

func TestIRKeyDistinct(t *testing.T) {
	var d1, d2 Key
	d2[0] = 1
	base := IRKey(d1, "atom-ir/v1", "om-lifter-1")
	for name, other := range map[string]Key{
		"different executable": IRKey(d2, "atom-ir/v1", "om-lifter-1"),
		"different format":     IRKey(d1, "atom-ir/v2", "om-lifter-1"),
		"different lifter":     IRKey(d1, "atom-ir/v1", "om-lifter-2"),
	} {
		if other == base {
			t.Errorf("%s: key collides with base", name)
		}
	}
	if IRKey(d1, "atom-ir/v1", "om-lifter-1") != base {
		t.Error("identical inputs produce different keys")
	}
}

func TestIRBlobCachesAndDedups(t *testing.T) {
	ResetIRCache(ScopeMemory)
	defer ResetIRCache(ScopeMemory)

	key := NewKey("ir-test").Sum()
	var lifts int
	var mu sync.Mutex
	lift := func() ([]byte, error) {
		mu.Lock()
		lifts++
		mu.Unlock()
		return []byte("blob"), nil
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			blob, err := IRBlob(key, lift)
			if err != nil {
				t.Errorf("IRBlob: %v", err)
			}
			if !bytes.Equal(blob, []byte("blob")) {
				t.Errorf("IRBlob = %q", blob)
			}
		}()
	}
	wg.Wait()
	if lifts != 1 {
		t.Fatalf("lift ran %d times for one key, want 1 (singleflight)", lifts)
	}
	s := IRCacheStats()
	if s.Builds != 1 || s.Misses != 1 || s.Hits != 7 {
		t.Fatalf("stats = %+v, want 1 build, 1 miss, 7 hits", s)
	}

	ResetIRCache(ScopeMemory)
	if s := IRCacheStats(); s != (Stats{}) {
		t.Fatalf("stats after reset = %+v, want zeros", s)
	}
}

// TestIRCacheCounters: lookups count under the "store.ir." prefix, so
// -metrics and bench JSON distinguish IR-cache traffic from the
// tool-image cache's "store.image." counters.
func TestIRCacheCounters(t *testing.T) {
	ResetIRCache(ScopeMemory)
	defer ResetIRCache(ScopeMemory)

	ctx := obs.New()
	key := NewKey("ir-counter-test").Sum()
	lift := func(*obs.Ctx) ([]byte, error) { return []byte("x"), nil }
	for i := 0; i < 3; i++ {
		if _, err := IRBlobCtx(ctx, key, lift); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]int64{}
	for _, c := range ctx.Counters() {
		got[c.Name] = c.Value
	}
	if got["store.ir.miss"] != 1 || got["store.ir.hit"] != 2 {
		t.Fatalf("counters = %v, want store.ir.miss=1 store.ir.hit=2", got)
	}
	if got["store.image.miss"] != 0 || got["store.image.hit"] != 0 {
		t.Fatalf("IR lookups leaked into the image cache counters: %v", got)
	}
	for name := range got {
		if strings.HasPrefix(name, "ircache.") || strings.HasPrefix(name, "cache.") {
			t.Fatalf("legacy alias counter %q emitted; store.<kind>.* is the only name since schema v5", name)
		}
	}
}
