package build

import (
	"sync"
	"sync/atomic"

	"atom/internal/obs"
)

// Store is a content-addressed blob store: the persistence seam under the
// artifact caches. A Cache keeps decoded values in memory and, when it
// has a Codec for its kind, mirrors the encoded bytes through the
// process-wide store configured with SetCacheDir/SwapStore. Keys are full
// content addresses (kind + toolchain version + inputs), so one store can
// safely hold blobs of every kind.
//
// Implementations must be safe for concurrent use. Get returns
// (nil, false, nil) for absent blobs; an error means the store itself
// failed, not that the blob is missing.
type Store interface {
	Get(ctx *obs.Ctx, key Key) ([]byte, bool, error)
	Put(ctx *obs.Ctx, key Key, blob []byte) error
	Has(key Key) bool
	Clear() error
	Stats() StoreStats
	Close() error
}

// StoreStats is a snapshot of store activity since open.
type StoreStats struct {
	Hits    uint64 // Gets that returned a blob
	Misses  uint64 // Gets for absent blobs
	Puts    uint64 // blobs written
	Corrupt uint64 // blobs that failed verification and were quarantined
	Adopted uint64 // blobs written by a concurrent process and picked up on Get
	Evicted uint64 // blobs removed by the size-bounded prune
	Blobs   int    // blobs currently resident
	Bytes   int64  // approximate resident size (blob files, with headers)
}

// Scope selects how much cached state a Reset clears.
type Scope int

const (
	// ScopeMemory clears in-memory decoded values and counters only;
	// blobs in a configured persistent store survive. This is what a
	// fresh process looks like against a warm cache directory.
	ScopeMemory Scope = iota
	// ScopeAll additionally clears the configured shared store. Because
	// every artifact kind shares one store, this empties the whole
	// store, not just the resetting cache's kind.
	ScopeAll
)

// MemStore is the in-memory Store: a mutex-guarded blob map. It backs
// tests and callers that want store semantics without a cache directory.
// Blobs are copied on Put and Get, so callers can never alias the
// store's buffers.
type MemStore struct {
	mu    sync.Mutex
	blobs map[Key][]byte
	bytes int64

	hits, misses, puts atomic.Uint64
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// Get returns a copy of the blob for key, if present.
func (s *MemStore) Get(ctx *obs.Ctx, key Key) ([]byte, bool, error) {
	s.mu.Lock()
	blob, ok := s.blobs[key]
	s.mu.Unlock()
	if !ok {
		s.misses.Add(1)
		ctx.Count("store.mem.miss", 1)
		return nil, false, nil
	}
	s.hits.Add(1)
	ctx.Count("store.mem.hit", 1)
	return append([]byte(nil), blob...), true, nil
}

// Put stores a copy of blob under key. Re-putting an existing key is a
// no-op: content addressing makes the bytes identical by construction.
func (s *MemStore) Put(ctx *obs.Ctx, key Key, blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[key]; ok {
		return nil
	}
	if s.blobs == nil {
		s.blobs = map[Key][]byte{}
	}
	s.blobs[key] = append([]byte(nil), blob...)
	s.bytes += int64(len(blob))
	s.puts.Add(1)
	ctx.Count("store.mem.put", 1)
	return nil
}

// Has reports whether key is present.
func (s *MemStore) Has(key Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.blobs[key]
	return ok
}

// Clear drops every blob. Counters are kept (they count activity, not
// contents).
func (s *MemStore) Clear() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs = nil
	s.bytes = 0
	return nil
}

// Stats returns a snapshot of the counters.
func (s *MemStore) Stats() StoreStats {
	s.mu.Lock()
	blobs, bytes := len(s.blobs), s.bytes
	s.mu.Unlock()
	return StoreStats{
		Hits:   s.hits.Load(),
		Misses: s.misses.Load(),
		Puts:   s.puts.Load(),
		Blobs:  blobs,
		Bytes:  bytes,
	}
}

// Close is a no-op for the in-memory store.
func (s *MemStore) Close() error { return nil }

// The process-wide store every codec-equipped Cache layers over. nil (the
// default) means memory-only: nothing in this package ever reads
// ATOM_CACHE_DIR or touches the filesystem unless a caller explicitly
// configures a store, so tests that assume a cold cache cannot be
// poisoned by a developer's environment.
var (
	storeMu     sync.Mutex
	activeStore Store
)

// ActiveStore returns the configured process-wide store, or nil.
func ActiveStore() Store {
	storeMu.Lock()
	defer storeMu.Unlock()
	return activeStore
}

// SwapStore installs s as the process-wide store and returns the previous
// one (which the caller now owns — Close it if it should be retired).
// Tests and the Fig5 harness use the swap-in/swap-out pattern to measure
// disk-warm paths without leaking state.
func SwapStore(s Store) Store {
	storeMu.Lock()
	defer storeMu.Unlock()
	prev := activeStore
	activeStore = s
	return prev
}

// SetCacheDir opens (creating if needed) a persistent DiskStore rooted at
// dir and installs it as the process-wide store, closing any previous
// one. maxBytes > 0 bounds the store: Puts that push the resident size
// over the bound evict least-recently-used blobs. maxBytes <= 0 means
// unbounded.
func SetCacheDir(ctx *obs.Ctx, dir string, maxBytes int64) error {
	s, err := OpenDiskStore(ctx, dir, maxBytes)
	if err != nil {
		return err
	}
	if prev := SwapStore(s); prev != nil {
		prev.Close()
	}
	return nil
}

// CloseStore retires the process-wide store, if any, and returns its
// Close error. Subsequent cache traffic is memory-only.
func CloseStore() error {
	if s := SwapStore(nil); s != nil {
		return s.Close()
	}
	return nil
}
