package build

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"atom/internal/obs"
)

func testKey(s string) Key { return NewKey("store-test").String(s).Sum() }

// withTestStore installs a fresh DiskStore in a temp dir as the
// process-wide store and undoes everything on cleanup.
func withTestStore(t *testing.T, maxBytes int64) *DiskStore {
	t.Helper()
	ds, err := OpenDiskStore(nil, t.TempDir(), maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	prev := SwapStore(ds)
	t.Cleanup(func() {
		SwapStore(prev)
		ds.Close()
	})
	return ds
}

func TestMemStoreBasics(t *testing.T) {
	s := NewMemStore()
	k := testKey("mem")
	if _, ok, _ := s.Get(nil, k); ok {
		t.Fatal("empty store reported a hit")
	}
	blob := []byte("payload")
	if err := s.Put(nil, k, blob); err != nil {
		t.Fatal(err)
	}
	blob[0] = 'X' // the store must have copied on Put
	got, ok, err := s.Get(nil, k)
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v after Put", ok, err)
	}
	if !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("Get = %q, want %q (aliasing caller buffer?)", got, "payload")
	}
	got[0] = 'Y' // and on Get
	again, _, _ := s.Get(nil, k)
	if !bytes.Equal(again, []byte("payload")) {
		t.Fatal("mutating a returned blob changed the store")
	}
	if !s.Has(k) || s.Has(testKey("other")) {
		t.Fatal("Has wrong")
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Puts != 1 || st.Blobs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := s.Clear(); err != nil {
		t.Fatal(err)
	}
	if s.Has(k) {
		t.Fatal("Has after Clear")
	}
}

func TestDiskStorePutGetReopen(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDiskStore(nil, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := testKey("one"), testKey("two")
	if err := ds.Put(nil, k1, []byte("first blob")); err != nil {
		t.Fatal(err)
	}
	if err := ds.Put(nil, k2, []byte("second blob")); err != nil {
		t.Fatal(err)
	}
	// Re-putting an indexed key is a no-op.
	if err := ds.Put(nil, k1, []byte("first blob")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ds.Get(nil, k1)
	if err != nil || !ok || !bytes.Equal(got, []byte("first blob")) {
		t.Fatalf("Get(k1) = %q, %v, %v", got, ok, err)
	}
	if st := ds.Stats(); st.Puts != 2 || st.Blobs != 2 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 2 puts, 2 blobs, 1 hit", st)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	// A second open replays the journal: both blobs indexed, readable.
	ds2, err := OpenDiskStore(nil, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	if !ds2.Has(k1) || !ds2.Has(k2) {
		t.Fatal("reopened store lost blobs")
	}
	got, ok, _ = ds2.Get(nil, k2)
	if !ok || !bytes.Equal(got, []byte("second blob")) {
		t.Fatalf("reopened Get(k2) = %q, %v", got, ok)
	}
}

func TestDiskStoreRebuildsIndexWithoutJournal(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDiskStore(nil, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("scan")
	if err := ds.Put(nil, k, []byte("blob")); err != nil {
		t.Fatal(err)
	}
	ds.Close()
	if err := os.Remove(filepath.Join(dir, "journal")); err != nil {
		t.Fatal(err)
	}

	ds2, err := OpenDiskStore(nil, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	if !ds2.Has(k) {
		t.Fatal("objects/ scan did not rebuild the index")
	}
	if _, err := os.Stat(filepath.Join(dir, "journal")); err != nil {
		t.Fatalf("journal not rewritten after scan: %v", err)
	}
}

// corruptOneBlob flips a payload byte of the single blob under objects/
// and returns its path.
func corruptOneBlob(t *testing.T, dir string) string {
	t.Helper()
	var path string
	err := filepath.Walk(filepath.Join(dir, "objects"), func(p string, info os.FileInfo, err error) error {
		if err == nil && info != nil && !info.IsDir() {
			path = p
		}
		return err
	})
	if err != nil || path == "" {
		t.Fatalf("no blob file found: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiskStoreCorruptBlobQuarantined(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDiskStore(nil, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	k := testKey("corrupt")
	if err := ds.Put(nil, k, []byte("soon to rot")); err != nil {
		t.Fatal(err)
	}
	corruptOneBlob(t, dir)

	ctx := obs.New()
	if _, ok, err := ds.Get(ctx, k); ok || err != nil {
		t.Fatalf("Get of corrupt blob = %v, %v; want miss, nil", ok, err)
	}
	st := ds.Stats()
	if st.Corrupt != 1 || st.Blobs != 0 {
		t.Fatalf("stats = %+v, want 1 corrupt, 0 blobs", st)
	}
	var sawCounter bool
	for _, c := range ctx.Counters() {
		if c.Name == "store.disk.corrupt" && c.Value == 1 {
			sawCounter = true
		}
	}
	if !sawCounter {
		t.Fatalf("store.disk.corrupt not counted: %v", ctx.Counters())
	}
	// The bad file moved to quarantine/, so a re-put sticks and reads back.
	ents, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("quarantine/ has %d entries (err %v), want 1", len(ents), err)
	}
	if err := ds.Put(nil, k, []byte("soon to rot")); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := ds.Get(nil, k)
	if !ok || !bytes.Equal(got, []byte("soon to rot")) {
		t.Fatalf("rebuilt blob unreadable: %q, %v", got, ok)
	}
}

func TestDiskStoreTruncatedBlobQuarantined(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDiskStore(nil, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	k := testKey("truncated")
	if err := ds.Put(nil, k, []byte("a blob long enough to truncate meaningfully")); err != nil {
		t.Fatal(err)
	}
	path := ds.blobPath(k)
	if err := os.Truncate(path, int64(blobHeaderSize+3)); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := ds.Get(nil, k); ok || err != nil {
		t.Fatalf("Get of truncated blob = %v, %v; want miss, nil", ok, err)
	}
	if st := ds.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats = %+v, want 1 corrupt", st)
	}
}

// TestDiskStoreCrashBeforeRename simulates a writer killed between the
// temp write and the atomic rename: the leftover temp file must never be
// visible as a blob, and the next open sweeps it away.
func TestDiskStoreCrashBeforeRename(t *testing.T) {
	dir := t.TempDir()
	ds, err := OpenDiskStore(nil, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey("crashed")
	// What Put writes before the rename, dropped mid-flight.
	partial := append([]byte(blobMagic), []byte("partial-write-no-digest")...)
	if err := os.WriteFile(filepath.Join(dir, "tmp", "blob-crashed"), partial, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := ds.Get(nil, k); ok {
		t.Fatal("in-flight temp file visible as a blob")
	}
	if st := ds.Stats(); st.Blobs != 0 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v, want empty store, no corruption", st)
	}
	ds.Close()

	ds2, err := OpenDiskStore(nil, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	ents, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil || len(ents) != 0 {
		t.Fatalf("tmp/ has %d leftovers after reopen (err %v), want 0", len(ents), err)
	}
}

func TestDiskStorePruneLRU(t *testing.T) {
	dir := t.TempDir()
	blob := bytes.Repeat([]byte("x"), 100)
	// Each blob file is header + 100 bytes; allow roughly two.
	ds, err := OpenDiskStore(nil, dir, 2*int64(blobHeaderSize+100))
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	k1, k2, k3 := testKey("lru1"), testKey("lru2"), testKey("lru3")
	for _, k := range []Key{k1, k2, k3} {
		if err := ds.Put(nil, k, blob); err != nil {
			t.Fatal(err)
		}
	}
	st := ds.Stats()
	if st.Evicted != 1 || st.Blobs != 2 {
		t.Fatalf("stats = %+v, want 1 evicted, 2 resident", st)
	}
	if ds.Has(k1) {
		t.Fatal("oldest blob survived the prune")
	}
	if !ds.Has(k2) || !ds.Has(k3) {
		t.Fatal("recent blobs were evicted")
	}
	// Touch k2 so k3 becomes the LRU victim of the next Put.
	if _, ok, _ := ds.Get(nil, k2); !ok {
		t.Fatal("Get(k2)")
	}
	if err := ds.Put(nil, testKey("lru4"), blob); err != nil {
		t.Fatal(err)
	}
	if ds.Has(k3) || !ds.Has(k2) {
		t.Fatal("prune did not follow the Get-refreshed LRU order")
	}
}

// TestTwinCachesShareStoreAndFlight: two Cache instances of the same kind
// layered over one DiskStore — the cross-process sharing model squeezed
// into one process. Concurrent Gets across both instances run the build
// exactly once (the singleflight table is keyed by content address, not
// by instance), and a later Get on the instance that did not build is
// served by the store, not a rebuild.
func TestTwinCachesShareStoreAndFlight(t *testing.T) {
	ds := withTestStore(t, 0)
	a := NewCache("twin", BlobCodec{})
	b := NewCache("twin", BlobCodec{})
	key := testKey("twin-artifact")

	var mu sync.Mutex
	builds := 0
	gate := make(chan struct{})
	build := func() (any, error) {
		mu.Lock()
		builds++
		mu.Unlock()
		<-gate // hold every concurrent Get in the flight
		return []byte("built once"), nil
	}

	var wg sync.WaitGroup
	results := make([][]byte, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := a
			if i%2 == 1 {
				c = b
			}
			v, err := c.Get(key, build)
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			results[i] = v.([]byte)
		}(i)
	}
	close(gate)
	wg.Wait()
	if builds != 1 {
		t.Fatalf("build ran %d times across twin caches, want 1", builds)
	}
	for i, r := range results {
		if !bytes.Equal(r, []byte("built once")) {
			t.Fatalf("goroutine %d got %q", i, r)
		}
	}
	if !ds.Has(key) {
		t.Fatal("built artifact not persisted to the shared store")
	}

	// Drop both memory layers: the next Get decodes from disk, no build.
	a.Reset(ScopeMemory)
	b.Reset(ScopeMemory)
	v, err := b.Get(key, func() (any, error) {
		t.Error("rebuild ran despite a warm store")
		return nil, nil
	})
	if err != nil || !bytes.Equal(v.([]byte), []byte("built once")) {
		t.Fatalf("disk-layer Get = %v, %v", v, err)
	}
	if st := b.Stats(); st.DiskHits != 1 || st.Builds != 0 {
		t.Fatalf("stats = %+v, want 1 disk hit, 0 builds", st)
	}
}

// TestCacheRebuildsCorruptStoreBlob: end-to-end over the layered cache —
// a bit-flipped blob under the store must be quarantined and transparently
// rebuilt, with no error surfacing to the caller.
func TestCacheRebuildsCorruptStoreBlob(t *testing.T) {
	ds := withTestStore(t, 0)
	c := NewCache("twin", BlobCodec{})
	key := testKey("rot")
	builds := 0
	build := func() (any, error) { builds++; return []byte("artifact"), nil }

	if _, err := c.Get(key, build); err != nil {
		t.Fatal(err)
	}
	corruptOneBlob(t, ds.Dir())
	c.Reset(ScopeMemory) // force the next Get through the store

	v, err := c.Get(key, build)
	if err != nil || !bytes.Equal(v.([]byte), []byte("artifact")) {
		t.Fatalf("Get after corruption = %v, %v", v, err)
	}
	if builds != 2 {
		t.Fatalf("builds = %d, want 2 (initial + silent rebuild)", builds)
	}
	if st := ds.Stats(); st.Corrupt != 1 || st.Puts != 2 {
		t.Fatalf("store stats = %+v, want 1 corrupt, 2 puts", st)
	}
	// The rebuilt blob is good again: a third Get is a pure disk hit.
	c.Reset(ScopeMemory)
	if _, err := c.Get(key, build); err != nil {
		t.Fatal(err)
	}
	if builds != 2 {
		t.Fatalf("builds = %d after rebuild, want still 2", builds)
	}
}

func TestResetScopeAllClearsStore(t *testing.T) {
	ds := withTestStore(t, 0)
	c := NewCache("twin", BlobCodec{})
	key := testKey("scoped")
	if _, err := c.Get(key, func() (any, error) { return []byte("v"), nil }); err != nil {
		t.Fatal(err)
	}
	if !ds.Has(key) {
		t.Fatal("artifact not persisted")
	}
	c.Reset(ScopeMemory)
	if !ds.Has(key) {
		t.Fatal("ScopeMemory reset reached into the store")
	}
	c.Reset(ScopeAll)
	if ds.Has(key) {
		t.Fatal("ScopeAll reset left the store populated")
	}
}

// TestEnvVarNeverReadByLibrary guards the test-isolation contract: the
// build package must not pick up ATOM_CACHE_DIR on its own — only the
// atom CLI turns the env var into a -cache-dir default. A developer
// running tests with the variable exported must still get memory-only
// caches and an untouched cache directory.
func TestEnvVarNeverReadByLibrary(t *testing.T) {
	if ActiveStore() != nil {
		t.Skip("a store is configured; isolation contract not checkable")
	}
	dir := t.TempDir()
	t.Setenv("ATOM_CACHE_DIR", dir)

	c := NewCache("twin", BlobCodec{})
	if _, err := c.Get(testKey("env"), func() (any, error) { return []byte("v"), nil }); err != nil {
		t.Fatal(err)
	}
	if ActiveStore() != nil {
		t.Fatal("a store appeared from the environment")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("library wrote %d entries into $ATOM_CACHE_DIR", len(ents))
	}
}

func BenchmarkDiskStorePut(b *testing.B) {
	ds, err := OpenDiskStore(nil, b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	defer ds.Close()
	blob := bytes.Repeat([]byte("atom"), 4<<10) // 16 KiB, a typical IR blob
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := NewKey("bench-put").Int(int64(i)).Sum()
		if err := ds.Put(nil, k, blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiskStoreGet(b *testing.B) {
	ds, err := OpenDiskStore(nil, b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	defer ds.Close()
	blob := bytes.Repeat([]byte("atom"), 4<<10)
	const resident = 64
	keys := make([]Key, resident)
	for i := range keys {
		keys[i] = NewKey("bench-get").Int(int64(i)).Sum()
		if err := ds.Put(nil, keys[i], blob); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := ds.Get(nil, keys[i%resident]); !ok || err != nil {
			b.Fatalf("Get = %v, %v", ok, err)
		}
	}
}

// TestDiskStoreAdoption: two DiskStore handles over one directory stand
// in for two processes sharing a cache. A blob written through one is
// picked up by the other's Get — and that pickup is observable: the
// Adopted stat, the store.disk.adopt counter, and the adopted span
// attribute all record it.
func TestDiskStoreAdoption(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenDiskStore(nil, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := OpenDiskStore(nil, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	k := testKey("adopt-me")
	if err := a.Put(nil, k, []byte("shared blob")); err != nil {
		t.Fatal(err)
	}

	trace := &obs.TraceSink{}
	ctx := obs.New(trace)
	got, ok, err := b.Get(ctx, k)
	if err != nil || !ok || !bytes.Equal(got, []byte("shared blob")) {
		t.Fatalf("Get = %q, %v, %v; want the blob a put", got, ok, err)
	}
	if st := b.Stats(); st.Adopted != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v, want 1 adopted, 1 hit", st)
	}
	counts := map[string]int64{}
	for _, c := range ctx.Counters() {
		counts[c.Name] = c.Value
	}
	if counts["store.disk.adopt"] != 1 || counts["store.disk.hit"] != 1 {
		t.Fatalf("counters = %v, want store.disk.adopt=1 and store.disk.hit=1", counts)
	}
	adopted := false
	for _, sd := range trace.Spans() {
		for _, at := range sd.Attrs {
			if at.Key == "adopted" && at.Val == "true" {
				adopted = true
			}
		}
	}
	if !adopted {
		t.Fatal("no span carried the adopted attribute")
	}

	// A second Get is an ordinary indexed hit: no further adoption.
	if _, ok, _ := b.Get(nil, k); !ok {
		t.Fatal("second Get missed")
	}
	if st := b.Stats(); st.Adopted != 1 || st.Hits != 2 {
		t.Fatalf("stats after re-Get = %+v, want adoption still 1", st)
	}
	// The writer's own store never counts adoption for its own blobs.
	if _, ok, _ := a.Get(nil, k); !ok || a.Stats().Adopted != 0 {
		t.Fatalf("writer stats = %+v, want 0 adopted", a.Stats())
	}
}
