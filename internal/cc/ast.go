package cc

// AST node definitions. The parser produces these; the checker annotates
// expressions with types and resolves names; the code generator walks
// them to emit assembly.

// Program is a parsed translation unit.
type Program struct {
	Decls []*Decl // globals and functions, in source order
}

// DeclKind distinguishes top-level declarations.
type DeclKind int

const (
	DeclVar  DeclKind = iota // global variable (possibly extern)
	DeclFunc                 // function definition or prototype
)

// Decl is a top-level declaration.
type Decl struct {
	Kind   DeclKind
	Name   string
	Type   *Type
	Line   int
	Extern bool // declared extern, or a prototype without a body
	Static bool // file-local

	// DeclVar: optional initializer (checked to be constant).
	Init *Expr

	// DeclFunc with body.
	Params []string // parameter names, parallel to Type.Params
	Body   *Stmt    // nil for prototypes
	// Filled by the checker:
	Locals []*Local
}

// Local is a function-scope variable (including parameters).
type Local struct {
	Name   string
	Type   *Type
	Offset int64 // frame offset, assigned by codegen
	IsParm bool
	Index  int // parameter index if IsParm
}

// StmtKind enumerates statements.
type StmtKind int

const (
	StmtExpr StmtKind = iota
	StmtDecl
	StmtIf
	StmtWhile
	StmtDoWhile
	StmtFor
	StmtReturn
	StmtBreak
	StmtContinue
	StmtBlock
	StmtSwitch
	StmtCase // case/default label inside a switch body
	StmtEmpty
)

// Stmt is one statement.
type Stmt struct {
	Kind StmtKind
	Line int

	// Transparent marks a block that groups statements without opening a
	// new scope (a multi-variable declaration like `long a, b;`).
	Transparent bool

	Expr *Expr   // Expr, Return (may be nil), If/While/DoWhile/Switch condition
	Init *Stmt   // For initializer (Expr or Decl statement)
	Post *Expr   // For post-expression
	Body *Stmt   // If-then, loop body, Switch body
	Else *Stmt   // If-else
	List []*Stmt // Block

	// Decl.
	Decl     *Local
	DeclInit *Expr

	// Case.
	CaseVal   int64
	IsDefault bool
}

// ExprKind enumerates expressions.
type ExprKind int

const (
	ExprNum ExprKind = iota
	ExprString
	ExprIdent
	ExprUnary   // - ! ~ * & ++x --x
	ExprPostfix // x++ x--
	ExprBinary  // arithmetic, comparison, logical, assignment
	ExprCond    // ?:
	ExprCall
	ExprIndex  // a[i]
	ExprMember // s.f or p->f
	ExprSizeof
	ExprCast
	ExprArg      // __arg(i): i-th incoming vararg as long
	ExprVa       // __va(): pointer to the incoming argument save area
	ExprInitList // {a, b, c} — global initializers only
)

// Expr is one expression. Type is filled by the checker.
type Expr struct {
	Kind ExprKind
	Line int
	Type *Type

	Op    string // Unary/Postfix/Binary operator text ("+", "+=", "&&", ...)
	X, Y  *Expr  // operands (Cond: X ? Y : Z with Z in Else)
	Else  *Expr
	Num   int64
	Str   []byte
	Name  string // Ident, Member field name
	Args  []*Expr
	Arrow bool // Member: -> rather than .

	// Checker annotations.
	Folded *constVal // folded value, for global initializers
	Local  *Local    // resolved local, if Ident refers to one
	Global *Decl     // resolved global or function
	CastTo *Type     // Cast, Sizeof-of-type
	Field  Field     // resolved member
}
