// Package cc implements a compiler for MiniC, the C subset in which this
// reproduction writes application programs and ATOM analysis routines.
//
// The paper's tools are ordinary C code (Figures 2 and 3); analysis
// routines must become real machine code linked into the instrumented
// executable, sharing nothing with the application. MiniC is rich enough
// to port that code nearly verbatim:
//
//   - types: char (unsigned byte), int/long (64-bit signed), pointers,
//     arrays, structs; sizeof; casts
//   - control flow: if/else, while, do-while, for, switch, break,
//     continue, return
//   - expressions: the full C operator set minus the comma operator;
//     ++/-- in both positions; short-circuit && and ||; ?:
//   - functions with up to six register arguments plus stack arguments,
//     variadic functions (printf) via a register-save area and the
//     __arg(i) intrinsic
//   - globals with constant initializers (including brace lists, string
//     literals, and addresses of globals); extern and static linkage
//   - a miniature preprocessor: #include of caller-supplied headers and
//     object-like #define macros
//
// Deviations from C are deliberate simplifications of the substrate, not
// of ATOM: int is 64-bit, char is unsigned, there is no floating point,
// and function pointers are rejected. Division and modulo compile to
// calls to __divq/__remq (the Alpha has no integer divide instruction).
//
// Compile produces assembly text for internal/asm; Build goes all the
// way to a relocatable aout object module.
package cc

import (
	"atom/internal/aout"
	"atom/internal/asm"
	"atom/internal/obs"
)

// Compile translates MiniC source to assembly text. name is used in
// diagnostics; include maps header names (as written in #include) to
// their contents.
func Compile(name, src string, include map[string]string) (string, error) {
	return CompileCtx(nil, name, src, include)
}

// CompileCtx is Compile with a stage context: the whole translation unit
// compiles under a "cc.compile" span, and code generation opens one
// "cc.func" span per function (the compiler's unit of work), so traces
// show where compile time goes file by file and function by function.
func CompileCtx(ctx *obs.Ctx, name, src string, include map[string]string) (string, error) {
	ctx, sp := ctx.Start("cc.compile", obs.String("file", name))
	defer sp.End()
	toks, err := lex(name, src, include)
	if err != nil {
		return "", err
	}
	prog, err := parse(name, toks)
	if err != nil {
		return "", err
	}
	if err := check(name, prog); err != nil {
		return "", err
	}
	return generate(ctx, prog)
}

// Build compiles MiniC source into a relocatable object module.
func Build(name, src string, include map[string]string) (*aout.File, error) {
	return BuildCtx(nil, name, src, include)
}

// BuildCtx is Build with a stage context threaded through compilation and
// assembly.
func BuildCtx(ctx *obs.Ctx, name, src string, include map[string]string) (*aout.File, error) {
	asmText, err := CompileCtx(ctx, name, src, include)
	if err != nil {
		return nil, err
	}
	return asm.AssembleCtx(ctx, name, asmText)
}
