package cc

import "fmt"

// checker performs name resolution and type checking, annotating the AST
// in place.
type checker struct {
	name     string
	globals  map[string]*Decl // variables and functions by name
	fn       *Decl            // function being checked
	scopes   []map[string]*Local
	loops    int
	switches int
}

func check(name string, prog *Program) error {
	c := &checker{name: name, globals: map[string]*Decl{}}
	// Register globals first so forward references work.
	for _, d := range prog.Decls {
		if err := c.declare(d); err != nil {
			return err
		}
	}
	// A merged prototype aliases its definition (same Body and Init), so
	// the same function can appear several times in Decls; check each
	// name once, or the second pass would re-annotate the shared AST
	// with fresh Local objects and orphan the first pass's.
	seen := map[string]bool{}
	for _, d := range prog.Decls {
		if seen[d.Name] {
			continue
		}
		seen[d.Name] = true
		if d.Kind == DeclFunc && d.Body != nil {
			if err := c.checkFunc(d); err != nil {
				return err
			}
		}
		if d.Kind == DeclVar && d.Init != nil {
			if err := c.checkGlobalInit(d); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *checker) errf(line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", c.name, line, fmt.Sprintf(format, args...))
}

// declare registers a top-level declaration, merging prototypes.
func (c *checker) declare(d *Decl) error {
	prev, ok := c.globals[d.Name]
	if !ok {
		if d.Kind == DeclVar {
			if d.Type.Kind == TypeVoid {
				return c.errf(d.Line, "variable %q has void type", d.Name)
			}
			if d.Type.Size() <= 0 {
				return c.errf(d.Line, "variable %q has incomplete type %s", d.Name, d.Type)
			}
		}
		c.globals[d.Name] = d
		return nil
	}
	if prev.Kind != d.Kind || !prev.Type.Same(d.Type) {
		return c.errf(d.Line, "conflicting declarations of %q (%s vs %s)", d.Name, prev.Type, d.Type)
	}
	switch {
	case d.Kind == DeclFunc && d.Body != nil:
		if prev.Body != nil {
			return c.errf(d.Line, "function %q redefined", d.Name)
		}
		// The definition supersedes the prototype.
		*prev = *d
	case d.Kind == DeclVar && !d.Extern:
		if !prev.Extern {
			return c.errf(d.Line, "variable %q redefined", d.Name)
		}
		*prev = *d
	}
	return nil
}

func (c *checker) checkFunc(d *Decl) error {
	c.fn = d
	c.scopes = []map[string]*Local{{}}
	d.Locals = nil
	for i, pname := range d.Params {
		pt := d.Type.Params[i]
		if !pt.IsScalar() {
			return c.errf(d.Line, "parameter %q: only scalar parameters are supported (got %s)", pname, pt)
		}
		l := &Local{Name: pname, Type: pt, IsParm: true, Index: i}
		d.Locals = append(d.Locals, l)
		if _, dup := c.scopes[0][pname]; dup {
			return c.errf(d.Line, "duplicate parameter %q", pname)
		}
		c.scopes[0][pname] = l
	}
	err := c.stmt(d.Body)
	c.fn = nil
	c.scopes = nil
	return err
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*Local{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookupLocal(name string) *Local {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if l, ok := c.scopes[i][name]; ok {
			return l
		}
	}
	return nil
}

func (c *checker) stmt(s *Stmt) error {
	switch s.Kind {
	case StmtEmpty:
		return nil
	case StmtExpr:
		_, err := c.expr(s.Expr, true)
		return err
	case StmtDecl:
		if s.Decl.Type.Kind == TypeVoid {
			return c.errf(s.Line, "variable %q has void type", s.Decl.Name)
		}
		if s.Decl.Type.Size() <= 0 {
			return c.errf(s.Line, "variable %q has incomplete type %s", s.Decl.Name, s.Decl.Type)
		}
		if s.DeclInit != nil {
			t, err := c.expr(s.DeclInit, false)
			if err != nil {
				return err
			}
			if err := c.assignable(s.Line, s.Decl.Type, t, s.DeclInit); err != nil {
				return err
			}
		}
		scope := c.scopes[len(c.scopes)-1]
		if _, dup := scope[s.Decl.Name]; dup {
			return c.errf(s.Line, "variable %q redeclared in this scope", s.Decl.Name)
		}
		scope[s.Decl.Name] = s.Decl
		c.fn.Locals = append(c.fn.Locals, s.Decl)
		return nil
	case StmtBlock:
		if !s.Transparent {
			c.push()
			defer c.pop()
		}
		for _, st := range s.List {
			if err := c.stmt(st); err != nil {
				return err
			}
		}
		return nil
	case StmtIf:
		if err := c.scalarCond(s.Expr); err != nil {
			return err
		}
		if err := c.stmt(s.Body); err != nil {
			return err
		}
		if s.Else != nil {
			return c.stmt(s.Else)
		}
		return nil
	case StmtWhile, StmtDoWhile:
		if err := c.scalarCond(s.Expr); err != nil {
			return err
		}
		c.loops++
		err := c.stmt(s.Body)
		c.loops--
		return err
	case StmtFor:
		c.push()
		defer c.pop()
		if s.Init != nil {
			if err := c.stmt(s.Init); err != nil {
				return err
			}
		}
		if s.Expr != nil {
			if err := c.scalarCond(s.Expr); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if _, err := c.expr(s.Post, true); err != nil {
				return err
			}
		}
		c.loops++
		err := c.stmt(s.Body)
		c.loops--
		return err
	case StmtReturn:
		ret := c.fn.Type.Ret
		if s.Expr == nil {
			if ret.Kind != TypeVoid {
				return c.errf(s.Line, "return without value in %q returning %s", c.fn.Name, ret)
			}
			return nil
		}
		if ret.Kind == TypeVoid {
			return c.errf(s.Line, "return with value in void function %q", c.fn.Name)
		}
		t, err := c.expr(s.Expr, false)
		if err != nil {
			return err
		}
		return c.assignable(s.Line, ret, t, s.Expr)
	case StmtBreak:
		if c.loops == 0 && c.switches == 0 {
			return c.errf(s.Line, "break outside loop or switch")
		}
		return nil
	case StmtContinue:
		if c.loops == 0 {
			return c.errf(s.Line, "continue outside loop")
		}
		return nil
	case StmtSwitch:
		if err := c.scalarCond(s.Expr); err != nil {
			return err
		}
		c.switches++
		err := c.stmt(s.Body)
		c.switches--
		return err
	case StmtCase:
		if c.switches == 0 {
			return c.errf(s.Line, "case label outside switch")
		}
		return nil
	}
	return c.errf(s.Line, "unhandled statement kind %d", s.Kind)
}

func (c *checker) scalarCond(e *Expr) error {
	t, err := c.expr(e, false)
	if err != nil {
		return err
	}
	if !t.Decays().IsScalar() {
		return c.errf(e.Line, "condition has non-scalar type %s", t)
	}
	return nil
}

// assignable checks that a value of type src (from expression y) can be
// assigned to dst.
func (c *checker) assignable(line int, dst, src *Type, y *Expr) error {
	src = src.Decays()
	switch {
	case dst.IsInteger() && src.IsInteger():
		return nil
	case dst.Kind == TypePtr && src.Kind == TypePtr:
		return nil // loose K&R-style pointer compatibility
	case dst.Kind == TypePtr && src.IsInteger():
		if y != nil && y.Kind == ExprNum && y.Num == 0 {
			return nil // null pointer constant
		}
		return c.errf(line, "assigning integer to pointer %s requires a cast", dst)
	case dst.IsInteger() && src.Kind == TypePtr:
		return c.errf(line, "assigning pointer %s to integer requires a cast", src)
	}
	return c.errf(line, "cannot assign %s to %s", src, dst)
}

func isLvalue(e *Expr) bool {
	switch e.Kind {
	case ExprIdent:
		return e.Global == nil || e.Global.Kind == DeclVar
	case ExprIndex, ExprMember:
		return true
	case ExprUnary:
		return e.Op == "*"
	}
	return false
}
