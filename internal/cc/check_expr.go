package cc

import "fmt"

// expr type-checks an expression, annotating e.Type and name-resolution
// fields. stmtCtx permits void-valued expressions (calls in statement
// position).
func (c *checker) expr(e *Expr, stmtCtx bool) (*Type, error) {
	t, err := c.exprInner(e, stmtCtx)
	if err != nil {
		return nil, err
	}
	e.Type = t
	return t, nil
}

func (c *checker) exprInner(e *Expr, stmtCtx bool) (*Type, error) {
	switch e.Kind {
	case ExprNum:
		return typeLong, nil

	case ExprString:
		return ptrTo(typeChar), nil

	case ExprIdent:
		if l := c.lookupLocal(e.Name); l != nil {
			e.Local = l
			return l.Type, nil
		}
		if g, ok := c.globals[e.Name]; ok {
			e.Global = g
			return g.Type, nil
		}
		return nil, c.errf(e.Line, "undeclared identifier %q", e.Name)

	case ExprVa:
		if c.fn == nil || !c.fn.Type.Variadic {
			return nil, c.errf(e.Line, "__va used outside a variadic function")
		}
		return ptrTo(typeLong), nil

	case ExprArg:
		if c.fn == nil || !c.fn.Type.Variadic {
			return nil, c.errf(e.Line, "__arg used outside a variadic function")
		}
		it, err := c.expr(e.X, false)
		if err != nil {
			return nil, err
		}
		if !it.IsInteger() {
			return nil, c.errf(e.Line, "__arg index must be an integer")
		}
		return typeLong, nil

	case ExprUnary:
		xt, err := c.expr(e.X, false)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "-", "~":
			if !xt.IsInteger() {
				return nil, c.errf(e.Line, "unary %s on non-integer %s", e.Op, xt)
			}
			return typeLong, nil
		case "!":
			if !xt.Decays().IsScalar() {
				return nil, c.errf(e.Line, "! on non-scalar %s", xt)
			}
			return typeLong, nil
		case "*":
			dt := xt.Decays()
			if dt.Kind != TypePtr {
				return nil, c.errf(e.Line, "dereferencing non-pointer %s", xt)
			}
			if dt.Elem.Kind == TypeVoid {
				return nil, c.errf(e.Line, "dereferencing void pointer")
			}
			return dt.Elem, nil
		case "&":
			if !isLvalue(e.X) {
				// &func yields the function's address; everything else
				// must be an lvalue.
				if e.X.Kind == ExprIdent && e.X.Global != nil && e.X.Global.Kind == DeclFunc {
					return nil, c.errf(e.Line, "function pointers are not supported")
				}
				return nil, c.errf(e.Line, "& of non-lvalue")
			}
			return ptrTo(xt), nil
		case "++", "--":
			return c.incDec(e, xt)
		}
		return nil, c.errf(e.Line, "unhandled unary %q", e.Op)

	case ExprPostfix:
		xt, err := c.expr(e.X, false)
		if err != nil {
			return nil, err
		}
		return c.incDec(e, xt)

	case ExprBinary:
		return c.binary(e, stmtCtx)

	case ExprCond:
		if err := c.scalarCond(e.X); err != nil {
			return nil, err
		}
		yt, err := c.expr(e.Y, false)
		if err != nil {
			return nil, err
		}
		zt, err := c.expr(e.Else, false)
		if err != nil {
			return nil, err
		}
		yd, zd := yt.Decays(), zt.Decays()
		switch {
		case yd.IsInteger() && zd.IsInteger():
			return typeLong, nil
		case yd.Kind == TypePtr && zd.Kind == TypePtr:
			return yd, nil
		case yd.Kind == TypePtr && zd.IsInteger(), yd.IsInteger() && zd.Kind == TypePtr:
			return yd, nil // null-ish mixing; keep the pointer type
		}
		return nil, c.errf(e.Line, "?: arms have incompatible types %s and %s", yt, zt)

	case ExprCall:
		return c.call(e, stmtCtx)

	case ExprIndex:
		xt, err := c.expr(e.X, false)
		if err != nil {
			return nil, err
		}
		it, err := c.expr(e.Y, false)
		if err != nil {
			return nil, err
		}
		dt := xt.Decays()
		if dt.Kind != TypePtr {
			return nil, c.errf(e.Line, "indexing non-array %s", xt)
		}
		if !it.IsInteger() {
			return nil, c.errf(e.Line, "array index has type %s", it)
		}
		return dt.Elem, nil

	case ExprMember:
		xt, err := c.expr(e.X, false)
		if err != nil {
			return nil, err
		}
		st := xt
		if e.Arrow {
			dt := xt.Decays()
			if dt.Kind != TypePtr {
				return nil, c.errf(e.Line, "-> on non-pointer %s", xt)
			}
			st = dt.Elem
		}
		if st.Kind != TypeStruct {
			return nil, c.errf(e.Line, "member access on non-struct %s", st)
		}
		f, ok := st.Field(e.Name)
		if !ok {
			return nil, c.errf(e.Line, "struct %s has no field %q", st.StructName, e.Name)
		}
		e.Field = f
		return f.Type, nil

	case ExprSizeof:
		t := e.CastTo
		if t == nil {
			xt, err := c.expr(e.X, false)
			if err != nil {
				return nil, err
			}
			t = xt
		}
		if t.Size() <= 0 {
			return nil, c.errf(e.Line, "sizeof incomplete type %s", t)
		}
		e.Num = t.Size()
		return typeLong, nil

	case ExprCast:
		xt, err := c.expr(e.X, false)
		if err != nil {
			return nil, err
		}
		to := e.CastTo
		if !to.IsScalar() && to.Kind != TypeVoid {
			return nil, c.errf(e.Line, "cast to non-scalar %s", to)
		}
		if !xt.Decays().IsScalar() {
			return nil, c.errf(e.Line, "cast of non-scalar %s", xt)
		}
		return to, nil

	case ExprInitList:
		return nil, c.errf(e.Line, "initializer list is only allowed in global initializers")
	}
	return nil, c.errf(e.Line, "unhandled expression kind %d", e.Kind)
}

func (c *checker) incDec(e *Expr, xt *Type) (*Type, error) {
	if !isLvalue(e.X) {
		return nil, c.errf(e.Line, "%s needs an lvalue", e.Op)
	}
	if !xt.IsScalar() {
		return nil, c.errf(e.Line, "%s on non-scalar %s", e.Op, xt)
	}
	return xt, nil
}

func (c *checker) binary(e *Expr, stmtCtx bool) (*Type, error) {
	if assignOps[e.Op] {
		xt, err := c.expr(e.X, false)
		if err != nil {
			return nil, err
		}
		if !isLvalue(e.X) {
			return nil, c.errf(e.Line, "assignment to non-lvalue")
		}
		if xt.Kind == TypeArray || xt.Kind == TypeStruct {
			return nil, c.errf(e.Line, "cannot assign to %s", xt)
		}
		yt, err := c.expr(e.Y, false)
		if err != nil {
			return nil, err
		}
		if e.Op == "=" {
			if err := c.assignable(e.Line, xt, yt, e.Y); err != nil {
				return nil, err
			}
			return xt, nil
		}
		// Compound assignment: pointer += / -= integer, or integer op.
		base := e.Op[:len(e.Op)-1]
		if xt.Kind == TypePtr {
			if (base != "+" && base != "-") || !yt.Decays().IsInteger() {
				return nil, c.errf(e.Line, "invalid %s on pointer", e.Op)
			}
			return xt, nil
		}
		if !xt.IsInteger() || !yt.Decays().IsInteger() {
			return nil, c.errf(e.Line, "invalid %s on %s and %s", e.Op, xt, yt)
		}
		return xt, nil
	}

	xt, err := c.expr(e.X, false)
	if err != nil {
		return nil, err
	}
	yt, err := c.expr(e.Y, false)
	if err != nil {
		return nil, err
	}
	xd, yd := xt.Decays(), yt.Decays()
	switch e.Op {
	case "&&", "||":
		if !xd.IsScalar() || !yd.IsScalar() {
			return nil, c.errf(e.Line, "logical %s on non-scalars", e.Op)
		}
		return typeLong, nil
	case "==", "!=", "<", "<=", ">", ">=":
		switch {
		case xd.IsInteger() && yd.IsInteger():
		case xd.Kind == TypePtr && yd.Kind == TypePtr:
		case xd.Kind == TypePtr && e.Y.Kind == ExprNum && e.Y.Num == 0:
		case yd.Kind == TypePtr && e.X.Kind == ExprNum && e.X.Num == 0:
		default:
			return nil, c.errf(e.Line, "comparison of %s and %s", xt, yt)
		}
		return typeLong, nil
	case "+":
		switch {
		case xd.IsInteger() && yd.IsInteger():
			return typeLong, nil
		case xd.Kind == TypePtr && yd.IsInteger():
			return xd, nil
		case xd.IsInteger() && yd.Kind == TypePtr:
			return yd, nil
		}
		return nil, c.errf(e.Line, "invalid + on %s and %s", xt, yt)
	case "-":
		switch {
		case xd.IsInteger() && yd.IsInteger():
			return typeLong, nil
		case xd.Kind == TypePtr && yd.IsInteger():
			return xd, nil
		case xd.Kind == TypePtr && yd.Kind == TypePtr:
			return typeLong, nil
		}
		return nil, c.errf(e.Line, "invalid - on %s and %s", xt, yt)
	case "*", "/", "%", "&", "|", "^", "<<", ">>":
		if !xd.IsInteger() || !yd.IsInteger() {
			return nil, c.errf(e.Line, "invalid %s on %s and %s", e.Op, xt, yt)
		}
		return typeLong, nil
	}
	return nil, c.errf(e.Line, "unhandled binary %q", e.Op)
}

func (c *checker) call(e *Expr, stmtCtx bool) (*Type, error) {
	if e.X.Kind != ExprIdent {
		return nil, c.errf(e.Line, "only direct calls are supported (no function pointers)")
	}
	g, ok := c.globals[e.X.Name]
	if !ok || g.Kind != DeclFunc {
		if c.lookupLocal(e.X.Name) != nil {
			return nil, c.errf(e.Line, "calling non-function %q", e.X.Name)
		}
		return nil, c.errf(e.Line, "call to undeclared function %q", e.X.Name)
	}
	e.X.Global = g
	e.X.Type = g.Type
	ft := g.Type
	if len(e.Args) < len(ft.Params) || (!ft.Variadic && len(e.Args) > len(ft.Params)) {
		return nil, c.errf(e.Line, "%q expects %d arguments, got %d", g.Name, len(ft.Params), len(e.Args))
	}
	for i, a := range e.Args {
		at, err := c.expr(a, false)
		if err != nil {
			return nil, err
		}
		if i < len(ft.Params) {
			if err := c.assignable(e.Line, ft.Params[i], at, a); err != nil {
				return nil, err
			}
		} else if !at.Decays().IsScalar() {
			return nil, c.errf(e.Line, "variadic argument %d has non-scalar type %s", i, at)
		}
	}
	if ft.Ret.Kind == TypeVoid && !stmtCtx {
		return nil, c.errf(e.Line, "void value of %q used", g.Name)
	}
	return ft.Ret, nil
}

func (c *checker) checkGlobalInit(d *Decl) error {
	return c.foldInit(d.Type, d.Init)
}

// foldInit validates a global initializer shape: constants, strings,
// global addresses, and (possibly nested) brace lists for arrays.
func (c *checker) foldInit(t *Type, e *Expr) error {
	switch {
	case e.Kind == ExprInitList:
		if t.Kind != TypeArray {
			return c.errf(e.Line, "brace initializer for non-array %s", t)
		}
		if int64(len(e.Args)) > t.Len {
			return c.errf(e.Line, "too many initializers (%d) for %s", len(e.Args), t)
		}
		for _, item := range e.Args {
			if err := c.foldInit(t.Elem, item); err != nil {
				return err
			}
		}
		return nil
	case t.Kind == TypeArray:
		return c.errf(e.Line, "array %s needs a brace initializer", t)
	case t.Kind == TypeStruct:
		return c.errf(e.Line, "struct initializers are not supported")
	}
	v, err := c.constFold(e)
	if err != nil {
		return err
	}
	_ = v
	return nil
}

// constVal is a folded global-initializer value: either a number, or a
// symbol (string-literal label or global name) plus offset.
type constVal struct {
	num int64
	sym string // "" for plain numbers
	str []byte // non-nil for string literals (label assigned by codegen)
}

// constFold evaluates a constant expression for a global initializer and
// records the folded value on the expression for the code generator.
func (c *checker) constFold(e *Expr) (constVal, error) {
	v, err := c.constFold1(e)
	if err == nil {
		e.Folded = &v
	}
	return v, err
}

func (c *checker) constFold1(e *Expr) (constVal, error) {
	switch e.Kind {
	case ExprNum:
		e.Type = typeLong
		return constVal{num: e.Num}, nil
	case ExprString:
		e.Type = ptrTo(typeChar)
		return constVal{str: e.Str}, nil
	case ExprUnary:
		switch e.Op {
		case "-", "~", "!":
			v, err := c.constFold(e.X)
			if err != nil {
				return constVal{}, err
			}
			if v.sym != "" || v.str != nil {
				return constVal{}, c.errf(e.Line, "non-numeric constant in %s", e.Op)
			}
			e.Type = typeLong
			switch e.Op {
			case "-":
				return constVal{num: -v.num}, nil
			case "~":
				return constVal{num: ^v.num}, nil
			default:
				if v.num == 0 {
					return constVal{num: 1}, nil
				}
				return constVal{num: 0}, nil
			}
		case "&":
			if e.X.Kind == ExprIdent {
				g, ok := c.globals[e.X.Name]
				if ok && g.Kind == DeclVar {
					e.Type = ptrTo(g.Type)
					e.X.Global = g
					e.X.Type = g.Type
					return constVal{sym: g.Name}, nil
				}
			}
			return constVal{}, c.errf(e.Line, "non-constant address in initializer")
		}
	case ExprBinary:
		x, err := c.constFold(e.X)
		if err != nil {
			return constVal{}, err
		}
		y, err := c.constFold(e.Y)
		if err != nil {
			return constVal{}, err
		}
		e.Type = typeLong
		if x.str != nil || y.str != nil || y.sym != "" {
			return constVal{}, c.errf(e.Line, "unsupported constant expression")
		}
		if x.sym != "" {
			// symbol + offset
			if e.Op != "+" && e.Op != "-" {
				return constVal{}, c.errf(e.Line, "unsupported constant expression on address")
			}
			off := y.num
			if e.Op == "-" {
				off = -off
			}
			return constVal{sym: x.sym, num: x.num + off}, nil
		}
		r, err := evalConstOp(e.Op, x.num, y.num)
		if err != nil {
			return constVal{}, c.errf(e.Line, "%v", err)
		}
		return constVal{num: r}, nil
	case ExprSizeof:
		t := e.CastTo
		if t == nil {
			xt, err := c.expr(e.X, false)
			if err != nil {
				return constVal{}, err
			}
			t = xt
		}
		e.Type = typeLong
		e.Num = t.Size()
		return constVal{num: t.Size()}, nil
	case ExprIdent:
		// Address of a global array used as a pointer initializer.
		if g, ok := c.globals[e.Name]; ok && g.Kind == DeclVar && g.Type.Kind == TypeArray {
			e.Global = g
			e.Type = g.Type
			return constVal{sym: g.Name}, nil
		}
	}
	return constVal{}, c.errf(e.Line, "initializer is not constant")
}

func evalConstOp(op string, a, b int64) (int64, error) {
	switch op {
	case "+":
		return a + b, nil
	case "-":
		return a - b, nil
	case "*":
		return a * b, nil
	case "/":
		if b == 0 {
			return 0, fmt.Errorf("division by zero in constant")
		}
		return a / b, nil
	case "%":
		if b == 0 {
			return 0, fmt.Errorf("modulo by zero in constant")
		}
		return a % b, nil
	case "&":
		return a & b, nil
	case "|":
		return a | b, nil
	case "^":
		return a ^ b, nil
	case "<<":
		return a << (uint64(b) & 63), nil
	case ">>":
		return a >> (uint64(b) & 63), nil
	}
	return 0, fmt.Errorf("unsupported constant operator %q", op)
}
