package cc_test

// Differential testing: random integer expressions are compiled through
// the full MiniC -> asm -> link -> VM pipeline and compared against a Go
// reference evaluator with identical semantics (64-bit wrap, arithmetic
// right shift, C-truncating division). This is the strongest guard on
// operator precedence, code generation, and the evaluation-stack
// machinery.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"atom/internal/vm"
)

// expr is a tiny AST rendered both to MiniC and to a Go evaluation.
type expr interface {
	render(sb *strings.Builder)
	eval(env []int64) int64
}

type eConst struct{ v int64 }
type eVar struct{ idx int }
type eUnary struct {
	op string
	x  expr
}
type eBinary struct {
	op   string
	x, y expr
}
type eCond struct{ c, a, b expr }

func (e eConst) render(sb *strings.Builder) { fmt.Fprintf(sb, "%d", e.v) }
func (e eConst) eval([]int64) int64         { return e.v }

func (e eVar) render(sb *strings.Builder) { fmt.Fprintf(sb, "v%d", e.idx) }
func (e eVar) eval(env []int64) int64     { return env[e.idx] }

func (e eUnary) render(sb *strings.Builder) {
	// The space keeps nested negation from lexing as "--".
	sb.WriteString("(")
	sb.WriteString(e.op)
	sb.WriteString(" ")
	e.x.render(sb)
	sb.WriteString(")")
}

func (e eUnary) eval(env []int64) int64 {
	v := e.x.eval(env)
	switch e.op {
	case "-":
		return -v
	case "~":
		return ^v
	case "!":
		if v == 0 {
			return 1
		}
		return 0
	}
	panic("bad unary")
}

func (e eBinary) render(sb *strings.Builder) {
	sb.WriteString("(")
	e.x.render(sb)
	sb.WriteString(" " + e.op + " ")
	e.y.render(sb)
	sb.WriteString(")")
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (e eBinary) eval(env []int64) int64 {
	a := e.x.eval(env)
	b := e.y.eval(env)
	switch e.op {
	case "+":
		return a + b
	case "-":
		return a - b
	case "*":
		return a * b
	case "&":
		return a & b
	case "|":
		return a | b
	case "^":
		return a ^ b
	case "<<":
		return a << (uint64(b) & 63)
	case ">>":
		return a >> (uint64(b) & 63)
	case "==":
		return b2i(a == b)
	case "!=":
		return b2i(a != b)
	case "<":
		return b2i(a < b)
	case "<=":
		return b2i(a <= b)
	case ">":
		return b2i(a > b)
	case ">=":
		return b2i(a >= b)
	case "&&":
		return b2i(a != 0 && b != 0)
	case "||":
		return b2i(a != 0 || b != 0)
	case "/":
		return a / b
	case "%":
		return a % b
	}
	panic("bad binary " + e.op)
}

func (e eCond) render(sb *strings.Builder) {
	sb.WriteString("(")
	e.c.render(sb)
	sb.WriteString(" ? ")
	e.a.render(sb)
	sb.WriteString(" : ")
	e.b.render(sb)
	sb.WriteString(")")
}

func (e eCond) eval(env []int64) int64 {
	if e.c.eval(env) != 0 {
		return e.a.eval(env)
	}
	return e.b.eval(env)
}

var diffBinops = []string{
	"+", "-", "*", "&", "|", "^", "==", "!=", "<", "<=", ">", ">=", "&&", "||",
}

// genExpr builds a random expression of bounded depth over nvars
// variables. Division appears only with non-zero constant divisors and
// shifts only with small constant amounts, keeping semantics defined.
func genExpr(r *rand.Rand, depth, nvars int) expr {
	if depth == 0 || r.Intn(5) == 0 {
		if r.Intn(2) == 0 {
			return eVar{r.Intn(nvars)}
		}
		switch r.Intn(4) {
		case 0:
			return eConst{int64(r.Intn(256))}
		case 1:
			return eConst{-int64(r.Intn(1000))}
		case 2:
			return eConst{int64(r.Uint32())}
		default:
			return eConst{int64(r.Uint64())}
		}
	}
	switch r.Intn(10) {
	case 0:
		return eUnary{[]string{"-", "~", "!"}[r.Intn(3)], genExpr(r, depth-1, nvars)}
	case 1:
		return eCond{genExpr(r, depth-1, nvars), genExpr(r, depth-1, nvars), genExpr(r, depth-1, nvars)}
	case 2: // shift by a small constant
		op := "<<"
		if r.Intn(2) == 0 {
			op = ">>"
		}
		return eBinary{op, genExpr(r, depth-1, nvars), eConst{int64(r.Intn(63))}}
	case 3: // divide by a non-zero constant (positive or negative, some powers of two)
		d := int64(r.Intn(100) + 1)
		if r.Intn(3) == 0 {
			d = 1 << uint(r.Intn(12))
		}
		if r.Intn(4) == 0 {
			d = -d
		}
		op := "/"
		if r.Intn(2) == 0 {
			op = "%"
		}
		return eBinary{op, genExpr(r, depth-1, nvars), eConst{d}}
	default:
		return eBinary{diffBinops[r.Intn(len(diffBinops))], genExpr(r, depth-1, nvars), genExpr(r, depth-1, nvars)}
	}
}

func TestExpressionDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(424242))
	const nvars = 4
	const nexprs = 60

	env := make([]int64, nvars)
	for i := range env {
		env[i] = int64(r.Uint64())
	}
	var exprs []expr
	for len(exprs) < nexprs {
		exprs = append(exprs, genExpr(r, 4, nvars))
	}

	// Render the program: each expression hashed into an accumulator.
	var sb strings.Builder
	sb.WriteString("#include <stdio.h>\n")
	for i, v := range env {
		fmt.Fprintf(&sb, "long v%d = %d;\n", i, v)
	}
	sb.WriteString("int main() {\n\tlong h = 0;\n")
	for _, e := range exprs {
		sb.WriteString("\th = h * 31 + ")
		e.render(&sb)
		sb.WriteString(";\n")
	}
	sb.WriteString("\tprintf(\"%x %x\\n\", (h >> 32) & 0xffffffff, h & 0xffffffff);\n\treturn 0;\n}\n")

	var want int64
	for _, e := range exprs {
		want = want*31 + e.eval(env)
	}

	m, _ := runProg(t, sb.String(), vm.Config{})
	got := strings.TrimSpace(string(m.Stdout))
	wantStr := fmt.Sprintf("%x %x", uint32(uint64(want)>>32), uint32(uint64(want)))
	if got != wantStr {
		t.Errorf("differential mismatch:\n VM %q\n Go %q\nprogram:\n%s", got, wantStr, sb.String())
	}
}

// TestExpressionDifferentialMany runs several independent seeds with
// shallower expressions (fast; broad operator coverage).
func TestExpressionDifferentialMany(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			env := []int64{int64(r.Uint64()), int64(r.Uint32()), -7, 1}
			var sb strings.Builder
			sb.WriteString("#include <stdio.h>\n")
			for i, v := range env {
				fmt.Fprintf(&sb, "long v%d = %d;\n", i, v)
			}
			sb.WriteString("int main() {\n\tlong h = 0;\n")
			var want int64
			for k := 0; k < 25; k++ {
				e := genExpr(r, 3, len(env))
				sb.WriteString("\th = h * 33 + ")
				e.render(&sb)
				sb.WriteString(";\n")
				want = want*33 + e.eval(env)
			}
			sb.WriteString("\tprintf(\"%x %x\\n\", (h >> 32) & 0xffffffff, h & 0xffffffff);\n\treturn 0;\n}\n")
			m, _ := runProg(t, sb.String(), vm.Config{})
			got := strings.TrimSpace(string(m.Stdout))
			wantStr := fmt.Sprintf("%x %x", uint32(uint64(want)>>32), uint32(uint64(want)))
			if got != wantStr {
				t.Errorf("seed %d mismatch:\n VM %q\n Go %q\nprogram:\n%s", seed, got, wantStr, sb.String())
			}
		})
	}
}
