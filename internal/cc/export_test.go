package cc

import "atom/internal/aout"

// BuildForTest exposes Build to the external test package.
func BuildForTest(src string, include map[string]string) (*aout.File, error) {
	return Build("test.c", src, include)
}
