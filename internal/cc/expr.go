package cc

// Expression parsing: standard C precedence via recursive descent.

// expr parses a full expression (assignment level; the comma operator is
// not supported).
func (p *parser) expr() (*Expr, error) { return p.assignExpr() }

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *parser) assignExpr() (*Expr, error) {
	lhs, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	t := p.tok()
	if t.kind == tokPunct && assignOps[t.text] {
		p.next()
		rhs, err := p.assignExpr() // right associative
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ExprBinary, Op: t.text, X: lhs, Y: rhs, Line: t.line}, nil
	}
	return lhs, nil
}

func (p *parser) condExpr() (*Expr, error) {
	c, err := p.binExpr(0)
	if err != nil {
		return nil, err
	}
	if p.atText("?") {
		line := p.tok().line
		p.next()
		yes, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		no, err := p.condExpr()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ExprCond, X: c, Y: yes, Else: no, Line: line}, nil
	}
	return c, nil
}

// binLevels lists binary operators from lowest to highest precedence.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) binExpr(level int) (*Expr, error) {
	if level == len(binLevels) {
		return p.unaryExpr()
	}
	lhs, err := p.binExpr(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.tok()
		if t.kind != tokPunct || !contains(binLevels[level], t.text) {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binExpr(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Expr{Kind: ExprBinary, Op: t.text, X: lhs, Y: rhs, Line: t.line}
	}
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

func (p *parser) unaryExpr() (*Expr, error) {
	t := p.tok()
	switch {
	case p.accept("-"), p.accept("!"), p.accept("~"), p.accept("*"), p.accept("&"),
		p.accept("++"), p.accept("--"), p.accept("+"):
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		if t.text == "+" {
			return x, nil
		}
		return &Expr{Kind: ExprUnary, Op: t.text, X: x, Line: t.line}, nil

	case p.atText("sizeof"):
		p.next()
		// sizeof(type) or sizeof expr.
		if p.atText("(") && p.isTypeAt(p.pos+1) {
			p.next()
			base, err := p.baseType()
			if err != nil {
				return nil, err
			}
			ty, _, err := p.declarator(base)
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &Expr{Kind: ExprSizeof, CastTo: ty, Line: t.line}, nil
		}
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ExprSizeof, X: x, Line: t.line}, nil

	case p.atText("(") && p.isTypeAt(p.pos+1):
		// Cast.
		p.next()
		base, err := p.baseType()
		if err != nil {
			return nil, err
		}
		ty, _, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Expr{Kind: ExprCast, CastTo: ty, X: x, Line: t.line}, nil
	}
	return p.postfixExpr()
}

// isTypeAt reports whether the token at index i begins a type name.
func (p *parser) isTypeAt(i int) bool {
	if i >= len(p.toks) {
		return false
	}
	t := p.toks[i]
	if t.kind != tokKeyword {
		return false
	}
	switch t.text {
	case "char", "int", "long", "void", "struct", "unsigned", "const":
		return true
	}
	return false
}

func (p *parser) postfixExpr() (*Expr, error) {
	e, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.tok()
		switch {
		case p.accept("["):
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &Expr{Kind: ExprIndex, X: e, Y: idx, Line: t.line}
		case p.accept("("):
			call := &Expr{Kind: ExprCall, X: e, Line: t.line}
			for !p.accept(")") {
				arg, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.accept(",") {
					continue
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				break
			}
			e = call
		case p.accept("."):
			if !p.at(tokIdent) {
				return nil, p.errf("expected field name after '.'")
			}
			e = &Expr{Kind: ExprMember, X: e, Name: p.next().text, Line: t.line}
		case p.accept("->"):
			if !p.at(tokIdent) {
				return nil, p.errf("expected field name after '->'")
			}
			e = &Expr{Kind: ExprMember, X: e, Name: p.next().text, Arrow: true, Line: t.line}
		case p.accept("++"), p.accept("--"):
			e = &Expr{Kind: ExprPostfix, Op: t.text, X: e, Line: t.line}
		default:
			return e, nil
		}
	}
}

func (p *parser) primaryExpr() (*Expr, error) {
	t := p.tok()
	switch t.kind {
	case tokNumber, tokChar:
		p.next()
		return &Expr{Kind: ExprNum, Num: t.num, Line: t.line}, nil
	case tokString:
		p.next()
		str := t.str
		// Adjacent string literals concatenate.
		for p.at(tokString) {
			str = append(str, p.next().str...)
		}
		return &Expr{Kind: ExprString, Str: str, Line: t.line}, nil
	case tokIdent:
		p.next()
		if t.text == "__va" {
			if err := p.expect("("); err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &Expr{Kind: ExprVa, Line: t.line}, nil
		}
		if t.text == "__arg" {
			if err := p.expect("("); err != nil {
				return nil, err
			}
			idx, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &Expr{Kind: ExprArg, X: idx, Line: t.line}, nil
		}
		return &Expr{Kind: ExprIdent, Name: t.text, Line: t.line}, nil
	case tokPunct:
		if t.text == "(" {
			p.next()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("expected expression, found %s", t)
}
