package cc

import (
	"fmt"
	"strings"

	"atom/internal/obs"
)

// The code generator translates a checked Program into assembly text for
// internal/asm. The model is deliberately simple and predictable (this is
// the "application compiler" substrate, not the paper's contribution):
//
//   - Every expression value passes through t0; subexpression values are
//     spilled to a per-function evaluation area in the frame, so calls
//     (which clobber all caller-save registers) never lose live values.
//   - All locals live in memory at fixed frame offsets; & works uniformly.
//   - The frame layout, from the stack pointer upward: outgoing stack
//     arguments (calls with >6 args), the evaluation area, locals, the
//     saved ra, padding to 16 bytes, and — for variadic functions — a
//     48-byte register save area adjacent to the incoming stack
//     arguments so that __arg(i) indexes one contiguous array.
//
// Code generation runs twice per function: the first pass measures the
// evaluation-area depth and outgoing-argument maximum (discarding its
// output), the second emits text with the final frame offsets.
type generator struct {
	out      strings.Builder
	strs     map[string]string // string contents -> label
	strOrder []string

	// Per-function state.
	fn       *Decl
	pass     int
	body     []string
	labelN   int
	depth    int // current evaluation-stack depth (slots)
	maxEval  int
	maxOut   int // outgoing stack-argument bytes
	frame    frameInfo
	breakLbl []string
	contLbl  []string
	// caseLabels maps case statements to their generated labels, filled
	// by genSwitch before it walks the switch body.
	caseLabels map[*Stmt]string
	err        error
}

type frameInfo struct {
	outBytes  int64 // outgoing args at sp+0
	evalBase  int64
	localBase int64
	raOff     int64
	vaOff     int64 // variadic register-save area offset; -1 if none
	size      int64
}

// generate produces the assembly for a checked program, opening one
// "cc.func" span per generated function.
func generate(ctx *obs.Ctx, prog *Program) (string, error) {
	g := &generator{strs: map[string]string{}}
	g.out.WriteString("\t.text\n")
	// A merged prototype aliases its definition's Decl contents, so the
	// same function (or variable) can appear several times in Decls;
	// emit each name once.
	emitted := map[string]bool{}
	for _, d := range prog.Decls {
		if d.Kind == DeclFunc && d.Body != nil && !emitted[d.Name] {
			emitted[d.Name] = true
			_, sp := ctx.Start("cc.func", obs.String("func", d.Name))
			err := g.genFunc(d)
			sp.End()
			if err != nil {
				return "", err
			}
			ctx.Count("cc.functions", 1)
		}
	}
	g.genData(prog)
	return g.out.String(), g.err
}

func (g *generator) emit(format string, args ...any) {
	if g.pass == 2 {
		g.body = append(g.body, fmt.Sprintf(format, args...))
	}
}

func (g *generator) label() string {
	g.labelN++
	return fmt.Sprintf(".L%s_%d", g.fn.Name, g.labelN)
}

func (g *generator) placeLabel(l string) { g.emit("%s:", l) }

func (g *generator) failf(line int, format string, args ...any) {
	if g.err == nil {
		g.err = fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...))
	}
}

// push spills t0 to the evaluation area.
func (g *generator) push() {
	g.storeSlot("t0", int64(g.depth))
	g.depth++
	if g.depth > g.maxEval {
		g.maxEval = g.depth
	}
}

// pop reloads the top evaluation slot into reg.
func (g *generator) pop(reg string) {
	g.depth--
	g.loadSlot(reg, int64(g.depth))
}

// peek loads the slot n below the top without popping.
func (g *generator) peek(reg string, n int) {
	g.loadSlot(reg, int64(g.depth-1-n))
}

func (g *generator) storeSlot(reg string, slot int64) {
	g.memOff("stq", reg, g.frame.evalBase+slot*8)
}

func (g *generator) loadSlot(reg string, slot int64) {
	g.memOff("ldq", reg, g.frame.evalBase+slot*8)
}

// memOff emits a load/store of reg at sp+off, handling offsets beyond the
// 16-bit displacement range via the assembler temporary.
func (g *generator) memOff(op, reg string, off int64) {
	if off >= -0x8000 && off <= 0x7FFF {
		g.emit("\t%s %s, %d(sp)", op, reg, off)
		return
	}
	g.emit("\tli at, %d", off)
	g.emit("\taddq sp, at, at")
	g.emit("\t%s %s, 0(at)", op, reg)
}

// addrOfFrame materializes sp+off into reg.
func (g *generator) addrOfFrame(reg string, off int64) {
	if off >= -0x8000 && off <= 0x7FFF {
		g.emit("\tlda %s, %d(sp)", reg, off)
		return
	}
	g.emit("\tli %s, %d", reg, off)
	g.emit("\taddq sp, %s, %s", reg, reg)
}

func (g *generator) genFunc(d *Decl) error {
	g.fn = d
	// Pass 1: measure.
	g.pass = 1
	g.frame = frameInfo{}
	g.maxEval, g.maxOut, g.labelN, g.depth = 0, 0, 0, 0
	g.body = nil
	g.breakLbl, g.contLbl = nil, nil
	g.genBody()
	if g.err != nil {
		return g.err
	}

	// Frame layout.
	var f frameInfo
	f.outBytes = int64(g.maxOut)
	f.evalBase = f.outBytes
	f.localBase = f.evalBase + int64(g.maxEval)*8
	off := f.localBase
	for _, l := range d.Locals {
		a := l.Type.Align()
		off = (off + a - 1) &^ (a - 1)
		l.Offset = off
		off += l.Type.Size()
	}
	off = (off + 7) &^ 7
	f.raOff = off
	off += 8
	off = (off + 15) &^ 15
	f.vaOff = -1
	if d.Type.Variadic {
		f.vaOff = off
		off += 48
	}
	f.size = off
	g.frame = f

	// Pass 2: emit.
	g.pass = 2
	g.maxEval, g.maxOut, g.labelN, g.depth = 0, 0, 0, 0
	g.body = nil
	g.breakLbl, g.contLbl = nil, nil
	g.genBody()
	if g.err != nil {
		return g.err
	}

	if !d.Static {
		fmt.Fprintf(&g.out, "\t.globl %s\n", d.Name)
	}
	fmt.Fprintf(&g.out, "\t.ent %s\n%s:\n", d.Name, d.Name)
	// Frames beyond the 16-bit displacement range are adjusted through
	// the assembler temporary; per-slot accesses go through directMem.
	if f.size <= 0x7FFF {
		fmt.Fprintf(&g.out, "\tlda sp, -%d(sp)\n", f.size)
	} else {
		fmt.Fprintf(&g.out, "\tli at, %d\n\tsubq sp, at, sp\n", f.size)
	}
	g.directMem("stq", "ra", f.raOff)
	if f.vaOff >= 0 {
		for i := 0; i < 6; i++ {
			g.directMem("stq", fmt.Sprintf("a%d", i), f.vaOff+int64(i)*8)
		}
	}
	// Spill named parameters into their local slots. Stack parameters
	// pass through t0 so at stays free for large offsets.
	for _, l := range d.Locals {
		if !l.IsParm {
			continue
		}
		if l.Index < 6 {
			g.directMem("stq", fmt.Sprintf("a%d", l.Index), l.Offset)
		} else {
			g.directMem("ldq", "t0", f.size+int64(l.Index-6)*8)
			g.directMem("stq", "t0", l.Offset)
		}
	}
	for _, line := range g.body {
		g.out.WriteString(line)
		g.out.WriteByte('\n')
	}
	// Epilogue.
	fmt.Fprintf(&g.out, ".Lret_%s:\n", d.Name)
	g.directMem("ldq", "ra", f.raOff)
	if f.size <= 0x7FFF {
		fmt.Fprintf(&g.out, "\tlda sp, %d(sp)\n", f.size)
	} else {
		fmt.Fprintf(&g.out, "\tli at, %d\n\taddq sp, at, sp\n", f.size)
	}
	fmt.Fprintf(&g.out, "\tret (ra)\n")
	fmt.Fprintf(&g.out, "\t.end %s\n", d.Name)
	return nil
}

// directMem writes a load/store of reg at sp+off straight to the output
// (prologue/epilogue, outside the two-pass body machinery), using the
// assembler temporary for offsets beyond the displacement range.
func (g *generator) directMem(op, reg string, off int64) {
	if off >= -0x8000 && off <= 0x7FFF {
		fmt.Fprintf(&g.out, "\t%s %s, %d(sp)\n", op, reg, off)
		return
	}
	fmt.Fprintf(&g.out, "\tli at, %d\n\taddq sp, at, at\n\t%s %s, 0(at)\n", off, op, reg)
}

func (g *generator) genBody() {
	g.stmt(g.fn.Body)
	// Fall off the end: void functions just return; value functions
	// return an undefined v0 (as in C).
	g.emit("\tbr .Lret_%s", g.fn.Name)
}

func (g *generator) stmt(s *Stmt) {
	if g.err != nil {
		return
	}
	switch s.Kind {
	case StmtEmpty:
	case StmtExpr:
		g.expr(s.Expr)
	case StmtDecl:
		if s.DeclInit != nil {
			g.expr(s.DeclInit)
			g.storeTo(s.Decl.Type, s.Decl.Offset)
		}
	case StmtBlock:
		for _, st := range s.List {
			g.stmt(st)
		}
	case StmtIf:
		lElse := g.label()
		g.expr(s.Expr)
		g.emit("\tbeq t0, %s", lElse)
		g.stmt(s.Body)
		if s.Else != nil {
			lEnd := g.label()
			g.emit("\tbr %s", lEnd)
			g.placeLabel(lElse)
			g.stmt(s.Else)
			g.placeLabel(lEnd)
		} else {
			g.placeLabel(lElse)
		}
	case StmtWhile:
		lTop, lEnd := g.label(), g.label()
		g.placeLabel(lTop)
		g.expr(s.Expr)
		g.emit("\tbeq t0, %s", lEnd)
		g.pushLoop(lEnd, lTop)
		g.stmt(s.Body)
		g.popLoop()
		g.emit("\tbr %s", lTop)
		g.placeLabel(lEnd)
	case StmtDoWhile:
		lTop, lCond, lEnd := g.label(), g.label(), g.label()
		g.placeLabel(lTop)
		g.pushLoop(lEnd, lCond)
		g.stmt(s.Body)
		g.popLoop()
		g.placeLabel(lCond)
		g.expr(s.Expr)
		g.emit("\tbne t0, %s", lTop)
		g.placeLabel(lEnd)
	case StmtFor:
		lTop, lPost, lEnd := g.label(), g.label(), g.label()
		if s.Init != nil {
			g.stmt(s.Init)
		}
		g.placeLabel(lTop)
		if s.Expr != nil {
			g.expr(s.Expr)
			g.emit("\tbeq t0, %s", lEnd)
		}
		g.pushLoop(lEnd, lPost)
		g.stmt(s.Body)
		g.popLoop()
		g.placeLabel(lPost)
		if s.Post != nil {
			g.expr(s.Post)
		}
		g.emit("\tbr %s", lTop)
		g.placeLabel(lEnd)
	case StmtReturn:
		if s.Expr != nil {
			g.expr(s.Expr)
			g.emit("\tmov t0, v0")
		}
		g.emit("\tbr .Lret_%s", g.fn.Name)
	case StmtBreak:
		g.emit("\tbr %s", g.breakLbl[len(g.breakLbl)-1])
	case StmtContinue:
		g.emit("\tbr %s", g.contLbl[len(g.contLbl)-1])
	case StmtSwitch:
		g.genSwitch(s)
	case StmtCase:
		// Labels are placed by genSwitch via caseLabels; nothing here.
		if l, ok := g.caseLabels[s]; ok {
			g.placeLabel(l)
		}
	default:
		g.failf(s.Line, "unhandled statement kind %d", s.Kind)
	}
}

func (g *generator) pushLoop(brk, cont string) {
	g.breakLbl = append(g.breakLbl, brk)
	g.contLbl = append(g.contLbl, cont)
}

func (g *generator) popLoop() {
	g.breakLbl = g.breakLbl[:len(g.breakLbl)-1]
	g.contLbl = g.contLbl[:len(g.contLbl)-1]
}

// genSwitch lowers a switch to a compare-and-branch chain.
func (g *generator) genSwitch(s *Stmt) {
	if g.caseLabels == nil {
		g.caseLabels = map[*Stmt]string{}
	}
	var cases []*Stmt
	collectCases(s.Body, &cases)
	g.expr(s.Expr)
	lEnd := g.label()
	var lDefault string
	for _, cs := range cases {
		l := g.label()
		g.caseLabels[cs] = l
		if cs.IsDefault {
			lDefault = l
			continue
		}
		if cs.CaseVal >= 0 && cs.CaseVal <= 255 {
			g.emit("\tcmpeq t0, %d, t1", cs.CaseVal)
		} else {
			g.emit("\tli t1, %d", cs.CaseVal)
			g.emit("\tcmpeq t0, t1, t1")
		}
		g.emit("\tbne t1, %s", l)
	}
	if lDefault != "" {
		g.emit("\tbr %s", lDefault)
	} else {
		g.emit("\tbr %s", lEnd)
	}
	g.breakLbl = append(g.breakLbl, lEnd)
	g.stmt(s.Body)
	g.breakLbl = g.breakLbl[:len(g.breakLbl)-1]
	g.placeLabel(lEnd)
}

// collectCases gathers case labels lexically within the switch body,
// without descending into nested switches.
func collectCases(s *Stmt, out *[]*Stmt) {
	switch s.Kind {
	case StmtCase:
		*out = append(*out, s)
	case StmtSwitch:
		return
	case StmtBlock:
		for _, st := range s.List {
			collectCases(st, out)
		}
	case StmtIf:
		collectCases(s.Body, out)
		if s.Else != nil {
			collectCases(s.Else, out)
		}
	case StmtWhile, StmtDoWhile, StmtFor:
		if s.Body != nil {
			collectCases(s.Body, out)
		}
	}
}

// storeTo stores t0 into a frame slot with the width of t.
func (g *generator) storeTo(t *Type, off int64) {
	if t.Kind == TypeChar {
		g.memOff("stb", "t0", off)
	} else {
		g.memOff("stq", "t0", off)
	}
}
