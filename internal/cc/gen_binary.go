package cc

// Binary operator code generation, including assignment and
// short-circuit logical operators.

func (g *generator) binary(e *Expr) {
	switch {
	case e.Op == "=":
		g.addr(e.X)
		g.push()
		g.expr(e.Y)
		g.pop("t1")
		g.storeThrough(e.X.Type, "t1")
		return

	case assignOps[e.Op]: // compound assignment
		base := e.Op[:len(e.Op)-1]
		g.addr(e.X)
		g.push()
		g.expr(e.Y)
		if e.X.Type.Kind == TypePtr {
			g.scale("t0", e.X.Type.Elem.Size())
		}
		g.push()
		g.peek("t1", 1) // address
		g.loadThrough(e.X.Type, "t1")
		g.pop("t1") // right operand
		g.binOp(base, e)
		g.pop("t1") // address
		g.storeThrough(e.X.Type, "t1")
		return

	case e.Op == "&&":
		lShort, lEnd := g.label(), g.label()
		g.expr(e.X)
		g.emit("\tbeq t0, %s", lShort)
		g.expr(e.Y)
		g.emit("\tcmpeq t0, 0, t0")
		g.emit("\txor t0, 1, t0")
		g.emit("\tbr %s", lEnd)
		g.placeLabel(lShort)
		g.emit("\tclr t0")
		g.placeLabel(lEnd)
		return

	case e.Op == "||":
		lShort, lEnd := g.label(), g.label()
		g.expr(e.X)
		g.emit("\tbne t0, %s", lShort)
		g.expr(e.Y)
		g.emit("\tcmpeq t0, 0, t0")
		g.emit("\txor t0, 1, t0")
		g.emit("\tbr %s", lEnd)
		g.placeLabel(lShort)
		g.emit("\tli t0, 1")
		g.placeLabel(lEnd)
		return
	}

	// Pointer +/- integer-constant fast path.
	xd := e.X.Type.Decays()
	if (e.Op == "+" || e.Op == "-") && xd.Kind == TypePtr && e.Y.Kind == ExprNum {
		g.expr(e.X)
		d := e.Y.Num * xd.Elem.Size()
		if e.Op == "-" {
			d = -d
		}
		g.addImm("t0", d)
		return
	}

	// Division/modulo by a positive power-of-two constant: strength-reduce
	// to shifts with the usual signed-rounding correction
	// (q = (n + ((n>>63) & (d-1))) >> log2(d)), avoiding the software
	// divide.
	if (e.Op == "/" || e.Op == "%") && e.Y.Kind == ExprNum && xd.IsInteger() {
		if d := e.Y.Num; d > 0 && d&(d-1) == 0 {
			g.expr(e.X)
			if d == 1 {
				if e.Op == "%" {
					g.emit("\tclr t0")
				}
				return
			}
			k := log2(d)
			g.emit("\tmov t0, t3")
			g.emit("\tsra t0, 63, t1")
			if d-1 <= 255 {
				g.emit("\tand t1, %d, t1", d-1)
			} else {
				g.emit("\tli t2, %d", d-1)
				g.emit("\tand t1, t2, t1")
			}
			g.emit("\taddq t3, t1, t0")
			g.emit("\tsra t0, %d, t0", k)
			if e.Op == "%" {
				g.emit("\tsll t0, %d, t0", k)
				g.emit("\tsubq t3, t0, t0")
			}
			return
		}
	}

	// Integer-literal fast path for commutative-safe forms.
	if e.Y.Kind == ExprNum && e.Y.Num >= 0 && e.Y.Num <= 255 && xd.IsInteger() && e.X.Type.Decays().IsInteger() {
		lit := e.Y.Num
		switch e.Op {
		case "+", "-", "*", "&", "|", "^", "<<", ">>", "==", "!=", "<", "<=":
			g.expr(e.X)
			switch e.Op {
			case "+":
				g.emit("\taddq t0, %d, t0", lit)
			case "-":
				g.emit("\tsubq t0, %d, t0", lit)
			case "*":
				g.emit("\tmulq t0, %d, t0", lit)
			case "&":
				g.emit("\tand t0, %d, t0", lit)
			case "|":
				g.emit("\tbis t0, %d, t0", lit)
			case "^":
				g.emit("\txor t0, %d, t0", lit)
			case "<<":
				g.emit("\tsll t0, %d, t0", lit)
			case ">>":
				g.emit("\tsra t0, %d, t0", lit)
			case "==":
				g.emit("\tcmpeq t0, %d, t0", lit)
			case "!=":
				g.emit("\tcmpeq t0, %d, t0", lit)
				g.emit("\txor t0, 1, t0")
			case "<":
				g.emit("\tcmplt t0, %d, t0", lit)
			case "<=":
				g.emit("\tcmple t0, %d, t0", lit)
			}
			return
		}
	}

	// General path: X in a slot, Y in t1, X back in t0.
	g.expr(e.X)
	if e.Op == "+" && xd.IsInteger() && e.Y.Type.Decays().Kind == TypePtr {
		// int + ptr: scale the integer side.
		g.scale("t0", e.Y.Type.Decays().Elem.Size())
	}
	g.push()
	g.expr(e.Y)
	yd := e.Y.Type.Decays()
	if xd.Kind == TypePtr && yd.IsInteger() && (e.Op == "+" || e.Op == "-") {
		g.scale("t0", xd.Elem.Size())
	}
	g.emit("\tmov t0, t1")
	g.pop("t0")
	g.binOp(e.Op, e)

	// Pointer difference: divide by the element size.
	if e.Op == "-" && xd.Kind == TypePtr && yd.Kind == TypePtr {
		size := xd.Elem.Size()
		switch {
		case size == 1:
		case size&(size-1) == 0:
			g.emit("\tsra t0, %d, t0", log2(size))
		default:
			g.emit("\tmov t0, a0")
			g.emit("\tli a1, %d", size)
			g.emit("\tbsr ra, __divq")
			g.emit("\tmov v0, t0")
		}
	}
}

// binOp combines t0 (left) and t1 (right) into t0 for a simple operator.
// Division and modulo call the runtime support routines (the Alpha has no
// integer-divide instruction; OSF/1 provides these in libc).
func (g *generator) binOp(op string, e *Expr) {
	switch op {
	case "+":
		g.emit("\taddq t0, t1, t0")
	case "-":
		g.emit("\tsubq t0, t1, t0")
	case "*":
		g.emit("\tmulq t0, t1, t0")
	case "/", "%":
		g.emit("\tmov t0, a0")
		g.emit("\tmov t1, a1")
		if op == "/" {
			g.emit("\tbsr ra, __divq")
		} else {
			g.emit("\tbsr ra, __remq")
		}
		g.emit("\tmov v0, t0")
	case "&":
		g.emit("\tand t0, t1, t0")
	case "|":
		g.emit("\tbis t0, t1, t0")
	case "^":
		g.emit("\txor t0, t1, t0")
	case "<<":
		g.emit("\tsll t0, t1, t0")
	case ">>":
		g.emit("\tsra t0, t1, t0")
	case "==":
		g.emit("\tcmpeq t0, t1, t0")
	case "!=":
		g.emit("\tcmpeq t0, t1, t0")
		g.emit("\txor t0, 1, t0")
	case "<":
		g.emit("\tcmplt t0, t1, t0")
	case "<=":
		g.emit("\tcmple t0, t1, t0")
	case ">":
		g.emit("\tcmplt t1, t0, t0")
	case ">=":
		g.emit("\tcmple t1, t0, t0")
	default:
		g.failf(e.Line, "unhandled binary operator %q", op)
	}
}
