package cc

import (
	"fmt"
	"strings"
)

// Data-section emission: string literals and global variables.

// strLabel interns a string literal and returns its data label.
func (g *generator) strLabel(s []byte) string {
	key := string(s)
	if l, ok := g.strs[key]; ok {
		return l
	}
	l := fmt.Sprintf(".Lstr%d", len(g.strOrder))
	g.strs[key] = l
	g.strOrder = append(g.strOrder, key)
	return l
}

func (g *generator) genData(prog *Program) {
	var data, bss strings.Builder
	emitted := map[string]bool{}
	for _, d := range prog.Decls {
		if d.Kind != DeclVar || d.Extern || emitted[d.Name] {
			continue
		}
		emitted[d.Name] = true
		if d.Init == nil {
			if d.Static {
				fmt.Fprintf(&bss, "\t.lcomm %s, %d\n", d.Name, d.Type.Size())
			} else {
				fmt.Fprintf(&bss, "\t.comm %s, %d\n", d.Name, d.Type.Size())
			}
			continue
		}
		if !d.Static {
			fmt.Fprintf(&data, "\t.globl %s\n", d.Name)
		}
		fmt.Fprintf(&data, "\t.align %d\n", log2(d.Type.Align()))
		fmt.Fprintf(&data, "%s:\n", d.Name)
		g.genInit(&data, d.Type, d.Init, d.Line)
	}
	// String literals referenced from code or initializers.
	for i, key := range g.strOrder {
		fmt.Fprintf(&data, ".Lstr%d:\n", i)
		genStringBytes(&data, []byte(key))
	}
	if data.Len() > 0 {
		g.out.WriteString("\t.data\n")
		g.out.WriteString(data.String())
	}
	if bss.Len() > 0 {
		g.out.WriteString("\t.bss\n")
		g.out.WriteString(bss.String())
	}
}

func genStringBytes(w *strings.Builder, s []byte) {
	w.WriteString("\t.byte ")
	for _, b := range s {
		fmt.Fprintf(w, "%d, ", b)
	}
	w.WriteString("0\n")
}

// genInit renders one initializer for a variable of type t.
func (g *generator) genInit(w *strings.Builder, t *Type, e *Expr, line int) {
	switch {
	case e.Kind == ExprInitList:
		for _, item := range e.Args {
			g.genInit(w, t.Elem, item, line)
		}
		if missing := t.Len - int64(len(e.Args)); missing > 0 {
			fmt.Fprintf(w, "\t.space %d\n", missing*t.Elem.Size())
		}
	case t.Kind == TypeChar:
		v := e.Folded
		if v == nil || v.sym != "" || v.str != nil {
			g.failf(line, "bad char initializer")
			return
		}
		fmt.Fprintf(w, "\t.byte %d\n", uint8(v.num))
	default: // long or pointer
		v := e.Folded
		switch {
		case v == nil:
			g.failf(line, "missing folded initializer")
		case v.str != nil:
			fmt.Fprintf(w, "\t.quad %s\n", g.strLabel(v.str))
		case v.sym != "" && v.num < 0:
			fmt.Fprintf(w, "\t.quad %s-%d\n", v.sym, -v.num)
		case v.sym != "" && v.num > 0:
			fmt.Fprintf(w, "\t.quad %s+%d\n", v.sym, v.num)
		case v.sym != "":
			fmt.Fprintf(w, "\t.quad %s\n", v.sym)
		default:
			fmt.Fprintf(w, "\t.quad %d\n", v.num)
		}
	}
}
