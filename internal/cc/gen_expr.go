package cc

// Expression code generation. Convention: expr leaves the value in t0;
// addr leaves an lvalue's address in t0. Registers t1-t4 are scratch
// within one operation; values that must survive nested evaluation are
// spilled to the frame evaluation area via push/pop.

// expr generates code computing e into t0.
func (g *generator) expr(e *Expr) {
	if g.err != nil {
		return
	}
	switch e.Kind {
	case ExprNum:
		g.emit("\tli t0, %d", e.Num)

	case ExprString:
		g.emit("\tla t0, %s", g.strLabel(e.Str))

	case ExprIdent:
		switch {
		case e.Type.Kind == TypeArray, e.Type.Kind == TypeStruct:
			g.addr(e) // arrays and structs evaluate to their address
		case e.Local != nil:
			g.loadFrom(e.Type, e.Local.Offset)
		case e.Global != nil && e.Global.Kind == DeclFunc:
			g.failf(e.Line, "function %q used as a value", e.Name)
		default:
			g.emit("\tla t1, %s", e.Global.Name)
			g.loadThrough(e.Type, "t1")
		}

	case ExprVa:
		g.addrOfFrame("t0", g.frame.vaOff)

	case ExprArg:
		g.expr(e.X)
		g.emit("\tsll t0, 3, t0")
		g.addrOfFrame("t1", g.frame.vaOff)
		g.emit("\taddq t1, t0, t1")
		g.emit("\tldq t0, 0(t1)")

	case ExprUnary:
		g.unary(e)

	case ExprPostfix:
		g.incDec(e, true)

	case ExprBinary:
		g.binary(e)

	case ExprCond:
		lElse, lEnd := g.label(), g.label()
		g.expr(e.X)
		g.emit("\tbeq t0, %s", lElse)
		g.expr(e.Y)
		g.emit("\tbr %s", lEnd)
		g.placeLabel(lElse)
		g.expr(e.Else)
		g.placeLabel(lEnd)

	case ExprCall:
		g.call(e)

	case ExprIndex, ExprMember:
		if e.Type.Kind == TypeArray || e.Type.Kind == TypeStruct {
			g.addr(e)
			return
		}
		g.addr(e)
		g.emit("\tmov t0, t1")
		g.loadThrough(e.Type, "t1")

	case ExprSizeof:
		g.emit("\tli t0, %d", e.Num)

	case ExprCast:
		g.expr(e.X)
		if e.CastTo.Kind == TypeChar {
			g.emit("\tand t0, 0xff, t0")
		}

	default:
		g.failf(e.Line, "unhandled expression kind %d", e.Kind)
	}
}

// addr generates code computing the address of lvalue e into t0.
func (g *generator) addr(e *Expr) {
	if g.err != nil {
		return
	}
	switch e.Kind {
	case ExprIdent:
		if e.Local != nil {
			g.addrOfFrame("t0", e.Local.Offset)
		} else {
			g.emit("\tla t0, %s", e.Global.Name)
		}

	case ExprUnary:
		if e.Op != "*" {
			g.failf(e.Line, "address of non-lvalue unary %q", e.Op)
			return
		}
		g.expr(e.X) // pointer value is the address

	case ExprIndex:
		g.expr(e.X) // decayed pointer value
		g.push()
		g.expr(e.Y)
		g.scale("t0", e.Type.Size())
		g.pop("t1")
		g.emit("\taddq t1, t0, t0")

	case ExprMember:
		if e.Arrow {
			g.expr(e.X)
		} else {
			g.addr(e.X)
		}
		if e.Field.Offset != 0 {
			g.addImm("t0", e.Field.Offset)
		}

	case ExprString:
		g.emit("\tla t0, %s", g.strLabel(e.Str))

	default:
		g.failf(e.Line, "cannot take the address of this expression")
	}
}

// scale multiplies reg by a constant element size.
func (g *generator) scale(reg string, size int64) {
	switch {
	case size == 1:
	case size > 0 && size&(size-1) == 0:
		g.emit("\tsll %s, %d, %s", reg, log2(size), reg)
	case size >= 0 && size <= 255:
		g.emit("\tmulq %s, %d, %s", reg, size, reg)
	default:
		g.emit("\tli t2, %d", size)
		g.emit("\tmulq %s, t2, %s", reg, reg)
	}
}

func log2(v int64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// addImm adds a constant to reg in place.
func (g *generator) addImm(reg string, v int64) {
	switch {
	case v == 0:
	case v >= 0 && v <= 255:
		g.emit("\taddq %s, %d, %s", reg, v, reg)
	case v < 0 && v >= -255:
		g.emit("\tsubq %s, %d, %s", reg, -v, reg)
	case v >= -0x8000 && v <= 0x7FFF:
		g.emit("\tlda %s, %d(%s)", reg, v, reg)
	default:
		g.emit("\tli t2, %d", v)
		g.emit("\taddq %s, t2, %s", reg, reg)
	}
}

// loadFrom loads a scalar of type t at a frame offset into t0.
func (g *generator) loadFrom(t *Type, off int64) {
	if t.Kind == TypeChar {
		g.memOff("ldbu", "t0", off)
	} else {
		g.memOff("ldq", "t0", off)
	}
}

// loadThrough loads a scalar of type t from the address in reg into t0.
func (g *generator) loadThrough(t *Type, reg string) {
	if t.Kind == TypeChar {
		g.emit("\tldbu t0, 0(%s)", reg)
	} else {
		g.emit("\tldq t0, 0(%s)", reg)
	}
}

// storeThrough stores t0 (scalar of type t) to the address in reg.
func (g *generator) storeThrough(t *Type, reg string) {
	if t.Kind == TypeChar {
		g.emit("\tstb t0, 0(%s)", reg)
	} else {
		g.emit("\tstq t0, 0(%s)", reg)
	}
}

func (g *generator) unary(e *Expr) {
	switch e.Op {
	case "-":
		g.expr(e.X)
		g.emit("\tnegq t0, t0")
	case "~":
		g.expr(e.X)
		g.emit("\tnot t0, t0")
	case "!":
		g.expr(e.X)
		g.emit("\tcmpeq t0, 0, t0")
	case "*":
		g.expr(e.X)
		if e.Type.Kind == TypeArray || e.Type.Kind == TypeStruct {
			return // address is the value
		}
		g.emit("\tmov t0, t1")
		g.loadThrough(e.Type, "t1")
	case "&":
		g.addr(e.X)
	case "++", "--":
		g.incDec(e, false)
	default:
		g.failf(e.Line, "unhandled unary %q", e.Op)
	}
}

// incDec handles ++/-- (pre when post is false).
func (g *generator) incDec(e *Expr, post bool) {
	delta := int64(1)
	if t := e.X.Type; t.Kind == TypePtr {
		delta = t.Elem.Size()
	}
	g.addr(e.X)
	g.emit("\tmov t0, t2") // address
	g.loadThrough(e.X.Type, "t2")
	g.emit("\tmov t0, t3") // old value
	neg := e.Op == "--"
	switch {
	case delta <= 255 && !neg:
		g.emit("\taddq t0, %d, t0", delta)
	case delta <= 255 && neg:
		g.emit("\tsubq t0, %d, t0", delta)
	default:
		g.emit("\tli t4, %d", delta)
		if neg {
			g.emit("\tsubq t0, t4, t0")
		} else {
			g.emit("\taddq t0, t4, t0")
		}
	}
	g.storeThrough(e.X.Type, "t2")
	if post {
		g.emit("\tmov t3, t0")
	}
}

func (g *generator) call(e *Expr) {
	for _, a := range e.Args {
		g.expr(a)
		g.push()
	}
	n := len(e.Args)
	if n > 6 {
		out := (n - 6) * 8
		if out > g.maxOut {
			g.maxOut = out
		}
	}
	for i := n - 1; i >= 0; i-- {
		if i < 6 {
			g.pop(regName(i))
		} else {
			g.pop("t0")
			g.memOff("stq", "t0", int64(i-6)*8)
		}
	}
	g.emit("\tbsr ra, %s", e.X.Global.Name)
	g.emit("\tmov v0, t0")
}

func regName(i int) string {
	return [6]string{"a0", "a1", "a2", "a3", "a4", "a5"}[i]
}
