package cc

import "fmt"

type parser struct {
	name    string
	toks    []token
	pos     int
	structs map[string]*Type // tag -> struct type (shared, possibly incomplete)
}

// parse builds the AST for one translation unit.
func parse(name string, toks []token) (*Program, error) {
	p := &parser{name: name, toks: toks, structs: map[string]*Type{}}
	prog := &Program{}
	for !p.at(tokEOF) {
		ds, err := p.topLevel()
		if err != nil {
			return nil, err
		}
		prog.Decls = append(prog.Decls, ds...)
	}
	return prog, nil
}

func (p *parser) tok() token        { return p.toks[p.pos] }
func (p *parser) at(k tokKind) bool { return p.tok().kind == k }
func (p *parser) next() token {
	t := p.tok()
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) atText(s string) bool {
	t := p.tok()
	return (t.kind == tokPunct || t.kind == tokKeyword) && t.text == s
}

func (p *parser) accept(s string) bool {
	if p.atText(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(s string) error {
	if !p.accept(s) {
		return p.errf("expected %q, found %s", s, p.tok())
	}
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", p.name, p.tok().line, fmt.Sprintf(format, args...))
}

// atType reports whether the current token starts a type.
func (p *parser) atType() bool {
	t := p.tok()
	if t.kind != tokKeyword {
		return false
	}
	switch t.text {
	case "char", "int", "long", "void", "struct", "unsigned", "const":
		return true
	}
	return false
}

// baseType parses a type specifier (without declarator stars).
func (p *parser) baseType() (*Type, error) {
	p.accept("const") // ignored qualifier
	switch {
	case p.accept("void"):
		return typeVoid, nil
	case p.accept("char"):
		return typeChar, nil
	case p.accept("unsigned"):
		// "unsigned long"/"unsigned int"/bare "unsigned" all map to long.
		p.accept("long")
		p.accept("int")
		p.accept("char") // unsigned char == char here
		return typeLong, nil
	case p.accept("int"), p.accept("long"):
		p.accept("int")  // "long int"
		p.accept("long") // "long long"
		return typeLong, nil
	case p.accept("struct"):
		if !p.at(tokIdent) {
			return nil, p.errf("struct needs a tag")
		}
		tag := p.next().text
		st, ok := p.structs[tag]
		if !ok {
			st = &Type{Kind: TypeStruct, StructName: tag, size: -1}
			p.structs[tag] = st
		}
		if p.atText("{") {
			if st.Fields != nil || st.size >= 0 {
				return nil, p.errf("struct %s redefined", tag)
			}
			if err := p.structBody(st); err != nil {
				return nil, err
			}
		}
		return st, nil
	}
	return nil, p.errf("expected type, found %s", p.tok())
}

func (p *parser) structBody(st *Type) error {
	if err := p.expect("{"); err != nil {
		return err
	}
	for !p.accept("}") {
		base, err := p.baseType()
		if err != nil {
			return err
		}
		for {
			ft, name, err := p.declarator(base)
			if err != nil {
				return err
			}
			if name == "" {
				return p.errf("struct field needs a name")
			}
			st.Fields = append(st.Fields, Field{Name: name, Type: ft})
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(";"); err != nil {
			return err
		}
	}
	if err := layoutStruct(st); err != nil {
		return p.errf("%v", err)
	}
	return nil
}

// declarator parses "*"* name? ("[" n "]")* around a base type.
func (p *parser) declarator(base *Type) (*Type, string, error) {
	t := base
	for p.accept("*") {
		p.accept("const")
		t = ptrTo(t)
	}
	name := ""
	if p.at(tokIdent) {
		name = p.next().text
	}
	// Array suffixes apply outermost-first: `long a[2][3]` is array 2 of
	// array 3 of long.
	var dims []int64
	for p.accept("[") {
		if p.atText("]") {
			return nil, "", p.errf("array size required")
		}
		sz, err := p.constExpr()
		if err != nil {
			return nil, "", err
		}
		if sz <= 0 {
			return nil, "", p.errf("array size must be positive")
		}
		dims = append(dims, sz)
		if err := p.expect("]"); err != nil {
			return nil, "", err
		}
	}
	for i := len(dims) - 1; i >= 0; i-- {
		t = arrayOf(t, dims[i])
	}
	return t, name, nil
}

// constExpr parses a constant integer expression usable in array bounds
// and case labels: literals, character constants, sizeof(type), unary
// minus, parentheses, and + - * / % << >> with the usual precedence.
func (p *parser) constExpr() (int64, error) {
	v, err := p.constAdd()
	if err != nil {
		return 0, err
	}
	for {
		var op string
		switch {
		case p.accept("<<"):
			op = "<<"
		case p.accept(">>"):
			op = ">>"
		default:
			return v, nil
		}
		rhs, err := p.constAdd()
		if err != nil {
			return 0, err
		}
		if op == "<<" {
			v <<= uint64(rhs) & 63
		} else {
			v >>= uint64(rhs) & 63
		}
	}
}

func (p *parser) constAdd() (int64, error) {
	v, err := p.constMul()
	if err != nil {
		return 0, err
	}
	for {
		switch {
		case p.accept("+"):
			rhs, err := p.constMul()
			if err != nil {
				return 0, err
			}
			v += rhs
		case p.accept("-"):
			rhs, err := p.constMul()
			if err != nil {
				return 0, err
			}
			v -= rhs
		default:
			return v, nil
		}
	}
}

func (p *parser) constMul() (int64, error) {
	v, err := p.constFactor()
	if err != nil {
		return 0, err
	}
	for {
		var op string
		switch {
		case p.accept("*"):
			op = "*"
		case p.accept("/"):
			op = "/"
		case p.accept("%"):
			op = "%"
		default:
			return v, nil
		}
		rhs, err := p.constFactor()
		if err != nil {
			return 0, err
		}
		if rhs == 0 && op != "*" {
			return 0, p.errf("division by zero in constant expression")
		}
		switch op {
		case "*":
			v *= rhs
		case "/":
			v /= rhs
		case "%":
			v %= rhs
		}
	}
}

func (p *parser) constFactor() (int64, error) {
	neg := false
	for {
		if p.accept("-") {
			neg = !neg
			continue
		}
		break
	}
	var v int64
	switch {
	case p.at(tokNumber), p.at(tokChar):
		v = p.next().num
	case p.accept("("):
		inner, err := p.constExpr()
		if err != nil {
			return 0, err
		}
		if err := p.expect(")"); err != nil {
			return 0, err
		}
		v = inner
	case p.atText("sizeof"):
		p.next()
		if err := p.expect("("); err != nil {
			return 0, err
		}
		base, err := p.baseType()
		if err != nil {
			return 0, err
		}
		t, _, err := p.declarator(base)
		if err != nil {
			return 0, err
		}
		if err := p.expect(")"); err != nil {
			return 0, err
		}
		v = t.Size()
	default:
		return 0, p.errf("expected constant, found %s", p.tok())
	}
	if neg {
		v = -v
	}
	return v, nil
}

func (p *parser) topLevel() ([]*Decl, error) {
	extern := p.accept("extern")
	static := p.accept("static")
	if !extern {
		extern = p.accept("extern")
	}
	base, err := p.baseType()
	if err != nil {
		return nil, err
	}
	// Bare "struct S { ... };" definition.
	if p.accept(";") {
		if base.Kind != TypeStruct {
			return nil, p.errf("declaration needs a name")
		}
		return nil, nil
	}
	var out []*Decl
	for {
		line := p.tok().line
		t, name, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		if name == "" {
			return nil, p.errf("declaration needs a name")
		}
		if p.atText("(") {
			// Function prototype or definition.
			d, err := p.funcRest(t, name, line, extern, static)
			if err != nil {
				return nil, err
			}
			out = append(out, d)
			if d.Body != nil {
				return out, nil // definition ends the declaration list
			}
			if p.accept(",") {
				continue
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			return out, nil
		}
		d := &Decl{Kind: DeclVar, Name: name, Type: t, Line: line, Extern: extern, Static: static}
		if p.accept("=") {
			init, err := p.initializer()
			if err != nil {
				return nil, err
			}
			d.Init = init
		}
		out = append(out, d)
		if p.accept(",") {
			continue
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return out, nil
	}
}

// initializer parses an expression or a brace-enclosed list.
func (p *parser) initializer() (*Expr, error) {
	if p.accept("{") {
		e := &Expr{Kind: ExprInitList, Line: p.tok().line}
		for !p.accept("}") {
			item, err := p.initializer()
			if err != nil {
				return nil, err
			}
			e.Args = append(e.Args, item)
			if !p.accept(",") {
				if err := p.expect("}"); err != nil {
					return nil, err
				}
				break
			}
		}
		return e, nil
	}
	return p.assignExpr()
}

func (p *parser) funcRest(ret *Type, name string, line int, extern, static bool) (*Decl, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	ft := &Type{Kind: TypeFunc, Ret: ret}
	var names []string
	if p.accept(")") {
		// K&R empty parameter list: treat as ().
	} else if p.atText("void") && p.toks[p.pos+1].text == ")" {
		p.next()
		p.next()
	} else {
		for {
			if p.accept("...") {
				ft.Variadic = true
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				break
			}
			base, err := p.baseType()
			if err != nil {
				return nil, err
			}
			pt, pn, err := p.declarator(base)
			if err != nil {
				return nil, err
			}
			// Array parameters decay to pointers.
			pt = pt.Decays()
			ft.Params = append(ft.Params, pt)
			names = append(names, pn)
			if p.accept(",") {
				continue
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			break
		}
	}
	d := &Decl{Kind: DeclFunc, Name: name, Type: ft, Line: line, Extern: extern, Static: static, Params: names}
	if p.atText("{") {
		for i, n := range names {
			if n == "" {
				return nil, p.errf("parameter %d of %s needs a name", i, name)
			}
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		d.Body = body
	} else {
		d.Extern = true
	}
	return d, nil
}

func (p *parser) block() (*Stmt, error) {
	line := p.tok().line
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	s := &Stmt{Kind: StmtBlock, Line: line}
	for !p.accept("}") {
		if p.at(tokEOF) {
			return nil, p.errf("unexpected end of file in block")
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		s.List = append(s.List, st)
	}
	return s, nil
}

func (p *parser) statement() (*Stmt, error) {
	line := p.tok().line
	switch {
	case p.atText("{"):
		return p.block()
	case p.accept(";"):
		return &Stmt{Kind: StmtEmpty, Line: line}, nil
	case p.accept("if"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		s := &Stmt{Kind: StmtIf, Line: line, Expr: cond, Body: body}
		if p.accept("else") {
			s.Else, err = p.statement()
			if err != nil {
				return nil, err
			}
		}
		return s, nil
	case p.accept("while"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &Stmt{Kind: StmtWhile, Line: line, Expr: cond, Body: body}, nil
	case p.accept("do"):
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		if err := p.expect("while"); err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Stmt{Kind: StmtDoWhile, Line: line, Expr: cond, Body: body}, nil
	case p.accept("for"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		s := &Stmt{Kind: StmtFor, Line: line}
		if !p.atText(";") {
			if p.atType() {
				init, err := p.declStmt()
				if err != nil {
					return nil, err
				}
				s.Init = init
			} else {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				s.Init = &Stmt{Kind: StmtExpr, Line: line, Expr: e}
				if err := p.expect(";"); err != nil {
					return nil, err
				}
			}
		} else {
			p.next()
		}
		if !p.atText(";") {
			cond, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Expr = cond
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		if !p.atText(")") {
			post, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Post = post
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		s.Body = body
		return s, nil
	case p.accept("return"):
		s := &Stmt{Kind: StmtReturn, Line: line}
		if !p.atText(";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Expr = e
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return s, nil
	case p.accept("break"):
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Stmt{Kind: StmtBreak, Line: line}, nil
	case p.accept("continue"):
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &Stmt{Kind: StmtContinue, Line: line}, nil
	case p.accept("switch"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &Stmt{Kind: StmtSwitch, Line: line, Expr: cond, Body: body}, nil
	case p.accept("case"):
		v, err := p.constExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		return &Stmt{Kind: StmtCase, Line: line, CaseVal: v}, nil
	case p.accept("default"):
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		return &Stmt{Kind: StmtCase, Line: line, IsDefault: true}, nil
	case p.atType():
		return p.declStmt()
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return &Stmt{Kind: StmtExpr, Line: line, Expr: e}, nil
}

// declStmt parses a local declaration: `type declarator (= expr)?
// (, declarator (= expr)?)* ;` and produces a block of decl statements
// when several variables are declared at once.
func (p *parser) declStmt() (*Stmt, error) {
	line := p.tok().line
	base, err := p.baseType()
	if err != nil {
		return nil, err
	}
	var stmts []*Stmt
	for {
		t, name, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		if name == "" {
			return nil, p.errf("declaration needs a name")
		}
		s := &Stmt{Kind: StmtDecl, Line: line, Decl: &Local{Name: name, Type: t}}
		if p.accept("=") {
			init, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			s.DeclInit = init
		}
		stmts = append(stmts, s)
		if p.accept(",") {
			continue
		}
		break
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if len(stmts) == 1 {
		return stmts[0], nil
	}
	return &Stmt{Kind: StmtBlock, Line: line, List: stmts, Transparent: true}, nil
}
