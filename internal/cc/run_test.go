package cc_test

// Execution tests: compile MiniC with the real runtime library, run on
// the VM, and check observable behavior. This is the deep end-to-end
// validation of the compiler substrate that the ATOM reproduction's
// analysis routines are written in.

import (
	"strings"
	"testing"

	"atom/internal/cc"
	"atom/internal/rtl"
	"atom/internal/vm"
)

func runProg(t *testing.T, src string, cfg vm.Config) (*vm.Machine, int) {
	t.Helper()
	exe, err := rtl.BuildProgram("test.c", src)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	m, err := vm.New(exe, cfg)
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	code, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v (stdout=%q stderr=%q)", err, m.Stdout, m.Stderr)
	}
	return m, code
}

func TestPrograms(t *testing.T) {
	cases := []struct {
		name string
		src  string
		out  string
		code int
	}{
		{
			name: "arith_precedence",
			src: `#include <stdio.h>
int main() {
	printf("%d %d %d %d\n", 2+3*4, (2+3)*4, 10-2-3, 100/5/2);
	printf("%d %d\n", 7%3, -7%3);
	printf("%d %d %d\n", 1<<10, 1024>>3, -16>>2);
	printf("%d %d %d\n", 0xff & 0x0f, 0xf0 | 0x0f, 0xff ^ 0x0f);
	return 0;
}`,
			out: "14 20 5 10\n1 -1\n1024 128 -4\n15 255 240\n",
		},
		{
			name: "division_signs",
			src: `#include <stdio.h>
int main() {
	printf("%d %d %d %d\n", 17/5, -17/5, 17/-5, -17/-5);
	printf("%d %d %d %d\n", 17%5, -17%5, 17%-5, -17%-5);
	printf("%d\n", 1000000000000 / 1000000);
	return 0;
}`,
			out: "3 -3 -3 3\n2 -2 2 -2\n1000000\n",
		},
		{
			name: "comparisons_logical",
			src: `#include <stdio.h>
int side = 0;
int bump() { side++; return 1; }
int main() {
	printf("%d%d%d%d%d%d\n", 1<2, 2<=2, 3>2, 2>=3, 1==1, 1!=1);
	if (0 && bump()) {}
	if (1 || bump()) {}
	printf("side=%d\n", side);
	if (1 && bump()) {}
	if (0 || bump()) {}
	printf("side=%d\n", side);
	printf("%d %d %d\n", !0, !5, !!7);
	return 0;
}`,
			out: "111010\nside=0\nside=2\n1 0 1\n",
		},
		{
			name: "loops",
			src: `#include <stdio.h>
int main() {
	long s = 0;
	long i;
	for (i = 1; i <= 100; i++) s += i;
	printf("%d\n", s);
	s = 0; i = 0;
	while (i < 10) { i++; if (i == 3) continue; if (i == 8) break; s += i; }
	printf("%d %d\n", s, i);
	s = 0;
	do { s++; } while (s < 5);
	printf("%d\n", s);
	return 0;
}`,
			out: "5050\n25 8\n5\n",
		},
		{
			name: "recursion",
			src: `#include <stdio.h>
long fib(long n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
long isEven(long n);
long isOdd(long n) { if (n == 0) return 0; return isEven(n-1); }
long isEven(long n) { if (n == 0) return 1; return isOdd(n-1); }
int main() {
	printf("%d %d %d\n", fib(10), fib(20), isEven(41) + 2*isOdd(41));
	return 0;
}`,
			out: "55 6765 2\n",
		},
		{
			name: "pointers",
			src: `#include <stdio.h>
int main() {
	long x = 5;
	long *p = &x;
	*p = 7;
	long arr[5];
	long i;
	for (i = 0; i < 5; i++) arr[i] = i * i;
	long *q = arr + 1;
	printf("%d %d %d %d\n", x, *q, q[2], *(arr + 4));
	printf("%d\n", (arr + 4) - arr);
	q = arr;
	q++;
	++q;
	printf("%d %d\n", *q, *--q);
	return 0;
}`,
			out: "7 1 9 16\n4\n4 1\n",
		},
		{
			name: "arrays_2d",
			src: `#include <stdio.h>
long m[3][4];
int main() {
	long i, j, s;
	for (i = 0; i < 3; i++)
		for (j = 0; j < 4; j++)
			m[i][j] = i * 10 + j;
	s = 0;
	for (i = 0; i < 3; i++) s += m[i][3];
	printf("%d %d %d\n", s, m[2][1], sizeof(m));
	return 0;
}`,
			out: "39 21 96\n",
		},
		{
			name: "structs",
			src: `#include <stdio.h>
#include <stdlib.h>
struct point { long x; long y; char tag; };
struct node { long val; struct node *next; };
struct point grid[4];
int main() {
	struct point p;
	p.x = 3; p.y = 4; p.tag = 'A';
	struct point *pp = &p;
	pp->x += 10;
	printf("%d %d %c %d\n", p.x, p.y, p.tag, sizeof(struct point));
	grid[2].x = 9;
	printf("%d %d\n", grid[2].x, grid[1].x);
	struct node *head = (struct node *)0;
	long i;
	for (i = 0; i < 5; i++) {
		struct node *n = (struct node *)malloc(sizeof(struct node));
		n->val = i;
		n->next = head;
		head = n;
	}
	long s = 0;
	while (head) { s = s * 10 + head->val; head = head->next; }
	printf("%d\n", s);
	return 0;
}`,
			out: "13 4 A 24\n9 0\n43210\n",
		},
		{
			name: "char_semantics",
			src: `#include <stdio.h>
int main() {
	char c = 255;
	c = c + 2;
	printf("%d\n", c);
	char buf[4];
	buf[0] = 'h'; buf[1] = 'i'; buf[2] = 0;
	printf("%s %d\n", buf, 'z' - 'a');
	char big = 300;
	printf("%d\n", big);
	return 0;
}`,
			out: "1\nhi 25\n44\n",
		},
		{
			name: "globals",
			src: `#include <stdio.h>
long counter = 100;
long table[5] = {2, 3, 5, 7};
char *msg = "global string";
long bss_arr[100];
static long file_local = 7;
long *ptr_to_counter = &counter;
int main() {
	counter += table[3];
	printf("%d %d %d %s %d %d\n", counter, table[4], bss_arr[50], msg, file_local, *ptr_to_counter);
	return 0;
}`,
			out: "107 0 0 global string 7 107\n",
		},
		{
			name: "compound_assign_incdec",
			src: `#include <stdio.h>
int main() {
	long x = 10;
	x += 5; x -= 3; x *= 2; x /= 3; x %= 5;
	printf("%d\n", x);
	x = 6;
	x &= 5; x |= 8; x ^= 1; x <<= 2; x >>= 1;
	printf("%d\n", x);
	long i = 5;
	printf("%d %d %d %d %d\n", i++, i, ++i, i--, --i);
	return 0;
}`,
			out: "3\n26\n5 6 7 7 5\n",
		},
		{
			name: "switch",
			src: `#include <stdio.h>
long classify(long c) {
	switch (c) {
	case 'a': return 1;
	case 'b': return 2;
	case 1000: return 3;
	case -5: return 4;
	default: return 99;
	}
}
int main() {
	printf("%d %d %d %d %d\n", classify('a'), classify('b'), classify(1000), classify(-5), classify(0));
	long s = 0;
	long i;
	for (i = 0; i < 4; i++) {
		switch (i) {
		case 0: s += 1;
		case 1: s += 10; break;
		case 2: s += 100; break;
		default: s += 1000;
		}
	}
	printf("%d\n", s);
	return 0;
}`,
			out: "1 2 3 4 99\n1121\n",
		},
		{
			name: "ternary",
			src: `#include <stdio.h>
int main() {
	long a = 5, b = 9;
	printf("%d %d\n", a > b ? a : b, a < b ? a : b);
	printf("%d\n", (a > 3 ? 1 : 0) + (b > 30 ? 10 : 20));
	return 0;
}`,
			out: "9 5\n21\n",
		},
		{
			name: "many_args",
			src: `#include <stdio.h>
long sum9(long a, long b, long c, long d, long e, long f, long g, long h, long i) {
	return a + 2*b + 3*c + 4*d + 5*e + 6*f + 7*g + 8*h + 9*i;
}
int main() {
	printf("%d\n", sum9(1, 2, 3, 4, 5, 6, 7, 8, 9));
	printf("%d\n", sum9(9, 8, 7, 6, 5, 4, 3, 2, 1));
	return 0;
}`,
			out: "285\n165\n",
		},
		{
			name: "casts",
			src: `#include <stdio.h>
int main() {
	long v = 0x1234;
	char c = (char)v;
	printf("%d\n", c);
	char *p = (char *)&v;
	printf("%d %d\n", p[0], p[1]);
	long addr = (long)p;
	char *q = (char *)(addr + 1);
	printf("%d\n", *q);
	return 0;
}`,
			out: "52\n52 18\n18\n",
		},
		{
			name: "defines",
			src: `#include <stdio.h>
#define N 16
#define DOUBLE_N (N * 2)
#define GREETING "hey"
int main() {
	printf("%d %d %s\n", N, DOUBLE_N, GREETING);
	return 0;
}`,
			out: "16 32 hey\n",
		},
		{
			name: "string_library",
			src: `#include <stdio.h>
#include <string.h>
int main() {
	char buf[64];
	strcpy(buf, "hello");
	strcat(buf, ", world");
	printf("%s %d\n", buf, strlen(buf));
	printf("%d %d %d\n", strcmp("abc", "abd") < 0, strcmp("abc", "abc"), strcmp("abd", "abc") > 0);
	memset(buf, 'x', 3);
	buf[3] = 0;
	printf("%s\n", buf);
	char src[8];
	src[0] = 'o'; src[1] = 'k'; src[2] = 0;
	memcpy(buf, src, 3);
	printf("%s %d\n", buf, memcmp("aa", "ab", 2) < 0);
	return 0;
}`,
			out: "hello, world 12\n1 0 1\nxxx\nok 1\n",
		},
		{
			name: "malloc_free_reuse",
			src: `#include <stdio.h>
#include <stdlib.h>
int main() {
	char *a = malloc(100);
	char *b = malloc(100);
	free(a);
	char *c = malloc(100);
	printf("%d %d\n", a == c, a == b);
	long *arr = (long *)calloc(10, 8);
	printf("%d\n", arr[5]);
	arr[5] = 42;
	arr = (long *)realloc((char *)arr, 800);
	printf("%d\n", arr[5]);
	return 0;
}`,
			out: "1 0\n0\n42\n",
		},
		{
			name: "printf_formats",
			src: `#include <stdio.h>
int main() {
	printf("%d %d %d\n", 0, -1, 9223372036854775807);
	printf("%x %x\n", 255, 4096);
	printf("%c%c%c %s %%\n", 'a', 'b', 'c', "str");
	printf("%ld %lx %5d %-3d\n", 77, 255, 1, 2);
	printf("%u\n", 12345);
	return 0;
}`,
			out: "0 -1 9223372036854775807\nff 1000\nabc str %\n77 ff 1 2\n12345\n",
		},
		{
			name: "exit_code",
			src:  `int main() { return 3 * 9; }`,
			code: 27,
		},
		{
			name: "atoi_argv",
			src: `#include <stdio.h>
#include <stdlib.h>
int main(int argc, char **argv) {
	long s = 0;
	long i;
	for (i = 1; i < argc; i++) s += atoi(argv[i]);
	printf("%d\n", s);
	return 0;
}`,
			out: "60\n",
		},
		{
			name: "static_linkage",
			src: `#include <stdio.h>
static long hidden = 3;
static long twice(long v) { return 2 * v; }
int main() { printf("%d\n", twice(hidden)); return 0; }`,
			out: "6\n",
		},
		{
			name: "shadowing_scopes",
			src: `#include <stdio.h>
long x = 1;
int main() {
	long x = 2;
	{
		long x = 3;
		printf("%d", x);
	}
	printf("%d", x);
	if (x == 2) {
		long x = 4;
		printf("%d", x);
	}
	printf("%d\n", x);
	return 0;
}`,
			out: "3242\n",
		},
		{
			name: "big_constants",
			src: `#include <stdio.h>
long big = 0x123456789abcdef0;
int main() {
	printf("%x\n", big);
	printf("%x\n", 0xdeadbeefcafebabe & 0xffffffff);
	long v = -9223372036854775807;
	printf("%d\n", v);
	return 0;
}`,
			out: "123456789abcdef0\ncafebabe\n-9223372036854775807\n",
		},
		{
			name: "sizeof_everything",
			src: `#include <stdio.h>
struct s { char a; long b; char c; };
int main() {
	long arr[7];
	char c;
	struct s v;
	printf("%d %d %d %d %d %d\n", sizeof(char), sizeof(long), sizeof(char *),
		sizeof(arr), sizeof(struct s), sizeof v);
	printf("%d %d\n", sizeof(c), sizeof(arr[0]));
	return 0;
}`,
			out: "1 8 8 56 24 24\n1 8\n",
		},
		{
			name: "rand_deterministic",
			src: `#include <stdio.h>
#include <stdlib.h>
int main() {
	srand(12345);
	long a = rand();
	long b = rand();
	srand(12345);
	printf("%d %d %d\n", a == rand(), b == rand(), a != b);
	printf("%d %d\n", a >= 0, a <= 0x7fffffff);
	return 0;
}`,
			out: "1 1 1\n1 1\n",
		},
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cfg := vm.Config{}
			if c.name == "atoi_argv" {
				cfg.Args = []string{"10", "20", "30"}
			}
			m, code := runProg(t, c.src, cfg)
			if got := string(m.Stdout); got != c.out {
				t.Errorf("stdout:\n got %q\nwant %q", got, c.out)
			}
			if code != c.code {
				t.Errorf("exit = %d, want %d", code, c.code)
			}
		})
	}
}

func TestFileIO(t *testing.T) {
	m, code := runProg(t, `
#include <stdio.h>
int main() {
	FILE *f = fopen("out.txt", "w");
	if (!f) return 1;
	fprintf(f, "count=%d hex=0x%x\n", 42, 255);
	fputs("line two\n", f);
	fputc('!', f);
	fclose(f);

	FILE *in = fopen("in.txt", "r");
	if (!in) return 2;
	long sum = 0;
	int c = fgetc(in);
	while (c != EOF) {
		sum += c;
		c = fgetc(in);
	}
	fclose(in);
	printf("sum=%d\n", sum);
	return 0;
}`, vm.Config{FS: map[string][]byte{"in.txt": []byte("AB")}})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if got := string(m.FSOut["out.txt"]); got != "count=42 hex=0xff\nline two\n!" {
		t.Errorf("out.txt = %q", got)
	}
	if got := string(m.Stdout); got != "sum=131\n" {
		t.Errorf("stdout = %q", got)
	}
}

func TestDivisionByZeroAborts(t *testing.T) {
	m, code := runProg(t, `
long deny(long d) { return 10 / d; }
int main() { return deny(0); }`, vm.Config{})
	_ = m
	if code != 134 {
		t.Errorf("exit = %d, want 134 (SIGFPE-style abort)", code)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`int main() { return x; }`, "undeclared"},
		{`int main() { long x; x = "s"; return 0; }`, "assign"},
		{`int main() { 5 = 6; return 0; }`, "non-lvalue"},
		{`int main() { break; }`, "break outside"},
		{`int main() { continue; }`, "continue outside"},
		{`long f(long a); long f(long a, long b) { return a; } int main(){return 0;}`, "conflicting"},
		{`int main() { long x; long x; return 0; }`, "redeclared"},
		{`struct s { long a; }; int main() { struct s v; v.b = 1; return 0; }`, "no field"},
		{`int main() { long *p; p * 3; return 0; }`, "invalid *"},
		{`int main() { case 1: return 0; }`, "outside switch"},
		{`int main() { return f(); }`, "undeclared function"},
		{`void g() {} int main() { long x = g(); return 0; }`, "void value"},
		{`long f(long a) { return a; } int main() { return f(1, 2); }`, "expects 1"},
		{`int main() { long a[3]; a = 0; return 0; }`, "cannot assign"},
		{`int main() { long x = *5; return 0; }`, "dereferencing non-pointer"},
		{`int main() { long x; char *p = &x + ; return 0; }`, "expected expression"},
		{`int main() { return 0 }`, `expected ";"`},
		{`struct s { struct s inner; }; int main() { return 0; }`, "incomplete"},
	}
	hdrs, err := rtl.Headers()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		_, err := cc.BuildForTest(c.src, hdrs)
		if err == nil {
			t.Errorf("compile of %q succeeded; want error with %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("error %q does not contain %q", err, c.want)
		}
	}
}
