package cc_test

import (
	"fmt"
	"strings"
	"testing"

	"atom/internal/vm"
)

// TestHugeFrame exercises frame offsets beyond the 16-bit displacement
// range (the memOff large-offset path through the assembler temporary).
func TestHugeFrame(t *testing.T) {
	m, code := runProg(t, `
#include <stdio.h>
int main() {
	long big[9000];   /* 72 KB frame */
	long i;
	for (i = 0; i < 9000; i++) big[i] = i * 3;
	long s = 0;
	for (i = 0; i < 9000; i += 1000) s += big[i];
	char tail[32];
	tail[0] = 'k'; tail[1] = 0;
	printf("%d %s\n", s, tail);
	return 0;
}`, vm.Config{})
	if string(m.Stdout) != "108000 k\n" || code != 0 {
		t.Errorf("stdout=%q code=%d", m.Stdout, code)
	}
}

// TestDeepExpressionSpill forces a deep evaluation stack: every operand
// of the chain is a call, so each intermediate must be spilled around it.
func TestDeepExpressionSpill(t *testing.T) {
	m, _ := runProg(t, `
#include <stdio.h>
long one(long x) { return x; }
int main() {
	long r = one(1) + (one(2) * (one(3) + one(4) * (one(5) + one(6) * (one(7) +
		one(8) * (one(9) + one(10))))));
	printf("%d\n", r);
	return 0;
}`, vm.Config{})
	want := fmt.Sprintf("%d\n", 1+2*(3+4*(5+6*(7+8*(9+10)))))
	if string(m.Stdout) != want {
		t.Errorf("stdout=%q want %q", m.Stdout, want)
	}
}

// TestDivStrengthReduction checks /,% by power-of-two constants against
// the general division routine, including negatives (C truncation).
func TestDivStrengthReduction(t *testing.T) {
	m, _ := runProg(t, `
#include <stdio.h>
long vals[8] = {7, -7, 1024, -1024, 0, 1, -1, 123456789};
int main() {
	long i;
	for (i = 0; i < 8; i++) {
		long v = vals[i];
		long two = 2;
		long sixteen = 16;
		/* constant divisors use shifts; variable divisors use __divq */
		if (v / 2 != v / two) { printf("div2 mismatch at %d\n", v); return 1; }
		if (v % 2 != v % two) { printf("mod2 mismatch at %d\n", v); return 1; }
		if (v / 16 != v / sixteen) { printf("div16 mismatch at %d\n", v); return 1; }
		if (v % 16 != v % sixteen) { printf("mod16 mismatch at %d\n", v); return 1; }
		if (v / 1 != v || v % 1 != 0) { printf("div1 mismatch\n"); return 1; }
	}
	printf("ok %d %d %d %d\n", -7 / 2, -7 % 2, -1024 / 16, 123456789 % 16);
	return 0;
}`, vm.Config{})
	if string(m.Stdout) != "ok -3 -1 -64 5\n" {
		t.Errorf("stdout=%q", m.Stdout)
	}
}

// TestRecursionDepth exercises deep call stacks (stack grows down from
// the text base; 1 MB available).
func TestRecursionDepth(t *testing.T) {
	m, code := runProg(t, `
#include <stdio.h>
long depth(long n) {
	if (n == 0) return 0;
	return 1 + depth(n - 1);
}
int main() {
	printf("%d\n", depth(4000));
	return 0;
}`, vm.Config{})
	if code != 0 || string(m.Stdout) != "4000\n" {
		t.Errorf("stdout=%q code=%d", m.Stdout, code)
	}
}

// TestSprintfAndStringBuild covers sprintf plus pointer-walking string
// construction.
func TestSprintfAndStringBuild(t *testing.T) {
	m, _ := runProg(t, `
#include <stdio.h>
#include <string.h>
int main() {
	char buf[128];
	sprintf(buf, "[%d|%s|%c|%x]", -42, "mid", 'Z', 48879);
	printf("%s len=%d\n", buf, strlen(buf));
	return 0;
}`, vm.Config{})
	if string(m.Stdout) != "[-42|mid|Z|beef] len=16\n" {
		t.Errorf("stdout=%q", m.Stdout)
	}
}

// TestGlobalInitExpressions checks constant folding in global
// initializers, including addresses and arithmetic.
func TestGlobalInitExpressions(t *testing.T) {
	m, _ := runProg(t, `
#include <stdio.h>
long a = 3 * 7 + (1 << 4);
long b = -(5 - 2);
long c = sizeof(long) * 4;
long arr[4] = {~0 & 0xff, 'A', 1 << 10};
long target = 99;
long *p = &target;
char *s = "init";
int main() {
	printf("%d %d %d %d %d %d %d %s\n", a, b, c, arr[0], arr[1], arr[2], *p, s);
	return 0;
}`, vm.Config{})
	if string(m.Stdout) != "37 -3 32 255 65 1024 99 init\n" {
		t.Errorf("stdout=%q", m.Stdout)
	}
}

// TestCharPointerAliasing stores through char* into a long and reads it
// back (little-endian layout).
func TestCharPointerAliasing(t *testing.T) {
	m, _ := runProg(t, `
#include <stdio.h>
int main() {
	long v = 0;
	char *p = (char *)&v;
	p[0] = 0x78; p[1] = 0x56; p[2] = 0x34; p[3] = 0x12;
	printf("%x\n", v);
	return 0;
}`, vm.Config{})
	if string(m.Stdout) != "12345678\n" {
		t.Errorf("stdout=%q", m.Stdout)
	}
}

// TestNestedStructArrays combines struct arrays, nested member chains and
// pointer arithmetic over structs.
func TestNestedStructArrays(t *testing.T) {
	m, _ := runProg(t, `
#include <stdio.h>
struct inner { long x; char tag; };
struct outer { struct inner in; long pad; struct inner *link; };
struct outer os[4];
int main() {
	long i;
	for (i = 0; i < 4; i++) {
		os[i].in.x = i * 11;
		os[i].in.tag = (char)('a' + i);
		os[i].link = &os[(i + 1) % 4].in;
	}
	struct outer *p = &os[1];
	printf("%d %c %d %d\n", p->in.x, p->in.tag, p->link->x, (&os[3] - &os[0]));
	return 0;
}`, vm.Config{})
	if string(m.Stdout) != "11 b 22 3\n" {
		t.Errorf("stdout=%q", m.Stdout)
	}
}

// TestPreprocessorEdgeCases: macro bodies referencing other macros,
// redefinition via later define, comments inside code.
func TestPreprocessorEdgeCases(t *testing.T) {
	m, _ := runProg(t, `
#include <stdio.h>
#define A 5
#define B (A + 2)
#define MSG "b=" /* adjacent literal concatenation */
int main() {
	/* block comment */ long x = B; // line comment
	printf(MSG "%d\n", x);
	return 0;
}`, vm.Config{})
	if string(m.Stdout) != "b=7\n" {
		t.Errorf("stdout=%q", m.Stdout)
	}
}

// TestShortCircuitGuards the classic null-guard idiom.
func TestShortCircuitGuards(t *testing.T) {
	m, _ := runProg(t, `
#include <stdio.h>
struct n { long v; struct n *next; };
int main() {
	struct n a; struct n b;
	a.v = 1; a.next = &b;
	b.v = 2; b.next = (struct n *)0;
	struct n *p = &a;
	long sum = 0;
	while (p && p->v < 10) { sum += p->v; p = p->next; }
	if (p == 0 && sum == 3) printf("ok\n");
	return 0;
}`, vm.Config{})
	if !strings.Contains(string(m.Stdout), "ok") {
		t.Errorf("stdout=%q", m.Stdout)
	}
}
