package cc

import (
	"fmt"
	"strings"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokChar
	tokPunct // operators and punctuation, identified by text
	tokKeyword
)

type token struct {
	kind tokKind
	text string
	num  int64  // tokNumber, tokChar
	str  []byte // tokString (unescaped, no NUL)
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of file"
	case tokString:
		return fmt.Sprintf("string %q", t.str)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

var keywords = map[string]bool{
	"char": true, "int": true, "long": true, "void": true,
	"struct": true, "if": true, "else": true, "while": true,
	"for": true, "do": true, "return": true, "break": true,
	"continue": true, "switch": true, "case": true, "default": true,
	"sizeof": true, "extern": true, "static": true, "unsigned": true,
	"const": true, "goto": true, "typedef": true, "enum": true,
}

// multi-char punctuation, longest first.
var puncts = []string{
	"<<=", ">>=", "...",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
	"++", "--", "->",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!",
	"=", "<", ">", "(", ")", "{", "}", "[", "]",
	";", ",", ".", "?", ":",
}

type lexer struct {
	name    string
	src     string
	pos     int
	line    int
	include map[string]string // header name -> contents
	defines map[string][]token
	toks    []token
}

// lex tokenizes src, handling the miniature preprocessor: #include of
// known headers and object-like #define macros.
func lex(name, src string, include map[string]string) ([]token, error) {
	l := &lexer{name: name, include: include, defines: map[string][]token{}}
	if err := l.file(src); err != nil {
		return nil, err
	}
	l.toks = append(l.toks, token{kind: tokEOF, line: l.line})
	return l.toks, nil
}

func (l *lexer) errf(line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", l.name, line, fmt.Sprintf(format, args...))
}

func (l *lexer) file(src string) error {
	savedSrc, savedPos, savedLine := l.src, l.pos, l.line
	l.src, l.pos, l.line = src, 0, 1
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			break
		}
		if l.src[l.pos] == '#' && l.atLineStart() {
			if err := l.directive(); err != nil {
				return err
			}
			continue
		}
		if err := l.token(); err != nil {
			return err
		}
	}
	l.src, l.pos, l.line = savedSrc, savedPos, savedLine
	return nil
}

func (l *lexer) atLineStart() bool {
	for i := l.pos - 1; i >= 0; i-- {
		switch l.src[i] {
		case '\n':
			return true
		case ' ', '\t':
		default:
			return false
		}
	}
	return true
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case strings.HasPrefix(l.src[l.pos:], "//"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			l.pos += 2
			for l.pos < len(l.src) && !strings.HasPrefix(l.src[l.pos:], "*/") {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			l.pos += 2
		default:
			return
		}
	}
}

func (l *lexer) directive() error {
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
	lineText := strings.TrimSpace(l.src[start:l.pos])
	line := l.line
	switch {
	case strings.HasPrefix(lineText, "#include"):
		arg := strings.TrimSpace(strings.TrimPrefix(lineText, "#include"))
		hdr := strings.Trim(arg, "<>\"")
		body, ok := l.include[hdr]
		if !ok {
			return l.errf(line, "unknown header %q", hdr)
		}
		return l.file(body)
	case strings.HasPrefix(lineText, "#define"):
		rest := strings.TrimSpace(strings.TrimPrefix(lineText, "#define"))
		i := strings.IndexAny(rest, " \t")
		name, body := rest, ""
		if i >= 0 {
			name, body = rest[:i], strings.TrimSpace(rest[i+1:])
		}
		if name == "" || strings.Contains(name, "(") {
			return l.errf(line, "only object-like #define supported")
		}
		sub := &lexer{name: l.name, include: l.include, defines: l.defines}
		sub.line = line
		if err := sub.file(body); err != nil {
			return err
		}
		l.defines[name] = sub.toks
		return nil
	default:
		return l.errf(line, "unknown preprocessor directive %q", lineText)
	}
}

func (l *lexer) token() error {
	c := l.src[l.pos]
	line := l.line
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentCont(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if body, ok := l.defines[text]; ok {
			l.toks = append(l.toks, body...)
			return nil
		}
		k := tokIdent
		if keywords[text] {
			k = tokKeyword
		}
		l.toks = append(l.toks, token{kind: k, text: text, line: line})
		return nil

	case c >= '0' && c <= '9':
		start := l.pos
		base := 10
		if strings.HasPrefix(l.src[l.pos:], "0x") || strings.HasPrefix(l.src[l.pos:], "0X") {
			base = 16
			l.pos += 2
		} else if c == '0' {
			base = 8
		}
		for l.pos < len(l.src) && isNumCont(l.src[l.pos], base) {
			l.pos++
		}
		text := l.src[start:l.pos]
		var v uint64
		digits := text
		if base == 16 {
			digits = text[2:]
		}
		for _, d := range []byte(digits) {
			var dv uint64
			switch {
			case d >= '0' && d <= '9':
				dv = uint64(d - '0')
			case d >= 'a' && d <= 'f':
				dv = uint64(d-'a') + 10
			case d >= 'A' && d <= 'F':
				dv = uint64(d-'A') + 10
			}
			v = v*uint64(base) + dv
		}
		// Swallow integer suffixes (L, UL, ...).
		for l.pos < len(l.src) && (l.src[l.pos] == 'l' || l.src[l.pos] == 'L' || l.src[l.pos] == 'u' || l.src[l.pos] == 'U') {
			l.pos++
		}
		l.toks = append(l.toks, token{kind: tokNumber, text: text, num: int64(v), line: line})
		return nil

	case c == '"':
		b, err := l.cString()
		if err != nil {
			return err
		}
		l.toks = append(l.toks, token{kind: tokString, text: string(b), str: b, line: line})
		return nil

	case c == '\'':
		l.pos++
		if l.pos >= len(l.src) {
			return l.errf(line, "unterminated character literal")
		}
		var v int64
		if l.src[l.pos] == '\\' {
			l.pos++
			e, n, err := unescape(l.src[l.pos:])
			if err != nil {
				return l.errf(line, "%v", err)
			}
			v = int64(e)
			l.pos += n
		} else {
			v = int64(l.src[l.pos])
			l.pos++
		}
		if l.pos >= len(l.src) || l.src[l.pos] != '\'' {
			return l.errf(line, "unterminated character literal")
		}
		l.pos++
		l.toks = append(l.toks, token{kind: tokChar, text: "'" + string(rune(v)) + "'", num: v, line: line})
		return nil
	}

	for _, p := range puncts {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.pos += len(p)
			l.toks = append(l.toks, token{kind: tokPunct, text: p, line: line})
			return nil
		}
	}
	return l.errf(line, "unexpected character %q", c)
}

func (l *lexer) cString() ([]byte, error) {
	line := l.line
	l.pos++ // opening quote
	var out []byte
	for {
		if l.pos >= len(l.src) {
			return nil, l.errf(line, "unterminated string literal")
		}
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			return out, nil
		case '\n':
			return nil, l.errf(line, "newline in string literal")
		case '\\':
			l.pos++
			e, n, err := unescape(l.src[l.pos:])
			if err != nil {
				return nil, l.errf(line, "%v", err)
			}
			out = append(out, e)
			l.pos += n
		default:
			out = append(out, c)
			l.pos++
		}
	}
}

func unescape(s string) (byte, int, error) {
	if s == "" {
		return 0, 0, fmt.Errorf("trailing backslash")
	}
	switch s[0] {
	case 'n':
		return '\n', 1, nil
	case 't':
		return '\t', 1, nil
	case 'r':
		return '\r', 1, nil
	case '0':
		return 0, 1, nil
	case '\\':
		return '\\', 1, nil
	case '\'':
		return '\'', 1, nil
	case '"':
		return '"', 1, nil
	}
	return 0, 0, fmt.Errorf("unknown escape \\%c", s[0])
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func isNumCont(c byte, base int) bool {
	switch {
	case c >= '0' && c <= '9':
		return true
	case base == 16 && (c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'):
		return true
	}
	return false
}
