package cc

import (
	"fmt"
	"strings"
)

// TypeKind classifies a type.
type TypeKind int

const (
	TypeVoid TypeKind = iota
	TypeChar          // unsigned 8-bit
	TypeLong          // 64-bit signed; `int` is an alias
	TypePtr
	TypeArray
	TypeStruct
	TypeFunc
)

// Type describes a MiniC type. Types are interned enough for pointer
// comparison not to matter; use Same for equality.
type Type struct {
	Kind TypeKind
	Elem *Type // Ptr, Array element
	Len  int64 // Array length

	// Struct fields.
	StructName string
	Fields     []Field
	size       int64
	align      int64

	// Func.
	Ret      *Type
	Params   []*Type
	Variadic bool
}

// Field is a struct member.
type Field struct {
	Name   string
	Type   *Type
	Offset int64
}

var (
	typeVoid = &Type{Kind: TypeVoid}
	typeChar = &Type{Kind: TypeChar}
	typeLong = &Type{Kind: TypeLong}
)

func ptrTo(t *Type) *Type            { return &Type{Kind: TypePtr, Elem: t} }
func arrayOf(t *Type, n int64) *Type { return &Type{Kind: TypeArray, Elem: t, Len: n} }

// Size returns the size in bytes.
func (t *Type) Size() int64 {
	switch t.Kind {
	case TypeChar:
		return 1
	case TypeLong, TypePtr:
		return 8
	case TypeArray:
		return t.Elem.Size() * t.Len
	case TypeStruct:
		return t.size
	}
	return 0
}

// Align returns the natural alignment in bytes.
func (t *Type) Align() int64 {
	switch t.Kind {
	case TypeChar:
		return 1
	case TypeLong, TypePtr:
		return 8
	case TypeArray:
		return t.Elem.Align()
	case TypeStruct:
		return t.align
	}
	return 1
}

// IsInteger reports whether t is char or long.
func (t *Type) IsInteger() bool { return t.Kind == TypeChar || t.Kind == TypeLong }

// IsScalar reports whether t fits in a register (integer or pointer).
func (t *Type) IsScalar() bool { return t.IsInteger() || t.Kind == TypePtr }

// Decays returns the type after array-to-pointer decay.
func (t *Type) Decays() *Type {
	if t.Kind == TypeArray {
		return ptrTo(t.Elem)
	}
	return t
}

// Same reports structural type equality.
func (t *Type) Same(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case TypePtr:
		return t.Elem.Same(o.Elem)
	case TypeArray:
		return t.Len == o.Len && t.Elem.Same(o.Elem)
	case TypeStruct:
		return t.StructName == o.StructName
	case TypeFunc:
		if !t.Ret.Same(o.Ret) || len(t.Params) != len(o.Params) || t.Variadic != o.Variadic {
			return false
		}
		for i := range t.Params {
			if !t.Params[i].Same(o.Params[i]) {
				return false
			}
		}
	}
	return true
}

// String renders the type in C-ish syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case TypeVoid:
		return "void"
	case TypeChar:
		return "char"
	case TypeLong:
		return "long"
	case TypePtr:
		return t.Elem.String() + "*"
	case TypeArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case TypeStruct:
		return "struct " + t.StructName
	case TypeFunc:
		var ps []string
		for _, p := range t.Params {
			ps = append(ps, p.String())
		}
		if t.Variadic {
			ps = append(ps, "...")
		}
		return fmt.Sprintf("%s(%s)", t.Ret, strings.Join(ps, ", "))
	}
	return "<bad type>"
}

// layoutStruct assigns field offsets and computes size/alignment.
func layoutStruct(t *Type) error {
	var off, maxAlign int64 = 0, 1
	seen := map[string]bool{}
	for i := range t.Fields {
		f := &t.Fields[i]
		if seen[f.Name] {
			return fmt.Errorf("duplicate field %q in struct %s", f.Name, t.StructName)
		}
		seen[f.Name] = true
		a := f.Type.Align()
		if a > maxAlign {
			maxAlign = a
		}
		off = (off + a - 1) &^ (a - 1)
		f.Offset = off
		sz := f.Type.Size()
		if sz <= 0 {
			return fmt.Errorf("field %q of struct %s has incomplete type %s", f.Name, t.StructName, f.Type)
		}
		off += sz
	}
	t.align = maxAlign
	t.size = (off + maxAlign - 1) &^ (maxAlign - 1)
	if t.size == 0 {
		t.size = maxAlign
	}
	return nil
}

// Field returns the named field.
func (t *Type) Field(name string) (Field, bool) {
	for _, f := range t.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}
