package cc

// White-box tests of the compiler front end: lexer, parser, and type
// machinery, independent of code generation.

import (
	"strings"
	"testing"
)

func lexAll(t *testing.T, src string) []token {
	t.Helper()
	toks, err := lex("u.c", src, map[string]string{"h.h": "#define FROMHDR 9\n"})
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	return toks
}

func TestLexerTokens(t *testing.T) {
	toks := lexAll(t, `x += 0x1F << 3; "str\n" 'a' ... -> >>=`)
	var kinds []string
	for _, tk := range toks {
		if tk.kind == tokEOF {
			break
		}
		kinds = append(kinds, tk.text)
	}
	want := []string{"x", "+=", "0x1F", "<<", "3", ";", `str` + "\n", "'a'", "...", "->", ">>="}
	if len(kinds) != len(want) {
		t.Fatalf("tokens = %q, want %q", kinds, want)
	}
	if toks[2].num != 0x1F {
		t.Errorf("hex literal = %d", toks[2].num)
	}
	if toks[7].num != 'a' {
		t.Errorf("char literal = %d", toks[7].num)
	}
}

func TestLexerNumbers(t *testing.T) {
	cases := map[string]int64{
		"0":     0,
		"42":    42,
		"0x10":  16,
		"017":   15, // octal
		"7L":    7,
		"9UL":   9,
		"'\\n'": '\n',
		"'\\0'": 0,
	}
	for src, want := range cases {
		toks := lexAll(t, src)
		if toks[0].num != want {
			t.Errorf("lex(%q) = %d, want %d", src, toks[0].num, want)
		}
	}
}

func TestLexerComments(t *testing.T) {
	toks := lexAll(t, "a /* multi\nline */ b // rest\n c")
	var names []string
	for _, tk := range toks {
		if tk.kind == tokIdent {
			names = append(names, tk.text)
		}
	}
	if strings.Join(names, ",") != "a,b,c" {
		t.Errorf("idents = %v", names)
	}
	// Line numbers survive comments.
	if toks[2].line != 3 {
		t.Errorf("c on line %d, want 3", toks[2].line)
	}
}

func TestPreprocessorInclude(t *testing.T) {
	toks := lexAll(t, "#include <h.h>\nFROMHDR")
	if toks[0].kind != tokNumber || toks[0].num != 9 {
		t.Errorf("macro from header not expanded: %+v", toks[0])
	}
	if _, err := lex("u.c", "#include <missing.h>\n", nil); err == nil {
		t.Error("missing header accepted")
	}
	if _, err := lex("u.c", "#define F(x) x\n", nil); err == nil {
		t.Error("function-like macro accepted")
	}
	if _, err := lex("u.c", "#pragma nope\n", nil); err == nil {
		t.Error("unknown directive accepted")
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "'x", `"bad \q esc"`, "`"} {
		if _, err := lex("u.c", src, nil); err == nil {
			t.Errorf("lex(%q) succeeded", src)
		}
	}
}

func parseSrc(t *testing.T, src string) *Program {
	t.Helper()
	toks, err := lex("u.c", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parse("u.c", toks)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func TestParseDeclarators(t *testing.T) {
	prog := parseSrc(t, `
long a;
long *b;
long **c;
char d[10];
long e[2][3];
struct s { long x; };
struct s f;
struct s *g;
long h(long p, char *q);
`)
	types := map[string]string{}
	for _, d := range prog.Decls {
		types[d.Name] = d.Type.String()
	}
	want := map[string]string{
		"a": "long",
		"b": "long*",
		"c": "long**",
		"d": "char[10]",
		"e": "long[3][2]", // array 2 of array 3: printed inner-first
		"f": "struct s",
		"g": "struct s*",
		"h": "long(long, char*)",
	}
	for name, w := range want {
		if types[name] != w {
			t.Errorf("%s: type %q, want %q", name, types[name], w)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"long ;", "needs a name"},
		{"long a[];", "size required"},
		{"long a[0];", "positive"},
		{"struct { long x; } v;", "tag"},
		{"struct s { long x; long x; }; int main(){return 0;}", "duplicate field"},
		{"struct s { long x; }; struct s { long y; };", "redefined"},
		{"int f(long) { return 0; }", "needs a name"},
		{"int main() { if 1) return 0; }", `expected "("`},
		{"int main() { return (1; }", `expected ")"`},
		{"int main() { long x = ; }", "expected expression"},
		{"int main() { do x++; while 1; }", `expected "("`},
	}
	for _, c := range cases {
		toks, err := lex("u.c", c.src, nil)
		if err == nil {
			_, err = parse("u.c", toks)
		}
		if err == nil {
			t.Errorf("parse(%q) succeeded, want %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("parse(%q) error %q, want substring %q", c.src, err, c.want)
		}
	}
}

func TestTypeSizes(t *testing.T) {
	cases := []struct {
		t    *Type
		size int64
		al   int64
	}{
		{typeChar, 1, 1},
		{typeLong, 8, 8},
		{ptrTo(typeChar), 8, 8},
		{arrayOf(typeLong, 7), 56, 8},
		{arrayOf(arrayOf(typeChar, 3), 2), 6, 1},
	}
	for _, c := range cases {
		if c.t.Size() != c.size || c.t.Align() != c.al {
			t.Errorf("%s: size %d align %d, want %d/%d", c.t, c.t.Size(), c.t.Align(), c.size, c.al)
		}
	}
}

func TestStructLayoutPadding(t *testing.T) {
	st := &Type{Kind: TypeStruct, StructName: "s", Fields: []Field{
		{Name: "a", Type: typeChar},
		{Name: "b", Type: typeLong},
		{Name: "c", Type: typeChar},
		{Name: "d", Type: arrayOf(typeChar, 3)},
	}}
	if err := layoutStruct(st); err != nil {
		t.Fatal(err)
	}
	offs := map[string]int64{}
	for _, f := range st.Fields {
		offs[f.Name] = f.Offset
	}
	if offs["a"] != 0 || offs["b"] != 8 || offs["c"] != 16 || offs["d"] != 17 {
		t.Errorf("offsets = %v", offs)
	}
	if st.Size() != 24 { // padded to 8
		t.Errorf("size = %d, want 24", st.Size())
	}
}

func TestTypeSame(t *testing.T) {
	if !ptrTo(typeLong).Same(ptrTo(typeLong)) {
		t.Error("identical pointer types differ")
	}
	if ptrTo(typeLong).Same(ptrTo(typeChar)) {
		t.Error("long* == char*")
	}
	if arrayOf(typeLong, 2).Same(arrayOf(typeLong, 3)) {
		t.Error("different array lengths equal")
	}
	f1 := &Type{Kind: TypeFunc, Ret: typeLong, Params: []*Type{typeLong}}
	f2 := &Type{Kind: TypeFunc, Ret: typeLong, Params: []*Type{typeLong}, Variadic: true}
	if f1.Same(f2) {
		t.Error("variadic difference missed")
	}
}

func TestConstExprParsing(t *testing.T) {
	prog := parseSrc(t, `
long a[3 * 4 + 2];
long b[(1 << 6) / 4];
long c[100 % 7];
long d[sizeof(long) * 3];
long e[16 - -2];
`)
	want := map[string]int64{"a": 14, "b": 16, "c": 2, "d": 24, "e": 18}
	for _, decl := range prog.Decls {
		if w, ok := want[decl.Name]; ok && decl.Type.Len != w {
			t.Errorf("%s: length %d, want %d", decl.Name, decl.Type.Len, w)
		}
	}
}

func TestDecays(t *testing.T) {
	arr := arrayOf(typeChar, 4)
	d := arr.Decays()
	if d.Kind != TypePtr || d.Elem.Kind != TypeChar {
		t.Errorf("decay = %s", d)
	}
	if typeLong.Decays() != typeLong {
		t.Error("scalar decayed")
	}
}
