package core

import (
	"fmt"

	"atom/internal/alpha"
	"atom/internal/om"
)

// AddCallProgram inserts a call before the application starts executing
// (ProgramBefore) or after it finishes (ProgramAfter). ProgramBefore
// calls run at the program entry point; ProgramAfter calls run when the
// program reaches exit() — every normal termination path goes through it.
func (q *Instrumentation) AddCallProgram(when When, proc string, args ...any) error {
	p, cargs, err := q.checkCall(proc, nil, args)
	if err != nil {
		return err
	}
	var target *om.Inst
	switch when {
	case ProgramBefore:
		entry := q.prog.InstAt(q.prog.Exe.Entry)
		if entry == nil {
			return fmt.Errorf("atom: program entry point not found")
		}
		target = entry
	case ProgramAfter:
		exitProc := q.prog.Proc("exit")
		if exitProc == nil {
			return fmt.Errorf("atom: ProgramAfter requires an exit procedure in the application")
		}
		target = exitProc.Blocks[0].Insts[0]
	default:
		return fmt.Errorf("atom: bad When %d", when)
	}
	q.journal = append(q.journal, &callReq{level: levelProgram, when: when, proto: p, args: cargs, inst: target, place: Before})
	return nil
}

// AddCallProc inserts a call at procedure entry (ProcBefore) or before
// every return from the procedure (ProcAfter).
func (q *Instrumentation) AddCallProc(pr *om.Proc, when When, proc string, args ...any) error {
	p, cargs, err := q.checkCall(proc, nil, args)
	if err != nil {
		return err
	}
	if pr == nil || len(pr.Blocks) == 0 {
		return fmt.Errorf("atom: AddCallProc on empty procedure")
	}
	switch when {
	case ProcBefore:
		q.journal = append(q.journal, &callReq{level: levelProc, when: when, proto: p, args: cargs, inst: pr.Blocks[0].Insts[0], place: Before})
	case ProcAfter:
		n := 0
		for _, b := range pr.Blocks {
			last := b.Insts[len(b.Insts)-1]
			if last.I.Op == alpha.OpRet {
				q.journal = append(q.journal, &callReq{level: levelProc, when: when, proto: p, args: cargs, inst: last, place: Before})
				n++
			}
		}
		if n == 0 {
			return fmt.Errorf("atom: AddCallProc after %q: procedure has no return", pr.Name)
		}
	default:
		return fmt.Errorf("atom: bad When %d", when)
	}
	return nil
}

// AddCallBlock inserts a call before the block executes (BlockBefore) or
// after its body executes (BlockAfter; placed before the terminating
// control transfer, so it runs regardless of branch direction).
func (q *Instrumentation) AddCallBlock(b *om.Block, when When, proc string, args ...any) error {
	p, cargs, err := q.checkCall(proc, nil, args)
	if err != nil {
		return err
	}
	if b == nil || len(b.Insts) == 0 {
		return fmt.Errorf("atom: AddCallBlock on empty block")
	}
	switch when {
	case BlockBefore:
		q.journal = append(q.journal, &callReq{level: levelBlock, when: when, proto: p, args: cargs, inst: b.Insts[0], place: Before})
	case BlockAfter:
		last := b.Insts[len(b.Insts)-1]
		req := &callReq{level: levelBlock, when: when, proto: p, args: cargs, inst: last, place: After}
		if isTransfer(last.I.Op) {
			// Before the transfer, which is still "after the block body"
			// and runs regardless of the branch direction.
			req.place = Before
		}
		q.journal = append(q.journal, req)
	default:
		return fmt.Errorf("atom: bad When %d", when)
	}
	return nil
}

// AddCallInst inserts a call before or after one instruction. VALUE
// arguments (EffAddrValue, BrCondValue) are validated against the
// instruction. After placement on a control-transfer instruction is
// rejected (the call would only run on the fallthrough path).
func (q *Instrumentation) AddCallInst(in *om.Inst, when When, proc string, args ...any) error {
	p, cargs, err := q.checkCall(proc, in, args)
	if err != nil {
		return err
	}
	if in == nil {
		return fmt.Errorf("atom: AddCallInst on nil instruction")
	}
	if when == After && isTransfer(in.I.Op) {
		return fmt.Errorf("atom: InstAfter on control-transfer instruction %s at %#x", in.I.Op, in.Addr)
	}
	if when != Before && when != After {
		return fmt.Errorf("atom: bad When %d", when)
	}
	q.journal = append(q.journal, &callReq{level: levelInst, when: when, proto: p, args: cargs, inst: in, place: when})
	return nil
}

func isTransfer(op alpha.Op) bool {
	return op.IsCondBranch() || op == alpha.OpBr || op == alpha.OpRet || op == alpha.OpJmp
}

func (q *Instrumentation) checkCall(proc string, in *om.Inst, args []any) (*Proto, []arg, error) {
	p, ok := q.protos[proc]
	if !ok {
		return nil, nil, fmt.Errorf("atom: no prototype for analysis procedure %q (AddCallProto it first)", proc)
	}
	cargs, err := q.convertArgs(p, in, args)
	if err != nil {
		return nil, nil, err
	}
	return p, cargs, nil
}
