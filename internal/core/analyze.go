package core

import (
	"fmt"
	"sort"
	"strings"

	"atom/internal/aout"
	"atom/internal/obs"
	"atom/internal/om"
	"atom/internal/om/analysis"
)

// Bridges between the pipeline and the static-analysis pass manager
// (internal/om/analysis): -analyze mode analyzes applications and built
// tool images on demand, and -vet folds the defect-finding passes into
// the verify stages so an image with a save-discipline bug is rejected
// before it is ever applied.

// Image returns the tool's linked analysis image (read-only), for
// callers that want to inspect or analyze it.
func (ti *ToolImage) Image() *aout.File { return ti.img }

// AnalysisProcs returns the sorted names of the analysis procedures
// defined in the image.
func (ti *ToolImage) AnalysisProcs() []string {
	out := make([]string, 0, len(ti.hasProc))
	for name := range ti.hasProc {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Analyze lifts the built image and runs the pass selection over it as a
// ToolImage unit named "tool:NAME".
func (ti *ToolImage) Analyze(ctx *obs.Ctx, passes []analysis.Pass) (*analysis.Report, error) {
	prog, err := om.BuildCtx(ctx, ti.img)
	if err != nil {
		return nil, fmt.Errorf("atom: lifting analysis image for %q: %w", ti.tool.Name, err)
	}
	u := &analysis.Unit{Name: "tool:" + ti.tool.Name, Kind: analysis.ToolImage, Prog: prog}
	return analysis.Run(ctx, u, passes), nil
}

// AnalyzeProgram runs the pass selection over a lifted program.
func AnalyzeProgram(ctx *obs.Ctx, name string, prog *om.Program, kind analysis.UnitKind, passes []analysis.Pass) *analysis.Report {
	return analysis.Run(ctx, &analysis.Unit{Name: name, Kind: kind, Prog: prog}, passes)
}

// analyzeVerify is the -vet stage: the defect-finding passes run over
// the unit and any Error-severity finding fails the build, formatted
// like the IR verifier's diagnostics.
func analyzeVerify(ctx *obs.Ctx, what string, prog *om.Program, kind analysis.UnitKind) error {
	r := analysis.Run(ctx, &analysis.Unit{Name: what, Kind: kind, Prog: prog}, analysis.VetPasses())
	errs := r.Errors()
	if len(errs) == 0 {
		return nil
	}
	const show = 8
	var b strings.Builder
	fmt.Fprintf(&b, "atom: analyze: %s: %d error finding(s)", what, len(errs))
	for i, f := range errs {
		if i == show {
			fmt.Fprintf(&b, "\n\t... and %d more", len(errs)-show)
			break
		}
		b.WriteString("\n\t")
		b.WriteString(f.String())
	}
	return fmt.Errorf("%s", b.String())
}
