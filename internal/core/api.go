package core

import (
	"fmt"
	"strings"

	"atom/internal/alpha"
	"atom/internal/om"
)

// ParamKind is the type of one analysis-procedure parameter, as declared
// in an AddCallProto prototype.
type ParamKind int

const (
	ParamInt    ParamKind = iota // "int" or "long": a 64-bit integer
	ParamString                  // "char*": address of a constant string
	ParamValue                   // "VALUE": EffAddrValue or BrCondValue
	ParamRegV                    // "REGV": run-time contents of a register
	ParamArray                   // "long*": address of a constant array
)

// Proto is a declared analysis-procedure prototype.
type Proto struct {
	Name   string
	Params []ParamKind
}

// Value selects one of the run-time VALUE argument kinds (paper,
// Section 3): the memory address referenced by a load/store, or the
// outcome of a conditional branch.
type Value int

const (
	// EffAddrValue passes the effective memory address of a load or
	// store instruction.
	EffAddrValue Value = iota
	// BrCondValue passes zero if the conditional branch falls through
	// and non-zero if it is taken.
	BrCondValue
)

// RegV requests the run-time contents of a register as an argument.
type RegV alpha.Reg

// Array passes a constant array: ATOM materializes it in the analysis
// data section and passes its address (the paper: "ATOM allows passing
// of arrays as arguments").
type Array []int64

// Placement constants mirror the paper's API.
type When int

const (
	Before When = iota
	After
)

// Aliases matching the paper's names.
const (
	ProgramBefore = Before
	ProgramAfter  = After
	ProcBefore    = Before
	ProcAfter     = After
	BlockBefore   = Before
	BlockAfter    = After
	InstBefore    = Before
	InstAfter     = After
)

// InstType classifies instructions for IsInstType.
type InstType int

const (
	InstTypeCondBr InstType = iota
	InstTypeUncondBr
	InstTypeLoad
	InstTypeStore
	InstTypeCall
	InstTypeRet
	InstTypeJump
	InstTypePal
)

// Instrumentation is the handle passed to a tool's instrumentation
// routine: program traversal, queries, and call insertion.
type Instrumentation struct {
	prog   *om.Program
	protos map[string]*Proto

	// The journal preserves the exact order in which calls were added:
	// "if more than one procedure is to be called at a point, the calls
	// are made in the order in which they were added".
	journal []*callReq

	// Constant data passed by address (strings, arrays), materialized
	// into the analysis image.
	consts []constBlob

	args []string // tool command-line arguments (iargc/iargv)
}

type callReq struct {
	level level
	when  When // user-level placement, for diagnostics
	proto *Proto
	args  []arg

	inst  *om.Inst // target instruction (lowered for all levels)
	place When     // physical placement relative to inst
}

type level int

const (
	levelProgram level = iota
	levelProc
	levelBlock
	levelInst
)

type argKind int

const (
	argConst argKind = iota
	argRegV
	argEffAddr
	argBrCond
	argBlobAddr // address of a constant blob in the analysis data
)

type arg struct {
	kind argKind
	num  int64     // argConst
	reg  alpha.Reg // argRegV
	blob int       // argBlobAddr: index into consts
}

type constBlob struct {
	label string
	data  []byte
}

// NewInstrumentation wraps a program IR in the traversal/query API
// without starting an instrumentation run — useful for program analyses
// that only inspect (the pipe tool's static scheduler, for example).
func NewInstrumentation(prog *om.Program) *Instrumentation {
	return &Instrumentation{prog: prog, protos: map[string]*Proto{}}
}

// Args returns the tool arguments passed through the atom command line
// (the paper's iargc/iargv).
func (q *Instrumentation) Args() []string { return q.args }

// Program traversal, paper style.

// GetFirstProc returns the first procedure of the program.
func (q *Instrumentation) GetFirstProc() *om.Proc {
	if len(q.prog.Procs) == 0 {
		return nil
	}
	return q.prog.Procs[0]
}

// GetNextProc returns the procedure after p, or nil.
func (q *Instrumentation) GetNextProc(p *om.Proc) *om.Proc {
	if p == nil || p.Index+1 >= len(q.prog.Procs) {
		return nil
	}
	return q.prog.Procs[p.Index+1]
}

// GetFirstBlock returns the first basic block of p.
func (q *Instrumentation) GetFirstBlock(p *om.Proc) *om.Block {
	if p == nil || len(p.Blocks) == 0 {
		return nil
	}
	return p.Blocks[0]
}

// GetNextBlock returns the block after b within its procedure, or nil.
func (q *Instrumentation) GetNextBlock(b *om.Block) *om.Block {
	if b == nil {
		return nil
	}
	blocks := q.blockProc(b).Blocks
	if b.Index+1 >= len(blocks) {
		return nil
	}
	return blocks[b.Index+1]
}

func (q *Instrumentation) blockProc(b *om.Block) *om.Proc {
	return b.Insts[0].Proc()
}

// GetFirstInst returns the first instruction of b.
func (q *Instrumentation) GetFirstInst(b *om.Block) *om.Inst {
	if b == nil || len(b.Insts) == 0 {
		return nil
	}
	return b.Insts[0]
}

// GetLastInst returns the last instruction of b.
func (q *Instrumentation) GetLastInst(b *om.Block) *om.Inst {
	if b == nil || len(b.Insts) == 0 {
		return nil
	}
	return b.Insts[len(b.Insts)-1]
}

// GetNextInst returns the instruction after i within its block, or nil.
func (q *Instrumentation) GetNextInst(i *om.Inst) *om.Inst {
	if i == nil {
		return nil
	}
	b := i.Block()
	for k, in := range b.Insts {
		if in == i {
			if k+1 < len(b.Insts) {
				return b.Insts[k+1]
			}
			return nil
		}
	}
	return nil
}

// Procs returns all procedures (Go-idiomatic traversal).
func (q *Instrumentation) Procs() []*om.Proc { return q.prog.Procs }

// Queries.

// ProcName returns the procedure's name.
func (q *Instrumentation) ProcName(p *om.Proc) string { return p.Name }

// ProcPC returns the procedure's original start address.
func (q *Instrumentation) ProcPC(p *om.Proc) uint64 { return p.Addr }

// InstPC returns the instruction's ORIGINAL program counter. ATOM
// guarantees analysis routines see pre-instrumentation text addresses
// ("if an analysis routine asks for the PC of an instruction in the
// application program, the original PC is simply supplied").
func (q *Instrumentation) InstPC(i *om.Inst) uint64 { return i.Addr }

// IsInstType classifies an instruction.
func (q *Instrumentation) IsInstType(i *om.Inst, t InstType) bool {
	if i == nil {
		return false
	}
	op := i.I.Op
	switch t {
	case InstTypeCondBr:
		return op.IsCondBranch()
	case InstTypeUncondBr:
		return op == alpha.OpBr
	case InstTypeLoad:
		return op.IsLoad()
	case InstTypeStore:
		return op.IsStore()
	case InstTypeCall:
		return op.IsCall()
	case InstTypeRet:
		return op == alpha.OpRet
	case InstTypeJump:
		return op == alpha.OpJmp
	case InstTypePal:
		return op == alpha.OpCallPal
	}
	return false
}

// InstMemBytes returns the access width of a load/store, 0 otherwise.
func (q *Instrumentation) InstMemBytes(i *om.Inst) int { return i.I.Op.MemBytes() }

// InstPalFn returns the PAL function code of a call_pal instruction, or
// -1 for other instructions.
func (q *Instrumentation) InstPalFn(i *om.Inst) int {
	if i == nil || i.I.Op != alpha.OpCallPal {
		return -1
	}
	return int(i.I.PalFn)
}

// InstBaseIsAligned reports whether a memory reference's base register is
// statically known to be naturally aligned (the stack pointer or the zero
// register), so the access cannot be misaligned when its displacement is
// a multiple of the access size.
func (q *Instrumentation) InstBaseIsAligned(i *om.Inst) bool {
	if i == nil || i.I.Op.MemBytes() == 0 {
		return false
	}
	if i.I.Rb != alpha.SP && i.I.Rb != alpha.Zero {
		return false
	}
	return int(i.I.Disp)%i.I.Op.MemBytes() == 0
}

// GetProcCalled returns the name of the procedure a direct call (bsr)
// targets. Indirect calls (jsr) report false.
func (q *Instrumentation) GetProcCalled(i *om.Inst) (string, bool) {
	if i == nil || i.I.Op != alpha.OpBsr {
		return "", false
	}
	target := i.Addr + 4 + uint64(int64(i.I.Disp)*4)
	if p := q.prog.ProcAt(target); p != nil {
		return p.Name, true
	}
	return "", false
}

// ProgramInstCount returns the total instruction count of the program.
func (q *Instrumentation) ProgramInstCount() int { return q.prog.NumInsts() }

// AddCallProto declares an analysis-procedure prototype, e.g.
// "CondBranch(int, VALUE)". Accepted parameter types: int, long, char*,
// long*, VALUE, REGV. Every procedure named in an AddCall must have been
// declared first; ATOM verifies that.
func (q *Instrumentation) AddCallProto(proto string) error {
	open := strings.IndexByte(proto, '(')
	if open <= 0 || !strings.HasSuffix(proto, ")") {
		return fmt.Errorf("atom: malformed prototype %q", proto)
	}
	name := strings.TrimSpace(proto[:open])
	if name == "" {
		return fmt.Errorf("atom: malformed prototype %q", proto)
	}
	if _, dup := q.protos[name]; dup {
		return fmt.Errorf("atom: prototype %q already declared", name)
	}
	p := &Proto{Name: name}
	inner := strings.TrimSpace(proto[open+1 : len(proto)-1])
	if inner != "" && inner != "void" {
		for _, f := range strings.Split(inner, ",") {
			switch t := strings.Join(strings.Fields(f), ""); t {
			case "int", "long":
				p.Params = append(p.Params, ParamInt)
			case "char*":
				p.Params = append(p.Params, ParamString)
			case "long*":
				p.Params = append(p.Params, ParamArray)
			case "VALUE":
				p.Params = append(p.Params, ParamValue)
			case "REGV":
				p.Params = append(p.Params, ParamRegV)
			default:
				return fmt.Errorf("atom: prototype %q: unsupported parameter type %q", proto, strings.TrimSpace(f))
			}
		}
	}
	q.protos[name] = p
	return nil
}

// convertArgs validates user arguments against the prototype.
func (q *Instrumentation) convertArgs(p *Proto, in *om.Inst, userArgs []any) ([]arg, error) {
	if len(userArgs) != len(p.Params) {
		return nil, fmt.Errorf("atom: %s expects %d arguments, got %d", p.Name, len(p.Params), len(userArgs))
	}
	out := make([]arg, len(userArgs))
	for i, ua := range userArgs {
		kind := p.Params[i]
		switch v := ua.(type) {
		case int:
			if kind != ParamInt {
				return nil, fmt.Errorf("atom: %s argument %d: integer passed for %v parameter", p.Name, i, kind)
			}
			out[i] = arg{kind: argConst, num: int64(v)}
		case int64:
			if kind != ParamInt {
				return nil, fmt.Errorf("atom: %s argument %d: integer passed for %v parameter", p.Name, i, kind)
			}
			out[i] = arg{kind: argConst, num: v}
		case uint64:
			if kind != ParamInt {
				return nil, fmt.Errorf("atom: %s argument %d: integer passed for %v parameter", p.Name, i, kind)
			}
			out[i] = arg{kind: argConst, num: int64(v)}
		case string:
			if kind != ParamString {
				return nil, fmt.Errorf("atom: %s argument %d: string passed for %v parameter", p.Name, i, kind)
			}
			out[i] = arg{kind: argBlobAddr, blob: q.internBlob(append([]byte(v), 0))}
		case Array:
			if kind != ParamArray {
				return nil, fmt.Errorf("atom: %s argument %d: array passed for %v parameter", p.Name, i, kind)
			}
			b := make([]byte, 8*len(v))
			for k, e := range v {
				for j := 0; j < 8; j++ {
					b[8*k+j] = byte(uint64(e) >> (8 * j))
				}
			}
			out[i] = arg{kind: argBlobAddr, blob: q.internBlob(b)}
		case RegV:
			if kind != ParamRegV {
				return nil, fmt.Errorf("atom: %s argument %d: REGV passed for %v parameter", p.Name, i, kind)
			}
			if alpha.Reg(v) >= alpha.NumRegs {
				return nil, fmt.Errorf("atom: %s argument %d: bad register %d", p.Name, i, v)
			}
			out[i] = arg{kind: argRegV, reg: alpha.Reg(v)}
		case Value:
			if kind != ParamValue {
				return nil, fmt.Errorf("atom: %s argument %d: VALUE passed for %v parameter", p.Name, i, kind)
			}
			switch v {
			case EffAddrValue:
				if in == nil || (!in.I.Op.IsLoad() && !in.I.Op.IsStore()) {
					return nil, fmt.Errorf("atom: %s argument %d: EffAddrValue requires a load or store instruction", p.Name, i)
				}
				out[i] = arg{kind: argEffAddr}
			case BrCondValue:
				if in == nil || !in.I.Op.IsCondBranch() {
					return nil, fmt.Errorf("atom: %s argument %d: BrCondValue requires a conditional branch", p.Name, i)
				}
				out[i] = arg{kind: argBrCond}
			default:
				return nil, fmt.Errorf("atom: %s argument %d: unknown VALUE %d", p.Name, i, v)
			}
		default:
			return nil, fmt.Errorf("atom: %s argument %d: unsupported argument type %T", p.Name, i, ua)
		}
	}
	return out, nil
}

func (q *Instrumentation) internBlob(b []byte) int {
	for i, c := range q.consts {
		if string(c.data) == string(b) {
			return i
		}
	}
	q.consts = append(q.consts, constBlob{
		label: fmt.Sprintf("atom$const%d", len(q.consts)),
		data:  b,
	})
	return len(q.consts) - 1
}

// String renders a ParamKind for diagnostics.
func (k ParamKind) String() string {
	switch k {
	case ParamInt:
		return "int"
	case ParamString:
		return "char*"
	case ParamValue:
		return "VALUE"
	case ParamRegV:
		return "REGV"
	case ParamArray:
		return "long*"
	}
	return "?"
}
