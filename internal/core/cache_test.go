package core_test

import (
	"bytes"
	"testing"

	"atom/internal/build"
	"atom/internal/core"
)

const cacheAppA = `
#include <stdio.h>
int main() {
	int i, s;
	s = 0;
	for (i = 0; i < 50; i++) s = s + i;
	printf("%d\n", s);
	return 0;
}
`

const cacheAppB = `
#include <stdio.h>
int main() {
	int i, p;
	p = 1;
	for (i = 1; i < 12; i++) p = p * i;
	printf("%d\n", p);
	return 0;
}
`

// TestToolImageCacheReuse is the acceptance test for the build-once cost
// model: instrumenting any number of programs with one tool compiles and
// links the analysis image exactly once; changing the sources, the
// options, or the tool forces exactly one more build.
func TestToolImageCacheReuse(t *testing.T) {
	core.ResetImageCache(build.ScopeMemory)
	tool := branchCountTool()
	appA := buildApp(t, cacheAppA)
	appB := buildApp(t, cacheAppB)

	if _, err := core.Instrument(appA, tool, core.Options{}); err != nil {
		t.Fatal(err)
	}
	s := core.ImageCacheStats()
	if s.Builds != 1 || s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("after first program: stats = %+v, want 1 miss, 1 build", s)
	}

	if _, err := core.Instrument(appB, tool, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := core.Instrument(appA, tool, core.Options{}); err != nil {
		t.Fatal(err)
	}
	s = core.ImageCacheStats()
	if s.Builds != 1 {
		t.Fatalf("analysis image rebuilt for further programs: stats = %+v", s)
	}
	if s.Hits != 2 {
		t.Fatalf("further programs did not hit the cache: stats = %+v", s)
	}

	// Changing the analysis sources must miss.
	edited := branchCountTool()
	srcs := map[string]string{}
	for n, src := range edited.Analysis {
		srcs[n] = src + "\n/* edited */\n"
	}
	edited.Analysis = srcs
	if _, err := core.Instrument(appA, edited, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if s = core.ImageCacheStats(); s.Builds != 2 {
		t.Fatalf("edited analysis source did not rebuild: stats = %+v", s)
	}

	// Changing image-affecting options must miss (the save sets differ).
	if _, err := core.Instrument(appA, tool, core.Options{NoRegSummary: true}); err != nil {
		t.Fatal(err)
	}
	if s = core.ImageCacheStats(); s.Builds != 3 {
		t.Fatalf("option change did not rebuild: stats = %+v", s)
	}

	// A different tool must miss.
	other := branchCountTool()
	other.Name = "branchcount2"
	if _, err := core.Instrument(appA, other, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if s = core.ImageCacheStats(); s.Builds != 4 {
		t.Fatalf("distinct tool did not rebuild: stats = %+v", s)
	}

	// Options that do not affect the image (heap scheme, live-register
	// call-site refinement, tool arguments) must NOT rebuild it.
	if _, err := core.Instrument(appA, tool, core.Options{HeapOffset: 1 << 20, LiveRegOpt: true}); err != nil {
		t.Fatal(err)
	}
	if s = core.ImageCacheStats(); s.Builds != 4 {
		t.Fatalf("image-neutral options rebuilt the image: stats = %+v", s)
	}
}

// TestApplyMatchesInstrument: the explicit two-step form (BuildToolImage
// then Apply) must produce byte-identical executables to the one-shot
// Instrument.
func TestApplyMatchesInstrument(t *testing.T) {
	for _, mode := range []core.SaveMode{core.SaveWrapper, core.SaveInAnalysis} {
		core.ResetImageCache(build.ScopeMemory)
		tool := branchCountTool()
		opts := core.Options{Mode: mode}
		app := buildApp(t, cacheAppA)

		want, err := core.Instrument(app, tool, opts)
		if err != nil {
			t.Fatalf("mode %v: Instrument: %v", mode, err)
		}
		ti, err := core.BuildToolImage(tool, opts)
		if err != nil {
			t.Fatalf("mode %v: BuildToolImage: %v", mode, err)
		}
		got, err := core.Apply(app, ti, opts)
		if err != nil {
			t.Fatalf("mode %v: Apply: %v", mode, err)
		}
		if !bytes.Equal(got.Exe.Text, want.Exe.Text) || !bytes.Equal(got.Exe.Data, want.Exe.Data) {
			t.Errorf("mode %v: Apply output differs from Instrument output", mode)
		}
		if got.Exe.Entry != want.Exe.Entry || got.Stats != want.Stats {
			t.Errorf("mode %v: Apply metadata differs: %+v vs %+v", mode, got.Stats, want.Stats)
		}
	}
}

// TestBuildToolImageCached: building the same image twice is one build.
func TestBuildToolImageCached(t *testing.T) {
	core.ResetImageCache(build.ScopeMemory)
	tool := branchCountTool()
	a, err := core.BuildToolImage(tool, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.BuildToolImage(tool, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second BuildToolImage did not return the cached image")
	}
	if s := core.ImageCacheStats(); s.Builds != 1 || s.Hits < 1 {
		t.Errorf("stats = %+v, want one build and at least one hit", s)
	}
	if a.CacheKey() == "" || a.ToolName() != tool.Name {
		t.Errorf("image metadata: key=%q tool=%q", a.CacheKey(), a.ToolName())
	}
}
