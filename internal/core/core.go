// Package core implements ATOM itself: the tool-building framework from
// "ATOM: A System for Building Customized Program Analysis Tools"
// (Srivastava & Eustace, PLDI 1994).
//
// A tool supplies two things, exactly as in the paper:
//
//   - instrumentation routines (the Tool.Instrument function), which
//     traverse the application — a program is a sequence of procedures,
//     a procedure a sequence of basic blocks, a block a sequence of
//     instructions — declare analysis-procedure prototypes
//     (AddCallProto) and attach procedure calls before or after any
//     program, procedure, basic block, or instruction (AddCallProgram,
//     AddCallProc, AddCallBlock, AddCallInst), with arguments that may be
//     integer constants, strings, arrays, run-time register contents
//     (REGV), effective memory addresses (EffAddrValue), or branch
//     outcomes (BrCondValue);
//
//   - analysis routines (Tool.Analysis), ordinary MiniC code compiled
//     and linked into the final executable. They share no procedures or
//     data with the application: each side gets its own copy of the
//     runtime library, including its own sbrk.
//
// Instrument rewrites the application at link time using OM. Information
// flows from the application to the analysis routines through plain
// procedure calls — no interprocess communication, no trace files, no
// shared-buffer dispatch, no simulation.
//
// Pristine behavior (paper, Section 4): application data, bss, stack and
// heap addresses are unchanged — the analysis image lives in the gap
// between the application's text and data segments, its bss converted to
// zero-initialized data. Application text addresses change, but the
// old<->new PC map is static and InstPC reports original addresses.
// Register state is preserved by saving exactly the caller-save registers
// the analysis routine's interprocedural data-flow summary says may be
// modified, split between the call site (ra, argument registers, at) and
// a per-routine wrapper (default) or save/restore code spliced into the
// analysis routine itself (SaveInAnalysis, the paper's "higher
// optimization option").
package core

import (
	"fmt"
	"strings"
	"time"

	"atom/internal/aout"
	"atom/internal/link"
	"atom/internal/obs"
	"atom/internal/om"
	"atom/internal/om/analysis"
	"atom/internal/om/dataflow"
)

// Tool is a complete ATOM tool: instrumentation routine plus analysis
// sources.
type Tool struct {
	Name        string
	Description string
	// Analysis maps file names to MiniC source for the analysis routines.
	Analysis map[string]string
	// Instrument is the tool's instrumentation routine (the paper's
	// Instrument(iargc, iargv)); it receives the traversal/insertion API.
	Instrument func(q *Instrumentation) error
}

// SaveMode selects where caller-save registers are saved.
type SaveMode int

const (
	// SaveWrapper interposes a generated wrapper per analysis procedure
	// that saves/restores the summary registers. "This is the default
	// mechanism" (paper, Section 4): the analysis code is unmodified, so
	// source-level debugging keeps working.
	SaveWrapper SaveMode = iota
	// SaveInAnalysis splices the saves/restores into the analysis
	// routines themselves and calls them directly — "more work but more
	// efficient"; the paper's higher optimization option.
	SaveInAnalysis
)

// Options control an instrumentation run.
type Options struct {
	Mode SaveMode
	// HeapOffset selects the dynamic-memory scheme. Zero links the two
	// sbrks (application and analysis allocate from one heap, each
	// starting where the other left off). Non-zero partitions the heap:
	// the analysis zone starts HeapOffset bytes past the heap base, so
	// application heap addresses match the uninstrumented run. There is
	// deliberately no runtime check that the application heap stays
	// below the analysis zone, as in the paper.
	HeapOffset uint64
	// NoRegSummary disables the data-flow summary and saves every
	// caller-save register around every call (ablation baseline).
	NoRegSummary bool
	// LiveRegOpt enables the purely local live-register refinement
	// (registers overwritten before any read in the remainder of their
	// basic block are not saved). It is subsumed by the interprocedural
	// liveness pass and only has an effect when NoLiveness is set; the
	// two together form the none/local/full ablation ladder.
	LiveRegOpt bool
	// NoLiveness disables the interprocedural register-liveness pass
	// (internal/om/dataflow), reverting each site's save set to ra, the
	// written argument registers, and at regardless of what the
	// application could actually read afterwards. The zero value —
	// liveness on — is the default; set it (or use WithLiveness(false))
	// for ablation.
	NoLiveness bool
	// NoInline disables the analysis-routine inliner. By default (the
	// zero value) short leaf analysis routines are spliced directly into
	// their call sites — no bsr/ret, no wrapper, site save set reduced
	// to live ∩ clobbered-by-body. Set it (or use WithInlining(false))
	// to always call through the wrapper, as the paper does.
	NoInline bool
	// InlineLimit caps the inlined body size in original instructions;
	// zero means DefaultInlineLimit. Routines above the cap are called
	// normally.
	InlineLimit int
	// Verify runs the IR verifier (om.Verify) over the application before
	// rewriting and re-verifies the layout PC maps and the emitted text
	// afterwards, failing the run on any diagnostic (cmd/atom -vet).
	Verify bool
	// ToolArgs are passed to the instrumentation routine (iargc/iargv).
	ToolArgs []string
}

// Option is a functional adjustment applied on top of an Options value.
type Option func(*Options)

// WithLiveness toggles the interprocedural register-liveness pass that
// minimizes per-site save sets to live(site) ∩ modified(routine). It is
// on by default; WithLiveness(false) restores the previous behavior —
// every site saves ra, its written argument registers, and at — for
// ablation.
func WithLiveness(on bool) Option { return func(o *Options) { o.NoLiveness = !on } }

// WithVerify toggles the IR verifier around the rewrite (off by default;
// cmd/atom -vet and the test suite turn it on).
func WithVerify(on bool) Option { return func(o *Options) { o.Verify = on } }

// WithInlining toggles the analysis-routine inliner, which splices short
// leaf analysis routines directly into their call sites instead of
// calling them through a register-save wrapper. It is on by default;
// WithInlining(false) restores the paper's always-call behavior for
// ablation and debugging.
func WithInlining(on bool) Option { return func(o *Options) { o.NoInline = !on } }

// Stats reports what an instrumentation run did.
type Stats struct {
	Calls         int    // inserted call sites
	InlinedSites  int    // call sites whose analysis routine was inlined
	InsertedInsts int    // total spliced instructions in the application
	SavedRegs     int    // registers saved at call sites, summed over sites
	OrigText      uint64 // application text before instrumentation
	InstrText     uint64 // application text after instrumentation
	AnalysisText  uint64 // analysis image text size
	AnalysisData  uint64 // analysis image data size (bss folded in)
	// Figure 4 landmarks of the final executable.
	AnalysisTextAddr uint64
	AnalysisDataAddr uint64
}

// Result is an instrumented executable plus metadata.
type Result struct {
	// Exe is the instrumented program. Run it with the VM's
	// AnalysisHeapOffset set to HeapOffset.
	Exe        *aout.File
	HeapOffset uint64
	// PCMap exposes the static old<->new text address maps.
	PCMap *om.Layout
	Stats Stats
}

// Instrument applies a tool to a fully linked application (which must
// retain symbols and relocations) and produces the instrumented
// executable. This is the paper's
//
//	atom prog inst.c anal.c -o prog.atom
//
// step: the custom tool is Tool, prog is app, and the result is the
// final organized executable.
//
// Internally this is a staged pipeline: lift (build the application IR
// through the content-addressed IR cache — a suite of runs against one
// executable lifts it once and decodes cached blobs thereafter), plan
// (run the instrumentation routine over the IR), tool image (compile
// and link the analysis routines — cached, so a suite of programs
// builds it once), and apply (rewrite the application and stamp the
// image into its text-data gap).
func Instrument(app *aout.File, tool Tool, opts Options) (*Result, error) {
	return InstrumentCtx(nil, app, tool, opts)
}

// InstrumentCtx is Instrument with a stage context: the lift, plan,
// tool-image and apply stages each run under their own span ("om.lift",
// "atom.plan", "atom.image.build" behind a "cache.get" lookup,
// "atom.apply"), so a trace of a suite run shows exactly which program
// paid for the lift and the image build and which ones reused them.
func InstrumentCtx(ctx *obs.Ctx, app *aout.File, tool Tool, opts Options) (*Result, error) {
	prog, err := LiftCtx(ctx, app)
	if err != nil {
		return nil, err
	}
	return InstrumentProgramCtx(ctx, prog, tool, opts)
}

// InstrumentProgram is Instrument starting from an already-lifted
// Program — typically one decoded from an atom-ir/v1 blob (om.Decode of
// an `atom -emit-ir` artifact, or core.Lift). The Program is consumed:
// instrumentation attaches call sites to its instructions, so pass a
// fresh handle per run and do not reuse it.
func InstrumentProgram(prog *om.Program, tool Tool, opts Options) (*Result, error) {
	return InstrumentProgramCtx(nil, prog, tool, opts)
}

// InstrumentProgramCtx is InstrumentProgram with a stage context.
func InstrumentProgramCtx(ctx *obs.Ctx, prog *om.Program, tool Tool, opts Options) (*Result, error) {
	q, err := planOn(ctx, prog, tool, opts)
	if err != nil {
		return nil, err
	}
	ti, err := toolImageFor(ctx, tool, opts, q)
	if err != nil {
		return nil, err
	}
	return applyPlan(ctx, q, ti, opts)
}

// Apply stamps a prebuilt tool image into an application: the second
// step of the paper's two-step model, with the first step (BuildToolImage)
// already paid for. The tool's instrumentation routine still runs per
// application — call sites are application-specific — but no analysis
// code is compiled or linked. If the plan turns out to need a different
// image than the one supplied (the tool's options changed, or the
// in-analysis save mode is being applied to a program mix that calls
// different procedures), the right image is fetched — or built — from
// the cache transparently.
func Apply(app *aout.File, ti *ToolImage, opts Options) (*Result, error) {
	return ApplyCtx(nil, app, ti, opts)
}

// ApplyCtx is Apply with a stage context.
func ApplyCtx(ctx *obs.Ctx, app *aout.File, ti *ToolImage, opts Options) (*Result, error) {
	prog, err := LiftCtx(ctx, app)
	if err != nil {
		return nil, err
	}
	return ApplyProgramCtx(ctx, prog, ti, opts)
}

// ApplyProgram is Apply starting from an already-lifted Program (see
// InstrumentProgram for the handle contract: the Program is consumed).
func ApplyProgram(prog *om.Program, ti *ToolImage, opts Options) (*Result, error) {
	return ApplyProgramCtx(nil, prog, ti, opts)
}

// ApplyProgramCtx is ApplyProgram with a stage context.
func ApplyProgramCtx(ctx *obs.Ctx, prog *om.Program, ti *ToolImage, opts Options) (*Result, error) {
	if ti == nil {
		return nil, fmt.Errorf("atom: Apply called with a nil tool image")
	}
	q, err := planOn(ctx, prog, ti.tool, opts)
	if err != nil {
		return nil, err
	}
	use := ti
	if key := imageKey(ti.tool, opts, q.protos, calledTargets(q)); key != ti.key {
		if use, err = toolImageFor(ctx, ti.tool, opts, q); err != nil {
			return nil, err
		}
	}
	return applyPlan(ctx, q, use, opts)
}

// planOn runs the tool's instrumentation routine over a lifted Program
// and returns the resulting plan: declared prototypes, the journal of
// call insertions, and interned constant blobs. The lift itself is a
// separate, earlier stage (LiftCtx / om.Decode), so a plan can be drawn
// on a fresh lift or on IR decoded from a serialized blob
// interchangeably.
func planOn(ctx *obs.Ctx, prog *om.Program, tool Tool, opts Options) (*Instrumentation, error) {
	if tool.Instrument == nil {
		return nil, fmt.Errorf("atom: tool %q has no instrumentation routine", tool.Name)
	}
	_, sp := ctx.Start("atom.plan", obs.String("tool", tool.Name))
	defer sp.End()
	q := &Instrumentation{
		prog:   prog,
		protos: map[string]*Proto{},
		args:   opts.ToolArgs,
	}
	if err := tool.Instrument(q); err != nil {
		return nil, fmt.Errorf("atom: instrumentation routine for %q: %w", tool.Name, err)
	}
	sp.SetAttr(obs.Int("sites", int64(len(q.journal))))
	return q, nil
}

// applyPlan rewrites the application according to a plan and composes the
// final executable with the (rebased) analysis image in its text-data gap
// (Figure 4). This is the only per-application work in the pipeline. The
// application is reached through the plan's Program handle, so the same
// code path serves fresh lifts and Programs decoded from serialized IR.
func applyPlan(ctx *obs.Ctx, q *Instrumentation, ti *ToolImage, opts Options) (*Result, error) {
	app := q.prog.Exe
	actx, sp := ctx.Start("atom.apply", obs.String("tool", ti.tool.Name))
	defer sp.End()
	if ctx.Enabled() {
		// Per-program apply-time distribution: a suite fan-out renders as
		// a histogram instead of a single smeared total.
		start := time.Now()
		defer func() { ctx.Observe("atom.apply_us", time.Since(start).Microseconds()) }()
	}
	if opts.Verify {
		if ds := q.prog.VerifyCtx(actx); len(ds) > 0 {
			return nil, verifyError("input IR", ds)
		}
		if err := analyzeVerify(actx, "application", q.prog, analysis.Application); err != nil {
			return nil, err
		}
	}
	// Verify every called analysis procedure against the image.
	seen := map[string]bool{}
	for _, req := range q.journal {
		name := req.proto.Name
		if seen[name] {
			continue
		}
		seen[name] = true
		if !ti.hasProc[name] {
			return nil, fmt.Errorf("atom: analysis procedure %q not defined in analysis routines", name)
		}
		if !ti.isGlobal[name] {
			return nil, fmt.Errorf("atom: analysis procedure %q is not a global symbol", name)
		}
	}

	// Attach the call-site templates to the application IR. Within one
	// insertion point calls run in the order they were added, except that
	// ProgramBefore calls always precede (and ProgramAfter calls always
	// follow) other instrumentation sharing their instruction: analysis
	// state must be initialized before the first block/instruction event
	// at the entry point fires, and final reports must observe the last
	// events at exit.
	ordered := make([]*callReq, 0, len(q.journal))
	for _, r := range q.journal {
		if r.level == levelProgram && r.when == Before {
			ordered = append(ordered, r)
		}
	}
	for _, r := range q.journal {
		if r.level != levelProgram {
			ordered = append(ordered, r)
		}
	}
	for _, r := range q.journal {
		if r.level == levelProgram && r.when == After {
			ordered = append(ordered, r)
		}
	}

	// The per-site save set: with the liveness pass on (the default) a
	// register is saved only if the application may still read it AND the
	// analysis routine may modify it — the paper's live ∩ modified
	// refinement. One subtlety: instrumentation itself reads application
	// registers (REGV arguments), possibly at a LATER site than the one
	// deciding a save, so every register any site passes by REGV is kept
	// live program-wide. Sources read at the deciding site itself are
	// already protected inside buildSite (their save slot doubles as the
	// source copy).
	var lv *dataflow.Liveness
	var regvRead om.RegSet
	if !opts.NoLiveness {
		lv = dataflow.ComputeCtx(actx, q.prog)
		for _, req := range q.journal {
			for _, a := range req.args {
				if a.kind == argRegV {
					regvRead = regvRead.Add(a.reg)
				}
			}
		}
	}

	// Inlining applies per plan, not per image: the cached image always
	// carries the templates, and the limit/off switches are free to vary
	// without invalidating it. SaveInAnalysis already splices saves into
	// the routines themselves, which an inlined copy would duplicate, so
	// the inliner only runs in the (default) wrapper mode.
	inlineOK := !opts.NoInline && opts.Mode == SaveWrapper
	limit := opts.InlineLimit
	if limit == 0 {
		limit = DefaultInlineLimit
	}

	var sitesInlined, sitesCalled int64
	stats := Stats{Calls: len(q.journal), OrigText: uint64(len(app.Text))}
	for _, req := range ordered {
		target := req.proto.Name
		var tmpl *inlineTemplate
		if inlineOK {
			if t := ti.inline[target]; t != nil && t.bodyLen <= limit {
				tmpl = t
			}
		}
		if tmpl == nil && opts.Mode == SaveWrapper {
			target = WrapperName(target)
		}
		var dead om.RegSet
		switch {
		case lv != nil:
			live := lv.LiveIn(req.inst)
			if req.place == After {
				live = lv.LiveOut(req.inst)
			}
			dead = dataflow.ConservativeCallerSave() &^ live &^ regvRead
			// Histogram of caller-save live-set sizes at sites: the set
			// the save planner cannot drop below.
			ctx.Observe("atom.site_live_regs", int64((dataflow.ConservativeCallerSave() &^ dead).Count()))
		case opts.LiveRegOpt:
			dead = deadAtSite(req.inst, req.place)
		}
		code, nsaved, err := buildSite(req, target, dead, tmpl)
		if err != nil {
			return nil, err
		}
		if tmpl != nil {
			sitesInlined++
			stats.InlinedSites++
			ctx.Observe("atom.inline_body_len", int64(len(tmpl.insts)))
		} else {
			sitesCalled++
		}
		stats.InsertedInsts += len(code.Insts)
		stats.SavedRegs += nsaved
		ctx.Observe("atom.site_saved_regs", int64(nsaved))
		if req.place == Before {
			req.inst.Before = append(req.inst.Before, code)
		} else {
			req.inst.After = append(req.inst.After, code)
		}
	}

	// Lay out the instrumented application, then move the prebuilt
	// analysis image right behind it (Figure 4). Rebase is a rigid shift:
	// the image was linked once at a canonical base and keeps its
	// relocation records, so no relink happens here.
	lay := q.prog.LayoutCtx(actx)
	if opts.Verify {
		if ds := lay.VerifyCtx(actx); len(ds) > 0 {
			return nil, verifyError("layout PC maps", ds)
		}
	}
	stats.InstrText = lay.TextSize()
	analysisBase := (app.TextAddr + lay.TextSize() + 15) &^ 15
	img, err := link.RebaseCtx(actx, ti.img, analysisBase)
	if err != nil {
		return nil, err
	}

	// Constant blobs (strings and arrays the instrumentation passes by
	// address) are application-dependent, so they live outside the cached
	// image: each is placed, 8-aligned, right after the image's data.
	constAddr := make([]uint64, len(q.consts))
	imgEnd := img.DataAddr + uint64(len(img.Data))
	for i, c := range q.consts {
		imgEnd = (imgEnd + 7) &^ 7
		constAddr[i] = imgEnd
		imgEnd += uint64(len(c.data))
	}
	// The blobs land inside the composed text segment, whose byte length
	// must stay word-aligned or the written executable won't reload.
	imgEnd = (imgEnd + 7) &^ 7

	stats.AnalysisText = uint64(len(img.Text))
	stats.AnalysisData = imgEnd - img.DataAddr
	stats.AnalysisTextAddr = img.TextAddr
	stats.AnalysisDataAddr = img.DataAddr

	if imgEnd > app.DataAddr {
		return nil, fmt.Errorf(
			"atom: instrumented text (%#x) plus analysis image (text %#x, data %#x) ends at %#x, beyond the application data segment at %#x; rebuild the application with a larger text-data gap",
			lay.TextSize(), len(img.Text), imgEnd-img.DataAddr, imgEnd, app.DataAddr)
	}

	// Resolve inserted references against the analysis image's globals
	// and the constant blobs.
	globals := map[string]uint64{}
	for _, s := range img.Symbols {
		if s.Global && s.Section != aout.SecUndef {
			globals[s.Name] = s.Value
		}
	}
	for i, c := range q.consts {
		globals[c.label] = constAddr[i]
	}
	// Inlined bodies express their address constants as base+offset
	// against the rebased image's text base (Rebase shifts text, data
	// and bss rigidly, so one base covers every section).
	globals[inlineBaseSym] = img.TextAddr
	res, err := lay.FinishCtx(actx, func(name string) (uint64, bool) {
		v, ok := globals[name]
		return v, ok
	})
	if err != nil {
		return nil, err
	}
	if opts.Verify {
		if ds := lay.VerifyRewriteCtx(actx, res); len(ds) > 0 {
			return nil, verifyError("rewritten text", ds)
		}
	}

	// Compose the final executable: instrumented application text, then
	// the analysis text, data and constant blobs in the gap, then the
	// application's (unmoved) data and bss.
	text := make([]byte, imgEnd-app.TextAddr)
	copy(text, res.Text)
	copy(text[img.TextAddr-app.TextAddr:], img.Text)
	copy(text[img.DataAddr-app.TextAddr:], img.Data)
	for i, c := range q.consts {
		copy(text[constAddr[i]-app.TextAddr:], c.data)
	}

	symbols := append([]aout.Symbol(nil), res.Symbols...)
	symbols = append(symbols, img.Symbols...)
	for i, c := range q.consts {
		symbols = append(symbols, aout.Symbol{
			Name:    c.label,
			Section: aout.SecData,
			Value:   constAddr[i],
			Size:    uint64(len(c.data)),
			Global:  true,
		})
	}

	out := &aout.File{
		Linked:   true,
		Entry:    res.Entry,
		Text:     text,
		TextAddr: app.TextAddr,
		Data:     res.Data,
		DataAddr: app.DataAddr,
		Bss:      app.Bss,
		BssAddr:  app.BssAddr,
		Symbols:  symbols,
	}
	sp.SetAttr(
		obs.Int("sites", int64(stats.Calls)),
		obs.Int("inserted_insts", int64(stats.InsertedInsts)))
	ctx.Count("atom.sites", int64(stats.Calls))
	ctx.Count("atom.sites_inlined", sitesInlined)
	ctx.Count("atom.sites_called", sitesCalled)
	ctx.Count("atom.bytes_marshalled", int64(len(out.Text)+len(out.Data)))
	return &Result{Exe: out, HeapOffset: opts.HeapOffset, PCMap: lay, Stats: stats}, nil
}

// verifyError folds verifier diagnostics into one error, original PCs
// and procedures first so a failure points at source-level code.
func verifyError(stage string, diags []om.Diag) error {
	const show = 8
	var b strings.Builder
	fmt.Fprintf(&b, "atom: verifier: %s: %d diagnostic(s)", stage, len(diags))
	for i, d := range diags {
		if i == show {
			fmt.Fprintf(&b, "\n\t... and %d more", len(diags)-show)
			break
		}
		b.WriteString("\n\t")
		b.WriteString(d.String())
	}
	return fmt.Errorf("%s", b.String())
}
