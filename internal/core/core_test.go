package core_test

import (
	"fmt"
	"strings"
	"testing"

	"atom/internal/aout"
	"atom/internal/core"
	"atom/internal/rtl"
	"atom/internal/vm"
)

// branchCountTool is the paper's Section 3 example: count how many times
// each conditional branch is taken and not taken, writing the results to
// a file. The analysis routines are a direct port of Figure 3; the
// instrumentation routine is a direct port of Figure 2.
func branchCountTool() core.Tool {
	return core.Tool{
		Name: "branchcount",
		Analysis: map[string]string{
			"anal.c": `
#include <stdio.h>
#include <stdlib.h>

FILE *file;

struct BranchInfo {
	long taken;
	long notTaken;
};
struct BranchInfo *bstats;

void OpenFile(long n) {
	bstats = (struct BranchInfo *) malloc(n * sizeof(struct BranchInfo));
	file = fopen("btaken.out", "w");
	fprintf(file, "PC\tTaken\tNot Taken\n");
}

void CondBranch(long n, long taken) {
	if (taken) bstats[n].taken++;
	else bstats[n].notTaken++;
}

void PrintBranch(long n, long pc) {
	fprintf(file, "0x%lx\t%d\t%d\n", pc, bstats[n].taken, bstats[n].notTaken);
}

void CloseFile(void) {
	fclose(file);
}
`,
		},
		Instrument: func(q *core.Instrumentation) error {
			if err := q.AddCallProto("OpenFile(int)"); err != nil {
				return err
			}
			if err := q.AddCallProto("CondBranch(int, VALUE)"); err != nil {
				return err
			}
			if err := q.AddCallProto("PrintBranch(int, long)"); err != nil {
				return err
			}
			if err := q.AddCallProto("CloseFile()"); err != nil {
				return err
			}
			nbranch := 0
			for p := q.GetFirstProc(); p != nil; p = q.GetNextProc(p) {
				for b := q.GetFirstBlock(p); b != nil; b = q.GetNextBlock(b) {
					inst := q.GetLastInst(b)
					if q.IsInstType(inst, core.InstTypeCondBr) {
						if err := q.AddCallInst(inst, core.InstBefore, "CondBranch", nbranch, core.BrCondValue); err != nil {
							return err
						}
						if err := q.AddCallProgram(core.ProgramAfter, "PrintBranch", nbranch, int64(q.InstPC(inst))); err != nil {
							return err
						}
						nbranch++
					}
				}
			}
			if err := q.AddCallProgram(core.ProgramBefore, "OpenFile", nbranch); err != nil {
				return err
			}
			return q.AddCallProgram(core.ProgramAfter, "CloseFile")
		},
	}
}

func buildApp(t *testing.T, src string) *aout.File {
	t.Helper()
	exe, err := rtl.BuildProgram("app.c", src)
	if err != nil {
		t.Fatalf("build app: %v", err)
	}
	return exe
}

func runExe(t *testing.T, exe *aout.File, cfg vm.Config) *vm.Machine {
	t.Helper()
	m, err := vm.New(exe, cfg)
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v (stdout=%q stderr=%q)", err, m.Stdout, m.Stderr)
	}
	return m
}

const loopApp = `
#include <stdio.h>
int main() {
	long i;
	long s = 0;
	for (i = 0; i < 10; i++) s += i;
	printf("s=%d\n", s);
	return 0;
}
`

func TestPaperBranchExample(t *testing.T) {
	app := buildApp(t, loopApp)
	ref := runExe(t, app, vm.Config{})

	res, err := core.Instrument(app, branchCountTool(), core.Options{})
	if err != nil {
		t.Fatalf("Instrument: %v", err)
	}
	m := runExe(t, res.Exe, vm.Config{AnalysisHeapOffset: res.HeapOffset})

	// The application's own behavior is unperturbed.
	if string(m.Stdout) != string(ref.Stdout) {
		t.Errorf("stdout changed: %q vs %q", m.Stdout, ref.Stdout)
	}

	out, ok := m.FSOut["btaken.out"]
	if !ok {
		t.Fatalf("btaken.out not written; files = %v", m.Paths())
	}
	text := string(out)
	if !strings.HasPrefix(text, "PC\tTaken\tNot Taken\n") {
		t.Fatalf("missing header: %q", text)
	}
	lines := strings.Split(strings.TrimSpace(text), "\n")[1:]
	if len(lines) < 10 {
		t.Fatalf("only %d branch records", len(lines))
	}
	// The for-loop back-edge branch in main must show 10 taken / 1 not
	// (or 9/1 depending on loop shape): find a line with taken+not == 10
	// or 11 and taken >= 9. More robustly: totals must be plausible and
	// at least one branch fired exactly 11 times (i<10 evaluated 11x).
	found := false
	for _, ln := range lines {
		var pc string
		var taken, not int
		if _, err := fmt.Sscanf(ln, "%s\t%d\t%d", &pc, &taken, &not); err != nil {
			t.Fatalf("bad line %q: %v", ln, err)
		}
		if taken+not == 11 {
			found = true
		}
	}
	if !found {
		t.Errorf("no branch executed exactly 11 times (the loop condition should):\n%s", text)
	}
}

func TestBranchToolBothSaveModes(t *testing.T) {
	app := buildApp(t, loopApp)
	var outs []string
	var counts []uint64
	for _, opts := range []core.Options{
		{Mode: core.SaveWrapper},
		{Mode: core.SaveInAnalysis},
		{Mode: core.SaveWrapper, NoRegSummary: true},
	} {
		res, err := core.Instrument(app, branchCountTool(), opts)
		if err != nil {
			t.Fatalf("Instrument(%+v): %v", opts, err)
		}
		m := runExe(t, res.Exe, vm.Config{})
		outs = append(outs, string(m.FSOut["btaken.out"]))
		counts = append(counts, m.Icount)
	}
	if outs[0] != outs[1] || outs[0] != outs[2] {
		t.Errorf("save modes disagree:\n--- wrapper ---\n%s\n--- in-analysis ---\n%s\n--- no-summary ---\n%s", outs[0], outs[1], outs[2])
	}
	// SaveInAnalysis calls directly (no wrapper hop) => fewer dynamic
	// instructions than wrapper mode; no-summary saves more registers =>
	// more instructions than the summary-based wrapper mode.
	if !(counts[1] < counts[0]) {
		t.Errorf("in-analysis mode (%d) not cheaper than wrapper mode (%d)", counts[1], counts[0])
	}
	if !(counts[2] > counts[0]) {
		t.Errorf("no-summary (%d) not costlier than summary (%d)", counts[2], counts[0])
	}
}
