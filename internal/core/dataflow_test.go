package core_test

import (
	"testing"

	"atom/internal/core"
	"atom/internal/spec"
	"atom/internal/tools"
	"atom/internal/vm"
)

// TestLivenessPreservesBehavior is the global analysis's pristine-behavior
// regression: with liveness on (the default) and off, the instrumented
// program's stdout and the tool's report are bit-identical, and the
// liveness run retires strictly fewer instructions (it skips saves of
// dead registers at sites).
func TestLivenessPreservesBehavior(t *testing.T) {
	for _, tc := range []struct{ tool, prog string }{
		{"branch", "queens"},
		{"cache", "eqntott"},
		{"dyninst", "tomcatv"},
		{"gprof", "spice"},
	} {
		tc := tc
		t.Run(tc.tool+"/"+tc.prog, func(t *testing.T) {
			exe, err := spec.Build(tc.prog)
			if err != nil {
				t.Fatal(err)
			}
			tool, _ := tools.ByName(tc.tool)
			var outs [2]string
			var icounts [2]uint64
			for i, noLive := range []bool{true, false} {
				res, err := core.Instrument(exe, tool, core.Options{NoLiveness: noLive, Verify: true})
				if err != nil {
					t.Fatal(err)
				}
				p, _ := spec.ByName(tc.prog)
				m, err := vm.New(res.Exe, vm.Config{Stdin: p.Stdin, FS: p.FS, MaxInstr: 2_000_000_000})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := m.Run(); err != nil {
					t.Fatalf("noliveness=%v: %v", noLive, err)
				}
				outs[i] = string(m.Stdout) + "|" + string(m.FSOut[tc.tool+".out"])
				icounts[i] = m.Icount
			}
			if outs[0] != outs[1] {
				t.Errorf("liveness changed behavior:\n%s\nvs\n%s", outs[0], outs[1])
			}
			if icounts[1] >= icounts[0] {
				t.Errorf("liveness run not cheaper: %d vs %d", icounts[1], icounts[0])
			} else {
				t.Logf("saved %.1f%% of instructions (%d -> %d)",
					100*(1-float64(icounts[1])/float64(icounts[0])), icounts[0], icounts[1])
			}
		})
	}
}

// TestLivenessSavesFewerRegs checks the acceptance bar directly: with
// liveness on, the summed register-save count across sites is strictly
// smaller on the built-in tools, with the same sites instrumented.
func TestLivenessSavesFewerRegs(t *testing.T) {
	exe, err := spec.Build("queens")
	if err != nil {
		t.Fatal(err)
	}
	fewer := 0
	for _, tname := range []string{"branch", "cache", "prof"} {
		tool, _ := tools.ByName(tname)
		off, err := core.Instrument(exe, tool, core.Options{NoLiveness: true})
		if err != nil {
			t.Fatal(err)
		}
		on, err := core.Instrument(exe, tool, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if on.Stats.Calls != off.Stats.Calls {
			t.Errorf("%s: site count changed with liveness: %d vs %d", tname, on.Stats.Calls, off.Stats.Calls)
		}
		switch {
		case on.Stats.SavedRegs < off.Stats.SavedRegs:
			fewer++
			t.Logf("%s: %d -> %d registers saved across %d sites",
				tname, off.Stats.SavedRegs, on.Stats.SavedRegs, on.Stats.Calls)
		case on.Stats.SavedRegs > off.Stats.SavedRegs:
			t.Errorf("%s: liveness INCREASED saves: %d -> %d", tname, off.Stats.SavedRegs, on.Stats.SavedRegs)
		}
	}
	if fewer < 2 {
		t.Errorf("liveness saved strictly fewer registers on %d tools, want >= 2", fewer)
	}
}

// TestVerifySweep instruments a couple of programs with every built-in
// tool under -vet semantics: the IR verifier must pass on the input
// program, the layout PC maps, and the rewritten text, for every tool.
func TestVerifySweep(t *testing.T) {
	for _, prog := range []string{"queens", "ora"} {
		exe, err := spec.Build(prog)
		if err != nil {
			t.Fatal(err)
		}
		for _, tname := range tools.Names() {
			tool, _ := tools.ByName(tname)
			if _, err := core.Instrument(exe, tool, core.Options{Verify: true}); err != nil {
				t.Errorf("%s on %s: %v", tname, prog, err)
			}
		}
	}
}
