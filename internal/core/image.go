package core

import (
	"encoding/binary"
	"fmt"
	"strings"

	"atom/internal/alpha"
	"atom/internal/aout"
	"atom/internal/asm"
	"atom/internal/link"
	"atom/internal/obs"
	"atom/internal/om"
)

// Analysis-image helpers shared by the tool-image build (toolimage.go):
// register-save wrappers, the in-analysis save/restore splice, and the
// sbrk redirection that gives the analysis side its own heap zone.

// spliceGrowth computes how many text bytes the in-analysis save/restore
// splice adds: a prologue per procedure and a restore before each ret.
func spliceGrowth(prog *om.Program, targets []string, save map[string]om.RegSet) uint64 {
	var g uint64
	for _, name := range targets {
		pr := prog.Proc(name)
		n := uint64(save[name].Count())
		if n == 0 {
			continue
		}
		g += (n + 2) * 4 // lda sp; n stores; ... counted once more below
		g -= 4           // prologue is lda + n stores = n+1 instructions
		rets := 0
		for _, b := range pr.Blocks {
			if b.Insts[len(b.Insts)-1].I.Op == alpha.OpRet {
				rets++
			}
		}
		g += uint64(rets) * (n + 1) * 4
	}
	return g
}

// spliceSaves splices the save/restore code into the analysis program IR.
func spliceSaves(prog *om.Program, targets []string, save map[string]om.RegSet) error {
	for _, name := range targets {
		s := save[name]
		if s.Count() == 0 {
			continue
		}
		pr := prog.Proc(name)
		frame := int64(8*s.Count()+15) &^ 15
		var pro om.Code
		pro.Insts = append(pro.Insts, alpha.Mem(alpha.OpLda, alpha.SP, alpha.SP, int32(-frame)))
		for i, r := range s.Regs() {
			pro.Insts = append(pro.Insts, alpha.Mem(alpha.OpStq, r, alpha.SP, int32(i*8)))
		}
		pr.Blocks[0].Insts[0].Before = append(pr.Blocks[0].Insts[0].Before, pro)
		for _, b := range pr.Blocks {
			last := b.Insts[len(b.Insts)-1]
			if last.I.Op != alpha.OpRet {
				continue
			}
			var epi om.Code
			for i, r := range s.Regs() {
				epi.Insts = append(epi.Insts, alpha.Mem(alpha.OpLdq, r, alpha.SP, int32(i*8)))
			}
			epi.Insts = append(epi.Insts, alpha.Mem(alpha.OpLda, alpha.SP, alpha.SP, int32(frame)))
			last.Before = append(last.Before, epi)
		}
	}
	return nil
}

// wrapperModule generates the wrapper procedures for the given (sorted)
// analysis procedures: each saves the registers its routine's summary
// says may be clobbered (minus those the call site already saved),
// forwards the call, and restores. Wrappers for >6-argument routines also
// relay the stack arguments.
func wrapperModule(ctx *obs.Ctx, names []string, protos map[string]*Proto, wrapSave map[string]om.RegSet) (*aout.File, error) {
	var b strings.Builder
	b.WriteString("\t.text\n")
	for _, name := range names {
		save := wrapSave[name].Regs()
		nStack := len(protos[name].Params) - alpha.MaxRegArgs
		if nStack < 0 {
			nStack = 0
		}
		useAT := nStack > 0
		w := WrapperName(name)
		fmt.Fprintf(&b, "\t.globl %s\n\t.ent %s\n%s:\n", w, w, w)
		slots := 1 + len(save) // ra + saved registers
		if useAT && !wrapSave[name].Has(alpha.AT) {
			slots++
		}
		frame := (int64(nStack)*8 + int64(slots)*8 + 15) &^ 15
		fmt.Fprintf(&b, "\tlda sp, -%d(sp)\n", frame)
		off := int64(nStack) * 8
		fmt.Fprintf(&b, "\tstq ra, %d(sp)\n", off)
		off += 8
		atSaved := false
		for _, r := range save {
			fmt.Fprintf(&b, "\tstq %s, %d(sp)\n", r, off)
			if r == alpha.AT {
				atSaved = true
			}
			off += 8
		}
		atOff := off
		if useAT && !atSaved {
			fmt.Fprintf(&b, "\tstq at, %d(sp)\n", atOff)
			off += 8
		}
		// Relay incoming stack arguments to the callee's frame.
		for k := 0; k < nStack; k++ {
			fmt.Fprintf(&b, "\tldq at, %d(sp)\n", frame+int64(k)*8)
			fmt.Fprintf(&b, "\tstq at, %d(sp)\n", int64(k)*8)
		}
		fmt.Fprintf(&b, "\tbsr ra, %s\n", name)
		off = int64(nStack) * 8
		fmt.Fprintf(&b, "\tldq ra, %d(sp)\n", off)
		off += 8
		for _, r := range save {
			fmt.Fprintf(&b, "\tldq %s, %d(sp)\n", r, off)
			off += 8
		}
		if useAT && !atSaved {
			fmt.Fprintf(&b, "\tldq at, %d(sp)\n", atOff)
		}
		fmt.Fprintf(&b, "\tlda sp, %d(sp)\n", frame)
		fmt.Fprintf(&b, "\tret (ra)\n\t.end %s\n", w)
	}
	return asm.AssembleCtx(ctx, "atom$wrappers.s", b.String())
}

// WrapperName returns the wrapper symbol for an analysis procedure.
func WrapperName(proc string) string { return "atom$w$" + proc }

// textSizeOf measures the text size a link of the given objects produces.
func textSizeOf(objs []*aout.File, lib *link.Library) (uint64, error) {
	probe, err := link.Link(link.Config{
		TextAddr:      link.DefaultTextAddr,
		DataAfterText: true,
		Entry:         "-",
		ZeroBss:       true,
	}, objs, lib)
	if err != nil {
		return 0, err
	}
	return uint64(len(probe.Text)), nil
}

// redirectSbrk rewrites the analysis image's sbrk to allocate from the
// second heap zone (CALL_PAL sbrk2). With a zero zone offset the two
// zones share one break pointer — the paper's default "linked sbrks"
// scheme; a non-zero offset partitions the heap.
func redirectSbrk(img *aout.File) error {
	sym, ok := img.Lookup("sbrk")
	if !ok {
		return nil // image does not allocate dynamic memory
	}
	start := sym.Value - img.TextAddr
	end := start + sym.Size
	patched := false
	for off := start; off+4 <= end && off+4 <= uint64(len(img.Text)); off += 4 {
		w := binary.LittleEndian.Uint32(img.Text[off:])
		in, err := alpha.Decode(w)
		if err != nil {
			continue
		}
		if in.Op == alpha.OpCallPal && in.PalFn == alpha.PalSbrk {
			in.PalFn = alpha.PalSbrk2
			binary.LittleEndian.PutUint32(img.Text[off:], in.MustEncode())
			patched = true
		}
	}
	if !patched {
		return fmt.Errorf("atom: could not locate the sbrk CALL_PAL in the analysis image")
	}
	return nil
}
