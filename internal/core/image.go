package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"atom/internal/alpha"
	"atom/internal/aout"
	"atom/internal/asm"
	"atom/internal/link"
	"atom/internal/om"
	"atom/internal/rtl"
)

// Analysis-image construction: compiling analysis routines, generating
// wrappers or in-analysis save code, placing the image in the gap between
// application text and data (Figure 4), and redirecting its sbrk.

// analysisImage carries the state of the analysis side of the build.
type analysisImage struct {
	objs       []*aout.File // compiled analysis routines + constant blobs
	summary    map[string]om.RegSet
	targets    []string       // called analysis procedures, sorted
	argc       map[string]int // register-argument count per target
	wrapSave   map[string]om.RegSet
	spliceSave map[string]om.RegSet
	extraText  uint64 // text growth from the in-analysis splice

	final *aout.File // the linked (and possibly spliced) image
}

// compileAnalysis builds the analysis objects: user sources plus the
// module holding constant blobs (strings and arrays passed as arguments).
func compileAnalysis(q *Instrumentation, srcs map[string]string) (*analysisImage, error) {
	if len(srcs) == 0 {
		return nil, fmt.Errorf("atom: tool has no analysis routines")
	}
	objs, err := rtl.BuildObjects(srcs)
	if err != nil {
		return nil, fmt.Errorf("atom: analysis routines: %w", err)
	}
	if len(q.consts) > 0 {
		var b strings.Builder
		b.WriteString("\t.data\n")
		for _, c := range q.consts {
			fmt.Fprintf(&b, "\t.align 3\n\t.globl %s\n%s:\n", c.label, c.label)
			b.WriteString("\t.byte ")
			for i, by := range c.data {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%d", by)
			}
			b.WriteString("\n")
		}
		blob, err := asm.Assemble("atom$consts.s", b.String())
		if err != nil {
			return nil, fmt.Errorf("atom: constant blobs: %w", err)
		}
		objs = append(objs, blob)
	}
	return &analysisImage{objs: objs}, nil
}

// prepare links the image provisionally, verifies every called procedure
// exists, computes register summaries and save sets, and measures the
// in-analysis splice growth.
func (ai *analysisImage) prepare(q *Instrumentation, opts Options) error {
	lib, err := rtl.Lib()
	if err != nil {
		return err
	}
	prov, err := link.Link(link.Config{
		TextAddr:      link.DefaultTextAddr,
		DataAfterText: true,
		Entry:         "-",
		ZeroBss:       true,
	}, ai.objs, lib)
	if err != nil {
		return fmt.Errorf("atom: linking analysis routines: %w", err)
	}
	aprog, err := om.Build(prov)
	if err != nil {
		return fmt.Errorf("atom: analysis image: %w", err)
	}
	ai.summary = aprog.ModifiedRegs()

	// Verify prototypes against the image and collect call targets.
	seen := map[string]bool{}
	ai.argc = map[string]int{}
	for _, req := range q.journal {
		name := req.proto.Name
		if seen[name] {
			continue
		}
		seen[name] = true
		pr := aprog.Proc(name)
		if pr == nil {
			return fmt.Errorf("atom: analysis procedure %q not defined in analysis routines", name)
		}
		sym, ok := prov.Lookup(name)
		if !ok || !sym.Global {
			return fmt.Errorf("atom: analysis procedure %q is not a global symbol", name)
		}
		ai.targets = append(ai.targets, name)
		n := len(req.proto.Params)
		if n > alpha.MaxRegArgs {
			n = alpha.MaxRegArgs
		}
		ai.argc[name] = n
	}
	sort.Strings(ai.targets)

	// Save sets per target. With NoRegSummary (ablation), every
	// caller-save register is assumed clobbered.
	ai.wrapSave = map[string]om.RegSet{}
	ai.spliceSave = map[string]om.RegSet{}
	for _, name := range ai.targets {
		mod := ai.summary[name]
		if opts.NoRegSummary {
			mod = om.AllCallerSave()
		}
		save := mod
		// ra and the register arguments are saved at the call site.
		save &^= om.RegSet(0).Add(alpha.RA)
		args := alpha.ArgRegs()
		for i := 0; i < ai.argc[name]; i++ {
			save &^= om.RegSet(0).Add(args[i])
		}
		ai.wrapSave[name] = save
		ai.spliceSave[name] = save
		if opts.Mode == SaveInAnalysis {
			if len(q.protos[name].Params) > alpha.MaxRegArgs {
				return fmt.Errorf("atom: %q: the in-analysis save mode supports at most %d parameters", name, alpha.MaxRegArgs)
			}
			// Every exit must be a ret for the restore splice to cover it.
			pr := aprog.Proc(name)
			for _, b := range pr.Blocks {
				last := b.Insts[len(b.Insts)-1].I
				if last.Op == alpha.OpBr {
					target := b.Insts[len(b.Insts)-1].Addr + 4 + uint64(int64(last.Disp)*4)
					if target < pr.Addr || target >= pr.Addr+pr.Size {
						return fmt.Errorf("atom: %q exits via a cross-procedure branch; in-analysis saves unsupported", name)
					}
				}
			}
		}
	}

	if opts.Mode == SaveInAnalysis {
		ai.extraText = spliceGrowth(aprog, ai.targets, ai.spliceSave)
	}
	return nil
}

// spliceGrowth computes how many text bytes the in-analysis save/restore
// splice adds: a prologue per procedure and a restore before each ret.
func spliceGrowth(prog *om.Program, targets []string, save map[string]om.RegSet) uint64 {
	var g uint64
	for _, name := range targets {
		pr := prog.Proc(name)
		n := uint64(save[name].Count())
		if n == 0 {
			continue
		}
		g += (n + 2) * 4 // lda sp; n stores; ... counted once more below
		g -= 4           // prologue is lda + n stores = n+1 instructions
		rets := 0
		for _, b := range pr.Blocks {
			if b.Insts[len(b.Insts)-1].I.Op == alpha.OpRet {
				rets++
			}
		}
		g += uint64(rets) * (n + 1) * 4
	}
	return g
}

// spliceSaves splices the save/restore code into the analysis program IR.
func spliceSaves(prog *om.Program, targets []string, save map[string]om.RegSet) error {
	for _, name := range targets {
		s := save[name]
		if s.Count() == 0 {
			continue
		}
		pr := prog.Proc(name)
		frame := int64(8*s.Count()+15) &^ 15
		var pro om.Code
		pro.Insts = append(pro.Insts, alpha.Mem(alpha.OpLda, alpha.SP, alpha.SP, int32(-frame)))
		for i, r := range s.Regs() {
			pro.Insts = append(pro.Insts, alpha.Mem(alpha.OpStq, r, alpha.SP, int32(i*8)))
		}
		pr.Blocks[0].Insts[0].Before = append(pr.Blocks[0].Insts[0].Before, pro)
		for _, b := range pr.Blocks {
			last := b.Insts[len(b.Insts)-1]
			if last.I.Op != alpha.OpRet {
				continue
			}
			var epi om.Code
			for i, r := range s.Regs() {
				epi.Insts = append(epi.Insts, alpha.Mem(alpha.OpLdq, r, alpha.SP, int32(i*8)))
			}
			epi.Insts = append(epi.Insts, alpha.Mem(alpha.OpLda, alpha.SP, alpha.SP, int32(frame)))
			last.Before = append(last.Before, epi)
		}
	}
	return nil
}

// wrapperModule generates the wrapper procedures: each saves the
// registers its analysis routine's summary says may be clobbered (minus
// those the call site already saved), forwards the call, and restores.
// Wrappers for >6-argument routines also relay the stack arguments.
func (ai *analysisImage) wrapperModule(q *Instrumentation) (*aout.File, error) {
	var b strings.Builder
	b.WriteString("\t.text\n")
	for _, name := range ai.targets {
		save := ai.wrapSave[name].Regs()
		nStack := len(q.protos[name].Params) - alpha.MaxRegArgs
		if nStack < 0 {
			nStack = 0
		}
		useAT := nStack > 0
		w := WrapperName(name)
		fmt.Fprintf(&b, "\t.globl %s\n\t.ent %s\n%s:\n", w, w, w)
		slots := 1 + len(save) // ra + saved registers
		if useAT && !ai.wrapSave[name].Has(alpha.AT) {
			slots++
		}
		frame := (int64(nStack)*8 + int64(slots)*8 + 15) &^ 15
		fmt.Fprintf(&b, "\tlda sp, -%d(sp)\n", frame)
		off := int64(nStack) * 8
		fmt.Fprintf(&b, "\tstq ra, %d(sp)\n", off)
		off += 8
		atSaved := false
		for _, r := range save {
			fmt.Fprintf(&b, "\tstq %s, %d(sp)\n", r, off)
			if r == alpha.AT {
				atSaved = true
			}
			off += 8
		}
		atOff := off
		if useAT && !atSaved {
			fmt.Fprintf(&b, "\tstq at, %d(sp)\n", atOff)
			off += 8
		}
		// Relay incoming stack arguments to the callee's frame.
		for k := 0; k < nStack; k++ {
			fmt.Fprintf(&b, "\tldq at, %d(sp)\n", frame+int64(k)*8)
			fmt.Fprintf(&b, "\tstq at, %d(sp)\n", int64(k)*8)
		}
		fmt.Fprintf(&b, "\tbsr ra, %s\n", name)
		off = int64(nStack) * 8
		fmt.Fprintf(&b, "\tldq ra, %d(sp)\n", off)
		off += 8
		for _, r := range save {
			fmt.Fprintf(&b, "\tldq %s, %d(sp)\n", r, off)
			off += 8
		}
		if useAT && !atSaved {
			fmt.Fprintf(&b, "\tldq at, %d(sp)\n", atOff)
		}
		fmt.Fprintf(&b, "\tlda sp, %d(sp)\n", frame)
		fmt.Fprintf(&b, "\tret (ra)\n\t.end %s\n", w)
	}
	return asm.Assemble("atom$wrappers.s", b.String())
}

// WrapperName returns the wrapper symbol for an analysis procedure.
func WrapperName(proc string) string { return "atom$w$" + proc }

// linkFinal links the analysis image at its final base and applies the
// in-analysis splice and the sbrk redirection.
func (ai *analysisImage) linkFinal(q *Instrumentation, opts Options, textBase uint64) error {
	lib, err := rtl.Lib()
	if err != nil {
		return err
	}
	objs := ai.objs
	if opts.Mode == SaveWrapper && len(ai.targets) > 0 {
		wrap, err := ai.wrapperModule(q)
		if err != nil {
			return fmt.Errorf("atom: wrappers: %w", err)
		}
		objs = append(append([]*aout.File(nil), objs...), wrap)
	}

	cfg := link.Config{TextAddr: textBase, Entry: "-", ZeroBss: true}
	if ai.extraText == 0 {
		cfg.DataAfterText = true
	} else {
		// Leave room for the splice growth between text and data.
		size, err := textSizeOf(objs, lib)
		if err != nil {
			return err
		}
		cfg.DataAddr = (textBase + size + ai.extraText + 15) &^ 15
	}
	img, err := link.Link(cfg, objs, lib)
	if err != nil {
		return fmt.Errorf("atom: linking analysis image: %w", err)
	}

	if opts.Mode == SaveInAnalysis && ai.extraText > 0 {
		aprog, err := om.Build(img)
		if err != nil {
			return err
		}
		if err := spliceSaves(aprog, ai.targets, ai.spliceSave); err != nil {
			return err
		}
		lay := aprog.Layout()
		if lay.TextSize() != uint64(len(img.Text))+ai.extraText {
			return fmt.Errorf("atom: internal: splice growth %d != predicted %d",
				lay.TextSize()-uint64(len(img.Text)), ai.extraText)
		}
		res, err := lay.Finish(func(string) (uint64, bool) { return 0, false })
		if err != nil {
			return err
		}
		img = &aout.File{
			Linked: true,
			Text:   res.Text, TextAddr: img.TextAddr,
			Data: res.Data, DataAddr: img.DataAddr,
			Bss: img.Bss, BssAddr: img.BssAddr,
			Symbols: res.Symbols,
		}
	}

	if err := redirectSbrk(img); err != nil {
		return err
	}
	ai.final = img
	return nil
}

// textSizeOf measures the text size a link of the given objects produces.
func textSizeOf(objs []*aout.File, lib *link.Library) (uint64, error) {
	probe, err := link.Link(link.Config{
		TextAddr:      link.DefaultTextAddr,
		DataAfterText: true,
		Entry:         "-",
		ZeroBss:       true,
	}, objs, lib)
	if err != nil {
		return 0, err
	}
	return uint64(len(probe.Text)), nil
}

// redirectSbrk rewrites the analysis image's sbrk to allocate from the
// second heap zone (CALL_PAL sbrk2). With a zero zone offset the two
// zones share one break pointer — the paper's default "linked sbrks"
// scheme; a non-zero offset partitions the heap.
func redirectSbrk(img *aout.File) error {
	sym, ok := img.Lookup("sbrk")
	if !ok {
		return nil // image does not allocate dynamic memory
	}
	start := sym.Value - img.TextAddr
	end := start + sym.Size
	patched := false
	for off := start; off+4 <= end && off+4 <= uint64(len(img.Text)); off += 4 {
		w := binary.LittleEndian.Uint32(img.Text[off:])
		in, err := alpha.Decode(w)
		if err != nil {
			continue
		}
		if in.Op == alpha.OpCallPal && in.PalFn == alpha.PalSbrk {
			in.PalFn = alpha.PalSbrk2
			binary.LittleEndian.PutUint32(img.Text[off:], in.MustEncode())
			patched = true
		}
	}
	if !patched {
		return fmt.Errorf("atom: could not locate the sbrk CALL_PAL in the analysis image")
	}
	return nil
}
