package core

import (
	"fmt"
	"sort"

	"atom/internal/alpha"
	"atom/internal/aout"
	"atom/internal/build"
	"atom/internal/om"
)

// Wire formats for the core caches, so tool images and probe apps
// persist through the process-wide build.Store. A ToolImage is the
// linked aout image (which has its own versioned encoding) plus the
// procedure tables and inline templates the apply phase consults; all of
// it is byte-stable, EXCEPT the tool identity — the Tool value carries
// the user's Go instrumentation closure, which has no wire form. The
// codec therefore encodes everything but the tool, and toolImageFor
// re-attaches tool and key on a private copy after a disk hit (the key
// already proves the sources and options match). The version strings are
// mixed into the cache keys, so a format change can never decode an old
// blob.
const (
	imageCodecVersion = "atom-img/v1\n"
	probeCodecVersion = "atom-probe/v1\n"
)

// imageCodec serializes a *ToolImage minus its tool identity.
type imageCodec struct{}

func (imageCodec) Marshal(v any) ([]byte, error) {
	ti, ok := v.(*ToolImage)
	if !ok {
		return nil, fmt.Errorf("atom: imageCodec: unexpected %T", v)
	}
	e := build.NewEnc(imageCodecVersion)
	e.U8(uint8(ti.mode))
	e.Blob(ti.img.Encode())
	encodeNameSet(e, ti.hasProc)
	encodeNameSet(e, ti.isGlobal)

	names := make([]string, 0, len(ti.inline))
	for n := range ti.inline {
		names = append(names, n)
	}
	sort.Strings(names)
	e.U32(uint32(len(names)))
	for _, n := range names {
		t := ti.inline[n]
		e.Str(n)
		e.Str(t.name)
		e.U32(uint32(t.clobbers))
		e.U32(uint32(t.bodyLen))
		e.U32(uint32(len(t.insts)))
		for _, in := range t.insts {
			e.U8(uint8(in.Op))
			e.U8(uint8(in.Ra))
			e.U8(uint8(in.Rb))
			e.U8(uint8(in.Rc))
			e.I64(int64(in.Disp))
			e.U8(in.Lit)
			if in.HasLit {
				e.U8(1)
			} else {
				e.U8(0)
			}
			e.U32(in.PalFn)
		}
		e.U32(uint32(len(t.relocs)))
		for _, r := range t.relocs {
			e.U32(uint32(r.Index))
			e.U8(uint8(r.Type))
			e.Str(r.Sym)
			e.I64(r.Addend)
		}
	}
	return e.Bytes(), nil
}

func (imageCodec) Unmarshal(blob []byte) (any, error) {
	d := build.NewDec(blob, imageCodecVersion)
	ti := &ToolImage{mode: SaveMode(d.U8())}
	imgRaw := d.Blob()
	if err := d.Err(); err != nil {
		return nil, err
	}
	img, err := aout.Decode(imgRaw)
	if err != nil {
		return nil, fmt.Errorf("atom: imageCodec: image: %w", err)
	}
	ti.img = img
	ti.hasProc = decodeNameSet(d)
	ti.isGlobal = decodeNameSet(d)

	nt := d.Len()
	if nt > 0 {
		ti.inline = make(map[string]*inlineTemplate, nt)
	}
	for i := 0; i < nt; i++ {
		key := d.Str()
		t := &inlineTemplate{
			name:     d.Str(),
			clobbers: om.RegSet(d.U32()),
			bodyLen:  int(d.U32()),
		}
		ni := d.Len()
		t.insts = make([]alpha.Inst, 0, ni)
		for j := 0; j < ni; j++ {
			in := alpha.Inst{
				Op:   alpha.Op(d.U8()),
				Ra:   alpha.Reg(d.U8()),
				Rb:   alpha.Reg(d.U8()),
				Rc:   alpha.Reg(d.U8()),
				Disp: int32(d.I64()),
				Lit:  d.U8(),
			}
			in.HasLit = d.U8() != 0
			in.PalFn = d.U32()
			t.insts = append(t.insts, in)
		}
		nr := d.Len()
		for j := 0; j < nr; j++ {
			t.relocs = append(t.relocs, om.CodeReloc{
				Index:  int(d.U32()),
				Type:   aout.RelocType(d.U8()),
				Sym:    d.Str(),
				Addend: d.I64(),
			})
		}
		if d.Err() != nil {
			break
		}
		ti.inline[key] = t
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return ti, nil
}

func encodeNameSet(e *build.Enc, set map[string]bool) {
	names := make([]string, 0, len(set))
	for n, ok := range set {
		if ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	e.U32(uint32(len(names)))
	for _, n := range names {
		e.Str(n)
	}
}

func decodeNameSet(d *build.Dec) map[string]bool {
	n := d.Len()
	set := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		set[d.Str()] = true
	}
	return set
}

// probeCodec serializes the tiny probe application (*aout.File).
type probeCodec struct{}

func (probeCodec) Marshal(v any) ([]byte, error) {
	f, ok := v.(*aout.File)
	if !ok {
		return nil, fmt.Errorf("atom: probeCodec: unexpected %T", v)
	}
	e := build.NewEnc(probeCodecVersion)
	e.Blob(f.Encode())
	return e.Bytes(), nil
}

func (probeCodec) Unmarshal(blob []byte) (any, error) {
	d := build.NewDec(blob, probeCodecVersion)
	raw := d.Blob()
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return aout.Decode(raw)
}
