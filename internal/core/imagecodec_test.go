package core

import (
	"bytes"
	"reflect"
	"testing"

	"atom/internal/build"
)

// codecProbeTool is a minimal tool for codec tests: one leaf analysis
// routine (so the wrapper-mode image grows an inline template) called
// once per program.
func codecProbeTool() Tool {
	return Tool{
		Name: "codecprobe",
		Analysis: map[string]string{
			"anal.c": `
long counter;
void Tick(long n) { counter = counter + n; }
`,
		},
		Instrument: func(q *Instrumentation) error {
			if err := q.AddCallProto("Tick(long)"); err != nil {
				return err
			}
			return q.AddCallProgram(ProgramBefore, "Tick", int64(1))
		},
	}
}

// TestImageCodecRoundTrip: Marshal then Unmarshal of a real ToolImage
// must reproduce every field the apply phase consults — the image bytes,
// the procedure tables, and the inline templates — with only the tool
// identity (the Go closure, which has no wire form) left behind.
func TestImageCodecRoundTrip(t *testing.T) {
	ResetImageCache(build.ScopeMemory)
	ti, err := BuildToolImage(codecProbeTool(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ti.inline) == 0 {
		t.Fatal("probe tool grew no inline template; round-trip test needs one")
	}

	blob, err := imageCodec{}.Marshal(ti)
	if err != nil {
		t.Fatal(err)
	}
	v, err := imageCodec{}.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	got := v.(*ToolImage)

	if got.mode != ti.mode {
		t.Errorf("mode = %v, want %v", got.mode, ti.mode)
	}
	if !bytes.Equal(got.img.Encode(), ti.img.Encode()) {
		t.Error("decoded image bytes differ")
	}
	if !reflect.DeepEqual(got.hasProc, ti.hasProc) {
		t.Errorf("hasProc = %v, want %v", got.hasProc, ti.hasProc)
	}
	if !reflect.DeepEqual(got.isGlobal, ti.isGlobal) {
		t.Errorf("isGlobal = %v, want %v", got.isGlobal, ti.isGlobal)
	}
	if !reflect.DeepEqual(got.inline, ti.inline) {
		t.Errorf("inline templates differ:\n got %+v\nwant %+v", got.inline, ti.inline)
	}
	if got.tool.Instrument != nil || got.tool.Name != "" {
		t.Error("tool identity leaked through the codec")
	}

	// Determinism: content addressing requires equal images to encode to
	// equal blobs.
	blob2, err := imageCodec{}.Marshal(ti)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Error("Marshal is not deterministic")
	}
}

// TestImageCodecRejectsCorruptBlob: a damaged blob must error out of
// Unmarshal (so the layered cache falls back to a rebuild), never panic
// or return a half-decoded image.
func TestImageCodecRejectsCorruptBlob(t *testing.T) {
	ResetImageCache(build.ScopeMemory)
	ti, err := BuildToolImage(codecProbeTool(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := imageCodec{}.Marshal(ti)
	if err != nil {
		t.Fatal(err)
	}
	for name, mangle := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"empty":     func([]byte) []byte { return nil },
		"bad magic": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] ^= 0xff
			return c
		},
	} {
		if _, err := (imageCodec{}).Unmarshal(mangle(blob)); err == nil {
			t.Errorf("%s blob decoded without error", name)
		}
	}
}
