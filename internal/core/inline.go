package core

import (
	"fmt"

	"atom/internal/alpha"
	"atom/internal/aout"
	"atom/internal/om"
)

// The analysis-routine inliner. The paper's call-site machinery (Section
// 4) pays a fixed toll per event: the bsr/ret pair, the register-save
// wrapper, and the frame traffic around a call whose body is often a
// handful of instructions — a basic-block counter is two loads, an add
// and two stores. For such routines ATOM can splice the callee body
// directly into the call site: arguments are still materialized into
// a0..a5 exactly as for a call, but the bsr is replaced by the body
// itself, ret edges become fall-throughs, internal branches are
// re-indexed, and the callee's address constants are re-expressed as
// om.CodeRelocs against the analysis image base (the image is rebased
// rigidly per application, so one symbolic base plus a fixed offset
// resolves every reference). The site save set then shrinks from
// "ra + argument registers + whatever the wrapper would save" to
// live ∩ clobbered-by-body — no ra save, no wrapper, no call, no return.
//
// Classification happens once per tool image, on the linked analysis
// image's own OM IR; whether a given call site actually inlines is
// decided per plan (Options.NoInline, Options.InlineLimit), so one
// cached image serves every option mix.

// DefaultInlineLimit is the largest analysis-routine body, in original
// instructions, that is inlined when Options.InlineLimit is zero.
const DefaultInlineLimit = 16

// inlineBaseSym is the synthetic symbol inlined bodies' address
// constants are expressed against: it resolves to the rebased analysis
// image's text base, and each CodeReloc carries the target's fixed
// offset from that base as its addend. Rebase is a rigid shift of text,
// data and bss together, so a single base covers all three sections.
const inlineBaseSym = "atom$inline$base"

// inlineTemplate is the splice-ready form of one inlinable analysis
// procedure, extracted from the canonical-base tool image.
type inlineTemplate struct {
	name string
	// insts is the body as spliced: removable save/restore pairs
	// stripped, rets rewritten to fall-through branches, internal branch
	// displacements re-encoded against template positions (position-
	// independent, so the template can land anywhere in a site).
	insts  []alpha.Inst
	relocs []om.CodeReloc // against inlineBaseSym, template-relative indices
	// clobbers is the set of caller-save registers the spliced body may
	// overwrite; the site saves live ∩ clobbers around it.
	clobbers om.RegSet
	bodyLen  int // original body size in instructions (Options.InlineLimit gates on this)
}

// extractInlineTemplates classifies each named procedure of the linked
// analysis image and returns a template for every one that can be
// spliced into call sites. Rejection is silent — a procedure that fails
// classification is simply called through its wrapper as before. The
// modified-registers summary (PR 4's interprocedural dataflow) bounds
// each template's clobber set as a cross-check.
func extractInlineTemplates(prog *om.Program, img *aout.File, names []string, summary map[string]om.RegSet) map[string]*inlineTemplate {
	out := map[string]*inlineTemplate{}
	for _, name := range names {
		pr := prog.Proc(name)
		if pr == nil {
			continue
		}
		tmpl, _ := classifyInline(pr, img)
		if tmpl == nil {
			continue
		}
		// The direct clobber set must be within the interprocedural
		// summary (a leaf's summary is exactly its direct writes plus
		// whatever the preserved-register analysis excluded); a
		// violation means the classifier mis-read the body.
		if mod, ok := summary[name]; ok && tmpl.clobbers&^mod != 0 {
			continue
		}
		out[name] = tmpl
	}
	return out
}

// classifyInline decides whether one procedure of the analysis image can
// be spliced into call sites, and builds its template if so. The reason
// string explains a rejection (for tests and diagnostics).
//
// A body is inlinable when:
//   - it is a leaf: no bsr/jsr, no indirect jmp, no call_pal (PAL
//     bodies would also dodge the sbrk redirection, which patches the
//     image text the template is lifted from);
//   - every branch targets the procedure itself (internally relocatable
//     control flow) and control cannot fall off the end;
//   - it never writes gp (no gp reload) and every ret is the standard
//     `ret (ra)`;
//   - its stack discipline is the canonical frame: at most one
//     balanced `lda sp,-F(sp)` / `lda sp,F(sp)` pair per exit, with no
//     other sp writes;
//   - every register it writes is caller-save, or is provably
//     preserved (saved in the prologue and restored on every exit from
//     an otherwise untouched slot);
//   - apart from rets (which are rewritten), nothing reads ra — an
//     inlined body sees the application's ra, not a return address.
//
// Save/restore pairs of preserved registers whose slot serves no other
// purpose are stripped from the template — that is what eliminates the
// ra save/restore of compiler-generated bodies — with branches into
// stripped instructions redirected to the next surviving one.
func classifyInline(pr *om.Proc, img *aout.File) (*inlineTemplate, string) {
	n := int(pr.Size / 4)
	if n == 0 {
		return nil, "empty procedure"
	}
	var flat []*om.Inst
	for _, b := range pr.Blocks {
		flat = append(flat, b.Insts...)
	}

	// Leaf and opcode screen.
	var regs []alpha.Reg
	for _, in := range flat {
		switch in.I.Op {
		case alpha.OpBsr, alpha.OpJsr:
			return nil, "not a leaf (calls another procedure)"
		case alpha.OpJmp:
			return nil, "indirect jump"
		case alpha.OpCallPal:
			return nil, "PAL call"
		}
		if w, ok := in.I.WritesReg(); ok && w == alpha.GP {
			return nil, "reloads gp"
		}
	}

	// Control flow: branches stay inside the procedure, the last
	// instruction cannot fall off the end, rets are the standard form.
	for _, in := range flat {
		if in.I.Op.Format() == alpha.FormatBranch {
			t := in.Addr + 4 + uint64(int64(in.I.Disp)*4)
			if t < pr.Addr || t >= pr.Addr+pr.Size {
				return nil, "branches outside the procedure"
			}
		}
		if in.I.Op == alpha.OpRet && (in.I.Rb != alpha.RA || in.I.Ra != alpha.Zero) {
			return nil, "nonstandard ret"
		}
	}
	if last := flat[n-1].I; last.Op != alpha.OpRet && last.Op != alpha.OpBr {
		return nil, "control can fall off the end"
	}

	// Frame recognition: an optional `lda sp,-F(sp)` prologue followed
	// by a run of stq saves into the frame.
	isLdaSP := func(i alpha.Inst, disp int64) bool {
		return i.Op == alpha.OpLda && i.Ra == alpha.SP && i.Rb == alpha.SP && int64(i.Disp) == disp
	}
	var frame int64
	spOK := map[int]bool{} // audited sp writes: prologue + per-exit epilogue ldas
	pos := 0
	if i := flat[0].I; i.Op == alpha.OpLda && i.Ra == alpha.SP && i.Rb == alpha.SP && i.Disp < 0 {
		frame = -int64(i.Disp)
		spOK[0] = true
		pos = 1
	}
	type slotInfo struct {
		off int64
		idx int
	}
	saveSlot := map[alpha.Reg]slotInfo{}
	if frame > 0 {
		for pos < n {
			i := flat[pos].I
			if i.Op != alpha.OpStq || i.Rb != alpha.SP {
				break
			}
			off := int64(i.Disp)
			if off < 0 || off+8 > frame {
				break
			}
			if _, dup := saveSlot[i.Ra]; dup {
				break
			}
			clash := false
			for _, s := range saveSlot {
				if off < s.off+8 && s.off < off+8 {
					clash = true
				}
			}
			if clash {
				break
			}
			saveSlot[i.Ra] = slotInfo{off: off, idx: pos}
			pos++
		}
	}

	// Per-exit epilogue: each ret must be preceded by the balancing
	// `lda sp,F(sp)`, itself preceded by a run of ldq restores from the
	// prologue's slots. A register restored at EVERY exit from its own
	// untouched slot is preserved.
	preserved := om.RegSet(0)
	for r := range saveSlot {
		preserved = preserved.Add(r)
	}
	restoreIdx := map[alpha.Reg][]int{}
	sawRet := false
	for k, in := range flat {
		if in.I.Op != alpha.OpRet {
			continue
		}
		sawRet = true
		j := k - 1
		if frame > 0 {
			if j < 0 || !isLdaSP(flat[j].I, frame) {
				return nil, "exit without a balanced frame deallocation"
			}
			spOK[j] = true
			j--
		}
		var restored om.RegSet
		for j >= 0 {
			i := flat[j].I
			s, saved := saveSlot[i.Ra]
			if i.Op != alpha.OpLdq || i.Rb != alpha.SP || !saved || int64(i.Disp) != s.off {
				break
			}
			restored = restored.Add(i.Ra)
			restoreIdx[i.Ra] = append(restoreIdx[i.Ra], j)
			j--
		}
		preserved &= restored
	}
	if !sawRet && frame > 0 {
		// A framed body whose every path ends in an internal br loop
		// never deallocates; nothing to splice safely.
		return nil, "framed body never returns"
	}

	// sp write audit: only the recognized prologue/epilogue ldas may
	// touch sp.
	for idx, in := range flat {
		if w, ok := in.I.WritesReg(); ok && w == alpha.SP && !spOK[idx] {
			return nil, "unrecognized stack-pointer write"
		}
	}

	// A preserved register's slot must hold the prologue value until the
	// restores: any other store into it demotes the register to
	// clobbered (sound — it is then saved at the site if live).
	for idx, in := range flat {
		i := in.I
		if !i.Op.IsStore() || i.Rb != alpha.SP {
			continue
		}
		isSave := false
		if s, ok := saveSlot[i.Ra]; ok && s.idx == idx {
			isSave = true
		}
		if isSave {
			continue
		}
		lo, hi := int64(i.Disp), int64(i.Disp)+int64(i.Op.MemBytes())
		for _, r := range preserved.Regs() {
			s := saveSlot[r]
			if lo < s.off+8 && s.off < hi {
				preserved &^= om.RegSet(0).Add(r)
			}
		}
	}

	// Strip set: a preserved register whose only body appearances are
	// its prologue save and epilogue restores — and whose slot no other
	// memory access touches — contributes nothing once inlined; its
	// save/restore pair is dropped. ra of compiler-generated bodies
	// always qualifies.
	drop := make([]bool, n)
	for _, r := range preserved.Regs() {
		s := saveSlot[r]
		ok := true
		for idx, in := range flat {
			i := in.I
			if idx == s.idx || i.Op == alpha.OpRet {
				continue
			}
			isRestore := false
			for _, ri := range restoreIdx[r] {
				if ri == idx {
					isRestore = true
				}
			}
			if isRestore {
				continue
			}
			if w, wok := i.WritesReg(); wok && w == r {
				ok = false
				break
			}
			touched := false
			for _, rr := range i.ReadsRegs(regs[:0]) {
				if rr == r {
					touched = true
				}
			}
			if touched {
				ok = false
				break
			}
			if (i.Op.IsLoad() || i.Op.IsStore()) && i.Rb == alpha.SP {
				lo, hi := int64(i.Disp), int64(i.Disp)+int64(i.Op.MemBytes())
				if lo < s.off+8 && s.off < hi {
					ok = false
					break
				}
			}
		}
		if !ok {
			continue
		}
		drop[s.idx] = true
		for _, ri := range restoreIdx[r] {
			drop[ri] = true
		}
	}
	// A trailing ret becomes a plain fall-through into the site's
	// restore sequence.
	if flat[n-1].I.Op == alpha.OpRet {
		drop[n-1] = true
	}

	// Clobber set and register-discipline check over the surviving body.
	var clobbers om.RegSet
	for idx, in := range flat {
		if drop[idx] {
			continue
		}
		i := in.I
		if i.Op == alpha.OpRet {
			continue // rewritten to a branch; writes nothing
		}
		if w, ok := i.WritesReg(); ok && w != alpha.SP {
			switch {
			case preserved.Has(w):
				// restored before every exit; the kept save/restore
				// pair travels with the splice
			case w.IsCallerSave():
				clobbers = clobbers.Add(w)
			default:
				return nil, fmt.Sprintf("clobbers callee-save register %s", w)
			}
		}
		// An inlined body runs with the application's ra, not a return
		// address; any surviving read of ra changes meaning.
		for _, r := range i.ReadsRegs(regs[:0]) {
			if r == alpha.RA {
				return nil, "reads ra"
			}
		}
	}

	// Relocation audit: only absolute address pairs (ldah/lda Hi16+Lo16)
	// against defined image symbols are re-expressible; PC-relative
	// Br21s of internal branches are recomputed during the rewrite and
	// dropped.
	relocAt := map[int][]aout.Reloc{}
	procOff := pr.Addr - img.TextAddr
	for _, r := range img.Relocs {
		if r.Section != aout.SecText || r.Offset < procOff || r.Offset >= procOff+pr.Size {
			continue
		}
		relocAt[int((r.Offset-procOff)/4)] = append(relocAt[int((r.Offset-procOff)/4)], r)
	}

	// Build the spliced form: prefix-count index map (a branch into a
	// dropped instruction redirects to the next surviving one), rets to
	// fall-through branches, internal displacements re-encoded.
	newIdx := make([]int, n)
	total := 0
	for i := 0; i < n; i++ {
		newIdx[i] = total
		if !drop[i] {
			total++
		}
	}
	out := &inlineTemplate{name: pr.Name, bodyLen: n}
	for idx, in := range flat {
		if drop[idx] {
			if len(relocAt[idx]) > 0 {
				return nil, "relocation on a stripped instruction"
			}
			continue
		}
		i := in.I
		pos := len(out.insts)
		switch {
		case i.Op == alpha.OpRet:
			i = alpha.Br(alpha.OpBr, alpha.Zero, int32(total-pos-1))
		case i.Op.Format() == alpha.FormatBranch:
			tIdx := int((in.Addr + 4 + uint64(int64(i.Disp)*4) - pr.Addr) / 4)
			i.Disp = int32(newIdx[tIdx] - (pos + 1))
		}
		for _, r := range relocAt[idx] {
			if r.Type == aout.RelBr21 {
				continue // internal; displacement recomputed above
			}
			if r.Type != aout.RelHi16 && r.Type != aout.RelLo16 {
				return nil, fmt.Sprintf("unsupported relocation %v in body", r.Type)
			}
			sym := img.Symbols[r.Sym]
			if sym.Section == aout.SecUndef || sym.Section == aout.SecAbs {
				return nil, fmt.Sprintf("body references non-relocatable symbol %q", sym.Name)
			}
			out.relocs = append(out.relocs, om.CodeReloc{
				Index:  pos,
				Type:   r.Type,
				Sym:    inlineBaseSym,
				Addend: int64(sym.Value+uint64(r.Addend)) - int64(img.TextAddr),
			})
		}
		out.insts = append(out.insts, i)
	}
	out.clobbers = clobbers
	return out, ""
}
