package core_test

import (
	"testing"

	"atom/internal/core"
	"atom/internal/spec"
	"atom/internal/tools"
	"atom/internal/vm"
)

// TestInlinePreservesBehavior runs EVERY example tool over a suite
// program with inlining on (the default) and off: program and analysis
// output must be bit-identical, the dynamic instruction count must not
// increase, and the verifier must pass on the spliced bodies. Tools
// whose analysis routines all fail classification (oversize, non-leaf)
// simply degenerate to the called case — still compared, still equal.
func TestInlinePreservesBehavior(t *testing.T) {
	const prog = "queens"
	exe, err := spec.Build(prog)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := spec.ByName(prog)

	totalInlined := 0
	for _, tname := range tools.Names() {
		tname := tname
		t.Run(tname, func(t *testing.T) {
			tool, _ := tools.ByName(tname)
			var outs [2]string
			var icounts [2]uint64
			var inlined int
			for i, on := range []bool{false, true} {
				res, err := core.Instrument(exe, tool, core.Options{NoInline: !on, Verify: true})
				if err != nil {
					t.Fatal(err)
				}
				if on {
					inlined = res.Stats.InlinedSites
				} else if res.Stats.InlinedSites != 0 {
					t.Fatalf("NoInline run still inlined %d sites", res.Stats.InlinedSites)
				}
				m, err := vm.New(res.Exe, vm.Config{Stdin: p.Stdin, FS: p.FS, MaxInstr: 2_000_000_000})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := m.Run(); err != nil {
					t.Fatalf("inline=%v: %v", on, err)
				}
				outs[i] = string(m.Stdout) + "|" + string(m.FSOut[tname+".out"])
				icounts[i] = m.Icount
			}
			if outs[0] != outs[1] {
				t.Errorf("inlining changed behavior:\n%s\nvs\n%s", outs[0], outs[1])
			}
			if icounts[1] > icounts[0] {
				t.Errorf("inlined run costs more: %d vs %d", icounts[1], icounts[0])
			}
			if inlined > 0 && icounts[1] < icounts[0] {
				t.Logf("%d sites inlined, saved %.1f%% of instructions (%d -> %d)",
					inlined, 100*(1-float64(icounts[1])/float64(icounts[0])), icounts[0], icounts[1])
			}
			totalInlined += inlined
		})
	}
	if totalInlined == 0 {
		t.Errorf("no tool inlined any site; the inliner is inert")
	}
}

// TestWithInliningOption: the functional option must reach the core
// Options and actually change the plan.
func TestWithInliningOption(t *testing.T) {
	var o core.Options
	core.WithInlining(false)(&o)
	if !o.NoInline {
		t.Fatal("WithInlining(false) did not set NoInline")
	}
	core.WithInlining(true)(&o)
	if o.NoInline {
		t.Fatal("WithInlining(true) did not clear NoInline")
	}
}
