package core

import (
	"strings"
	"testing"

	"atom/internal/alpha"
	"atom/internal/aout"
	"atom/internal/asm"
	"atom/internal/link"
	"atom/internal/om"
)

// classifyFrom assembles a module, links it like an analysis image, and
// runs the inline classifier on one procedure.
func classifyFrom(t *testing.T, name, src string) (*inlineTemplate, string) {
	t.Helper()
	obj, err := asm.Assemble("t.s", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	img, err := link.Link(link.Config{
		TextAddr:      link.DefaultTextAddr,
		DataAfterText: true,
		Entry:         "-",
		ZeroBss:       true,
	}, []*aout.File{obj})
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	prog, err := om.Build(img)
	if err != nil {
		t.Fatalf("om.Build: %v", err)
	}
	pr := prog.Proc(name)
	if pr == nil {
		t.Fatalf("procedure %q not found", name)
	}
	return classifyInline(pr, img)
}

func mustInline(t *testing.T, name, src string) *inlineTemplate {
	t.Helper()
	tmpl, reason := classifyFrom(t, name, src)
	if tmpl == nil {
		t.Fatalf("%s: expected inlinable, got rejection: %s", name, reason)
	}
	return tmpl
}

func mustReject(t *testing.T, name, src, wantReason string) {
	t.Helper()
	tmpl, reason := classifyFrom(t, name, src)
	if tmpl != nil {
		t.Fatalf("%s: expected rejection (%s), classified inlinable", name, wantReason)
	}
	if !strings.Contains(reason, wantReason) {
		t.Fatalf("%s: rejection reason = %q, want it to mention %q", name, reason, wantReason)
	}
}

// A frameless straight-line leaf: the whole body minus the trailing ret
// is the template, and everything written is in the clobber set.
func TestInlineClassifyLeaf(t *testing.T) {
	tmpl := mustInline(t, "Leaf", `
	.text
	.globl Leaf
	.ent Leaf
Leaf:
	addq a0, 1, t0
	addq t0, a1, v0
	ret (ra)
	.end Leaf
`)
	if tmpl.bodyLen != 3 {
		t.Errorf("bodyLen = %d, want 3", tmpl.bodyLen)
	}
	if len(tmpl.insts) != 2 {
		t.Errorf("template insts = %d, want 2 (trailing ret dropped)", len(tmpl.insts))
	}
	want := om.RegSet(0).Add(alpha.T0).Add(alpha.V0)
	if tmpl.clobbers != want {
		t.Errorf("clobbers = %v, want %v", tmpl.clobbers.Regs(), want.Regs())
	}
}

// A compiler-shaped body: frame allocation, ra save, work, ra restore,
// frame deallocation, ret. The save/restore pair must be stripped and ra
// must NOT appear in the clobber set — that is the whole point.
func TestInlineClassifyStripsRaSave(t *testing.T) {
	tmpl := mustInline(t, "Framed", `
	.text
	.globl Framed
	.ent Framed
Framed:
	lda sp, -16(sp)
	stq ra, 8(sp)
	addq a0, 1, t0
	ldq ra, 8(sp)
	lda sp, 16(sp)
	ret (ra)
	.end Framed
`)
	if tmpl.bodyLen != 6 {
		t.Errorf("bodyLen = %d, want 6", tmpl.bodyLen)
	}
	// Save and restore of ra stripped, trailing ret dropped: the frame
	// ldas and the add survive.
	if len(tmpl.insts) != 3 {
		t.Errorf("template insts = %d, want 3, got %v", len(tmpl.insts), tmpl.insts)
	}
	if tmpl.clobbers.Has(alpha.RA) {
		t.Errorf("clobbers include ra despite the stripped save/restore")
	}
	if !tmpl.clobbers.Has(alpha.T0) {
		t.Errorf("clobbers miss t0")
	}
}

// A ret in the middle becomes a forward branch to the end of the
// template; the trailing ret is dropped.
func TestInlineClassifyRetInMiddle(t *testing.T) {
	tmpl := mustInline(t, "Mid", `
	.text
	.globl Mid
	.ent Mid
Mid:
	beq a0, skip
	ret (ra)
skip:
	addq a0, 1, t0
	ret (ra)
	.end Mid
`)
	if len(tmpl.insts) != 3 {
		t.Fatalf("template insts = %d, want 3", len(tmpl.insts))
	}
	mid := tmpl.insts[1]
	if mid.Op != alpha.OpBr || mid.Ra != alpha.Zero {
		t.Fatalf("mid ret not rewritten to br zero: %v", mid)
	}
	// From position 1, the end of a 3-instruction template is disp 1.
	if mid.Disp != 1 {
		t.Errorf("mid ret branch disp = %d, want 1", mid.Disp)
	}
}

func TestInlineClassifyRejections(t *testing.T) {
	mustReject(t, "Calls", `
	.text
	.globl Calls
	.globl Other
	.ent Calls
Calls:
	bsr ra, Other
	ret (ra)
	.end Calls
	.ent Other
Other:
	ret (ra)
	.end Other
`, "not a leaf")

	mustReject(t, "Gp", `
	.text
	.globl Gp
	.ent Gp
Gp:
	lda gp, 0(gp)
	ret (ra)
	.end Gp
`, "reloads gp")

	mustReject(t, "Pal", `
	.text
	.globl Pal
	.ent Pal
Pal:
	call_pal 0
	ret (ra)
	.end Pal
`, "PAL call")

	mustReject(t, "Callee", `
	.text
	.globl Callee
	.ent Callee
Callee:
	addq s0, 1, s0
	ret (ra)
	.end Callee
`, "callee-save")

	mustReject(t, "ReadsRa", `
	.text
	.globl ReadsRa
	.ent ReadsRa
ReadsRa:
	addq ra, 1, t0
	ret (ra)
	.end ReadsRa
`, "reads ra")

	mustReject(t, "SpTwiddle", `
	.text
	.globl SpTwiddle
	.ent SpTwiddle
SpTwiddle:
	addq sp, 8, sp
	ret (ra)
	.end SpTwiddle
`, "stack-pointer")
}

// Size does not fail classification — the limit is an apply-time policy —
// but bodyLen must be honest so Options.InlineLimit can gate on it.
func TestInlineClassifyOversize(t *testing.T) {
	var b strings.Builder
	b.WriteString("\t.text\n\t.globl Big\n\t.ent Big\nBig:\n")
	for i := 0; i < DefaultInlineLimit+4; i++ {
		b.WriteString("\taddq t0, 1, t0\n")
	}
	b.WriteString("\tret (ra)\n\t.end Big\n")
	tmpl := mustInline(t, "Big", b.String())
	if tmpl.bodyLen != DefaultInlineLimit+5 {
		t.Errorf("bodyLen = %d, want %d", tmpl.bodyLen, DefaultInlineLimit+5)
	}
	if tmpl.bodyLen <= DefaultInlineLimit {
		t.Errorf("oversize body not above the default limit; test is vacuous")
	}
}

// Internal branches are re-indexed relative to the template after
// stripping, including branches that target stripped instructions (the
// MiniC epilogue pattern: `br` into the restore run).
func TestInlineClassifyBranchReindex(t *testing.T) {
	tmpl := mustInline(t, "Br", `
	.text
	.globl Br
	.ent Br
Br:
	lda sp, -16(sp)
	stq ra, 8(sp)
	beq a0, out
	addq a0, 1, t0
out:
	ldq ra, 8(sp)
	lda sp, 16(sp)
	ret (ra)
	.end Br
`)
	// stq/ldq of ra stripped, ret dropped: lda, beq, addq, lda survive.
	if len(tmpl.insts) != 4 {
		t.Fatalf("template insts = %d, want 4: %v", len(tmpl.insts), tmpl.insts)
	}
	beq := tmpl.insts[1]
	if beq.Op != alpha.OpBeq {
		t.Fatalf("insts[1] = %v, want beq", beq)
	}
	// The beq targeted the stripped `ldq ra`; it must redirect to the
	// next surviving instruction, the closing `lda sp, 16(sp)` at
	// template position 3 — disp 1 from position 1.
	if beq.Disp != 1 {
		t.Errorf("beq disp = %d, want 1 (redirect past stripped restore)", beq.Disp)
	}
}

// Address constants in the body (la → ldah/lda with Hi16/Lo16 relocs)
// are re-expressed against the synthetic image-base symbol with the
// target's canonical offset as addend.
func TestInlineClassifyRelocRebase(t *testing.T) {
	tmpl := mustInline(t, "Counts", `
	.text
	.globl Counts
	.ent Counts
Counts:
	la t0, cell
	ldq t1, 0(t0)
	addq t1, 1, t1
	stq t1, 0(t0)
	ret (ra)
	.end Counts

	.data
cell:
	.quad 0
`)
	if len(tmpl.relocs) != 2 {
		t.Fatalf("template relocs = %d, want 2 (hi/lo pair)", len(tmpl.relocs))
	}
	for _, r := range tmpl.relocs {
		if r.Sym != inlineBaseSym {
			t.Errorf("reloc sym = %q, want %q", r.Sym, inlineBaseSym)
		}
		if r.Addend <= 0 {
			t.Errorf("reloc addend = %d, want positive offset from the image base", r.Addend)
		}
	}
	if tmpl.relocs[0].Type != aout.RelHi16 || tmpl.relocs[1].Type != aout.RelLo16 {
		t.Errorf("reloc types = %v/%v, want Hi16/Lo16", tmpl.relocs[0].Type, tmpl.relocs[1].Type)
	}
}
