package core

import (
	"atom/internal/aout"
	"atom/internal/build"
	"atom/internal/obs"
	"atom/internal/om"
)

// The lift stage: executable -> OM IR, as a first-class, cacheable,
// serializable step. Instrument and Apply are now Lift -> Plan -> Apply:
// the lift produces an encoded atom-ir/v1 blob, content-addressed by
// (executable digest, format version, lifter version) in the IR cache,
// and every plan decodes a FRESH Program from that blob. A decoded IR
// is a drop-in substitute for a fresh om.Build — the decoder
// reconstructs the identical structure, and the irsmoke CI gate holds
// the two paths to bit-identical instrumented output — so the lift can
// also run in a different process (atom -emit-ir / -ir-in) or, later,
// on a different machine.

// exeDigest content-addresses a linked executable by streaming every
// field through a KeyBuilder — no full re-encode allocation. Two
// executables with equal contents share one digest (and therefore one
// cached lift) regardless of identity.
func exeDigest(app *aout.File) build.Key {
	b := build.NewKey("exe").
		Bool(app.Linked).
		Int(int64(app.Entry)).
		Int(int64(app.TextAddr)).
		Int(int64(app.DataAddr)).
		Int(int64(app.BssAddr)).
		Int(int64(app.Bss)).
		Bytes(app.Text).
		Bytes(app.Data)
	b.Int(int64(len(app.Symbols)))
	for _, s := range app.Symbols {
		b.String(s.Name).
			Int(int64(s.Kind)).
			Int(int64(s.Section)).
			Int(int64(s.Value)).
			Int(int64(s.Size)).
			Bool(s.Global)
	}
	b.Int(int64(len(app.Relocs)))
	for _, r := range app.Relocs {
		b.Int(int64(r.Section)).
			Int(int64(r.Offset)).
			Int(int64(r.Type)).
			Int(int64(r.Sym)).
			Int(r.Addend)
	}
	return b.Sum()
}

// Lift lifts an application to OM IR through the content-addressed IR
// cache: the executable is built into IR and encoded at most once per
// (contents, lifter version); every call — including this one — then
// decodes a fresh Program from the cached blob. The returned Program is
// private to the caller: instrumentation attaches actions to it, so
// handles are consumed by InstrumentProgram/ApplyProgram and never
// shared or reused.
func Lift(app *aout.File) (*om.Program, error) { return LiftCtx(nil, app) }

// LiftCtx is Lift with a stage context: the whole stage runs under an
// "om.lift" span; a cold lift nests cache.get -> om.build + om.encode
// under it, a warm one only om.decode.
func LiftCtx(ctx *obs.Ctx, app *aout.File) (*om.Program, error) {
	lctx, sp := ctx.Start("om.lift")
	defer sp.End()
	blob, err := LiftBlobCtx(lctx, app)
	if err != nil {
		return nil, err
	}
	sp.SetAttr(obs.Int("blob_bytes", int64(len(blob))))
	return om.DecodeCtx(lctx, blob)
}

// LiftBlob returns the application's encoded atom-ir/v1 blob from the
// IR cache, lifting and encoding on the first call. This is the
// exchange format of `atom -emit-ir`: the blob can be written out,
// shipped, and instrumented elsewhere with `atom -ir-in` (or decoded
// with om.Decode and passed to InstrumentProgram).
func LiftBlob(app *aout.File) ([]byte, error) { return LiftBlobCtx(nil, app) }

// LiftBlobCtx is LiftBlob with a stage context.
func LiftBlobCtx(ctx *obs.Ctx, app *aout.File) ([]byte, error) {
	key := build.IRKey(exeDigest(app), om.FormatVersion, om.LifterVersion)
	return build.IRBlobCtx(ctx, key, func(bctx *obs.Ctx) ([]byte, error) {
		prog, err := om.BuildCtx(bctx, app)
		if err != nil {
			return nil, err
		}
		return om.EncodeCtx(bctx, prog)
	})
}
