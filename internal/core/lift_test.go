package core

import (
	"bytes"
	"testing"

	"atom/internal/aout"
	"atom/internal/build"
	"atom/internal/om"
	"atom/internal/rtl"
)

const liftTestProgram = `
int work(int n) { int i; int s = 0; for (i = 0; i < n; i++) s += i; return s; }
int main() { return work(10) - 45; }
`

func TestLiftCachesBlob(t *testing.T) {
	build.ResetIRCache(build.ScopeMemory)
	defer build.ResetIRCache(build.ScopeMemory)

	app, err := rtl.BuildProgram("lift.c", liftTestProgram)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	p1, err := Lift(app)
	if err != nil {
		t.Fatalf("Lift: %v", err)
	}
	p2, err := Lift(app)
	if err != nil {
		t.Fatalf("Lift: %v", err)
	}
	s := build.IRCacheStats()
	if s.Builds != 1 || s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("IR cache stats = %+v, want 1 build, 1 miss, 1 hit", s)
	}

	// Every Lift returns a fresh, private Program: attaching actions to
	// one must not leak into the other (the cache stores blobs, never
	// decoded Programs).
	if p1 == p2 {
		t.Fatal("Lift returned a shared Program handle")
	}
	in1 := p1.Proc("main").Blocks[0].Insts[0]
	in1.Before = append(in1.Before, om.Code{})
	in2 := p2.Proc("main").Blocks[0].Insts[0]
	if len(in2.Before) != 0 {
		t.Fatal("mutating one lifted Program leaked into another")
	}
}

func TestLiftBlobStable(t *testing.T) {
	build.ResetIRCache(build.ScopeMemory)
	defer build.ResetIRCache(build.ScopeMemory)

	app, err := rtl.BuildProgram("lift.c", liftTestProgram)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	b1, err := LiftBlob(app)
	if err != nil {
		t.Fatalf("LiftBlob: %v", err)
	}
	// A content-equal copy of the executable shares the digest, the
	// cache entry, and therefore the blob.
	clone, err := aout.Decode(app.Encode())
	if err != nil {
		t.Fatalf("clone: %v", err)
	}
	if exeDigest(clone) != exeDigest(app) {
		t.Fatal("content-equal executables digest differently")
	}
	b2, err := LiftBlob(clone)
	if err != nil {
		t.Fatalf("LiftBlob: %v", err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("content-equal executables lifted to different blobs")
	}
	if s := build.IRCacheStats(); s.Builds != 1 {
		t.Fatalf("IR cache built %d blobs for one executable content, want 1", s.Builds)
	}

	// A different executable gets a different digest and blob.
	other, err := rtl.BuildProgram("lift.c", `int main() { return 0; }`)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if exeDigest(other) == exeDigest(app) {
		t.Fatal("different executables share a digest")
	}
}

// TestDecodedProgramInstruments: a Program decoded from a serialized
// blob is a drop-in substitute for a fresh lift — InstrumentProgram
// over it produces a byte-identical executable.
func TestDecodedProgramInstruments(t *testing.T) {
	build.ResetIRCache(build.ScopeMemory)
	defer build.ResetIRCache(build.ScopeMemory)

	app, err := rtl.BuildProgram("lift.c", liftTestProgram)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	tool := Tool{
		Name:     "count",
		Analysis: map[string]string{"count.c": "long n; void tick() { n++; }"},
		Instrument: func(q *Instrumentation) error {
			if err := q.AddCallProto("tick()"); err != nil {
				return err
			}
			return q.AddCallProgram(ProgramBefore, "tick")
		},
	}
	opts := Options{Verify: true}

	blob, err := LiftBlob(app)
	if err != nil {
		t.Fatalf("LiftBlob: %v", err)
	}
	dec, err := om.Decode(blob)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	viaBlob, err := InstrumentProgram(dec, tool, opts)
	if err != nil {
		t.Fatalf("InstrumentProgram(decoded): %v", err)
	}

	fresh, err := om.Build(app)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	viaFresh, err := InstrumentProgram(fresh, tool, opts)
	if err != nil {
		t.Fatalf("InstrumentProgram(fresh): %v", err)
	}
	if !bytes.Equal(viaBlob.Exe.Encode(), viaFresh.Exe.Encode()) {
		t.Fatal("decoded-IR instrumentation differs from fresh-lift instrumentation")
	}
}
