package core_test

// Tests for the layout limits and less-traveled error paths of the
// instrumentation pipeline.

import (
	"strings"
	"testing"

	"atom/internal/aout"
	"atom/internal/cc"
	"atom/internal/core"
	"atom/internal/link"
	"atom/internal/rtl"
	"atom/internal/vm"
)

// buildTightApp links an application with almost no text-data gap, so the
// analysis image cannot fit.
func buildTightApp(t *testing.T) *aout.File {
	t.Helper()
	hdrs, err := rtl.Headers()
	if err != nil {
		t.Fatal(err)
	}
	obj, err := cc.Build("app.c", `
int main() { return 0; }
`, hdrs)
	if err != nil {
		t.Fatal(err)
	}
	c0, err := rtl.Crt0()
	if err != nil {
		t.Fatal(err)
	}
	lib, err := rtl.Lib()
	if err != nil {
		t.Fatal(err)
	}
	// Learn the real text size, then relink leaving essentially no gap:
	// the instrumented text alone cannot fit.
	probe, err := link.Link(link.Config{}, []*aout.File{c0, obj}, lib)
	if err != nil {
		t.Fatal(err)
	}
	exe, err := link.Link(link.Config{
		TextAddr: 0x100000,
		DataAddr: (0x100000 + uint64(len(probe.Text)) + 31) &^ 15,
	}, []*aout.File{c0, obj}, lib)
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

func TestAnalysisImageMustFitGap(t *testing.T) {
	app := buildTightApp(t)
	tool := passthroughTool(func(q *core.Instrumentation) error {
		if err := q.AddCallProto("Tick()"); err != nil {
			return err
		}
		for _, p := range q.Procs() {
			for b := q.GetFirstBlock(p); b != nil; b = q.GetNextBlock(b) {
				if err := q.AddCallBlock(b, core.BlockBefore, "Tick"); err != nil {
					return err
				}
			}
		}
		return nil
	})
	_, err := core.Instrument(app, tool, core.Options{})
	if err == nil {
		t.Fatal("instrumenting a gap-less executable succeeded")
	}
	if !strings.Contains(err.Error(), "gap") {
		t.Errorf("error %q does not mention the text-data gap", err)
	}
}

func TestInAnalysisModeRejectsStackArgs(t *testing.T) {
	app := buildApp(t, loopApp)
	tool := core.Tool{
		Name: "wide",
		Analysis: map[string]string{"a.c": `
void Wide(long a, long b, long c, long d, long e, long f, long g) {}
`},
		Instrument: func(q *core.Instrumentation) error {
			if err := q.AddCallProto("Wide(int, int, int, int, int, int, int)"); err != nil {
				return err
			}
			return q.AddCallProgram(core.ProgramBefore, "Wide", 1, 2, 3, 4, 5, 6, 7)
		},
	}
	// Wrapper mode supports stack arguments (the wrapper relays them).
	res, err := core.Instrument(app, tool, core.Options{Mode: core.SaveWrapper})
	if err != nil {
		t.Fatalf("wrapper mode with 7 args: %v", err)
	}
	if _, err := vm.New(res.Exe, vm.Config{}); err != nil {
		t.Fatal(err)
	}
	// In-analysis mode cannot relocate incoming stack arguments.
	_, err = core.Instrument(app, tool, core.Options{Mode: core.SaveInAnalysis})
	if err == nil || !strings.Contains(err.Error(), "at most 6") {
		t.Errorf("in-analysis with 7 args: err = %v, want arity rejection", err)
	}
}

func TestStatsPopulated(t *testing.T) {
	app := buildApp(t, loopApp)
	res, err := core.Instrument(app, branchCountTool(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Calls == 0 || s.InsertedInsts == 0 {
		t.Errorf("stats zeroed: %+v", s)
	}
	if s.InstrText <= s.OrigText {
		t.Errorf("instrumented text %d not larger than original %d", s.InstrText, s.OrigText)
	}
	if s.AnalysisText == 0 || s.AnalysisData == 0 {
		t.Errorf("analysis image sizes zeroed: %+v", s)
	}
	// The final executable's text region covers app text + analysis
	// image, still below the application data segment.
	if uint64(len(res.Exe.Text)) > res.Exe.DataAddr-res.Exe.TextAddr {
		t.Error("final text overruns the data segment")
	}
}

func TestBadAnalysisSourceSurfaced(t *testing.T) {
	app := buildApp(t, loopApp)
	tool := core.Tool{
		Name:     "broken",
		Analysis: map[string]string{"bad.c": `void Tick( { not C at all`},
		Instrument: func(q *core.Instrumentation) error {
			if err := q.AddCallProto("Tick()"); err != nil {
				return err
			}
			return q.AddCallProgram(core.ProgramBefore, "Tick")
		},
	}
	_, err := core.Instrument(app, tool, core.Options{})
	if err == nil || !strings.Contains(err.Error(), "bad.c") {
		t.Errorf("err = %v, want a diagnostic naming bad.c", err)
	}
}

func TestNoAnalysisRoutines(t *testing.T) {
	app := buildApp(t, loopApp)
	tool := core.Tool{
		Name: "empty",
		Instrument: func(q *core.Instrumentation) error {
			return nil
		},
	}
	if _, err := core.Instrument(app, tool, core.Options{}); err == nil {
		t.Error("tool without analysis routines accepted")
	}
	tool.Instrument = nil
	tool.Analysis = map[string]string{"a.c": "long x;"}
	if _, err := core.Instrument(app, tool, core.Options{}); err == nil {
		t.Error("tool without instrumentation routine accepted")
	}
}

// TestUninstrumentedToolRuns: a tool whose instrumentation routine adds
// nothing still produces a working executable (the analysis image is
// linked in but never called).
func TestNoOpInstrumentation(t *testing.T) {
	app := buildApp(t, loopApp)
	ref := runExe(t, app, vm.Config{})
	tool := core.Tool{
		Name:     "noop",
		Analysis: map[string]string{"a.c": `long unused; void Never(void) { unused++; }`},
		Instrument: func(q *core.Instrumentation) error {
			return q.AddCallProto("Never()") // declared, never attached
		},
	}
	res, err := core.Instrument(app, tool, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := runExe(t, res.Exe, vm.Config{})
	if string(m.Stdout) != string(ref.Stdout) {
		t.Errorf("stdout changed: %q vs %q", m.Stdout, ref.Stdout)
	}
	if m.Icount != ref.Icount {
		t.Errorf("icount %d != baseline %d for a no-op instrumentation", m.Icount, ref.Icount)
	}
}
