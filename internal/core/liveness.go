package core

import (
	"atom/internal/alpha"
	"atom/internal/om"
)

// LOCAL live-register analysis at instrumentation sites — the legacy
// middle rung of the liveness ladder, superseded by the global backward
// dataflow in internal/om/dataflow (which subsumes it and is on by
// default). This path only runs when Options.NoLiveness disables the
// global analysis AND Options.LiveRegOpt asks for the local refinement;
// BenchmarkLiveReg ablates it in isolation.
//
// The implementation is intentionally conservative and purely local: a
// register is considered dead at a site only when the *remainder of the
// same basic block* overwrites it before reading it. At a block boundary
// everything still unknown is assumed live (successors may read it), so
// no interprocedural or even global analysis is needed for soundness.
// The big winner in practice is ra: every block that ends in a bsr kills
// ra without reading it, so sites in such blocks skip the ra save the
// paper otherwise always pays.

// deadAtSite returns the set of caller-save registers whose application
// values are provably dead at the given insertion point. place selects
// whether the spliced code runs before the instruction (the instruction's
// own reads still happen afterwards and count) or after it.
func deadAtSite(in *om.Inst, place When) om.RegSet {
	b := in.Block()
	// Find the instruction's index within its block.
	idx := -1
	for k, i := range b.Insts {
		if i == in {
			idx = k
			break
		}
	}
	if idx < 0 {
		return 0
	}
	start := idx
	if place == After {
		start = idx + 1
	}

	var read, written om.RegSet
	var regs []alpha.Reg
	for k := start; k < len(b.Insts); k++ {
		i := b.Insts[k].I
		// Reads first: a read of a not-yet-overwritten register makes it
		// live.
		regs = i.ReadsRegs(regs[:0])
		for _, r := range regs {
			if !written.Has(r) {
				read = read.Add(r)
			}
		}
		// call_pal reads a0..a2 implicitly (service arguments) and may
		// read anything in principle; treat it as reading all registers
		// not yet overwritten.
		if i.Op == alpha.OpCallPal {
			for _, r := range alpha.CallerSaveRegs() {
				if !written.Has(r) {
					read = read.Add(r)
				}
			}
			break
		}
		// A call transfers to code outside the block: everything not yet
		// overwritten may be read by the callee or after return.
		if i.Op.IsCall() || i.Op == alpha.OpJmp || i.Op == alpha.OpRet {
			// The call's own write (ra for bsr/jsr) still kills the old
			// value first.
			if w, ok := i.WritesReg(); ok && w.IsCallerSave() && !read.Has(w) {
				written = written.Add(w)
			}
			break
		}
		if w, ok := i.WritesReg(); ok && w.IsCallerSave() && !read.Has(w) {
			written = written.Add(w)
		}
	}
	// Dead = overwritten before any read. Registers neither read nor
	// written in the remainder of the block are unknown, hence live.
	return written &^ read
}
