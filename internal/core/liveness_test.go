package core_test

import (
	"testing"

	"atom/internal/core"
	"atom/internal/spec"
	"atom/internal/tools"
	"atom/internal/vm"
)

// TestLiveRegOptPreservesBehavior runs several tools over suite programs
// with and without the local live-register refinement: outputs must be
// identical and the optimized run strictly cheaper. Both runs pin
// NoLiveness so the test exercises the legacy single-block path rather
// than the global dataflow analysis (which subsumes it).
func TestLiveRegOptPreservesBehavior(t *testing.T) {
	for _, tc := range []struct{ tool, prog string }{
		{"branch", "queens"},
		{"cache", "eqntott"},
		{"dyninst", "tomcatv"},
		{"gprof", "spice"},
	} {
		tc := tc
		t.Run(tc.tool+"/"+tc.prog, func(t *testing.T) {
			exe, err := spec.Build(tc.prog)
			if err != nil {
				t.Fatal(err)
			}
			tool, _ := tools.ByName(tc.tool)
			var outs [2]string
			var icounts [2]uint64
			for i, opt := range []bool{false, true} {
				res, err := core.Instrument(exe, tool, core.Options{NoLiveness: true, LiveRegOpt: opt})
				if err != nil {
					t.Fatal(err)
				}
				p, _ := spec.ByName(tc.prog)
				m, err := vm.New(res.Exe, vm.Config{Stdin: p.Stdin, FS: p.FS, MaxInstr: 2_000_000_000})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := m.Run(); err != nil {
					t.Fatalf("opt=%v: %v", opt, err)
				}
				outs[i] = string(m.Stdout) + "|" + string(m.FSOut[tc.tool+".out"])
				icounts[i] = m.Icount
			}
			if outs[0] != outs[1] {
				t.Errorf("live-register optimization changed behavior:\n%s\nvs\n%s", outs[0], outs[1])
			}
			if icounts[1] >= icounts[0] {
				t.Errorf("optimized run not cheaper: %d vs %d", icounts[1], icounts[0])
			} else {
				t.Logf("saved %.1f%% of instructions (%d -> %d)",
					100*(1-float64(icounts[1])/float64(icounts[0])), icounts[0], icounts[1])
			}
		})
	}
}

// TestDeadAtSiteRASkipped: in a block ending with a call, ra is dead at
// earlier sites and the branch tool's site template shrinks.
func TestLiveRegSmallerTemplates(t *testing.T) {
	app := buildApp(t, loopApp)
	tool, _ := tools.ByName("dyninst")
	base, err := core.Instrument(app, tool, core.Options{NoLiveness: true})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.Instrument(app, tool, core.Options{NoLiveness: true, LiveRegOpt: true})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Stats.InsertedInsts >= base.Stats.InsertedInsts {
		t.Errorf("live-reg inserted %d insts, baseline %d; expected fewer",
			opt.Stats.InsertedInsts, base.Stats.InsertedInsts)
	}
}
