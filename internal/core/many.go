package core

import (
	"fmt"
	"runtime"
	"sync"

	"atom/internal/aout"
	"atom/internal/obs"
)

// InstrumentMany applies one tool to many applications concurrently — the
// paper's workflow for Figures 5 and 6, where each tool is run over the
// complete SPEC92 suite. The tool's analysis image is compiled and linked
// once (the first worker to need it builds it; the rest share it via the
// content-addressed cache) and only the per-application rewrite fans out
// across workers.
//
// workers bounds the number of applications instrumented at once; zero or
// negative means GOMAXPROCS. The run fails soft: results and errs are
// parallel to apps, results[i] is nil exactly when errs[i] is non-nil,
// and one application's failure never prevents the others from being
// instrumented. Each worker runs under its own child of ctx, so spans
// from concurrent applications land on separate trace tracks.
func InstrumentMany(ctx *obs.Ctx, apps []*aout.File, tool Tool, opts Options, workers int) (results []*Result, errs []error) {
	return InstrumentManyProgress(ctx, apps, tool, opts, workers, nil)
}

// InstrumentManyProgress is InstrumentMany with a progress callback:
// onDone(i, err) is invoked once per application as it finishes, from
// the worker goroutine that instrumented it, so it must be safe for
// concurrent use. A nil onDone is allowed.
func InstrumentManyProgress(ctx *obs.Ctx, apps []*aout.File, tool Tool, opts Options, workers int, onDone func(i int, err error)) (results []*Result, errs []error) {
	return InstrumentManyNamed(ctx, apps, nil, tool, opts, workers, onDone)
}

// InstrumentManyNamed is InstrumentManyProgress with per-application
// display names (typically input file paths), parallel to apps. Each
// application's "atom.instrument" span carries its name as the
// "program" attribute, so live event streams and traces attribute work
// to a file rather than a bare batch index. A nil or short names slice
// leaves the affected spans without the attribute.
func InstrumentManyNamed(ctx *obs.Ctx, apps []*aout.File, names []string, tool Tool, opts Options, workers int, onDone func(i int, err error)) (results []*Result, errs []error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(apps) {
		workers = len(apps)
	}
	results = make([]*Result, len(apps))
	errs = make([]error, len(apps))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				attrs := []obs.Attr{
					obs.String("tool", tool.Name),
					obs.Int("app", int64(i)),
				}
				if i < len(names) && names[i] != "" {
					attrs = append(attrs, obs.String("program", names[i]))
				}
				ictx, sp := ctx.Start("atom.instrument", attrs...)
				res, err := InstrumentCtx(ictx, apps[i], tool, opts)
				sp.End()
				if err != nil {
					errs[i] = fmt.Errorf("app %d: %w", i, err)
				} else {
					results[i] = res
				}
				if onDone != nil {
					onDone(i, errs[i])
				}
			}
		}()
	}
	for i := range apps {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results, errs
}
