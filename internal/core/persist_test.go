package core_test

import (
	"bytes"
	"testing"

	"atom/internal/build"
	"atom/internal/core"
	"atom/internal/rtl"
)

// dropMemoryLayers resets every cache to what a fresh process sees: the
// decoded in-memory values gone, the persistent store untouched.
func dropMemoryLayers() {
	core.ResetImageCache(build.ScopeMemory)
	rtl.ResetObjectCache(build.ScopeMemory)
	build.ResetIRCache(build.ScopeMemory)
}

// TestInstrumentWarmFromDiskStore is the core-level acceptance test for
// the persistent store: instrument once against an empty store, drop
// every in-memory cache (simulating a fresh process pointed at the same
// cache directory), instrument again — the second pass must build
// nothing, serve the tool image and the IR blob from disk, and produce a
// byte-identical executable.
func TestInstrumentWarmFromDiskStore(t *testing.T) {
	ds, err := build.OpenDiskStore(nil, t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	prev := build.SwapStore(ds)
	defer func() {
		build.SwapStore(prev)
		ds.Close()
	}()

	dropMemoryLayers()
	tool := branchCountTool()
	app := buildApp(t, cacheAppA)

	cold, err := core.Instrument(app, tool, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := core.ImageCacheStats(); s.Builds != 1 || s.DiskHits != 0 {
		t.Fatalf("cold image stats = %+v, want 1 build, 0 disk hits", s)
	}
	if st := ds.Stats(); st.Puts == 0 {
		t.Fatal("cold pass persisted nothing")
	}

	dropMemoryLayers()
	warm, err := core.Instrument(app, tool, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(warm.Exe.Text, cold.Exe.Text) || !bytes.Equal(warm.Exe.Data, cold.Exe.Data) {
		t.Error("disk-warm instrument output differs from cold output")
	}
	if warm.Exe.Entry != cold.Exe.Entry {
		t.Errorf("entry = %#x, want %#x", warm.Exe.Entry, cold.Exe.Entry)
	}
	if s := core.ImageCacheStats(); s.Builds != 0 || s.DiskHits < 1 {
		t.Errorf("warm image stats = %+v, want 0 builds and a disk hit", s)
	}
	if s := build.IRCacheStats(); s.Builds != 0 || s.DiskHits < 1 {
		t.Errorf("warm IR stats = %+v, want 0 lifts and a disk hit", s)
	}
	if s := rtl.ObjectCacheStats(); s.Builds != 0 {
		t.Errorf("warm object stats = %+v, want 0 compiles", s)
	}

	// A third pass with memory warm must not touch the disk again.
	before := ds.Stats().Hits
	if _, err := core.Instrument(app, tool, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if after := ds.Stats().Hits; after != before {
		t.Errorf("memory-warm pass read the store (%d -> %d hits)", before, after)
	}
}
