package core_test

// Tests for ATOM's "Keeping Pristine Behavior" guarantees (Section 4):
// unchanged data/bss/stack/heap addresses, original PCs, register-state
// transparency, and the two sbrk schemes.

import (
	"strings"
	"testing"

	"atom/internal/alpha"
	"atom/internal/core"
	"atom/internal/om"
	"atom/internal/prof"
	"atom/internal/vm"
)

// passthroughTool counts events without output — a minimal tool for
// perturbation tests.
func passthroughTool(instrument func(q *core.Instrumentation) error) core.Tool {
	return core.Tool{
		Name: "passthrough",
		Analysis: map[string]string{
			"anal.c": `
long events;
void Tick(void) { events++; }
void Tick1(long a) { events += a; }
`,
		},
		Instrument: instrument,
	}
}

func TestPristineAddresses(t *testing.T) {
	// The app prints addresses of a global, a bss array, a stack local,
	// and two heap allocations. All must be identical before and after
	// instrumentation.
	app := buildApp(t, `
#include <stdio.h>
#include <stdlib.h>
long initialized = 7;
long big[1000];
int main() {
	long local;
	char *h1 = malloc(100);
	char *h2 = malloc(5000);
	printf("%p %p %p %p %p\n", &initialized, &big[500], &local, h1, h2);
	return 0;
}
`)
	ref := runExe(t, app, vm.Config{})

	tool := passthroughTool(func(q *core.Instrumentation) error {
		if err := q.AddCallProto("Tick()"); err != nil {
			return err
		}
		for _, p := range q.Procs() {
			for b := q.GetFirstBlock(p); b != nil; b = q.GetNextBlock(b) {
				if err := q.AddCallBlock(b, core.BlockBefore, "Tick"); err != nil {
					return err
				}
			}
		}
		return nil
	})
	res, err := core.Instrument(app, tool, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := runExe(t, res.Exe, vm.Config{})
	if string(m.Stdout) != string(ref.Stdout) {
		t.Errorf("addresses perturbed:\n  uninstrumented: %s  instrumented:   %s",
			ref.Stdout, m.Stdout)
	}
	// And the run did execute far more instructions (it was really
	// instrumented).
	if m.Icount <= ref.Icount {
		t.Errorf("icount %d not larger than baseline %d", m.Icount, ref.Icount)
	}
	// Data segment untouched.
	if res.Exe.DataAddr != app.DataAddr || res.Exe.BssAddr != app.BssAddr || res.Exe.Bss != app.Bss {
		t.Error("data/bss layout changed")
	}
}

func TestPartitionedHeap(t *testing.T) {
	// With the partitioned scheme the application's heap addresses match
	// the uninstrumented run even though the analysis allocates memory.
	app := buildApp(t, `
#include <stdio.h>
#include <stdlib.h>
int main() {
	char *a = malloc(64);
	char *b = malloc(64);
	printf("%p %p\n", a, b);
	return 0;
}
`)
	ref := runExe(t, app, vm.Config{})

	allocTool := core.Tool{
		Name: "alloctool",
		Analysis: map[string]string{
			"anal.c": `
#include <stdlib.h>
long total;
void Tick(void) {
	char *p = malloc(128); /* the analysis allocates on every event */
	total += (long)p;
}
`,
		},
		Instrument: func(q *core.Instrumentation) error {
			if err := q.AddCallProto("Tick()"); err != nil {
				return err
			}
			main := q.Procs()[0]
			for _, p := range q.Procs() {
				if q.ProcName(p) == "main" {
					main = p
				}
			}
			return q.AddCallProc(main, core.ProcBefore, "Tick")
		},
	}

	// Linked sbrks (default): analysis allocations interleave, so the
	// app's second malloc moves.
	res, err := core.Instrument(app, allocTool, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	linked := runExe(t, res.Exe, vm.Config{AnalysisHeapOffset: res.HeapOffset})

	// Partitioned: the app's heap addresses are pristine.
	res2, err := core.Instrument(app, allocTool, core.Options{HeapOffset: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	part := runExe(t, res2.Exe, vm.Config{AnalysisHeapOffset: res2.HeapOffset})

	if string(part.Stdout) != string(ref.Stdout) {
		t.Errorf("partitioned heap perturbed app addresses: %q vs %q", part.Stdout, ref.Stdout)
	}
	if string(linked.Stdout) == string(ref.Stdout) {
		t.Logf("note: linked-sbrk run coincidentally matched (analysis allocated after app)")
	}
	_ = linked
}

func TestOriginalPCsReported(t *testing.T) {
	// InstPC hands out original addresses; the instrumented text is
	// larger, so new addresses of late procedures differ — but the tool
	// must still see pre-instrumentation PCs, within the original text
	// bounds.
	app := buildApp(t, loopApp)
	var pcs []uint64
	tool := passthroughTool(func(q *core.Instrumentation) error {
		if err := q.AddCallProto("Tick()"); err != nil {
			return err
		}
		for _, p := range q.Procs() {
			for b := q.GetFirstBlock(p); b != nil; b = q.GetNextBlock(b) {
				for in := q.GetFirstInst(b); in != nil; in = q.GetNextInst(in) {
					pcs = append(pcs, q.InstPC(in))
				}
			}
		}
		// Instrument something so the build completes.
		return q.AddCallProgram(core.ProgramBefore, "Tick")
	})
	res, err := core.Instrument(app, tool, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	origEnd := app.TextAddr + uint64(len(app.Text))
	for _, pc := range pcs {
		if pc < app.TextAddr || pc >= origEnd {
			t.Fatalf("InstPC %#x outside original text", pc)
		}
	}
	if len(pcs) != len(app.Text)/4 {
		t.Errorf("traversal visited %d instructions, text has %d", len(pcs), len(app.Text)/4)
	}
	// PCMap: every original pc maps into the new text and back.
	for _, pc := range pcs[:100] {
		n, ok := res.PCMap.NewAddr(pc)
		if !ok {
			t.Fatalf("NewAddr(%#x) missing", pc)
		}
		if n < app.TextAddr {
			t.Fatalf("NewAddr(%#x) = %#x below text", pc, n)
		}
	}
}

func TestRegVAndManyArgs(t *testing.T) {
	// Pass register values and 8 arguments (2 on the stack) at a point
	// where registers hold known values; verify the analysis sees them
	// and the app's registers are unperturbed afterwards.
	app := buildApp(t, `
#include <stdio.h>
long f(long a, long b) { return a * 100 + b; }
int main() {
	long r = f(3, 4);
	printf("r=%d\n", r);
	return 0;
}
`)
	tool := core.Tool{
		Name: "regv",
		Analysis: map[string]string{
			"anal.c": `
#include <stdio.h>
void SeeArgs(long a0, long a1, long c2, long c3, long c4, long c5, long s6, long s7) {
	printf("seen %d %d %d %d %d %d %d %d\n", a0, a1, c2, c3, c4, c5, s6, s7);
}
`,
		},
		Instrument: func(q *core.Instrumentation) error {
			if err := q.AddCallProto("SeeArgs(REGV, REGV, int, int, int, int, int, int)"); err != nil {
				return err
			}
			f := q.Procs()[0]
			for _, p := range q.Procs() {
				if q.ProcName(p) == "f" {
					f = p
				}
			}
			// At entry to f, a0 and a1 hold the user arguments 3 and 4.
			return q.AddCallProc(f, core.ProcBefore, "SeeArgs",
				core.RegV(alpha.A0), core.RegV(alpha.A1),
				1000, 2000, 3000, 4000, 70707, 80808)
		},
	}
	res, err := core.Instrument(app, tool, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := runExe(t, res.Exe, vm.Config{})
	out := string(m.Stdout)
	if !strings.Contains(out, "seen 3 4 1000 2000 3000 4000 70707 80808\n") {
		t.Errorf("analysis did not see expected values:\n%s", out)
	}
	if !strings.Contains(out, "r=304\n") {
		t.Errorf("application result perturbed:\n%s", out)
	}
}

func TestEffAddrValue(t *testing.T) {
	// The analysis receives the effective address of each store and
	// compares the range with the app's own report of its array address.
	app := buildApp(t, `
#include <stdio.h>
long arr[16];
int main() {
	long i;
	for (i = 0; i < 16; i++) arr[i] = i;
	printf("arr=%p\n", &arr[0]);
	return 0;
}
`)
	tool := core.Tool{
		Name: "effaddr",
		Analysis: map[string]string{
			"anal.c": `
#include <stdio.h>
long lo = 0x7fffffff;
long hi = 0;
void Store(long addr) {
	if (addr < lo) lo = addr;
	if (addr > hi) hi = addr;
}
void Done(void) { printf("range %p %p\n", lo, hi); }
`,
		},
		Instrument: func(q *core.Instrumentation) error {
			if err := q.AddCallProto("Store(VALUE)"); err != nil {
				return err
			}
			if err := q.AddCallProto("Done()"); err != nil {
				return err
			}
			for _, p := range q.Procs() {
				if q.ProcName(p) != "main" {
					continue
				}
				for b := q.GetFirstBlock(p); b != nil; b = q.GetNextBlock(b) {
					for in := q.GetFirstInst(b); in != nil; in = q.GetNextInst(in) {
						if q.IsInstType(in, core.InstTypeStore) && q.InstMemBytes(in) == 8 {
							if err := q.AddCallInst(in, core.InstBefore, "Store", core.EffAddrValue); err != nil {
								return err
							}
						}
					}
				}
			}
			return q.AddCallProgram(core.ProgramAfter, "Done")
		},
	}
	res, err := core.Instrument(app, tool, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := runExe(t, res.Exe, vm.Config{})
	out := string(m.Stdout)
	var arrAddr, lo, hi uint64
	for _, ln := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(ln, "arr=0x") {
			parseHex(t, ln[len("arr=0x"):], &arrAddr)
		}
		if strings.HasPrefix(ln, "range 0x") {
			rest := strings.Fields(ln)
			parseHex(t, strings.TrimPrefix(rest[1], "0x"), &lo)
			parseHex(t, strings.TrimPrefix(rest[2], "0x"), &hi)
		}
	}
	if arrAddr == 0 || lo == 0 || hi == 0 {
		t.Fatalf("missing output: %q", out)
	}
	// Stores in main include arr[0..15]; lo must be <= arr, hi >= last
	// element (stack stores may extend the range below).
	if lo > arrAddr {
		t.Errorf("lo %#x > arr %#x", lo, arrAddr)
	}
	if hi < arrAddr+15*8 {
		t.Errorf("hi %#x < arr end %#x", hi, arrAddr+15*8)
	}
}

func parseHex(t *testing.T, s string, out *uint64) {
	t.Helper()
	var v uint64
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9':
			v = v*16 + uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v*16 + uint64(c-'a'+10)
		default:
			*out = v
			return
		}
	}
	*out = v
}

func TestStringAndArrayArgs(t *testing.T) {
	app := buildApp(t, loopApp)
	tool := core.Tool{
		Name: "strargs",
		Analysis: map[string]string{
			"anal.c": `
#include <stdio.h>
void Report(char *name, long *weights, long n) {
	long i;
	long s = 0;
	for (i = 0; i < n; i++) s += weights[i];
	printf("tool=%s sum=%d\n", name, s);
}
`,
		},
		Instrument: func(q *core.Instrumentation) error {
			if err := q.AddCallProto("Report(char*, long*, int)"); err != nil {
				return err
			}
			return q.AddCallProgram(core.ProgramBefore, "Report",
				"my-tool", core.Array{10, 20, 30, 40}, 4)
		},
	}
	res, err := core.Instrument(app, tool, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := runExe(t, res.Exe, vm.Config{})
	if !strings.Contains(string(m.Stdout), "tool=my-tool sum=100\n") {
		t.Errorf("string/array args broken:\n%s", m.Stdout)
	}
}

func TestProcAfterAndCallOrder(t *testing.T) {
	// Multiple calls at one point execute in the order added; ProcAfter
	// fires at every return.
	app := buildApp(t, `
long g(long n) {
	if (n > 5) return 1;
	return 0;
}
int main() {
	long i;
	long s = 0;
	for (i = 0; i < 10; i++) s += g(i);
	return s;
}
`)
	tool := core.Tool{
		Name: "order",
		Analysis: map[string]string{
			"anal.c": `
#include <stdio.h>
void A(void) { printf("A"); }
void B(void) { printf("B"); }
void NL(void) { printf("\n"); }
`,
		},
		Instrument: func(q *core.Instrumentation) error {
			for _, pr := range []string{"A()", "B()", "NL()"} {
				if err := q.AddCallProto(pr); err != nil {
					return err
				}
			}
			var g = q.Procs()[0]
			for _, p := range q.Procs() {
				if q.ProcName(p) == "g" {
					g = p
				}
			}
			if err := q.AddCallProc(g, core.ProcBefore, "A"); err != nil {
				return err
			}
			if err := q.AddCallProc(g, core.ProcBefore, "B"); err != nil {
				return err
			}
			return q.AddCallProc(g, core.ProcAfter, "NL")
		},
	}
	res, err := core.Instrument(app, tool, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := runExe(t, res.Exe, vm.Config{})
	want := strings.Repeat("AB\n", 10)
	if string(m.Stdout) != want {
		t.Errorf("stdout = %q, want %q", m.Stdout, want)
	}
	code, _ := m.Exited()
	_ = code
	if _, ec := m.Exited(); ec != 4 { // g returns 1 for n=6..9
		t.Errorf("exit = %d, want 4", ec)
	}
}

func TestInstrumentErrors(t *testing.T) {
	app := buildApp(t, loopApp)
	cases := []struct {
		name string
		tool core.Tool
		want string
	}{
		{
			name: "missing proto",
			tool: passthroughTool(func(q *core.Instrumentation) error {
				return q.AddCallProgram(core.ProgramBefore, "Nope")
			}),
			want: "no prototype",
		},
		{
			name: "undefined analysis proc",
			tool: passthroughTool(func(q *core.Instrumentation) error {
				if err := q.AddCallProto("Ghost()"); err != nil {
					return err
				}
				return q.AddCallProgram(core.ProgramBefore, "Ghost")
			}),
			want: `"Ghost" not defined`,
		},
		{
			name: "arity mismatch",
			tool: passthroughTool(func(q *core.Instrumentation) error {
				if err := q.AddCallProto("Tick()"); err != nil {
					return err
				}
				return q.AddCallProgram(core.ProgramBefore, "Tick", 1)
			}),
			want: "expects 0 arguments",
		},
		{
			name: "BrCondValue on non-branch",
			tool: passthroughTool(func(q *core.Instrumentation) error {
				if err := q.AddCallProto("Tick1(VALUE)"); err != nil {
					return err
				}
				in := q.GetFirstInst(q.GetFirstBlock(q.GetFirstProc()))
				return q.AddCallInst(in, core.InstBefore, "Tick1", core.BrCondValue)
			}),
			want: "BrCondValue requires",
		},
		{
			name: "bad proto type",
			tool: passthroughTool(func(q *core.Instrumentation) error {
				return q.AddCallProto("Tick(float)")
			}),
			want: "unsupported parameter type",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := core.Instrument(app, c.tool, core.Options{})
			if err == nil {
				t.Fatalf("Instrument succeeded; want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestProfilerOriginalPCAttribution(t *testing.T) {
	// Samples taken while the instrumented program runs must attribute to
	// ORIGINAL procedures at ORIGINAL PCs — the profiler's extension of
	// the pristine-behavior contract. Samples inside injected analysis
	// code are the explicit [analysis] frame, never smeared onto an
	// application procedure.
	app := buildApp(t, `
#include <stdio.h>
long sink;
long work(long n) {
	long i;
	long s = 0;
	for (i = 0; i < n; i++) {
		if (i & 1) s += i;
		else s -= i;
	}
	return s;
}
int main() {
	long i;
	for (i = 0; i < 40; i++) sink += work(200);
	printf("sink=%d\n", sink);
	return 0;
}
`)
	res, err := core.Instrument(app, branchCountTool(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	procs := res.PCMap.OrigProcs()
	byName := map[string]om.ProcRange{}
	for _, pr := range procs {
		byName[pr.Name] = pr
	}

	// A prime period so samples don't phase-lock with the loop body.
	p := prof.New(prof.Options{
		Period:      97,
		Procs:       procs,
		MapPC:       res.PCMap.OldAddr,
		KeepSamples: true,
	})
	cfg := vm.Config{AnalysisHeapOffset: res.HeapOffset}
	p.Attach(&cfg)
	runExe(t, res.Exe, cfg)

	samples := p.Samples()
	if len(samples) < 50 {
		t.Fatalf("only %d samples; need a meaningful population", len(samples))
	}
	analysis, unknown := 0, 0
	for _, s := range samples {
		switch s.Frame {
		case prof.AnalysisFrame:
			analysis++
			if s.OrigPC != 0 {
				t.Errorf("analysis sample at new pc %#x carries original pc %#x", s.PC, s.OrigPC)
			}
		case prof.UnknownFrame:
			unknown++
		default:
			pr, ok := byName[s.Frame]
			if !ok {
				t.Fatalf("sample attributed to %q, not an original procedure", s.Frame)
			}
			if s.OrigPC < pr.Start || s.OrigPC >= pr.End {
				t.Errorf("sample %q: original pc %#x outside [%#x,%#x)", s.Frame, s.OrigPC, pr.Start, pr.End)
			}
		}
	}
	// The branch tool injects a call per conditional branch, so the
	// instrumented run must spend visible time in analysis code.
	if analysis == 0 {
		t.Error("no [analysis] samples despite per-branch instrumentation")
	}
	// Acceptance: at least 95% of samples resolve to a named original
	// procedure or [analysis].
	if frac := float64(unknown) / float64(len(samples)); frac > 0.05 {
		t.Errorf("%.1f%% of %d samples are [unknown]; want <= 5%%", 100*frac, len(samples))
	}
	// The original-address ranges must cover the original text and
	// nothing else: every range inside [TextAddr, TextAddr+len).
	origEnd := app.TextAddr + uint64(len(app.Text))
	for _, pr := range procs {
		if pr.Start < app.TextAddr || pr.End > origEnd || pr.Start >= pr.End {
			t.Errorf("range %q [%#x,%#x) outside original text [%#x,%#x)", pr.Name, pr.Start, pr.End, app.TextAddr, origEnd)
		}
	}
}
