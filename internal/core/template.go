package core

import (
	"fmt"

	"atom/internal/alpha"
	"atom/internal/aout"
	"atom/internal/om"
)

// Call-site code generation. ATOM "does not steal any registers from the
// application program. It allocates space on the stack before the call,
// saves registers that may be modified during the call, restores the
// saved registers after the call and deallocates the stack space"
// (Section 4). The inserted sequence at each site:
//
//	lda   sp, -frame(sp)
//	stq   <site-saved regs>, ...(sp)      ; ra, the arg registers this
//	                                      ; call writes, and at if used
//	<materialize stack args via at>       ; calls with > 6 arguments
//	<materialize a0..a5>                  ; constants, REGV, VALUEs
//	bsr   ra, <wrapper or analysis proc>
//	ldq   <site-saved regs>, ...(sp)
//	lda   sp, frame(sp)
//
// The remaining caller-save registers in the analysis routine's data-flow
// summary are saved by its wrapper (default) or by save/restore code
// spliced into the analysis routine itself (OptInAnalysis).

// siteTemplate generates the spliced code for one call.
type siteBuilder struct {
	req    *callReq
	target string // symbol to call (wrapper or analysis proc)
	insts  []alpha.Inst
	relocs []om.CodeReloc

	saved     om.RegSet           // registers saved at this site
	slot      map[alpha.Reg]int64 // register -> frame offset of its slot
	frame     int64
	outBytes  int64
	clobbered om.RegSet // argument registers already overwritten
}

// buildSite generates the spliced code for one call site. When tmpl is
// non-nil the analysis routine's body is spliced in place of the bsr
// (the wrapper and the call/return disappear entirely); the save set
// then starts from the registers the body may actually clobber instead
// of assuming a full call.
func buildSite(req *callReq, target string, dead om.RegSet, tmpl *inlineTemplate) (om.Code, int, error) {
	b := &siteBuilder{req: req, target: target, slot: map[alpha.Reg]int64{}}

	nargs := len(req.args)
	nreg := nargs
	if nreg > alpha.MaxRegArgs {
		nreg = alpha.MaxRegArgs
	}
	b.outBytes = int64(nargs-nreg) * 8

	// Decide the save set. For a call: ra is always saved ("the return
	// address register is always modified when a call is made so we
	// always save the return address register"); every argument register
	// this site writes; and at when the template needs a scratch
	// register. For an inlined body there is no call — the candidates
	// are the written argument registers, at, and the body's clobber
	// set; ra is saved only if the body itself clobbers it.
	if tmpl == nil {
		b.saved = b.saved.Add(alpha.RA)
	} else {
		b.saved |= tmpl.clobbers
	}
	argRegs := alpha.ArgRegs()
	for i := 0; i < nreg; i++ {
		b.saved = b.saved.Add(argRegs[i])
	}
	needAT := nargs > alpha.MaxRegArgs
	if needAT {
		b.saved = b.saved.Add(alpha.AT)
	}

	// Live-register refinement (Options.LiveRegOpt): drop saves of
	// registers whose application values are dead at this site — except
	// registers the template itself must read as argument sources after
	// clobbering them (their save slot doubles as the source copy).
	if dead != 0 {
		var sources om.RegSet
		for _, a := range req.args {
			switch a.kind {
			case argRegV:
				sources = sources.Add(a.reg)
			case argEffAddr:
				sources = sources.Add(req.inst.I.Rb)
			case argBrCond:
				sources = sources.Add(req.inst.I.Ra)
			}
		}
		b.saved &^= dead &^ sources
	}

	// Assign slots.
	off := b.outBytes
	for _, r := range b.saved.Regs() {
		b.slot[r] = off
		off += 8
	}
	b.frame = (off + 15) &^ 15
	if b.frame > 0x7FFF {
		return om.Code{}, 0, fmt.Errorf("atom: call frame too large (%d args)", nargs)
	}

	// Prologue: allocate, save.
	b.emit(alpha.Mem(alpha.OpLda, alpha.SP, alpha.SP, int32(-b.frame)))
	for _, r := range b.saved.Regs() {
		b.emit(alpha.Mem(alpha.OpStq, r, alpha.SP, int32(b.slot[r])))
	}

	// Stack arguments first (they use at as scratch, and their register
	// sources are still pristine).
	for i := alpha.MaxRegArgs; i < nargs; i++ {
		if err := b.materialize(req.args[i], alpha.AT); err != nil {
			return om.Code{}, 0, err
		}
		b.emit(alpha.Mem(alpha.OpStq, alpha.AT, alpha.SP, int32(int64(i-alpha.MaxRegArgs)*8)))
	}
	if needAT {
		// at no longer holds the application's value; later reads of it
		// (REGV(at), effective addresses based on at) use the save slot.
		b.clobbered = b.clobbered.Add(alpha.AT)
	}
	// Register arguments in ascending order; sources that are argument
	// registers already overwritten are reloaded from their save slots.
	for i := 0; i < nreg; i++ {
		if err := b.materialize(req.args[i], argRegs[i]); err != nil {
			return om.Code{}, 0, err
		}
		b.clobbered = b.clobbered.Add(argRegs[i])
	}

	if tmpl != nil {
		// The inlined body in place of the call. Its internal branches
		// are template-relative (re-encoded at extraction), so the splice
		// is position-independent; its address constants carry CodeRelocs
		// against the analysis image base, offset to site indices here.
		base := len(b.insts)
		for _, r := range tmpl.relocs {
			r.Index += base
			b.relocs = append(b.relocs, r)
		}
		b.insts = append(b.insts, tmpl.insts...)
	} else {
		// The call. A PC-relative bsr reaches the analysis image, which ATOM
		// places directly after the instrumented text; Finish range-checks.
		b.relocs = append(b.relocs, om.CodeReloc{Index: len(b.insts), Type: aout.RelBr21, Sym: target})
		b.emit(alpha.Br(alpha.OpBsr, alpha.RA, 0))
	}

	// Epilogue: restore, deallocate.
	for _, r := range b.saved.Regs() {
		b.emit(alpha.Mem(alpha.OpLdq, r, alpha.SP, int32(b.slot[r])))
	}
	b.emit(alpha.Mem(alpha.OpLda, alpha.SP, alpha.SP, int32(b.frame)))

	return om.Code{Insts: b.insts, Relocs: b.relocs}, b.saved.Count(), nil
}

func (b *siteBuilder) emit(i alpha.Inst) { b.insts = append(b.insts, i) }

// source yields the register holding the current value of app register r,
// reloading from the save slot when r has been overwritten by earlier
// argument setup. dst is used as the reload target.
func (b *siteBuilder) source(r alpha.Reg, dst alpha.Reg) alpha.Reg {
	if b.clobbered.Has(r) {
		b.emit(alpha.Mem(alpha.OpLdq, dst, alpha.SP, int32(b.slot[r])))
		return dst
	}
	return r
}

// materialize computes one argument value into dst.
func (b *siteBuilder) materialize(a arg, dst alpha.Reg) error {
	in := b.req.inst
	switch a.kind {
	case argConst:
		for _, i := range alpha.MaterializeImm(dst, a.num) {
			b.emit(i)
		}

	case argBlobAddr:
		b.relocs = append(b.relocs,
			om.CodeReloc{Index: len(b.insts), Type: aout.RelHi16, Sym: blobSym(a.blob)},
			om.CodeReloc{Index: len(b.insts) + 1, Type: aout.RelLo16, Sym: blobSym(a.blob)},
		)
		b.emit(alpha.Mem(alpha.OpLdah, dst, alpha.Zero, 0))
		b.emit(alpha.Mem(alpha.OpLda, dst, dst, 0))

	case argRegV:
		switch {
		case a.reg == alpha.SP:
			// The application's sp is the current sp plus our frame.
			b.emit(alpha.Mem(alpha.OpLda, dst, alpha.SP, int32(b.frame)))
		case a.reg == alpha.Zero:
			b.emit(alpha.Mem(alpha.OpLda, dst, alpha.Zero, 0))
		default:
			src := b.source(a.reg, dst)
			if src != dst {
				b.emit(alpha.Mov(src, dst))
			}
		}

	case argEffAddr:
		base := in.I.Rb
		switch {
		case base == alpha.SP:
			disp := int64(in.I.Disp) + b.frame
			if disp >= -0x8000 && disp <= 0x7FFF {
				b.emit(alpha.Mem(alpha.OpLda, dst, alpha.SP, int32(disp)))
			} else {
				for _, i := range alpha.MaterializeImm(dst, disp) {
					b.emit(i)
				}
				b.emit(alpha.RR(alpha.OpAddq, alpha.SP, dst, dst))
			}
		case base == alpha.Zero:
			b.emit(alpha.Mem(alpha.OpLda, dst, alpha.Zero, in.I.Disp))
		default:
			src := b.source(base, dst)
			b.emit(alpha.Mem(alpha.OpLda, dst, src, in.I.Disp))
		}

	case argBrCond:
		src := b.source(in.I.Ra, dst)
		if in.I.Ra == alpha.Zero {
			src = alpha.Zero
		}
		switch in.I.Op {
		case alpha.OpBeq:
			b.emit(alpha.RI(alpha.OpCmpeq, src, 0, dst))
		case alpha.OpBne:
			b.emit(alpha.RI(alpha.OpCmpeq, src, 0, dst))
			b.emit(alpha.RI(alpha.OpXor, dst, 1, dst))
		case alpha.OpBlt:
			b.emit(alpha.RI(alpha.OpCmplt, src, 0, dst))
		case alpha.OpBle:
			b.emit(alpha.RI(alpha.OpCmple, src, 0, dst))
		case alpha.OpBgt:
			b.emit(alpha.RR(alpha.OpCmplt, alpha.Zero, src, dst))
		case alpha.OpBge:
			b.emit(alpha.RR(alpha.OpCmple, alpha.Zero, src, dst))
		case alpha.OpBlbs:
			b.emit(alpha.RI(alpha.OpAnd, src, 1, dst))
		case alpha.OpBlbc:
			b.emit(alpha.RI(alpha.OpAnd, src, 1, dst))
			b.emit(alpha.RI(alpha.OpXor, dst, 1, dst))
		default:
			return fmt.Errorf("atom: BrCondValue on %s", in.I.Op)
		}

	default:
		return fmt.Errorf("atom: unknown argument kind %d", a.kind)
	}
	return nil
}

func blobSym(i int) string { return fmt.Sprintf("atom$const%d", i) }
