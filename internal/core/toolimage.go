package core

import (
	"fmt"
	"sort"

	"atom/internal/alpha"
	"atom/internal/aout"
	"atom/internal/build"
	"atom/internal/link"
	"atom/internal/obs"
	"atom/internal/om"
	"atom/internal/om/analysis"
	"atom/internal/om/dataflow"
	"atom/internal/rtl"
)

// The build-the-tool-once half of the paper's cost model. A tool's
// analysis routines do not depend on the application being instrumented:
// they are compiled, linked against their private runtime library, given
// their register-save wrappers (or in-analysis splices), and sbrk-
// redirected exactly once per (tool, options) pair. The linked image is
// produced at a canonical base address and moved into each application's
// text-data gap with link.Rebase — a rigid shift plus relocation
// re-patch, not a relink. Applying a tool to the Nth program therefore
// costs only the per-program rewrite, as in the paper's two-step model.

// ToolImage is a tool's compiled and linked analysis image, independent
// of any application. Build one with BuildToolImage (or implicitly via
// Instrument, which caches them) and stamp it into applications with
// Apply. A ToolImage is immutable and safe for concurrent use.
type ToolImage struct {
	tool Tool
	key  build.Key
	mode SaveMode

	// img is linked at link.DefaultTextAddr and retains its relocation
	// records so it can be rebased rigidly. Read-only.
	img *aout.File

	// hasProc marks prototype names defined as procedures in the image;
	// isGlobal marks those whose symbol is exported. Apply verifies every
	// called analysis procedure against these.
	hasProc  map[string]bool
	isGlobal map[string]bool

	// inline holds a splice-ready template for every analysis procedure
	// that classified as inlinable (wrapper mode only). Templates are
	// extracted unconditionally — whether a site uses one is decided per
	// plan by Options.NoInline/InlineLimit, so the cache key is
	// unaffected.
	inline map[string]*inlineTemplate
}

// ToolName returns the name of the tool the image was built for.
func (ti *ToolImage) ToolName() string { return ti.tool.Name }

// CacheKey returns the content address of the image, for diagnostics.
func (ti *ToolImage) CacheKey() string { return ti.key.String() }

// imageCache holds linked analysis images keyed by their content address.
// Instrumenting a whole program suite with one tool builds the image for
// the first program and reuses it for the rest — concurrently, thanks to
// the cache's singleflight semantics.
var imageCache = build.NewCache("image", imageCodec{})

// ImageCacheStats reports tool-image cache activity (hits, disk hits,
// misses, builds, errors) since the last reset.
func ImageCacheStats() build.Stats { return imageCache.Stats() }

// ResetImageCache drops cached tool images per scope and zeroes the
// counters. Tests and cold-start benchmarks use it; production callers
// never need to.
func ResetImageCache(scope build.Scope) { imageCache.Reset(scope) }

// calledTargets returns the sorted set of analysis procedures the plan
// actually calls.
func calledTargets(q *Instrumentation) []string {
	seen := map[string]bool{}
	var targets []string
	for _, req := range q.journal {
		if name := req.proto.Name; !seen[name] {
			seen[name] = true
			targets = append(targets, name)
		}
	}
	sort.Strings(targets)
	return targets
}

// imageKey computes the content address of a tool image: everything that
// can change the image's bytes. The analysis sources, the save mode and
// register-summary setting, and the declared prototypes (wrappers are
// generated per prototype) all feed the key. The called-target set does
// too, but only in SaveInAnalysis mode, where the save/restore code is
// spliced into the targets themselves; the default wrapper image is
// target-independent, so any program mix shares one image.
func imageKey(tool Tool, opts Options, protos map[string]*Proto, targets []string) build.Key {
	b := build.NewKey("toolimage").
		String(imageCodecVersion).
		String(tool.Name).
		Int(int64(opts.Mode)).
		Bool(opts.NoRegSummary)
	srcNames := make([]string, 0, len(tool.Analysis))
	for n := range tool.Analysis {
		srcNames = append(srcNames, n)
	}
	sort.Strings(srcNames)
	b.Int(int64(len(srcNames)))
	for _, n := range srcNames {
		b.String(n).String(tool.Analysis[n])
	}
	protoNames := make([]string, 0, len(protos))
	for n := range protos {
		protoNames = append(protoNames, n)
	}
	sort.Strings(protoNames)
	b.Int(int64(len(protoNames)))
	for _, n := range protoNames {
		b.String(n)
		p := protos[n]
		b.Int(int64(len(p.Params)))
		for _, k := range p.Params {
			b.Int(int64(k))
		}
	}
	if opts.Mode == SaveInAnalysis {
		b.Int(int64(len(targets)))
		for _, t := range targets {
			b.String(t)
		}
	}
	return b.Sum()
}

// toolImageFor returns the (cached) analysis image matching a plan.
func toolImageFor(ctx *obs.Ctx, tool Tool, opts Options, q *Instrumentation) (*ToolImage, error) {
	targets := calledTargets(q)
	key := imageKey(tool, opts, q.protos, targets)
	ti, err := build.MemoCtx(ctx, imageCache, "toolimage", key, func(bctx *obs.Ctx) (*ToolImage, error) {
		ti, err := buildToolImage(bctx, tool, opts, q.protos, targets)
		if err != nil {
			return nil, err
		}
		ti.key = key
		return ti, nil
	})
	if err != nil {
		return nil, err
	}
	if ti.tool.Instrument == nil {
		// The image was decoded from the persistent store, which cannot
		// carry the tool's Go closure. Re-attach the identity on a
		// private copy — the cached value is shared across goroutines,
		// so it is never mutated in place. The content address already
		// proves this tool's sources and options produced the image.
		c := *ti
		c.tool = tool
		c.key = key
		ti = &c
	}
	return ti, nil
}

// probeCache holds the tiny probe application BuildToolImage runs a
// tool's instrumentation routine against to learn its prototypes.
var probeCache = build.NewCache("probe", probeCodec{})

// BuildToolImage compiles and links a tool's analysis image without an
// application in hand — the explicit form of the paper's first step
// ("build the tool"). The tool's instrumentation routine is run against a
// trivial probe program to collect its prototype declarations; since
// tools declare prototypes unconditionally, the resulting image is the
// one Instrument and Apply will use. The image is cached; building it
// again, or instrumenting any program with the same tool and options, is
// a cache hit.
func BuildToolImage(tool Tool, opts Options) (*ToolImage, error) {
	return BuildToolImageCtx(nil, tool, opts)
}

// BuildToolImageCtx is BuildToolImage with a stage context.
func BuildToolImageCtx(ctx *obs.Ctx, tool Tool, opts Options) (*ToolImage, error) {
	if tool.Instrument == nil {
		return nil, fmt.Errorf("atom: tool %q has no instrumentation routine", tool.Name)
	}
	probe, err := build.MemoCtx(ctx, probeCache, "probe-app",
		build.NewKey("probe-app").String(probeCodecVersion).Sum(),
		func(bctx *obs.Ctx) (*aout.File, error) {
			return rtl.BuildProgramCtx(bctx, "atom$probe.c", "int main() { return 0; }")
		})
	if err != nil {
		return nil, fmt.Errorf("atom: building probe program: %w", err)
	}
	prog, err := LiftCtx(ctx, probe)
	if err != nil {
		return nil, err
	}
	q, err := planOn(ctx, prog, tool, opts)
	if err != nil {
		return nil, err
	}
	return toolImageFor(ctx, tool, opts, q)
}

// buildToolImage does the actual compile/link work: analysis objects,
// register summary, wrappers or in-analysis splices, canonical-base link,
// sbrk redirection.
func buildToolImage(ctx *obs.Ctx, tool Tool, opts Options, protos map[string]*Proto, targets []string) (*ToolImage, error) {
	ictx, isp := ctx.Start("atom.image.build", obs.String("tool", tool.Name))
	defer isp.End()
	if len(tool.Analysis) == 0 {
		return nil, fmt.Errorf("atom: tool has no analysis routines")
	}
	objs, err := rtl.BuildObjectsCtx(ictx, tool.Analysis)
	if err != nil {
		return nil, fmt.Errorf("atom: analysis routines: %w", err)
	}
	lib, err := rtl.LibCtx(ictx)
	if err != nil {
		return nil, err
	}
	prov, err := link.LinkCtx(ictx, link.Config{
		TextAddr:      link.DefaultTextAddr,
		DataAfterText: true,
		Entry:         "-",
		ZeroBss:       true,
	}, objs, lib)
	if err != nil {
		return nil, fmt.Errorf("atom: linking analysis routines: %w", err)
	}
	aprog, err := om.BuildCtx(ictx, prov)
	if err != nil {
		return nil, fmt.Errorf("atom: analysis image: %w", err)
	}
	summary := dataflow.ModifiedRegsCtx(ictx, aprog)

	ti := &ToolImage{
		tool:     tool,
		mode:     opts.Mode,
		hasProc:  map[string]bool{},
		isGlobal: map[string]bool{},
	}

	// Save set per defined prototype: the registers the procedure's
	// interprocedural summary says may be modified, minus ra and the
	// argument registers, which the call site itself saves. Wrappers are
	// generated for every defined prototype, not just the procedures this
	// particular program mix happens to call — that is what makes the
	// image application-independent.
	protoNames := make([]string, 0, len(protos))
	for n := range protos {
		protoNames = append(protoNames, n)
	}
	sort.Strings(protoNames)
	wrapSave := map[string]om.RegSet{}
	var defined []string
	args := alpha.ArgRegs()
	for _, name := range protoNames {
		if aprog.Proc(name) == nil {
			continue
		}
		ti.hasProc[name] = true
		sym, ok := prov.Lookup(name)
		if !ok || !sym.Global {
			continue
		}
		ti.isGlobal[name] = true
		defined = append(defined, name)
		mod := summary[name]
		if opts.NoRegSummary {
			mod = om.AllCallerSave()
		}
		save := mod
		save &^= om.RegSet(0).Add(alpha.RA)
		argc := len(protos[name].Params)
		if argc > alpha.MaxRegArgs {
			argc = alpha.MaxRegArgs
		}
		for i := 0; i < argc; i++ {
			save &^= om.RegSet(0).Add(args[i])
		}
		wrapSave[name] = save
	}

	// The in-analysis save mode splices save/restore code into the called
	// procedures themselves, so the image depends on the target set (which
	// is part of its cache key) and every target must check out now.
	var extraText uint64
	spliceSave := map[string]om.RegSet{}
	if opts.Mode == SaveInAnalysis {
		for _, name := range targets {
			if !ti.hasProc[name] {
				return nil, fmt.Errorf("atom: analysis procedure %q not defined in analysis routines", name)
			}
			if !ti.isGlobal[name] {
				return nil, fmt.Errorf("atom: analysis procedure %q is not a global symbol", name)
			}
			if len(protos[name].Params) > alpha.MaxRegArgs {
				return nil, fmt.Errorf("atom: %q: the in-analysis save mode supports at most %d parameters", name, alpha.MaxRegArgs)
			}
			// Every exit must be a ret for the restore splice to cover it.
			pr := aprog.Proc(name)
			for _, b := range pr.Blocks {
				last := b.Insts[len(b.Insts)-1].I
				if last.Op == alpha.OpBr {
					target := b.Insts[len(b.Insts)-1].Addr + 4 + uint64(int64(last.Disp)*4)
					if target < pr.Addr || target >= pr.Addr+pr.Size {
						return nil, fmt.Errorf("atom: %q exits via a cross-procedure branch; in-analysis saves unsupported", name)
					}
				}
			}
			spliceSave[name] = wrapSave[name]
		}
		extraText = spliceGrowth(aprog, targets, spliceSave)
	}

	if opts.Mode == SaveWrapper && len(defined) > 0 {
		wrap, err := wrapperModule(ictx, defined, protos, wrapSave)
		if err != nil {
			return nil, fmt.Errorf("atom: wrappers: %w", err)
		}
		objs = append(append([]*aout.File(nil), objs...), wrap)
	}

	cfg := link.Config{TextAddr: link.DefaultTextAddr, Entry: "-", ZeroBss: true}
	if extraText == 0 {
		cfg.DataAfterText = true
	} else {
		// Leave room for the splice growth between text and data.
		size, err := textSizeOf(objs, lib)
		if err != nil {
			return nil, err
		}
		cfg.DataAddr = (link.DefaultTextAddr + size + extraText + 15) &^ 15
	}
	img, err := link.LinkCtx(ictx, cfg, objs, lib)
	if err != nil {
		return nil, fmt.Errorf("atom: linking analysis image: %w", err)
	}

	if opts.Mode == SaveInAnalysis && extraText > 0 {
		sprog, err := om.BuildCtx(ictx, img)
		if err != nil {
			return nil, err
		}
		if err := spliceSaves(sprog, targets, spliceSave); err != nil {
			return nil, err
		}
		lay := sprog.LayoutCtx(ictx)
		if lay.TextSize() != uint64(len(img.Text))+extraText {
			return nil, fmt.Errorf("atom: internal: splice growth %d != predicted %d",
				lay.TextSize()-uint64(len(img.Text)), extraText)
		}
		res, err := lay.FinishCtx(ictx, func(string) (uint64, bool) { return 0, false })
		if err != nil {
			return nil, err
		}
		// The re-emitted image keeps its (remapped) relocation records, so
		// it is still rigidly rebasable like a directly linked one.
		img = &aout.File{
			Linked: true,
			Text:   res.Text, TextAddr: img.TextAddr,
			Data: res.Data, DataAddr: img.DataAddr,
			Bss: img.Bss, BssAddr: img.BssAddr,
			Symbols: res.Symbols,
			Relocs:  res.Relocs,
		}
	}

	// The sbrk redirection mutates image text, so it happens here, once;
	// Rebase copies the buffers for each application.
	if err := redirectSbrk(img); err != nil {
		return nil, err
	}
	ti.img = img

	// Classify the defined analysis procedures for inlining, from the
	// FINAL image (post-sbrk-redirection, so templates carry the patched
	// text). SaveInAnalysis images have save/restore code spliced into
	// the routines themselves, which an inlined copy would duplicate;
	// only the wrapper-mode image grows templates.
	if opts.Mode == SaveWrapper {
		fprog, err := om.BuildCtx(ictx, img)
		if err != nil {
			return nil, fmt.Errorf("atom: analysis image (final): %w", err)
		}
		ti.inline = extractInlineTemplates(fprog, img, defined, summary)
	}

	// Under -vet, lint the FINAL image's analysis code statically before
	// it can ever be stamped into an application.
	if opts.Verify {
		fprog, err := om.BuildCtx(ictx, img)
		if err != nil {
			return nil, fmt.Errorf("atom: analysis image (final): %w", err)
		}
		if err := analyzeVerify(ictx, "analysis image", fprog, analysis.ToolImage); err != nil {
			return nil, err
		}
	}

	isp.SetAttr(
		obs.Int("text_bytes", int64(len(img.Text))),
		obs.Int("data_bytes", int64(len(img.Data))),
		obs.Int("inlinable_procs", int64(len(ti.inline))))
	return ti, nil
}
