package figures

import (
	"encoding/json"
	"os"
	"time"
)

// Machine-readable benchmark output, for dashboards and regression
// tracking. The schema is versioned so consumers can detect changes.

// BenchJSON is the top-level document WriteBenchJSON emits.
type BenchJSON struct {
	Schema string         `json:"schema"` // "atom-bench/v1"
	Fig5   []BenchFig5Row `json:"fig5,omitempty"`
	Fig6   []BenchFig6Row `json:"fig6,omitempty"`
}

// BenchFig5Row mirrors Fig5Row with durations in milliseconds.
type BenchFig5Row struct {
	Tool        string  `json:"tool"`
	Programs    int     `json:"programs"`
	ToolBuildMS float64 `json:"tool_build_ms"` // one-time image build
	TotalMS     float64 `json:"total_ms"`      // warm per-program rewrites, summed
	AvgMS       float64 `json:"avg_ms"`        // warm rewrite per program
	PaperAvgSec float64 `json:"paper_avg_sec"` // published reference
}

// BenchFig6Row mirrors Fig6Row.
type BenchFig6Row struct {
	Tool       string  `json:"tool"`
	Ratio      float64 `json:"ratio"`
	MinRatio   float64 `json:"min_ratio"`
	MaxRatio   float64 `json:"max_ratio"`
	PaperRatio float64 `json:"paper_ratio"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// WriteBenchJSON writes Figure 5/6 measurements as JSON to path. Either
// row slice may be nil.
func WriteBenchJSON(path string, fig5 []Fig5Row, fig6 []Fig6Row) error {
	doc := BenchJSON{Schema: "atom-bench/v1"}
	for _, r := range fig5 {
		doc.Fig5 = append(doc.Fig5, BenchFig5Row{
			Tool:        r.Tool,
			Programs:    r.Programs,
			ToolBuildMS: ms(r.ToolBuild),
			TotalMS:     ms(r.Total),
			AvgMS:       ms(r.Avg),
			PaperAvgSec: PaperFig5[r.Tool].Avg,
		})
	}
	for _, r := range fig6 {
		doc.Fig6 = append(doc.Fig6, BenchFig6Row{
			Tool:       r.Tool,
			Ratio:      r.Ratio,
			MinRatio:   r.MinRatio,
			MaxRatio:   r.MaxRatio,
			PaperRatio: PaperFig6[r.Tool].Ratio,
		})
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
