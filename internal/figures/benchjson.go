package figures

import (
	"encoding/json"
	"os"
	"time"

	"atom/internal/build"
	"atom/internal/obs"
)

// Machine-readable benchmark output, for dashboards and regression
// tracking. The schema is versioned so consumers can detect changes.
// Emission is deterministic: encoding/json renders struct fields in
// declaration order and map-free documents byte-identically, so two runs
// over identical measurements produce identical files.

// BenchJSON is the top-level document WriteBenchJSON emits. Hists
// carries pipeline distributions aggregated over the whole measurement —
// notably atom.site_live_regs and atom.site_saved_regs, the per-site
// caller-save live-set and save-set sizes the liveness analysis acts on.
type BenchJSON struct {
	Schema string         `json:"schema"` // "atom-bench/v7"
	Fig5   []BenchFig5Row `json:"fig5,omitempty"`
	Fig6   []BenchFig6Row `json:"fig6,omitempty"`
	// VMMinstS is the interpreter's retirement rate over the uninstrumented
	// VM runs of the measurement, in millions of instructions per second of
	// wall time (schema v7). Zero — and omitted — when the measurement ran
	// no programs under the VM (fig5).
	VMMinstS float64          `json:"vm_minst_s,omitempty"`
	Hists    []BenchHistogram `json:"histograms,omitempty"`
}

// BenchPhases is a per-phase time breakdown in milliseconds, as measured
// by the observability layer (internal/obs) rather than ad-hoc timers.
// Phases that did not run are zero.
type BenchPhases struct {
	LiftMS  float64 `json:"lift_ms"`            // executable -> IR (cached encode, or blob decode when warm)
	BuildMS float64 `json:"build_ms"`           // tool-image compile + link
	PlanMS  float64 `json:"plan_ms"`            // instrumentation routine over the IR
	ApplyMS float64 `json:"apply_ms"`           // per-program rewrite + image stamp
	WriteMS float64 `json:"write_ms,omitempty"` // output serialization (cmd/atom only)
	// AnalyzeMS is time inside the static-analysis pass manager:
	// -analyze runs, and the analyze stages of -vet. Zero — and
	// omitted — when no pass ran (schema v6).
	AnalyzeMS float64 `json:"analyze_ms,omitempty"`
}

// BenchCacheStats is a snapshot of one artifact cache's activity.
// DiskHits (schema v4) counts lookups served by decoding a blob from the
// persistent store; it is zero — and omitted — without a -cache-dir.
type BenchCacheStats struct {
	Hits     uint64 `json:"hits"`
	DiskHits uint64 `json:"disk_hits,omitempty"`
	Misses   uint64 `json:"misses"`
	Builds   uint64 `json:"builds"`
	Errors   uint64 `json:"errors,omitempty"`
}

// CacheStats converts a cache snapshot into its JSON form.
func CacheStats(s build.Stats) BenchCacheStats {
	return BenchCacheStats{Hits: s.Hits, DiskHits: s.DiskHits, Misses: s.Misses, Builds: s.Builds, Errors: s.Errors}
}

// BenchStoreStats is a snapshot of the persistent store's activity
// (schema v4): blob-level traffic underneath the per-kind cache stats.
// Adopted (schema v5) counts blobs written by a concurrent process and
// picked up on Get.
type BenchStoreStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Puts    uint64 `json:"puts"`
	Corrupt uint64 `json:"corrupt,omitempty"`
	Adopted uint64 `json:"adopted,omitempty"`
	Evicted uint64 `json:"evicted,omitempty"`
	Blobs   int    `json:"blobs"`
	Bytes   int64  `json:"bytes"`
}

// StoreStats converts a store snapshot into its JSON form.
func StoreStats(s build.StoreStats) BenchStoreStats {
	return BenchStoreStats{
		Hits: s.Hits, Misses: s.Misses, Puts: s.Puts,
		Corrupt: s.Corrupt, Adopted: s.Adopted, Evicted: s.Evicted,
		Blobs: s.Blobs, Bytes: s.Bytes,
	}
}

// BenchFig5Row mirrors Fig5Row with durations in milliseconds.
type BenchFig5Row struct {
	Tool        string          `json:"tool"`
	Programs    int             `json:"programs"`
	ToolBuildMS float64         `json:"tool_build_ms"` // one-time image build
	TotalMS     float64         `json:"total_ms"`      // warm per-program rewrites, summed
	AvgMS       float64         `json:"avg_ms"`        // warm rewrite per program
	LiftColdMS  float64         `json:"lift_cold_ms"`  // suite lift, empty IR cache
	LiftWarmMS  float64         `json:"lift_warm_ms"`  // suite lift, cached blobs
	LiftDiskMS  float64         `json:"lift_disk_ms"`  // suite lift, memory cold, blobs on disk
	PaperAvgSec float64         `json:"paper_avg_sec"` // published reference
	Phases      BenchPhases     `json:"phases"`
	ImageCache  BenchCacheStats `json:"image_cache"`
	ObjectCache BenchCacheStats `json:"object_cache"`
	IRCache     BenchCacheStats `json:"ir_cache"`
	// DiskStore is the private DiskStore's traffic during the disk-warm
	// lift sweep (schema v4).
	DiskStore BenchStoreStats `json:"disk_store"`
}

// BenchFig6Row mirrors Fig6Row.
type BenchFig6Row struct {
	Tool       string  `json:"tool"`
	Ratio      float64 `json:"ratio"`
	MinRatio   float64 `json:"min_ratio"`
	MaxRatio   float64 `json:"max_ratio"`
	PaperRatio float64 `json:"paper_ratio"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// WriteBenchJSON writes Figure 5/6 measurements as JSON to path. Either
// row slice (and the histogram snapshot) may be nil. vmMinstS is the
// VM retirement rate for measurements that executed programs (fig6);
// pass 0 when nothing ran under the VM.
func WriteBenchJSON(path string, fig5 []Fig5Row, fig6 []Fig6Row, vmMinstS float64, hists []obs.Hist) error {
	doc := BenchJSON{Schema: "atom-bench/v7", VMMinstS: vmMinstS, Hists: Histograms(hists)}
	if len(doc.Hists) == 0 {
		doc.Hists = nil
	}
	for _, r := range fig5 {
		doc.Fig5 = append(doc.Fig5, BenchFig5Row{
			Tool:        r.Tool,
			Programs:    r.Programs,
			ToolBuildMS: ms(r.ToolBuild),
			TotalMS:     ms(r.Total),
			AvgMS:       ms(r.Avg),
			PaperAvgSec: PaperFig5[r.Tool].Avg,
			LiftColdMS:  ms(r.LiftCold),
			LiftWarmMS:  ms(r.LiftWarm),
			LiftDiskMS:  ms(r.LiftDisk),
			Phases: BenchPhases{
				LiftMS:  ms(r.LiftTime),
				BuildMS: ms(r.ImageBuild),
				PlanMS:  ms(r.PlanTime),
				ApplyMS: ms(r.ApplyTime),
			},
			ImageCache:  CacheStats(r.ImageCache),
			ObjectCache: CacheStats(r.ObjectCache),
			IRCache:     CacheStats(r.IRCache),
			DiskStore:   StoreStats(r.DiskStore),
		})
	}
	for _, r := range fig6 {
		doc.Fig6 = append(doc.Fig6, BenchFig6Row{
			Tool:       r.Tool,
			Ratio:      r.Ratio,
			MinRatio:   r.MinRatio,
			MaxRatio:   r.MaxRatio,
			PaperRatio: PaperFig6[r.Tool].Ratio,
		})
	}
	return writeJSON(path, doc)
}

// RunDoc is the document `atom -t tool -bench-json out.json prog.x ...`
// writes: one instrument-mode run with its per-phase breakdown and cache
// statistics.
type RunDoc struct {
	Schema   string   `json:"schema"` // "atom-run/v7"
	Tool     string   `json:"tool"`
	Programs []string `json:"programs"`
	Failed   []string `json:"failed,omitempty"`
	// VMMinstS is the VM's retirement rate for -run invocations, in
	// millions of instructions per second of wall time (schema v7).
	// Zero — and omitted — for instrument-only runs.
	VMMinstS float64         `json:"vm_minst_s,omitempty"`
	Phases   BenchPhases     `json:"phases"`
	Inline   *BenchInline    `json:"inline,omitempty"`
	Image    BenchCacheStats `json:"image_cache"`
	Objects  BenchCacheStats `json:"object_cache"`
	IR       BenchCacheStats `json:"ir_cache"`
	// Disk is the persistent store's traffic; nil without a -cache-dir
	// (schema v4).
	Disk     *BenchStoreStats `json:"disk_store,omitempty"`
	Counters []BenchCounter   `json:"counters,omitempty"`
	Hists    []BenchHistogram `json:"histograms,omitempty"`
}

// BenchInline summarizes the analysis-routine inliner's work across the
// run (schema v2): how many call sites received a spliced body and how
// many still call through a wrapper. The atom.inline_body_len histogram
// in Hists carries the spliced-body size distribution.
type BenchInline struct {
	SitesInlined int64 `json:"sites_inlined"`
	SitesCalled  int64 `json:"sites_called"`
}

// BenchCounter is one named pipeline counter (sorted by name upstream).
type BenchCounter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// BenchHistogram is one named log-bucket distribution — per-program
// apply time, per-run profiler sample depth — as aggregated by
// internal/obs. Buckets are fixed powers of two, so identical runs emit
// identical documents.
type BenchHistogram struct {
	Name    string        `json:"name"`
	Count   uint64        `json:"count"`
	Sum     int64         `json:"sum"`
	Min     int64         `json:"min"`
	Max     int64         `json:"max"`
	Buckets []BenchBucket `json:"buckets,omitempty"`
}

// BenchBucket is one non-empty histogram bucket: Count observations in
// the value range [Lo, Hi).
type BenchBucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// Histograms converts obs histogram snapshots into their JSON form.
func Histograms(hs []obs.Hist) []BenchHistogram {
	out := make([]BenchHistogram, 0, len(hs))
	for _, h := range hs {
		bh := BenchHistogram{Name: h.Name, Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max}
		for _, b := range h.Buckets {
			bh.Buckets = append(bh.Buckets, BenchBucket{Lo: b.Lo, Hi: b.Hi, Count: b.Count})
		}
		out = append(out, bh)
	}
	return out
}

// WriteRunJSON writes an instrument-mode run document. Schema history:
// v1 had no inline block; v2 added it; v3 added the lift phase (lift_ms)
// and the IR-blob cache block (ir_cache); v4 added disk_hits to the
// cache blocks and the disk_store block for -cache-dir runs, and emitted
// the legacy cache.*/ircache.* counter names beside the unified
// store.<kind>.* names; v5 drops the legacy aliases — store.<kind>.*
// is the only counter family — and adds the adopted field to
// disk_store; v6 adds analyze_ms to phases, covering -analyze and the
// -vet analyze stages; v7 adds vm_minst_s, the VM retirement rate of
// -run invocations.
func WriteRunJSON(path string, doc RunDoc) error {
	doc.Schema = "atom-run/v7"
	return writeJSON(path, doc)
}

func writeJSON(path string, doc any) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
