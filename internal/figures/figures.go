// Package figures regenerates the paper's evaluation artifacts:
//
//   - Figure 5: time for ATOM to instrument the 20-program suite with
//     each of the 11 tools (total and per-program average);
//   - Figure 6: execution time of each instrumented program relative to
//     its uninstrumented run, per tool.
//
// "Time" for Figure 6 is the machine's deterministic retired-instruction
// count — the reproduction's clock — with wall-clock reported alongside.
// Reference columns carry the paper's published numbers so the shape of
// the result (which tools are expensive, by roughly what factor) can be
// compared directly.
package figures

import (
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"time"

	"atom/internal/build"
	"atom/internal/core"
	"atom/internal/obs"
	"atom/internal/rtl"
	"atom/internal/spec"
	"atom/internal/tools"
	"atom/internal/vm"
)

// PaperFig5 holds the published per-tool instrumentation times (seconds,
// DEC 3000/400): total over 20 SPEC92 programs and the average.
var PaperFig5 = map[string]struct{ Total, Avg float64 }{
	"branch":  {110.46, 5.52},
	"cache":   {120.58, 6.03},
	"dyninst": {126.31, 6.32},
	"gprof":   {113.24, 5.66},
	"inline":  {146.50, 7.33},
	"io":      {121.60, 6.08},
	"malloc":  {97.93, 4.90},
	"pipe":    {257.48, 12.87},
	"prof":    {122.53, 6.13},
	"syscall": {120.53, 6.03},
	"unalign": {135.61, 6.78},
}

// PaperFig6 holds the published execution-time ratios (instrumented /
// uninstrumented) with the paper's instrumentation-point descriptions
// and argument counts.
var PaperFig6 = map[string]struct {
	Points string
	Args   int
	Ratio  float64
}{
	"branch":  {"each conditional branch", 3, 3.03},
	"cache":   {"each memory reference", 1, 11.84},
	"dyninst": {"each basic block", 3, 2.91},
	"gprof":   {"each procedure/each basic block", 2, 2.70},
	"inline":  {"each call site", 1, 1.03},
	"io":      {"before/after write procedure", 4, 1.01},
	"malloc":  {"before/after malloc procedure", 1, 1.02},
	"pipe":    {"each basic block", 2, 1.80},
	"prof":    {"each procedure/each basic block", 2, 2.33},
	"syscall": {"before/after each system call", 2, 1.01},
	"unalign": {"each basic block", 3, 2.93},
}

// Fig5Row is one Figure 5 line, split along the paper's two-step cost
// model: ToolBuild is the one-time cost of compiling and linking the
// tool's analysis image (step one, paid once no matter how many programs
// follow); Total/Avg are the per-program rewrite costs (step two) with
// the image already built.
type Fig5Row struct {
	Tool        string
	Description string
	ToolBuild   time.Duration // one-time: compile + link the analysis image
	Total       time.Duration // wall time to rewrite the whole suite (warm)
	Avg         time.Duration // per-program rewrite time
	Programs    int

	// Cold vs warm lift: wall time to lift the whole suite against an
	// empty IR cache (build + encode + decode per program) and again
	// against the populated one (blob decode only). The gap is what the
	// content-addressed IR cache saves every re-instrumentation.
	// LiftDisk is the third rung: the in-memory cache dropped but the
	// blobs resident in a persistent DiskStore — what a fresh process
	// pays against a warm cache directory.
	LiftCold time.Duration
	LiftWarm time.Duration
	LiftDisk time.Duration

	// DiskStore is the private store's traffic during the LiftDisk
	// sweep (seed puts + measured disk hits).
	DiskStore build.StoreStats

	// Per-phase breakdown from the observability layer: cumulative time
	// in the lift, plan (instrumentation-routine), apply (rewrite) and
	// image build stages across this tool's whole measurement (the plan
	// total includes the probe plan BuildToolImage runs).
	LiftTime   time.Duration
	PlanTime   time.Duration
	ApplyTime  time.Duration
	ImageBuild time.Duration

	// Cache activity during this tool's measurement (the caches are reset
	// per tool, so these are per-tool deltas).
	ImageCache  build.Stats
	ObjectCache build.Stats
	IRCache     build.Stats
}

// Fig5 instruments the given suite programs (all 20 when names is empty)
// with every tool and measures instrumentation time (ATOM processing plus
// the tool's instrumentation routine, exactly the paper's definition).
// For each tool the artifact caches are dropped first, so ToolBuild is a
// true cold build; the per-program loop then runs against the warm cache,
// which is how the system behaves when one tool is applied to a suite.
// It also returns the pipeline histograms (per-site live/saved register
// distributions among them) aggregated across every tool, for the bench
// JSON document.
func Fig5(names []string, progress io.Writer) ([]Fig5Row, []obs.Hist, error) {
	if len(names) == 0 {
		for _, p := range spec.Suite() {
			names = append(names, p.Name)
		}
	}
	// Warm the application-build cache outside the timers.
	for _, pn := range names {
		if _, err := spec.Build(pn); err != nil {
			return nil, nil, err
		}
	}
	var rows []Fig5Row
	var hists []obs.Hist
	for _, tname := range tools.Names() {
		tool, _ := tools.ByName(tname)

		// A private metrics sink per tool turns the pipeline's spans into
		// the per-phase breakdown (plan/apply/image-build) the JSON output
		// reports alongside the wall-clock columns.
		metrics := &obs.MetricsSink{}
		mctx := obs.New(metrics)

		core.ResetImageCache(build.ScopeMemory)
		rtl.ResetObjectCache(build.ScopeMemory)
		build.ResetIRCache(build.ScopeMemory)
		start := time.Now()
		ti, err := core.BuildToolImageCtx(mctx, tool, core.Options{})
		if err != nil {
			return nil, nil, fmt.Errorf("fig5: building %s: %w", tname, err)
		}
		toolBuild := time.Since(start)

		// Cold vs warm lift over the suite: the first sweep builds,
		// encodes and caches every program's IR blob; the second decodes
		// the cached blobs. The apply loop below then runs entirely warm,
		// as a suite pass does in practice.
		start = time.Now()
		for _, pn := range names {
			exe, err := spec.BuildCtx(mctx, pn)
			if err != nil {
				return nil, nil, err
			}
			if _, err := core.LiftCtx(mctx, exe); err != nil {
				return nil, nil, fmt.Errorf("fig5: lifting %s: %w", pn, err)
			}
		}
		liftCold := time.Since(start)
		start = time.Now()
		for _, pn := range names {
			exe, err := spec.BuildCtx(mctx, pn)
			if err != nil {
				return nil, nil, err
			}
			if _, err := core.LiftCtx(mctx, exe); err != nil {
				return nil, nil, fmt.Errorf("fig5: lifting %s: %w", pn, err)
			}
		}
		liftWarm := time.Since(start)

		start = time.Now()
		for _, pn := range names {
			exe, err := spec.BuildCtx(mctx, pn)
			if err != nil {
				return nil, nil, err
			}
			if _, err := core.ApplyCtx(mctx, exe, ti, core.Options{}); err != nil {
				return nil, nil, fmt.Errorf("fig5: %s on %s: %w", tname, pn, err)
			}
		}
		total := time.Since(start)

		// Capture the cache deltas before the disk sweep below resets
		// the in-memory IR cache again.
		imageStats := core.ImageCacheStats()
		objectStats := rtl.ObjectCacheStats()
		irStats := build.IRCacheStats()

		liftDisk, diskStats, err := diskLiftSweep(mctx, names)
		if err != nil {
			return nil, nil, fmt.Errorf("fig5: disk-warm lift for %s: %w", tname, err)
		}

		rows = append(rows, Fig5Row{
			Tool:        tname,
			Description: tool.Description,
			ToolBuild:   toolBuild,
			Total:       total,
			Avg:         total / time.Duration(len(names)),
			Programs:    len(names),
			LiftCold:    liftCold,
			LiftWarm:    liftWarm,
			LiftDisk:    liftDisk,
			DiskStore:   diskStats,
			LiftTime:    metrics.Total("om.lift"),
			PlanTime:    metrics.Total("atom.plan"),
			ApplyTime:   metrics.Total("atom.apply"),
			ImageBuild:  metrics.Total("atom.image.build"),
			ImageCache:  imageStats,
			ObjectCache: objectStats,
			IRCache:     irStats,
		})
		hists = obs.MergeHists(hists, mctx.Histograms())
		if progress != nil {
			fmt.Fprintf(progress, "fig5: %-8s build %v, lift %v/%v/%v (cold/warm/disk), apply %v\n",
				tname, toolBuild.Round(time.Millisecond),
				liftCold.Round(time.Millisecond), liftWarm.Round(time.Millisecond),
				liftDisk.Round(time.Millisecond),
				total.Round(time.Millisecond))
		}
	}
	return rows, hists, nil
}

// diskLiftSweep measures the third lift rung: the in-memory IR cache
// dropped, but every blob resident in a persistent DiskStore — the cost
// a fresh process pays against a warm -cache-dir. A private temporary
// store is installed for the duration: a seeding sweep writes each
// program's IR blob to disk, the memory layer is dropped again, and the
// measured sweep then serves every lift by decoding a disk blob.
func diskLiftSweep(mctx *obs.Ctx, names []string) (time.Duration, build.StoreStats, error) {
	dir, err := os.MkdirTemp("", "atom-fig5-store")
	if err != nil {
		return 0, build.StoreStats{}, err
	}
	defer os.RemoveAll(dir)
	ds, err := build.OpenDiskStore(mctx, dir, 0)
	if err != nil {
		return 0, build.StoreStats{}, err
	}
	prev := build.SwapStore(ds)
	defer func() {
		build.SwapStore(prev)
		ds.Close()
	}()

	sweep := func() error {
		for _, pn := range names {
			exe, err := spec.BuildCtx(mctx, pn)
			if err != nil {
				return err
			}
			if _, err := core.LiftCtx(mctx, exe); err != nil {
				return fmt.Errorf("lifting %s: %w", pn, err)
			}
		}
		return nil
	}

	build.ResetIRCache(build.ScopeMemory)
	if err := sweep(); err != nil { // seed: rebuild + Put every blob
		return 0, build.StoreStats{}, err
	}
	build.ResetIRCache(build.ScopeMemory)
	start := time.Now()
	if err := sweep(); err != nil { // measure: every lift decodes from disk
		return 0, build.StoreStats{}, err
	}
	return time.Since(start), ds.Stats(), nil
}

// Fig6Row is one Figure 6 line.
type Fig6Row struct {
	Tool     string
	Points   string  // instrumentation points, as described in the paper
	Args     int     // number of arguments passed at each point
	Ratio    float64 // geometric-mean instruction ratio across the suite
	MinRatio float64
	MaxRatio float64
}

var (
	baseMu    sync.Mutex
	baseCache = map[string]uint64{} // program -> uninstrumented icount
)

// baselineIcount runs a program uninstrumented (cached).
func baselineIcount(name string) (uint64, error) {
	baseMu.Lock()
	defer baseMu.Unlock()
	if v, ok := baseCache[name]; ok {
		return v, nil
	}
	exe, err := spec.Build(name)
	if err != nil {
		return 0, err
	}
	p, _ := spec.ByName(name)
	m, err := vm.New(exe, vm.Config{Stdin: p.Stdin, FS: p.FS})
	if err != nil {
		return 0, err
	}
	if _, err := m.Run(); err != nil {
		return 0, fmt.Errorf("fig6: baseline %s: %w", name, err)
	}
	baseCache[name] = m.Icount
	return m.Icount, nil
}

// RatioFor measures one tool on one program and returns the
// instrumented/uninstrumented instruction ratio.
func RatioFor(toolName, progName string, opts core.Options) (float64, error) {
	return RatioForCtx(nil, toolName, progName, opts)
}

// RatioForCtx is RatioFor under a stage context, so a caller collecting
// pipeline counters and histograms (per-site live/saved register
// distributions among them) sees every instrumentation in the sweep.
func RatioForCtx(ctx *obs.Ctx, toolName, progName string, opts core.Options) (float64, error) {
	base, err := baselineIcount(progName)
	if err != nil {
		return 0, err
	}
	exe, err := spec.Build(progName)
	if err != nil {
		return 0, err
	}
	tool, ok := tools.ByName(toolName)
	if !ok {
		return 0, fmt.Errorf("fig6: unknown tool %q", toolName)
	}
	res, err := core.InstrumentCtx(ctx, exe, tool, opts)
	if err != nil {
		return 0, fmt.Errorf("fig6: %s on %s: %w", toolName, progName, err)
	}
	p, _ := spec.ByName(progName)
	m, err := vm.New(res.Exe, vm.Config{
		Stdin:              p.Stdin,
		FS:                 p.FS,
		AnalysisHeapOffset: res.HeapOffset,
		MaxInstr:           4_000_000_000,
	})
	if err != nil {
		return 0, err
	}
	if _, err := m.Run(); err != nil {
		return 0, fmt.Errorf("fig6: %s on %s: %w", toolName, progName, err)
	}
	return float64(m.Icount) / float64(base), nil
}

// Fig6 measures every tool over the given programs (all 20 when names is
// empty) and returns per-tool geometric-mean ratios, plus the pipeline
// histograms aggregated over the whole sweep.
func Fig6(names []string, progress io.Writer) ([]Fig6Row, []obs.Hist, error) {
	if len(names) == 0 {
		for _, p := range spec.Suite() {
			names = append(names, p.Name)
		}
	}
	// A sinkless context still aggregates counters and histograms.
	mctx := obs.New()
	var rows []Fig6Row
	for _, tname := range tools.Names() {
		logSum := 0.0
		minR, maxR := math.Inf(1), 0.0
		for _, pn := range names {
			r, err := RatioForCtx(mctx, tname, pn, core.Options{})
			if err != nil {
				return nil, nil, err
			}
			logSum += math.Log(r)
			minR = math.Min(minR, r)
			maxR = math.Max(maxR, r)
			if progress != nil {
				fmt.Fprintf(progress, "fig6: %-8s %-9s %6.2fx\n", tname, pn, r)
			}
		}
		ref := PaperFig6[tname]
		rows = append(rows, Fig6Row{
			Tool:     tname,
			Points:   ref.Points,
			Args:     ref.Args,
			Ratio:    math.Exp(logSum / float64(len(names))),
			MinRatio: minR,
			MaxRatio: maxR,
		})
	}
	return rows, mctx.Histograms(), nil
}

// PrintFig5 renders Figure 5 next to the paper's numbers. "build" is the
// one-time tool-image cost; "total"/"avg/prog" cover only the
// per-program rewrites (the cost that scales with the suite).
func PrintFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintf(w, "Figure 5: time to instrument the %d-program suite (build once, apply per program)\n", rows[0].Programs)
	fmt.Fprintf(w, "%-8s  %-45s %10s %11s %11s %11s %12s %12s %14s\n",
		"tool", "description", "build", "lift(cold)", "lift(warm)", "lift(disk)", "total", "avg/prog", "paper avg (s)")
	for _, r := range rows {
		ref := PaperFig5[r.Tool]
		fmt.Fprintf(w, "%-8s  %-45s %10v %11v %11v %11v %12v %12v %14.2f\n",
			r.Tool, r.Description, r.ToolBuild.Round(time.Millisecond),
			r.LiftCold.Round(time.Millisecond), r.LiftWarm.Round(time.Millisecond),
			r.LiftDisk.Round(time.Millisecond),
			r.Total.Round(time.Millisecond), r.Avg.Round(time.Millisecond), ref.Avg)
	}
}

// PrintFig6 renders Figure 6 next to the paper's numbers.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintln(w, "Figure 6: instrumented / uninstrumented execution (instruction ratio)")
	fmt.Fprintf(w, "%-8s  %-34s %5s %9s %9s %9s %8s\n", "tool", "instrumentation points", "args", "ratio", "min", "max", "paper")
	for _, r := range rows {
		ref := PaperFig6[r.Tool]
		fmt.Fprintf(w, "%-8s  %-34s %5d %8.2fx %8.2fx %8.2fx %7.2fx\n",
			r.Tool, r.Points, r.Args, r.Ratio, r.MinRatio, r.MaxRatio, ref.Ratio)
	}
}
