package figures_test

import (
	"strings"
	"testing"

	"atom/internal/core"
	"atom/internal/figures"
)

func TestFig5Subset(t *testing.T) {
	rows, hists, err := figures.Fig5([]string{"queens", "eqntott"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(rows))
	}
	saw := map[string]bool{}
	for _, h := range hists {
		saw[h.Name] = h.Count > 0
	}
	for _, want := range []string{"atom.site_live_regs", "atom.site_saved_regs"} {
		if !saw[want] {
			t.Errorf("aggregated histograms lack %s (have %v)", want, saw)
		}
	}
	for _, r := range rows {
		if r.Total <= 0 || r.Avg <= 0 || r.Programs != 2 {
			t.Errorf("%s: implausible row %+v", r.Tool, r)
		}
		if _, ok := figures.PaperFig5[r.Tool]; !ok {
			t.Errorf("%s missing from the paper reference table", r.Tool)
		}
	}
	var sb strings.Builder
	figures.PrintFig5(&sb, rows)
	if !strings.Contains(sb.String(), "pipe") || !strings.Contains(sb.String(), "12.87") {
		t.Errorf("PrintFig5 output malformed:\n%s", sb.String())
	}
}

func TestFig6Subset(t *testing.T) {
	rows, _, err := figures.Fig6([]string{"queens"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(rows))
	}
	byTool := map[string]figures.Fig6Row{}
	for _, r := range rows {
		if r.Ratio < 1.0 {
			t.Errorf("%s: ratio %.2f < 1 (instrumentation cannot speed a program up)", r.Tool, r.Ratio)
		}
		// exp(mean(log)) can differ from min==max in the last ulp.
		if r.MinRatio > r.Ratio*1.000001 || r.MaxRatio < r.Ratio*0.999999 {
			t.Errorf("%s: mean %.2f outside [min %.2f, max %.2f]", r.Tool, r.Ratio, r.MinRatio, r.MaxRatio)
		}
		byTool[r.Tool] = r
	}
	// Shape invariants from the paper that must hold on any workload:
	// cache dominates every other tool; the rare-event tools are near 1.
	for _, other := range []string{"branch", "dyninst", "inline", "io", "malloc", "syscall"} {
		if byTool["cache"].Ratio < byTool[other].Ratio {
			t.Errorf("cache (%.2f) not the most expensive vs %s (%.2f)",
				byTool["cache"].Ratio, other, byTool[other].Ratio)
		}
	}
	for _, cheap := range []string{"io", "syscall", "malloc", "inline"} {
		if byTool[cheap].Ratio > 1.5 {
			t.Errorf("%s ratio %.2f, want near 1.0 on a compute-bound program", cheap, byTool[cheap].Ratio)
		}
	}
	var sb strings.Builder
	figures.PrintFig6(&sb, rows)
	if !strings.Contains(sb.String(), "11.84") {
		t.Errorf("PrintFig6 lacks paper reference column:\n%s", sb.String())
	}
}

func TestRatioForErrors(t *testing.T) {
	if _, err := figures.RatioFor("nope", "queens", core.Options{}); err == nil {
		t.Error("unknown tool accepted")
	}
	if _, err := figures.RatioFor("cache", "nope", core.Options{}); err == nil {
		t.Error("unknown program accepted")
	}
}
