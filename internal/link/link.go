// Package link combines relocatable object modules (and library archives)
// into executables, mirroring the standard OSF/1 ld step that precedes
// ATOM in the paper's pipeline (Figure 1: "standard linker").
//
// Two properties matter for ATOM:
//
//   - Executables retain their full symbol table and relocation records
//     ("the fully linked application program in object-module format"),
//     so OM can later rebuild the program symbolically and re-fix every
//     address constant after instrumentation moves code.
//
//   - Section placement is explicit and configurable. ATOM reuses this
//     linker to build the analysis image at a caller-chosen base address
//     in the gap between the application's text and data segments, with
//     analysis bss converted to zero-initialized data (Figure 4's
//     "uninit, initialized to 0").
package link

import (
	"fmt"

	"atom/internal/aout"
	"atom/internal/obs"
)

// Default load addresses. The stack occupies [0, TextAddr) and grows down
// from the start of text, as on Alpha OSF/1 (paper, footnote 10); the
// heap begins at the end of bss.
const (
	DefaultTextAddr = 0x0010_0000
	DefaultDataAddr = 0x0040_0000
)

// Config controls a link.
type Config struct {
	// TextAddr and DataAddr are the load addresses of the two segments.
	// Zero selects the defaults. Bss follows data immediately.
	TextAddr uint64
	DataAddr uint64
	// DataAfterText places the data segment immediately after the text
	// segment (16-byte aligned), ignoring DataAddr. ATOM uses this for
	// analysis images, which live wholly inside the gap between the
	// application's text and data.
	DataAfterText bool
	// Entry names the entry-point symbol. Zero value selects "__start".
	// Set to "-" for images with no entry point (e.g. analysis images,
	// which are only ever called into).
	Entry string
	// ZeroBss folds the bss segment into the data segment as explicit
	// zero bytes. ATOM applies this to the analysis image because all
	// initialized data in the final executable must precede all
	// uninitialized data (paper, Section 4).
	ZeroBss bool
}

// Library is a named archive of object modules with classic archive
// semantics: a member is linked in only if it defines a symbol that is
// undefined at that point in the link.
type Library struct {
	Name    string
	Members []*aout.File
}

// Link combines the given object modules, resolving undefined symbols
// against the libraries, and produces an executable.
func Link(cfg Config, objs []*aout.File, libs ...*Library) (*aout.File, error) {
	return LinkCtx(nil, cfg, objs, libs...)
}

// LinkCtx is Link with a stage context: the whole link runs under a
// "link.link" span, with child spans for section layout plus symbol
// binding ("link.layout") and relocation resolution ("link.resolve").
func LinkCtx(ctx *obs.Ctx, cfg Config, objs []*aout.File, libs ...*Library) (*aout.File, error) {
	ctx, sp := ctx.Start("link.link", obs.Int("modules", int64(len(objs))))
	defer sp.End()
	out, err := linkCtx(ctx, cfg, objs, libs...)
	if err == nil {
		sp.SetAttr(obs.Int("text_bytes", int64(len(out.Text))),
			obs.Int("data_bytes", int64(len(out.Data))))
	}
	return out, err
}

func linkCtx(ctx *obs.Ctx, cfg Config, objs []*aout.File, libs ...*Library) (*aout.File, error) {
	if cfg.TextAddr == 0 {
		cfg.TextAddr = DefaultTextAddr
	}
	if cfg.DataAddr == 0 {
		cfg.DataAddr = DefaultDataAddr
	}
	if cfg.Entry == "" {
		cfg.Entry = "__start"
	}
	if len(objs) == 0 {
		return nil, fmt.Errorf("link: no input modules")
	}
	for i, o := range objs {
		if o.Linked {
			return nil, fmt.Errorf("link: input %d is already linked", i)
		}
		if err := o.Validate(); err != nil {
			return nil, fmt.Errorf("link: input %d: %w", i, err)
		}
	}

	modules := append([]*aout.File(nil), objs...)
	modules, err := selectMembers(modules, libs)
	if err != nil {
		return nil, err
	}

	ld := &linker{cfg: cfg, globals: map[string]symAddr{}}
	return ld.run(ctx, modules)
}

type symAddr struct {
	module int
	index  int // symbol index within module
}

// selectMembers repeatedly pulls in library members that define symbols
// still undefined, until no progress is made.
func selectMembers(modules []*aout.File, libs []*Library) ([]*aout.File, error) {
	inLink := map[*aout.File]bool{}
	for _, m := range modules {
		inLink[m] = true
	}
	for {
		undef := map[string]bool{}
		defined := map[string]bool{}
		for _, m := range modules {
			for _, s := range m.Symbols {
				if s.Section == aout.SecUndef {
					undef[s.Name] = true
				} else if s.Global {
					defined[s.Name] = true
				}
			}
		}
		progress := false
		for _, lib := range libs {
			for _, mem := range lib.Members {
				if inLink[mem] {
					continue
				}
				for _, s := range mem.Symbols {
					if s.Global && s.Section != aout.SecUndef && undef[s.Name] && !defined[s.Name] {
						if err := mem.Validate(); err != nil {
							return nil, fmt.Errorf("link: library %s: %w", lib.Name, err)
						}
						modules = append(modules, mem)
						inLink[mem] = true
						progress = true
						for _, s2 := range mem.Symbols {
							if s2.Global && s2.Section != aout.SecUndef {
								defined[s2.Name] = true
							} else if s2.Section == aout.SecUndef {
								undef[s2.Name] = true
							}
						}
						break
					}
				}
			}
		}
		if !progress {
			return modules, nil
		}
	}
}

type linker struct {
	cfg     Config
	globals map[string]symAddr
	out     *aout.File
	// per-module section placement offsets
	textOff []uint64
	dataOff []uint64
	bssOff  []uint64
	// symIndex[m][i] = index of module m's symbol i in the output table
	symIndex [][]int
}

func (ld *linker) run(ctx *obs.Ctx, modules []*aout.File) (*aout.File, error) {
	_, laySp := ctx.Start("link.layout", obs.Int("modules", int64(len(modules))))
	// Lay out sections: concatenate text (4-byte aligned already), then
	// data and bss each 16-byte aligned per module.
	var textSize, dataSize, bssSize uint64
	for _, m := range modules {
		ld.textOff = append(ld.textOff, textSize)
		textSize += uint64(len(m.Text))
		dataSize = align(dataSize, 16)
		ld.dataOff = append(ld.dataOff, dataSize)
		dataSize += uint64(len(m.Data))
		bssSize = align(bssSize, 16)
		ld.bssOff = append(ld.bssOff, bssSize)
		bssSize += m.Bss
	}

	out := &aout.File{Linked: true, TextAddr: ld.cfg.TextAddr}
	ld.out = out
	if ld.cfg.DataAfterText {
		ld.cfg.DataAddr = align(ld.cfg.TextAddr+textSize, 16)
	}
	if ld.cfg.ZeroBss {
		// Fold bss into data: data grows by aligned bss size; bss empty.
		dataSize = align(dataSize, 16)
		for i := range modules {
			ld.bssOff[i] += dataSize
		}
		out.DataAddr = ld.cfg.DataAddr
		out.BssAddr = out.DataAddr + dataSize + bssSize
		out.Data = make([]byte, dataSize+bssSize)
		out.Bss = 0
	} else {
		out.DataAddr = ld.cfg.DataAddr
		out.BssAddr = align(out.DataAddr+dataSize, 16)
		out.Data = make([]byte, dataSize)
		out.Bss = bssSize
	}
	if ld.cfg.TextAddr+textSize > ld.cfg.DataAddr {
		laySp.End()
		return nil, fmt.Errorf("link: text segment (%#x+%#x) overlaps data segment at %#x",
			ld.cfg.TextAddr, textSize, ld.cfg.DataAddr)
	}
	out.Text = make([]byte, textSize)
	for i, m := range modules {
		copy(out.Text[ld.textOff[i]:], m.Text)
		copy(out.Data[ld.dataOff[i]:], m.Data)
	}

	err := ld.buildSymbols(modules)
	laySp.End()
	if err != nil {
		return nil, err
	}
	_, resSp := ctx.Start("link.resolve")
	err = ld.applyRelocs(modules)
	resSp.End()
	if err != nil {
		return nil, err
	}

	if ld.cfg.Entry != "-" {
		e, ok := out.Lookup(ld.cfg.Entry)
		if !ok || e.Section != aout.SecText {
			return nil, fmt.Errorf("link: entry symbol %q not defined in text", ld.cfg.Entry)
		}
		out.Entry = e.Value
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("link: internal: %w", err)
	}
	return out, nil
}

// bssSection returns where a module's bss symbol lives in the output:
// the data section when ZeroBss folded it, otherwise bss.
func (ld *linker) bssSection() aout.Section {
	if ld.cfg.ZeroBss {
		return aout.SecData
	}
	return aout.SecBss
}

func (ld *linker) symBase(mi int, sec aout.Section) uint64 {
	switch sec {
	case aout.SecText:
		return ld.out.TextAddr + ld.textOff[mi]
	case aout.SecData:
		return ld.out.DataAddr + ld.dataOff[mi]
	case aout.SecBss:
		if ld.cfg.ZeroBss {
			return ld.out.DataAddr + ld.bssOff[mi]
		}
		return ld.out.BssAddr + ld.bssOff[mi]
	}
	return 0
}

func (ld *linker) buildSymbols(modules []*aout.File) error {
	ld.symIndex = make([][]int, len(modules))
	// First pass: define everything; detect duplicate globals.
	for mi, m := range modules {
		ld.symIndex[mi] = make([]int, len(m.Symbols))
		for si, s := range m.Symbols {
			ld.symIndex[mi][si] = -1
			if s.Section == aout.SecUndef {
				continue
			}
			ns := s
			if s.Section != aout.SecAbs {
				ns.Value = ld.symBase(mi, s.Section) + s.Value
				if s.Section == aout.SecBss {
					ns.Section = ld.bssSection()
				}
			}
			if s.Global {
				if prev, dup := ld.globals[s.Name]; dup {
					_ = prev
					return fmt.Errorf("link: symbol %q multiply defined", s.Name)
				}
				ld.globals[s.Name] = symAddr{mi, si}
			}
			ld.symIndex[mi][si] = len(ld.out.Symbols)
			ld.out.Symbols = append(ld.out.Symbols, ns)
		}
	}
	// Second pass: bind undefined references to the global definitions.
	var missing []string
	for mi, m := range modules {
		for si, s := range m.Symbols {
			if s.Section != aout.SecUndef {
				continue
			}
			def, ok := ld.globals[s.Name]
			if !ok {
				missing = append(missing, s.Name)
				continue
			}
			ld.symIndex[mi][si] = ld.symIndex[def.module][def.index]
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("link: undefined symbols: %v", dedup(missing))
	}
	return nil
}

func (ld *linker) applyRelocs(modules []*aout.File) error {
	for mi, m := range modules {
		for _, r := range m.Relocs {
			outSym := ld.symIndex[mi][r.Sym]
			if outSym < 0 {
				return fmt.Errorf("link: reloc against unbound symbol %q", m.Symbols[r.Sym].Name)
			}
			target := ld.out.Symbols[outSym].Value + uint64(r.Addend)
			var secBase, off uint64
			var buf []byte
			switch r.Section {
			case aout.SecText:
				secBase = ld.out.TextAddr
				off = ld.textOff[mi] + r.Offset
				buf = ld.out.Text
			case aout.SecData:
				secBase = ld.out.DataAddr
				off = ld.dataOff[mi] + r.Offset
				buf = ld.out.Data
			default:
				return fmt.Errorf("link: reloc in section %v", r.Section)
			}
			if err := Patch(buf, off, secBase+off, r.Type, target, m.Symbols[r.Sym].Name); err != nil {
				return err
			}
			// Retain the relocation, rebased into the output sections,
			// for OM's later use.
			ld.out.Relocs = append(ld.out.Relocs, aout.Reloc{
				Section: r.Section,
				Offset:  off,
				Type:    r.Type,
				Sym:     outSym,
				Addend:  r.Addend,
			})
		}
	}
	return nil
}

func align(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }

func dedup(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
