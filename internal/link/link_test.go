package link

import (
	"encoding/binary"
	"strings"
	"testing"

	"atom/internal/alpha"
	"atom/internal/aout"
	"atom/internal/asm"
)

func obj(t *testing.T, src string) *aout.File {
	t.Helper()
	f, err := asm.Assemble("t.s", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return f
}

const startSrc = `
	.text
	.globl __start
	.ent __start
__start:
	bsr ra, main
	mov v0, a0
	call_pal 0
	.end __start
`

func TestLinkTwoModules(t *testing.T) {
	a := obj(t, startSrc)
	b := obj(t, `
	.text
	.globl main
	.ent main
main:
	la t0, value
	ldq v0, 0(t0)
	ret (ra)
	.end main
	.data
	.globl value
value:	.quad 42
`)
	exe, err := Link(Config{}, []*aout.File{a, b})
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	if !exe.Linked || exe.TextAddr != DefaultTextAddr || exe.DataAddr != DefaultDataAddr {
		t.Errorf("layout: %+v", exe)
	}
	if exe.Entry != DefaultTextAddr {
		t.Errorf("entry = %#x", exe.Entry)
	}
	mainSym, ok := exe.Lookup("main")
	if !ok || mainSym.Value != DefaultTextAddr+3*4 {
		t.Errorf("main = %+v", mainSym)
	}
	// The bsr in __start (word 0) must reach main (word 3): disp 2.
	w := binary.LittleEndian.Uint32(exe.Text[0:])
	in, _ := alpha.Decode(w)
	if in.Op != alpha.OpBsr || in.Disp != 2 {
		t.Errorf("bsr patched to %v", in)
	}
	// The la pair in main must materialize value's address.
	val, _ := exe.Lookup("value")
	ldah, _ := alpha.Decode(binary.LittleEndian.Uint32(exe.Text[12:]))
	lda, _ := alpha.Decode(binary.LittleEndian.Uint32(exe.Text[16:]))
	got := int64(ldah.Disp)<<16 + int64(lda.Disp)
	if uint64(got) != val.Value {
		t.Errorf("la materializes %#x, want %#x", got, val.Value)
	}
	// Data contents preserved.
	if binary.LittleEndian.Uint64(exe.Data[0:]) != 42 {
		t.Error("data contents lost")
	}
	// Relocations retained for OM.
	if len(exe.Relocs) != 3 {
		t.Errorf("retained relocs = %d, want 3", len(exe.Relocs))
	}
}

func TestUndefinedSymbol(t *testing.T) {
	a := obj(t, startSrc)
	_, err := Link(Config{}, []*aout.File{a})
	if err == nil || !strings.Contains(err.Error(), "undefined symbols") || !strings.Contains(err.Error(), "main") {
		t.Errorf("err = %v", err)
	}
}

func TestDuplicateSymbol(t *testing.T) {
	a := obj(t, "\t.text\n\t.globl f\n\t.ent f\nf:\tret (ra)\n\t.end f\n")
	b := obj(t, "\t.text\n\t.globl f\n\t.ent f\nf:\tret (ra)\n\t.end f\n")
	_, err := Link(Config{Entry: "f"}, []*aout.File{a, b})
	if err == nil || !strings.Contains(err.Error(), "multiply defined") {
		t.Errorf("err = %v", err)
	}
}

func TestLocalSymbolsDoNotCollide(t *testing.T) {
	a := obj(t, "\t.text\n\t.globl __start\n\t.ent __start\n__start:\nloop:\tbr loop\n\t.end __start\n")
	b := obj(t, "\t.text\n\t.globl g\n\t.ent g\ng:\nloop:\tbr loop\n\t.end g\n")
	if _, err := Link(Config{}, []*aout.File{a, b}); err != nil {
		t.Errorf("Link with colliding locals: %v", err)
	}
}

func TestLibrarySelection(t *testing.T) {
	mainObj := obj(t, startSrc+`
	.text
	.globl main
	.ent main
main:
	bsr ra, helper1
	ret (ra)
	.end main
`)
	// helper1 needs helper2 (transitive); helper3 is unused.
	h1 := obj(t, "\t.text\n\t.globl helper1\n\t.ent helper1\nhelper1:\tbsr ra, helper2\n\tret (ra)\n\t.end helper1\n")
	h2 := obj(t, "\t.text\n\t.globl helper2\n\t.ent helper2\nhelper2:\tret (ra)\n\t.end helper2\n")
	h3 := obj(t, "\t.text\n\t.globl helper3\n\t.ent helper3\nhelper3:\tret (ra)\n\t.end helper3\n")
	lib := &Library{Name: "libh", Members: []*aout.File{h3, h2, h1}}
	exe, err := Link(Config{}, []*aout.File{mainObj}, lib)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	if _, ok := exe.Lookup("helper1"); !ok {
		t.Error("helper1 not linked")
	}
	if _, ok := exe.Lookup("helper2"); !ok {
		t.Error("helper2 (transitive) not linked")
	}
	if _, ok := exe.Lookup("helper3"); ok {
		t.Error("helper3 linked although unused")
	}
}

func TestZeroBss(t *testing.T) {
	a := obj(t, startSrc+`
	.text
	.globl main
	.ent main
main:	ret (ra)
	.end main
	.data
d:	.quad 1
	.bss
	.comm buf, 64
`)
	exe, err := Link(Config{ZeroBss: true}, []*aout.File{a})
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	if exe.Bss != 0 {
		t.Errorf("bss = %d, want 0", exe.Bss)
	}
	buf, ok := exe.Lookup("buf")
	if !ok || buf.Section != aout.SecData {
		t.Errorf("buf = %+v, want in .data", buf)
	}
	off := buf.Value - exe.DataAddr
	for i := uint64(0); i < 64; i++ {
		if exe.Data[off+i] != 0 {
			t.Fatalf("bss byte %d not zero-initialized", i)
		}
	}
}

func TestTextDataOverlapRejected(t *testing.T) {
	a := obj(t, startSrc+"\t.text\n\t.globl main\n\t.ent main\nmain:\tret (ra)\n\t.end main\n")
	_, err := Link(Config{TextAddr: 0x1000, DataAddr: 0x1008}, []*aout.File{a})
	if err == nil || !strings.Contains(err.Error(), "overlaps") {
		t.Errorf("err = %v", err)
	}
}

func TestEntryMissing(t *testing.T) {
	a := obj(t, "\t.text\n\t.globl f\n\t.ent f\nf:\tret (ra)\n\t.end f\n")
	if _, err := Link(Config{}, []*aout.File{a}); err == nil {
		t.Error("link without __start succeeded")
	}
	// Entry "-" skips the requirement (analysis images).
	if _, err := Link(Config{Entry: "-"}, []*aout.File{a}); err != nil {
		t.Errorf("Entry=-: %v", err)
	}
}

func TestRejectsLinkedInput(t *testing.T) {
	a := obj(t, startSrc+"\t.text\n\t.globl main\n\t.ent main\nmain:\tret (ra)\n\t.end main\n")
	exe, err := Link(Config{}, []*aout.File{a})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Link(Config{}, []*aout.File{exe}); err == nil {
		t.Error("linking an executable succeeded")
	}
}

func TestPatchBr21Range(t *testing.T) {
	buf := make([]byte, 4)
	binary.LittleEndian.PutUint32(buf, alpha.Br(alpha.OpBr, alpha.Zero, 0).MustEncode())
	if err := Patch(buf, 0, 0x1000, aout.RelBr21, 0x1000+4+(1<<20)*4, "far"); err == nil {
		t.Error("out-of-range branch accepted")
	}
	if err := Patch(buf, 0, 0x1000, aout.RelBr21, 0x1002, "odd"); err == nil {
		t.Error("misaligned branch target accepted")
	}
	if err := Patch(buf, 0, 0x1000, aout.RelBr21, 0x2000, "ok"); err != nil {
		t.Errorf("valid branch rejected: %v", err)
	}
	in, _ := alpha.Decode(binary.LittleEndian.Uint32(buf))
	if in.Disp != (0x2000-0x1004)/4 {
		t.Errorf("patched disp = %d", in.Disp)
	}
}

func TestPatchHiLoPair(t *testing.T) {
	for _, target := range []uint64{0x400000, 0x408000, 0x40FFFF, 0x7FFFFFFF & 0x7FFF7FFF} {
		buf := make([]byte, 8)
		w0 := alpha.Mem(alpha.OpLdah, alpha.T0, alpha.Zero, 0).MustEncode()
		w1 := alpha.Mem(alpha.OpLda, alpha.T0, alpha.T0, 0).MustEncode()
		binary.LittleEndian.PutUint32(buf[0:], w0)
		binary.LittleEndian.PutUint32(buf[4:], w1)
		if err := Patch(buf, 0, 0, aout.RelHi16, target, "s"); err != nil {
			t.Fatalf("hi16: %v", err)
		}
		if err := Patch(buf, 4, 4, aout.RelLo16, target, "s"); err != nil {
			t.Fatalf("lo16: %v", err)
		}
		hi, _ := alpha.Decode(binary.LittleEndian.Uint32(buf[0:]))
		lo, _ := alpha.Decode(binary.LittleEndian.Uint32(buf[4:]))
		if got := int64(hi.Disp)<<16 + int64(lo.Disp); uint64(got) != target {
			t.Errorf("pair materializes %#x, want %#x", got, target)
		}
	}
}
