package link

import (
	"encoding/binary"
	"fmt"

	"atom/internal/aout"
)

// Patch applies one relocation to the bytes at buf[off:]. site is the
// absolute address of the patched location (needed for PC-relative
// types), target is the resolved symbol address plus addend, and symName
// is used in diagnostics. It is exported because OM re-applies retained
// relocations after instrumentation moves code.
func Patch(buf []byte, off, site uint64, t aout.RelocType, target uint64, symName string) error {
	switch t {
	case aout.RelBr21:
		delta := int64(target) - int64(site+4)
		if delta%4 != 0 {
			return fmt.Errorf("link: branch to %q lands at misaligned %#x", symName, target)
		}
		disp := delta / 4
		if disp < -(1<<20) || disp >= 1<<20 {
			return fmt.Errorf("link: branch to %q out of range (%d words)", symName, disp)
		}
		w := binary.LittleEndian.Uint32(buf[off:])
		w = w&^0x1FFFFF | uint32(disp)&0x1FFFFF
		binary.LittleEndian.PutUint32(buf[off:], w)
	case aout.RelHi16:
		lo := int64(int16(target))
		hi := (int64(target) - lo) >> 16
		if hi < -0x8000 || hi > 0x7FFF {
			return fmt.Errorf("link: address of %q (%#x) exceeds ldah/lda range", symName, target)
		}
		patch16(buf, off, uint16(hi))
	case aout.RelLo16:
		patch16(buf, off, uint16(target))
	case aout.RelQuad:
		binary.LittleEndian.PutUint64(buf[off:], target)
	case aout.RelLong:
		if int64(target) < -(1<<31) || int64(target) >= 1<<32 {
			return fmt.Errorf("link: address of %q (%#x) exceeds 32 bits", symName, target)
		}
		binary.LittleEndian.PutUint32(buf[off:], uint32(target))
	default:
		return fmt.Errorf("link: unknown relocation type %v", t)
	}
	return nil
}

func patch16(buf []byte, off uint64, v uint16) {
	w := binary.LittleEndian.Uint32(buf[off:])
	w = w&^0xFFFF | uint32(v)
	binary.LittleEndian.PutUint32(buf[off:], w)
}
