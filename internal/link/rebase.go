package link

import (
	"fmt"

	"atom/internal/aout"
	"atom/internal/obs"
)

// Rebase returns a copy of a linked image moved rigidly so its text
// segment starts at newTextAddr; data and bss keep their distances from
// text. Because executables retain their relocation records, every
// absolute address constant (HI16/LO16 pairs, QUAD/LONG data) is
// re-patched against the shifted symbol values; PC-relative branch
// displacements are invariant under a rigid shift and are left alone.
//
// ATOM uses this to place a tool's analysis image — compiled and linked
// exactly once, at a canonical base — into the text-data gap of each
// application it instruments, which is how the paper's "build the tool
// once, apply it to any program" cost model is realized without a
// per-program relink.
//
// The input is not modified. When newTextAddr equals the current base the
// image itself is returned; callers must treat the result as read-only.
func Rebase(img *aout.File, newTextAddr uint64) (*aout.File, error) {
	return RebaseCtx(nil, img, newTextAddr)
}

// RebaseCtx is Rebase with a stage context: the rigid shift and its
// relocation re-patch run under a "link.rebase" span.
func RebaseCtx(ctx *obs.Ctx, img *aout.File, newTextAddr uint64) (*aout.File, error) {
	_, sp := ctx.Start("link.rebase",
		obs.Int("relocs", int64(len(img.Relocs))))
	defer sp.End()
	if !img.Linked {
		return nil, fmt.Errorf("link: rebase of unlinked module")
	}
	delta := int64(newTextAddr) - int64(img.TextAddr)
	if delta == 0 {
		return img, nil
	}
	shift := func(a uint64) uint64 { return uint64(int64(a) + delta) }

	out := &aout.File{
		Linked:   true,
		Text:     append([]byte(nil), img.Text...),
		Data:     append([]byte(nil), img.Data...),
		Bss:      img.Bss,
		TextAddr: shift(img.TextAddr),
		DataAddr: shift(img.DataAddr),
		BssAddr:  shift(img.BssAddr),
		Relocs:   img.Relocs, // section-relative offsets: unchanged
	}
	if img.Entry != 0 {
		out.Entry = shift(img.Entry)
	}
	out.Symbols = make([]aout.Symbol, len(img.Symbols))
	copy(out.Symbols, img.Symbols)
	for i := range out.Symbols {
		switch out.Symbols[i].Section {
		case aout.SecText, aout.SecData, aout.SecBss:
			out.Symbols[i].Value = shift(out.Symbols[i].Value)
		}
	}

	for _, r := range img.Relocs {
		if r.Type == aout.RelBr21 {
			continue // PC-relative: unchanged by a rigid shift
		}
		sym := out.Symbols[r.Sym]
		if sym.Section == aout.SecAbs || sym.Section == aout.SecUndef {
			continue // target does not move
		}
		target := sym.Value + uint64(r.Addend)
		var buf []byte
		var site uint64
		switch r.Section {
		case aout.SecText:
			buf, site = out.Text, out.TextAddr+r.Offset
		case aout.SecData:
			buf, site = out.Data, out.DataAddr+r.Offset
		default:
			return nil, fmt.Errorf("link: rebase: reloc in section %v", r.Section)
		}
		if err := Patch(buf, r.Offset, site, r.Type, target, sym.Name); err != nil {
			return nil, fmt.Errorf("link: rebase to %#x: %w", newTextAddr, err)
		}
	}
	return out, nil
}
