package link

import (
	"bytes"
	"testing"

	"atom/internal/aout"
)

// rebaseSrc exercises every relocation kind a rebase must handle: a BR21
// call, HI16/LO16 address materialization of a data symbol, and a QUAD
// code pointer resident in data.
const rebaseSrc = `
	.text
	.globl helper
	.ent helper
helper:
	ret (ra)
	.end helper
	.globl body
	.ent body
body:
	bsr ra, helper
	la t0, table
	ldq v0, 0(t0)
	ret (ra)
	.end body
	.data
	.globl table
table:	.quad body
	.quad 7
`

func TestRebaseMatchesDirectLink(t *testing.T) {
	mod := obj(t, rebaseSrc)
	cfg := Config{DataAfterText: true, Entry: "-", ZeroBss: true}
	at := func(base uint64) *aout.File {
		cfg := cfg
		cfg.TextAddr = base
		exe, err := Link(cfg, []*aout.File{obj(t, rebaseSrc)})
		if err != nil {
			t.Fatalf("Link at %#x: %v", base, err)
		}
		return exe
	}
	_ = mod

	canonical := at(DefaultTextAddr)
	const newBase = DefaultTextAddr + 0x12340
	want := at(newBase)
	got, err := Rebase(canonical, newBase)
	if err != nil {
		t.Fatalf("Rebase: %v", err)
	}

	if got.TextAddr != want.TextAddr || got.DataAddr != want.DataAddr || got.BssAddr != want.BssAddr {
		t.Fatalf("layout: got %#x/%#x/%#x, want %#x/%#x/%#x",
			got.TextAddr, got.DataAddr, got.BssAddr, want.TextAddr, want.DataAddr, want.BssAddr)
	}
	if !bytes.Equal(got.Text, want.Text) {
		t.Error("rebased text differs from a direct link at the new base")
	}
	if !bytes.Equal(got.Data, want.Data) {
		t.Error("rebased data differs from a direct link at the new base")
	}
	for _, name := range []string{"helper", "body", "table"} {
		g, ok1 := got.Lookup(name)
		w, ok2 := want.Lookup(name)
		if !ok1 || !ok2 || g.Value != w.Value {
			t.Errorf("symbol %s: got %#x, want %#x", name, g.Value, w.Value)
		}
	}
	// The original must be untouched.
	if canonical.TextAddr != DefaultTextAddr {
		t.Error("Rebase mutated its input")
	}
	// Rebasing back must round-trip.
	back, err := Rebase(got, DefaultTextAddr)
	if err != nil {
		t.Fatalf("Rebase back: %v", err)
	}
	if !bytes.Equal(back.Text, canonical.Text) || !bytes.Equal(back.Data, canonical.Data) {
		t.Error("rebase does not round-trip")
	}
}

func TestRebaseNoop(t *testing.T) {
	exe, err := Link(Config{DataAfterText: true, Entry: "-", ZeroBss: true},
		[]*aout.File{obj(t, rebaseSrc)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Rebase(exe, exe.TextAddr)
	if err != nil {
		t.Fatal(err)
	}
	if got != exe {
		t.Error("zero-delta rebase should return the image itself")
	}
}
