package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentFanOut hammers one Ctx from many goroutines — counters,
// histogram observations, and nested spans — while a RegistrySink is
// attached (aggregating every event) and a StreamSink subscriber drains
// concurrently. Run under -race this is the data-race gate for the
// whole fan-out path; the assertions check that nothing is lost: the
// registry's totals match the context's own deterministic snapshot
// exactly, and within every span the begin event precedes the end.
func TestConcurrentFanOut(t *testing.T) {
	reg := NewRegistrySink()
	stream := NewStreamSink()
	ctx := New(reg, stream)

	// A subscriber wide enough to hold everything: drops would make the
	// ordering check vacuous. 4 goroutines * 200 rounds * (2 counters +
	// 1 hist + 2 span events) = 4000 events, plus slack.
	const workers, rounds = 4, 200
	sub := stream.Subscribe(workers*rounds*8, false)
	var events []Event
	var drained sync.WaitGroup
	drained.Add(1)
	go func() {
		defer drained.Done()
		for ev := range sub.Events() {
			events = append(events, ev)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				sctx, sp := ctx.Start(fmt.Sprintf("work.%d", w))
				sctx.Count("shared.ticks", 1)
				sctx.Count(fmt.Sprintf("worker.%d.ops", w), 2)
				sctx.Observe("latency", int64(i))
				sp.End()
			}
		}(w)
	}

	// A snapshot loop reading the registry while the writers run: the
	// mid-flight values are unasserted (they race by design), the point
	// is that -race sees concurrent snapshot+update.
	stop := make(chan struct{})
	var snaps sync.WaitGroup
	snaps.Add(1)
	go func() {
		defer snaps.Done()
		for {
			select {
			case <-stop:
				return
			default:
				reg.Counters()
				reg.Histograms()
				reg.SpanStats()
			}
		}
	}()

	wg.Wait()
	close(stop)
	snaps.Wait()
	stream.Unsubscribe(sub)
	drained.Wait()

	// The registry must reconcile exactly with the context's own
	// counters — this is what makes a mid-run /metrics scrape agree
	// with the end-of-run -stats numbers.
	for _, c := range ctx.Counters() {
		if got := reg.Counter(c.Name); got != c.Value {
			t.Errorf("registry counter %s = %d, ctx says %d", c.Name, got, c.Value)
		}
	}
	if got := reg.Counter("shared.ticks"); got != workers*rounds {
		t.Errorf("shared.ticks = %d, want %d", got, workers*rounds)
	}
	hists := reg.Histograms()
	var lat *Hist
	for i := range hists {
		if hists[i].Name == "latency" {
			lat = &hists[i]
		}
	}
	if lat == nil || lat.Count != workers*rounds {
		t.Fatalf("latency histogram = %+v, want count %d", lat, workers*rounds)
	}
	spanCounts := map[string]int64{}
	for _, s := range reg.SpanStats() {
		spanCounts[s.Name] = s.Count
	}
	for w := 0; w < workers; w++ {
		name := fmt.Sprintf("work.%d", w)
		if got := spanCounts[name]; got != rounds {
			t.Errorf("span count %s = %d, want %d", name, got, rounds)
		}
	}

	// No drops (the buffer was sized for the full load), one strictly
	// increasing Seq, and per span ID the begin precedes the end.
	if d := stream.Dropped(); d != 0 {
		t.Fatalf("stream dropped %d events with an oversized subscriber", d)
	}
	begun := map[uint64]bool{}
	var lastSeq uint64
	for _, ev := range events {
		if ev.Seq <= lastSeq {
			t.Fatalf("event seq %d after %d: stream not totally ordered", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Type {
		case "span.begin":
			begun[ev.Span] = true
		case "span.end":
			if !begun[ev.Span] {
				t.Fatalf("span %d (%s) ended before it began", ev.Span, ev.Name)
			}
		}
	}
	wantEvents := workers * rounds * 5 // begin, end, 2 counters, 1 hist
	if len(events) != wantEvents {
		t.Errorf("subscriber saw %d events, want %d", len(events), wantEvents)
	}
}

// TestStreamSinkDrops: a subscriber with a tiny queue that never reads
// loses events — counted, not blocking. The emitting side must complete
// immediately regardless of the stalled reader.
func TestStreamSinkDrops(t *testing.T) {
	stream := NewStreamSink()
	ctx := New(stream)
	sub := stream.Subscribe(1, false)

	const n = 50
	for i := 0; i < n; i++ {
		ctx.Count("tick", 1) // never read: all but one must drop
	}
	if got := stream.Dropped(); got != n-1 {
		t.Fatalf("Dropped() = %d, want %d", got, n-1)
	}
	// The one delivered event is the first; its Dropped snapshot was 0.
	ev := <-sub.Events()
	if ev.Name != "tick" || ev.Dropped != 0 {
		t.Fatalf("delivered event = %+v, want first tick with Dropped 0", ev)
	}
	// The next event delivered after the stall carries the loss count.
	ctx.Count("after", 1)
	ev = <-sub.Events()
	if ev.Name != "after" || ev.Dropped != n-1 {
		t.Fatalf("post-stall event = %+v, want after with Dropped %d", ev, n-1)
	}
	stream.Unsubscribe(sub)
	if _, ok := <-sub.Events(); ok {
		t.Fatal("channel still open after Unsubscribe")
	}
	stream.Unsubscribe(sub) // idempotent
}

// TestStreamSinkReplay: a late subscriber is seeded with the ring-buffer
// backlog, oldest first, before any live events.
func TestStreamSinkReplay(t *testing.T) {
	stream := NewStreamSink()
	ctx := New(stream)
	for i := 0; i < 10; i++ {
		ctx.Count(fmt.Sprintf("c%d", i), 1)
	}
	sub := stream.Subscribe(64, true)
	defer stream.Unsubscribe(sub)
	for i := 0; i < 10; i++ {
		ev := <-sub.Events()
		if want := fmt.Sprintf("c%d", i); ev.Name != want || ev.Seq != uint64(i+1) {
			t.Fatalf("replay event %d = %+v, want name %s seq %d", i, ev, want, i+1)
		}
	}
	// Replay wider than the buffer: the oldest overflow is counted as
	// dropped, the newest buf events delivered.
	small := stream.Subscribe(4, true)
	defer stream.Unsubscribe(small)
	ev := <-small.Events()
	if ev.Name != "c6" || ev.Dropped != 6 {
		t.Fatalf("truncated replay starts at %+v, want c6 with Dropped 6", ev)
	}
}

// TestStreamSinkShutdown closes current subscribers but leaves the sink
// usable for later ones — the debug server restarts against the same
// process-wide stream.
func TestStreamSinkShutdown(t *testing.T) {
	stream := NewStreamSink()
	sub := stream.Subscribe(4, false)
	stream.Shutdown()
	if _, ok := <-sub.Events(); ok {
		t.Fatal("subscriber channel open after Shutdown")
	}
	ctx := New(stream)
	ctx.Count("later", 1)
	sub2 := stream.Subscribe(4, true)
	defer stream.Unsubscribe(sub2)
	found := false
	for ev := range sub2.Events() {
		if ev.Name == "later" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("post-Shutdown event not delivered to a new subscriber")
	}
}

// BenchmarkInstrumentStalledSubscriber measures the per-event cost of
// the fan-out with a stalled subscriber attached: the acceptance bar is
// that a reader that never drains slows nothing down — every send is a
// non-blocking miss that bumps a drop counter.
func BenchmarkInstrumentStalledSubscriber(b *testing.B) {
	stream := NewStreamSink()
	ctx := New(stream)
	sub := stream.Subscribe(1, false)
	defer stream.Unsubscribe(sub)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Count("bench.tick", 1)
	}
	b.StopTimer()
	if stream.Dropped() == 0 && b.N > 1 {
		b.Fatal("expected drops with a stalled subscriber")
	}
}
