package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// MetricsSink aggregates completed spans by name: how many times each
// stage ran and how long it took in total. Together with the Ctx's
// counters it renders the plain-text metrics snapshot behind
// `cmd/atom -metrics` and the per-phase numbers in the bench JSON.
type MetricsSink struct {
	mu  sync.Mutex
	agg map[string]spanAgg
}

type spanAgg struct {
	count int64
	total time.Duration
}

// SpanEnd folds the span into the per-name aggregate.
func (m *MetricsSink) SpanEnd(sd SpanData) {
	m.mu.Lock()
	if m.agg == nil {
		m.agg = map[string]spanAgg{}
	}
	a := m.agg[sd.Name]
	a.count++
	a.total += sd.Dur
	m.agg[sd.Name] = a
	m.mu.Unlock()
}

// Total returns the summed duration of all spans with the given name.
func (m *MetricsSink) Total(name string) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.agg[name].total
}

// SpanCount returns how many spans with the given name completed.
func (m *MetricsSink) SpanCount(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.agg[name].count
}

// SpanStat is one aggregated row of the metrics snapshot.
type SpanStat struct {
	Name  string
	Count int64
	Total time.Duration
}

// Stats returns the per-name aggregates sorted by name.
func (m *MetricsSink) Stats() []SpanStat {
	m.mu.Lock()
	out := make([]SpanStat, 0, len(m.agg))
	for n, a := range m.agg {
		out = append(out, SpanStat{Name: n, Count: a.count, Total: a.total})
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteTo renders the span aggregates as text, sorted by name. The
// output is a deterministic function of the aggregated data (map
// iteration never leaks into it).
func (m *MetricsSink) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	b.WriteString("# spans: name count total_ms\n")
	for _, s := range m.Stats() {
		fmt.Fprintf(&b, "%-32s %8d %12.3f\n", s.Name, s.Count, float64(s.Total.Nanoseconds())/1e6)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// FormatCounters renders counters as text, one per line. The input is
// already sorted (Ctx.Counters guarantees it), so identical runs produce
// byte-identical output — the property the determinism tests pin down.
func FormatCounters(counters []Counter) string {
	var b strings.Builder
	b.WriteString("# counters: name value\n")
	for _, c := range counters {
		fmt.Fprintf(&b, "%-32s %12d\n", c.Name, c.Value)
	}
	return b.String()
}

// FormatHistograms renders histogram snapshots as text: one header line
// per histogram followed by its non-empty buckets. The input is already
// sorted (Ctx.Histograms guarantees it) and bucket boundaries are fixed,
// so identical observations produce byte-identical output.
func FormatHistograms(hists []Hist) string {
	var b strings.Builder
	b.WriteString("# histograms: name count sum min max\n")
	for _, h := range hists {
		fmt.Fprintf(&b, "%-32s %12d %12d %12d %12d\n", h.Name, h.Count, h.Sum, h.Min, h.Max)
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, "  %-30s %12d\n", fmt.Sprintf("[%d,%d)", bk.Lo, bk.Hi), bk.Count)
		}
	}
	return b.String()
}

// WriteMetrics renders the full snapshot — span aggregates, counters,
// then histograms — to w. hists may be nil.
func WriteMetrics(w io.Writer, m *MetricsSink, counters []Counter, hists []Hist) error {
	if m != nil {
		if _, err := m.WriteTo(w); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, FormatCounters(counters)); err != nil {
		return err
	}
	if len(hists) == 0 {
		return nil
	}
	_, err := io.WriteString(w, FormatHistograms(hists))
	return err
}
