// Package obs is the observability spine of the instrumentation
// pipeline: hierarchical spans (start/end, parent, attributes) and named
// counters, delivered to pluggable sinks. One *Ctx is threaded explicitly
// through every pipeline stage — compile, assemble, link, plan, tool-image
// build, apply, run — replacing the ad-hoc time.Now() plumbing that used
// to live in internal/figures.
//
// The zero cost of disabled observability is a design requirement: a nil
// *Ctx is valid and means "off". Every method is a no-op on a nil
// receiver, so call sites never branch and the instrumented hot paths pay
// only a nil check. Sinks choose what to keep: TraceSink records every
// span for a Chrome trace_event export, MetricsSink aggregates per-name
// totals for a plain-text snapshot, Nop discards everything.
//
// All sinks and counters are safe for concurrent use; the suite fan-out
// ends spans from many goroutines at once.
package obs

import (
	"math/bits"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value attribute attached to a span. Values are stored
// as strings so every sink renders them identically and deterministically.
type Attr struct {
	Key string
	Val string
}

// String builds a string attribute.
func String(key, val string) Attr { return Attr{Key: key, Val: val} }

// Int builds an integer attribute.
func Int(key string, val int64) Attr { return Attr{Key: key, Val: strconv.FormatInt(val, 10)} }

// Bool builds a boolean attribute.
func Bool(key string, val bool) Attr { return Attr{Key: key, Val: strconv.FormatBool(val)} }

// SpanData is a completed span as delivered to sinks. Start and Dur are
// relative to the owning Ctx's epoch (the New call).
type SpanData struct {
	ID     uint64 // unique within one Ctx tree, starting at 1
	Parent uint64 // 0 for top-level spans
	Track  uint64 // ID of the top-level ancestor (trace-viewer row)
	Name   string
	Start  time.Duration
	Dur    time.Duration
	Attrs  []Attr
}

// Sink receives completed spans. Implementations must be safe for
// concurrent use; SpanEnd is called once per span, at End time.
type Sink interface {
	SpanEnd(sd SpanData)
}

// SpanBeginSink is an optional Sink extension: sinks that also implement
// it are notified when a span OPENS (Dur is zero in the delivered
// SpanData; attributes added later via SetAttr appear only at SpanEnd).
// The live event stream uses this to show work in flight.
type SpanBeginSink interface {
	SpanBegin(sd SpanData)
}

// CounterSink is an optional Sink extension: sinks that also implement
// it receive every Count call as a delta, in call order per goroutine.
// The process-wide registry and the live event stream aggregate these
// without polling the Ctx.
type CounterSink interface {
	CounterAdd(name string, delta int64)
}

// HistogramSink is an optional Sink extension: sinks that also implement
// it receive every Observe call.
type HistogramSink interface {
	HistogramObserve(name string, v int64)
}

// Nop is the do-nothing sink. Observability with only a Nop sink (or,
// cheaper, a nil *Ctx) has near-zero overhead.
type Nop struct{}

// SpanEnd discards the span.
func (Nop) SpanEnd(SpanData) {}

// root is the shared state of one Ctx tree.
type root struct {
	clock  func() time.Duration // monotonic time since the epoch
	sinks  []Sink
	nextID atomic.Uint64

	// The optional sink extensions, split out once at New so the hot
	// paths (Start, Count, Observe) fan out without type assertions.
	beginSinks   []SpanBeginSink
	counterSinks []CounterSink
	histSinks    []HistogramSink

	mu       sync.Mutex
	counters map[string]int64
	hists    map[string]*histData
}

// Ctx is the stage context threaded through the pipeline. It names a
// position in the span tree: Start opens a child span of the current
// position and returns the context for work inside it. A nil *Ctx
// disables observability; all methods are no-ops on nil.
type Ctx struct {
	r      *root
	parent uint64 // current parent span ID (0 = top level)
	track  uint64 // track of the enclosing top-level span (0 = none yet)
}

// New returns a fresh context delivering completed spans to the given
// sinks. The epoch for span timestamps is the moment of the call.
func New(sinks ...Sink) *Ctx {
	start := time.Now()
	return newCtx(func() time.Duration { return time.Since(start) }, sinks...)
}

// newCtx builds a context over an explicit clock; tests inject a fixed
// one to get byte-identical output.
func newCtx(clock func() time.Duration, sinks ...Sink) *Ctx {
	r := &root{
		clock:    clock,
		sinks:    sinks,
		counters: map[string]int64{},
		hists:    map[string]*histData{},
	}
	for _, s := range sinks {
		if b, ok := s.(SpanBeginSink); ok {
			r.beginSinks = append(r.beginSinks, b)
		}
		if c, ok := s.(CounterSink); ok {
			r.counterSinks = append(r.counterSinks, c)
		}
		if h, ok := s.(HistogramSink); ok {
			r.histSinks = append(r.histSinks, h)
		}
	}
	return &Ctx{r: r}
}

// Enabled reports whether observability is on.
func (c *Ctx) Enabled() bool { return c != nil }

// Span is one open span. End completes it and delivers it to the sinks.
// A nil *Span (from a nil Ctx) is valid; SetAttr and End are no-ops.
type Span struct {
	r      *root
	id     uint64
	parent uint64
	track  uint64
	name   string
	start  time.Duration
	attrs  []Attr
	ended  atomic.Bool
}

// Start opens a span named name under the current position and returns
// the child context (for work inside the span) and the span itself.
// Both are nil when c is nil.
func (c *Ctx) Start(name string, attrs ...Attr) (*Ctx, *Span) {
	if c == nil {
		return nil, nil
	}
	id := c.r.nextID.Add(1)
	track := c.track
	if track == 0 {
		track = id
	}
	sp := &Span{
		r:      c.r,
		id:     id,
		parent: c.parent,
		track:  track,
		name:   name,
		start:  c.r.clock(),
		attrs:  attrs,
	}
	for _, b := range c.r.beginSinks {
		b.SpanBegin(SpanData{
			ID:     sp.id,
			Parent: sp.parent,
			Track:  sp.track,
			Name:   sp.name,
			Start:  sp.start,
			Attrs:  sp.attrs,
		})
	}
	return &Ctx{r: c.r, parent: id, track: track}, sp
}

// SetAttr attaches attributes to the span; call before End. Safe on nil.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End completes the span and delivers it to every sink. Ending twice (or
// ending a nil span) is a no-op.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	sd := SpanData{
		ID:     s.id,
		Parent: s.parent,
		Track:  s.track,
		Name:   s.name,
		Start:  s.start,
		Dur:    s.r.clock() - s.start,
		Attrs:  s.attrs,
	}
	for _, sink := range s.r.sinks {
		sink.SpanEnd(sd)
	}
}

// Count adds delta to the named counter. Counters live on the Ctx tree,
// not on any sink, so every stage reports through the same interface the
// spans use. Safe on nil and for concurrent use.
func (c *Ctx) Count(name string, delta int64) {
	if c == nil {
		return
	}
	c.r.mu.Lock()
	c.r.counters[name] += delta
	c.r.mu.Unlock()
	for _, s := range c.r.counterSinks {
		s.CounterAdd(name, delta)
	}
}

// Counter is one named counter value.
type Counter struct {
	Name  string
	Value int64
}

// Counters returns a snapshot of every counter, sorted by name (so any
// rendering of it is deterministic). Nil on a nil context.
func (c *Ctx) Counters() []Counter {
	if c == nil {
		return nil
	}
	c.r.mu.Lock()
	out := make([]Counter, 0, len(c.r.counters))
	for n, v := range c.r.counters {
		out = append(out, Counter{Name: n, Value: v})
	}
	c.r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// numHistBuckets is the fixed bucket count of every histogram: bucket 0
// holds values <= 0 (range [0,1)), bucket b >= 1 holds values in
// [2^(b-1), 2^b). A positive int64 has at most 63 significant bits, so 64
// buckets cover the full range.
const numHistBuckets = 64

// histData is the live (locked) state of one histogram.
type histData struct {
	buckets  [numHistBuckets]uint64
	count    uint64
	sum      int64
	min, max int64
}

// histBucketOf returns the bucket index for a value.
func histBucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// observe folds one value into the histogram. The caller holds the lock
// guarding h.
func (h *histData) observe(v int64) {
	h.buckets[histBucketOf(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if h.count == 1 || v > h.max {
		h.max = v
	}
}

// snapshot renders the histogram's current state with only non-empty
// buckets listed, in ascending value order. The caller holds the lock
// guarding h.
func (h *histData) snapshot(name string) Hist {
	s := Hist{Name: name, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for b, cnt := range h.buckets {
		if cnt == 0 {
			continue
		}
		lo, hi := uint64(0), uint64(1)
		if b > 0 {
			lo, hi = uint64(1)<<(b-1), uint64(1)<<b
		}
		s.Buckets = append(s.Buckets, HistBucket{Lo: lo, Hi: hi, Count: cnt})
	}
	return s
}

// Observe records one value into the named histogram. Histograms have
// fixed log-scale (power-of-two) buckets, so the aggregate — unlike a
// quantile sketch — is a deterministic function of the observed values,
// and identical runs render identical snapshots. Safe on nil and for
// concurrent use.
func (c *Ctx) Observe(name string, v int64) {
	if c == nil {
		return
	}
	c.r.mu.Lock()
	h := c.r.hists[name]
	if h == nil {
		h = &histData{}
		c.r.hists[name] = h
	}
	h.observe(v)
	c.r.mu.Unlock()
	for _, s := range c.r.histSinks {
		s.HistogramObserve(name, v)
	}
}

// HistBucket is one non-empty bucket of a histogram snapshot: Count
// observations fell in the value range [Lo, Hi).
type HistBucket struct {
	Lo, Hi uint64
	Count  uint64
}

// Hist is a snapshot of one named histogram.
type Hist struct {
	Name     string
	Count    uint64
	Sum      int64
	Min, Max int64 // observed extremes (both zero when Count is 0)
	Buckets  []HistBucket
}

// Histograms returns a snapshot of every histogram, sorted by name, with
// only non-empty buckets listed (in ascending value order). Nil on a nil
// context.
func (c *Ctx) Histograms() []Hist {
	if c == nil {
		return nil
	}
	c.r.mu.Lock()
	out := make([]Hist, 0, len(c.r.hists))
	for n, h := range c.r.hists {
		out = append(out, h.snapshot(n))
	}
	c.r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MergeHists merges histogram snapshots by name: counts, sums, and
// per-bucket tallies add, observed extremes widen. Because buckets are
// fixed powers of two, merging per-stage snapshots yields exactly the
// document one shared context would have produced. Output is sorted the
// same way Histograms sorts.
func MergeHists(snaps ...[]Hist) []Hist {
	byName := map[string]*Hist{}
	var names []string
	for _, snap := range snaps {
		for _, h := range snap {
			m := byName[h.Name]
			if m == nil {
				c := h
				c.Buckets = append([]HistBucket(nil), h.Buckets...)
				byName[h.Name] = &c
				names = append(names, h.Name)
				continue
			}
			if h.Count > 0 {
				if m.Count == 0 || h.Min < m.Min {
					m.Min = h.Min
				}
				if m.Count == 0 || h.Max > m.Max {
					m.Max = h.Max
				}
			}
			m.Count += h.Count
			m.Sum += h.Sum
			for _, b := range h.Buckets {
				merged := false
				for i := range m.Buckets {
					if m.Buckets[i].Lo == b.Lo {
						m.Buckets[i].Count += b.Count
						merged = true
						break
					}
				}
				if !merged {
					m.Buckets = append(m.Buckets, b)
				}
			}
		}
	}
	sort.Strings(names)
	out := make([]Hist, 0, len(names))
	for _, n := range names {
		h := *byName[n]
		sort.Slice(h.Buckets, func(i, j int) bool { return h.Buckets[i].Lo < h.Buckets[j].Lo })
		out = append(out, h)
	}
	return out
}
