package obs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fixedClock returns a clock that advances by step on every reading, so
// span timestamps are a deterministic function of call order.
func fixedClock(step time.Duration) func() time.Duration {
	var t time.Duration
	return func() time.Duration {
		t += step
		return t
	}
}

// TestSpanNesting drives a table of span-tree shapes and checks the
// parent/track bookkeeping the trace export relies on.
func TestSpanNesting(t *testing.T) {
	cases := []struct {
		name string
		run  func(c *Ctx)
		want map[string]string // span name -> parent span name ("" = root)
	}{
		{
			name: "flat",
			run: func(c *Ctx) {
				_, a := c.Start("a")
				a.End()
				_, b := c.Start("b")
				b.End()
			},
			want: map[string]string{"a": "", "b": ""},
		},
		{
			name: "nested",
			run: func(c *Ctx) {
				cc, a := c.Start("a")
				ccc, b := cc.Start("b")
				_, d := ccc.Start("c")
				d.End()
				b.End()
				a.End()
			},
			want: map[string]string{"a": "", "b": "a", "c": "b"},
		},
		{
			name: "siblings-under-parent",
			run: func(c *Ctx) {
				cc, p := c.Start("p")
				_, x := cc.Start("x")
				x.End()
				_, y := cc.Start("y")
				y.End()
				p.End()
			},
			want: map[string]string{"p": "", "x": "p", "y": "p"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := &TraceSink{}
			c := newCtx(fixedClock(time.Millisecond), ts)
			tc.run(c)
			spans := ts.Spans()
			byID := map[uint64]SpanData{}
			for _, s := range spans {
				byID[s.ID] = s
			}
			got := map[string]string{}
			for _, s := range spans {
				parent := ""
				if s.Parent != 0 {
					parent = byID[s.Parent].Name
				}
				got[s.Name] = parent
				// Track must always be the top-level ancestor.
				top := s
				for top.Parent != 0 {
					top = byID[top.Parent]
				}
				if s.Track != top.ID {
					t.Errorf("span %s: track %d, want top-level ancestor %d", s.Name, s.Track, top.ID)
				}
			}
			if len(got) != len(tc.want) {
				t.Fatalf("got %d spans %v, want %d", len(got), got, len(tc.want))
			}
			for name, parent := range tc.want {
				if got[name] != parent {
					t.Errorf("span %s: parent %q, want %q", name, got[name], parent)
				}
			}
		})
	}
}

// TestSpanTiming checks that durations are measured between Start and End
// and that double-End is idempotent.
func TestSpanTiming(t *testing.T) {
	ts := &TraceSink{}
	c := newCtx(fixedClock(time.Millisecond), ts)
	_, sp := c.Start("work") // start at 1ms
	sp.End()                 // end at 2ms
	sp.End()                 // ignored
	spans := ts.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1 (double End must not deliver twice)", len(spans))
	}
	if spans[0].Start != time.Millisecond || spans[0].Dur != time.Millisecond {
		t.Errorf("span start %v dur %v, want 1ms and 1ms", spans[0].Start, spans[0].Dur)
	}
}

// TestCounters exercises counter accounting, including concurrent adds.
func TestCounters(t *testing.T) {
	cases := []struct {
		name string
		add  []Counter // sequence of (name, delta) adds
		want []Counter // expected sorted snapshot
	}{
		{
			name: "accumulate",
			add:  []Counter{{"a", 1}, {"b", 10}, {"a", 2}},
			want: []Counter{{"a", 3}, {"b", 10}},
		},
		{
			name: "sorted-output",
			add:  []Counter{{"z", 1}, {"m", 1}, {"a", 1}},
			want: []Counter{{"a", 1}, {"m", 1}, {"z", 1}},
		},
		{
			name: "negative-deltas",
			add:  []Counter{{"n", 5}, {"n", -2}},
			want: []Counter{{"n", 3}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New()
			for _, a := range tc.add {
				c.Count(a.Name, a.Value)
			}
			got := c.Counters()
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("counter %d: got %v, want %v", i, got[i], tc.want[i])
				}
			}
		})
	}

	t.Run("concurrent", func(t *testing.T) {
		c := New()
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 1000; i++ {
					c.Count("shared", 1)
				}
			}()
		}
		wg.Wait()
		if got := c.Counters(); len(got) != 1 || got[0].Value != 8000 {
			t.Errorf("got %v, want [{shared 8000}]", got)
		}
	})
}

// TestNilCtx checks the no-op contract: every operation on a nil context
// (and the nil spans it hands out) must be safe.
func TestNilCtx(t *testing.T) {
	var c *Ctx
	if c.Enabled() {
		t.Error("nil ctx reports enabled")
	}
	cc, sp := c.Start("x", String("k", "v"))
	if cc != nil || sp != nil {
		t.Fatal("nil ctx Start must return nils")
	}
	sp.SetAttr(Int("n", 1))
	sp.End()
	c.Count("n", 1)
	if got := c.Counters(); got != nil {
		t.Errorf("nil ctx counters = %v, want nil", got)
	}
}

// BenchmarkDisabled measures the disabled-observability overhead the
// pipeline pays on every instrumented call site.
func BenchmarkDisabled(b *testing.B) {
	var c *Ctx
	for i := 0; i < b.N; i++ {
		cc, sp := c.Start("x")
		cc.Count("n", 1)
		sp.End()
	}
}

// TestTraceRoundTrip exports a trace and parses it back.
func TestTraceRoundTrip(t *testing.T) {
	ts := &TraceSink{}
	c := newCtx(fixedClock(time.Millisecond), ts)
	cc, outer := c.Start("outer", String("tool", "cache"))
	_, inner := cc.Start("inner", Int("sites", 42))
	inner.End()
	outer.End()

	data, err := ts.MarshalTrace()
	if err != nil {
		t.Fatal(err)
	}
	evs, err := ParseTrace(data)
	if err != nil {
		t.Fatalf("ParseTrace: %v\n%s", err, data)
	}
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Name != "outer" || evs[1].Name != "inner" {
		t.Errorf("event order %q, %q; want outer, inner (start order)", evs[0].Name, evs[1].Name)
	}
	if evs[0].Args["tool"] != "cache" || evs[1].Args["sites"] != "42" {
		t.Errorf("args not preserved: %v %v", evs[0].Args, evs[1].Args)
	}
	if _, err := ParseTrace([]byte("not json")); err == nil {
		t.Error("ParseTrace accepted garbage")
	}
	if _, err := ParseTrace([]byte(`{"traceEvents":[{"ph":"X"}]}`)); err == nil {
		t.Error("ParseTrace accepted a nameless event")
	}
}

// TestDeterministicEmission replays identical span and counter streams
// into fresh sinks and requires byte-identical rendered output — the
// property that makes metric files diffable across runs.
func TestDeterministicEmission(t *testing.T) {
	emit := func() (trace, metrics, counters []byte) {
		ts := &TraceSink{}
		ms := &MetricsSink{}
		c := newCtx(fixedClock(time.Millisecond), ts, ms)
		// Span names deliberately out of sorted order.
		for _, name := range []string{"zeta", "alpha", "mid", "alpha"} {
			_, sp := c.Start(name, String("k", name))
			sp.End()
		}
		c.Count("z.last", 3)
		c.Count("a.first", 1)
		c.Count("a.first", 1)
		c.Observe("h.depth", 3)
		c.Observe("h.depth", 900)
		tr, err := ts.MarshalTrace()
		if err != nil {
			t.Fatal(err)
		}
		var mbuf bytes.Buffer
		if err := WriteMetrics(&mbuf, ms, c.Counters(), c.Histograms()); err != nil {
			t.Fatal(err)
		}
		return tr, mbuf.Bytes(), []byte(FormatCounters(c.Counters()))
	}
	t1, m1, c1 := emit()
	t2, m2, c2 := emit()
	if !bytes.Equal(t1, t2) {
		t.Errorf("trace output differs between identical runs:\n%s\n--\n%s", t1, t2)
	}
	if !bytes.Equal(m1, m2) {
		t.Errorf("metrics output differs between identical runs:\n%s\n--\n%s", m1, m2)
	}
	if !bytes.Equal(c1, c2) {
		t.Errorf("counter output differs between identical runs:\n%s\n--\n%s", c1, c2)
	}
	// Counters must render in sorted order regardless of insertion order.
	want := "# counters: name value\n" +
		fmt.Sprintf("%-32s %12d\n", "a.first", 2) +
		fmt.Sprintf("%-32s %12d\n", "z.last", 3)
	if string(c1) != want {
		t.Errorf("counter rendering:\n%q\nwant:\n%q", c1, want)
	}
}

// TestHistogramBuckets checks the log2 bucketing: each observation lands
// in the [2^(b-1), 2^b) bucket, non-positive values in [0, 1).
func TestHistogramBuckets(t *testing.T) {
	c := New(Nop{})
	for _, v := range []int64{-5, 0, 1, 2, 3, 4, 7, 8, 1024, 1025} {
		c.Observe("lat", v)
	}
	hists := c.Histograms()
	if len(hists) != 1 {
		t.Fatalf("got %d histograms, want 1", len(hists))
	}
	h := hists[0]
	if h.Name != "lat" || h.Count != 10 {
		t.Fatalf("got %q count=%d, want lat count=10", h.Name, h.Count)
	}
	if h.Min != -5 || h.Max != 1025 {
		t.Errorf("min/max = %d/%d, want -5/1025", h.Min, h.Max)
	}
	if h.Sum != -5+0+1+2+3+4+7+8+1024+1025 {
		t.Errorf("sum = %d", h.Sum)
	}
	want := map[[2]uint64]uint64{
		{0, 1}:       2, // -5, 0
		{1, 2}:       1, // 1
		{2, 4}:       2, // 2, 3
		{4, 8}:       2, // 4, 7
		{8, 16}:      1, // 8
		{1024, 2048}: 2, // 1024, 1025
	}
	if len(h.Buckets) != len(want) {
		t.Fatalf("got %d non-empty buckets, want %d: %+v", len(h.Buckets), len(want), h.Buckets)
	}
	for _, b := range h.Buckets {
		if want[[2]uint64{b.Lo, b.Hi}] != b.Count {
			t.Errorf("bucket [%d,%d) count=%d, want %d", b.Lo, b.Hi, b.Count, want[[2]uint64{b.Lo, b.Hi}])
		}
	}
}

// TestHistogramNilAndOrder: nil contexts swallow observations, and
// snapshots come back sorted by name for deterministic rendering.
func TestHistogramNilAndOrder(t *testing.T) {
	var nilCtx *Ctx
	nilCtx.Observe("x", 1) // must not panic
	if got := nilCtx.Histograms(); got != nil {
		t.Errorf("nil ctx histograms = %v, want nil", got)
	}

	c := New(Nop{})
	c.Observe("zeta", 1)
	c.Observe("alpha", 2)
	c.Observe("mid", 3)
	hists := c.Histograms()
	var names []string
	for _, h := range hists {
		names = append(names, h.Name)
	}
	if fmt.Sprint(names) != "[alpha mid zeta]" {
		t.Errorf("histogram order = %v, want sorted by name", names)
	}
	// Child contexts aggregate into the root, like counters do.
	child, sp := c.Start("phase")
	child.Observe("alpha", 10)
	sp.End()
	for _, h := range c.Histograms() {
		if h.Name == "alpha" && h.Count != 2 {
			t.Errorf("alpha count = %d after child observe, want 2", h.Count)
		}
	}
}
