package obs

import (
	"sort"
	"sync"
	"time"
)

// RegistrySink is the process-wide metric aggregate behind the live
// telemetry endpoint: counters, log2 histograms, and per-name span
// aggregates, fed by events rather than polled from a Ctx, so one
// RegistrySink attached to every live context sees the union of their
// activity as it happens — including contexts that have since been
// dropped. It implements Sink, CounterSink, and HistogramSink; attach
// it with obs.New(..., sink) or read it concurrently from a scrape
// handler (all methods are safe for concurrent use).
//
// Unlike a Ctx, a RegistrySink outlives any one pipeline invocation:
// totals only ever grow, which is exactly the monotonicity a Prometheus
// counter or native histogram requires.
type RegistrySink struct {
	mu       sync.Mutex
	counters map[string]int64
	hists    map[string]*histData
	spans    map[string]spanAgg
}

// NewRegistrySink returns an empty registry sink.
func NewRegistrySink() *RegistrySink {
	return &RegistrySink{
		counters: map[string]int64{},
		hists:    map[string]*histData{},
		spans:    map[string]spanAgg{},
	}
}

// SpanEnd folds the completed span into the per-name aggregate.
func (r *RegistrySink) SpanEnd(sd SpanData) {
	r.mu.Lock()
	a := r.spans[sd.Name]
	a.count++
	a.total += sd.Dur
	r.spans[sd.Name] = a
	r.mu.Unlock()
}

// CounterAdd adds delta to the named counter total.
func (r *RegistrySink) CounterAdd(name string, delta int64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// HistogramObserve folds one value into the named histogram.
func (r *RegistrySink) HistogramObserve(name string, v int64) {
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &histData{}
		r.hists[name] = h
	}
	h.observe(v)
	r.mu.Unlock()
}

// Counters returns a snapshot of every counter total, sorted by name.
func (r *RegistrySink) Counters() []Counter {
	r.mu.Lock()
	out := make([]Counter, 0, len(r.counters))
	for n, v := range r.counters {
		out = append(out, Counter{Name: n, Value: v})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Counter returns the current total of one named counter.
func (r *RegistrySink) Counter(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Histograms returns a snapshot of every histogram, sorted by name, with
// only non-empty buckets listed.
func (r *RegistrySink) Histograms() []Hist {
	r.mu.Lock()
	out := make([]Hist, 0, len(r.hists))
	for n, h := range r.hists {
		out = append(out, h.snapshot(n))
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SpanStats returns the per-name span aggregates sorted by name.
func (r *RegistrySink) SpanStats() []SpanStat {
	r.mu.Lock()
	out := make([]SpanStat, 0, len(r.spans))
	for n, a := range r.spans {
		out = append(out, SpanStat{Name: n, Count: a.count, Total: a.total})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SpanTotal returns the summed duration of completed spans with the
// given name.
func (r *RegistrySink) SpanTotal(name string) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spans[name].total
}
