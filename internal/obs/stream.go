package obs

import (
	"sync"
	"time"
)

// Event is one live telemetry event as streamed over /debug/events:
// a span opening or closing, a counter delta, or a histogram
// observation. Span IDs are unique within one Ctx tree only; Seq is the
// stream-wide total order.
type Event struct {
	Seq    uint64            `json:"seq"`
	TimeUS int64             `json:"t_us"` // microseconds since the sink was created
	Type   string            `json:"type"` // "span.begin" | "span.end" | "counter" | "hist"
	Name   string            `json:"name"`
	Span   uint64            `json:"span,omitempty"`   // span ID (span.* events)
	Parent uint64            `json:"parent,omitempty"` // parent span ID
	DurUS  int64             `json:"dur_us,omitempty"` // span duration (span.end only)
	Value  int64             `json:"value,omitempty"`  // counter delta / observed value
	Attrs  map[string]string `json:"attrs,omitempty"`
	// Dropped is the cumulative number of events this SUBSCRIBER has
	// missed because its queue was full when they were broadcast. A gap
	// in Seq plus a growing Dropped tells a reader exactly what it lost.
	Dropped uint64 `json:"dropped,omitempty"`
}

// streamRingSize bounds the replay buffer: a new subscriber is seeded
// with up to this many of the most recent events before the live tail,
// so a reader that attaches mid-run still sees how the run got here.
const streamRingSize = 4096

// StreamSink broadcasts telemetry events to any number of subscribers.
// It implements Sink, SpanBeginSink, CounterSink, and HistogramSink.
//
// Delivery is strictly non-blocking: each subscriber has a bounded
// queue, and an event that finds the queue full is counted against that
// subscriber's drop counter instead of being delivered. A stalled or
// slow reader therefore can never back-pressure the instrumentation
// pipeline — the acceptance bar for putting this sink on by default
// whenever the debug server runs.
type StreamSink struct {
	start time.Time

	mu      sync.Mutex
	seq     uint64
	ring    []Event // circular: last streamRingSize events, for replay
	ringPos int     // index of the oldest event once the ring is full
	subs    map[*Subscriber]struct{}

	dropped uint64 // total drops across all subscribers, ever
}

// NewStreamSink returns an empty stream with no subscribers.
func NewStreamSink() *StreamSink {
	return &StreamSink{start: time.Now(), subs: map[*Subscriber]struct{}{}}
}

// Subscriber is one registered reader of a StreamSink.
type Subscriber struct {
	ch      chan Event
	dropped uint64 // guarded by the owning sink's mu
}

// Events returns the subscriber's delivery channel. It is closed when
// the subscriber is cancelled or the sink shuts down.
func (s *Subscriber) Events() <-chan Event { return s.ch }

// Subscribe registers a reader with a queue of the given capacity
// (a non-positive buf gets a default of 256). Replay seeds the queue
// with the buffered recent events first — oldest that fit — then the
// live tail follows. Cancel with Unsubscribe.
func (t *StreamSink) Subscribe(buf int, replay bool) *Subscriber {
	if buf <= 0 {
		buf = 256
	}
	sub := &Subscriber{ch: make(chan Event, buf)}
	t.mu.Lock()
	defer t.mu.Unlock()
	if replay {
		back := make([]Event, 0, len(t.ring))
		if len(t.ring) == streamRingSize {
			back = append(back, t.ring[t.ringPos:]...)
			back = append(back, t.ring[:t.ringPos]...)
		} else {
			back = append(back, t.ring...)
		}
		if len(back) > buf {
			sub.dropped += uint64(len(back) - buf)
			t.dropped += uint64(len(back) - buf)
			back = back[len(back)-buf:]
		}
		for _, ev := range back {
			ev.Dropped = sub.dropped
			sub.ch <- ev // fits by construction
		}
	}
	t.subs[sub] = struct{}{}
	return sub
}

// Unsubscribe cancels a subscriber and closes its channel. Safe to call
// twice, and on a subscriber of a shut-down sink.
func (t *StreamSink) Unsubscribe(sub *Subscriber) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.subs[sub]; !ok {
		return
	}
	delete(t.subs, sub)
	close(sub.ch)
}

// Shutdown cancels every current subscriber and closes their channels.
// The sink itself stays usable (a restarted debug server can subscribe
// again); the point is that an open /debug/events request terminates
// instead of hanging past server teardown.
func (t *StreamSink) Shutdown() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for sub := range t.subs {
		close(sub.ch)
	}
	t.subs = map[*Subscriber]struct{}{}
}

// Dropped returns the total number of events dropped across all
// subscribers since the sink was created.
func (t *StreamSink) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// emit assigns the next sequence number and broadcasts under the lock,
// so subscribers observe one total order: an event enqueued for any
// subscriber is enqueued in Seq order, and a span's begin always
// precedes its end. The send itself never blocks.
func (t *StreamSink) emit(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	ev.Seq = t.seq
	ev.TimeUS = time.Since(t.start).Microseconds()
	if len(t.ring) < streamRingSize {
		t.ring = append(t.ring, ev)
	} else {
		// Full: overwrite the oldest in place — O(1) per event, where
		// shifting the slice would copy the whole ring every emit.
		t.ring[t.ringPos] = ev
		t.ringPos = (t.ringPos + 1) % streamRingSize
	}
	for sub := range t.subs {
		ev.Dropped = sub.dropped
		select {
		case sub.ch <- ev:
		default:
			sub.dropped++
			t.dropped++
		}
	}
}

// attrMap renders span attributes for the wire. Nil for none.
func attrMap(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Val
	}
	return m
}

// SpanBegin broadcasts a span opening.
func (t *StreamSink) SpanBegin(sd SpanData) {
	t.emit(Event{Type: "span.begin", Name: sd.Name, Span: sd.ID, Parent: sd.Parent, Attrs: attrMap(sd.Attrs)})
}

// SpanEnd broadcasts a span completion, with its duration and final
// attributes (cache and store outcomes ride here).
func (t *StreamSink) SpanEnd(sd SpanData) {
	t.emit(Event{Type: "span.end", Name: sd.Name, Span: sd.ID, Parent: sd.Parent,
		DurUS: sd.Dur.Microseconds(), Attrs: attrMap(sd.Attrs)})
}

// CounterAdd broadcasts a counter delta.
func (t *StreamSink) CounterAdd(name string, delta int64) {
	t.emit(Event{Type: "counter", Name: name, Value: delta})
}

// HistogramObserve broadcasts a histogram observation.
func (t *StreamSink) HistogramObserve(name string, v int64) {
	t.emit(Event{Type: "hist", Name: name, Value: v})
}
