package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// TraceSink records every completed span and exports them in the Chrome
// trace_event format (chrome://tracing, Perfetto, speedscope). Complete
// events ("ph":"X") are used: one per span, with microsecond timestamps
// relative to the Ctx epoch. The Track of each span selects the tid, so
// concurrent top-level spans (the suite fan-out's per-program applies)
// render on separate rows while nested spans stack by time containment.
type TraceSink struct {
	mu    sync.Mutex
	spans []SpanData
}

// SpanEnd records the span.
func (t *TraceSink) SpanEnd(sd SpanData) {
	t.mu.Lock()
	t.spans = append(t.spans, sd)
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans, sorted by start time (ties
// broken by ID, which reflects Start order).
func (t *TraceSink) Spans() []SpanData {
	t.mu.Lock()
	out := append([]SpanData(nil), t.spans...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// TraceEvent is one Chrome trace_event record, as marshalled by WriteTo
// and unmarshalled by ParseTrace.
type TraceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Tid  uint64            `json:"tid"`
	Ts   float64           `json:"ts"`  // microseconds since the epoch
	Dur  float64           `json:"dur"` // microseconds
	Args map[string]string `json:"args,omitempty"`
}

// traceDoc is the JSON-object trace container both Chrome and Perfetto
// accept.
type traceDoc struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Events renders the recorded spans as trace events, in start order.
func (t *TraceSink) Events() []TraceEvent {
	spans := t.Spans()
	evs := make([]TraceEvent, 0, len(spans))
	for _, sd := range spans {
		ev := TraceEvent{
			Name: sd.Name,
			Cat:  "atom",
			Ph:   "X",
			Pid:  1,
			Tid:  sd.Track,
			Ts:   float64(sd.Start.Nanoseconds()) / 1e3,
			Dur:  float64(sd.Dur.Nanoseconds()) / 1e3,
		}
		if len(sd.Attrs) > 0 {
			ev.Args = make(map[string]string, len(sd.Attrs))
			for _, a := range sd.Attrs {
				ev.Args[a.Key] = a.Val
			}
		}
		evs = append(evs, ev)
	}
	return evs
}

// MarshalTrace renders the recorded spans as a Chrome trace-event JSON
// document. Events are ordered by start time and map keys are emitted
// sorted (encoding/json), so the bytes are a deterministic function of
// the recorded data.
func (t *TraceSink) MarshalTrace() ([]byte, error) {
	doc := traceDoc{TraceEvents: t.Events(), DisplayTimeUnit: "ms"}
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile writes the trace document to path.
func (t *TraceSink) WriteFile(path string) error {
	data, err := t.MarshalTrace()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ParseTrace parses a Chrome trace-event JSON document (the object form
// WriteFile emits, or a bare event array) and validates its shape: every
// event must carry a name and a phase, with non-negative timestamps.
func ParseTrace(data []byte) ([]TraceEvent, error) {
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		// Chrome also accepts a bare JSON array of events.
		var evs []TraceEvent
		if err2 := json.Unmarshal(data, &evs); err2 != nil {
			return nil, fmt.Errorf("obs: not a trace-event document: %w", err)
		}
		doc.TraceEvents = evs
	}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			return nil, fmt.Errorf("obs: trace event %d has no name", i)
		}
		if ev.Ph == "" {
			return nil, fmt.Errorf("obs: trace event %d (%s) has no phase", i, ev.Name)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			return nil, fmt.Errorf("obs: trace event %d (%s) has negative time", i, ev.Name)
		}
	}
	return doc.TraceEvents, nil
}
