// Package analysis is a pluggable static-analysis pass manager over the
// OM IR. Where the rest of the pipeline exploits the IR dynamically
// (instrumenting and counting), this package asks static questions of
// the same substrate: does the application read a register no definition
// reaches, is every procedure's stack balanced, what does the call graph
// look like, and — before an image is ever applied — do the tool's own
// analysis routines respect the save discipline the instrumenter relies
// on.
//
// A Pass runs over one Unit (an application executable's IR, or the
// lifted IR of a built tool image) and reports Findings keyed by
// ORIGINAL program counter and procedure name, so reports are stable
// across instrumentation runs and byte-identical across processes.
// Passes register themselves at init; Run executes a selection under
// "om.analyze" observability spans. Future tool families (shadow-memory
// memcheck, taint) register their own passes the same way.
package analysis

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"atom/internal/obs"
	"atom/internal/om"
)

// Severity ranks a finding. Info findings are reports (a dead procedure
// may be intentional); Warn and Error findings make a unit non-clean and
// fail the -analyze exit status, and Error findings additionally fail
// the -vet verify stages.
type Severity int

const (
	Info Severity = iota
	Warn
	Error
)

// String returns the lower-case severity name.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	}
	return fmt.Sprintf("sev%d?", int(s))
}

// Finding is one diagnostic. Addr is the ORIGINAL PC of the offending
// instruction (the procedure's entry address for procedure-level
// findings, 0 for whole-program findings); Proc is the enclosing
// procedure's name ("" for whole-program findings).
type Finding struct {
	Pass string
	Sev  Severity
	Proc string
	Addr uint64
	Msg  string
}

// String renders the finding in the fixed single-line form the text
// report and the CI gates consume.
func (f Finding) String() string {
	loc := ""
	if f.Proc != "" || f.Addr != 0 {
		loc = fmt.Sprintf("pc %#x (%s): ", f.Addr, f.Proc)
	}
	return fmt.Sprintf("[%s] %s: %s%s", f.Pass, f.Sev, loc, f.Msg)
}

// UnitKind says what a Unit's IR was lifted from; passes declare which
// kinds they apply to (the call graph needs an application entry point,
// the tool lint only makes sense on analysis code).
type UnitKind int

const (
	Application UnitKind = iota
	ToolImage
)

// String returns the kind's report name.
func (k UnitKind) String() string {
	if k == ToolImage {
		return "tool image"
	}
	return "application"
}

// Unit is one analysis subject: a lifted program and what it is.
type Unit struct {
	Name string
	Kind UnitKind
	Prog *om.Program
}

// Pass is one registered static analysis.
type Pass interface {
	// Name is the stable identifier used by -passes, report lines, and
	// span attributes.
	Name() string
	// Desc is a one-line description for listings.
	Desc() string
	// Applies reports whether the pass is meaningful for a unit kind.
	Applies(k UnitKind) bool
	// Run analyzes the unit. Findings need not be sorted; the manager
	// orders the merged report deterministically.
	Run(ctx *obs.Ctx, u *Unit) []Finding
}

var registry []Pass

// Register adds a pass to the global registry. Built-in passes register
// at init; future tools may register their own before calling Run.
func Register(p Pass) { registry = append(registry, p) }

// Passes returns the registered passes sorted by name.
func Passes() []Pass {
	out := make([]Pass, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Select resolves a comma-separated pass-name list ("" means every
// registered pass) against the registry.
func Select(names string) ([]Pass, error) {
	all := Passes()
	if names == "" {
		return all, nil
	}
	byName := make(map[string]Pass, len(all))
	for _, p := range all {
		byName[p.Name()] = p
	}
	var out []Pass
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		p, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analysis pass %q (have %s)", n, strings.Join(passNames(all), ", "))
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

func passNames(ps []Pass) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name()
	}
	return out
}

// Report is the merged result of running a pass selection over one unit.
type Report struct {
	Unit     string
	Kind     UnitKind
	Procs    int
	Insts    int
	Passes   []string // the passes that actually ran (applicable ones)
	Findings []Finding
}

// Counts tallies findings by severity.
func (r *Report) Counts() (info, warn, errs int) {
	for _, f := range r.Findings {
		switch f.Sev {
		case Info:
			info++
		case Warn:
			warn++
		default:
			errs++
		}
	}
	return
}

// Clean reports whether the unit has no Warn or Error findings.
func (r *Report) Clean() bool {
	_, warn, errs := r.Counts()
	return warn == 0 && errs == 0
}

// Errors returns the Error-severity findings (the -vet gate's failure
// set).
func (r *Report) Errors() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Sev == Error {
			out = append(out, f)
		}
	}
	return out
}

// Run executes every applicable pass over the unit and merges the
// findings into one deterministically ordered report. The whole run is
// an "om.analyze" span; each pass runs under an "om.analyze.pass" child
// span tagged with its name, and the "om.analyze.passes" /
// "om.analyze.findings" counters aggregate across units.
func Run(ctx *obs.Ctx, u *Unit, passes []Pass) *Report {
	actx, sp := ctx.Start("om.analyze",
		obs.String("unit", u.Name),
		obs.String("kind", u.Kind.String()),
		obs.Int("procs", int64(len(u.Prog.Procs))))
	defer sp.End()

	r := &Report{Unit: u.Name, Kind: u.Kind, Procs: len(u.Prog.Procs), Insts: u.Prog.NumInsts()}
	for _, p := range passes {
		if !p.Applies(u.Kind) {
			continue
		}
		pctx, psp := actx.Start("om.analyze.pass", obs.String("pass", p.Name()))
		fs := p.Run(pctx, u)
		psp.SetAttr(obs.Int("findings", int64(len(fs))))
		psp.End()
		actx.Count("om.analyze.passes", 1)
		actx.Count("om.analyze.findings", int64(len(fs)))
		r.Passes = append(r.Passes, p.Name())
		r.Findings = append(r.Findings, fs...)
	}
	sort.Strings(r.Passes)
	sortFindings(r.Findings)
	info, warn, errs := r.Counts()
	sp.SetAttr(obs.Int("info", int64(info)), obs.Int("warn", int64(warn)), obs.Int("error", int64(errs)))
	return r
}

// sortFindings orders findings for stable reports: program-level first
// (Addr 0), then by original PC, pass, procedure, and message.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		return a.Msg < b.Msg
	})
}

// plural renders "1 error" / "2 errors".
func plural(n int, what string) string {
	if n == 1 {
		return fmt.Sprintf("1 %s", what)
	}
	return fmt.Sprintf("%d %ss", n, what)
}

// WriteText renders the report in the fixed text form: a unit header,
// one line per finding, and a final verdict line ("NAME: clean" when
// nothing is warn-or-worse).
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "== %s (%s): %s, %s; passes: %s\n",
		r.Unit, r.Kind, plural(r.Procs, "proc"), plural(r.Insts, "inst"),
		strings.Join(r.Passes, " "))
	for _, f := range r.Findings {
		fmt.Fprintf(w, "%s\n", f.String())
	}
	info, warn, errs := r.Counts()
	switch {
	case warn == 0 && errs == 0 && info == 0:
		fmt.Fprintf(w, "%s: clean\n", r.Unit)
	case warn == 0 && errs == 0:
		fmt.Fprintf(w, "%s: clean (%s)\n", r.Unit, plural(info, "note"))
	default:
		parts := []string{}
		if errs > 0 {
			parts = append(parts, plural(errs, "error"))
		}
		if warn > 0 {
			parts = append(parts, plural(warn, "warning"))
		}
		fmt.Fprintf(w, "%s: %s\n", r.Unit, strings.Join(parts, ", "))
	}
}
