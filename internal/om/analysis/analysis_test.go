package analysis_test

import (
	"strings"
	"testing"

	"atom/internal/aout"
	"atom/internal/asm"
	"atom/internal/link"
	"atom/internal/om"
	"atom/internal/om/analysis"
)

// lift assembles and links one source file and lifts it to the OM IR, so
// every pass is exercised against real pipeline output rather than
// hand-wired structs.
func lift(t *testing.T, src string) *om.Program {
	t.Helper()
	obj, err := asm.Assemble("test.s", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	exe, err := link.Link(link.Config{}, []*aout.File{obj})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	p, err := om.Build(exe)
	if err != nil {
		t.Fatalf("lift: %v", err)
	}
	return p
}

// run executes one named pass over a unit.
func run(t *testing.T, u *analysis.Unit, passes string) *analysis.Report {
	t.Helper()
	ps, err := analysis.Select(passes)
	if err != nil {
		t.Fatalf("select %q: %v", passes, err)
	}
	return analysis.Run(nil, u, ps)
}

// findings filters a report's findings to one pass.
func msgs(r *analysis.Report) []string {
	var out []string
	for _, f := range r.Findings {
		out = append(out, f.String())
	}
	return out
}

func wantFinding(t *testing.T, r *analysis.Report, substr string) {
	t.Helper()
	for _, f := range r.Findings {
		if strings.Contains(f.String(), substr) {
			return
		}
	}
	t.Errorf("no finding containing %q; have:\n%s", substr, strings.Join(msgs(r), "\n"))
}

func wantClean(t *testing.T, r *analysis.Report) {
	t.Helper()
	if !r.Clean() {
		t.Errorf("unit not clean; findings:\n%s", strings.Join(msgs(r), "\n"))
	}
}

const uninitSrc = `
	.text
	.globl __start
	.ent __start
__start:
	bsr ra, defect
	bsr ra, onepath
	clr a0
	call_pal 0
halt:
	br halt
	.end __start

	.globl defect
	.ent defect
defect:
	addq t0, 1, v0
	ret (ra)
	.end defect

	.globl onepath
	.ent onepath
onepath:
	beq a0, skip
	clr t1
skip:
	addq t1, 1, v0
	ret (ra)
	.end onepath
`

// TestUninitSeededDefect: a scratch register read at procedure entry is
// flagged; a register defined on only SOME path is not (the pass hunts
// reads no definition reaches, not style).
func TestUninitSeededDefect(t *testing.T) {
	p := lift(t, uninitSrc)
	r := run(t, &analysis.Unit{Name: "u", Kind: analysis.Application, Prog: p}, "uninit")
	wantFinding(t, r, "(defect): t0 read but no definition reaches it")
	for _, f := range r.Findings {
		if f.Proc != "defect" {
			t.Errorf("unexpected finding outside the seeded defect: %s", f)
		}
	}
	if r.Clean() {
		t.Error("report with a warn finding reports clean")
	}
}

// TestUninitCleanAfterCall: a call conservatively defines everything, so
// reads of scratch registers after it are not flagged.
func TestUninitCleanAfterCall(t *testing.T) {
	p := lift(t, `
	.text
	.globl __start
	.ent __start
__start:
	bsr ra, leaf
	addq v0, 1, t0
	addq t0, t1, a0
	call_pal 0
halt:
	br halt
	.end __start

	.globl leaf
	.ent leaf
leaf:
	clr v0
	ret (ra)
	.end leaf
`)
	r := run(t, &analysis.Unit{Name: "u", Kind: analysis.Application, Prog: p}, "uninit")
	wantClean(t, r)
}

func TestStackHeightSeededDefect(t *testing.T) {
	p := lift(t, `
	.text
	.globl __start
	.ent __start
__start:
	bsr ra, leak
	call_pal 0
halt:
	br halt
	.end __start

	.globl leak
	.ent leak
leak:
	lda sp, -16(sp)
	ret (ra)
	.end leak

	.globl good
	.ent good
good:
	lda sp, -16(sp)
	stq ra, 0(sp)
	ldq ra, 0(sp)
	lda sp, 16(sp)
	ret (ra)
	.end good
`)
	r := run(t, &analysis.Unit{Name: "u", Kind: analysis.Application, Prog: p}, "stackheight")
	wantFinding(t, r, "(leak): returns with unbalanced stack height -16")
	if len(r.Errors()) != 1 {
		t.Errorf("want exactly 1 error finding, have:\n%s", strings.Join(msgs(r), "\n"))
	}
}

func TestStackHeightUnauditableWrite(t *testing.T) {
	p := lift(t, `
	.text
	.globl __start
	.ent __start
__start:
	mov a0, sp
	call_pal 0
halt:
	br halt
	.end __start
`)
	r := run(t, &analysis.Unit{Name: "u", Kind: analysis.Application, Prog: p}, "stackheight")
	wantFinding(t, r, "unauditable stack-pointer write")
}

func TestToolLintSeededDefect(t *testing.T) {
	p := lift(t, `
	.text
	.globl __start
	.ent __start
__start:
	call_pal 0
halt:
	br halt
	.end __start

	.globl clobber
	.ent clobber
clobber:
	addq s0, 1, s0
	ret (ra)
	.end clobber

	.globl saved
	.ent saved
saved:
	lda sp, -16(sp)
	stq ra, 0(sp)
	stq s0, 8(sp)
	addq s0, 1, s0
	bsr ra, clobber
	ldq s0, 8(sp)
	ldq ra, 0(sp)
	lda sp, 16(sp)
	ret (ra)
	.end saved

	.globl lostra
	.ent lostra
lostra:
	bsr ra, clobber
	ret (ra)
	.end lostra
`)
	r := run(t, &analysis.Unit{Name: "tool", Kind: analysis.ToolImage, Prog: p}, "toollint")
	wantFinding(t, r, "(clobber): clobbers callee-save register s0 without a matching save/restore")
	wantFinding(t, r, "(lostra): calls other routines but returns without restoring ra")
	for _, f := range r.Findings {
		if f.Proc == "saved" {
			t.Errorf("well-disciplined procedure flagged: %s", f)
		}
	}
}

// TestToolLintAppliesOnlyToImages: the pass declares itself inapplicable
// to application units, so Run skips it there.
func TestToolLintAppliesOnlyToImages(t *testing.T) {
	p := lift(t, `
	.text
	.globl __start
	.ent __start
__start:
	addq s0, 1, s0
	call_pal 0
halt:
	br halt
	.end __start
`)
	r := run(t, &analysis.Unit{Name: "u", Kind: analysis.Application, Prog: p}, "toollint")
	if len(r.Passes) != 0 || len(r.Findings) != 0 {
		t.Errorf("toollint ran on an application unit: passes=%v findings=%v", r.Passes, msgs(r))
	}
}

func TestCallgraphDeadProc(t *testing.T) {
	p := lift(t, `
	.text
	.globl __start
	.ent __start
__start:
	bsr ra, alive
	call_pal 0
halt:
	br halt
	.end __start

	.globl alive
	.ent alive
alive:
	ret (ra)
	.end alive

	.globl dead
	.ent dead
dead:
	ret (ra)
	.end dead
`)
	r := run(t, &analysis.Unit{Name: "u", Kind: analysis.Application, Prog: p}, "callgraph")
	wantFinding(t, r, "(dead): unreachable from the entry point")
	wantFinding(t, r, "3 procedures, 2 reachable, 1 direct call edge, 0 indirect call sites")
	if !r.Clean() {
		t.Errorf("info-only report must be clean; findings:\n%s", strings.Join(msgs(r), "\n"))
	}
	for _, f := range r.Findings {
		if f.Proc == "alive" || f.Proc == "__start" {
			t.Errorf("reachable procedure flagged: %s", f)
		}
	}
}

// TestCallgraphIndirectKeepsAddressTaken: a jsr in reachable code makes
// every address-taken procedure reachable.
func TestCallgraphIndirectKeepsAddressTaken(t *testing.T) {
	p := lift(t, `
	.text
	.globl __start
	.ent __start
__start:
	la pv, taken
	jsr ra, (pv)
	call_pal 0
halt:
	br halt
	.end __start

	.globl taken
	.ent taken
taken:
	ret (ra)
	.end taken
`)
	r := run(t, &analysis.Unit{Name: "u", Kind: analysis.Application, Prog: p}, "callgraph")
	for _, f := range r.Findings {
		if strings.Contains(f.Msg, "dead procedure") {
			t.Errorf("address-taken procedure reported dead: %s", f)
		}
	}
	wantFinding(t, r, "1 indirect call site")
}

// TestSelectAndDeterminism: pass selection validates names, and two runs
// over the same unit render byte-identical reports.
func TestSelectAndDeterminism(t *testing.T) {
	if _, err := analysis.Select("nosuch"); err == nil {
		t.Error("Select accepted an unknown pass name")
	}
	ps, err := analysis.Select("")
	if err != nil || len(ps) != 4 {
		t.Fatalf("default selection: %v passes, err %v", len(ps), err)
	}
	p := lift(t, uninitSrc)
	u := &analysis.Unit{Name: "u", Kind: analysis.Application, Prog: p}
	var a, b strings.Builder
	ra := analysis.Run(nil, u, ps)
	ra.WriteText(&a)
	rb := analysis.Run(nil, u, ps)
	rb.WriteText(&b)
	if a.String() != b.String() {
		t.Errorf("non-deterministic report:\n%s\nvs\n%s", a.String(), b.String())
	}
	ja, err := analysis.MarshalReports([]*analysis.Report{ra})
	if err != nil {
		t.Fatal(err)
	}
	jb, _ := analysis.MarshalReports([]*analysis.Report{rb})
	if string(ja) != string(jb) {
		t.Error("non-deterministic JSON report")
	}
	if !strings.Contains(string(ja), analysis.JSONSchema) {
		t.Errorf("JSON report missing schema marker %q", analysis.JSONSchema)
	}
}
