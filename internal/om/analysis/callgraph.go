package analysis

import (
	"fmt"
	"sort"

	"atom/internal/alpha"
	"atom/internal/aout"
	"atom/internal/obs"
	"atom/internal/om"
)

// callgraphPass builds the program's call graph and reports what the
// entry point cannot reach. Direct edges come from bsr and from
// branches (conditional or not) that leave their procedure — the
// runtime's divide-by-zero path is such a tail transfer — while jsr and
// jmp are indirect sites whose targets are unknown; when a reachable
// procedure contains one, every address-taken procedure (any procedure
// whose address is materialized by a non-branch relocation) becomes
// reachable too. Unreachable procedures and unreachable blocks inside
// reachable procedures are reported as Info — dead code is a report,
// not a defect — plus one whole-program summary line.
type callgraphPass struct{}

func init() { Register(callgraphPass{}) }

func (callgraphPass) Name() string { return "callgraph" }
func (callgraphPass) Desc() string {
	return "call-graph construction with dead-procedure and unreachable-code report"
}

// Applies: the pass needs a meaningful entry point, which tool images
// (linked with no entry) do not have.
func (callgraphPass) Applies(k UnitKind) bool { return k == Application }

func (callgraphPass) Run(ctx *obs.Ctx, u *Unit) []Finding {
	p := u.Prog
	if p.Exe == nil || !p.Exe.Linked || len(p.Procs) == 0 {
		return nil
	}

	// procOf resolves an address to the procedure containing it.
	starts := make([]uint64, len(p.Procs))
	for i, pr := range p.Procs {
		starts[i] = pr.Addr
	}
	procOf := func(addr uint64) int {
		i := sort.Search(len(starts), func(i int) bool { return starts[i] > addr }) - 1
		if i >= 0 && addr < p.Procs[i].Addr+p.Procs[i].Size {
			return i
		}
		return -1
	}

	// Direct edges, indirect sites, and the set of every branch target
	// (used below to keep blocks entered by a cross-procedure branch out
	// of the dead-code report).
	edges := make([]map[int]bool, len(p.Procs))
	hasIndirect := make([]bool, len(p.Procs))
	indirectSites := 0
	branchTargets := map[uint64]bool{}
	nedges := 0
	for pi, pr := range p.Procs {
		edges[pi] = map[int]bool{}
		for _, b := range pr.Blocks {
			for _, in := range b.Insts {
				op := in.I.Op
				switch {
				case op == alpha.OpBsr, op == alpha.OpBr, op.IsCondBranch():
					t := in.Addr + 4 + uint64(int64(in.I.Disp)*4)
					branchTargets[t] = true
					if op == alpha.OpBsr || t < pr.Addr || t >= pr.Addr+pr.Size {
						if ci := procOf(t); ci >= 0 && !edges[pi][ci] {
							edges[pi][ci] = true
							nedges++
						}
					}
				case op == alpha.OpJsr || op == alpha.OpJmp:
					hasIndirect[pi] = true
					indirectSites++
				}
			}
		}
	}

	// Address-taken procedures: any procedure whose entry address is
	// materialized by an address relocation (hi/lo pairs, data words) —
	// branch relocations are the direct edges already counted.
	addrTaken := make([]bool, len(p.Procs))
	for _, rel := range p.Exe.Relocs {
		if rel.Type == aout.RelBr21 {
			continue
		}
		if rel.Sym < 0 || rel.Sym >= len(p.Exe.Symbols) {
			continue
		}
		sym := p.Exe.Symbols[rel.Sym]
		if sym.Kind != aout.SymFunc {
			continue
		}
		if ci := procOf(sym.Value + uint64(rel.Addend)); ci >= 0 {
			addrTaken[ci] = true
		}
	}

	// Reachability: close over direct edges from the entry; as long as
	// some reachable procedure calls indirectly, every address-taken
	// procedure is a root too.
	reach := make([]bool, len(p.Procs))
	var visit func(int)
	visit = func(pi int) {
		if pi < 0 || reach[pi] {
			return
		}
		reach[pi] = true
		for ci := range edges[pi] {
			visit(ci)
		}
	}
	visit(procOf(p.Exe.Entry))
	for {
		indirect := false
		for pi := range p.Procs {
			if reach[pi] && hasIndirect[pi] {
				indirect = true
			}
		}
		if !indirect {
			break
		}
		grew := false
		for pi := range p.Procs {
			if addrTaken[pi] && !reach[pi] {
				visit(pi)
				grew = true
			}
		}
		if !grew {
			break
		}
	}

	var out []Finding
	nreach := 0
	for pi, pr := range p.Procs {
		if reach[pi] {
			nreach++
			out = append(out, deadBlocks(pr, branchTargets)...)
		} else {
			out = append(out, Finding{Pass: "callgraph", Sev: Info, Proc: pr.Name, Addr: pr.Addr,
				Msg: "unreachable from the entry point (dead procedure)"})
		}
	}
	out = append(out, Finding{Pass: "callgraph", Sev: Info,
		Msg: fmt.Sprintf("%s, %d reachable, %s, %s",
			plural(len(p.Procs), "procedure"), nreach,
			plural(nedges, "direct call edge"), plural(indirectSites, "indirect call site"))})

	ctx.Count("om.analyze.callgraph.edges", int64(nedges))
	ctx.Count("om.analyze.callgraph.indirect", int64(indirectSites))
	return out
}

// deadBlocks reports blocks of a reachable procedure that its entry
// block cannot reach and that no branch anywhere in the program targets.
func deadBlocks(pr *om.Proc, branchTargets map[uint64]bool) []Finding {
	n := len(pr.Blocks)
	if n == 0 {
		return nil
	}
	seen := make([]bool, n)
	seen[0] = true
	work := []int{0}
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		for _, s := range pr.Blocks[bi].Succs {
			if si := s.Index; si >= 0 && si < n && pr.Blocks[si] == s && !seen[si] {
				seen[si] = true
				work = append(work, si)
			}
		}
	}
	var out []Finding
	for bi, b := range pr.Blocks {
		if seen[bi] || len(b.Insts) == 0 {
			continue
		}
		if branchTargets[b.Insts[0].Addr] {
			continue // entered from outside the procedure
		}
		out = append(out, Finding{Pass: "callgraph", Sev: Info, Proc: pr.Name, Addr: b.Insts[0].Addr,
			Msg: fmt.Sprintf("unreachable code (%s)", plural(len(b.Insts), "instruction"))})
	}
	return out
}
