package analysis

import (
	"encoding/json"
)

// Machine-readable report form. Deterministic for the same reason the
// bench documents are: struct fields render in declaration order and the
// findings are pre-sorted, so two runs over the same inputs emit
// byte-identical documents.

// JSONSchema identifies the -analyze-json document layout.
const JSONSchema = "atom-analyze/v1"

// JSONDoc is the top-level -analyze-json document: one entry per
// analyzed unit.
type JSONDoc struct {
	Schema string     `json:"schema"`
	Units  []JSONUnit `json:"units"`
}

// JSONUnit is one unit's report.
type JSONUnit struct {
	Name     string        `json:"name"`
	Kind     string        `json:"kind"`
	Procs    int           `json:"procs"`
	Insts    int           `json:"insts"`
	Passes   []string      `json:"passes"`
	Findings []JSONFinding `json:"findings,omitempty"`
	Infos    int           `json:"infos"`
	Warnings int           `json:"warnings"`
	Errors   int           `json:"errors"`
	Clean    bool          `json:"clean"`
}

// JSONFinding is one finding; PC is the ORIGINAL program counter (0 for
// whole-program findings).
type JSONFinding struct {
	Pass     string `json:"pass"`
	Severity string `json:"severity"`
	Proc     string `json:"proc,omitempty"`
	PC       uint64 `json:"pc,omitempty"`
	Msg      string `json:"msg"`
}

// MarshalReports renders reports as the indented atom-analyze document.
func MarshalReports(reports []*Report) ([]byte, error) {
	doc := JSONDoc{Schema: JSONSchema, Units: []JSONUnit{}}
	for _, r := range reports {
		info, warn, errs := r.Counts()
		u := JSONUnit{
			Name: r.Unit, Kind: r.Kind.String(),
			Procs: r.Procs, Insts: r.Insts, Passes: r.Passes,
			Infos: info, Warnings: warn, Errors: errs, Clean: r.Clean(),
		}
		for _, f := range r.Findings {
			u.Findings = append(u.Findings, JSONFinding{
				Pass: f.Pass, Severity: f.Sev.String(), Proc: f.Proc, PC: f.Addr, Msg: f.Msg,
			})
		}
		doc.Units = append(doc.Units, u)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// VetPasses is the pass selection the -vet verify stages run: the
// defect-finding passes (the call graph is a report, not a gate). Only
// Error findings fail a -vet run.
func VetPasses() []Pass {
	ps, err := Select("stackheight,toollint,uninit")
	if err != nil {
		panic(err) // built-in names; cannot fail
	}
	return ps
}
