package analysis

import (
	"fmt"

	"atom/internal/alpha"
	"atom/internal/obs"
	"atom/internal/om"
)

// stackPass verifies that every procedure keeps a balanced, bounded
// stack: the only audited stack-pointer writes are `lda sp, d(sp)`
// adjustments (the idiom both minicc and the hand-written runtime use),
// every path reaching a ret must be back at the entry height, joins must
// agree on the height, and the frame must stay below the caller's and
// within a sane bound. Heights are propagated forward over the CFG from
// the entry block by a plain integer worklist — the lattice is not a
// register set, so this pass does not use the generic engine — and
// blocks the entry cannot reach are left unchecked rather than guessed
// at.

// maxFrame bounds a single procedure's net frame size; anything larger
// is a runaway adjustment, not a frame.
const maxFrame = 1 << 20

type stackPass struct{}

func init() { Register(stackPass{}) }

func (stackPass) Name() string { return "stackheight" }
func (stackPass) Desc() string {
	return "verify balanced, bounded stack adjustments per procedure"
}
func (stackPass) Applies(UnitKind) bool { return true }

func (stackPass) Run(ctx *obs.Ctx, u *Unit) []Finding {
	var out []Finding
	for _, pr := range u.Prog.Procs {
		out = append(out, stackCheckProc(pr)...)
	}
	return out
}

// spDelta classifies an instruction's effect on sp: ok reports whether
// the write (if any) is auditable. Instructions that do not write sp are
// (0, true).
func spDelta(in *om.Inst) (delta int64, ok bool) {
	w, writes := in.I.WritesReg()
	if !writes || w != alpha.SP {
		return 0, true
	}
	if in.I.Op == alpha.OpLda && in.I.Rb == alpha.SP {
		return int64(in.I.Disp), true
	}
	return 0, false
}

func stackCheckProc(pr *om.Proc) []Finding {
	var out []Finding
	warn := func(addr uint64, format string, args ...any) {
		out = append(out, Finding{Pass: "stackheight", Sev: Warn, Proc: pr.Name, Addr: addr, Msg: fmt.Sprintf(format, args...)})
	}

	// An unauditable sp write poisons the whole procedure: heights after
	// it are unknowable, so report it and check nothing else.
	for _, b := range pr.Blocks {
		for _, in := range b.Insts {
			if _, ok := spDelta(in); !ok {
				warn(in.Addr, "unauditable stack-pointer write (%s)", in.I)
				return out
			}
		}
	}

	n := len(pr.Blocks)
	if n == 0 {
		return out
	}
	entryH := make([]int64, n)
	seen := make([]bool, n)
	seen[0] = true
	work := []int{0}
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		b := pr.Blocks[bi]
		h := entryH[bi]
		for _, in := range b.Insts {
			d, _ := spDelta(in)
			h += d
			if h > 0 {
				warn(in.Addr, "stack height %d above the caller's frame", h)
				return out // everything downstream is wrong the same way
			}
			if h < -maxFrame {
				warn(in.Addr, "frame larger than %d bytes (height %d)", maxFrame, h)
				return out
			}
			switch {
			case in.I.Op == alpha.OpRet && h != 0:
				out = append(out, Finding{Pass: "stackheight", Sev: Error, Proc: pr.Name, Addr: in.Addr,
					Msg: fmt.Sprintf("returns with unbalanced stack height %d", h)})
			case in.I.Op == alpha.OpBr && h != 0:
				// A branch leaving the procedure is a tail transfer; the
				// target expects the caller's height.
				t := in.Addr + 4 + uint64(int64(in.I.Disp)*4)
				if t < pr.Addr || t >= pr.Addr+pr.Size {
					warn(in.Addr, "leaves the procedure with stack height %d", h)
				}
			}
		}
		for _, s := range b.Succs {
			si := s.Index
			if si < 0 || si >= n || pr.Blocks[si] != s {
				continue
			}
			if !seen[si] {
				seen[si] = true
				entryH[si] = h
				work = append(work, si)
			} else if entryH[si] != h {
				addr := pr.Addr
				if len(s.Insts) > 0 {
					addr = s.Insts[0].Addr
				}
				warn(addr, "inconsistent stack height at join (%d vs %d)", entryH[si], h)
				return out
			}
		}
	}
	return out
}
