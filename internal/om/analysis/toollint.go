package analysis

import (
	"fmt"

	"atom/internal/alpha"
	"atom/internal/obs"
	"atom/internal/om"
	"atom/internal/om/dataflow"
)

// toollintPass audits the save discipline of analysis code BEFORE an
// image is ever applied. Instrumentation calls analysis routines from
// arbitrary points in the application, saving only the caller-save
// registers the liveness/modified analyses prove necessary — so an
// analysis routine that clobbers a callee-save register without the
// standard save/restore, or that writes gp (the application's globals
// pointer is live across every instrumentation site), corrupts the
// instrumented program in ways no dynamic check catches cheaply.
//
// The audit is a forward "taint" dataflow on the generic engine rather
// than a linear prologue/epilogue matcher: a protected register (s0–s5,
// fp, and ra) becomes tainted when anything other than an `ldq r,
// off(sp)` reload writes it — ordinary writes, and the link write of
// every bsr/jsr — and a reload from the stack clears the taint. A
// return reached by a tainted register on ANY path is a defect: the
// caller's value is gone. This sees through nested frames (the
// in-analysis splice wraps a routine's own prologue in an outer
// scratch-save frame), shared epilogues reached by branches, and
// multi-exit procedures, none of which a canonical-prologue scan
// handles.
//
// Stack-pointer discipline itself is the stackheight pass's job; this
// pass assumes sp is sane and audits everyone else.
type toollintPass struct{}

func init() { Register(toollintPass{}) }

func (toollintPass) Name() string { return "toollint" }
func (toollintPass) Desc() string {
	return "audit analysis routines for clobbered-but-unsaved registers and gp hazards"
}

// Applies: the lint is about code that runs inside instrumentation
// sites, i.e. a tool image.
func (toollintPass) Applies(k UnitKind) bool { return k == ToolImage }

// calleeSaved is the register set a procedure must preserve: s0–s5 and
// fp. sp has its own pass; gp gets a sharper diagnostic below.
var calleeSaved = func() om.RegSet {
	var s om.RegSet
	for r := alpha.S0; r <= alpha.S5; r++ {
		s = s.Add(r)
	}
	return s.Add(alpha.FP)
}()

func (toollintPass) Run(ctx *obs.Ctx, u *Unit) []Finding {
	var out []Finding
	edges := 0
	for _, pr := range u.Prog.Procs {
		if len(pr.Blocks) == 0 {
			continue
		}
		out = append(out, lintProc(pr, &edges)...)
	}
	ctx.Count("om.analyze.edges", int64(edges))
	return out
}

// isReload reports whether the instruction restores a register from the
// stack: `ldq r, off(sp)`. The slot's contents are not tracked — a
// reload is trusted to bring back the caller's value, which the save
// half of the discipline (a matching stq, checked by its very absence
// tainting the ret) makes true in practice.
func isReload(i alpha.Inst) bool {
	return i.Op == alpha.OpLdq && i.Rb == alpha.SP
}

// taintProblem: tainted registers flow forward; a call's link write
// taints ra, any ordinary write taints its target, a stack reload
// cleans it.
var taintProblem = dataflow.Problem{
	Dir: dataflow.Forward,
	Transfer: func(in *om.Inst) dataflow.Transfer {
		t := dataflow.Identity()
		w, ok := in.I.WritesReg()
		if !ok {
			return t
		}
		if isReload(in.I) {
			t.Mask &^= om.RegSet(0).Add(w)
		} else {
			t.Gen = om.RegSet(0).Add(w)
		}
		return t
	},
}

func lintProc(pr *om.Proc, edges *int) []Finding {
	sol := &dataflow.Solver{Problem: taintProblem}
	state := make([]om.RegSet, len(pr.Blocks))
	sol.SolveProc(pr, state)
	*edges += sol.Edges

	var out []Finding
	calls := false
	clobbered := om.RegSet(0) // protected registers tainted at some ret
	sol.VisitProc(pr, state, func(in *om.Inst, before, _ om.RegSet) {
		switch in.I.Op {
		case alpha.OpBsr, alpha.OpJsr:
			calls = true
		case alpha.OpRet:
			clobbered |= before & calleeSaved
			if calls && before.Has(alpha.RA) {
				clobbered = clobbered.Add(alpha.RA)
			}
		}
		if w, ok := in.I.WritesReg(); ok && w == alpha.GP {
			out = append(out, Finding{Pass: "toollint", Sev: Warn, Proc: pr.Name, Addr: in.Addr,
				Msg: "writes gp (the application's globals pointer is live at every instrumentation site)"})
		}
	})

	// Anchor each clobber at the first tainting write so the finding
	// points at the defect, not the return it escapes through.
	if cs := clobbered & calleeSaved; cs != 0 {
		firstWrite := map[alpha.Reg]uint64{}
		sol.VisitProc(pr, state, func(in *om.Inst, _, _ om.RegSet) {
			if w, ok := in.I.WritesReg(); ok && cs.Has(w) && !isReload(in.I) {
				if _, seen := firstWrite[w]; !seen {
					firstWrite[w] = in.Addr
				}
			}
		})
		for _, r := range cs.Regs() {
			addr := pr.Addr
			if a, ok := firstWrite[r]; ok {
				addr = a
			}
			out = append(out, Finding{Pass: "toollint", Sev: Error, Proc: pr.Name, Addr: addr,
				Msg: fmt.Sprintf("clobbers callee-save register %s without a matching save/restore", r)})
		}
	}
	if clobbered.Has(alpha.RA) {
		out = append(out, Finding{Pass: "toollint", Sev: Error, Proc: pr.Name, Addr: pr.Addr,
			Msg: "calls other routines but returns without restoring ra from the frame"})
	}
	return out
}
