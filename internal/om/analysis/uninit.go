package analysis

import (
	"fmt"
	"strings"

	"atom/internal/alpha"
	"atom/internal/obs"
	"atom/internal/om"
	"atom/internal/om/dataflow"
)

// uninitPass is a forward may-reaching-definitions analysis that flags
// reads of temporaries no definition can reach: a register is "defined"
// at a point if SOME path to it writes the register, so a read is
// flagged only when NO path provides a value — the defect class, not the
// style lint. It runs on the generic dataflow engine as a Forward
// Problem whose values are the may-defined register sets.
//
// Only the scratch registers with no defined value at procedure entry
// are tracked: v0, t0–t11, and at. Arguments (a0–a5), the callee-save
// registers, and the linkage registers (ra, pv, gp, sp) all carry
// caller-provided values at entry by convention, so reading them cold is
// legitimate. Every call (bsr, jsr, call_pal) conservatively defines
// everything — the callee's writes are unknown — and blocks with no
// intra-procedure predecessors other than the entry block (unreachable
// code, or code entered by a cross-procedure branch) are assumed
// all-defined rather than guessed at.
//
// In a tool image the generated register-save wrappers (atom$w$*) are
// entered straight from instrumentation sites, where the application's
// entire register state is live; they read scratch registers precisely
// to save them. Their entry is therefore all-defined.

// uninitTracked is the register set with no defined value at procedure
// entry.
var uninitTracked = func() om.RegSet {
	s := om.RegSet(0).Add(alpha.V0).Add(alpha.AT)
	for r := alpha.T0; r <= alpha.T7; r++ {
		s = s.Add(r)
	}
	for r := alpha.T8; r <= alpha.T11; r++ {
		s = s.Add(r)
	}
	return s
}()

type uninitPass struct{}

func init() { Register(uninitPass{}) }

func (uninitPass) Name() string { return "uninit" }
func (uninitPass) Desc() string {
	return "flag reads of scratch registers that no definition reaches"
}
func (uninitPass) Applies(UnitKind) bool { return true }

func (uninitPass) Run(ctx *obs.Ctx, u *Unit) []Finding {
	all := dataflow.AllRegs()
	entryDefined := all &^ uninitTracked

	var out []Finding
	edges := 0
	for _, pr := range u.Prog.Procs {
		if len(pr.Blocks) == 0 {
			continue
		}
		entry := entryDefined
		if u.Kind == ToolImage && strings.HasPrefix(pr.Name, "atom$w$") {
			entry = all // save wrapper: entered with full application state
		}
		preds := make([]int, len(pr.Blocks))
		for _, b := range pr.Blocks {
			for _, s := range b.Succs {
				if si := s.Index; si >= 0 && si < len(pr.Blocks) && pr.Blocks[si] == s {
					preds[si]++
				}
			}
		}
		sol := &dataflow.Solver{Problem: dataflow.Problem{
			Dir: dataflow.Forward,
			Transfer: func(in *om.Inst) dataflow.Transfer {
				switch in.I.Op {
				case alpha.OpBsr, alpha.OpJsr, alpha.OpCallPal:
					// Unknown callee effects: everything may be defined
					// after the call returns.
					return dataflow.Transfer{Mask: ^om.RegSet(0), Gen: all}
				}
				t := dataflow.Identity()
				if w, ok := in.I.WritesReg(); ok {
					t.Gen = om.RegSet(0).Add(w)
				}
				return t
			},
			Boundary: func(_ *om.Proc, b *om.Block) om.RegSet {
				if b.Index == 0 {
					return entry
				}
				if preds[b.Index] == 0 {
					// No path reaches this block from the entry: assume
					// everything defined rather than report dead code.
					return all
				}
				return 0
			},
			Unknown: all,
		}}
		state := make([]om.RegSet, len(pr.Blocks))
		sol.SolveProc(pr, state)
		name := pr.Name
		sol.VisitProc(pr, state, func(in *om.Inst, before, _ om.RegSet) {
			for _, r := range in.I.ReadsRegs(nil) {
				if uninitTracked.Has(r) && !before.Has(r) {
					out = append(out, Finding{
						Pass: "uninit", Sev: Warn, Proc: name, Addr: in.Addr,
						Msg: fmt.Sprintf("%s read but no definition reaches it", r),
					})
				}
			}
		})
		edges += sol.Edges
	}
	ctx.Count("om.analyze.edges", int64(edges))
	return out
}
