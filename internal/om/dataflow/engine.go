package dataflow

import (
	"atom/internal/alpha"
	"atom/internal/om"
)

// A generic worklist engine for register-set dataflow over the OM IR,
// generalized from the liveness analysis: any monotone problem whose
// values are om.RegSet and whose per-instruction transfer has the
// mask/gen shape can run on it, forward or backward, with the same
// per-procedure block fixpoint and (optionally) the same interprocedural
// entry-summary outer loop. Liveness (backward, may) and the analysis
// passes' reaching-definitions variant (forward, may) are both clients.

// Direction orients a Problem: Backward propagates against control flow
// (a block's input is joined from its CFG successors), Forward along it
// (joined from its predecessors).
type Direction int

const (
	Backward Direction = iota
	Forward
)

// Transfer is one composable dataflow step: out = in&Mask | Gen. Every
// per-instruction effect of the supported problems has this shape —
// ordinary def/use, unknown call (Mask=0, Gen=everything), resolved call
// (mask out the must-def, gen the summary) — so whole-block transfers
// compose into the same two words and the block fixpoint costs O(1) per
// visit.
type Transfer struct{ Mask, Gen om.RegSet }

// Apply runs the transfer on a value.
func (t Transfer) Apply(v om.RegSet) om.RegSet { return v&t.Mask | t.Gen }

// Then returns the composition "t, then f" in flow order: the transfer
// of two consecutive steps where t is applied first.
func (t Transfer) Then(f Transfer) Transfer {
	return Transfer{Mask: t.Mask & f.Mask, Gen: t.Gen&f.Mask | f.Gen}
}

// Identity is the transfer of an empty instruction sequence.
func Identity() Transfer { return Transfer{Mask: ^om.RegSet(0)} }

// AllRegs is every architecturally meaningful register: everything but
// the zero register, which has no state.
func AllRegs() om.RegSet {
	var s om.RegSet
	for r := alpha.Reg(0); r < alpha.NumRegs; r++ {
		if r != alpha.Zero {
			s = s.Add(r)
		}
	}
	return s
}

// Problem describes one dataflow problem. Starting every block value at
// ∅ and growing to the least fixpoint is sound for may-problems as long
// as every transfer is monotone and the conservative cases inject their
// worst case wholesale (liveness: allLive; reaching defs: every
// register).
type Problem struct {
	Dir Direction

	// Transfer gives the transfer of one instruction. It is re-queried
	// on every solve, so it may read mutable state (the interprocedural
	// entry summaries) between rounds.
	Transfer func(in *om.Inst) Transfer

	// Boundary is the contribution to a block's joined input that no CFG
	// edge represents: for a backward problem the continuation of its
	// terminator (returns, indirect jumps, cross-procedure transfers,
	// falling off the end); for a forward problem the value flowing into
	// the procedure at its entry block. Nil means no contribution.
	Boundary func(pr *om.Proc, b *om.Block) om.RegSet

	// Unknown is joined in place of a CFG edge the IR cannot resolve (a
	// successor whose Index does not name its slot in the procedure):
	// the problem's worst case.
	Unknown om.RegSet
}

// Solver runs a Problem procedure by procedure, keeping per-block state
// external so an interprocedural outer loop can warm-start each round.
// Edges counts CFG edge evaluations across all worklist passes — the
// engine's work metric, reported by clients as a counter.
type Solver struct {
	Problem
	Edges int
}

// validSuccs reports, per successor slot, whether the edge stays inside
// the procedure (succ Index names its own slot in pr.Blocks).
func validSucc(pr *om.Proc, s *om.Block) bool {
	si := s.Index
	return si >= 0 && si < len(pr.Blocks) && pr.Blocks[si] == s
}

// flowPreds returns, for each block, the blocks whose joined input reads
// its state: CFG predecessors for a backward problem (a block's live-in
// feeds its predecessors' outputs), CFG successors for a forward one.
func (s *Solver) flowPreds(pr *om.Proc) [][]int {
	n := len(pr.Blocks)
	deps := make([][]int, n)
	for bi, b := range pr.Blocks {
		for _, sb := range b.Succs {
			if !validSucc(pr, sb) {
				continue
			}
			if s.Dir == Backward {
				deps[sb.Index] = append(deps[sb.Index], bi)
			} else {
				deps[bi] = append(deps[bi], sb.Index)
			}
		}
	}
	return deps
}

// join computes a block's input value: the union of the neighboring
// blocks' states across flow edges (Unknown for malformed edges), plus
// the problem's Boundary contribution. For a backward problem the
// neighbors are the block's CFG successors; for a forward one its
// predecessors, which the caller supplies (nil for backward).
func (s *Solver) join(pr *om.Proc, b *om.Block, state []om.RegSet, preds []int) om.RegSet {
	var v om.RegSet
	if s.Dir == Backward {
		for _, sb := range b.Succs {
			s.Edges++
			if validSucc(pr, sb) {
				v = v.Union(state[sb.Index])
			} else {
				v = v.Union(s.Unknown)
			}
		}
	} else {
		for _, pi := range preds {
			s.Edges++
			v = v.Union(state[pi])
		}
	}
	if s.Boundary != nil {
		v = v.Union(s.Boundary(pr, b))
	}
	return v
}

// cfgPreds returns each block's valid intra-procedure CFG predecessors.
func cfgPreds(pr *om.Proc) [][]int {
	preds := make([][]int, len(pr.Blocks))
	for bi, b := range pr.Blocks {
		for _, sb := range b.Succs {
			if validSucc(pr, sb) {
				preds[sb.Index] = append(preds[sb.Index], bi)
			}
		}
	}
	return preds
}

// SolveProc runs the per-procedure worklist to a fixpoint. state holds
// one value per block — the block's flow output (live-in for a backward
// problem, the value at the block's end for a forward one) — and is
// updated in place, so a caller iterating to an interprocedural fixpoint
// warm-starts from the previous round. Every block is seeded (so
// unreachable blocks get sound solutions too), visited against the flow
// direction first (reverse layout order for backward, layout order for
// forward), and re-queued through its flow dependents when its value
// grows.
func (s *Solver) SolveProc(pr *om.Proc, state []om.RegSet) {
	n := len(pr.Blocks)
	if n == 0 {
		return
	}
	trans := make([]Transfer, n)
	for bi, b := range pr.Blocks {
		trans[bi] = s.blockTransfer(b)
	}
	var preds [][]int // CFG predecessors; join inputs for Forward
	if s.Dir == Forward {
		preds = cfgPreds(pr)
	}
	deps := s.flowPreds(pr)
	onList := make([]bool, n)
	work := make([]int, 0, n)
	for bi := 0; bi < n; bi++ {
		// Popped from the tail: reverse layout order first for a
		// backward problem, layout order first for a forward one.
		if s.Dir == Backward {
			work = append(work, bi)
		} else {
			work = append(work, n-1-bi)
		}
		onList[bi] = true
	}
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		onList[bi] = false
		var p []int
		if preds != nil {
			p = preds[bi]
		}
		nv := trans[bi].Apply(s.join(pr, pr.Blocks[bi], state, p))
		if nv != state[bi] {
			state[bi] = nv
			for _, di := range deps[bi] {
				if !onList[di] {
					work = append(work, di)
					onList[di] = true
				}
			}
		}
	}
}

// blockTransfer composes the block's instruction transfers in flow
// order.
func (s *Solver) blockTransfer(b *om.Block) Transfer {
	t := Identity()
	if s.Dir == Backward {
		for k := len(b.Insts) - 1; k >= 0; k-- {
			t = t.Then(s.Transfer(b.Insts[k]))
		}
	} else {
		for _, in := range b.Insts {
			t = t.Then(s.Transfer(in))
		}
	}
	return t
}

// VisitProc materializes per-instruction values from a solved block
// state, calling visit once per instruction with the value before and
// after it in PROGRAM order (for a backward problem the flow input is
// "after"; for a forward one it is "before").
func (s *Solver) VisitProc(pr *om.Proc, state []om.RegSet, visit func(in *om.Inst, before, after om.RegSet)) {
	var preds [][]int
	if s.Dir == Forward {
		preds = cfgPreds(pr)
	}
	for bi, b := range pr.Blocks {
		var p []int
		if preds != nil {
			p = preds[bi]
		}
		v := s.join(pr, b, state, p)
		if s.Dir == Backward {
			for k := len(b.Insts) - 1; k >= 0; k-- {
				in := b.Insts[k]
				after := v
				v = s.Transfer(in).Apply(v)
				visit(in, v, after)
			}
		} else {
			for _, in := range b.Insts {
				before := v
				v = s.Transfer(in).Apply(v)
				visit(in, before, v)
			}
		}
	}
}

// NewState allocates the per-procedure block state the solver operates
// on, all-∅ (the bottom of a may-problem's lattice).
func NewState(p *om.Program) [][]om.RegSet {
	state := make([][]om.RegSet, len(p.Procs))
	for i, pr := range p.Procs {
		state[i] = make([]om.RegSet, len(pr.Blocks))
	}
	return state
}

// Fixpoint runs the interprocedural outer loop: each round re-solves
// every procedure against the current summaries (warm-started from the
// last round), then re-extracts each procedure's summary; when a full
// round leaves every summary unchanged, every procedure was solved
// against the final summaries and the whole system is at its least
// fixpoint. summarize extracts a procedure's summary from its solved
// state; nil means the first block's value (the entry summary of a
// backward problem). The Problem's Transfer/Boundary closures are
// expected to read summary between rounds. Returns the round count.
func (s *Solver) Fixpoint(procs []*om.Proc, state [][]om.RegSet, summary []om.RegSet, summarize func(pr *om.Proc, state []om.RegSet) om.RegSet) int {
	if summarize == nil {
		summarize = func(pr *om.Proc, state []om.RegSet) om.RegSet {
			if len(state) > 0 {
				return state[0]
			}
			return 0
		}
	}
	rounds := 0
	for changed := true; changed; {
		changed = false
		rounds++
		for pi, pr := range procs {
			s.SolveProc(pr, state[pi])
			if e := summarize(pr, state[pi]); e != summary[pi] {
				summary[pi] = e
				changed = true
			}
		}
	}
	return rounds
}
