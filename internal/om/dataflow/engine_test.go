package dataflow_test

import (
	"testing"

	"atom/internal/alpha"
	"atom/internal/om"
	"atom/internal/om/dataflow"
)

// Edge cases the generic engine inherits from liveness and must keep:
// indirect-transfer conservatism, single-block procedures, and
// convergence of the interprocedural summary fixpoint on mutual
// recursion. Plus a direct exercise of the Forward direction, which
// liveness never uses.

func reg(r alpha.Reg) om.RegSet { return om.RegSet(0).Add(r) }

// TestLivenessIndirectConservatism: jsr and call_pal have unknown
// callees, so everything is live immediately before them — even a
// register the block itself defined just above.
func TestLivenessIndirectConservatism(t *testing.T) {
	ret := alpha.Inst{Op: alpha.OpRet, Ra: alpha.Zero, Rb: alpha.RA}
	jsr := alpha.Inst{Op: alpha.OpJsr, Ra: alpha.RA, Rb: alpha.PV}
	pal := alpha.Inst{Op: alpha.OpCallPal, PalFn: 0}
	clrT0 := alpha.RI(alpha.OpAddq, alpha.Zero, 0, alpha.T0)

	for _, tc := range []struct {
		name string
		call alpha.Inst
	}{
		{"jsr", jsr},
		{"call_pal", pal},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := &om.Program{Procs: []*om.Proc{mkProc("p", 0, 0x1000,
				[][]alpha.Inst{{clrT0, tc.call, ret}}, [][]int{{}})}}
			lv := dataflow.Compute(p)
			callIn := lv.LiveIn(p.Procs[0].Blocks[0].Insts[1])
			for _, r := range []alpha.Reg{alpha.T0, alpha.S3, alpha.A0, alpha.AT} {
				if !callIn.Has(r) {
					t.Errorf("%s not live before %s: unknown callee must see everything", r, tc.name)
				}
			}
			// The write above the call still kills t0 at entry: the
			// conservative gen does not leak past a definition.
			if lv.LiveIn(p.Procs[0].Blocks[0].Insts[0]).Has(alpha.T0) {
				t.Error("t0 live at entry despite being defined before any use")
			}
		})
	}
}

// TestLivenessSingleBlock: a one-block procedure (no CFG edges at all)
// still solves: operands live at entry, the result dead.
func TestLivenessSingleBlock(t *testing.T) {
	ret := alpha.Inst{Op: alpha.OpRet, Ra: alpha.Zero, Rb: alpha.RA}
	p := &om.Program{Procs: []*om.Proc{mkProc("one", 0, 0x1000,
		[][]alpha.Inst{{alpha.RR(alpha.OpAddq, alpha.A0, alpha.A1, alpha.V0), ret}},
		[][]int{{}})}}
	lv := dataflow.Compute(p)
	in := lv.LiveIn(firstInst(p, 0, 0))
	if !in.Has(alpha.A0) || !in.Has(alpha.A1) {
		t.Errorf("operands not live at entry: %v", in.Regs())
	}
	if in.Has(alpha.V0) {
		t.Error("v0 live at entry despite being defined before the ret")
	}
	if lv.EntryLive("one") != in {
		t.Error("entry summary disagrees with the entry block's live-in")
	}
}

// TestLivenessMutualRecursion: two procedures calling each other through
// bsr converge to a finite summary fixpoint, with the caller-side kills
// (v0 defined before use in both, ra must-defined by bsr) visible in the
// entry summaries.
func TestLivenessMutualRecursion(t *testing.T) {
	ret := alpha.Inst{Op: alpha.OpRet, Ra: alpha.Zero, Rb: alpha.RA}
	// a @ 0x1000: v0 = a0; bsr b; ret
	a := mkProc("a", 0, 0x1000, [][]alpha.Inst{{
		alpha.RR(alpha.OpAddq, alpha.A0, alpha.Zero, alpha.V0), // 0x1000
		alpha.Br(alpha.OpBsr, alpha.RA, (0x2000-0x1008)/4),     // 0x1004 -> b
		ret, // 0x1008
	}}, [][]int{{}})
	// b @ 0x2000: v0 = a1; beq t0, skip; bsr a; skip: ret
	b := mkProc("b", 1, 0x2000, [][]alpha.Inst{
		{
			alpha.RR(alpha.OpAddq, alpha.A1, alpha.Zero, alpha.V0), // 0x2000
			alpha.Br(alpha.OpBeq, alpha.T0, 1),                     // 0x2004 -> 0x200c
		},
		{alpha.Br(alpha.OpBsr, alpha.RA, (0x1000-0x200c)/4)}, // 0x2008 -> a
		{ret}, // 0x200c
	}, [][]int{{1, 2}, {2}, {}})
	p := &om.Program{Procs: []*om.Proc{a, b}}

	lv := dataflow.Compute(p)
	if lv.Rounds < 2 {
		t.Errorf("mutual recursion converged in %d round(s); the summaries cannot have propagated", lv.Rounds)
	}
	ea, eb := lv.EntryLive("a"), lv.EntryLive("b")
	if ea.Has(alpha.V0) || eb.Has(alpha.V0) {
		t.Errorf("v0 live at an entry despite being defined first in both procs (a=%v b=%v)", ea.Regs(), eb.Regs())
	}
	if ea.Has(alpha.RA) {
		t.Error("ra live at a's entry despite the bsr must-define")
	}
	if !ea.Has(alpha.A0) || !ea.Has(alpha.A1) {
		t.Errorf("callee reads not propagated into a's summary: %v", ea.Regs())
	}
	if !eb.Has(alpha.T0) {
		t.Error("branch condition t0 not live at b's entry")
	}
}

// TestEngineForward drives the engine in the Forward direction (which
// liveness never uses) with a may-defined problem over a diamond: both
// arms define t0, the join block's output must contain it plus its own
// definition, and nothing else appears from nowhere.
func TestEngineForward(t *testing.T) {
	ret := alpha.Inst{Op: alpha.OpRet, Ra: alpha.Zero, Rb: alpha.RA}
	pr := mkProc("d", 0, 0x1000, [][]alpha.Inst{
		{alpha.Br(alpha.OpBeq, alpha.A0, 2)},                                                   // b0 -> b2
		{alpha.RI(alpha.OpAddq, alpha.Zero, 1, alpha.T0), alpha.Br(alpha.OpBr, alpha.Zero, 1)}, // b1
		{alpha.RI(alpha.OpAddq, alpha.Zero, 2, alpha.T0)},                                      // b2
		{alpha.RR(alpha.OpAddq, alpha.T0, alpha.A0, alpha.V0), ret},                            // b3
	}, [][]int{{1, 2}, {3}, {3}, {}})

	sol := &dataflow.Solver{Problem: dataflow.Problem{
		Dir: dataflow.Forward,
		Transfer: func(in *om.Inst) dataflow.Transfer {
			tr := dataflow.Identity()
			if w, ok := in.I.WritesReg(); ok {
				tr.Gen = reg(w)
			}
			return tr
		},
	}}
	state := make([]om.RegSet, len(pr.Blocks))
	sol.SolveProc(pr, state)

	if want := reg(alpha.T0).Add(alpha.V0); state[3] != want {
		t.Errorf("join block out = %v, want %v", state[3].Regs(), want.Regs())
	}
	if state[0] != 0 {
		t.Errorf("entry block defines nothing but has out %v", state[0].Regs())
	}
	// Per-instruction materialization in program order: t0 is defined
	// before the join block's first instruction, v0 only after it.
	sol.VisitProc(pr, state, func(in *om.Inst, before, after om.RegSet) {
		if in != pr.Blocks[3].Insts[0] {
			return
		}
		if !before.Has(alpha.T0) || before.Has(alpha.V0) {
			t.Errorf("before join inst: %v", before.Regs())
		}
		if !after.Has(alpha.V0) {
			t.Errorf("after join inst: %v", after.Regs())
		}
	})
	if sol.Edges == 0 {
		t.Error("forward solve evaluated no edges")
	}
}
