package dataflow

import (
	"atom/internal/alpha"
	"atom/internal/obs"
	"atom/internal/om"
)

// Backward may-liveness over the OM IR. A register is live at a point if
// some execution path from that point reads its current value before
// overwriting it; ATOM only needs to save a register around an analysis
// call if it is live there AND the analysis routine may modify it.
//
// The analysis is interprocedural but deliberately summary-based, layered
// the same way as ModifiedRegs: within a procedure a worklist fixpoint
// runs over the CFG successor edges; across procedures each procedure
// exports one entry summary (the live-in set of its first block), used at
// every direct call (bsr) and cross-procedure branch that targets it.
// Everything unresolvable is all-live:
//
//   - ret and jmp: the continuation (caller, jump table) is unknown;
//   - jsr and call_pal: the callee is unknown, so it may read anything
//     and the state of the world after it returns is unknowable here;
//   - bsr or br into the middle of another procedure;
//   - control falling off the end of a procedure.
//
// The only must-def the analysis exploits across calls is bsr writing ra:
// neither the callee nor any post-return code can observe the caller's
// pre-call ra, so ra is dead immediately before every resolved bsr.
//
// The fixpoint itself runs on the generic engine (engine.go) as a
// Backward Problem: instTransfer is the per-instruction transfer,
// liveBoundary the conservative continuation of each block's terminator,
// and allLive the worst case joined over malformed edges.

// allLive is every architecturally meaningful register: the caller-save
// set shared with the modified-register summary plus the callee-save
// registers (an unknown callee may read those too — it must, to save
// them). The zero register has no state and is never live.
var allLive = AllRegs()

var raBit = om.RegSet(0).Add(alpha.RA)

// Liveness holds the fixpoint solution for one program. Query with
// LiveIn/LiveOut; instructions the analysis has not seen (not part of the
// analyzed program) report everything live.
type Liveness struct {
	liveIn  map[*om.Inst]om.RegSet
	liveOut map[*om.Inst]om.RegSet
	entry   map[string]om.RegSet

	// Rounds is the number of interprocedural iterations to convergence;
	// Edges counts CFG successor-edge evaluations across all worklist
	// passes.
	Rounds int
	Edges  int
}

// LiveIn returns the registers that may be read before being overwritten
// on some path starting at in (in's own reads included).
func (l *Liveness) LiveIn(in *om.Inst) om.RegSet {
	if s, ok := l.liveIn[in]; ok {
		return s
	}
	return allLive
}

// LiveOut returns the registers that may be read on some path starting
// immediately after in.
func (l *Liveness) LiveOut(in *om.Inst) om.RegSet {
	if s, ok := l.liveOut[in]; ok {
		return s
	}
	return allLive
}

// EntryLive returns the live-in summary at the named procedure's entry.
func (l *Liveness) EntryLive(proc string) om.RegSet {
	if s, ok := l.entry[proc]; ok {
		return s
	}
	return allLive
}

// Compute runs the analysis over a program.
func Compute(p *om.Program) *Liveness { return ComputeCtx(nil, p) }

// ComputeCtx is Compute with a stage context: the fixpoint runs under an
// "om.liveness" span annotated with the interprocedural round count and
// the number of CFG edge evaluations, also published as the
// "om.liveness.rounds" and "om.liveness.edges" counters.
func ComputeCtx(ctx *obs.Ctx, p *om.Program) *Liveness {
	_, sp := ctx.Start("om.liveness", obs.Int("procs", int64(len(p.Procs))))
	defer sp.End()

	procStart := map[uint64]int{}
	for i, pr := range p.Procs {
		procStart[pr.Addr] = i
	}
	entry := make([]om.RegSet, len(p.Procs))
	// entryOf resolves a transfer target: the callee's current entry
	// summary when addr starts a known procedure, unknown otherwise.
	entryOf := func(addr uint64) (om.RegSet, bool) {
		if i, ok := procStart[addr]; ok {
			return entry[i], true
		}
		return allLive, false
	}

	lv := &Liveness{
		liveIn:  make(map[*om.Inst]om.RegSet, p.NumInsts()),
		liveOut: make(map[*om.Inst]om.RegSet, p.NumInsts()),
		entry:   make(map[string]om.RegSet, len(p.Procs)),
	}

	sol := &Solver{Problem: Problem{
		Dir:      Backward,
		Transfer: func(in *om.Inst) Transfer { return instTransfer(in, entryOf) },
		Boundary: func(pr *om.Proc, b *om.Block) om.RegSet { return liveBoundary(b, entryOf) },
		Unknown:  allLive,
	}}
	state := NewState(p)
	lv.Rounds = sol.Fixpoint(p.Procs, state, entry, nil)

	// Materialize per-instruction sets from the block solution.
	for pi, pr := range p.Procs {
		lv.entry[pr.Name] = entry[pi]
		sol.VisitProc(pr, state[pi], func(in *om.Inst, before, after om.RegSet) {
			lv.liveIn[in] = before
			lv.liveOut[in] = after
		})
	}
	lv.Edges = sol.Edges

	sp.SetAttr(
		obs.Int("rounds", int64(lv.Rounds)),
		obs.Int("edges", int64(lv.Edges)))
	ctx.Count("om.liveness.rounds", int64(lv.Rounds))
	ctx.Count("om.liveness.edges", int64(lv.Edges))
	return lv
}

// liveBoundary is the conservative contribution to a block's live-out
// that its CFG edges do not represent: the continuation of a return or
// indirect jump (everything), a resolved cross-procedure transfer (the
// callee's entry summary), or falling off the end of the procedure.
func liveBoundary(b *om.Block, entryOf func(uint64) (om.RegSet, bool)) om.RegSet {
	if len(b.Insts) == 0 {
		return 0
	}
	// cont is the contribution of a transfer to addr that may not have a
	// CFG edge: nothing if an edge covers it, the callee's entry summary
	// for a procedure start, everything otherwise.
	cont := func(addr uint64) om.RegSet {
		for _, s := range b.Succs {
			if len(s.Insts) > 0 && s.Insts[0].Addr == addr {
				return 0
			}
		}
		if e, known := entryOf(addr); known {
			return e
		}
		return allLive
	}
	last := b.Insts[len(b.Insts)-1]
	op := last.I.Op
	switch {
	case op == alpha.OpRet || op == alpha.OpJmp:
		return allLive
	case op.IsCondBranch():
		target := last.Addr + 4 + uint64(int64(last.I.Disp)*4)
		return cont(target).Union(cont(last.Addr + 4))
	case op == alpha.OpBr:
		target := last.Addr + 4 + uint64(int64(last.I.Disp)*4)
		return cont(target)
	default:
		return cont(last.Addr + 4)
	}
}

// instTransfer is the backward transfer of one instruction.
func instTransfer(in *om.Inst, entryOf func(uint64) (om.RegSet, bool)) Transfer {
	switch in.I.Op {
	case alpha.OpJsr, alpha.OpCallPal:
		// Unknown callee: it may read anything, and nothing about the
		// pre-call state can be inferred from what happens after it.
		return Transfer{Mask: 0, Gen: allLive}
	case alpha.OpBsr:
		target := in.Addr + 4 + uint64(int64(in.I.Disp)*4)
		e, known := entryOf(target)
		if !known {
			return Transfer{Mask: 0, Gen: allLive}
		}
		// Resolved direct call: the callee reads its entry summary, and
		// whatever outlives the return passes through — except ra, which
		// the bsr itself must-defines, so no one downstream can observe
		// the caller's pre-call value.
		return Transfer{Mask: allLive &^ raBit, Gen: e &^ raBit}
	}
	var use om.RegSet
	for _, r := range in.I.ReadsRegs(nil) {
		use = use.Add(r)
	}
	mask := allLive
	if w, ok := in.I.WritesReg(); ok {
		mask &^= om.RegSet(0).Add(w)
	}
	return Transfer{Mask: mask, Gen: use}
}
