package dataflow

import (
	"atom/internal/alpha"
	"atom/internal/obs"
	"atom/internal/om"
)

// Backward may-liveness over the OM IR. A register is live at a point if
// some execution path from that point reads its current value before
// overwriting it; ATOM only needs to save a register around an analysis
// call if it is live there AND the analysis routine may modify it.
//
// The analysis is interprocedural but deliberately summary-based, layered
// the same way as ModifiedRegs: within a procedure a worklist fixpoint
// runs over the CFG successor edges; across procedures each procedure
// exports one entry summary (the live-in set of its first block), used at
// every direct call (bsr) and cross-procedure branch that targets it.
// Everything unresolvable is all-live:
//
//   - ret and jmp: the continuation (caller, jump table) is unknown;
//   - jsr and call_pal: the callee is unknown, so it may read anything
//     and the state of the world after it returns is unknowable here;
//   - bsr or br into the middle of another procedure;
//   - control falling off the end of a procedure.
//
// The only must-def the analysis exploits across calls is bsr writing ra:
// neither the callee nor any post-return code can observe the caller's
// pre-call ra, so ra is dead immediately before every resolved bsr.
//
// Starting every set at ∅ and growing to the least fixpoint is sound for
// may-liveness: the result over-approximates nothing and misses no path,
// because every transfer is monotone and the conservative cases inject
// allLive wholesale.

// allLive is every architecturally meaningful register: the caller-save
// set shared with the modified-register summary plus the callee-save
// registers (an unknown callee may read those too — it must, to save
// them). The zero register has no state and is never live.
var allLive = func() om.RegSet {
	s := ConservativeCallerSave()
	for r := alpha.Reg(0); r < alpha.NumRegs; r++ {
		if r != alpha.Zero {
			s = s.Add(r)
		}
	}
	return s
}()

var raBit = om.RegSet(0).Add(alpha.RA)

// Liveness holds the fixpoint solution for one program. Query with
// LiveIn/LiveOut; instructions the analysis has not seen (not part of the
// analyzed program) report everything live.
type Liveness struct {
	liveIn  map[*om.Inst]om.RegSet
	liveOut map[*om.Inst]om.RegSet
	entry   map[string]om.RegSet

	// Rounds is the number of interprocedural iterations to convergence;
	// Edges counts CFG successor-edge evaluations across all worklist
	// passes.
	Rounds int
	Edges  int
}

// LiveIn returns the registers that may be read before being overwritten
// on some path starting at in (in's own reads included).
func (l *Liveness) LiveIn(in *om.Inst) om.RegSet {
	if s, ok := l.liveIn[in]; ok {
		return s
	}
	return allLive
}

// LiveOut returns the registers that may be read on some path starting
// immediately after in.
func (l *Liveness) LiveOut(in *om.Inst) om.RegSet {
	if s, ok := l.liveOut[in]; ok {
		return s
	}
	return allLive
}

// EntryLive returns the live-in summary at the named procedure's entry.
func (l *Liveness) EntryLive(proc string) om.RegSet {
	if s, ok := l.entry[proc]; ok {
		return s
	}
	return allLive
}

// transfer is one composable backward step: liveIn = liveOut&mask | gen.
// Every per-instruction effect has this shape — ordinary def/use
// (mask=^def, gen=use), unknown call (mask=0, gen=allLive), resolved call
// (mask=^{ra}, gen=calleeEntry\{ra}) — so whole-block transfers compose
// into the same two words and the block fixpoint costs O(1) per visit.
type transfer struct{ mask, gen om.RegSet }

func (t transfer) apply(out om.RegSet) om.RegSet { return out&t.mask | t.gen }

// compose returns f∘t: t applied to the block's live-out first, then f
// (f is the transfer of the instruction ABOVE the ones t covers).
func (t transfer) compose(f transfer) transfer {
	return transfer{mask: t.mask & f.mask, gen: t.gen&f.mask | f.gen}
}

var identity = transfer{mask: allLive}

// Compute runs the analysis over a program.
func Compute(p *om.Program) *Liveness { return ComputeCtx(nil, p) }

// ComputeCtx is Compute with a stage context: the fixpoint runs under an
// "om.liveness" span annotated with the interprocedural round count and
// the number of CFG edge evaluations, also published as the
// "om.liveness.rounds" and "om.liveness.edges" counters.
func ComputeCtx(ctx *obs.Ctx, p *om.Program) *Liveness {
	_, sp := ctx.Start("om.liveness", obs.Int("procs", int64(len(p.Procs))))
	defer sp.End()

	procStart := map[uint64]int{}
	for i, pr := range p.Procs {
		procStart[pr.Addr] = i
	}
	entry := make([]om.RegSet, len(p.Procs))
	// entryOf resolves a transfer target: the callee's current entry
	// summary when addr starts a known procedure, unknown otherwise.
	entryOf := func(addr uint64) (om.RegSet, bool) {
		if i, ok := procStart[addr]; ok {
			return entry[i], true
		}
		return allLive, false
	}

	lv := &Liveness{
		liveIn:  make(map[*om.Inst]om.RegSet, p.NumInsts()),
		liveOut: make(map[*om.Inst]om.RegSet, p.NumInsts()),
		entry:   make(map[string]om.RegSet, len(p.Procs)),
	}
	in := make([][]om.RegSet, len(p.Procs)) // block live-in, kept across rounds
	for i, pr := range p.Procs {
		in[i] = make([]om.RegSet, len(pr.Blocks))
	}

	// Outer fixpoint over the entry summaries. Each round re-solves every
	// procedure against the current summaries (warm-started from the last
	// round); when a full round leaves every summary unchanged, every
	// procedure was solved against the final summaries and the whole
	// system is at its least fixpoint.
	for changed := true; changed; {
		changed = false
		lv.Rounds++
		for pi, pr := range p.Procs {
			solveProc(pr, in[pi], entryOf, &lv.Edges)
			var e om.RegSet
			if len(pr.Blocks) > 0 {
				e = in[pi][0]
			}
			if e != entry[pi] {
				entry[pi] = e
				changed = true
			}
		}
	}

	// Materialize per-instruction sets from the block solution.
	for pi, pr := range p.Procs {
		lv.entry[pr.Name] = entry[pi]
		for bi, b := range pr.Blocks {
			out := blockOut(pr, b, bi, in[pi], entryOf, &lv.Edges)
			for k := len(b.Insts) - 1; k >= 0; k-- {
				i := b.Insts[k]
				lv.liveOut[i] = out
				out = instTransfer(i, entryOf).apply(out)
				lv.liveIn[i] = out
			}
		}
	}

	sp.SetAttr(
		obs.Int("rounds", int64(lv.Rounds)),
		obs.Int("edges", int64(lv.Edges)))
	ctx.Count("om.liveness.rounds", int64(lv.Rounds))
	ctx.Count("om.liveness.edges", int64(lv.Edges))
	return lv
}

// solveProc runs the intra-procedure worklist to a fixpoint given the
// current entry summaries. Every block is seeded (so unreachable blocks
// get sound solutions too), visited in reverse layout order first, and
// re-queued via predecessor edges when its live-in grows.
func solveProc(pr *om.Proc, in []om.RegSet, entryOf func(uint64) (om.RegSet, bool), edges *int) {
	n := len(pr.Blocks)
	if n == 0 {
		return
	}
	trans := make([]transfer, n)
	for bi, b := range pr.Blocks {
		trans[bi] = blockTransfer(b, entryOf)
	}
	preds := make([][]int, n)
	for bi, b := range pr.Blocks {
		for _, s := range b.Succs {
			if si := s.Index; si >= 0 && si < n && pr.Blocks[si] == s {
				preds[si] = append(preds[si], bi)
			}
		}
	}
	onList := make([]bool, n)
	work := make([]int, 0, n)
	for bi := 0; bi < n; bi++ {
		work = append(work, bi) // popped from the tail: reverse order first
		onList[bi] = true
	}
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		onList[bi] = false
		nin := trans[bi].apply(blockOut(pr, pr.Blocks[bi], bi, in, entryOf, edges))
		if nin != in[bi] {
			in[bi] = nin
			for _, pi := range preds[bi] {
				if !onList[pi] {
					work = append(work, pi)
					onList[pi] = true
				}
			}
		}
	}
}

// blockOut computes a block's live-out: the union of its successor
// blocks' live-ins plus the conservative contribution of any control
// transfer its CFG edges do not represent (returns, indirect jumps,
// cross-procedure branches, falling off the procedure).
func blockOut(pr *om.Proc, b *om.Block, bi int, in []om.RegSet, entryOf func(uint64) (om.RegSet, bool), edges *int) om.RegSet {
	var out om.RegSet
	for _, s := range b.Succs {
		*edges++
		if si := s.Index; si >= 0 && si < len(pr.Blocks) && pr.Blocks[si] == s {
			out = out.Union(in[si])
		} else {
			out = allLive // edge into another procedure: malformed IR
		}
	}
	if len(b.Insts) == 0 {
		return out
	}
	// cont is the contribution of a transfer to addr that may not have a
	// CFG edge: nothing if an edge covers it, the callee's entry summary
	// for a procedure start, everything otherwise.
	cont := func(addr uint64) om.RegSet {
		for _, s := range b.Succs {
			if len(s.Insts) > 0 && s.Insts[0].Addr == addr {
				return 0
			}
		}
		if e, known := entryOf(addr); known {
			return e
		}
		return allLive
	}
	last := b.Insts[len(b.Insts)-1]
	op := last.I.Op
	switch {
	case op == alpha.OpRet || op == alpha.OpJmp:
		return allLive
	case op.IsCondBranch():
		target := last.Addr + 4 + uint64(int64(last.I.Disp)*4)
		return out.Union(cont(target)).Union(cont(last.Addr + 4))
	case op == alpha.OpBr:
		target := last.Addr + 4 + uint64(int64(last.I.Disp)*4)
		return out.Union(cont(target))
	default:
		return out.Union(cont(last.Addr + 4))
	}
}

// blockTransfer composes the block's instruction transfers bottom-up.
func blockTransfer(b *om.Block, entryOf func(uint64) (om.RegSet, bool)) transfer {
	t := identity
	for k := len(b.Insts) - 1; k >= 0; k-- {
		t = t.compose(instTransfer(b.Insts[k], entryOf))
	}
	return t
}

// instTransfer is the backward transfer of one instruction.
func instTransfer(in *om.Inst, entryOf func(uint64) (om.RegSet, bool)) transfer {
	switch in.I.Op {
	case alpha.OpJsr, alpha.OpCallPal:
		// Unknown callee: it may read anything, and nothing about the
		// pre-call state can be inferred from what happens after it.
		return transfer{mask: 0, gen: allLive}
	case alpha.OpBsr:
		target := in.Addr + 4 + uint64(int64(in.I.Disp)*4)
		e, known := entryOf(target)
		if !known {
			return transfer{mask: 0, gen: allLive}
		}
		// Resolved direct call: the callee reads its entry summary, and
		// whatever outlives the return passes through — except ra, which
		// the bsr itself must-defines, so no one downstream can observe
		// the caller's pre-call value.
		return transfer{mask: allLive &^ raBit, gen: e &^ raBit}
	}
	var use om.RegSet
	for _, r := range in.I.ReadsRegs(nil) {
		use = use.Add(r)
	}
	mask := allLive
	if w, ok := in.I.WritesReg(); ok {
		mask &^= om.RegSet(0).Add(w)
	}
	return transfer{mask: mask, gen: use}
}
