package dataflow_test

import (
	"testing"

	"atom/internal/alpha"
	"atom/internal/om"
	"atom/internal/om/dataflow"
)

// mkProc hand-builds one procedure from instruction rows: blocks[i] is
// the instruction sequence of block i, succs[i] its successor block
// indices. Addresses are assigned sequentially from addr so branch
// displacements inside the rows can be computed against the layout.
func mkProc(name string, index int, addr uint64, blocks [][]alpha.Inst, succs [][]int) *om.Proc {
	pr := &om.Proc{Name: name, Index: index, Addr: addr}
	a := addr
	for bi, row := range blocks {
		b := &om.Block{Index: bi}
		for _, in := range row {
			b.Insts = append(b.Insts, &om.Inst{I: in, Addr: a})
			a += 4
		}
		pr.Blocks = append(pr.Blocks, b)
	}
	for bi, ss := range succs {
		for _, si := range ss {
			pr.Blocks[bi].Succs = append(pr.Blocks[bi].Succs, pr.Blocks[si])
		}
	}
	pr.Size = a - addr
	return pr
}

// firstInst returns the first instruction of block bi of proc pi.
func firstInst(p *om.Program, pi, bi int) *om.Inst {
	return p.Procs[pi].Blocks[bi].Insts[0]
}

// TestLivenessCFGs drives the analysis over hand-built control-flow
// graphs and checks per-register verdicts at chosen points. Because a
// ret makes everything live at the block's exit (the continuation is
// unknown), the discriminating assertions are about registers proven
// DEAD — the analysis earning its keep — plus a few live ones as
// anchors.
func TestLivenessCFGs(t *testing.T) {
	ret := alpha.Inst{Op: alpha.OpRet, Ra: alpha.Zero, Rb: alpha.RA}

	tests := []struct {
		name  string
		prog  *om.Program
		at    func(p *om.Program) *om.Inst // query point (LiveIn)
		dead  []alpha.Reg
		live  []alpha.Reg
		debug string
	}{
		{
			// Entry of a diamond: t0 is defined on both arms before its
			// join-point use, v0 only written — both dead at entry; the
			// branch condition a1 and the join operand a0 are live.
			name: "diamond",
			prog: &om.Program{Procs: []*om.Proc{mkProc("d", 0, 0x1000,
				[][]alpha.Inst{
					{alpha.Br(alpha.OpBeq, alpha.A1, 2)},                                                   // 0x1000 -> 0x100c
					{alpha.RI(alpha.OpAddq, alpha.Zero, 1, alpha.T0), alpha.Br(alpha.OpBr, alpha.Zero, 1)}, // 0x1004,0x1008 -> 0x1010
					{alpha.RI(alpha.OpAddq, alpha.Zero, 2, alpha.T0)},                                      // 0x100c
					{alpha.RR(alpha.OpAddq, alpha.T0, alpha.A0, alpha.V0), ret},                            // 0x1010,0x1014
				},
				[][]int{{1, 2}, {3}, {3}, {}},
			)}},
			at:   func(p *om.Program) *om.Inst { return firstInst(p, 0, 0) },
			dead: []alpha.Reg{alpha.T0, alpha.V0},
			live: []alpha.Reg{alpha.A0, alpha.A1},
		},
		{
			// Loop header: t0 is live around the back edge (incremented
			// every iteration, consumed after the loop), a0 is the trip
			// count. Query at the bne so the back-edge flow matters.
			name: "loop-header",
			prog: &om.Program{Procs: []*om.Proc{mkProc("l", 0, 0x2000,
				[][]alpha.Inst{
					{alpha.RI(alpha.OpAddq, alpha.Zero, 0, alpha.T0)}, // 0x2000
					{alpha.RI(alpha.OpAddq, alpha.T0, 1, alpha.T0), // 0x2004
						alpha.RI(alpha.OpSubq, alpha.A0, 1, alpha.A0), // 0x2008
						alpha.Br(alpha.OpBne, alpha.A0, -3)},          // 0x200c -> 0x2004
					{alpha.RR(alpha.OpAddq, alpha.T0, alpha.Zero, alpha.V0), ret}, // 0x2010
				},
				[][]int{{1}, {2, 1}, {}},
			)}},
			at:   func(p *om.Program) *om.Inst { return p.Procs[0].Blocks[1].Insts[2] },
			dead: []alpha.Reg{alpha.V0},
			live: []alpha.Reg{alpha.T0, alpha.A0},
		},
		{
			// The same loop at procedure entry: t0 is defined before any
			// use, so it is dead there despite being loop-carried inside.
			name: "loop-entry",
			prog: &om.Program{Procs: []*om.Proc{mkProc("l", 0, 0x2000,
				[][]alpha.Inst{
					{alpha.RI(alpha.OpAddq, alpha.Zero, 0, alpha.T0)},
					{alpha.RI(alpha.OpAddq, alpha.T0, 1, alpha.T0),
						alpha.RI(alpha.OpSubq, alpha.A0, 1, alpha.A0),
						alpha.Br(alpha.OpBne, alpha.A0, -3)},
					{alpha.RR(alpha.OpAddq, alpha.T0, alpha.Zero, alpha.V0), ret},
				},
				[][]int{{1}, {2, 1}, {}},
			)}},
			at:   func(p *om.Program) *om.Inst { return firstInst(p, 0, 0) },
			dead: []alpha.Reg{alpha.T0, alpha.V0},
			live: []alpha.Reg{alpha.A0},
		},
		{
			// An unreachable block still gets a sound solution: t5 is
			// dead on the reachable path (b2 defines it before the ret)
			// but live inside unreachable b1, which reads it.
			name: "unreachable-block",
			prog: &om.Program{Procs: []*om.Proc{mkProc("u", 0, 0x3000,
				[][]alpha.Inst{
					{alpha.Br(alpha.OpBr, alpha.Zero, 1)},                    // 0x3000 -> 0x3008
					{alpha.RR(alpha.OpAddq, alpha.T5, alpha.Zero, alpha.V0)}, // 0x3004 (unreachable)
					{alpha.RI(alpha.OpAddq, alpha.Zero, 7, alpha.T5), ret},   // 0x3008
				},
				[][]int{{2}, {2}, {}},
			)}},
			at:   func(p *om.Program) *om.Inst { return firstInst(p, 0, 0) },
			dead: []alpha.Reg{alpha.T5},
			live: []alpha.Reg{alpha.A0},
		},
		{
			// A block ending in an indirect jump: everything flowing into
			// the jmp is live (unknown continuation), but a register
			// defined before it with no intervening use is still dead.
			name: "indirect-jump",
			prog: &om.Program{Procs: []*om.Proc{mkProc("j", 0, 0x4000,
				[][]alpha.Inst{
					{alpha.RI(alpha.OpAddq, alpha.Zero, 0, alpha.T1),
						alpha.Inst{Op: alpha.OpJmp, Ra: alpha.Zero, Rb: alpha.T0}},
				},
				[][]int{{}},
			)}},
			at:   func(p *om.Program) *om.Inst { return firstInst(p, 0, 0) },
			dead: []alpha.Reg{alpha.T1},
			live: []alpha.Reg{alpha.T0, alpha.T7},
		},
	}

	for _, tc := range tests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			lv := dataflow.Compute(tc.prog)
			in := tc.at(tc.prog)
			got := lv.LiveIn(in)
			for _, r := range tc.dead {
				if got.Has(r) {
					t.Errorf("%s: %v live at %#x, want dead (live set %v)", tc.name, r, in.Addr, got.Regs())
				}
			}
			for _, r := range tc.live {
				if !got.Has(r) {
					t.Errorf("%s: %v dead at %#x, want live (live set %v)", tc.name, r, in.Addr, got.Regs())
				}
			}
			if lv.Rounds < 1 {
				t.Errorf("%s: no fixpoint rounds recorded", tc.name)
			}
		})
	}
}

// TestLivenessEntrySummaries: a bsr's effect on its caller depends on
// the callee's entry summary. A callee that defines t9 before any use
// makes t9 dead across the call site; a callee that reads t9 keeps it
// live. And ra is dead immediately before any resolved bsr (the bsr
// itself must-defines it).
func TestLivenessEntrySummaries(t *testing.T) {
	ret := alpha.Inst{Op: alpha.OpRet, Ra: alpha.Zero, Rb: alpha.RA}
	bsrTo := func(from, to uint64) alpha.Inst {
		return alpha.Br(alpha.OpBsr, alpha.RA, int32((int64(to)-int64(from)-4)/4))
	}

	// kill: defines t9 then returns. read: consumes t9.
	kill := mkProc("kill", 2, 0x5100, [][]alpha.Inst{
		{alpha.RI(alpha.OpAddq, alpha.Zero, 0, alpha.T9), ret},
	}, [][]int{{}})
	read := mkProc("read", 3, 0x5200, [][]alpha.Inst{
		{alpha.RR(alpha.OpAddq, alpha.T9, alpha.Zero, alpha.V0), ret},
	}, [][]int{{}})

	// Both callers redefine t9 right after the call, so nothing after
	// the site keeps it alive — only the callee's entry summary can.
	callKill := mkProc("callKill", 0, 0x5000, [][]alpha.Inst{
		{bsrTo(0x5000, 0x5100), alpha.RI(alpha.OpAddq, alpha.Zero, 3, alpha.T9), ret},
	}, [][]int{{}})
	callRead := mkProc("callRead", 1, 0x5040, [][]alpha.Inst{
		{bsrTo(0x5040, 0x5200), alpha.RI(alpha.OpAddq, alpha.Zero, 3, alpha.T9), ret},
	}, [][]int{{}})

	p := &om.Program{Procs: []*om.Proc{callKill, callRead, kill, read}}
	lv := dataflow.Compute(p)

	if e := lv.EntryLive("kill"); e.Has(alpha.T9) {
		t.Errorf("kill's entry summary has t9 live: %v", e.Regs())
	}
	if e := lv.EntryLive("read"); !e.Has(alpha.T9) {
		t.Errorf("read's entry summary lacks t9: %v", e.Regs())
	}

	atKill := lv.LiveIn(callKill.Blocks[0].Insts[0])
	atRead := lv.LiveIn(callRead.Blocks[0].Insts[0])
	if atKill.Has(alpha.T9) {
		t.Errorf("t9 live before bsr kill, want dead: %v", atKill.Regs())
	}
	if !atRead.Has(alpha.T9) {
		t.Errorf("t9 dead before bsr read, want live: %v", atRead.Regs())
	}
	for name, s := range map[string]om.RegSet{"callKill": atKill, "callRead": atRead} {
		if s.Has(alpha.RA) {
			t.Errorf("%s: ra live before a resolved bsr, but bsr must-defines it", name)
		}
	}
}

// TestLivenessUnknownInst: instructions outside the analyzed program
// report everything live (fail-safe default).
func TestLivenessUnknownInst(t *testing.T) {
	p := &om.Program{}
	lv := dataflow.Compute(p)
	stray := &om.Inst{I: alpha.RI(alpha.OpAddq, alpha.Zero, 0, alpha.T0), Addr: 0x9000}
	if got := lv.LiveIn(stray); !got.Has(alpha.T0) || !got.Has(alpha.S0) {
		t.Errorf("unknown instruction not all-live: %v", got.Regs())
	}
	if got := lv.LiveOut(stray); !got.Has(alpha.V0) {
		t.Errorf("unknown instruction's live-out not all-live: %v", got.Regs())
	}
	if got := lv.EntryLive("nope"); !got.Has(alpha.RA) {
		t.Errorf("unknown procedure's entry not all-live: %v", got.Regs())
	}
}
