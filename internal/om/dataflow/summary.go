// Package dataflow implements reusable register data-flow passes over the
// OM intermediate representation: the interprocedural modified-register
// summary ATOM uses to size wrapper save sets (paper, Section 4,
// "Reducing Procedure Call Overhead") and the backward register-liveness
// analysis that refines per-site save sets to live ∩ modified — the
// refinement the paper names as the natural next step ("Only the live
// registers need to be saved and restored to preserve the state of the
// program execution").
//
// Both passes share one model of the unknown: a call whose callee cannot
// be resolved (jsr, bsr into the middle of another procedure) clobbers —
// and may read — ConservativeCallerSave. Keeping that set in one place
// guarantees the two analyses cannot drift apart: a register the summary
// assumes clobbered by an indirect call is exactly a register the
// liveness pass keeps alive across one.
package dataflow

import (
	"atom/internal/alpha"
	"atom/internal/obs"
	"atom/internal/om"
)

// ConservativeCallerSave is the register set assumed clobbered by — and
// readable from — a call whose callee is unknown: every caller-save
// register. The modified-register summary and the liveness analysis both
// derive their unknown-callee behavior from this single definition; a
// test pins it against om.AllCallerSave.
func ConservativeCallerSave() om.RegSet { return om.AllCallerSave() }

// ModifiedRegs computes, for every procedure, the set of caller-save
// registers that may be modified when control reaches it — the data-flow
// summary information ATOM uses to minimize register saves around calls
// into analysis routines (paper, Section 4, "Reducing Procedure Call
// Overhead"). The analysis is an interprocedural fixpoint over the call
// graph; indirect calls (jsr) are assumed to clobber
// ConservativeCallerSave, and CALL_PAL services clobber v0.
func ModifiedRegs(p *om.Program) map[string]om.RegSet { return ModifiedRegsCtx(nil, p) }

// ModifiedRegsCtx is ModifiedRegs with a stage context: the fixpoint runs
// under an "om.summary" span annotated with the number of iterations the
// call-graph propagation took to converge.
func ModifiedRegsCtx(ctx *obs.Ctx, p *om.Program) map[string]om.RegSet {
	_, sp := ctx.Start("om.summary", obs.Int("procs", int64(len(p.Procs))))
	defer sp.End()
	direct := make([]om.RegSet, len(p.Procs))
	calls := make([][]int, len(p.Procs)) // proc index -> callee proc indices
	anyIndirect := make([]bool, len(p.Procs))

	procIdxAt := map[uint64]int{}
	for i, pr := range p.Procs {
		procIdxAt[pr.Addr] = i
	}

	for i, pr := range p.Procs {
		for _, b := range pr.Blocks {
			for _, in := range b.Insts {
				if w, ok := in.I.WritesReg(); ok && w.IsCallerSave() {
					direct[i] = direct[i].Add(w)
				}
				switch in.I.Op {
				case alpha.OpBsr:
					target := in.Addr + 4 + uint64(int64(in.I.Disp)*4)
					if ti, ok := procIdxAt[target]; ok {
						calls[i] = append(calls[i], ti)
					} else if t := p.InstAt(target); t != nil && t.Proc() != pr {
						// bsr into the middle of another procedure:
						// treat conservatively.
						anyIndirect[i] = true
					}
				case alpha.OpJsr:
					anyIndirect[i] = true
				case alpha.OpCallPal:
					direct[i] = direct[i].Add(alpha.V0)
				case alpha.OpBr:
					// A cross-procedure br is a tail transfer; treat the
					// target procedure as a callee.
					target := in.Addr + 4 + uint64(int64(in.I.Disp)*4)
					if t := p.InstAt(target); t != nil && t.Proc() != pr {
						if ti, ok := procIdxAt[t.Proc().Addr]; ok {
							calls[i] = append(calls[i], ti)
						}
					}
				}
			}
		}
	}

	mod := make([]om.RegSet, len(p.Procs))
	copy(mod, direct)
	all := ConservativeCallerSave()
	for i := range mod {
		if anyIndirect[i] {
			mod[i] = all
		}
	}
	rounds := 0
	for changed := true; changed; {
		changed = false
		rounds++
		for i := range p.Procs {
			s := mod[i]
			for _, c := range calls[i] {
				s = s.Union(mod[c])
			}
			if s != mod[i] {
				mod[i] = s
				changed = true
			}
		}
	}
	sp.SetAttr(obs.Int("rounds", int64(rounds)))

	out := make(map[string]om.RegSet, len(p.Procs))
	for i, pr := range p.Procs {
		out[pr.Name] = mod[i]
	}
	return out
}
