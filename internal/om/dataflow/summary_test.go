package dataflow_test

import (
	"testing"

	"atom/internal/alpha"
	"atom/internal/om"
	"atom/internal/om/dataflow"
	"atom/internal/rtl"
)

func buildSample(t *testing.T, src string) *om.Program {
	t.Helper()
	exe, err := rtl.BuildProgram("prog.c", src)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	prog, err := om.Build(exe)
	if err != nil {
		t.Fatalf("om.Build: %v", err)
	}
	return prog
}

func TestModifiedRegsSummary(t *testing.T) {
	prog := buildSample(t, `
long leaf_light(long a) { return a + 1; }
long leaf_heavy(long a) {
	long x1 = a * 3;
	long x2 = x1 * 5;
	long x3 = x2 * 7;
	long x4 = x3 * 11 + x1 * x2;
	return x4 - x3 * x2 + x1 * (x4 + 13);
}
long caller(long a) { return leaf_light(a) + 1; }
int main() { return caller(leaf_heavy(1)); }
`)
	mod := dataflow.ModifiedRegs(prog)
	light := mod["leaf_light"]
	heavy := mod["leaf_heavy"]
	caller := mod["caller"]
	if light == 0 || heavy == 0 {
		t.Fatal("summaries empty")
	}
	// Every summarized register is caller-save.
	for _, r := range light.Union(heavy).Union(caller).Regs() {
		if !r.IsCallerSave() {
			t.Errorf("summary contains callee-save register %s", r)
		}
	}
	// A caller's summary includes its callee's.
	if caller.Union(light) != caller {
		t.Errorf("caller summary %v does not include callee %v", caller.Regs(), light.Regs())
	}
	// v0 is modified by any value-returning routine.
	if !light.Has(alpha.V0) {
		t.Error("leaf_light summary lacks v0")
	}
	if _, ok := mod["main"]; !ok {
		t.Error("main missing from summary")
	}
	if om.AllCallerSave().Count() != 22 {
		t.Errorf("AllCallerSave = %d regs, want 22", om.AllCallerSave().Count())
	}
}

// TestConservativeCallerSavePinned pins the shared unknown-callee model:
// both analyses must derive their conservative behavior from one set,
// which is exactly the caller-save registers — and a procedure the
// summary can only treat conservatively (it contains a jsr) summarizes
// to exactly that set.
func TestConservativeCallerSavePinned(t *testing.T) {
	if got, want := dataflow.ConservativeCallerSave(), om.AllCallerSave(); got != want {
		t.Fatalf("ConservativeCallerSave = %v, want om.AllCallerSave = %v", got.Regs(), want.Regs())
	}
	if n := dataflow.ConservativeCallerSave().Count(); n != 22 {
		t.Fatalf("ConservativeCallerSave has %d registers, want 22", n)
	}

	// A hand-built procedure containing an indirect call: its summary is
	// the full conservative set, nothing more, nothing less.
	pr := &om.Proc{Name: "ind", Addr: 0x6000}
	b := &om.Block{}
	for i, in := range []alpha.Inst{
		{Op: alpha.OpJsr, Ra: alpha.RA, Rb: alpha.T0},
		{Op: alpha.OpRet, Ra: alpha.Zero, Rb: alpha.RA},
	} {
		b.Insts = append(b.Insts, &om.Inst{I: in, Addr: 0x6000 + uint64(i)*4})
	}
	pr.Blocks = []*om.Block{b}
	pr.Size = 8
	p := &om.Program{Procs: []*om.Proc{pr}}
	if got := dataflow.ModifiedRegs(p)["ind"]; got != dataflow.ConservativeCallerSave() {
		t.Errorf("jsr-containing proc summarizes to %v, want ConservativeCallerSave %v",
			got.Regs(), dataflow.ConservativeCallerSave().Regs())
	}

	// The liveness side of the same coin: everything in the conservative
	// set is live immediately before the jsr.
	lv := dataflow.Compute(p)
	in := lv.LiveIn(b.Insts[0])
	for _, r := range dataflow.ConservativeCallerSave().Regs() {
		if !in.Has(r) {
			t.Errorf("%v dead before a jsr; the unknown callee may read it", r)
		}
	}
}
