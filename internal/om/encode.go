package om

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"atom/internal/alpha"
	"atom/internal/aout"
	"atom/internal/obs"
)

// The atom-ir/v1 wire format: a stable, versioned binary encoding of a
// pristine (no actions attached) Program, so the lift — the expensive
// recovery of procedures, blocks, instructions and CFG edges from a
// linked executable — can be done once, cached by content address, and
// shipped between processes or machines. The layout is specified in
// DESIGN.md §6; the invariants here are:
//
//   - Encoding is deterministic: one Program has exactly one blob.
//   - decode∘encode is the identity: re-encoding a decoded Program
//     reproduces the input blob byte for byte (om.Verify has a stage
//     that checks this, plus structural equality, on every pristine
//     program it verifies).
//   - Decode is total over untrusted input: truncated, corrupted or
//     version-skewed blobs return errors — never a panic, never an
//     allocation proportional to a length field instead of to the
//     actual input size.
//
// The blob embeds the full executable (aout encoding, text verbatim —
// the alpha encoder is round-trip-checked per instruction but not
// guaranteed word-canonical, so the original words are authoritative)
// followed by the recovered structure: procedure table, per-block
// instruction words (varint-packed, validated against the embedded
// text on decode), CFG successor edges, and an old↔new PC-map section
// that is empty on a pristine lift but reserved in the format so a
// future writer can carry layout results in the same container.

// FormatVersion names the wire format this package reads and writes.
// It is part of the blob magic and of the IR cache key.
const FormatVersion = "atom-ir/v1"

// LifterVersion identifies the lift algorithm (Build) whose output the
// blob captures. It is stored in the meta section and mixed into the IR
// cache key: when the lifter changes in ways that alter its output,
// bumping this constant invalidates every cached or persisted blob.
const LifterVersion = "om-lifter-1"

// irMagic is the blob header: the format version, newline-terminated so
// `head -1` on an IR file names the format.
var irMagic = []byte(FormatVersion + "\n")

// Section tags, in the fixed order Encode emits them. Decode requires
// exactly this sequence; tags above secPCMap are skipped (forward
// compatibility: a later writer may append sections a v1 reader can
// safely ignore).
const (
	secMeta  = 1 // lifter version
	secExe   = 2 // the executable, aout-encoded verbatim
	secProcs = 3 // procedure table: name, size, block count
	secInsts = 4 // per-block instruction words, varint-packed
	secCFG   = 5 // per-block successor edges (indices within the procedure)
	secPCMap = 6 // old<->new PC pairs (empty for a pristine lift)
)

// PCPair is one entry of the static old↔new PC map.
type PCPair struct {
	Old uint64 // original (pre-instrumentation) address
	New uint64 // address in the rewritten text
}

// BlobDigest returns the SHA-256 of an encoded IR blob as hex — the
// content address used to name emitted .ir files in diagnostics.
func BlobDigest(blob []byte) string {
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// packWord maps a 32-bit instruction word to the varint-friendly form:
// the 6-bit primary opcode moves to the low bits and the remaining 26
// bits follow, so words whose operand fields are small — the common
// case for the register-to-register core of a program — pack into
// fewer varint bytes than the raw little-endian word would.
func packWord(w uint32) uint64 {
	return uint64(w>>26) | uint64(w&0x03FF_FFFF)<<6
}

// unpackWord inverts packWord; ok is false if the value does not fit a
// 32-bit word.
func unpackWord(v uint64) (uint32, bool) {
	if v>>6 > 0x03FF_FFFF {
		return 0, false
	}
	return uint32(v&0x3F)<<26 | uint32(v>>6), true
}

// Encode serializes a pristine Program to its atom-ir/v1 form. A
// program with actions attached (Inst.Before/After) is not encodable —
// the wire IR is the lift artifact, produced before any tool runs — and
// returns an error.
func Encode(p *Program) ([]byte, error) { return EncodeCtx(nil, p) }

// EncodeCtx is Encode with a stage context: serialization runs under an
// "om.encode" span annotated with the blob size.
func EncodeCtx(ctx *obs.Ctx, p *Program) ([]byte, error) {
	_, sp := ctx.Start("om.encode")
	defer sp.End()
	if p.Exe == nil {
		return nil, fmt.Errorf("om: encode: program has no executable")
	}
	for _, pr := range p.Procs {
		for _, b := range pr.Blocks {
			for _, in := range b.Insts {
				if len(in.Before) != 0 || len(in.After) != 0 {
					return nil, fmt.Errorf("om: encode: %s+%#x carries attached actions; only a pristine lift is encodable", pr.Name, in.Addr-pr.Addr)
				}
			}
		}
	}

	var buf bytes.Buffer
	buf.Write(irMagic)
	section := func(tag byte, payload []byte) {
		buf.WriteByte(tag)
		buf.Write(binary.AppendUvarint(nil, uint64(len(payload))))
		buf.Write(payload)
	}

	// meta: the lifter version, as a length-prefixed string.
	meta := binary.AppendUvarint(nil, uint64(len(LifterVersion)))
	meta = append(meta, LifterVersion...)
	section(secMeta, meta)

	// exe: the full executable. Text is carried verbatim — it is the
	// authoritative instruction bytes; the insts section is validated
	// against it on decode.
	section(secExe, p.Exe.Encode())

	// procs: count, then (name, size, block count) per procedure. Start
	// addresses are not stored: procedures tile the text contiguously
	// from TextAddr, so they are derived (and re-validated) on decode.
	var procs []byte
	procs = binary.AppendUvarint(procs, uint64(len(p.Procs)))
	for _, pr := range p.Procs {
		procs = binary.AppendUvarint(procs, uint64(len(pr.Name)))
		procs = append(procs, pr.Name...)
		procs = binary.AppendUvarint(procs, pr.Size)
		procs = binary.AppendUvarint(procs, uint64(len(pr.Blocks)))
	}
	section(secProcs, procs)

	// insts: per block, the instruction count and the packed words, read
	// from the executable's text (the words Build decoded).
	var insts []byte
	text, base := p.Exe.Text, p.Exe.TextAddr
	for _, pr := range p.Procs {
		for _, b := range pr.Blocks {
			insts = binary.AppendUvarint(insts, uint64(len(b.Insts)))
			for _, in := range b.Insts {
				off := in.Addr - base
				if off+4 > uint64(len(text)) {
					return nil, fmt.Errorf("om: encode: %s: instruction at %#x outside text", pr.Name, in.Addr)
				}
				w := binary.LittleEndian.Uint32(text[off:])
				insts = binary.AppendUvarint(insts, packWord(w))
			}
		}
	}
	section(secInsts, insts)

	// cfg: per block, the successor count and each successor's block
	// index within the procedure, preserving resolveSuccs order (taken
	// edge before fallthrough) — tools and the liveness pass traverse
	// edges in this order.
	var cfg []byte
	for _, pr := range p.Procs {
		for _, b := range pr.Blocks {
			cfg = binary.AppendUvarint(cfg, uint64(len(b.Succs)))
			for _, s := range b.Succs {
				cfg = binary.AppendUvarint(cfg, uint64(s.Index))
			}
		}
	}
	section(secCFG, cfg)

	// pcmap: the old<->new pairs the blob carries. A pristine lift has
	// none; pairs decoded from a blob round-trip so decode∘encode stays
	// the identity.
	var pcmap []byte
	pcmap = binary.AppendUvarint(pcmap, uint64(len(p.pcPairs)))
	for _, pp := range p.pcPairs {
		pcmap = binary.AppendUvarint(pcmap, pp.Old)
		pcmap = binary.AppendUvarint(pcmap, pp.New)
	}
	section(secPCMap, pcmap)

	blob := buf.Bytes()
	sp.SetAttr(
		obs.Int("bytes", int64(len(blob))),
		obs.Int("insts", int64(p.NumInsts())))
	return blob, nil
}

// irReader is an error-latching cursor over untrusted blob bytes. Every
// accessor is bounds-checked; the first failure is recorded and all
// later reads return zero values, so decode logic never branches on
// intermediate errors.
type irReader struct {
	data []byte
	pos  int
	err  error
}

func (r *irReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("om: ir: offset %d: %s", r.pos, fmt.Sprintf(format, args...))
	}
}

func (r *irReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail("truncated or overlong varint")
		return 0
	}
	r.pos += n
	return v
}

func (r *irReader) u8() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.data) {
		r.fail("truncated")
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// take returns the next n bytes without copying; n is validated against
// the remaining input first, so a corrupt length field cannot force an
// allocation or a panic.
func (r *irReader) take(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)-r.pos) {
		r.fail("truncated: need %d bytes, have %d", n, len(r.data)-r.pos)
		return nil
	}
	b := r.data[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b
}

func (r *irReader) str() string {
	n := r.uvarint()
	return string(r.take(n))
}

func (r *irReader) rest() int { return len(r.data) - r.pos }

// Decode reconstructs a Program from its atom-ir/v1 encoding. The blob
// is untrusted: any truncation, corruption, or version skew (wrong
// format magic, wrong lifter version) returns an error. The returned
// Program is freshly allocated and independent of any other decode of
// the same blob — callers may attach actions to it exactly as they
// would to a fresh Build.
func Decode(blob []byte) (*Program, error) { return DecodeCtx(nil, blob) }

// DecodeCtx is Decode with a stage context: reconstruction runs under
// an "om.decode" span annotated with the blob size and the recovered
// procedure and instruction counts.
func DecodeCtx(ctx *obs.Ctx, blob []byte) (*Program, error) {
	_, sp := ctx.Start("om.decode", obs.Int("bytes", int64(len(blob))))
	defer sp.End()

	if !bytes.HasPrefix(blob, irMagic) {
		if i := bytes.IndexByte(blob, '\n'); i >= 0 && i <= 32 && bytes.HasPrefix(blob, []byte("atom-ir/")) {
			return nil, fmt.Errorf("om: ir: format version skew: blob is %q, this reader handles %q", blob[:i], FormatVersion)
		}
		return nil, fmt.Errorf("om: ir: not an %s blob", FormatVersion)
	}
	r := &irReader{data: blob, pos: len(irMagic)}

	// Sections arrive in fixed order; each is parsed by a sub-reader
	// over exactly its payload, so intra-section trailing bytes are
	// detected per section.
	nextSection := func(tag byte) *irReader {
		got := r.u8()
		if r.err == nil && got != tag {
			r.fail("section tag %d, expected %d", got, tag)
		}
		n := r.uvarint()
		return &irReader{data: r.take(n)}
	}
	sectionDone := func(s *irReader, what string) error {
		if s.err != nil {
			return s.err
		}
		if s.rest() != 0 {
			return fmt.Errorf("om: ir: %s section has %d trailing bytes", what, s.rest())
		}
		return nil
	}

	// meta: reject lifter skew before doing any real work.
	s := nextSection(secMeta)
	lifter := s.str()
	if err := sectionDone(s, "meta"); err != nil {
		return nil, err
	}
	if r.err == nil && lifter != LifterVersion {
		return nil, fmt.Errorf("om: ir: lifter version skew: blob lifted by %q, this reader expects %q", lifter, LifterVersion)
	}

	// exe: the embedded executable; aout.Decode performs its own
	// truncation and plausibility checks.
	s = nextSection(secExe)
	var exe *aout.File
	if r.err == nil && s.err == nil {
		var err error
		exe, err = aout.Decode(s.data)
		if err != nil {
			return nil, fmt.Errorf("om: ir: exe section: %w", err)
		}
		if !exe.Linked {
			return nil, fmt.Errorf("om: ir: exe section holds an unlinked object")
		}
	}

	// procs: reconstruct the procedure table, deriving start addresses
	// from contiguity and validating full text coverage.
	prog := &Program{Exe: exe}
	s = nextSection(secProcs)
	nprocs := s.uvarint()
	// Each procedure costs at least 3 payload bytes (empty name, size,
	// block count), so the count is capped by the section itself.
	if s.err == nil && nprocs > uint64(s.rest())/3+1 {
		return nil, fmt.Errorf("om: ir: implausible procedure count %d", nprocs)
	}
	var totalBlocks uint64
	if s.err == nil && r.err == nil && exe != nil {
		prog.Procs = make([]*Proc, 0, nprocs)
		addr := exe.TextAddr
		for i := uint64(0); i < nprocs && s.err == nil; i++ {
			name := s.str()
			size := s.uvarint()
			nblocks := s.uvarint()
			if s.err != nil {
				break
			}
			if size%4 != 0 {
				return nil, fmt.Errorf("om: ir: procedure %q has misaligned size %d", name, size)
			}
			if size > uint64(len(exe.Text)) {
				return nil, fmt.Errorf("om: ir: procedure %q size %d exceeds text", name, size)
			}
			if nblocks > size/4 {
				return nil, fmt.Errorf("om: ir: procedure %q claims %d blocks in %d instructions", name, nblocks, size/4)
			}
			pr := &Proc{Name: name, Index: int(i), Addr: addr, Size: size, prog: prog}
			pr.Blocks = make([]*Block, 0, nblocks)
			for bi := uint64(0); bi < nblocks; bi++ {
				pr.Blocks = append(pr.Blocks, &Block{Index: int(bi), proc: pr})
			}
			totalBlocks += nblocks
			prog.Procs = append(prog.Procs, pr)
			addr += size
		}
		if s.err == nil {
			if end := exe.TextAddr + uint64(len(exe.Text)); addr != end {
				return nil, fmt.Errorf("om: ir: procedures cover text up to %#x, segment ends at %#x", addr, end)
			}
		}
	}
	if err := sectionDone(s, "procs"); err != nil {
		return nil, err
	}

	// insts: per-block counts and packed words. Every word is validated
	// two ways — it must equal the text bytes at its derived address
	// (the sections must agree with the embedded executable), and it
	// must decode as an instruction (the IR invariant Build guarantees).
	s = nextSection(secInsts)
	if r.err == nil && s.err == nil {
		prog.instAt = make(map[uint64]*Inst, len(exe.Text)/4)
		for _, pr := range prog.Procs {
			addr := pr.Addr
			for _, b := range pr.Blocks {
				n := s.uvarint()
				if s.err != nil {
					break
				}
				// A packed word costs at least 1 payload byte.
				if n > uint64(s.rest()) || addr+n*4 > pr.Addr+pr.Size {
					return nil, fmt.Errorf("om: ir: %s: block %d claims %d instructions beyond its procedure", pr.Name, b.Index, n)
				}
				b.Insts = make([]*Inst, 0, n)
				for k := uint64(0); k < n; k++ {
					v := s.uvarint()
					if s.err != nil {
						break
					}
					w, ok := unpackWord(v)
					if !ok {
						return nil, fmt.Errorf("om: ir: %s+%#x: packed word %#x exceeds 32 bits", pr.Name, addr-pr.Addr, v)
					}
					off := addr - exe.TextAddr
					if tw := binary.LittleEndian.Uint32(exe.Text[off:]); tw != w {
						return nil, fmt.Errorf("om: ir: %s+%#x: instruction word %#08x disagrees with text %#08x", pr.Name, addr-pr.Addr, w, tw)
					}
					in, err := alpha.Decode(w)
					if err != nil {
						return nil, fmt.Errorf("om: ir: %s+%#x: %w", pr.Name, addr-pr.Addr, err)
					}
					inst := &Inst{I: in, Addr: addr, block: b}
					b.Insts = append(b.Insts, inst)
					prog.instAt[addr] = inst
					addr += 4
				}
			}
			if s.err == nil && addr != pr.Addr+pr.Size {
				return nil, fmt.Errorf("om: ir: %s: blocks cover %d bytes, procedure size is %d", pr.Name, addr-pr.Addr, pr.Size)
			}
		}
	}
	if err := sectionDone(s, "insts"); err != nil {
		return nil, err
	}

	// cfg: successor indices, bounds-checked against each procedure's
	// block table.
	s = nextSection(secCFG)
	if r.err == nil && s.err == nil {
		for _, pr := range prog.Procs {
			for _, b := range pr.Blocks {
				n := s.uvarint()
				if s.err != nil {
					break
				}
				if n > uint64(s.rest())+1 {
					return nil, fmt.Errorf("om: ir: %s: block %d claims %d successor edges", pr.Name, b.Index, n)
				}
				if n > 0 {
					b.Succs = make([]*Block, 0, n)
				}
				for k := uint64(0); k < n; k++ {
					idx := s.uvarint()
					if s.err != nil {
						break
					}
					if idx >= uint64(len(pr.Blocks)) {
						return nil, fmt.Errorf("om: ir: %s: block %d successor index %d of %d blocks", pr.Name, b.Index, idx, len(pr.Blocks))
					}
					b.Succs = append(b.Succs, pr.Blocks[idx])
				}
			}
		}
	}
	if err := sectionDone(s, "cfg"); err != nil {
		return nil, err
	}

	// pcmap: reserved scaffolding; a pristine lift carries zero pairs.
	// Pairs are retained so re-encoding reproduces the blob.
	s = nextSection(secPCMap)
	npairs := s.uvarint()
	if s.err == nil && npairs > uint64(s.rest())/2+1 {
		return nil, fmt.Errorf("om: ir: implausible PC-map entry count %d", npairs)
	}
	if s.err == nil && npairs > 0 {
		prog.pcPairs = make([]PCPair, 0, npairs)
		for i := uint64(0); i < npairs && s.err == nil; i++ {
			old := s.uvarint()
			new := s.uvarint()
			prog.pcPairs = append(prog.pcPairs, PCPair{Old: old, New: new})
		}
	}
	if err := sectionDone(s, "pcmap"); err != nil {
		return nil, err
	}

	// Unknown trailing sections (tags above secPCMap, in ascending
	// order) are skipped: a later writer may append data a v1 reader
	// does not understand. Anything else trailing is corruption.
	lastTag := byte(secPCMap)
	for r.err == nil && r.pos < len(r.data) {
		tag := r.u8()
		if r.err == nil && tag <= lastTag {
			r.fail("unexpected section tag %d after %d", tag, lastTag)
			break
		}
		lastTag = tag
		n := r.uvarint()
		r.take(n)
	}
	if r.err != nil {
		return nil, r.err
	}

	sp.SetAttr(
		obs.Int("procs", int64(len(prog.Procs))),
		obs.Int("insts", int64(prog.NumInsts())))
	return prog, nil
}
