package om_test

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"atom/internal/om"
)

// TestEncodeDecodeRoundTrip: decoding an encoded Program reconstructs
// the identical structure, and re-encoding the decoded Program
// reproduces the blob byte for byte (the format's central invariant).
func TestEncodeDecodeRoundTrip(t *testing.T) {
	exe := buildSample(t, sampleProgram)
	prog, err := om.Build(exe)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	blob, err := om.Encode(prog)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !bytes.HasPrefix(blob, []byte(om.FormatVersion+"\n")) {
		t.Fatalf("blob does not start with the %s magic", om.FormatVersion)
	}

	dec, err := om.Decode(blob)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(dec.Procs) != len(prog.Procs) {
		t.Fatalf("decoded %d procs, want %d", len(dec.Procs), len(prog.Procs))
	}
	for i, pr := range prog.Procs {
		dp := dec.Procs[i]
		if dp.Name != pr.Name || dp.Addr != pr.Addr || dp.Size != pr.Size {
			t.Fatalf("proc %d: decoded %q@%#x+%d, want %q@%#x+%d",
				i, dp.Name, dp.Addr, dp.Size, pr.Name, pr.Addr, pr.Size)
		}
		if len(dp.Blocks) != len(pr.Blocks) {
			t.Fatalf("%s: decoded %d blocks, want %d", pr.Name, len(dp.Blocks), len(pr.Blocks))
		}
		for bi, b := range pr.Blocks {
			db := dp.Blocks[bi]
			if len(db.Insts) != len(b.Insts) {
				t.Fatalf("%s block %d: decoded %d insts, want %d", pr.Name, bi, len(db.Insts), len(b.Insts))
			}
			for k, in := range b.Insts {
				di := db.Insts[k]
				if di.Addr != in.Addr || di.I != in.I {
					t.Fatalf("%s block %d inst %d: decoded %+v@%#x, want %+v@%#x",
						pr.Name, bi, k, di.I, di.Addr, in.I, in.Addr)
				}
				if di.Block() != db || di.Proc() != dp {
					t.Fatalf("%s block %d inst %d: bad back-pointers after decode", pr.Name, bi, k)
				}
			}
			if len(db.Succs) != len(b.Succs) {
				t.Fatalf("%s block %d: decoded %d succs, want %d", pr.Name, bi, len(db.Succs), len(b.Succs))
			}
			for k, s := range b.Succs {
				if db.Succs[k].Index != s.Index {
					t.Fatalf("%s block %d succ %d: decoded index %d, want %d",
						pr.Name, bi, k, db.Succs[k].Index, s.Index)
				}
			}
		}
	}
	if dec.NumInsts() != prog.NumInsts() {
		t.Fatalf("decoded %d insts, want %d", dec.NumInsts(), prog.NumInsts())
	}
	for _, pr := range prog.Procs {
		if dec.InstAt(pr.Addr) == nil {
			t.Fatalf("InstAt(%#x) nil after decode", pr.Addr)
		}
	}

	blob2, err := om.Encode(dec)
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("decode∘encode is not the identity")
	}
	if om.BlobDigest(blob) != om.BlobDigest(blob2) {
		t.Fatal("digests disagree for identical blobs")
	}

	// A decoded Program passes the full verifier, including the encoding
	// stage, exactly like a fresh lift.
	if ds := dec.Verify(); len(ds) > 0 {
		t.Fatalf("decoded program fails verify: %v", ds[0])
	}
}

// TestEncodeDeterministic: encoding is a pure function of the Program.
func TestEncodeDeterministic(t *testing.T) {
	exe := buildSample(t, sampleProgram)
	prog, err := om.Build(exe)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	a, err := om.Encode(prog)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	b, err := om.Encode(prog)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two encodes of one Program differ")
	}
}

// TestEncodeRejectsInstrumented: the wire IR is the lift artifact; a
// Program with actions attached is not encodable.
func TestEncodeRejectsInstrumented(t *testing.T) {
	exe := buildSample(t, sampleProgram)
	prog, err := om.Build(exe)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	in := prog.Proc("main").Blocks[0].Insts[0]
	in.Before = append(in.Before, om.Code{})
	if _, err := om.Encode(prog); err == nil {
		t.Fatal("Encode accepted a program with attached actions")
	} else if !strings.Contains(err.Error(), "pristine") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestDecodeVersionSkew: a blob of another format version is rejected
// with an error naming both versions; junk is rejected as not-an-IR-blob.
func TestDecodeVersionSkew(t *testing.T) {
	if _, err := om.Decode([]byte("atom-ir/v9\nrest")); err == nil ||
		!strings.Contains(err.Error(), "version skew") {
		t.Fatalf("future version: got %v, want a version-skew error", err)
	}
	for _, junk := range [][]byte{nil, {}, []byte("ELF"), []byte("atom-ir"), []byte(strings.Repeat("x", 64))} {
		if _, err := om.Decode(junk); err == nil {
			t.Fatalf("Decode(%q) succeeded on junk", junk)
		}
	}
}

// TestDecodeLifterSkew: a blob produced by a different lifter version is
// rejected even when the container format matches.
func TestDecodeLifterSkew(t *testing.T) {
	exe := buildSample(t, sampleProgram)
	prog, err := om.Build(exe)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	blob, err := om.Encode(prog)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	i := bytes.Index(blob, []byte(om.LifterVersion))
	if i < 0 {
		t.Fatal("lifter version not found in blob")
	}
	skewed := append([]byte(nil), blob...)
	skewed[i+len(om.LifterVersion)-1] ^= 1 // same length, different name
	if _, err := om.Decode(skewed); err == nil || !strings.Contains(err.Error(), "lifter version skew") {
		t.Fatalf("got %v, want a lifter-skew error", err)
	}
}

// TestDecodeTruncated: every prefix of a valid blob errors cleanly —
// no panic, no allocation driven by a length field past the input.
func TestDecodeTruncated(t *testing.T) {
	exe := buildSample(t, sampleProgram)
	prog, err := om.Build(exe)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	blob, err := om.Encode(prog)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	step := len(blob)/97 + 1 // sample prefixes across the whole blob
	for n := 0; n < len(blob); n += step {
		if _, err := om.Decode(blob[:n]); err == nil {
			t.Fatalf("Decode accepted a %d/%d-byte prefix", n, len(blob))
		}
	}
}

// TestDecodeCorrupted: flipping bytes in the structural sections is
// caught by the cross-validation against the embedded executable.
func TestDecodeCorrupted(t *testing.T) {
	exe := buildSample(t, sampleProgram)
	prog, err := om.Build(exe)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	blob, err := om.Encode(prog)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// The insts/cfg/pcmap sections occupy the tail of the blob; the exe
	// section dominates the front. Corrupt a spread of tail positions:
	// every flip must either fail decode or decode to a program that
	// still re-encodes consistently (a flip in a skipped/unused byte).
	start := len(blob) * 3 / 4
	for pos := start; pos < len(blob); pos += 13 {
		mut := append([]byte(nil), blob...)
		mut[pos] ^= 0x40
		dec, err := om.Decode(mut)
		if err != nil {
			continue
		}
		re, err := om.Encode(dec)
		if err != nil {
			t.Fatalf("flip at %d: decoded but re-encode failed: %v", pos, err)
		}
		if !bytes.Equal(re, mut) {
			t.Fatalf("flip at %d: accepted a blob that does not round-trip", pos)
		}
	}
}

// TestDecodeUnknownTrailingSection: a v1 reader skips appended sections
// with higher tags (forward compatibility), but rejects out-of-order or
// duplicate tags.
func TestDecodeUnknownTrailingSection(t *testing.T) {
	exe := buildSample(t, sampleProgram)
	prog, err := om.Build(exe)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	blob, err := om.Encode(prog)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	ext := append([]byte(nil), blob...)
	ext = append(ext, 7) // unknown tag
	ext = binary.AppendUvarint(ext, 3)
	ext = append(ext, "xyz"...)
	if _, err := om.Decode(ext); err != nil {
		t.Fatalf("Decode rejected an unknown trailing section: %v", err)
	}

	dup := append([]byte(nil), blob...)
	dup = append(dup, 6) // duplicate pcmap tag
	dup = binary.AppendUvarint(dup, 1)
	dup = append(dup, 0)
	if _, err := om.Decode(dup); err == nil {
		t.Fatal("Decode accepted a duplicate section tag")
	}
}

// TestPCMapSectionRoundTrip: a blob carrying old<->new PC pairs decodes
// and re-encodes identically — the pcmap scaffolding is genuinely wired,
// not write-only.
func TestPCMapSectionRoundTrip(t *testing.T) {
	exe := buildSample(t, sampleProgram)
	prog, err := om.Build(exe)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	blob, err := om.Encode(prog)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	// A pristine blob ends with an empty pcmap section: tag 6, length 1,
	// payload {0}. Splice in a two-pair section.
	tail := []byte{6, 1, 0}
	if !bytes.Equal(blob[len(blob)-3:], tail) {
		t.Fatalf("blob tail %v, want empty pcmap section %v", blob[len(blob)-3:], tail)
	}
	var payload []byte
	payload = binary.AppendUvarint(payload, 2)
	for _, pp := range []om.PCPair{{Old: 0x20000000, New: 0x20000040}, {Old: 0x20000004, New: 0x2000004c}} {
		payload = binary.AppendUvarint(payload, pp.Old)
		payload = binary.AppendUvarint(payload, pp.New)
	}
	withMap := append([]byte(nil), blob[:len(blob)-2]...) // keep tag 6
	withMap = binary.AppendUvarint(withMap, uint64(len(payload)))
	withMap = append(withMap, payload...)

	dec, err := om.Decode(withMap)
	if err != nil {
		t.Fatalf("Decode with pcmap: %v", err)
	}
	re, err := om.Encode(dec)
	if err != nil {
		t.Fatalf("re-Encode with pcmap: %v", err)
	}
	if !bytes.Equal(withMap, re) {
		t.Fatal("pcmap section does not survive a decode∘encode round trip")
	}
}

// TestLayoutPCPairsAcrossDecode: the layout computed from a decoded
// Program produces exactly the PC map of the fresh lift — same pairs,
// bijective both ways (Layout.Verify checks bijectivity under -vet).
func TestLayoutPCPairsAcrossDecode(t *testing.T) {
	exe := buildSample(t, sampleProgram)
	prog, err := om.Build(exe)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	blob, err := om.Encode(prog)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	dec, err := om.Decode(blob)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}

	fresh := prog.Layout().PCPairs()
	decoded := dec.Layout().PCPairs()
	if len(fresh) == 0 {
		t.Fatal("fresh layout has no PC pairs")
	}
	if len(fresh) != len(decoded) {
		t.Fatalf("decoded layout has %d pairs, fresh has %d", len(decoded), len(fresh))
	}
	for i := range fresh {
		if fresh[i] != decoded[i] {
			t.Fatalf("pair %d: decoded %+v, fresh %+v", i, decoded[i], fresh[i])
		}
	}
	if ds := dec.Layout().Verify(); len(ds) > 0 {
		t.Fatalf("decoded layout fails PC-map verification: %v", ds[0])
	}
}
