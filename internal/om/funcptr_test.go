package om_test

import (
	"testing"

	"atom/internal/alpha"
	"atom/internal/aout"
	"atom/internal/asm"
	"atom/internal/link"
	"atom/internal/om"
	"atom/internal/vm"
)

// funcPtrProgram dispatches through a function-pointer table in the data
// segment — the case the paper flags: application text addresses change,
// so address constants referring to text must be re-fixed to the *new*
// locations (while data addresses stay put).
const funcPtrProgram = `
	.text
	.globl __start
	.ent __start
__start:
	# call table[0] then table[1] indirectly, sum results
	la s0, table
	ldq pv, 0(s0)
	jsr ra, (pv)
	mov v0, s1
	ldq pv, 8(s0)
	jsr ra, (pv)
	addq s1, v0, a0
	call_pal 0
	.end __start

	.globl addFive
	.ent addFive
addFive:
	li v0, 5
	ret (ra)
	.end addFive

	.globl addNine
	.ent addNine
addNine:
	li v0, 9
	ret (ra)
	.end addNine

	.data
	.align 3
table:
	.quad addFive, addNine
`

func buildFuncPtr(t *testing.T) *aout.File {
	t.Helper()
	obj, err := asm.Assemble("fp.s", funcPtrProgram)
	if err != nil {
		t.Fatal(err)
	}
	exe, err := link.Link(link.Config{}, []*aout.File{obj})
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

func TestFunctionPointerTableRefixed(t *testing.T) {
	exe := buildFuncPtr(t)
	m, err := vm.New(exe, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	code, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if code != 14 {
		t.Fatalf("baseline exit = %d, want 14", code)
	}

	// Splice nops before every instruction: all procedures move.
	prog, err := om.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	nop := alpha.Mov(alpha.Zero, alpha.Zero)
	for _, pr := range prog.Procs {
		for _, b := range pr.Blocks {
			for _, in := range b.Insts {
				in.Before = append(in.Before, om.Code{Insts: []alpha.Inst{nop, nop, nop}})
			}
		}
	}
	lay := prog.Layout()
	res, err := lay.Finish(func(string) (uint64, bool) { return 0, false })
	if err != nil {
		t.Fatal(err)
	}
	out := &aout.File{
		Linked: true, Entry: res.Entry,
		Text: res.Text, TextAddr: exe.TextAddr,
		Data: res.Data, DataAddr: exe.DataAddr,
		Bss: exe.Bss, BssAddr: exe.BssAddr,
		Symbols: res.Symbols,
	}
	m2, err := vm.New(out, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	code, err = m2.Run()
	if err != nil {
		t.Fatalf("instrumented run: %v", err)
	}
	if code != 14 {
		t.Errorf("instrumented exit = %d, want 14 (function-pointer table not re-fixed?)", code)
	}
	// The table's entries must equal the NEW addresses of the targets.
	addFive, _ := lay.NewAddr(mustSym(t, exe, "addFive"))
	got := uint64(0)
	for i := 0; i < 8; i++ {
		got |= uint64(res.Data[i]) << (8 * i)
	}
	if got != addFive {
		t.Errorf("table[0] = %#x, want new addFive %#x", got, addFive)
	}
}

func mustSym(t *testing.T, f *aout.File, name string) uint64 {
	t.Helper()
	s, ok := f.Lookup(name)
	if !ok {
		t.Fatalf("symbol %q missing", name)
	}
	return s.Value
}
