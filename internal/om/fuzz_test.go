package om_test

import (
	"testing"

	"atom/internal/om"
	"atom/internal/rtl"
)

// FuzzDecode drives om.Decode with arbitrary bytes: the decoder's
// contract over untrusted input is error-or-valid-Program, never a
// panic and never an allocation sized by a corrupt length field. Seeds
// cover a genuine blob, truncations of it, version-skewed headers, and
// plain junk; the fuzzer mutates from there.
func FuzzDecode(f *testing.F) {
	if exe, err := rtl.BuildProgram("prog.c", sampleProgram); err == nil {
		if prog, err := om.Build(exe); err == nil {
			if blob, err := om.Encode(prog); err == nil {
				f.Add(blob)
				for _, n := range []int{0, 11, 12, 40, len(blob) / 2, len(blob) - 1} {
					if n <= len(blob) {
						f.Add(append([]byte(nil), blob[:n]...))
					}
				}
			}
		}
	}
	f.Add([]byte(om.FormatVersion + "\n"))
	f.Add([]byte("atom-ir/v9\nfuture"))
	f.Add([]byte("not an ir blob"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		prog, err := om.Decode(data)
		if err != nil {
			if prog != nil {
				t.Fatal("Decode returned both a Program and an error")
			}
			return
		}
		if prog == nil {
			t.Fatal("Decode returned neither a Program nor an error")
		}
		// Anything the decoder accepts must be internally coherent:
		// re-encodable, and the re-encoding must decode again. (The
		// re-encoding may differ from the input only by dropped unknown
		// trailing sections.)
		blob, err := om.Encode(prog)
		if err != nil {
			t.Fatalf("accepted blob does not re-encode: %v", err)
		}
		if _, err := om.Decode(blob); err != nil {
			t.Fatalf("re-encoded blob does not decode: %v", err)
		}
	})
}
