package om

import (
	"encoding/binary"
	"fmt"
	"sort"

	"atom/internal/alpha"
	"atom/internal/aout"
	"atom/internal/link"
	"atom/internal/obs"
)

// Layout is the address assignment for an instrumented program: every
// original instruction and every spliced Code sequence has been given a
// new address, and the old<->new PC maps are available. No bytes are
// emitted yet — Finish does that once external (analysis image) symbol
// addresses are known.
type Layout struct {
	prog     *Program
	size     uint64
	oldToNew map[uint64]uint64
	newToOld map[uint64]uint64
	codeAddr map[*Code]uint64 // start address of each spliced sequence
}

// Layout assigns new addresses. Original instruction order is preserved;
// each instruction becomes [before-code][instruction][after-code].
func (p *Program) Layout() *Layout { return p.LayoutCtx(nil) }

// LayoutCtx is Layout with a stage context: address assignment runs under
// an "om.layout" span annotated with the instrumented text size.
func (p *Program) LayoutCtx(ctx *obs.Ctx) *Layout {
	_, sp := ctx.Start("om.layout")
	defer sp.End()
	l := &Layout{
		prog:     p,
		oldToNew: make(map[uint64]uint64, len(p.instAt)),
		newToOld: make(map[uint64]uint64, len(p.instAt)),
		codeAddr: map[*Code]uint64{},
	}
	addr := p.Exe.TextAddr
	for _, pr := range p.Procs {
		for _, b := range pr.Blocks {
			for _, in := range b.Insts {
				for ci := range in.Before {
					c := &in.Before[ci]
					l.codeAddr[c] = addr
					addr += uint64(len(c.Insts)) * 4
				}
				l.oldToNew[in.Addr] = addr
				l.newToOld[addr] = in.Addr
				addr += 4
				for ci := range in.After {
					c := &in.After[ci]
					l.codeAddr[c] = addr
					addr += uint64(len(c.Insts)) * 4
				}
			}
		}
	}
	l.size = addr - p.Exe.TextAddr
	sp.SetAttr(obs.Int("text_bytes", int64(l.size)))
	return l
}

// TextSize returns the size in bytes of the instrumented text.
func (l *Layout) TextSize() uint64 { return l.size }

// NewAddr maps an original instruction address to its new address (the
// start of its before-code, so branches into it execute the
// instrumentation, as ATOM requires).
func (l *Layout) NewAddr(old uint64) (uint64, bool) {
	// The new address of an instrumented instruction is the address of
	// its first before-sequence if any.
	in, ok := l.prog.instAt[old]
	if !ok {
		v, ok := l.oldToNew[old]
		return v, ok
	}
	if len(in.Before) > 0 {
		return l.codeAddr[&in.Before[0]], true
	}
	v, ok := l.oldToNew[old]
	return v, ok
}

// OldAddr maps a new instruction address back to the original address,
// for addresses corresponding to original instructions. Spliced code has
// no original address.
func (l *Layout) OldAddr(new uint64) (uint64, bool) {
	v, ok := l.newToOld[new]
	return v, ok
}

// PCPairs returns the old->new PC map as a slice of pairs sorted by
// original address — the layout's half of the atom-ir PC-map
// scaffolding, and the form tests compare across an encode/decode round
// trip (a layout computed from a decoded Program must map exactly like
// one computed from the fresh lift).
func (l *Layout) PCPairs() []PCPair {
	out := make([]PCPair, 0, len(l.oldToNew))
	for old, new := range l.oldToNew {
		out = append(out, PCPair{Old: old, New: new})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Old < out[j].Old })
	return out
}

// ProcRange is one procedure's name and [Start,End) address range, in
// ORIGINAL (pre-instrumentation) addresses. Together with OldAddr it is
// everything a run-time observer needs to report measurements in the
// application's own terms (paper, "Keeping Pristine Behavior").
type ProcRange struct {
	Name  string
	Start uint64
	End   uint64
}

// OrigProcs returns the program's procedures as original-address ranges,
// sorted by start address.
func (l *Layout) OrigProcs() []ProcRange {
	out := make([]ProcRange, 0, len(l.prog.Procs))
	for _, pr := range l.prog.Procs {
		out = append(out, ProcRange{Name: pr.Name, Start: pr.Addr, End: pr.Addr + pr.Size})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Result is the re-emitted program produced by Finish.
type Result struct {
	Text    []byte        // instrumented text, based at the original TextAddr
	Data    []byte        // application data with text-pointer relocs re-fixed
	Symbols []aout.Symbol // symbol table with text symbols moved
	Entry   uint64
	// Relocs carries the input's relocation records forward, with text
	// offsets remapped to the new layout (branch relocations, which are
	// recomputed from the IR, are dropped). Keeping them means a
	// re-emitted image is still rigidly relocatable — ATOM relies on this
	// to move a spliced analysis image without relinking it.
	Relocs []aout.Reloc
}

// Finish emits the instrumented text. resolve maps external symbol names
// (analysis procedures and data) to absolute addresses.
func (l *Layout) Finish(resolve func(string) (uint64, bool)) (*Result, error) {
	return l.FinishCtx(nil, resolve)
}

// FinishCtx is Finish with a stage context: re-emission and reference
// patching run under an "om.finish" span.
func (l *Layout) FinishCtx(ctx *obs.Ctx, resolve func(string) (uint64, bool)) (*Result, error) {
	_, sp := ctx.Start("om.finish")
	defer sp.End()
	p := l.prog
	exe := p.Exe
	text := make([]byte, l.size)
	base := exe.TextAddr

	emitCode := func(c *Code) error {
		addr := l.codeAddr[c]
		// Encode instructions first, then apply code relocs.
		for i, in := range c.Insts {
			w, err := in.Encode()
			if err != nil {
				return fmt.Errorf("om: spliced code: %w", err)
			}
			binary.LittleEndian.PutUint32(text[addr-base+uint64(i)*4:], w)
		}
		for _, r := range c.Relocs {
			target, ok := resolve(r.Sym)
			if !ok {
				return fmt.Errorf("om: spliced code references unknown symbol %q", r.Sym)
			}
			site := addr + uint64(r.Index)*4
			if err := link.Patch(text, site-base, site, r.Type, target+uint64(r.Addend), r.Sym); err != nil {
				return err
			}
		}
		return nil
	}

	for _, pr := range p.Procs {
		for _, b := range pr.Blocks {
			for _, in := range b.Insts {
				for ci := range in.Before {
					if err := emitCode(&in.Before[ci]); err != nil {
						return nil, err
					}
				}
				if err := l.emitInst(text, in); err != nil {
					return nil, err
				}
				for ci := range in.After {
					if err := emitCode(&in.After[ci]); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	// Re-apply the retained relocations: address constants referring to
	// text symbols must now produce the NEW addresses (the program has to
	// jump to where code actually is); data-symbol references are
	// unchanged because ATOM never moves application data. Each surviving
	// record is re-emitted (with its text offset remapped) so the result
	// itself remains rigidly relocatable.
	data := append([]byte(nil), exe.Data...)
	var relocs []aout.Reloc
	for _, r := range exe.Relocs {
		sym := exe.Symbols[r.Sym]
		target := sym.Value + uint64(r.Addend)
		if sym.Section == aout.SecText {
			nt, ok := l.NewAddr(sym.Value)
			if !ok {
				return nil, fmt.Errorf("om: reloc against text symbol %q at unmapped %#x", sym.Name, sym.Value)
			}
			target = nt + uint64(r.Addend)
		}
		switch r.Section {
		case aout.SecText:
			oldSite := exe.TextAddr + r.Offset
			newSite, ok := l.oldToNew[oldSite]
			if !ok {
				return nil, fmt.Errorf("om: reloc at unmapped text offset %#x", r.Offset)
			}
			// Branch relocations were already resolved against the old
			// layout and are recomputed by emitInst from displacement;
			// skip them here to avoid double-patching — except they do
			// not occur: the linker resolves BR21 to displacements and
			// emitInst handles those. Address pairs must be re-patched.
			if r.Type == aout.RelBr21 {
				continue
			}
			if err := link.Patch(text, newSite-base, newSite, r.Type, target, sym.Name); err != nil {
				return nil, err
			}
			nr := r
			nr.Offset = newSite - base
			relocs = append(relocs, nr)
		case aout.SecData:
			relocs = append(relocs, r)
			if sym.Section != aout.SecText {
				continue // data-to-data references are unchanged
			}
			if err := link.Patch(data, r.Offset, exe.DataAddr+r.Offset, r.Type, target, sym.Name); err != nil {
				return nil, err
			}
		}
	}

	// Move text symbols to their new addresses.
	syms := make([]aout.Symbol, len(exe.Symbols))
	copy(syms, exe.Symbols)
	// Precompute new procedure sizes from the layout.
	type bound struct{ old, new uint64 }
	var bounds []bound
	for _, pr := range p.Procs {
		if n, ok := l.NewAddr(pr.Addr); ok {
			bounds = append(bounds, bound{pr.Addr, n})
		}
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].new < bounds[j].new })
	for i := range syms {
		if syms[i].Section != aout.SecText {
			continue
		}
		n, ok := l.NewAddr(syms[i].Value)
		if !ok {
			return nil, fmt.Errorf("om: text symbol %q at unmapped %#x", syms[i].Name, syms[i].Value)
		}
		if syms[i].Kind == aout.SymFunc {
			// Recompute the size from the next procedure's new start.
			end := base + l.size
			for j := range bounds {
				if bounds[j].new > n {
					end = bounds[j].new
					break
				}
			}
			syms[i].Size = end - n
		}
		syms[i].Value = n
	}

	var entry uint64
	if exe.Entry != 0 { // images without an entry point (analysis images)
		var ok bool
		entry, ok = l.NewAddr(exe.Entry)
		if !ok {
			return nil, fmt.Errorf("om: entry point %#x unmapped", exe.Entry)
		}
	}
	return &Result{Text: text, Data: data, Symbols: syms, Entry: entry, Relocs: relocs}, nil
}

// emitInst encodes one original instruction at its new address,
// recomputing PC-relative displacements against the new layout.
func (l *Layout) emitInst(text []byte, in *Inst) error {
	base := l.prog.Exe.TextAddr
	newAddr := l.oldToNew[in.Addr]
	i := in.I
	if i.Op.Format() == alpha.FormatBranch {
		oldTarget := in.Addr + 4 + uint64(int64(i.Disp)*4)
		newTarget, ok := l.NewAddr(oldTarget)
		if !ok {
			return fmt.Errorf("om: branch at %#x targets unmapped %#x", in.Addr, oldTarget)
		}
		delta := int64(newTarget) - int64(newAddr+4)
		if delta%4 != 0 {
			return fmt.Errorf("om: misaligned rebranch at %#x", in.Addr)
		}
		disp := delta / 4
		if disp < -(1<<20) || disp >= 1<<20 {
			return fmt.Errorf("om: instrumented branch at %#x out of 21-bit range (%d words)", in.Addr, disp)
		}
		i.Disp = int32(disp)
	}
	w, err := i.Encode()
	if err != nil {
		return fmt.Errorf("om: re-encode at %#x: %w", in.Addr, err)
	}
	binary.LittleEndian.PutUint32(text[newAddr-base:], w)
	return nil
}
