// Package om implements OM, the link-time code-modification system that
// ATOM is built on (Srivastava & Wall, "A Practical System for
// Intermodule Code Optimization at Link-Time").
//
// OM consumes a fully linked executable that retains its symbol table and
// relocation records, and builds a symbolic intermediate representation:
// the program is a sequence of procedures (recovered from function
// symbols), each procedure a sequence of basic blocks, each block a
// sequence of decoded instructions. Control transfers are resolved to IR
// objects, so code can be moved freely and every displacement and address
// constant re-fixed afterwards — "all insertion is done on OM's
// intermediate representation and no address fixups are needed" at
// insertion time (ATOM paper, Section 4).
//
// ATOM's extension is the action slot: every instruction carries lists of
// code sequences to splice before and after it. The higher-level
// entity-based insertions (procedure, basic block, program) are lowered
// by the atom layer onto instruction slots.
//
// Re-emission is a two-phase protocol, because ATOM places the analysis
// image immediately after the instrumented text and inserted calls
// reference analysis symbols:
//
//	prog, _ := om.Build(exe)
//	... attach actions ...
//	lay := prog.Layout()              // sizes and the old->new PC map
//	... link the analysis image at a base derived from lay.TextSize() ...
//	res, _ := lay.Finish(resolver)    // emit text, patch all references
//
// Layout also publishes the static new->old PC map that lets ATOM present
// original program counters to analysis routines (Section 4, "Keeping
// Pristine Behavior").
package om

import (
	"fmt"
	"sort"

	"atom/internal/alpha"
	"atom/internal/aout"
	"atom/internal/obs"
)

// Program is the symbolic IR of one executable.
type Program struct {
	Exe   *aout.File
	Procs []*Proc

	instAt map[uint64]*Inst // original address -> instruction

	// pcPairs carries the old<->new PC-map entries of an encoded blob
	// through a decode∘encode round trip. A fresh Build (and therefore a
	// pristine lift) has none; the atom-ir/v1 pcmap section reserves the
	// slot so a future writer can persist layout results.
	pcPairs []PCPair
}

// Proc is one procedure.
type Proc struct {
	Name   string
	Index  int
	Addr   uint64 // original start address
	Size   uint64 // original size in bytes
	Blocks []*Block

	prog *Program
}

// Block is one basic block. Blocks are delimited by branch targets and by
// control-transfer instructions; calls (bsr/jsr) do not end blocks, in
// the tradition of Pixie-style block profiling.
type Block struct {
	Index int // within the procedure
	Insts []*Inst

	// Succs lists intra-procedure successor blocks (fallthrough and
	// branch targets). Cross-procedure transfers are not CFG edges.
	Succs []*Block

	proc *Proc
}

// Inst is one instruction occurrence with its action slots.
type Inst struct {
	I    alpha.Inst
	Addr uint64 // original address

	// Action slots: code spliced before/after this instruction, in the
	// order appended.
	Before []Code
	After  []Code

	block *Block
}

// Code is an instruction sequence to splice into the program. References
// to symbols outside the rewritten image (analysis procedures and data)
// are expressed as Relocs and resolved during Finish.
type Code struct {
	Insts  []alpha.Inst
	Relocs []CodeReloc
}

// CodeReloc marks one instruction of a Code sequence as referring to an
// external symbol.
type CodeReloc struct {
	Index  int // instruction index within Code.Insts
	Type   aout.RelocType
	Sym    string
	Addend int64
}

// Proc returns the procedure containing the instruction.
func (i *Inst) Proc() *Proc { return i.block.proc }

// Block returns the block containing the instruction.
func (i *Inst) Block() *Block { return i.block }

// Proc returns the named procedure, or nil.
func (p *Program) Proc(name string) *Proc {
	for _, pr := range p.Procs {
		if pr.Name == name {
			return pr
		}
	}
	return nil
}

// ProcAt returns the procedure starting at the given original address.
func (p *Program) ProcAt(addr uint64) *Proc {
	for _, pr := range p.Procs {
		if pr.Addr == addr {
			return pr
		}
	}
	return nil
}

// InstAt returns the instruction at an original address, or nil.
func (p *Program) InstAt(addr uint64) *Inst { return p.instAt[addr] }

// Build constructs the IR from a linked executable. The executable must
// retain function symbols covering all of text (the .ent/.end discipline)
// and its relocation records.
func Build(exe *aout.File) (*Program, error) { return BuildCtx(nil, exe) }

// BuildCtx is Build with a stage context: IR construction runs under an
// "om.build" span annotated with the recovered procedure and instruction
// counts.
func BuildCtx(ctx *obs.Ctx, exe *aout.File) (*Program, error) {
	_, sp := ctx.Start("om.build")
	defer sp.End()
	prog, err := buildIR(exe)
	if err != nil {
		return nil, err
	}
	sp.SetAttr(
		obs.Int("procs", int64(len(prog.Procs))),
		obs.Int("insts", int64(prog.NumInsts())))
	return prog, nil
}

func buildIR(exe *aout.File) (*Program, error) {
	if !exe.Linked {
		return nil, fmt.Errorf("om: input is not a linked executable")
	}
	fns := exe.Funcs()
	if len(fns) == 0 {
		return nil, fmt.Errorf("om: executable has no function symbols")
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Value < fns[j].Value })

	prog := &Program{Exe: exe, instAt: make(map[uint64]*Inst, len(exe.Text)/4)}
	textEnd := exe.TextAddr + uint64(len(exe.Text))
	// Coverage and overlap checks.
	expect := exe.TextAddr
	for _, f := range fns {
		if f.Value != expect {
			return nil, fmt.Errorf("om: text gap or overlap at %#x (procedure %q starts at %#x)", expect, f.Name, f.Value)
		}
		expect = f.Value + f.Size
	}
	if expect != textEnd {
		return nil, fmt.Errorf("om: text tail at %#x..%#x not covered by any procedure", expect, textEnd)
	}

	for idx, f := range fns {
		pr := &Proc{Name: f.Name, Index: idx, Addr: f.Value, Size: f.Size, prog: prog}
		if err := prog.buildProc(pr); err != nil {
			return nil, err
		}
		prog.Procs = append(prog.Procs, pr)
	}
	prog.resolveSuccs()
	return prog, nil
}

func (p *Program) buildProc(pr *Proc) error {
	exe := p.Exe
	if pr.Size%4 != 0 {
		return fmt.Errorf("om: procedure %q has misaligned size %d", pr.Name, pr.Size)
	}
	n := int(pr.Size / 4)
	insts := make([]*Inst, n)
	leaders := make([]bool, n)
	if n > 0 {
		leaders[0] = true
	}
	for k := 0; k < n; k++ {
		addr := pr.Addr + uint64(k)*4
		off := addr - exe.TextAddr
		w := uint32(exe.Text[off]) | uint32(exe.Text[off+1])<<8 | uint32(exe.Text[off+2])<<16 | uint32(exe.Text[off+3])<<24
		in, err := alpha.Decode(w)
		if err != nil {
			return fmt.Errorf("om: %s+%#x: %w", pr.Name, addr-pr.Addr, err)
		}
		insts[k] = &Inst{I: in, Addr: addr}
		p.instAt[addr] = insts[k]
	}
	// Mark leaders: branch targets inside this procedure, and the
	// instruction after each block-ending transfer.
	for k, in := range insts {
		op := in.I.Op
		if op.Format() == alpha.FormatBranch {
			target := in.Addr + 4 + uint64(int64(in.I.Disp)*4)
			if target >= pr.Addr && target < pr.Addr+pr.Size {
				leaders[(target-pr.Addr)/4] = true
			}
		}
		if endsBlock(in.I) && k+1 < n {
			leaders[k+1] = true
		}
	}
	// Slice into blocks.
	var cur *Block
	for k := 0; k < n; k++ {
		if leaders[k] {
			cur = &Block{Index: len(pr.Blocks), proc: pr}
			pr.Blocks = append(pr.Blocks, cur)
		}
		insts[k].block = cur
		cur.Insts = append(cur.Insts, insts[k])
	}
	return nil
}

// endsBlock reports whether the instruction terminates a basic block.
// Calls (bsr, jsr) do not: control returns to the next instruction.
func endsBlock(i alpha.Inst) bool {
	switch {
	case i.Op.IsCondBranch():
		return true
	case i.Op == alpha.OpBr:
		return true
	case i.Op == alpha.OpRet, i.Op == alpha.OpJmp:
		return true
	}
	return false
}

// resolveSuccs wires intra-procedure successor edges.
func (p *Program) resolveSuccs() {
	for _, pr := range p.Procs {
		for bi, b := range pr.Blocks {
			if len(b.Insts) == 0 {
				continue
			}
			last := b.Insts[len(b.Insts)-1]
			fall := bi+1 < len(pr.Blocks)
			switch {
			case last.I.Op.IsCondBranch():
				if t := p.branchTargetBlock(pr, last); t != nil {
					b.Succs = append(b.Succs, t)
				}
				if fall {
					b.Succs = append(b.Succs, pr.Blocks[bi+1])
				}
			case last.I.Op == alpha.OpBr:
				if t := p.branchTargetBlock(pr, last); t != nil {
					b.Succs = append(b.Succs, t)
				}
			case last.I.Op == alpha.OpRet || last.I.Op == alpha.OpJmp:
				// no intra-proc successors
			default:
				if fall {
					b.Succs = append(b.Succs, pr.Blocks[bi+1])
				}
			}
		}
	}
}

// branchTargetBlock returns the block a branch targets if it lies within
// the same procedure and at a block boundary.
func (p *Program) branchTargetBlock(pr *Proc, in *Inst) *Block {
	target := in.Addr + 4 + uint64(int64(in.I.Disp)*4)
	t, ok := p.instAt[target]
	if !ok || t.block.proc != pr {
		return nil
	}
	if len(t.block.Insts) > 0 && t.block.Insts[0] == t {
		return t.block
	}
	return nil
}

// NumInsts returns the total original instruction count.
func (p *Program) NumInsts() int { return len(p.instAt) }
