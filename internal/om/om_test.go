package om_test

import (
	"strings"
	"testing"

	"atom/internal/alpha"
	"atom/internal/aout"
	"atom/internal/om"
	"atom/internal/rtl"
	"atom/internal/vm"
)

const sampleProgram = `
#include <stdio.h>
long fib(long n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main(int argc, char **argv) {
	long i;
	long s = 0;
	for (i = 0; i < 10; i++) s += fib(i);
	printf("sum=%d argc=%d\n", s, argc);
	return 0;
}
`

func buildSample(t *testing.T, src string) *aout.File {
	t.Helper()
	exe, err := rtl.BuildProgram("prog.c", src)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return exe
}

func runExe(t *testing.T, exe *aout.File, cfg vm.Config) *vm.Machine {
	t.Helper()
	m, err := vm.New(exe, cfg)
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v (stdout=%q)", err, m.Stdout)
	}
	return m
}

func TestBuildStructure(t *testing.T) {
	exe := buildSample(t, sampleProgram)
	prog, err := om.Build(exe)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if prog.Proc("main") == nil || prog.Proc("fib") == nil || prog.Proc("printf") == nil {
		t.Fatal("expected procedures missing")
	}
	if prog.Proc("__start") == nil {
		t.Fatal("crt0 procedure missing")
	}
	fib := prog.Proc("fib")
	if len(fib.Blocks) < 3 {
		t.Errorf("fib has %d blocks, want >= 3 (branchy code)", len(fib.Blocks))
	}
	// Every block is non-empty; every instruction's back-pointers agree;
	// block boundaries respect branch targets.
	total := 0
	for _, pr := range prog.Procs {
		addr := pr.Addr
		for _, b := range pr.Blocks {
			if len(b.Insts) == 0 {
				t.Fatalf("%s: empty block %d", pr.Name, b.Index)
			}
			for _, in := range b.Insts {
				if in.Addr != addr {
					t.Fatalf("%s: instruction address %#x, want %#x", pr.Name, in.Addr, addr)
				}
				if in.Block() != b || in.Proc() != pr {
					t.Fatalf("%s: bad back-pointers", pr.Name)
				}
				addr += 4
				total++
			}
			// Control transfers only at block ends.
			for k, in := range b.Insts[:len(b.Insts)-1] {
				op := in.I.Op
				if op.IsCondBranch() || op == alpha.OpBr || op == alpha.OpRet || op == alpha.OpJmp {
					t.Fatalf("%s block %d: control transfer %s at position %d is not last", pr.Name, b.Index, op, k)
				}
			}
		}
		if addr != pr.Addr+pr.Size {
			t.Fatalf("%s: blocks cover %#x..%#x, want size %#x", pr.Name, pr.Addr, addr, pr.Size)
		}
	}
	if total != prog.NumInsts() {
		t.Errorf("NumInsts = %d, blocks contain %d", prog.NumInsts(), total)
	}
}

func TestCFGSuccs(t *testing.T) {
	exe := buildSample(t, sampleProgram)
	prog, err := om.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	fib := prog.Proc("fib")
	condBlocks, retBlocks := 0, 0
	for _, b := range fib.Blocks {
		last := b.Insts[len(b.Insts)-1].I
		switch {
		case last.Op.IsCondBranch():
			condBlocks++
			if len(b.Succs) != 2 {
				t.Errorf("conditional block has %d successors", len(b.Succs))
			}
		case last.Op == alpha.OpRet:
			retBlocks++
			if len(b.Succs) != 0 {
				t.Errorf("ret block has %d successors", len(b.Succs))
			}
		}
	}
	if condBlocks == 0 {
		t.Error("fib has no conditional blocks")
	}
	if retBlocks == 0 {
		t.Error("fib has no return block")
	}
}

// TestIdentityTransform re-emits a program with no instrumentation and
// checks that behavior is bit-for-bit identical.
func TestIdentityTransform(t *testing.T) {
	exe := buildSample(t, sampleProgram)
	ref := runExe(t, exe, vm.Config{})

	prog, err := om.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	lay := prog.Layout()
	if lay.TextSize() != uint64(len(exe.Text)) {
		t.Fatalf("identity layout size %d != original %d", lay.TextSize(), len(exe.Text))
	}
	res, err := lay.Finish(func(string) (uint64, bool) { return 0, false })
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	for i := range res.Text {
		if res.Text[i] != exe.Text[i] {
			t.Fatalf("identity transform changed text at offset %#x", i)
		}
	}
	out := &aout.File{
		Linked: true, Entry: res.Entry,
		Text: res.Text, TextAddr: exe.TextAddr,
		Data: res.Data, DataAddr: exe.DataAddr,
		Bss: exe.Bss, BssAddr: exe.BssAddr,
		Symbols: res.Symbols,
	}
	got := runExe(t, out, vm.Config{})
	if string(got.Stdout) != string(ref.Stdout) || got.Icount != ref.Icount {
		t.Errorf("identity run differs: stdout %q vs %q, icount %d vs %d",
			got.Stdout, ref.Stdout, got.Icount, ref.Icount)
	}
}

// TestNopSplice inserts a nop before every instruction of every block and
// checks the program still behaves identically (with exactly one extra
// instruction executed per original instruction executed).
func TestNopSplice(t *testing.T) {
	exe := buildSample(t, sampleProgram)
	ref := runExe(t, exe, vm.Config{})

	prog, err := om.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	nop := alpha.Mov(alpha.Zero, alpha.Zero)
	for _, pr := range prog.Procs {
		for _, b := range pr.Blocks {
			for _, in := range b.Insts {
				in.Before = append(in.Before, om.Code{Insts: []alpha.Inst{nop}})
			}
		}
	}
	lay := prog.Layout()
	if lay.TextSize() != 2*uint64(len(exe.Text)) {
		t.Fatalf("nop-spliced size %d, want %d", lay.TextSize(), 2*len(exe.Text))
	}
	res, err := lay.Finish(func(string) (uint64, bool) { return 0, false })
	if err != nil {
		t.Fatal(err)
	}
	out := &aout.File{
		Linked: true, Entry: res.Entry,
		Text: res.Text, TextAddr: exe.TextAddr,
		Data: res.Data, DataAddr: exe.DataAddr,
		Bss: exe.Bss, BssAddr: exe.BssAddr,
		Symbols: res.Symbols,
	}
	got := runExe(t, out, vm.Config{})
	if string(got.Stdout) != string(ref.Stdout) {
		t.Errorf("stdout differs: %q vs %q", got.Stdout, ref.Stdout)
	}
	if got.Icount != 2*ref.Icount {
		t.Errorf("icount = %d, want exactly 2x%d", got.Icount, ref.Icount)
	}
	// Data addresses are untouched (pristine behavior).
	if out.DataAddr != exe.DataAddr || string(out.Data) != string(exe.Data) {
		t.Error("data segment changed")
	}
}

// TestSpliceExternalRef splices code referencing an external symbol and
// checks resolution plumbing.
func TestSpliceExternalRef(t *testing.T) {
	exe := buildSample(t, sampleProgram)
	prog, err := om.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	main := prog.Proc("main")
	first := main.Blocks[0].Insts[0]
	code := om.Code{
		Insts: []alpha.Inst{
			alpha.Mem(alpha.OpLdah, alpha.AT, alpha.Zero, 0),
			alpha.Mem(alpha.OpLda, alpha.AT, alpha.AT, 0),
		},
		Relocs: []om.CodeReloc{
			{Index: 0, Type: aout.RelHi16, Sym: "ext_data"},
			{Index: 1, Type: aout.RelLo16, Sym: "ext_data"},
		},
	}
	first.Before = append(first.Before, code)
	lay := prog.Layout()
	// Unknown symbol -> error.
	if _, err := lay.Finish(func(string) (uint64, bool) { return 0, false }); err == nil || !strings.Contains(err.Error(), "ext_data") {
		t.Errorf("Finish with unresolved symbol: err = %v", err)
	}
	res, err := lay.Finish(func(name string) (uint64, bool) {
		if name == "ext_data" {
			return 0x345678, true
		}
		return 0, false
	})
	if err != nil {
		t.Fatal(err)
	}
	// Decode the spliced pair and verify the materialized address.
	newMain, _ := lay.NewAddr(main.Addr)
	off := newMain - exe.TextAddr
	hi, _ := alpha.Decode(uint32(res.Text[off]) | uint32(res.Text[off+1])<<8 | uint32(res.Text[off+2])<<16 | uint32(res.Text[off+3])<<24)
	lo, _ := alpha.Decode(uint32(res.Text[off+4]) | uint32(res.Text[off+5])<<8 | uint32(res.Text[off+6])<<16 | uint32(res.Text[off+7])<<24)
	if got := int64(hi.Disp)<<16 + int64(lo.Disp); got != 0x345678 {
		t.Errorf("spliced pair materializes %#x, want 0x345678", got)
	}
}

func TestPCMaps(t *testing.T) {
	exe := buildSample(t, sampleProgram)
	prog, err := om.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	nop := alpha.Mov(alpha.Zero, alpha.Zero)
	main := prog.Proc("main")
	for _, in := range main.Blocks[0].Insts {
		in.Before = append(in.Before, om.Code{Insts: []alpha.Inst{nop, nop}})
	}
	lay := prog.Layout()
	for _, pr := range prog.Procs {
		for _, b := range pr.Blocks {
			for _, in := range b.Insts {
				n, ok := lay.NewAddr(in.Addr)
				if !ok {
					t.Fatalf("NewAddr(%#x) missing", in.Addr)
				}
				// NewAddr points at the before-code; the instruction
				// itself is 2 insts later when instrumented.
				instAddr := n
				if len(in.Before) > 0 {
					instAddr = n + 8
				}
				back, ok := lay.OldAddr(instAddr)
				if !ok || back != in.Addr {
					t.Fatalf("OldAddr(NewAddr(%#x)) = %#x, %v", in.Addr, back, ok)
				}
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	exe := buildSample(t, sampleProgram)
	// Unlinked input.
	if _, err := om.Build(&aout.File{}); err == nil {
		t.Error("Build of unlinked file succeeded")
	}
	// Gap in coverage: corrupt a function symbol size.
	bad := *exe
	bad.Symbols = append([]aout.Symbol(nil), exe.Symbols...)
	for i := range bad.Symbols {
		if bad.Symbols[i].Kind == aout.SymFunc && bad.Symbols[i].Size > 8 {
			bad.Symbols[i].Size -= 4
			break
		}
	}
	if _, err := om.Build(&bad); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Errorf("Build with coverage gap: err = %v", err)
	}
}

func TestRegSetOps(t *testing.T) {
	var s om.RegSet
	s = s.Add(alpha.T0).Add(alpha.A0).Add(alpha.RA)
	if !s.Has(alpha.T0) || !s.Has(alpha.A0) || s.Has(alpha.T1) {
		t.Error("Add/Has broken")
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d", s.Count())
	}
	regs := s.Regs()
	if len(regs) != 3 || regs[0] != alpha.T0 || regs[1] != alpha.A0 || regs[2] != alpha.RA {
		t.Errorf("Regs = %v", regs)
	}
	u := s.Union(om.RegSet(0).Add(alpha.T1))
	if u.Count() != 4 {
		t.Error("Union broken")
	}
}
