package om

import "atom/internal/alpha"

// RegSet is a set of integer registers, one bit per register.
type RegSet uint32

// Add returns the set with r included.
func (s RegSet) Add(r alpha.Reg) RegSet { return s | 1<<uint(r) }

// Has reports whether r is in the set.
func (s RegSet) Has(r alpha.Reg) bool { return s&(1<<uint(r)) != 0 }

// Union returns the union of two sets.
func (s RegSet) Union(o RegSet) RegSet { return s | o }

// Count returns the number of registers in the set.
func (s RegSet) Count() int {
	n := 0
	for r := alpha.Reg(0); r < alpha.NumRegs; r++ {
		if s.Has(r) {
			n++
		}
	}
	return n
}

// Regs returns the registers in ascending order.
func (s RegSet) Regs() []alpha.Reg {
	var out []alpha.Reg
	for r := alpha.Reg(0); r < alpha.NumRegs; r++ {
		if s.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// AllCallerSave is the set of every caller-save register.
func AllCallerSave() RegSet {
	var s RegSet
	for _, r := range alpha.CallerSaveRegs() {
		s = s.Add(r)
	}
	return s
}
