package om

import (
	"atom/internal/alpha"
	"atom/internal/obs"
)

// RegSet is a set of integer registers, one bit per register.
type RegSet uint32

// Add returns the set with r included.
func (s RegSet) Add(r alpha.Reg) RegSet { return s | 1<<uint(r) }

// Has reports whether r is in the set.
func (s RegSet) Has(r alpha.Reg) bool { return s&(1<<uint(r)) != 0 }

// Union returns the union of two sets.
func (s RegSet) Union(o RegSet) RegSet { return s | o }

// Count returns the number of registers in the set.
func (s RegSet) Count() int {
	n := 0
	for r := alpha.Reg(0); r < alpha.NumRegs; r++ {
		if s.Has(r) {
			n++
		}
	}
	return n
}

// Regs returns the registers in ascending order.
func (s RegSet) Regs() []alpha.Reg {
	var out []alpha.Reg
	for r := alpha.Reg(0); r < alpha.NumRegs; r++ {
		if s.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// AllCallerSave is the set of every caller-save register.
func AllCallerSave() RegSet {
	var s RegSet
	for _, r := range alpha.CallerSaveRegs() {
		s = s.Add(r)
	}
	return s
}

// ModifiedRegs computes, for every procedure, the set of caller-save
// registers that may be modified when control reaches it — the data-flow
// summary information ATOM uses to minimize register saves around calls
// into analysis routines (paper, Section 4, "Reducing Procedure Call
// Overhead"). The analysis is an interprocedural fixpoint over the call
// graph; indirect calls (jsr) are assumed to clobber every caller-save
// register, and CALL_PAL services clobber v0.
func (p *Program) ModifiedRegs() map[string]RegSet { return p.ModifiedRegsCtx(nil) }

// ModifiedRegsCtx is ModifiedRegs with a stage context: the fixpoint runs
// under an "om.summary" span annotated with the number of iterations the
// call-graph propagation took to converge.
func (p *Program) ModifiedRegsCtx(ctx *obs.Ctx) map[string]RegSet {
	_, sp := ctx.Start("om.summary", obs.Int("procs", int64(len(p.Procs))))
	defer sp.End()
	direct := make([]RegSet, len(p.Procs))
	calls := make([][]int, len(p.Procs)) // proc index -> callee proc indices
	anyIndirect := make([]bool, len(p.Procs))

	procIdxAt := map[uint64]int{}
	for i, pr := range p.Procs {
		procIdxAt[pr.Addr] = i
	}

	for i, pr := range p.Procs {
		for _, b := range pr.Blocks {
			for _, in := range b.Insts {
				if w, ok := in.I.WritesReg(); ok && w.IsCallerSave() {
					direct[i] = direct[i].Add(w)
				}
				switch in.I.Op {
				case alpha.OpBsr:
					target := in.Addr + 4 + uint64(int64(in.I.Disp)*4)
					if ti, ok := procIdxAt[target]; ok {
						calls[i] = append(calls[i], ti)
					} else if t, ok2 := p.instAt[target]; ok2 && t.block.proc != pr {
						// bsr into the middle of another procedure:
						// treat conservatively.
						anyIndirect[i] = true
					}
				case alpha.OpJsr:
					anyIndirect[i] = true
				case alpha.OpCallPal:
					direct[i] = direct[i].Add(alpha.V0)
				case alpha.OpBr:
					// A cross-procedure br is a tail transfer; treat the
					// target procedure as a callee.
					target := in.Addr + 4 + uint64(int64(in.I.Disp)*4)
					if t, ok := p.instAt[target]; ok && t.block.proc != pr {
						if ti, ok2 := procIdxAt[t.block.proc.Addr]; ok2 {
							calls[i] = append(calls[i], ti)
						}
					}
				}
			}
		}
	}

	mod := make([]RegSet, len(p.Procs))
	copy(mod, direct)
	all := AllCallerSave()
	for i := range mod {
		if anyIndirect[i] {
			mod[i] = all
		}
	}
	rounds := 0
	for changed := true; changed; {
		changed = false
		rounds++
		for i := range p.Procs {
			s := mod[i]
			for _, c := range calls[i] {
				s = s.Union(mod[c])
			}
			if s != mod[i] {
				mod[i] = s
				changed = true
			}
		}
	}
	sp.SetAttr(obs.Int("rounds", int64(rounds)))

	out := make(map[string]RegSet, len(p.Procs))
	for i, pr := range p.Procs {
		out[pr.Name] = mod[i]
	}
	return out
}
