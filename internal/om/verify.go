package om

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"atom/internal/alpha"
	"atom/internal/aout"
	"atom/internal/obs"
)

// The IR verifier. Binary rewriting fails in ways ordinary tests miss —
// an edge wired to the wrong block, a branch displacement recomputed
// against a stale layout — and every such defect ends as silent
// corruption of an instrumented program. Verify checks the invariants
// the rest of the system assumes: CFG integrity (every successor edge
// lands on a block leader of the same procedure, fallthrough edges match
// layout order), decode/encode round-trip on every instruction, address
// contiguity, and relocation records within section bounds. Layout.Verify
// checks the old<->new PC maps are mutually inverse, and
// Layout.VerifyRewrite re-decodes the emitted text against the IR.
//
// All diagnostics carry ORIGINAL program counters (the new->old map is
// applied where a check starts from a new address), so a failure points
// at a source-level procedure of the input program, not at a coordinate
// in the rewritten image.

// Diag is one verifier finding, located by original PC and procedure.
type Diag struct {
	Proc string // containing procedure, when known
	Addr uint64 // original (pre-instrumentation) PC
	Msg  string
}

func (d Diag) String() string {
	if d.Proc != "" {
		return fmt.Sprintf("pc %#x (%s): %s", d.Addr, d.Proc, d.Msg)
	}
	return fmt.Sprintf("pc %#x: %s", d.Addr, d.Msg)
}

// Verify checks the program IR's structural invariants and returns every
// violation found (nil for a well-formed program).
func (p *Program) Verify() []Diag { return p.VerifyCtx(nil) }

// VerifyCtx is Verify with a stage context: the pass runs under an
// "om.verify" span annotated with the number of instructions checked and
// diagnostics found, also published as "om.verify.checks" /
// "om.verify.diags" counters.
func (p *Program) VerifyCtx(ctx *obs.Ctx) []Diag {
	_, sp := ctx.Start("om.verify", obs.String("stage", "ir"))
	defer sp.End()
	var diags []Diag
	bad := func(pr *Proc, addr uint64, format string, args ...any) {
		name := ""
		if pr != nil {
			name = pr.Name
		}
		diags = append(diags, Diag{Proc: name, Addr: addr, Msg: fmt.Sprintf(format, args...)})
	}

	// Procedure coverage of the text segment.
	if p.Exe != nil {
		expect := p.Exe.TextAddr
		for _, pr := range p.Procs {
			if pr.Addr != expect {
				bad(pr, pr.Addr, "procedure starts at %#x, expected %#x (gap or overlap)", pr.Addr, expect)
			}
			expect = pr.Addr + pr.Size
		}
		if end := p.Exe.TextAddr + uint64(len(p.Exe.Text)); expect != end {
			bad(nil, expect, "procedures cover text up to %#x, segment ends at %#x", expect, end)
		}
	}

	checked := 0
	for _, pr := range p.Procs {
		addr := pr.Addr
		for bi, b := range pr.Blocks {
			if b.Index != bi {
				bad(pr, addr, "block %d carries index %d", bi, b.Index)
			}
			if len(b.Insts) == 0 {
				bad(pr, addr, "block %d is empty", bi)
				continue
			}
			for k, in := range b.Insts {
				checked++
				if in.Addr != addr {
					bad(pr, in.Addr, "instruction at position %d of block %d has address %#x, expected %#x", k, bi, in.Addr, addr)
				}
				addr += 4
				if p.instAt != nil && p.instAt[in.Addr] != in {
					bad(pr, in.Addr, "address index does not map back to this instruction")
				}
				// Decode round-trip: the IR must re-encode to exactly the
				// word it was decoded from.
				w, err := in.I.Encode()
				if err != nil {
					bad(pr, in.Addr, "unencodable instruction %v: %v", in.I, err)
					continue
				}
				rt, err := alpha.Decode(w)
				if err != nil {
					bad(pr, in.Addr, "encoded word %#08x does not decode: %v", w, err)
				} else if rt != in.I {
					bad(pr, in.Addr, "decode round-trip mismatch: %v -> %#08x -> %v", in.I, w, rt)
				}
				if k < len(b.Insts)-1 && endsBlock(in.I) {
					bad(pr, in.Addr, "block-ending %s is not the last instruction of block %d", in.I.Op, bi)
				}
			}
			diags = append(diags, verifySuccs(pr, b, bi)...)
		}
		if addr != pr.Addr+pr.Size {
			bad(pr, addr, "blocks cover %d bytes, procedure size is %d", addr-pr.Addr, pr.Size)
		}
	}

	if p.Exe != nil {
		diags = append(diags, verifyRelocs(p.Exe.Relocs, len(p.Exe.Symbols), uint64(len(p.Exe.Text)), uint64(len(p.Exe.Data)),
			func(sec aout.Section, off uint64) (string, uint64) {
				if sec == aout.SecText {
					addr := p.Exe.TextAddr + off
					return p.procFor(addr), addr
				}
				return "", off
			})...)
	}

	// Encoding round trip: a pristine program (no actions attached — the
	// only kind Encode accepts) must survive the atom-ir/v1 wire format
	// with its structure intact, and the decoded copy must re-encode to
	// the identical blob. Only run on programs the checks above found
	// structurally sound; a malformed program failing to encode would
	// just duplicate an existing diagnostic.
	if len(diags) == 0 && p.Exe != nil && p.pristine() {
		diags = append(diags, p.verifyEncoding()...)
	}

	sp.SetAttr(
		obs.Int("checks", int64(checked)),
		obs.Int("diags", int64(len(diags))))
	ctx.Count("om.verify.checks", int64(checked))
	ctx.Count("om.verify.diags", int64(len(diags)))
	return diags
}

// pristine reports whether no instruction carries attached actions —
// the precondition for Encode.
func (p *Program) pristine() bool {
	for _, pr := range p.Procs {
		for _, b := range pr.Blocks {
			for _, in := range b.Insts {
				if len(in.Before) != 0 || len(in.After) != 0 {
					return false
				}
			}
		}
	}
	return true
}

// verifyEncoding is the "encoding" verify stage: Encode the program,
// Decode the blob, check the decoded copy is structurally identical,
// and check it re-encodes to the same bytes (decode∘encode identity).
func (p *Program) verifyEncoding() []Diag {
	var diags []Diag
	base := uint64(0)
	if p.Exe != nil {
		base = p.Exe.TextAddr
	}
	bad := func(format string, args ...any) {
		diags = append(diags, Diag{Addr: base, Msg: fmt.Sprintf(format, args...)})
	}
	blob, err := Encode(p)
	if err != nil {
		bad("encoding: %v", err)
		return diags
	}
	q, err := Decode(blob)
	if err != nil {
		bad("encoding: decode of own encoding failed: %v", err)
		return diags
	}
	blob2, err := Encode(q)
	if err != nil {
		bad("encoding: re-encode of decoded program failed: %v", err)
	} else if !bytes.Equal(blob, blob2) {
		bad("encoding: re-encode differs from original blob (%d vs %d bytes)", len(blob2), len(blob))
	}
	return append(diags, diffIR(p, q)...)
}

// diffIR reports structural differences between two programs: the
// procedure table, block shapes, instruction words and addresses, and
// CFG edges must all agree. Used by the encoding verify stage and by
// tests comparing a decoded lift against a fresh one.
func diffIR(a, b *Program) []Diag {
	var diags []Diag
	bad := func(proc string, addr uint64, format string, args ...any) {
		diags = append(diags, Diag{Proc: proc, Addr: addr, Msg: fmt.Sprintf(format, args...)})
	}
	if len(a.Procs) != len(b.Procs) {
		bad("", 0, "encoding: %d procedures became %d", len(a.Procs), len(b.Procs))
		return diags
	}
	for pi, pa := range a.Procs {
		pb := b.Procs[pi]
		if pa.Name != pb.Name || pa.Addr != pb.Addr || pa.Size != pb.Size {
			bad(pa.Name, pa.Addr, "encoding: procedure became %q at %#x size %d", pb.Name, pb.Addr, pb.Size)
			continue
		}
		if len(pa.Blocks) != len(pb.Blocks) {
			bad(pa.Name, pa.Addr, "encoding: %d blocks became %d", len(pa.Blocks), len(pb.Blocks))
			continue
		}
		for bi, ba := range pa.Blocks {
			bb := pb.Blocks[bi]
			if len(ba.Insts) != len(bb.Insts) {
				bad(pa.Name, pa.Addr, "encoding: block %d: %d instructions became %d", bi, len(ba.Insts), len(bb.Insts))
				continue
			}
			for k, ia := range ba.Insts {
				ib := bb.Insts[k]
				if ia.Addr != ib.Addr || ia.I != ib.I {
					bad(pa.Name, ia.Addr, "encoding: instruction %v became %v at %#x", ia.I, ib.I, ib.Addr)
				}
			}
			if len(ba.Succs) != len(bb.Succs) {
				bad(pa.Name, ba.Insts[len(ba.Insts)-1].Addr, "encoding: block %d: %d successor edges became %d", bi, len(ba.Succs), len(bb.Succs))
				continue
			}
			for si, sa := range ba.Succs {
				if sa.Index != bb.Succs[si].Index {
					bad(pa.Name, ba.Insts[len(ba.Insts)-1].Addr, "encoding: block %d: successor %d index %d became %d", bi, si, sa.Index, bb.Succs[si].Index)
				}
			}
		}
	}
	return diags
}

// verifySuccs checks one block's successor edges against its terminator:
// the edge set the terminator implies, in resolveSuccs order, each edge
// landing on a block leader of the same procedure.
func verifySuccs(pr *Proc, b *Block, bi int) []Diag {
	var diags []Diag
	last := b.Insts[len(b.Insts)-1]
	bad := func(format string, args ...any) {
		diags = append(diags, Diag{Proc: pr.Name, Addr: last.Addr, Msg: fmt.Sprintf(format, args...)})
	}

	// Every successor must be a block of this procedure, indexed where it
	// claims to be — that makes its first instruction a block leader.
	for _, s := range b.Succs {
		if s.Index < 0 || s.Index >= len(pr.Blocks) || pr.Blocks[s.Index] != s {
			bad("successor edge leaves the procedure or targets a non-leader")
			return diags
		}
	}

	// The expected successor addresses, in resolveSuccs order.
	var want []uint64
	branchTarget := func() (uint64, bool) {
		target := last.Addr + 4 + uint64(int64(last.I.Disp)*4)
		return target, target >= pr.Addr && target < pr.Addr+pr.Size
	}
	fallAddr := last.Addr + 4
	hasFall := bi+1 < len(pr.Blocks)
	switch {
	case last.I.Op.IsCondBranch():
		if t, in := branchTarget(); in {
			want = append(want, t)
		}
		if hasFall {
			want = append(want, fallAddr)
		}
	case last.I.Op == alpha.OpBr:
		if t, in := branchTarget(); in {
			want = append(want, t)
		}
	case last.I.Op == alpha.OpRet || last.I.Op == alpha.OpJmp:
		// no intra-procedure successors
	default:
		if hasFall {
			want = append(want, fallAddr)
		}
	}

	if len(b.Succs) != len(want) {
		bad("%s has %d successor edges, expected %d", last.I.Op, len(b.Succs), len(want))
		return diags
	}
	for i, s := range b.Succs {
		got := s.Insts[0].Addr
		if got != want[i] {
			bad("successor %d lands at %#x, expected %#x", i, got, want[i])
		}
		if i == len(want)-1 && want[i] == fallAddr && s != pr.Blocks[bi+1] {
			bad("fallthrough edge does not match layout order")
		}
	}
	// In-procedure branch targets must be block leaders.
	if last.I.Op.Format() == alpha.FormatBranch && last.I.Op != alpha.OpBsr {
		if t, in := branchTarget(); in {
			leader := false
			for _, tb := range pr.Blocks {
				if len(tb.Insts) > 0 && tb.Insts[0].Addr == t {
					leader = true
					break
				}
			}
			if !leader {
				bad("branch targets %#x, which is not a block leader", t)
			}
		}
	}
	return diags
}

// relocWidth is the number of bytes a relocation type patches.
func relocWidth(t aout.RelocType) uint64 {
	if t == aout.RelQuad {
		return 8
	}
	return 4
}

// verifyRelocs checks relocation records: valid section, symbol index in
// range, patched range within the section. locate attributes a
// (section, offset) pair to a procedure name and original PC for the
// diagnostic.
func verifyRelocs(relocs []aout.Reloc, nsyms int, textLen, dataLen uint64, locate func(aout.Section, uint64) (string, uint64)) []Diag {
	var diags []Diag
	bad := func(r aout.Reloc, format string, args ...any) {
		proc, addr := locate(r.Section, r.Offset)
		diags = append(diags, Diag{Proc: proc, Addr: addr, Msg: fmt.Sprintf(format, args...)})
	}
	for i, r := range relocs {
		var limit uint64
		switch r.Section {
		case aout.SecText:
			limit = textLen
		case aout.SecData:
			limit = dataLen
		default:
			bad(r, "reloc %d in unexpected section %v", i, r.Section)
			continue
		}
		if r.Offset+relocWidth(r.Type) > limit {
			bad(r, "reloc %d (%s) at offset %#x exceeds %d-byte section", i, r.Type, r.Offset, limit)
		}
		if r.Sym < 0 || r.Sym >= nsyms {
			bad(r, "reloc %d references symbol %d of %d", i, r.Sym, nsyms)
		}
	}
	return diags
}

// procFor attributes an original address to its procedure name.
func (p *Program) procFor(addr uint64) string {
	for _, pr := range p.Procs {
		if addr >= pr.Addr && addr < pr.Addr+pr.Size {
			return pr.Name
		}
	}
	return ""
}

// Verify checks the layout's PC maps: oldToNew and newToOld must be
// mutually inverse bijections, every instruction mapped, every new
// address word-aligned inside the instrumented text.
func (l *Layout) Verify() []Diag { return l.VerifyCtx(nil) }

// VerifyCtx is Layout.Verify with a stage context (an "om.verify" span,
// stage "layout").
func (l *Layout) VerifyCtx(ctx *obs.Ctx) []Diag {
	_, sp := ctx.Start("om.verify", obs.String("stage", "layout"))
	defer sp.End()
	var diags []Diag
	p := l.prog
	base := p.Exe.TextAddr
	bad := func(addr uint64, format string, args ...any) {
		diags = append(diags, Diag{Proc: p.procFor(addr), Addr: addr, Msg: fmt.Sprintf(format, args...)})
	}
	if len(l.oldToNew) != len(l.newToOld) {
		bad(base, "PC maps disagree on size: %d old->new vs %d new->old", len(l.oldToNew), len(l.newToOld))
	}
	for old, in := range p.instAt {
		n, ok := l.oldToNew[old]
		if !ok {
			bad(old, "instruction has no new address")
			continue
		}
		if back, ok := l.newToOld[n]; !ok || back != old {
			bad(old, "new address %#x maps back to %#x, not %#x", n, back, old)
		}
		if n%4 != 0 {
			bad(old, "new address %#x is misaligned", n)
		}
		if n < base || n >= base+l.size {
			bad(old, "new address %#x outside instrumented text [%#x,%#x)", n, base, base+l.size)
		}
		_ = in
	}
	sp.SetAttr(obs.Int("diags", int64(len(diags))))
	ctx.Count("om.verify.diags", int64(len(diags)))
	return diags
}

// VerifyRewrite re-verifies the rewritten program against the IR: every
// original instruction must decode at its new address with its opcode
// intact and, for branches, a displacement that reaches the new address
// of its original target; every spliced instruction must decode; the
// carried-forward relocation records must stay within the emitted
// sections. Diagnostics locate failures by ORIGINAL PC via the new->old
// map.
func (l *Layout) VerifyRewrite(res *Result) []Diag { return l.VerifyRewriteCtx(nil, res) }

// VerifyRewriteCtx is VerifyRewrite with a stage context (an "om.verify"
// span, stage "rewrite").
func (l *Layout) VerifyRewriteCtx(ctx *obs.Ctx, res *Result) []Diag {
	_, sp := ctx.Start("om.verify", obs.String("stage", "rewrite"))
	defer sp.End()
	var diags []Diag
	p := l.prog
	base := p.Exe.TextAddr
	bad := func(pr *Proc, addr uint64, format string, args ...any) {
		name := ""
		if pr != nil {
			name = pr.Name
		}
		diags = append(diags, Diag{Proc: name, Addr: addr, Msg: fmt.Sprintf(format, args...)})
	}

	if uint64(len(res.Text)) != l.size {
		bad(nil, base, "emitted text is %d bytes, layout sized %d", len(res.Text), l.size)
		sp.SetAttr(obs.Int("diags", int64(len(diags))))
		return diags
	}

	decodeAt := func(newAddr uint64) (alpha.Inst, bool) {
		off := newAddr - base
		if off+4 > uint64(len(res.Text)) {
			return alpha.Inst{}, false
		}
		w := binary.LittleEndian.Uint32(res.Text[off:])
		in, err := alpha.Decode(w)
		return in, err == nil
	}

	checked := 0
	for _, pr := range p.Procs {
		for _, b := range pr.Blocks {
			for _, in := range b.Insts {
				checked++
				newAddr, ok := l.oldToNew[in.Addr]
				if !ok {
					bad(pr, in.Addr, "instruction unmapped by layout")
					continue
				}
				got, ok := decodeAt(newAddr)
				if !ok {
					bad(pr, in.Addr, "rewritten word at new %#x does not decode", newAddr)
					continue
				}
				if got.Op != in.I.Op {
					bad(pr, in.Addr, "rewritten opcode %s, expected %s", got.Op, in.I.Op)
					continue
				}
				if in.I.Op.Format() == alpha.FormatBranch {
					// The displacement was recomputed; it must reach the new
					// address of the original target.
					oldTarget := in.Addr + 4 + uint64(int64(in.I.Disp)*4)
					wantTarget, ok := l.NewAddr(oldTarget)
					gotTarget := newAddr + 4 + uint64(int64(got.Disp)*4)
					if !ok || gotTarget != wantTarget {
						bad(pr, in.Addr, "rewritten branch reaches new %#x, expected %#x (original target %#x)", gotTarget, wantTarget, oldTarget)
					}
					if got.Ra != in.I.Ra {
						bad(pr, in.Addr, "rewritten branch register %s, expected %s", got.Ra, in.I.Ra)
					}
				} else if got.Ra != in.I.Ra || got.Rb != in.I.Rb || got.Rc != in.I.Rc {
					// Displacements of memory-format instructions may be
					// legitimately re-patched by address relocations; the
					// register operands never change.
					bad(pr, in.Addr, "rewritten operands %v, expected %v", got, in.I)
				}
				// Spliced code — call-site templates and inlined analysis
				// bodies alike. Layout emits Code.Insts verbatim and then
				// patches exactly the instructions named by CodeRelocs, so
				// every word must decode, un-patched instructions must match
				// the IR EXACTLY (this re-checks inlined bodies' re-indexed
				// internal branch displacements), and patched ones keep
				// their opcode (relocations rewrite displacement fields
				// only).
				verifyCode := func(codes []Code) {
					for ci := range codes {
						c := &codes[ci]
						start, ok := l.codeAddr[c]
						if !ok {
							bad(pr, in.Addr, "spliced code sequence has no layout address")
							return
						}
						patched := map[int]bool{}
						for _, r := range c.Relocs {
							patched[r.Index] = true
						}
						for k := range c.Insts {
							checked++
							w, ok := decodeAt(start + uint64(k)*4)
							if !ok {
								bad(pr, in.Addr, "spliced word %d at new %#x does not decode", k, start+uint64(k)*4)
								continue
							}
							if w.Op != c.Insts[k].Op {
								bad(pr, in.Addr, "spliced opcode %s at new %#x, expected %s", w.Op, start+uint64(k)*4, c.Insts[k].Op)
								continue
							}
							if !patched[k] && w != c.Insts[k] {
								bad(pr, in.Addr, "spliced instruction %v at new %#x, expected %v", w, start+uint64(k)*4, c.Insts[k])
							}
						}
					}
				}
				verifyCode(in.Before)
				verifyCode(in.After)
			}
		}
	}

	// The carried-forward relocation records must stay in bounds of the
	// emitted sections; text offsets are attributed back to original PCs
	// through the new->old map.
	diags = append(diags, verifyRelocs(res.Relocs, len(res.Symbols), uint64(len(res.Text)), uint64(len(res.Data)),
		func(sec aout.Section, off uint64) (string, uint64) {
			if sec == aout.SecText {
				if old, ok := l.newToOld[base+off]; ok {
					return p.procFor(old), old
				}
			}
			return "", off
		})...)

	sp.SetAttr(
		obs.Int("checks", int64(checked)),
		obs.Int("diags", int64(len(diags))))
	ctx.Count("om.verify.checks", int64(checked))
	ctx.Count("om.verify.diags", int64(len(diags)))
	return diags
}
