package om_test

import (
	"strings"
	"testing"

	"atom/internal/alpha"
	"atom/internal/om"
)

// verifyClean builds the sample program, splices some code, and runs all
// three verifier stages, expecting silence at each.
func TestVerifyCleanPipeline(t *testing.T) {
	exe := buildSample(t, sampleProgram)
	prog, err := om.Build(exe)
	if err != nil {
		t.Fatal(err)
	}
	if ds := prog.Verify(); len(ds) > 0 {
		t.Fatalf("pristine IR has %d diagnostics, first: %s", len(ds), ds[0])
	}

	// Instrument a little: nops before every instruction of main.
	nop := alpha.Mov(alpha.Zero, alpha.Zero)
	for _, in := range prog.Proc("main").Blocks[0].Insts {
		in.Before = append(in.Before, om.Code{Insts: []alpha.Inst{nop, nop}})
	}
	lay := prog.Layout()
	if ds := lay.Verify(); len(ds) > 0 {
		t.Fatalf("layout has %d diagnostics, first: %s", len(ds), ds[0])
	}
	res, err := lay.Finish(func(string) (uint64, bool) { return 0, false })
	if err != nil {
		t.Fatal(err)
	}
	if ds := lay.VerifyRewrite(res); len(ds) > 0 {
		t.Fatalf("rewrite has %d diagnostics, first: %s", len(ds), ds[0])
	}
}

// Each corruption of a well-formed IR must surface as at least one
// diagnostic mentioning the defect, attributed to the right procedure.
func TestVerifyDetectsCorruption(t *testing.T) {
	build := func(t *testing.T) *om.Program {
		prog, err := om.Build(buildSample(t, sampleProgram))
		if err != nil {
			t.Fatal(err)
		}
		return prog
	}

	tests := []struct {
		name    string
		corrupt func(p *om.Program)
		wantMsg string
	}{
		{
			name: "skewed-address",
			corrupt: func(p *om.Program) {
				b := p.Proc("fib").Blocks[0]
				b.Insts[0].Addr += 4
			},
			wantMsg: "address",
		},
		{
			name: "bad-block-index",
			corrupt: func(p *om.Program) {
				p.Proc("fib").Blocks[1].Index = 7
			},
			wantMsg: "index",
		},
		{
			name: "cross-procedure-edge",
			corrupt: func(p *om.Program) {
				fib := p.Proc("fib")
				main := p.Proc("main")
				fib.Blocks[0].Succs[0] = main.Blocks[0]
			},
			wantMsg: "leaves the procedure",
		},
		{
			name: "dropped-fallthrough",
			corrupt: func(p *om.Program) {
				// Find a conditional block and cut one successor edge.
				for _, b := range p.Proc("fib").Blocks {
					last := b.Insts[len(b.Insts)-1]
					if last.I.Op.IsCondBranch() && len(b.Succs) == 2 {
						b.Succs = b.Succs[:1]
						return
					}
				}
				panic("no conditional block in fib")
			},
			wantMsg: "successor edges",
		},
		{
			name: "undecodable-rewrite",
			corrupt: func(p *om.Program) {
				// An instruction the encoder accepts whose operands were
				// scribbled: Rc on a branch makes the round-trip differ.
				b := p.Proc("fib").Blocks[0]
				in := b.Insts[0]
				in.I.Rc = alpha.T7
			},
			wantMsg: "",
		},
	}

	for _, tc := range tests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := build(t)
			tc.corrupt(p)
			ds := p.Verify()
			if len(ds) == 0 {
				t.Fatalf("%s: corruption not detected", tc.name)
			}
			if tc.wantMsg != "" {
				found := false
				for _, d := range ds {
					if strings.Contains(d.Msg, tc.wantMsg) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("%s: no diagnostic mentions %q; got %s", tc.name, tc.wantMsg, ds[0])
				}
			}
			// Diagnostics carry original PCs inside the text segment and,
			// when attributable, a procedure name.
			for _, d := range ds {
				if d.Addr != 0 && d.Proc == "" && d.Addr >= p.Exe.TextAddr &&
					d.Addr < p.Exe.TextAddr+uint64(len(p.Exe.Text)) {
					t.Errorf("%s: diagnostic inside text lacks a procedure: %s", tc.name, d)
				}
			}
		})
	}
}

// A tampered rewrite — text patched after Finish — must be caught by
// VerifyRewrite, with the diagnostic located at the ORIGINAL pc of the
// damaged instruction.
func TestVerifyRewriteDetectsTampering(t *testing.T) {
	prog, err := om.Build(buildSample(t, sampleProgram))
	if err != nil {
		t.Fatal(err)
	}
	lay := prog.Layout()
	res, err := lay.Finish(func(string) (uint64, bool) { return 0, false })
	if err != nil {
		t.Fatal(err)
	}

	// Flip the opcode bits of main's first instruction in the output.
	main := prog.Proc("main")
	orig := main.Blocks[0].Insts[0]
	newAddr, ok := lay.NewAddr(orig.Addr)
	if !ok {
		t.Fatal("main's first instruction unmapped")
	}
	off := newAddr - prog.Exe.TextAddr
	res.Text[off+3] ^= 0xFC // opcode lives in the top bits

	ds := lay.VerifyRewrite(res)
	if len(ds) == 0 {
		t.Fatal("tampered text passed VerifyRewrite")
	}
	found := false
	for _, d := range ds {
		if d.Addr == orig.Addr && d.Proc == "main" {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no diagnostic at original pc %#x in main; first: %s", orig.Addr, ds[0])
	}
}
