// Package prof is a deterministic sampling profiler for programs
// executed under internal/vm — gprof-style statistical profiling (Graham
// et al.) layered on ATOM's deterministic machine.
//
// The machine drives the profiler through vm.Probe: a PC sample every N
// retired instructions, and a call/return event for every bsr/jsr/ret,
// from which the profiler maintains a lightweight shadow call stack.
// Because the period is counted in retired instructions rather than
// time, two runs of the same program produce byte-identical profiles.
//
// Attribution honors ATOM's pristine-behavior contract: every sampled PC
// is translated back through the static new->original PC map
// (om.Layout.OldAddr via Options.MapPC) and resolved against the
// ORIGINAL procedure ranges, so reports are in the application's own
// terms. Samples landing in injected code — spliced call sites, register
// wrappers, the analysis image — have no original PC and are attributed
// to a synthetic "[analysis]" frame, making tool overhead visible
// instead of smearing it across application procedures.
//
// Outputs: a flat+cumulative text report modeled on the paper's prof
// tool (WriteFlat), and a folded-stack file consumable by flamegraph
// tooling (WriteFolded).
package prof

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"

	"atom/internal/aout"
	"atom/internal/obs"
	"atom/internal/om"
	"atom/internal/vm"
)

// Frame names for samples that resolve to no original procedure.
const (
	// AnalysisFrame attributes injected instrumentation: spliced call
	// sites, wrappers, and the analysis image.
	AnalysisFrame = "[analysis]"
	// UnknownFrame attributes original PCs covered by no procedure range
	// (it should not occur for well-formed executables).
	UnknownFrame = "[unknown]"
)

const (
	frameAnalysis int32 = -1
	frameUnknown  int32 = -2

	// maxStackDepth bounds the shadow stack; deeper recursion is counted
	// (so returns stay balanced) but not recorded frame by frame.
	maxStackDepth = 512
)

// Options parameterize a profiler.
type Options struct {
	// Period is the sampling period in retired instructions. Zero selects
	// 10000. Attach copies it into the vm.Config; it must match the
	// machine's SamplePeriod for the report header to be truthful.
	Period uint64
	// Procs are the procedure ranges samples attribute to, in ORIGINAL
	// addresses (core.Result.PCMap.OrigProcs() for instrumented programs,
	// ProcsFromSymbols for plain ones). Need not be sorted.
	Procs []om.ProcRange
	// MapPC translates an executing (new) PC to its original PC —
	// om.Layout.OldAddr for instrumented programs. PCs it rejects are
	// attributed to AnalysisFrame. Nil means the identity map: every PC
	// is already an original PC (uninstrumented programs).
	MapPC func(uint64) (uint64, bool)
	// Obs, when non-nil, receives a "prof.sample_depth" histogram
	// observation (the folded stack depth) per sample and a
	// "prof.samples" counter at Flush.
	Obs *obs.Ctx
	// KeepSamples records every individual sample (tests and debugging;
	// memory grows with the run).
	KeepSamples bool
}

// Sample is one recorded PC sample (Options.KeepSamples).
type Sample struct {
	PC     uint64 // executing (new) PC
	OrigPC uint64 // original PC; zero when Frame is AnalysisFrame
	Frame  string // attributed procedure name, AnalysisFrame, or UnknownFrame
}

// Profiler implements vm.Probe. It is not safe for concurrent use; each
// machine gets its own.
type Profiler struct {
	period uint64
	procs  []om.ProcRange
	mapPC  func(uint64) (uint64, bool)
	obs    *obs.Ctx
	keep   bool

	stack    []int32 // frame ids of calls not yet returned from
	overflow uint64  // calls beyond maxStackDepth

	nsamples uint64
	maxDepth int
	flat     map[int32]uint64
	cum      map[int32]uint64
	folded   map[string]uint64
	samples  []Sample

	frames []int32 // per-sample scratch, reused across samples
}

// New builds a profiler.
func New(o Options) *Profiler {
	if o.Period == 0 {
		o.Period = 10000
	}
	procs := append([]om.ProcRange(nil), o.Procs...)
	sort.Slice(procs, func(i, j int) bool { return procs[i].Start < procs[j].Start })
	return &Profiler{
		period: o.Period,
		procs:  procs,
		mapPC:  o.MapPC,
		obs:    o.Obs,
		keep:   o.KeepSamples,
		flat:   map[int32]uint64{},
		cum:    map[int32]uint64{},
		folded: map[string]uint64{},
	}
}

// ProcsFromSymbols derives procedure ranges from an executable's function
// symbols — the identity-map attribution table for uninstrumented
// programs.
func ProcsFromSymbols(syms []aout.Symbol) []om.ProcRange {
	var out []om.ProcRange
	for _, s := range syms {
		if s.Kind != aout.SymFunc || s.Section != aout.SecText {
			continue
		}
		out = append(out, om.ProcRange{Name: s.Name, Start: s.Value, End: s.Value + s.Size})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Attach wires the profiler into a machine configuration.
func (p *Profiler) Attach(cfg *vm.Config) {
	cfg.Probe = p
	cfg.SamplePeriod = p.period
}

// Period returns the sampling period in retired instructions.
func (p *Profiler) Period() uint64 { return p.period }

// TotalSamples returns how many samples were recorded.
func (p *Profiler) TotalSamples() uint64 { return p.nsamples }

// Samples returns the recorded individual samples (empty unless
// Options.KeepSamples was set).
func (p *Profiler) Samples() []Sample { return p.samples }

// attribute resolves an executing PC to a frame id and original PC.
func (p *Profiler) attribute(pc uint64) (int32, uint64) {
	orig := pc
	if p.mapPC != nil {
		o, ok := p.mapPC(pc)
		if !ok {
			return frameAnalysis, 0
		}
		orig = o
	}
	i := sort.Search(len(p.procs), func(i int) bool { return p.procs[i].Start > orig }) - 1
	if i >= 0 && orig < p.procs[i].End {
		return int32(i), orig
	}
	return frameUnknown, orig
}

// frameName renders a frame id.
func (p *Profiler) frameName(id int32) string {
	switch id {
	case frameAnalysis:
		return AnalysisFrame
	case frameUnknown:
		return UnknownFrame
	default:
		return p.procs[id].Name
	}
}

// Call implements vm.Probe: push the callee's frame.
func (p *Profiler) Call(pc, target uint64) {
	if len(p.stack) >= maxStackDepth {
		p.overflow++
		return
	}
	id, _ := p.attribute(target)
	p.stack = append(p.stack, id)
}

// Return implements vm.Probe: pop the innermost unreturned call. A ret
// with no matching call (longjmp-style unwinding, or a program that
// returns out of its entry frame) is ignored.
func (p *Profiler) Return(pc, target uint64) {
	switch {
	case p.overflow > 0:
		p.overflow--
	case len(p.stack) > 0:
		p.stack = p.stack[:len(p.stack)-1]
	}
}

// Sample implements vm.Probe: fold the shadow stack plus the sampled
// leaf into the profile.
func (p *Profiler) Sample(pc uint64) {
	leaf, orig := p.attribute(pc)
	p.nsamples++
	p.flat[leaf]++
	if p.keep {
		p.samples = append(p.samples, Sample{PC: pc, OrigPC: orig, Frame: p.frameName(leaf)})
	}

	// Fold the stack: shadow frames root-first, then the leaf unless it
	// is already on top (samples inside a procedure entered by call).
	// Consecutive identical AnalysisFrame entries collapse — an inserted
	// call site, its wrapper, and the analysis routine are one injected
	// region, not three levels of application structure.
	frames := p.frames[:0]
	for _, id := range p.stack {
		if id == frameAnalysis && len(frames) > 0 && frames[len(frames)-1] == frameAnalysis {
			continue
		}
		frames = append(frames, id)
	}
	if n := len(frames); n == 0 || frames[n-1] != leaf {
		frames = append(frames, leaf)
	}
	p.frames = frames

	if len(frames) > p.maxDepth {
		p.maxDepth = len(frames)
	}
	p.obs.Observe("prof.sample_depth", int64(len(frames)))

	var key strings.Builder
	seen := make(map[int32]bool, len(frames))
	for i, id := range frames {
		if i > 0 {
			key.WriteByte(';')
		}
		key.WriteString(p.frameName(id))
		if !seen[id] {
			seen[id] = true
			p.cum[id]++
		}
	}
	p.folded[key.String()]++
}

// Process-wide sample total across every profiler, for the telemetry
// registry's lazily-polled gauges.
var totalSamples atomic.Uint64

// TotalSamplesAll returns how many samples every profiler in the
// process has flushed so far.
func TotalSamplesAll() uint64 { return totalSamples.Load() }

// Flush reports summary counters to the obs context and folds this
// run's samples into the process-wide total (once per run; the obs
// report is safely skipped when Options.Obs is nil).
func (p *Profiler) Flush() {
	totalSamples.Add(p.nsamples)
	p.obs.Count("prof.samples", int64(p.nsamples))
}

// flatRow is one aggregated report row.
type flatRow struct {
	name      string
	flat, cum uint64
}

// rows returns the per-procedure aggregates, sorted by flat samples
// descending (ties: cumulative descending, then name ascending) — the
// deterministic order WriteFlat renders.
func (p *Profiler) rows() []flatRow {
	ids := make(map[int32]bool, len(p.flat)+len(p.cum))
	for id := range p.flat {
		ids[id] = true
	}
	for id := range p.cum {
		ids[id] = true
	}
	out := make([]flatRow, 0, len(ids))
	for id := range ids {
		out = append(out, flatRow{name: p.frameName(id), flat: p.flat[id], cum: p.cum[id]})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.flat != b.flat {
			return a.flat > b.flat
		}
		if a.cum != b.cum {
			return a.cum > b.cum
		}
		return a.name < b.name
	})
	return out
}

// WriteFlat renders the flat+cumulative report, modeled on the paper's
// prof tool output ("procedure / insts") with sampling columns: flat is
// samples whose PC landed in the procedure, cumulative counts samples
// with the procedure anywhere on the folded stack. Byte-identical across
// identical runs.
func (p *Profiler) WriteFlat(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# atom prof: period=%d samples=%d (~%d instructions) max-depth=%d\n",
		p.period, p.nsamples, p.nsamples*p.period, p.maxDepth)
	b.WriteString("#  %total     flat      cum  procedure\n")
	for _, r := range p.rows() {
		pct := 0.0
		if p.nsamples > 0 {
			pct = 100 * float64(r.flat) / float64(p.nsamples)
		}
		fmt.Fprintf(&b, "%8.2f %8d %8d  %s\n", pct, r.flat, r.cum, r.name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteFolded renders the profile in folded-stack form — one line per
// distinct stack, "frame;frame;leaf count" — the input format of
// flamegraph tooling. Lines are sorted by stack, so the output is
// byte-identical across identical runs.
func (p *Profiler) WriteFolded(w io.Writer) error {
	keys := make([]string, 0, len(p.folded))
	for k := range p.folded {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %d\n", k, p.folded[k])
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ValidateFolded checks folded-stack syntax: every line must be
// "frame(;frame)* count" with a positive count and non-empty frames.
// It returns the number of stacks.
func ValidateFolded(data []byte) (int, error) {
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) == 1 && lines[0] == "" {
		return 0, fmt.Errorf("prof: folded profile is empty")
	}
	for i, ln := range lines {
		sp := strings.LastIndexByte(ln, ' ')
		if sp <= 0 {
			return 0, fmt.Errorf("prof: folded line %d: no count: %q", i+1, ln)
		}
		var n uint64
		if _, err := fmt.Sscanf(ln[sp+1:], "%d", &n); err != nil || n == 0 {
			return 0, fmt.Errorf("prof: folded line %d: bad count %q", i+1, ln[sp+1:])
		}
		for _, f := range strings.Split(ln[:sp], ";") {
			if f == "" {
				return 0, fmt.Errorf("prof: folded line %d: empty frame: %q", i+1, ln)
			}
		}
	}
	return len(lines), nil
}
