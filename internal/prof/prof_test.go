package prof

import (
	"bytes"
	"strings"
	"testing"

	"atom/internal/om"
	"atom/internal/rtl"
	"atom/internal/vm"
)

// testProcs is a small synthetic address space: main [100,200),
// compute [200,300), helper [400,500); [300,400) is a hole.
func testProcs() []om.ProcRange {
	return []om.ProcRange{
		{Name: "compute", Start: 200, End: 300},
		{Name: "main", Start: 100, End: 200},
		{Name: "helper", Start: 400, End: 500},
	}
}

// TestAttribution drives the probe interface directly and checks flat,
// cumulative, and folded aggregation against hand-computed values.
func TestAttribution(t *testing.T) {
	p := New(Options{Procs: testProcs(), KeepSamples: true})

	p.Sample(150)      // main, stack []
	p.Call(150, 210)   // main calls compute
	p.Sample(220)      // compute, stack [compute]
	p.Sample(230)      // compute again
	p.Call(230, 410)   // compute calls helper
	p.Sample(450)      // helper, stack [compute helper]
	p.Return(490, 231) // helper returns
	p.Sample(240)      // compute, stack [compute]
	p.Return(290, 151) // compute returns
	p.Sample(350)      // hole: [unknown]

	if got := p.TotalSamples(); got != 6 {
		t.Fatalf("TotalSamples = %d, want 6", got)
	}
	samples := p.Samples()
	wantFrames := []string{"main", "compute", "compute", "helper", "compute", UnknownFrame}
	for i, s := range samples {
		if s.Frame != wantFrames[i] {
			t.Errorf("sample %d: frame %q, want %q", i, s.Frame, wantFrames[i])
		}
		if s.OrigPC != s.PC {
			t.Errorf("sample %d: identity map must keep OrigPC == PC (%d != %d)", i, s.OrigPC, s.PC)
		}
	}

	var flat bytes.Buffer
	if err := p.WriteFlat(&flat); err != nil {
		t.Fatal(err)
	}
	// compute: 3 flat, on-stack for 4 samples (its own 3 + helper's).
	for _, want := range []string{
		"period=10000 samples=6",
		"   50.00        3        4  compute\n",
		"   16.67        1        1  main\n",
		"   16.67        1        1  helper\n",
		"   16.67        1        1  [unknown]\n",
	} {
		if !strings.Contains(flat.String(), want) {
			t.Errorf("flat report missing %q:\n%s", want, flat.String())
		}
	}

	var folded bytes.Buffer
	if err := p.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	want := "[unknown] 1\n" +
		"compute 3\n" +
		"compute;helper 1\n" +
		"main 1\n"
	if folded.String() != want {
		t.Errorf("folded:\n%s\nwant:\n%s", folded.String(), want)
	}
	if n, err := ValidateFolded(folded.Bytes()); err != nil || n != 4 {
		t.Errorf("ValidateFolded = %d, %v; want 4, nil", n, err)
	}
}

// TestAnalysisAttribution checks MapPC-driven attribution: PCs the map
// rejects become [analysis], and consecutive analysis frames collapse in
// the folded stack.
func TestAnalysisAttribution(t *testing.T) {
	// New PCs >= 1000 are injected code; below, identity-mapped.
	mapPC := func(pc uint64) (uint64, bool) {
		if pc >= 1000 {
			return 0, false
		}
		return pc, true
	}
	p := New(Options{Procs: testProcs(), MapPC: mapPC, KeepSamples: true})

	p.Call(150, 1000)  // main calls the wrapper (injected)
	p.Call(1010, 1100) // wrapper calls the analysis routine (injected)
	p.Sample(1150)     // sampled inside analysis code
	p.Return(1190, 1011)
	p.Return(1020, 151)
	p.Sample(160) // back in main

	s := p.Samples()
	if s[0].Frame != AnalysisFrame || s[0].OrigPC != 0 {
		t.Errorf("injected sample: frame %q origpc %d, want %q 0", s[0].Frame, s[0].OrigPC, AnalysisFrame)
	}
	if s[1].Frame != "main" || s[1].OrigPC != 160 {
		t.Errorf("mapped sample: frame %q origpc %d, want main 160", s[1].Frame, s[1].OrigPC)
	}

	var folded bytes.Buffer
	if err := p.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	// Two injected stack frames plus the injected leaf collapse to ONE
	// [analysis] entry.
	want := "[analysis] 1\nmain 1\n"
	if folded.String() != want {
		t.Errorf("folded:\n%s\nwant:\n%s", folded.String(), want)
	}
}

// TestStackOverflowBalanced checks that recursion past maxStackDepth is
// counted, not recorded, and that returns unwind symmetrically.
func TestStackOverflowBalanced(t *testing.T) {
	p := New(Options{Procs: testProcs()})
	const deep = maxStackDepth + 100
	for i := 0; i < deep; i++ {
		p.Call(150, 210)
	}
	if len(p.stack) != maxStackDepth || p.overflow != 100 {
		t.Fatalf("stack %d overflow %d, want %d and 100", len(p.stack), p.overflow, maxStackDepth)
	}
	p.Sample(220)
	if p.maxDepth > maxStackDepth+1 {
		t.Errorf("maxDepth %d exceeds recorded stack bound", p.maxDepth)
	}
	for i := 0; i < deep; i++ {
		p.Return(290, 151)
	}
	if len(p.stack) != 0 || p.overflow != 0 {
		t.Errorf("after unwind: stack %d overflow %d, want 0 0", len(p.stack), p.overflow)
	}
	// Extra returns (unwinding past the entry frame) must be ignored.
	p.Return(290, 151)
	if len(p.stack) != 0 {
		t.Error("return on empty stack modified it")
	}
}

// TestValidateFolded exercises the syntax checker's rejection paths.
func TestValidateFolded(t *testing.T) {
	cases := []struct {
		in string
		ok bool
	}{
		{"main 5\n", true},
		{"main;leaf 1\nother 2\n", true},
		{"", false},
		{"main\n", false},         // no count
		{"main 0\n", false},       // zero count
		{"main x\n", false},       // non-numeric count
		{"main;;leaf 1\n", false}, // empty frame
		{";main 1\n", false},      // leading empty frame
	}
	for _, tc := range cases {
		_, err := ValidateFolded([]byte(tc.in))
		if (err == nil) != tc.ok {
			t.Errorf("ValidateFolded(%q): err=%v, want ok=%v", tc.in, err, tc.ok)
		}
	}
}

// vmTestSrc exercises calls and a compute loop — enough retired
// instructions for a short sampling period to collect many samples.
const vmTestSrc = `
int acc;
int work(int n) {
	int i;
	int s;
	s = 0;
	for (i = 0; i < n; i++) {
		s = s + i * i;
	}
	return s;
}
int main() {
	int i;
	for (i = 0; i < 50; i++) {
		acc = acc + work(100);
	}
	return 0;
}
`

// TestVMDeterminism runs the same program twice under the VM with the
// profiler attached and requires byte-identical flat and folded reports
// — the property the CI profile smoke also checks end to end.
func TestVMDeterminism(t *testing.T) {
	exe, err := rtl.BuildProgram("profdet.c", vmTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() (flat, folded string, samples uint64) {
		p := New(Options{Period: 97, Procs: ProcsFromSymbols(exe.Symbols)})
		cfg := vm.Config{}
		p.Attach(&cfg)
		m, err := vm.New(exe, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		var fb, ob bytes.Buffer
		if err := p.WriteFlat(&fb); err != nil {
			t.Fatal(err)
		}
		if err := p.WriteFolded(&ob); err != nil {
			t.Fatal(err)
		}
		return fb.String(), ob.String(), p.TotalSamples()
	}
	f1, o1, n1 := runOnce()
	f2, o2, n2 := runOnce()
	if n1 == 0 {
		t.Fatal("no samples collected")
	}
	if n1 != n2 || f1 != f2 || o1 != o2 {
		t.Errorf("profiles differ between identical runs (%d vs %d samples)\n--flat 1--\n%s--flat 2--\n%s", n1, n2, f1, f2)
	}
	if _, err := ValidateFolded([]byte(o1)); err != nil {
		t.Errorf("VM-produced folded profile invalid: %v", err)
	}
	// Every sampled frame must resolve: work and main dominate, and no
	// sample may be [unknown] — symbol ranges cover all program text.
	if strings.Contains(f1, UnknownFrame) {
		t.Errorf("flat report contains %s:\n%s", UnknownFrame, f1)
	}
	if !strings.Contains(f1, "work") || !strings.Contains(f1, "main") {
		t.Errorf("flat report missing expected procedures:\n%s", f1)
	}
}
