package rtl

import (
	"fmt"
	"sort"

	"atom/internal/aout"
	"atom/internal/build"
	"atom/internal/link"
)

// Wire formats for the rtl caches, so compiled objects and the runtime
// library persist through the process-wide build.Store: a warm process
// against a populated cache directory compiles and assembles nothing.
// Both formats lean on aout's own versioned Encode/Decode for the object
// files and wrap them in the length-prefixed container from
// internal/build. The version strings are mixed into the cache keys, so
// a format change can never decode an old blob.
const (
	objectsCodecVersion = "atom-objs/v1\n"
	runtimeCodecVersion = "atom-rtl/v1\n"
)

// objectsCodec serializes a compiled object set ([]*aout.File).
type objectsCodec struct{}

func (objectsCodec) Marshal(v any) ([]byte, error) {
	objs, ok := v.([]*aout.File)
	if !ok {
		return nil, fmt.Errorf("rtl: objectsCodec: unexpected %T", v)
	}
	e := build.NewEnc(objectsCodecVersion)
	e.U32(uint32(len(objs)))
	for _, o := range objs {
		e.Blob(o.Encode())
	}
	return e.Bytes(), nil
}

func (objectsCodec) Unmarshal(blob []byte) (any, error) {
	d := build.NewDec(blob, objectsCodecVersion)
	n := d.Len()
	objs := make([]*aout.File, 0, n)
	for i := 0; i < n; i++ {
		raw := d.Blob()
		if err := d.Err(); err != nil {
			return nil, err
		}
		o, err := aout.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("rtl: objectsCodec: member %d: %w", i, err)
		}
		objs = append(objs, o)
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return objs, nil
}

// runtimeCodec serializes the built runtime library bundle: the header
// sources, crt0, and the archive members, all in sorted order so the
// encoding is deterministic.
type runtimeCodec struct{}

func (runtimeCodec) Marshal(v any) ([]byte, error) {
	rt, ok := v.(*runtime)
	if !ok {
		return nil, fmt.Errorf("rtl: runtimeCodec: unexpected %T", v)
	}
	e := build.NewEnc(runtimeCodecVersion)
	var names []string
	for n := range rt.headers {
		names = append(names, n)
	}
	sort.Strings(names)
	e.U32(uint32(len(names)))
	for _, n := range names {
		e.Str(n)
		e.Str(rt.headers[n])
	}
	e.Blob(rt.crt0.Encode())
	e.Str(rt.lib.Name)
	e.U32(uint32(len(rt.lib.Members)))
	for _, m := range rt.lib.Members {
		e.Blob(m.Encode())
	}
	return e.Bytes(), nil
}

func (runtimeCodec) Unmarshal(blob []byte) (any, error) {
	d := build.NewDec(blob, runtimeCodecVersion)
	rt := &runtime{headers: map[string]string{}}
	nh := d.Len()
	for i := 0; i < nh; i++ {
		name := d.Str()
		rt.headers[name] = d.Str()
	}
	crt0Raw := d.Blob()
	if err := d.Err(); err != nil {
		return nil, err
	}
	crt0, err := aout.Decode(crt0Raw)
	if err != nil {
		return nil, fmt.Errorf("rtl: runtimeCodec: crt0: %w", err)
	}
	rt.crt0 = crt0
	rt.lib = &link.Library{Name: d.Str()}
	nm := d.Len()
	for i := 0; i < nm; i++ {
		raw := d.Blob()
		if err := d.Err(); err != nil {
			return nil, err
		}
		m, err := aout.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("rtl: runtimeCodec: member %d: %w", i, err)
		}
		rt.lib.Members = append(rt.lib.Members, m)
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return rt, nil
}
