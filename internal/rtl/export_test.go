package rtl

// Test hooks: inject a transient failure into the runtime build and
// clear the memoized runtime, so rtl_test can prove a failed build is
// retried rather than latched.

import "atom/internal/build"

// SetBuildFault installs (or, with nil, removes) a fault consulted at
// the start of every runtime build.
func SetBuildFault(f func() error) { buildFault = f }

// ResetRuntimeCache drops the memoized runtime library build.
func ResetRuntimeCache(scope build.Scope) { rtCache.Reset(scope) }
