#define FILE struct __file
#define NULL 0
#define EOF -1

struct __file { long fd; };

extern long __fds[3];
#define stdin ((FILE *)&__fds[0])
#define stdout ((FILE *)&__fds[1])
#define stderr ((FILE *)&__fds[2])

extern FILE *fopen(char *path, char *mode);
extern int fclose(FILE *f);
extern int printf(char *fmt, ...);
extern int fprintf(FILE *f, char *fmt, ...);
extern int sprintf(char *buf, char *fmt, ...);
extern int fputs(char *s, FILE *f);
extern int puts(char *s);
extern int fputc(int c, FILE *f);
extern int putchar(int c);
extern int fgetc(FILE *f);
extern int getchar(void);
extern long fread(char *buf, long size, long n, FILE *f);
extern long fwrite(char *buf, long size, long n, FILE *f);
