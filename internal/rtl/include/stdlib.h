#define NULL 0

extern char *malloc(long n);
extern void free(char *p);
extern char *calloc(long n, long size);
extern char *realloc(char *p, long n);
extern void exit(long code);
extern void abort(void);
extern long atoi(char *s);
extern long labs(long v);
extern long rand(void);
extern void srand(long seed);

extern char *sbrk(long incr);
extern long __cycles(void);
extern void __halt(long code);
extern long __sys_write(long fd, char *buf, long n);
extern long __sys_read(long fd, char *buf, long n);
extern long __sys_open(char *path, long flags);
extern long __sys_close(long fd);
extern long __divq(long a, long b);
extern long __remq(long a, long b);
extern long __udivq(long a, long b);
extern long __udiv10(long v);
extern long __uremq(long a, long b);
