package rtl_test

import (
	"errors"
	"strings"
	"testing"

	"atom/internal/build"
	"atom/internal/rtl"
)

// TestRuntimeBuildRetriesAfterFailure: a failed runtime-library build
// must not be latched (the sync.Once this replaced returned the first
// error forever). A later call retries and succeeds.
func TestRuntimeBuildRetriesAfterFailure(t *testing.T) {
	rtl.ResetRuntimeCache(build.ScopeMemory)
	boom := errors.New("transient build failure")
	rtl.SetBuildFault(func() error { return boom })
	defer rtl.SetBuildFault(nil)

	if _, err := rtl.Lib(); !errors.Is(err, boom) {
		t.Fatalf("faulted build: err = %v, want %v", err, boom)
	}
	if _, err := rtl.Headers(); !errors.Is(err, boom) {
		t.Fatalf("faulted build (second call): err = %v, want %v", err, boom)
	}

	rtl.SetBuildFault(nil)
	lib, err := rtl.Lib()
	if err != nil {
		t.Fatalf("build after fault cleared: %v", err)
	}
	if lib == nil || len(lib.Members) == 0 {
		t.Fatal("rebuilt library is empty")
	}
	if _, err := rtl.Crt0(); err != nil {
		t.Fatalf("Crt0 after recovery: %v", err)
	}
}

// TestBuildObjectsMemoized: compiling the same sources twice returns the
// shared objects without recompiling; different sources recompile.
func TestBuildObjectsMemoized(t *testing.T) {
	rtl.ResetObjectCache(build.ScopeMemory)
	src := map[string]string{"m.c": "int f() { return 41; }\n"}
	a, err := rtl.BuildObjects(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rtl.BuildObjects(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Error("identical sources did not share compiled objects")
	}
	s := rtl.ObjectCacheStats()
	if s.Builds != 1 || s.Hits != 1 {
		t.Errorf("stats = %+v, want 1 build and 1 hit", s)
	}
	src2 := map[string]string{"m.c": "int f() { return 42; }\n"}
	c, err := rtl.BuildObjects(src2)
	if err != nil {
		t.Fatal(err)
	}
	if c[0] == a[0] {
		t.Error("changed source returned the stale object")
	}
	if s := rtl.ObjectCacheStats(); s.Builds != 2 {
		t.Errorf("changed source did not recompile: stats = %+v", s)
	}
}

// TestBuildObjectsCompileErrorNotLatched: a source error is reported on
// every attempt and a fixed source then compiles.
func TestBuildObjectsCompileErrorNotLatched(t *testing.T) {
	bad := map[string]string{"b.c": "int f( {\n"}
	for i := 0; i < 2; i++ {
		if _, err := rtl.BuildObjects(bad); err == nil {
			t.Fatalf("attempt %d: compile of malformed source succeeded", i)
		} else if strings.Contains(err.Error(), "latched") {
			t.Fatal(err)
		}
	}
	good := map[string]string{"b.c": "int f() { return 0; }\n"}
	if _, err := rtl.BuildObjects(good); err != nil {
		t.Fatalf("fixed source: %v", err)
	}
}
