// Package rtl builds the runtime library (libc equivalent) used by every
// program in this reproduction: crt0, system-call veneers over CALL_PAL,
// software integer division (the Alpha has no divide instruction),
// malloc/free over sbrk, string routines, and printf-family stdio.
//
// ATOM's central discipline is that the application and the analysis
// routines share no code or data: each links its own private copy of this
// library ("if both the application program and the analysis routines use
// the same library procedure, like printf, there are two copies of printf
// in the final executable"). The library is therefore exposed as a
// link.Library whose members are archive-selected per image.
package rtl

import (
	"embed"
	"fmt"
	"io/fs"
	"sort"
	"strings"
	"sync"

	"atom/internal/aout"
	"atom/internal/asm"
	"atom/internal/cc"
	"atom/internal/link"
)

//go:embed src include
var files embed.FS

var (
	once     sync.Once
	headers  map[string]string
	lib      *link.Library
	crt0     *aout.File
	buildErr error
)

func build() {
	headers = map[string]string{}
	hdrs, err := fs.ReadDir(files, "include")
	if err != nil {
		buildErr = fmt.Errorf("rtl: %w", err)
		return
	}
	for _, e := range hdrs {
		data, err := files.ReadFile("include/" + e.Name())
		if err != nil {
			buildErr = fmt.Errorf("rtl: %w", err)
			return
		}
		headers[e.Name()] = string(data)
	}

	srcs, err := fs.ReadDir(files, "src")
	if err != nil {
		buildErr = fmt.Errorf("rtl: %w", err)
		return
	}
	var names []string
	for _, e := range srcs {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	lib = &link.Library{Name: "librtl"}
	for _, name := range names {
		data, err := files.ReadFile("src/" + name)
		if err != nil {
			buildErr = fmt.Errorf("rtl: %w", err)
			return
		}
		var obj *aout.File
		switch {
		case strings.HasSuffix(name, ".s"):
			obj, err = asm.Assemble(name, string(data))
		case strings.HasSuffix(name, ".c"):
			obj, err = cc.Build(name, string(data), headers)
		default:
			continue
		}
		if err != nil {
			buildErr = fmt.Errorf("rtl: %s: %w", name, err)
			return
		}
		// crt0 defines the entry point, which nothing references by
		// name, so it is linked explicitly rather than archive-selected.
		if name == "crt0.s" {
			crt0 = obj
			continue
		}
		lib.Members = append(lib.Members, obj)
	}
}

// Headers returns the standard headers (stdio.h, stdlib.h, string.h) for
// compiling MiniC programs against this library.
func Headers() (map[string]string, error) {
	once.Do(build)
	if buildErr != nil {
		return nil, buildErr
	}
	return headers, nil
}

// Lib returns the compiled runtime library. The returned value is shared
// and must not be mutated; the linker copies member contents.
func Lib() (*link.Library, error) {
	once.Do(build)
	if buildErr != nil {
		return nil, buildErr
	}
	return lib, nil
}

// Crt0 returns the startup object defining __start. It must be linked
// explicitly into executables (nothing references it by name, so archive
// selection would never pull it in).
func Crt0() (*aout.File, error) {
	once.Do(build)
	if buildErr != nil {
		return nil, buildErr
	}
	return crt0, nil
}

// BuildObjects compiles MiniC sources (name -> source) into objects.
// Names ending in ".s" are assembled instead — analysis routines with
// hand-optimized hot paths mix both.
func BuildObjects(srcs map[string]string) ([]*aout.File, error) {
	hdrs, err := Headers()
	if err != nil {
		return nil, err
	}
	var names []string
	for n := range srcs {
		names = append(names, n)
	}
	sort.Strings(names)
	var objs []*aout.File
	for _, n := range names {
		var obj *aout.File
		var err error
		if strings.HasSuffix(n, ".s") {
			obj, err = asm.Assemble(n, srcs[n])
		} else {
			obj, err = cc.Build(n, srcs[n], hdrs)
		}
		if err != nil {
			return nil, err
		}
		objs = append(objs, obj)
	}
	return objs, nil
}

// BuildProgram compiles a single-file MiniC program and links it (with
// crt0 and the runtime library) into an executable.
func BuildProgram(name, src string) (*aout.File, error) {
	return BuildProgramMulti(map[string]string{name: src})
}

// BuildProgramMulti compiles several MiniC source files and links them
// together with crt0 and the runtime library.
func BuildProgramMulti(srcs map[string]string) (*aout.File, error) {
	objs, err := BuildObjects(srcs)
	if err != nil {
		return nil, err
	}
	c0, err := Crt0()
	if err != nil {
		return nil, err
	}
	l, err := Lib()
	if err != nil {
		return nil, err
	}
	return link.Link(link.Config{}, append([]*aout.File{c0}, objs...), l)
}
