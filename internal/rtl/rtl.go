// Package rtl builds the runtime library (libc equivalent) used by every
// program in this reproduction: crt0, system-call veneers over CALL_PAL,
// software integer division (the Alpha has no divide instruction),
// malloc/free over sbrk, string routines, and printf-family stdio.
//
// ATOM's central discipline is that the application and the analysis
// routines share no code or data: each links its own private copy of this
// library ("if both the application program and the analysis routines use
// the same library procedure, like printf, there are two copies of printf
// in the final executable"). The library is therefore exposed as a
// link.Library whose members are archive-selected per image.
//
// All build products are memoized through content-addressed caches
// (internal/build): the runtime library itself is built at most once per
// process, and compiled object sets are keyed by their sources so
// repeated instrumentation runs never recompile unchanged analysis
// routines. Unlike the sync.Once this replaced, a failed build is not
// latched — the next call retries it.
package rtl

import (
	"embed"
	"fmt"
	"io/fs"
	"sort"
	"strings"

	"atom/internal/aout"
	"atom/internal/asm"
	"atom/internal/build"
	"atom/internal/cc"
	"atom/internal/link"
	"atom/internal/obs"
)

//go:embed src include
var files embed.FS

// runtime bundles everything one build of the embedded sources produces.
type runtime struct {
	headers map[string]string
	lib     *link.Library
	crt0    *aout.File
}

var (
	rtCache  = build.NewCache("runtime", runtimeCodec{})
	objCache = build.NewCache("object", objectsCodec{})

	// buildFault, when non-nil, is consulted at the start of a runtime
	// build. Tests use it to inject a transient failure and verify that
	// the failure is not latched.
	buildFault func() error
)

var runtimeKey = build.NewKey("rtl-runtime").String(runtimeCodecVersion).Sum()

func parts(ctx *obs.Ctx) (*runtime, error) {
	return build.MemoCtx(ctx, rtCache, "rtl-runtime", runtimeKey, buildRuntime)
}

func buildRuntime(ctx *obs.Ctx) (*runtime, error) {
	_, sp := ctx.Start("rtl.runtime")
	defer sp.End()
	if buildFault != nil {
		if err := buildFault(); err != nil {
			return nil, err
		}
	}
	rt := &runtime{headers: map[string]string{}}
	hdrs, err := fs.ReadDir(files, "include")
	if err != nil {
		return nil, fmt.Errorf("rtl: %w", err)
	}
	for _, e := range hdrs {
		data, err := files.ReadFile("include/" + e.Name())
		if err != nil {
			return nil, fmt.Errorf("rtl: %w", err)
		}
		rt.headers[e.Name()] = string(data)
	}

	srcs, err := fs.ReadDir(files, "src")
	if err != nil {
		return nil, fmt.Errorf("rtl: %w", err)
	}
	var names []string
	for _, e := range srcs {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	rt.lib = &link.Library{Name: "librtl"}
	for _, name := range names {
		data, err := files.ReadFile("src/" + name)
		if err != nil {
			return nil, fmt.Errorf("rtl: %w", err)
		}
		var obj *aout.File
		switch {
		case strings.HasSuffix(name, ".s"):
			obj, err = asm.AssembleCtx(ctx, name, string(data))
		case strings.HasSuffix(name, ".c"):
			obj, err = cc.BuildCtx(ctx, name, string(data), rt.headers)
		default:
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("rtl: %s: %w", name, err)
		}
		// crt0 defines the entry point, which nothing references by
		// name, so it is linked explicitly rather than archive-selected.
		if name == "crt0.s" {
			rt.crt0 = obj
			continue
		}
		rt.lib.Members = append(rt.lib.Members, obj)
	}
	return rt, nil
}

// Headers returns the standard headers (stdio.h, stdlib.h, string.h) for
// compiling MiniC programs against this library.
func Headers() (map[string]string, error) { return HeadersCtx(nil) }

// HeadersCtx is Headers with a stage context.
func HeadersCtx(ctx *obs.Ctx) (map[string]string, error) {
	rt, err := parts(ctx)
	if err != nil {
		return nil, err
	}
	return rt.headers, nil
}

// Lib returns the compiled runtime library. The returned value is shared
// and must not be mutated; the linker copies member contents.
func Lib() (*link.Library, error) { return LibCtx(nil) }

// LibCtx is Lib with a stage context.
func LibCtx(ctx *obs.Ctx) (*link.Library, error) {
	rt, err := parts(ctx)
	if err != nil {
		return nil, err
	}
	return rt.lib, nil
}

// Crt0 returns the startup object defining __start. It must be linked
// explicitly into executables (nothing references it by name, so archive
// selection would never pull it in).
func Crt0() (*aout.File, error) { return Crt0Ctx(nil) }

// Crt0Ctx is Crt0 with a stage context.
func Crt0Ctx(ctx *obs.Ctx) (*aout.File, error) {
	rt, err := parts(ctx)
	if err != nil {
		return nil, err
	}
	return rt.crt0, nil
}

// BuildObjects compiles MiniC sources (name -> source) into objects.
// Names ending in ".s" are assembled instead — analysis routines with
// hand-optimized hot paths mix both. Results are memoized by source
// content; the returned objects are shared and must not be mutated
// (the linker copies what it needs).
func BuildObjects(srcs map[string]string) ([]*aout.File, error) {
	return BuildObjectsCtx(nil, srcs)
}

// BuildObjectsCtx is BuildObjects with a stage context: the compile loop
// runs under an "rtl.objects" span, and the cache lookup that guards it
// is recorded with hit/miss attribution.
func BuildObjectsCtx(ctx *obs.Ctx, srcs map[string]string) ([]*aout.File, error) {
	hdrs, err := HeadersCtx(ctx)
	if err != nil {
		return nil, err
	}
	var names []string
	for n := range srcs {
		names = append(names, n)
	}
	sort.Strings(names)
	kb := build.NewKey("objects")
	kb.String(objectsCodecVersion)
	kb.Int(int64(len(names)))
	for _, n := range names {
		kb.String(n).String(srcs[n])
	}
	objs, err := build.MemoCtx(ctx, objCache, "objects", kb.Sum(), func(bctx *obs.Ctx) ([]*aout.File, error) {
		octx, sp := bctx.Start("rtl.objects", obs.Int("sources", int64(len(names))))
		defer sp.End()
		var objs []*aout.File
		for _, n := range names {
			var obj *aout.File
			var err error
			if strings.HasSuffix(n, ".s") {
				obj, err = asm.AssembleCtx(octx, n, srcs[n])
			} else {
				obj, err = cc.BuildCtx(octx, n, srcs[n], hdrs)
			}
			if err != nil {
				return nil, err
			}
			objs = append(objs, obj)
		}
		return objs, nil
	})
	if err != nil {
		return nil, err
	}
	// Fresh slice header: callers append wrapper modules to the result.
	return append([]*aout.File(nil), objs...), nil
}

// ObjectCacheStats reports compiled-object cache activity.
func ObjectCacheStats() build.Stats { return objCache.Stats() }

// ResetObjectCache drops the compiled-object cache per scope (not the
// runtime library, whose build is part of process setup, not of any
// tool). Used by tests and cold-start benchmarks.
func ResetObjectCache(scope build.Scope) { objCache.Reset(scope) }

// BuildProgram compiles a single-file MiniC program and links it (with
// crt0 and the runtime library) into an executable.
func BuildProgram(name, src string) (*aout.File, error) {
	return BuildProgramMulti(map[string]string{name: src})
}

// BuildProgramCtx is BuildProgram with a stage context.
func BuildProgramCtx(ctx *obs.Ctx, name, src string) (*aout.File, error) {
	return BuildProgramMultiCtx(ctx, map[string]string{name: src})
}

// BuildProgramMulti compiles several MiniC source files and links them
// together with crt0 and the runtime library.
func BuildProgramMulti(srcs map[string]string) (*aout.File, error) {
	return BuildProgramMultiCtx(nil, srcs)
}

// BuildProgramMultiCtx is BuildProgramMulti with a stage context.
func BuildProgramMultiCtx(ctx *obs.Ctx, srcs map[string]string) (*aout.File, error) {
	objs, err := BuildObjectsCtx(ctx, srcs)
	if err != nil {
		return nil, err
	}
	c0, err := Crt0Ctx(ctx)
	if err != nil {
		return nil, err
	}
	l, err := LibCtx(ctx)
	if err != nil {
		return nil, err
	}
	return link.LinkCtx(ctx, link.Config{}, append([]*aout.File{c0}, objs...), l)
}
