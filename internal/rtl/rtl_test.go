package rtl_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"atom/internal/rtl"
	"atom/internal/vm"
)

func TestHeadersPresent(t *testing.T) {
	hdrs, err := rtl.Headers()
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []string{"stdio.h", "stdlib.h", "string.h"} {
		if _, ok := hdrs[h]; !ok {
			t.Errorf("header %s missing", h)
		}
	}
}

func TestLibraryShape(t *testing.T) {
	lib, err := rtl.Lib()
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Members) < 4 {
		t.Errorf("library has %d members", len(lib.Members))
	}
	// crt0 must not be a library member (it is linked explicitly).
	for _, m := range lib.Members {
		if _, ok := m.Lookup("__start"); ok {
			t.Error("crt0 leaked into the archive")
		}
	}
	c0, err := rtl.Crt0()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c0.Lookup("__start"); !ok {
		t.Error("crt0 lacks __start")
	}
	// The paper-critical symbols exist somewhere in the archive.
	want := map[string]bool{"printf": false, "malloc": false, "sbrk": false, "__divq": false, "exit": false}
	for _, m := range lib.Members {
		for name := range want {
			if _, ok := m.Lookup(name); ok {
				want[name] = true
			}
		}
	}
	for name, found := range want {
		if !found {
			t.Errorf("library lacks %s", name)
		}
	}
}

func run(t *testing.T, src string, cfg vm.Config) *vm.Machine {
	t.Helper()
	exe, err := rtl.BuildProgram("t.c", src)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	m, err := vm.New(exe, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v (stdout=%q)", err, m.Stdout)
	}
	return m
}

// TestDivisionDifferential compares the software divide routines against
// Go's semantics on random operands, via an embedded table and a rolling
// hash computed on both sides.
func TestDivisionDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(20260704))
	type pair struct{ a, b int64 }
	var pairs []pair
	for i := 0; i < 150; i++ {
		var a, b int64
		switch i % 4 {
		case 0:
			a, b = int64(r.Uint64()), int64(r.Uint64())
		case 1:
			a, b = r.Int63n(1000)-500, r.Int63n(20)-10
		case 2:
			a, b = int64(r.Uint64()), r.Int63n(7)+1
		default:
			a, b = r.Int63(), -(r.Int63n(1<<30))-1
		}
		if b == 0 {
			b = 3
		}
		pairs = append(pairs, pair{a, b})
	}

	var sb strings.Builder
	sb.WriteString("#include <stdio.h>\n#include <stdlib.h>\n")
	fmt.Fprintf(&sb, "long as[%d] = {", len(pairs))
	for _, p := range pairs {
		fmt.Fprintf(&sb, "%d,", p.a)
	}
	sb.WriteString("};\n")
	fmt.Fprintf(&sb, "long bs[%d] = {", len(pairs))
	for _, p := range pairs {
		fmt.Fprintf(&sb, "%d,", p.b)
	}
	sb.WriteString("};\n")
	fmt.Fprintf(&sb, `
int main() {
	long h = 0;
	long i;
	for (i = 0; i < %d; i++) {
		long a = as[i];
		long b = bs[i];
		h = h * 1099511628211 + a / b;
		h = h * 1099511628211 + a %% b;
		h = h * 1099511628211 + __udivq(a, b);
		h = h * 1099511628211 + __uremq(a, b);
		h = h * 1099511628211 + __udiv10(a);
	}
	printf("%%x %%x\n", (h >> 32) & 0xffffffff, h & 0xffffffff);
	return 0;
}
`, len(pairs))

	var want int64
	const fnv = 1099511628211
	for _, p := range pairs {
		want = want*fnv + p.a/p.b
		want = want*fnv + p.a%p.b
		want = want*fnv + int64(uint64(p.a)/uint64(p.b))
		want = want*fnv + int64(uint64(p.a)%uint64(p.b))
		want = want*fnv + int64(uint64(p.a)/10)
	}
	m := run(t, sb.String(), vm.Config{})
	got := strings.TrimSpace(string(m.Stdout))
	wantStr := fmt.Sprintf("%x %x", uint32(uint64(want)>>32), uint32(uint64(want)))
	if got != wantStr {
		t.Errorf("division hash mismatch: VM %q, Go %q", got, wantStr)
	}
}

// TestMallocSplitsAndReuses inspects allocator behavior directly.
func TestMallocSplitsAndReuses(t *testing.T) {
	m := run(t, `
#include <stdio.h>
#include <stdlib.h>
int main() {
	/* A big block, freed, must satisfy subsequent smaller requests
	   (first-fit with splitting). */
	char *big = malloc(10000);
	long before = (long)sbrk(0);
	free(big);
	char *a = malloc(3000);
	char *b = malloc(3000);
	char *c = malloc(3000);
	long after = (long)sbrk(0);
	printf("%d %d %d %d\n",
		after == before,                 /* no new sbrk needed */
		a >= big && a < big + 10000,
		b >= big && b < big + 10000,
		c >= big && c < big + 10000);
	/* Write into all three (catches overlap). */
	long i;
	for (i = 0; i < 3000; i++) { a[i] = 1; b[i] = 2; c[i] = 3; }
	printf("%d %d %d\n", a[2999], b[0], c[1500]);
	return 0;
}`, vm.Config{})
	want := "1 1 1 1\n1 2 3\n"
	if string(m.Stdout) != want {
		t.Errorf("stdout = %q, want %q", m.Stdout, want)
	}
}

func TestStdioEdgeCases(t *testing.T) {
	m := run(t, `
#include <stdio.h>
int main() {
	/* fopen failure paths */
	FILE *missing = fopen("absent.txt", "r");
	printf("%d\n", missing == NULL);
	/* fgetc through EOF */
	FILE *in = fopen("three.txt", "r");
	long n = 0;
	while (fgetc(in) != EOF) n++;
	printf("%d %d\n", n, fgetc(in));
	fclose(in);
	/* fputs + fwrite */
	FILE *out = fopen("o.txt", "w");
	fputs("ab", out);
	fwrite("cdef", 1, 3, out);
	fclose(out);
	return 0;
}`, vm.Config{FS: map[string][]byte{"three.txt": []byte("xyz")}})
	if string(m.Stdout) != "1\n3 -1\n" {
		t.Errorf("stdout = %q", m.Stdout)
	}
	if string(m.FSOut["o.txt"]) != "abcde" {
		t.Errorf("o.txt = %q", m.FSOut["o.txt"])
	}
}

// TestStdinReading covers getchar over the VM's stdin stream.
func TestStdinReading(t *testing.T) {
	m := run(t, `
#include <stdio.h>
int main() {
	long sum = 0;
	int c = getchar();
	while (c != EOF) { sum += c; c = getchar(); }
	printf("%d\n", sum);
	return 0;
}`, vm.Config{Stdin: []byte("AB\n")})
	if string(m.Stdout) != fmt.Sprintf("%d\n", 'A'+'B'+'\n') {
		t.Errorf("stdout = %q", m.Stdout)
	}
}
