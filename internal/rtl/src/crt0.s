# crt0: program entry point. The kernel (VM) places argc at sp and the
# argv array just above it. Control never returns from exit.
	.text
	.globl __start
	.ent __start
__start:
	ldq a0, 0(sp)		# argc
	lda a1, 8(sp)		# argv
	bsr ra, main
	mov v0, a0
	bsr ra, exit
	.end __start
