# Integer division support. The Alpha architecture has no integer divide
# instruction; like OSF/1 libc, we supply software routines. The core is
# a 64-step restoring division on unsigned operands.
#
#   __udivq(a, b) -> a / b   (unsigned)
#   __uremq(a, b) -> a % b   (unsigned)
#   __divq(a, b)  -> a / b   (signed, truncating like C)
#   __remq(a, b)  -> a % b   (signed, sign of the dividend)
#
# Division by zero halts the program with status 134 (SIGFPE-style abort).
# Clobbers only caller-save registers.
	.text

# Internal: divides a0 by a1, leaving quotient in t2, remainder in t3.
# Falls through on return via ra2 saved in t9 (leaf-to-leaf call via t10).
	.ent __udivmod
__udivmod:
	beq a1, __divzero
	clr t2			# quotient
	clr t3			# remainder
	li t4, 64		# bit counter
__udm_loop:
	sll t3, 1, t3		# r <<= 1
	srl a0, 63, t5		# top bit of a
	bis t3, t5, t3
	sll a0, 1, a0
	sll t2, 1, t2		# q <<= 1
	cmpult t3, a1, t5	# r < b (unsigned)?
	bne t5, __udm_skip
	subq t3, a1, t3
	bis t2, 1, t2
__udm_skip:
	subq t4, 1, t4
	bgt t4, __udm_loop
	ret (ra)
	.end __udivmod

	.ent __divzero
__divzero:
	li a0, 134
	call_pal 0
	br __divzero		# not reached
	.end __divzero

	.globl __udivq
	.ent __udivq
__udivq:
	lda sp, -16(sp)
	stq ra, 0(sp)
	bsr ra, __udivmod
	mov t2, v0
	ldq ra, 0(sp)
	lda sp, 16(sp)
	ret (ra)
	.end __udivq

	.globl __uremq
	.ent __uremq
__uremq:
	lda sp, -16(sp)
	stq ra, 0(sp)
	bsr ra, __udivmod
	mov t3, v0
	ldq ra, 0(sp)
	lda sp, 16(sp)
	ret (ra)
	.end __uremq

	.globl __divq
	.ent __divq
__divq:
	lda sp, -16(sp)
	stq ra, 0(sp)
	xor a0, a1, t7		# quotient sign in bit 63
	bge a0, __dq_apos
	negq a0, a0
__dq_apos:
	bge a1, __dq_bpos
	negq a1, a1
__dq_bpos:
	bsr ra, __udivmod
	mov t2, v0
	bge t7, __dq_done
	negq v0, v0
__dq_done:
	ldq ra, 0(sp)
	lda sp, 16(sp)
	ret (ra)
	.end __divq

	.globl __remq
	.ent __remq
__remq:
	lda sp, -16(sp)
	stq ra, 0(sp)
	mov a0, t7		# remainder takes the dividend's sign
	bge a0, __rq_apos
	negq a0, a0
__rq_apos:
	bge a1, __rq_bpos
	negq a1, a1
__rq_bpos:
	bsr ra, __udivmod
	mov t3, v0
	bge t7, __rq_done
	negq v0, v0
__rq_done:
	ldq ra, 0(sp)
	lda sp, 16(sp)
	ret (ra)
	.end __remq

# __udiv10(v) -> v / 10 (unsigned), via multiply by the 1/10 reciprocal:
# floor(v/10) = umulh(v, 0xCCCCCCCCCCCCCCCD) >> 3. Used by printf's digit
# loop so formatting does not pay the 64-step division each digit.
	.globl __udiv10
	.ent __udiv10
__udiv10:
	li t0, 0xCCCCCCCCCCCCCCCD
	umulh a0, t0, v0
	srl v0, 3, v0
	ret (ra)
	.end __udiv10
