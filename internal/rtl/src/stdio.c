/* stdio.c: minimal buffered-enough standard I/O over the raw system
 * calls. printf-family formatting supports %d %u %x %c %s %p %% and
 * ignores width/precision/length modifiers. */
#include <stdio.h>
#include <stdlib.h>

long __fds[3] = {0, 1, 2};

FILE *fopen(char *path, char *mode) {
    long flags = 0;
    long fd;
    FILE *f;
    if (mode[0] == 'w' || mode[0] == 'a') flags = 1;
    fd = __sys_open(path, flags);
    if (fd < 0) return (FILE *)0;
    f = (FILE *)malloc(sizeof(FILE));
    f->fd = fd;
    return f;
}

int fclose(FILE *f) {
    if (!f) return -1;
    __sys_close(f->fd);
    if (f->fd > 2) free((char *)f);
    return 0;
}

int fputc(int c, FILE *f) {
    char b[2];
    b[0] = (char)c;
    __sys_write(f->fd, b, 1);
    return c;
}

int putchar(int c) {
    char b[2];
    b[0] = (char)c;
    __sys_write(1, b, 1);
    return c;
}

int fputs(char *s, FILE *f) {
    long n = 0;
    while (s[n]) n++;
    __sys_write(f->fd, s, n);
    return 0;
}

int puts(char *s) {
    long n = 0;
    while (s[n]) n++;
    __sys_write(1, s, n);
    __sys_write(1, "\n", 1);
    return 0;
}

int fgetc(FILE *f) {
    char b[2];
    long n = __sys_read(f->fd, b, 1);
    if (n != 1) return -1;
    return (long)b[0];
}

int getchar(void) {
    char b[2];
    long n = __sys_read(0, b, 1);
    if (n != 1) return -1;
    return (long)b[0];
}

long fread(char *buf, long size, long n, FILE *f) {
    long got = __sys_read(f->fd, buf, size * n);
    if (got < 0) return 0;
    return __divq(got, size);
}

long fwrite(char *buf, long size, long n, FILE *f) {
    long put = __sys_write(f->fd, buf, size * n);
    if (put < 0) return 0;
    return __divq(put, size);
}

/* __fmtnum renders v in the given base at out+pos, returning the new
 * position. sgn selects signed rendering. */
static long __fmtnum(char *out, long pos, long v, long base, long sgn) {
    char tmp[72];
    long i = 0;
    long neg = 0;
    long d;
    long q;
    if (sgn && v < 0) { neg = 1; v = -v; }
    if (v == 0) { tmp[0] = '0'; i = 1; }
    if (base == 16) {
        while (v) {
            d = v & 15;
            if (d < 10) tmp[i] = (char)('0' + d);
            else tmp[i] = (char)('a' + d - 10);
            v = (v >> 4) & 0x0fffffffffffffff;
            i++;
        }
    }
    while (v) {
        q = __udiv10(v);
        d = v - q * 10;
        tmp[i] = (char)('0' + d);
        v = q;
        i++;
    }
    if (neg) { tmp[i] = '-'; i++; }
    while (i > 0) {
        i--;
        out[pos] = tmp[i];
        pos++;
    }
    return pos;
}

/* __vformat formats into out (NUL-terminated) reading arguments from the
 * caller's register-save area ap starting at index i. */
static long __vformat(char *out, char *fmt, long *ap, long i) {
    long pos = 0;
    long k = 0;
    char c;
    char *s;
    long j;
    while (fmt[k]) {
        c = fmt[k];
        if (c != '%') {
            out[pos] = c;
            pos++;
            k++;
            continue;
        }
        k++;
        while (fmt[k] == 'l' || fmt[k] == 'h' || fmt[k] == '-' || fmt[k] == '+' ||
               (fmt[k] >= '0' && fmt[k] <= '9')) {
            k++;
        }
        c = fmt[k];
        k++;
        if (c == 'd') { pos = __fmtnum(out, pos, ap[i], 10, 1); i++; }
        else if (c == 'u') { pos = __fmtnum(out, pos, ap[i], 10, 0); i++; }
        else if (c == 'x') { pos = __fmtnum(out, pos, ap[i], 16, 0); i++; }
        else if (c == 'p') {
            out[pos] = '0'; pos++;
            out[pos] = 'x'; pos++;
            pos = __fmtnum(out, pos, ap[i], 16, 0);
            i++;
        }
        else if (c == 'c') { out[pos] = (char)ap[i]; pos++; i++; }
        else if (c == 's') {
            s = (char *)ap[i];
            i++;
            j = 0;
            while (s[j]) { out[pos] = s[j]; pos++; j++; }
        }
        else if (c == '%') { out[pos] = '%'; pos++; }
        else if (c == 0) break;
        else { out[pos] = c; pos++; }
    }
    out[pos] = 0;
    return pos;
}

int printf(char *fmt, ...) {
    char buf[1024];
    long n = __vformat(buf, fmt, __va(), 1);
    __sys_write(1, buf, n);
    return (int)n;
}

int fprintf(FILE *f, char *fmt, ...) {
    char buf[1024];
    long n = __vformat(buf, fmt, __va(), 2);
    __sys_write(f->fd, buf, n);
    return (int)n;
}

int sprintf(char *out, char *fmt, ...) {
    return (int)__vformat(out, fmt, __va(), 2);
}
