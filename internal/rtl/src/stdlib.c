/* stdlib.c: process control, dynamic memory, and small utilities.
 *
 * malloc is a first-fit free-list allocator over sbrk, with block
 * splitting and a 16-byte header. This matters for the reproduction:
 * the paper's malloc tool instruments this procedure, and ATOM's two
 * heap schemes are about how the application's and analysis' copies of
 * sbrk share (or partition) the heap.
 */
#include <stdlib.h>

void exit(long code) {
    __halt(code);
}

void abort(void) {
    __halt(134);
}

struct __hdr {
    long size;
    struct __hdr *next;
};

static struct __hdr *__freelist;

char *malloc(long n) {
    struct __hdr *prev;
    struct __hdr *h;
    struct __hdr *rest;
    char *p;
    long grab;

    if (n < 1) n = 1;
    n = (n + 15) & ~15;
    prev = (struct __hdr *)0;
    h = __freelist;
    while (h) {
        if (h->size >= n) {
            if (h->size >= n + 48) {
                /* Split the block. */
                rest = (struct __hdr *)((char *)h + 16 + n);
                rest->size = h->size - n - 16;
                rest->next = h->next;
                h->size = n;
                if (prev) prev->next = rest; else __freelist = rest;
            } else {
                if (prev) prev->next = h->next; else __freelist = h->next;
            }
            return (char *)h + 16;
        }
        prev = h;
        h = h->next;
    }
    grab = n + 16;
    if (grab < 4096) grab = 4096;
    p = sbrk(grab);
    if ((long)p == -1) return (char *)0;
    h = (struct __hdr *)p;
    if (grab >= n + 16 + 48) {
        h->size = n;
        rest = (struct __hdr *)(p + 16 + n);
        rest->size = grab - n - 32;
        rest->next = __freelist;
        __freelist = rest;
    } else {
        h->size = grab - 16;
    }
    return p + 16;
}

void free(char *p) {
    struct __hdr *h;
    if (!p) return;
    h = (struct __hdr *)(p - 16);
    h->next = __freelist;
    __freelist = h;
}

char *calloc(long n, long size) {
    long total = n * size;
    char *p = malloc(total);
    long i;
    long quads;
    long *q;
    if (!p) return p;
    /* malloc blocks are 16-byte aligned: zero by quadwords, then the tail. */
    quads = total >> 3;
    q = (long *)p;
    for (i = 0; i < quads; i++) q[i] = 0;
    for (i = quads << 3; i < total; i++) p[i] = 0;
    return p;
}

char *realloc(char *p, long n) {
    struct __hdr *h;
    char *q;
    long old;
    long i;
    if (!p) return malloc(n);
    h = (struct __hdr *)(p - 16);
    old = h->size;
    if (old >= n) return p;
    q = malloc(n);
    if (!q) return q;
    for (i = 0; i < old; i++) q[i] = p[i];
    free(p);
    return q;
}

long atoi(char *s) {
    long v = 0;
    long neg = 0;
    while (*s == ' ' || *s == '\t') s++;
    if (*s == '-') { neg = 1; s++; }
    else if (*s == '+') s++;
    while (*s >= '0' && *s <= '9') {
        v = v * 10 + (*s - '0');
        s++;
    }
    if (neg) return -v;
    return v;
}

long labs(long v) {
    if (v < 0) return -v;
    return v;
}

static long __seed = 1;

void srand(long seed) {
    __seed = seed;
}

/* 64-bit LCG (Knuth's MMIX constants); returns 31 bits. */
long rand(void) {
    __seed = __seed * 6364136223846793005 + 1442695040888963407;
    return (__seed >> 33) & 0x7fffffff;
}
