/* string.c: the usual byte-string routines. */
#include <string.h>

long strlen(char *s) {
    long n = 0;
    while (s[n]) n++;
    return n;
}

char *strcpy(char *dst, char *src) {
    long i = 0;
    while (src[i]) { dst[i] = src[i]; i++; }
    dst[i] = 0;
    return dst;
}

char *strncpy(char *dst, char *src, long n) {
    long i = 0;
    while (i < n && src[i]) { dst[i] = src[i]; i++; }
    while (i < n) { dst[i] = 0; i++; }
    return dst;
}

long strcmp(char *a, char *b) {
    long i = 0;
    while (a[i] && a[i] == b[i]) i++;
    return (long)a[i] - (long)b[i];
}

long strncmp(char *a, char *b, long n) {
    long i = 0;
    while (i < n && a[i] && a[i] == b[i]) i++;
    if (i == n) return 0;
    return (long)a[i] - (long)b[i];
}

char *strcat(char *dst, char *src) {
    strcpy(dst + strlen(dst), src);
    return dst;
}

char *strchr(char *s, long c) {
    long i = 0;
    while (s[i]) {
        if (s[i] == c) return s + i;
        i++;
    }
    if (c == 0) return s + i;
    return (char *)0;
}

char *memcpy(char *dst, char *src, long n) {
    long i;
    for (i = 0; i < n; i++) dst[i] = src[i];
    return dst;
}

char *memset(char *dst, long c, long n) {
    long i;
    for (i = 0; i < n; i++) dst[i] = (char)c;
    return dst;
}

long memcmp(char *a, char *b, long n) {
    long i;
    for (i = 0; i < n; i++) {
        if (a[i] != b[i]) return (long)a[i] - (long)b[i];
    }
    return 0;
}
