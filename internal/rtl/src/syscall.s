# System-call veneers over CALL_PAL, standing in for the OSF/1 PALcode
# interface. Arguments arrive in a0..a2 per the calling convention and are
# passed through unchanged; results return in v0.
#
# sbrk deserves note: ATOM locates this routine in the *analysis* image
# and rewrites its CALL_PAL to the second sbrk zone (PAL function 7),
# implementing the paper's two dynamic-memory schemes. The application
# image's copy is never touched.
	.text
	.globl __halt
	.ent __halt
__halt:
	call_pal 0
	br __halt		# not reached
	.end __halt

	.globl __sys_write
	.ent __sys_write
__sys_write:
	call_pal 1
	ret (ra)
	.end __sys_write

	.globl __sys_read
	.ent __sys_read
__sys_read:
	call_pal 2
	ret (ra)
	.end __sys_read

	.globl __sys_open
	.ent __sys_open
__sys_open:
	call_pal 3
	ret (ra)
	.end __sys_open

	.globl __sys_close
	.ent __sys_close
__sys_close:
	call_pal 4
	ret (ra)
	.end __sys_close

	.globl sbrk
	.ent sbrk
sbrk:
	call_pal 5
	ret (ra)
	.end sbrk

	.globl __cycles
	.ent __cycles
__cycles:
	call_pal 6
	ret (ra)
	.end __cycles
