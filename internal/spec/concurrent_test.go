package spec_test

import (
	"sync"
	"testing"

	"atom/internal/aout"
	"atom/internal/spec"
)

// TestBuildConcurrent: concurrent Build calls are safe, share one
// compile per program (singleflight memoization — the global build lock
// is gone), and distinct programs may build in parallel.
func TestBuildConcurrent(t *testing.T) {
	names := []string{"espresso", "li", "eqntott", "compress"}
	const callers = 4
	var wg sync.WaitGroup
	got := make([][]*aout.File, len(names))
	for i := range got {
		got[i] = make([]*aout.File, callers)
	}
	for i, name := range names {
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func(i, c int, name string) {
				defer wg.Done()
				exe, err := spec.Build(name)
				if err != nil {
					t.Errorf("%s: %v", name, err)
					return
				}
				got[i][c] = exe
			}(i, c, name)
		}
	}
	wg.Wait()
	for i, name := range names {
		for c := 1; c < callers; c++ {
			if got[i][c] != got[i][0] {
				t.Errorf("%s: caller %d got a different build than caller 0", name, c)
			}
		}
	}
}
