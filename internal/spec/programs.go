package spec

// The suite members. Comments note the SPEC92 component each one stands
// in for and the instrumentation-site profile it contributes.

var programs = []Program{
	// compress: byte-stream run-length + hash compression. Byte loads and
	// stores, data-dependent branches.
	{Name: "compress", Src: `
#include <stdio.h>
#include <stdlib.h>
#define N 24000
char in[N];
char out[N + N / 2];
int main() {
	long seed = 12345;
	long i;
	for (i = 0; i < N; i++) {
		seed = seed * 1103515245 + 12345;
		/* runs of repeated bytes with varying lengths */
		in[i] = (char)((seed >> 16) & 7);
	}
	long o = 0;
	long run = 1;
	for (i = 1; i <= N; i++) {
		if (i < N && in[i] == in[i-1] && run < 255) { run++; continue; }
		out[o] = (char)run; o++;
		out[o] = in[i-1]; o++;
		run = 1;
	}
	long h = 5381;
	for (i = 0; i < o; i++) h = h * 33 + out[i];
	printf("compress: %d -> %d hash=%x\n", (long)N, o, h & 0xffffffff);
	return 0;
}
`},

	// eqntott: boolean equation to truth-table conversion — bit-parallel
	// logic, very branchy comparison loops.
	{Name: "eqntott", Src: `
#include <stdio.h>
#define TERMS 600
#define WORDS 8
long pt[TERMS][WORDS];
int main() {
	long seed = 7;
	long i, j;
	for (i = 0; i < TERMS; i++)
		for (j = 0; j < WORDS; j++) {
			seed = seed * 6364136223846793005 + 1442695040888963407;
			pt[i][j] = seed;
		}
	/* count covered minterm pairs via bitwise implication tests */
	long covered = 0;
	for (i = 0; i < TERMS; i++) {
		long k = i + 1;
		for (j = 0; j < WORDS; j++) {
			if (k >= TERMS) k = 0;
			long a = pt[i][j];
			long b = pt[k][j];
			if ((a & b) == a) covered++;
			if ((a | b) == b) covered++;
			if ((a ^ b) & 1) covered++;
		}
	}
	printf("eqntott: covered=%d\n", covered);
	return 0;
}
`},

	// espresso: two-level logic minimization flavor — cube containment
	// over bit vectors, table-driven branching.
	{Name: "espresso", Src: `
#include <stdio.h>
#define CUBES 160
long cube[CUBES];
long keep[CUBES];
int main() {
	long seed = 99;
	long i, j;
	for (i = 0; i < CUBES; i++) {
		seed = seed * 25214903917 + 11;
		cube[i] = (seed >> 11) & 0xffffff;
		keep[i] = 1;
	}
	/* remove cubes contained in another cube */
	long removed = 0;
	for (i = 0; i < CUBES; i++) {
		if (!keep[i]) continue;
		for (j = 0; j < CUBES; j++) {
			if (i == j || !keep[j]) continue;
			if ((cube[i] & cube[j]) == cube[i] && cube[i] != cube[j]) {
				keep[j] = 0;
				removed++;
			}
		}
	}
	long h = 0;
	for (i = 0; i < CUBES; i++) if (keep[i]) h = h * 31 + cube[i];
	printf("espresso: removed=%d hash=%x\n", removed, h & 0xffffffff);
	return 0;
}
`},

	// li: a small expression interpreter (the lisp interpreter's profile:
	// switch dispatch, recursion, pointer chasing, heap allocation).
	{Name: "li", Src: `
#include <stdio.h>
#include <stdlib.h>
struct node {
	long op;   /* 0 const, 1 add, 2 sub, 3 mul, 4 max */
	long val;
	struct node *l;
	struct node *r;
};
long seed = 31415;
long nextRand() {
	seed = seed * 1103515245 + 12345;
	return (seed >> 16) & 0x7fff;
}
struct node *build(long depth) {
	struct node *n = (struct node *) malloc(sizeof(struct node));
	if (depth == 0) {
		n->op = 0;
		n->val = nextRand() % 100;
		return n;
	}
	n->op = 1 + nextRand() % 4;
	n->l = build(depth - 1);
	n->r = build(depth - 1);
	return n;
}
long eval(struct node *n) {
	switch (n->op) {
	case 0: return n->val;
	case 1: return eval(n->l) + eval(n->r);
	case 2: return eval(n->l) - eval(n->r);
	case 3: return (eval(n->l) * eval(n->r)) & 0xffff;
	case 4: {
		long a = eval(n->l);
		long b = eval(n->r);
		return a > b ? a : b;
	}
	}
	return 0;
}
int main() {
	long total = 0;
	long t;
	for (t = 0; t < 6; t++) {
		struct node *tree = build(8);
		long i;
		for (i = 0; i < 3; i++) total += eval(tree) & 0xff;
	}
	printf("li: total=%d\n", total);
	return 0;
}
`},

	// sc: spreadsheet recalculation — dependency-ordered cell updates,
	// integer formulas, column scans.
	{Name: "sc", Src: `
#include <stdio.h>
#define ROWS 90
#define COLS 26
long cell[ROWS][COLS];
int main() {
	long r, c, pass;
	for (r = 0; r < ROWS; r++)
		for (c = 0; c < COLS; c++)
			cell[r][c] = (r * 31 + c * 17) % 1000;
	for (pass = 0; pass < 3; pass++) {
		for (r = 1; r < ROWS; r++)
			for (c = 1; c < COLS; c++) {
				long v = cell[r-1][c] + cell[r][c-1];
				if (v > 10000) v = v % 10000;
				cell[r][c] = v + (cell[r][c] >> 1);
			}
	}
	long sum = 0;
	for (c = 0; c < COLS; c++) sum += cell[ROWS-1][c];
	printf("sc: sum=%d\n", sum & 0xffffffff);
	return 0;
}
`},

	// gcc: compiler front-end flavor — tokenize and hash a generated
	// source text, string handling and table lookups.
	{Name: "gcc", Src: `
#include <stdio.h>
#include <string.h>
#define SRCLEN 6000
char src[SRCLEN];
long buckets[128];
int main() {
	char *kw = "if else while for return long int char struct ";
	long kwlen = strlen(kw);
	long i;
	for (i = 0; i < SRCLEN; i++) {
		long k = (i * 7 + (i >> 3)) & 63;
		if (k < kwlen) src[i] = kw[k];
		else src[i] = (char)('a' + k - kwlen);
	}
	src[SRCLEN-1] = 0;
	long tokens = 0;
	long idents = 0;
	i = 0;
	while (src[i]) {
		while (src[i] == ' ') i++;
		if (!src[i]) break;
		long start = i;
		while (src[i] && src[i] != ' ') i++;
		tokens++;
		long h = 0;
		long j;
		for (j = start; j < i; j++) h = h * 131 + src[j];
		h = h & 127;
		buckets[h]++;
		if (i - start > 4) idents++;
	}
	long big = 0;
	for (i = 0; i < 128; i++) if (buckets[i] > big) big = buckets[i];
	printf("gcc: tokens=%d idents=%d maxbucket=%d\n", tokens, idents, big);
	return 0;
}
`},

	// doduc: Monte-Carlo-ish reactor kernel — replaced by fixed-point
	// Newton square roots (divide-heavy, tight loops).
	{Name: "doduc", Src: `
#include <stdio.h>
long isqrt(long v) {
	if (v < 2) return v;
	long x = v;
	long y = (x + 1) / 2;
	while (y < x) {
		x = y;
		y = (x + v / x) / 2;
	}
	return x;
}
int main() {
	long sum = 0;
	long i;
	for (i = 1; i < 220; i++) {
		sum += isqrt(i * i + i);
		sum = sum & 0xffffff;
	}
	printf("doduc: sum=%d\n", sum);
	return 0;
}
`},

	// mdljdp2: molecular dynamics — pairwise integer force accumulation
	// over particle arrays.
	{Name: "mdljdp2", Src: `
#include <stdio.h>
#define NP 40
long px[NP]; long py[NP]; long pz[NP];
long fx[NP]; long fy[NP]; long fz[NP];
int main() {
	long i, j, step;
	for (i = 0; i < NP; i++) {
		px[i] = (i * 37) % 256;
		py[i] = (i * 53) % 256;
		pz[i] = (i * 71) % 256;
	}
	for (step = 0; step < 3; step++) {
		for (i = 0; i < NP; i++) { fx[i] = 0; fy[i] = 0; fz[i] = 0; }
		for (i = 0; i < NP; i++)
			for (j = i + 1; j < NP; j++) {
				long dx = px[i] - px[j];
				long dy = py[i] - py[j];
				long dz = pz[i] - pz[j];
				long d2 = dx*dx + dy*dy + dz*dz + 1;
				long f = 4096 / d2;
				fx[i] += f * dx; fx[j] -= f * dx;
				fy[i] += f * dy; fy[j] -= f * dy;
				fz[i] += f * dz; fz[j] -= f * dz;
			}
		for (i = 0; i < NP; i++) {
			px[i] = (px[i] + (fx[i] >> 6)) & 255;
			py[i] = (py[i] + (fy[i] >> 6)) & 255;
			pz[i] = (pz[i] + (fz[i] >> 6)) & 255;
		}
	}
	long h = 0;
	for (i = 0; i < NP; i++) h = h * 31 + px[i] + py[i] + pz[i];
	printf("mdljdp2: hash=%x\n", h & 0xffffffff);
	return 0;
}
`},

	// wave5: 1-D wave-equation time stepping (stencil loads/stores).
	{Name: "wave5", Src: `
#include <stdio.h>
#define N 1200
long u0[N]; long u1[N]; long u2[N];
int main() {
	long i, t;
	for (i = 0; i < N; i++) {
		u0[i] = 0;
		u1[i] = 0;
	}
	u1[N/2] = 1 << 16;
	u0[N/2] = 1 << 16;
	for (t = 0; t < 10; t++) {
		for (i = 1; i < N - 1; i++)
			u2[i] = 2*u1[i] - u0[i] + ((u1[i-1] - 2*u1[i] + u1[i+1]) >> 2);
		for (i = 0; i < N; i++) { u0[i] = u1[i]; u1[i] = u2[i]; }
	}
	long h = 0;
	for (i = 0; i < N; i++) h = h * 17 + (u1[i] & 0xffff);
	printf("wave5: hash=%x\n", h & 0xffffffff);
	return 0;
}
`},

	// hydro2d: 2-D hydrodynamics stencil sweep.
	{Name: "hydro2d", Src: `
#include <stdio.h>
#define H 40
#define W 48
long grid[H][W];
long next[H][W];
int main() {
	long r, c, t;
	for (r = 0; r < H; r++)
		for (c = 0; c < W; c++)
			grid[r][c] = ((r * 131 + c * 17) % 997) << 4;
	for (t = 0; t < 6; t++) {
		for (r = 1; r < H - 1; r++)
			for (c = 1; c < W - 1; c++)
				next[r][c] = (grid[r-1][c] + grid[r+1][c] + grid[r][c-1] + grid[r][c+1] + 4*grid[r][c]) >> 3;
		for (r = 1; r < H - 1; r++)
			for (c = 1; c < W - 1; c++)
				grid[r][c] = next[r][c];
	}
	long h = 0;
	for (r = 0; r < H; r++) h = h * 31 + grid[r][W/2];
	printf("hydro2d: hash=%x\n", h & 0xffffffff);
	return 0;
}
`},

	// ora: optical ray tracing — integer ray/sphere intersection tests.
	{Name: "ora", Src: `
#include <stdio.h>
long isqrt2(long v) {
	long x = v;
	long y;
	if (v < 2) return v;
	y = (x + 1) / 2;
	while (y < x) { x = y; y = (x + v / x) / 2; }
	return x;
}
int main() {
	long hitCount = 0;
	long depthSum = 0;
	long ray;
	for (ray = 0; ray < 200; ray++) {
		long ox = (ray * 7) % 200 - 100;
		long oy = (ray * 13) % 200 - 100;
		long dx = 3; long dy = 4; long dz = 12;
		long cx = 10; long cy = -5; long r2 = 60 * 60;
		/* closest approach of ray to sphere center, fixed point */
		long px = ox - cx;
		long py = oy - cy;
		long b = px * dx + py * dy;
		long c = px * px + py * py - r2;
		long disc = b * b - (dx*dx + dy*dy + dz*dz) * c / 8;
		if (disc > 0) {
			hitCount++;
			depthSum += isqrt2(disc) & 0xff;
		}
	}
	printf("ora: hits=%d depth=%d\n", hitCount, depthSum);
	return 0;
}
`},

	// alvinn: neural-net training — integer perceptron epochs over a
	// small weight matrix (multiply-accumulate sweeps).
	{Name: "alvinn", Src: `
#include <stdio.h>
#define IN 32
#define OUT 8
long w[OUT][IN];
long inp[IN];
int main() {
	long e, o, i;
	for (o = 0; o < OUT; o++)
		for (i = 0; i < IN; i++)
			w[o][i] = (o * 7 + i * 3) % 17 - 8;
	long seed = 5;
	for (e = 0; e < 80; e++) {
		for (i = 0; i < IN; i++) {
			seed = seed * 1103515245 + 12345;
			inp[i] = (seed >> 20) & 15;
		}
		for (o = 0; o < OUT; o++) {
			long act = 0;
			for (i = 0; i < IN; i++) act += w[o][i] * inp[i];
			long target = (o * 64) - 200;
			long err = target - act;
			if (err > 8 || err < -8) {
				long delta = err >> 5;
				for (i = 0; i < IN; i++)
					w[o][i] += delta * inp[i] >> 6;
			}
		}
	}
	long h = 0;
	for (o = 0; o < OUT; o++)
		for (i = 0; i < IN; i++) h = h * 31 + w[o][i];
	printf("alvinn: hash=%x\n", h & 0xffffffff);
	return 0;
}
`},

	// ear: human-ear model (FFT flavor) — integer butterfly passes.
	{Name: "ear", Src: `
#include <stdio.h>
#define N 1024
long re[N]; long im[N];
int main() {
	long i;
	for (i = 0; i < N; i++) {
		re[i] = (i * 97) % 512 - 256;
		im[i] = 0;
	}
	long span = N / 2;
	while (span >= 1) {
		for (i = 0; i < N; i++) {
			long partner = i ^ span;
			if (partner > i) {
				long tr = re[i] + re[partner];
				long ti = im[i] + im[partner];
				long br = re[i] - re[partner];
				long bi = im[i] - im[partner];
				/* twiddle approximation: rotate by shifting */
				re[i] = tr; im[i] = ti;
				re[partner] = br - (bi >> 3);
				im[partner] = bi + (br >> 3);
			}
		}
		span = span >> 1;
	}
	long h = 0;
	for (i = 0; i < N; i++) h = h * 13 + (re[i] & 0xfff) + (im[i] & 0xfff);
	printf("ear: hash=%x\n", h & 0xffffffff);
	return 0;
}
`},

	// swm256: shallow-water model — coupled 2-D stencils.
	{Name: "swm256", Src: `
#include <stdio.h>
#define D 32
long u[D][D]; long v[D][D]; long p[D][D];
int main() {
	long i, j, t;
	for (i = 0; i < D; i++)
		for (j = 0; j < D; j++) {
			u[i][j] = (i * 13 + j) % 100;
			v[i][j] = (j * 17 + i) % 100;
			p[i][j] = 1000 + ((i + j) % 50);
		}
	for (t = 0; t < 6; t++) {
		for (i = 1; i < D - 1; i++)
			for (j = 1; j < D - 1; j++) {
				long du = p[i+1][j] - p[i-1][j];
				long dv = p[i][j+1] - p[i][j-1];
				u[i][j] += du >> 3;
				v[i][j] += dv >> 3;
			}
		for (i = 1; i < D - 1; i++)
			for (j = 1; j < D - 1; j++)
				p[i][j] -= (u[i+1][j] - u[i-1][j] + v[i][j+1] - v[i][j-1]) >> 4;
	}
	long h = 0;
	for (i = 0; i < D; i++) h = h * 41 + p[i][i];
	printf("swm256: hash=%x\n", h & 0xffffffff);
	return 0;
}
`},

	// su2cor: quantum chromodynamics — dense integer matrix multiply.
	{Name: "su2cor", Src: `
#include <stdio.h>
#define M 32
long a[M][M]; long b[M][M]; long c[M][M];
int main() {
	long i, j, k;
	for (i = 0; i < M; i++)
		for (j = 0; j < M; j++) {
			a[i][j] = (i * M + j) % 43 - 21;
			b[i][j] = (j * M + i) % 37 - 18;
		}
	long rep;
	for (rep = 0; rep < 1; rep++) {
		for (i = 0; i < M; i++)
			for (j = 0; j < M; j++) {
				long s = 0;
				for (k = 0; k < M; k++) s += a[i][k] * b[k][j];
				c[i][j] = s & 0xffff;
			}
		for (i = 0; i < M; i++)
			for (j = 0; j < M; j++) a[i][j] = c[i][j] % 53 - 26;
	}
	long h = 0;
	for (i = 0; i < M; i++) h = h * 31 + c[i][i];
	printf("su2cor: hash=%x\n", h & 0xffffffff);
	return 0;
}
`},

	// nasa7: numerical kernels — transpose, reduction, and banded solve.
	{Name: "nasa7", Src: `
#include <stdio.h>
#define K 44
long m[K][K];
long vec[K];
int main() {
	long i, j, pass;
	for (i = 0; i < K; i++) {
		for (j = 0; j < K; j++) m[i][j] = (i * 29 + j * 31) % 211;
		vec[i] = i + 1;
	}
	for (pass = 0; pass < 8; pass++) {
		/* transpose */
		for (i = 0; i < K; i++)
			for (j = i + 1; j < K; j++) {
				long t = m[i][j];
				m[i][j] = m[j][i];
				m[j][i] = t;
			}
		/* matrix-vector */
		for (i = 0; i < K; i++) {
			long s = 0;
			for (j = 0; j < K; j++) s += m[i][j] * vec[j];
			vec[i] = (s >> 7) % 1000 + 1;
		}
	}
	long h = 0;
	for (i = 0; i < K; i++) h = h * 31 + vec[i];
	printf("nasa7: hash=%x\n", h & 0xffffffff);
	return 0;
}
`},

	// fpppp: electron integrals — deep arithmetic expressions, large
	// straight-line basic blocks (stresses per-block tooling least).
	{Name: "fpppp", Src: `
#include <stdio.h>
int main() {
	long acc = 1;
	long x;
	for (x = 1; x < 7000; x++) {
		long t1 = x * x + 3 * x + 7;
		long t2 = t1 * x - 5 * t1 + 11;
		long t3 = t2 * t2 + t1 * x;
		long t4 = t3 - (t2 << 2) + (t1 >> 1);
		long t5 = t4 * 3 + t3 * 5 + t2 * 7 + t1 * 11;
		long t6 = t5 ^ (t4 << 1) ^ (t3 >> 2);
		long t7 = t6 + t5 + t4 + t3 + t2 + t1;
		long t8 = t7 * t1 - t6 * t2 + t5 * t3;
		acc = (acc + t8) & 0xffffffff;
	}
	printf("fpppp: acc=%x\n", acc);
	return 0;
}
`},

	// tomcatv: mesh generation — two coupled stencil arrays with
	// convergence test (extra branching in the inner loop).
	{Name: "tomcatv", Src: `
#include <stdio.h>
#define T 50
long xg[T][T]; long yg[T][T];
int main() {
	long i, j, iter;
	for (i = 0; i < T; i++)
		for (j = 0; j < T; j++) {
			xg[i][j] = i << 8;
			yg[i][j] = j << 8;
		}
	for (iter = 0; iter < 12; iter++) {
		long maxerr = 0;
		for (i = 1; i < T - 1; i++)
			for (j = 1; j < T - 1; j++) {
				long nx = (xg[i-1][j] + xg[i+1][j] + xg[i][j-1] + xg[i][j+1]) >> 2;
				long ny = (yg[i-1][j] + yg[i+1][j] + yg[i][j-1] + yg[i][j+1]) >> 2;
				long ex = nx - xg[i][j];
				long ey = ny - yg[i][j];
				if (ex < 0) ex = -ex;
				if (ey < 0) ey = -ey;
				if (ex > maxerr) maxerr = ex;
				if (ey > maxerr) maxerr = ey;
				xg[i][j] = nx;
				yg[i][j] = ny;
			}
		if (maxerr == 0) break;
	}
	long h = 0;
	for (i = 0; i < T; i++) h = h * 61 + xg[i][i] + yg[i][T-1-i];
	printf("tomcatv: hash=%x\n", h & 0xffffffff);
	return 0;
}
`},

	// spice: circuit simulation — sparse matrix via linked lists,
	// malloc-heavy with pointer chasing.
	{Name: "spice", Src: `
#include <stdio.h>
#include <stdlib.h>
struct elem {
	long row;
	long val;
	struct elem *next;
};
struct elem *cols[64];
int main() {
	long seed = 271828;
	long n;
	for (n = 0; n < 2600; n++) {
		seed = seed * 6364136223846793005 + 1442695040888963407;
		long c = (seed >> 33) & 63;
		struct elem *e = (struct elem *) malloc(sizeof(struct elem));
		e->row = (seed >> 40) & 1023;
		e->val = (seed >> 17) & 0xffff;
		e->next = cols[c];
		cols[c] = e;
	}
	/* iterative relaxation over columns */
	long pass;
	long h = 0;
	for (pass = 0; pass < 10; pass++) {
		long c;
		for (c = 0; c < 64; c++) {
			struct elem *e = cols[c];
			long s = 0;
			while (e) {
				s += e->val;
				if (e->row & 1) s -= e->val >> 2;
				e = e->next;
			}
			h = h * 33 + (s & 0xffff);
		}
	}
	printf("spice: hash=%x\n", h & 0xffffffff);
	return 0;
}
`},

	// queens: integer backtracking search (deep recursion, dense
	// conditional branches) — stands in for the integer search component.
	{Name: "queens", Src: `
#include <stdio.h>
long colUsed[16];
long diag1[32];
long diag2[32];
long solutions;
long N;
void place(long row) {
	if (row == N) { solutions++; return; }
	long c;
	for (c = 0; c < N; c++) {
		if (colUsed[c] || diag1[row + c] || diag2[row - c + N]) continue;
		colUsed[c] = 1; diag1[row + c] = 1; diag2[row - c + N] = 1;
		place(row + 1);
		colUsed[c] = 0; diag1[row + c] = 0; diag2[row - c + N] = 0;
	}
}
int main() {
	N = 8;
	place(0);
	printf("queens: n=%d solutions=%d\n", N, solutions);
	return 0;
}
`},
}
