// Package spec provides the synthetic workload suite standing in for the
// 20 SPEC92 programs of the paper's evaluation (Figures 5 and 6).
//
// SPEC92 itself is licensed, Fortran-heavy, and sized for 1990s hardware,
// so each member here is a small deterministic MiniC program named after
// the SPEC92 component whose *instrumentation-site profile* it imitates:
// the mix of conditional branches, memory references, basic-block sizes,
// procedure calls, mallocs and system calls is what drives every ratio in
// Figure 6, not the particular numerics. Floating-point members are
// replaced by integer kernels with the same access patterns (the ISA
// subset is integer-only; see DESIGN.md).
//
// Every program prints a checksum so instrumented-run output can be
// compared bit-for-bit against the uninstrumented run, and runs a few
// hundred thousand to a few million instructions — large enough to
// amortize tool startup/report costs the way SPEC-scale runs do.
package spec

import (
	"fmt"

	"atom/internal/aout"
	"atom/internal/build"
	"atom/internal/obs"
	"atom/internal/rtl"
)

// Program is one suite member.
type Program struct {
	Name string
	Src  string
	// Stdin and FS are supplied to the VM when running.
	Stdin []byte
	FS    map[string][]byte
}

// Suite returns the 20 programs in a stable order.
func Suite() []Program { return programs }

// ByName returns the named program.
func ByName(name string) (Program, bool) {
	for _, p := range programs {
		if p.Name == name {
			return p, true
		}
	}
	return Program{}, false
}

// exeCodecVersion versions the wire form of a built suite program (a
// length-prefixed aout encode), so executables persist through the
// process-wide build.Store alongside the other artifact kinds.
const exeCodecVersion = "atom-exe/v1\n"

type exeCodec struct{}

func (exeCodec) Marshal(v any) ([]byte, error) {
	f, ok := v.(*aout.File)
	if !ok {
		return nil, fmt.Errorf("spec: exeCodec: unexpected %T", v)
	}
	e := build.NewEnc(exeCodecVersion)
	e.Blob(f.Encode())
	return e.Bytes(), nil
}

func (exeCodec) Unmarshal(blob []byte) (any, error) {
	d := build.NewDec(blob, exeCodecVersion)
	raw := d.Blob()
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return aout.Decode(raw)
}

var buildCache = build.NewCache("spec", exeCodec{})

// Build compiles and links a suite program, memoizing the result by the
// program's source content. Concurrent callers of the same program share
// one build (and distinct programs build in parallel — no global lock).
// The returned file must not be mutated.
func Build(name string) (*aout.File, error) { return BuildCtx(nil, name) }

// BuildCtx is Build with a stage context: the whole compile-and-link runs
// under a "spec.build" span, and the memoized lookup records hit/miss
// attribution.
func BuildCtx(ctx *obs.Ctx, name string) (*aout.File, error) {
	p, ok := ByName(name)
	if !ok {
		return nil, fmt.Errorf("spec: unknown program %q", name)
	}
	key := build.NewKey("spec-program").String(exeCodecVersion).String(p.Name).String(p.Src).Sum()
	exe, err := build.MemoCtx(ctx, buildCache, "spec-program", key, func(bctx *obs.Ctx) (*aout.File, error) {
		sctx, sp := bctx.Start("spec.build", obs.String("program", p.Name))
		defer sp.End()
		return rtl.BuildProgramCtx(sctx, p.Name+".c", p.Src)
	})
	if err != nil {
		return nil, fmt.Errorf("spec: %s: %w", name, err)
	}
	return exe, nil
}
