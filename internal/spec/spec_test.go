package spec_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atom/internal/spec"
	"atom/internal/vm"
)

// runProgram executes one suite member and returns the machine.
func runProgram(t *testing.T, name string) *vm.Machine {
	t.Helper()
	exe, err := spec.Build(name)
	if err != nil {
		t.Fatalf("Build(%s): %v", name, err)
	}
	p, _ := spec.ByName(name)
	m, err := vm.New(exe, vm.Config{Stdin: p.Stdin, FS: p.FS})
	if err != nil {
		t.Fatal(err)
	}
	code, err := m.Run()
	if err != nil {
		t.Fatalf("%s: %v (stdout=%q stderr=%q)", name, err, m.Stdout, m.Stderr)
	}
	if code != 0 {
		t.Fatalf("%s: exit %d", name, code)
	}
	return m
}

func TestSuiteSize(t *testing.T) {
	if n := len(spec.Suite()); n != 20 {
		t.Errorf("suite has %d programs, want 20 (as in the paper)", n)
	}
	seen := map[string]bool{}
	for _, p := range spec.Suite() {
		if seen[p.Name] {
			t.Errorf("duplicate program %q", p.Name)
		}
		seen[p.Name] = true
	}
}

// TestGoldenOutputs runs every program and compares its output against
// the committed golden file (generated on first run).
func TestGoldenOutputs(t *testing.T) {
	for _, p := range spec.Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			m := runProgram(t, p.Name)
			out := string(m.Stdout)
			if !strings.HasPrefix(out, p.Name+":") {
				t.Errorf("output does not start with program name: %q", out)
			}
			golden := filepath.Join("testdata", p.Name+".golden")
			want, err := os.ReadFile(golden)
			if os.IsNotExist(err) {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, m.Stdout, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("generated %s (icount %d)", golden, m.Icount)
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if out != string(want) {
				t.Errorf("output changed:\n got %q\nwant %q", out, want)
			}
		})
	}
}

// TestWorkloadScale checks every program runs long enough to amortize
// tool startup/report costs (the role SPEC's scale plays in Figure 6)
// yet stays laptop-fast.
func TestWorkloadScale(t *testing.T) {
	var total uint64
	for _, p := range spec.Suite() {
		m := runProgram(t, p.Name)
		total += m.Icount
		if m.Icount < 100_000 {
			t.Errorf("%s: only %d instructions; too small to amortize tool fixed costs", p.Name, m.Icount)
		}
		if m.Icount > 60_000_000 {
			t.Errorf("%s: %d instructions; too slow for the benchmark harness", p.Name, m.Icount)
		}
	}
	t.Logf("suite total: %d instructions", total)
}

// TestSiteProfile verifies the suite exercises every kind of
// instrumentation site the tools hook: conditional branches, loads,
// stores, calls, mallocs, and system calls.
func TestSiteProfile(t *testing.T) {
	var loads, stores uint64
	for _, p := range spec.Suite() {
		m := runProgram(t, p.Name)
		loads += m.Loads
		stores += m.Stores
	}
	if loads == 0 || stores == 0 {
		t.Error("suite performs no memory traffic")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := spec.ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
	if _, err := spec.Build("nope"); err == nil {
		t.Error("Build(nope) succeeded")
	}
}
