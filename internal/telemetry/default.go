package telemetry

import (
	"fmt"
	"sync"

	"atom/internal/build"
	"atom/internal/obs"
	"atom/internal/prof"
	"atom/internal/vm"
)

// The process-wide telemetry instances. cmd/atom and atom.WithDebugAddr
// share them, so the CLI and the library expose identical endpoints and
// a future `atom serve` daemon mounts the very same registry.
var (
	defaultOnce   sync.Once
	defaultReg    *Registry
	defaultStream *obs.StreamSink

	serverMu      sync.Mutex
	defaultServer *Server
)

// Default returns the process-wide registry, creating it (and
// registering the standard gauges) on first use.
func Default() *Registry {
	initDefault()
	return defaultReg
}

// DefaultStream returns the process-wide event stream, creating it on
// first use.
func DefaultStream() *obs.StreamSink {
	initDefault()
	return defaultStream
}

func initDefault() {
	defaultOnce.Do(func() {
		defaultReg = NewRegistry()
		defaultStream = obs.NewStreamSink()
		RegisterProcessGauges(defaultReg)
	})
}

// RegisterProcessGauges installs the standard lazily-polled gauges on a
// registry: the persistent store's residency and integrity stats (zero
// when no -cache-dir store is configured) and the process-wide VM and
// profiler totals. Every gauge reads a live source at scrape time, so
// mid-run scrapes see current values without any event plumbing.
func RegisterProcessGauges(r *Registry) {
	storeStat := func(pick func(build.StoreStats) int64) func() int64 {
		return func() int64 {
			s := build.ActiveStore()
			if s == nil {
				return 0
			}
			return pick(s.Stats())
		}
	}
	r.SetGauge("store.disk.bytes", storeStat(func(s build.StoreStats) int64 { return s.Bytes }))
	r.SetGauge("store.disk.blobs", storeStat(func(s build.StoreStats) int64 { return int64(s.Blobs) }))
	r.SetGauge("store.disk.quarantined", storeStat(func(s build.StoreStats) int64 { return int64(s.Corrupt) }))
	r.SetGauge("store.disk.adopted", storeStat(func(s build.StoreStats) int64 { return int64(s.Adopted) }))
	r.SetGauge("store.disk.evicted", storeStat(func(s build.StoreStats) int64 { return int64(s.Evicted) }))

	r.SetGauge("vm.total.runs", func() int64 { return int64(vm.Totals().Runs) })
	r.SetGauge("vm.total.icount", func() int64 { return int64(vm.Totals().Icount) })
	r.SetGauge("vm.total.loads", func() int64 { return int64(vm.Totals().Loads) })
	r.SetGauge("vm.total.stores", func() int64 { return int64(vm.Totals().Stores) })
	r.SetGauge("vm.total.syscalls", func() int64 { return int64(vm.Totals().Syscalls) })
	r.SetGauge("vm.total.sb.built", func() int64 { return int64(vm.Totals().SBBuilt) })
	r.SetGauge("vm.total.sb.hits", func() int64 { return int64(vm.Totals().SBHits) })
	r.SetGauge("vm.total.sb.links", func() int64 { return int64(vm.Totals().SBLinks) })
	r.SetGauge("vm.total.sb.invalidations", func() int64 { return int64(vm.Totals().SBInval) })
	r.SetGauge("prof.total.samples", func() int64 { return int64(prof.TotalSamplesAll()) })
}

// StartDefaultServer starts the process-wide debug server on addr over
// the Default registry and stream. It errors if one is already running.
// The resolved address (useful with port 0) is srv.Addr().
func StartDefaultServer(addr string) (*Server, error) {
	serverMu.Lock()
	defer serverMu.Unlock()
	if defaultServer != nil {
		return nil, fmt.Errorf("telemetry: debug server already running on %s", defaultServer.Addr())
	}
	srv := NewServer(Default(), DefaultStream())
	if err := srv.Start(addr); err != nil {
		return nil, err
	}
	defaultServer = srv
	return srv, nil
}

// StopDefaultServer shuts down the process-wide debug server, if any.
func StopDefaultServer() error {
	serverMu.Lock()
	srv := defaultServer
	defaultServer = nil
	serverMu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}
