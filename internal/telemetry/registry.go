// Package telemetry is the live-observability subsystem: a process-wide
// metric registry aggregating every obs context's counters, histograms,
// and span totals (plus lazily-polled gauges), rendered in Prometheus
// text exposition format, and an embedded HTTP debug server (`atom
// -debug-addr`) serving /metrics, a streaming NDJSON event feed,
// net/http/pprof, and /healthz. It is the substrate a future `atom
// serve` daemon mounts verbatim: everything here is long-lived and safe
// for concurrent use, and nothing blocks the instrumentation pipeline —
// metric updates are lock-scoped counters and the event stream drops
// rather than stalls.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"atom/internal/obs"
)

// Registry aggregates the process's telemetry: an event-fed
// obs.RegistrySink (attach Sink() to every obs context whose activity
// should be visible) plus named gauges polled at render time. All
// methods are safe for concurrent use.
type Registry struct {
	sink *obs.RegistrySink

	mu     sync.Mutex
	gauges map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{sink: obs.NewRegistrySink(), gauges: map[string]func() int64{}}
}

// Sink returns the registry's event-fed aggregate sink. Pass it to
// obs.New alongside the other sinks; one registry can aggregate any
// number of live and completed contexts.
func (r *Registry) Sink() *obs.RegistrySink { return r.sink }

// SetGauge registers (or replaces) a lazily-polled gauge: fn is invoked
// on every render, under no registry lock, and must be safe for
// concurrent use. A nil fn removes the gauge.
func (r *Registry) SetGauge(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if fn == nil {
		delete(r.gauges, name)
		return
	}
	r.gauges[name] = fn
}

// gaugeSnapshot polls every gauge, returning name-sorted rows.
func (r *Registry) gaugeSnapshot() []obs.Counter {
	r.mu.Lock()
	fns := make(map[string]func() int64, len(r.gauges))
	for n, fn := range r.gauges {
		fns[n] = fn
	}
	r.mu.Unlock()
	out := make([]obs.Counter, 0, len(fns))
	for n, fn := range fns {
		out = append(out, obs.Counter{Name: n, Value: fn()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// MetricName maps an obs name onto its Prometheus metric name: the
// "atom." prefix (when present) is dropped, every character outside
// [a-zA-Z0-9_] becomes '_', and the result is rooted under "atom_". So
// "store.ir.hit" -> "atom_store_ir_hit" and "atom.sites" ->
// "atom_sites". Counters additionally get the "_total" suffix the
// exposition format reserves for monotonic series.
func MetricName(name string) string {
	name = strings.TrimPrefix(name, "atom.")
	var b strings.Builder
	b.WriteString("atom_")
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): counters as `atom_<name>_total`, obs log2
// histograms as native Prometheus histograms with power-of-two `le`
// bucket bounds, span aggregates as the
// `atom_span_count_total`/`atom_span_seconds_total` labelled families,
// then gauges. Sections render in that fixed order and each is sorted
// by name, so the output ordering is a deterministic function of the
// metric set — two scrapes differ only in values, never in shape.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder

	for _, c := range r.sink.Counters() {
		m := MetricName(c.Name) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", m, m, c.Value)
	}

	for _, h := range r.sink.Histograms() {
		m := MetricName(h.Name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", m)
		// The exposition format wants cumulative buckets; obs buckets
		// are disjoint [Lo,Hi) ranges, so accumulate while walking them
		// in ascending order (Histograms guarantees it).
		cum := uint64(0)
		for _, bk := range h.Buckets {
			cum += bk.Count
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", m, bk.Hi, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", m, h.Count)
		fmt.Fprintf(&b, "%s_sum %d\n", m, h.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", m, h.Count)
	}

	if stats := r.sink.SpanStats(); len(stats) > 0 {
		b.WriteString("# TYPE atom_span_count_total counter\n")
		for _, s := range stats {
			fmt.Fprintf(&b, "atom_span_count_total{span=%q} %d\n", s.Name, s.Count)
		}
		b.WriteString("# TYPE atom_span_seconds_total counter\n")
		for _, s := range stats {
			fmt.Fprintf(&b, "atom_span_seconds_total{span=%q} %.9f\n", s.Name, s.Total.Seconds())
		}
	}

	for _, g := range r.gaugeSnapshot() {
		m := MetricName(g.Name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", m, m, g.Value)
	}

	_, err := io.WriteString(w, b.String())
	return err
}
