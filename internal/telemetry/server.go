package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"atom/internal/obs"
)

// Server is the embedded debug server behind `atom -debug-addr` (and
// atom.WithDebugAddr). It serves:
//
//	GET /metrics        Prometheus text exposition of the Registry
//	GET /debug/events   chunked NDJSON live stream of telemetry events
//	GET /debug/pprof/   the standard Go profiling endpoints
//	GET /healthz        liveness probe ("ok")
//
// The event stream honors two query parameters: n limits the response
// to that many events (the connection closes once delivered — CI smoke
// uses this), and replay=0 skips the buffered backlog and streams only
// events emitted after the request arrived.
type Server struct {
	reg    *Registry
	stream *obs.StreamSink
	ln     net.Listener
	srv    *http.Server
	done   chan struct{}
}

// NewServer builds a server over a registry and an event stream; either
// may be shared with any number of obs contexts. Call Start to listen.
func NewServer(reg *Registry, stream *obs.StreamSink) *Server {
	s := &Server{reg: reg, stream: stream, done: make(chan struct{})}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/events", s.handleEvents)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	return s
}

// Start listens on addr (host:port; port 0 picks a free one — read the
// resolved address back with Addr) and serves in a background goroutine.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	s.ln = ln
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) // returns on Close; error is expected then
	}()
	return nil
}

// Addr returns the resolved listen address ("127.0.0.1:41231"), or ""
// before Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down: the event stream's subscribers are
// cancelled (so open /debug/events requests terminate rather than
// outlive the process), then the listener and in-flight requests get a
// short grace period.
func (s *Server) Close() error {
	if s.ln == nil {
		return nil
	}
	if s.stream != nil {
		s.stream.Shutdown()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		err = s.srv.Close()
	}
	<-s.done
	return err
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.stream == nil {
		http.Error(w, "event streaming disabled", http.StatusNotFound)
		return
	}
	limit := 0 // 0: stream until the client goes away or the sink closes
	if q := r.URL.Query().Get("n"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		limit = n
	}
	replay := r.URL.Query().Get("replay") != "0"
	buf := 1024
	if limit > buf {
		buf = limit
	}
	sub := s.stream.Subscribe(buf, replay)
	defer s.stream.Unsubscribe(sub)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}

	enc := json.NewEncoder(w)
	sent := 0
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			sent++
			if limit > 0 && sent >= limit {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
