package telemetry

import (
	"fmt"
	"io"
	"log/slog"

	"atom/internal/obs"
)

// NewLogger builds a structured logger in the given format ("text" or
// "json") at the given minimum level. It backs `atom -log`/-log-level`.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("telemetry: bad log format %q (text or json)", format)
	}
}

// ParseLevel maps a -log-level flag value onto a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("telemetry: bad log level %q (debug, info, warn, or error)", s)
}

// LogSink adapts an obs context to structured logging: one record per
// span end (debug level — the full firehose), promoted to info for
// cache misses and disk hits and to warn for blob quarantines, which
// used to be silent. Attach it to obs.New beside the other sinks; the
// handler's level filtering keeps the disabled records cheap.
type LogSink struct {
	L *slog.Logger
}

// SpanEnd logs the completed span. Cache/store lookups log at a level
// reflecting their outcome; everything else is debug detail.
func (s *LogSink) SpanEnd(sd obs.SpanData) {
	attrs := make([]any, 0, 2+2*len(sd.Attrs))
	attrs = append(attrs, slog.String("span", sd.Name), slog.Duration("dur", sd.Dur))
	outcome := ""
	for _, a := range sd.Attrs {
		attrs = append(attrs, slog.String(a.Key, a.Val))
		if a.Key == "outcome" {
			outcome = a.Val
		}
	}
	switch {
	case sd.Name == "store.get" && outcome == "corrupt":
		s.L.Warn("blob quarantined", attrs...)
	case sd.Name == "cache.get" && outcome == "miss":
		s.L.Info("cache miss", attrs...)
	case sd.Name == "cache.get" && outcome == "disk":
		s.L.Info("cache disk hit", attrs...)
	case sd.Name == "cache.get" && outcome == "error":
		s.L.Error("cache build failed", attrs...)
	default:
		s.L.Debug("span end", attrs...)
	}
}

var _ obs.Sink = (*LogSink)(nil)
