package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"

	"atom/internal/obs"
)

func TestMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"store.ir.hit":      "atom_store_ir_hit",
		"atom.sites":        "atom_sites",
		"vm.icount":         "atom_vm_icount",
		"weird-name.x":      "atom_weird_name_x",
		"already_clean":     "atom_already_clean",
		"atom.batch.failed": "atom_batch_failed",
	} {
		if got := MetricName(in); got != want {
			t.Errorf("MetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusDeterministic: two renders of the same state are
// byte-identical, and renders across growing state keep the same
// ordering discipline (sections in fixed order, names sorted within).
func TestWritePrometheusDeterministic(t *testing.T) {
	reg := NewRegistry()
	ctx := obs.New(reg.Sink())
	ctx.Count("store.ir.hit", 3)
	ctx.Count("atom.sites", 7)
	ctx.Observe("site_regs", 4)
	ctx.Observe("site_regs", 100)
	_, sp := ctx.Start("atom.apply")
	sp.End()
	reg.SetGauge("vm.total.runs", func() int64 { return 42 })

	var a, b bytes.Buffer
	if err := reg.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("two renders differ:\n--- a\n%s--- b\n%s", a.String(), b.String())
	}

	out := a.String()
	for _, want := range []string{
		"atom_sites_total 7",
		"atom_store_ir_hit_total 3",
		"# TYPE atom_site_regs histogram",
		`atom_site_regs_bucket{le="+Inf"} 2`,
		"atom_site_regs_sum 104",
		"atom_site_regs_count 2",
		`atom_span_count_total{span="atom.apply"} 1`,
		"# TYPE atom_vm_total_runs gauge",
		"atom_vm_total_runs 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Counters sort by metric name: atom_sites_total before
	// atom_store_ir_hit_total.
	if strings.Index(out, "atom_sites_total") > strings.Index(out, "atom_store_ir_hit_total") {
		t.Error("counters not sorted by name")
	}
	// Histogram buckets are cumulative and le-labelled at power-of-two
	// bounds: 4 falls in [4,8) so le="8" covers it.
	if !strings.Contains(out, `atom_site_regs_bucket{le="8"} 1`) {
		t.Errorf("expected cumulative le=\"8\" bucket with count 1:\n%s", out)
	}
}

// TestRegistryReconciles: the registry totals match the obs context's
// own snapshot exactly — the invariant that makes a mid-run scrape
// agree with end-of-run -stats numbers.
func TestRegistryReconciles(t *testing.T) {
	reg := NewRegistry()
	ctx := obs.New(reg.Sink())
	ctx.Count("a.one", 5)
	ctx.Count("b.two", 7)
	child, sp := ctx.Start("phase")
	child.Count("a.one", 2)
	sp.End()
	for _, c := range ctx.Counters() {
		if got := reg.Sink().Counter(c.Name); got != c.Value {
			t.Errorf("registry %s = %d, ctx = %d", c.Name, got, c.Value)
		}
	}
	if got := reg.Sink().Counter("a.one"); got != 7 {
		t.Errorf("a.one = %d, want 7 (parent+child)", got)
	}
}

// TestServerEndpoints drives a live server end to end: /metrics twice
// (second monotonically >= first, identical ordering), /healthz,
// /debug/events with a limit, and /debug/pprof/; then a clean Close.
func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	stream := obs.NewStreamSink()
	ctx := obs.New(reg.Sink(), stream)
	srv := NewServer(reg, stream)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (string, string) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s\n%s", path, resp.Status, body)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	if body, _ := get("/healthz"); strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %q", body)
	}

	ctx.Count("test.hits", 3)
	m1, ctype := get("/metrics")
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content type = %q, want exposition 0.0.4", ctype)
	}
	ctx.Count("test.hits", 2)
	m2, _ := get("/metrics")
	if !strings.Contains(m1, "atom_test_hits_total 3") || !strings.Contains(m2, "atom_test_hits_total 5") {
		t.Fatalf("scrapes not monotone:\n--- 1\n%s--- 2\n%s", m1, m2)
	}
	names := func(s string) []string {
		var out []string
		for _, line := range strings.Split(s, "\n") {
			if f := strings.Fields(line); len(f) > 0 {
				out = append(out, f[0])
			}
		}
		return out
	}
	n1, n2 := names(m1), names(m2)
	if fmt.Sprint(n1) != fmt.Sprint(n2) {
		t.Fatalf("scrape shapes differ:\n%v\n%v", n1, n2)
	}

	// The events endpoint with ?n= delivers exactly that many NDJSON
	// records (the backlog replays, so the earlier counts are visible)
	// and then the server closes the response.
	resp, err := http.Get(base + "/debug/events?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var events []obs.Event
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want exactly 2", len(events))
	}
	if events[0].Name != "test.hits" || events[0].Value != 3 {
		t.Fatalf("first replayed event = %+v", events[0])
	}

	if body, _ := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Error("/debug/pprof/cmdline returned nothing")
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still serving after Close")
	}
}

// TestServerCloseTerminatesStream: an open unlimited /debug/events
// request ends when the server closes, instead of hanging.
func TestServerCloseTerminatesStream(t *testing.T) {
	reg := NewRegistry()
	stream := obs.NewStreamSink()
	srv := NewServer(reg, stream)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	done := make(chan error, 1)
	go func() {
		_, err := io.ReadAll(resp.Body)
		done <- err
	}()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	<-done // reader must return promptly; the test hangs otherwise
}

// TestDefaultServerLifecycle: the process-wide server starts once,
// rejects a second start, stops cleanly, and can start again.
func TestDefaultServerLifecycle(t *testing.T) {
	srv, err := StartDefaultServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := StartDefaultServer("127.0.0.1:0"); err == nil {
		t.Error("second StartDefaultServer did not error")
	}
	// The default registry carries the process gauges; the rendered
	// exposition includes them even with no obs activity at all.
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"atom_store_disk_bytes", "atom_vm_total_runs", "atom_prof_total_samples"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("default /metrics missing gauge %s", want)
		}
	}
	if err := StopDefaultServer(); err != nil {
		t.Fatal(err)
	}
	if err := StopDefaultServer(); err != nil {
		t.Fatalf("second StopDefaultServer: %v", err)
	}
	srv2, err := StartDefaultServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	if err := StopDefaultServer(); err != nil {
		t.Fatal(err)
	}
	_ = srv2
}

// TestLogSinkLevels: span outcomes map to the documented levels and
// messages.
func TestLogSinkLevels(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "json", slog.LevelDebug)
	if err != nil {
		t.Fatal(err)
	}
	sink := &LogSink{L: logger}
	end := func(name, outcome string) {
		sd := obs.SpanData{Name: name}
		if outcome != "" {
			sd.Attrs = []obs.Attr{obs.String("outcome", outcome)}
		}
		sink.SpanEnd(sd)
	}
	end("cache.get", "miss")
	end("cache.get", "disk")
	end("cache.get", "error")
	end("store.get", "corrupt")
	end("atom.apply", "")

	var recs []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		recs = append(recs, m)
	}
	want := []struct{ level, msg string }{
		{"INFO", "cache miss"},
		{"INFO", "cache disk hit"},
		{"ERROR", "cache build failed"},
		{"WARN", "blob quarantined"},
		{"DEBUG", "span end"},
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i, w := range want {
		if recs[i]["level"] != w.level || recs[i]["msg"] != w.msg {
			t.Errorf("record %d = %v/%v, want %s/%s", i, recs[i]["level"], recs[i]["msg"], w.level, w.msg)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"warn": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) did not error")
	}
	if _, err := NewLogger(io.Discard, "xml", slog.LevelInfo); err == nil {
		t.Error("NewLogger(xml) did not error")
	}
}

// TestGaugeRemoval: SetGauge(nil) removes; renders stay deterministic.
func TestGaugeRemoval(t *testing.T) {
	reg := NewRegistry()
	v := int64(1)
	reg.SetGauge("g.x", func() int64 { return v })
	var a bytes.Buffer
	reg.WritePrometheus(&a)
	if !strings.Contains(a.String(), "atom_g_x 1") {
		t.Fatalf("gauge missing:\n%s", a.String())
	}
	reg.SetGauge("g.x", nil)
	var b bytes.Buffer
	reg.WritePrometheus(&b)
	if strings.Contains(b.String(), "atom_g_x") {
		t.Fatalf("removed gauge still rendered:\n%s", b.String())
	}
}
